package timeline

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// decodeTrace parses a written trace back into generic events.
func decodeTrace(t *testing.T, buf []byte) []map[string]any {
	t.Helper()
	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	return doc.TraceEvents
}

func TestJSONSliceMerging(t *testing.T) {
	j := NewJSON()
	lane := j.Lane("acc", "engine")
	// Three adjacent same-label slices must merge into one span.
	j.Slice(lane, 1000, 100, "busy")
	j.Slice(lane, 1100, 100, "busy")
	j.Slice(lane, 1200, 100, "busy")
	// A gap breaks the merge.
	j.Slice(lane, 1400, 100, "busy")
	// A label change breaks the merge.
	j.Slice(lane, 1500, 100, "idle")
	if j.Events() != 3 {
		t.Fatalf("events = %d, want 3 (merged, gapped, relabeled)", j.Events())
	}

	var buf bytes.Buffer
	if err := j.Write(&buf); err != nil {
		t.Fatal(err)
	}
	evs := decodeTrace(t, buf.Bytes())
	var slices []map[string]any
	for _, ev := range evs {
		if ev["ph"] == "X" {
			slices = append(slices, ev)
		}
	}
	if len(slices) != 3 {
		t.Fatalf("decoded %d X events, want 3", len(slices))
	}
	// The merged slice spans 300 ps = 0.0003 us.
	if d := slices[0]["dur"].(float64); d != 0.0003 {
		t.Fatalf("merged dur = %v us, want 0.0003", d)
	}
}

func TestJSONMetadataAndLanes(t *testing.T) {
	j := NewJSON()
	a := j.Lane("gemm", "engine")
	b := j.Lane("gemm", "fu.fp_mul")
	c := j.Lane("spm", "bank0")
	if a == b || b == c {
		t.Fatal("lane IDs not distinct")
	}
	j.Instant(b, 500, "hit")
	j.Counter(c, 600, 3)

	var buf bytes.Buffer
	if err := j.Write(&buf); err != nil {
		t.Fatal(err)
	}
	evs := decodeTrace(t, buf.Bytes())
	names := map[string]bool{}
	for _, ev := range evs {
		if ev["ph"] == "M" && ev["name"] == "thread_name" {
			args := ev["args"].(map[string]any)
			names[args["name"].(string)] = true
		}
	}
	for _, want := range []string{"engine", "fu.fp_mul", "bank0"} {
		if !names[want] {
			t.Fatalf("thread_name metadata missing lane %q (have %v)", want, names)
		}
	}
	// Lanes in different groups get different pids.
	pids := map[string]float64{}
	for _, ev := range evs {
		switch ev["ph"] {
		case "i":
			pids["instant"] = ev["pid"].(float64)
		case "C":
			pids["counter"] = ev["pid"].(float64)
		}
	}
	if pids["instant"] == pids["counter"] {
		t.Fatalf("instant and counter share pid %v across groups", pids["instant"])
	}
}

func TestJSONLabelEscaping(t *testing.T) {
	j := NewJSON()
	lane := j.Lane("g", `quote"back\slash`)
	j.Instant(lane, 1, `la"bel`)
	var buf bytes.Buffer
	if err := j.Write(&buf); err != nil {
		t.Fatal(err)
	}
	evs := decodeTrace(t, buf.Bytes()) // Unmarshal fails if escaping is broken
	found := false
	for _, ev := range evs {
		if ev["ph"] == "i" && ev["name"] == `la"bel` {
			found = true
		}
	}
	if !found {
		t.Fatal("escaped instant label did not round-trip")
	}
}

func TestBreakdownCountsAndTotal(t *testing.T) {
	b := NewBreakdown()
	lane := b.Lane("gemm", "engine")
	b.Cycle(lane, 0, 10, ClassIssue)
	b.Cycle(lane, 10, 10, ClassIssue)
	b.Cycle(lane, 20, 10, ClassStallMem)
	b.Cycle(lane, 30, 10, ClassStallOperand)
	c, ok := b.Counts("gemm", "engine")
	if !ok {
		t.Fatal("lane not found")
	}
	if c[ClassIssue] != 2 || c[ClassStallMem] != 1 || c[ClassStallOperand] != 1 {
		t.Fatalf("counts = %v", c)
	}
	if got := b.Total("gemm", "engine"); got != 4 {
		t.Fatalf("total = %d, want 4", got)
	}
	if _, ok := b.Counts("gemm", "nope"); ok {
		t.Fatal("unknown lane reported counts")
	}
	var buf bytes.Buffer
	if err := b.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "gemm/engine") || !strings.Contains(buf.String(), "stall.operand") {
		t.Fatalf("table missing expected content:\n%s", buf.String())
	}
}

func TestTeeFansOut(t *testing.T) {
	j := NewJSON()
	b := NewBreakdown()
	// Skew the JSON backend's lane IDs so the tee's translation is
	// actually exercised.
	j.Lane("pre", "existing")
	tee := NewTee(j, b)
	lane := tee.Lane("gemm", "engine")
	tee.Cycle(lane, 0, 10, ClassIssue)
	tee.Slice(lane, 10, 10, "busy")
	tee.Instant(lane, 20, "mark")
	tee.Counter(lane, 30, 7)
	if got := b.Total("gemm", "engine"); got != 1 {
		t.Fatalf("breakdown total through tee = %d, want 1", got)
	}
	// JSON saw the cycle (as a slice), the slice, the instant, the counter.
	if j.Events() != 4 {
		t.Fatalf("json events through tee = %d, want 4", j.Events())
	}
}

func TestCycleClassStrings(t *testing.T) {
	seen := map[string]bool{}
	for c := 0; c < NumCycleClasses; c++ {
		s := CycleClass(c).String()
		if s == "" || s == "unknown" || seen[s] {
			t.Fatalf("class %d has bad or duplicate name %q", c, s)
		}
		seen[s] = true
	}
	if CycleClass(200).String() != "unknown" {
		t.Fatal("out-of-range class must stringify as unknown")
	}
}
