// Package timeline is the opt-in observability layer: components that own
// simulated time (the event queue, clocked objects, the accelerator engine,
// the memory system) report what they did each cycle to a Recorder, which
// turns the stream into a Chrome trace_event file (JSON) or a stall
// breakdown table (Breakdown).
//
// The hard invariant is observer-effect freedom: a recorder observes, it
// never schedules. Hooks are nil-by-default fields guarded by a single
// `if rec != nil` check, so the untraced hot paths stay allocation-free
// and the simulated schedule is byte-identical whether tracing is on or
// off. Recorders may allocate internally (they buffer events), but they
// must not touch the event queue, stats, or any simulated state.
//
// Ticks are raw uint64 picoseconds rather than sim.Tick so this package
// stays a leaf: internal/sim imports timeline, never the reverse.
package timeline

// LaneID names a registered lane. Lanes map to Perfetto threads: one per
// FU class, memory port, SPM bank, DMA engine, and so on. IDs are indices
// into the recorder's registration order, so a run that registers the
// same components in the same order gets the same IDs.
type LaneID int32

// CycleClass attributes one engine cycle to the paper's Fig. 10 breakdown
// categories: the cycle either issued work or stalled for exactly one
// attributed reason.
type CycleClass uint8

const (
	// ClassIssue: at least one op issued this cycle.
	ClassIssue CycleClass = iota
	// ClassStallMem: blocked on the memory system — a port hazard, a
	// memory-order hazard, or outstanding loads/stores the engine is
	// waiting to commit.
	ClassStallMem
	// ClassStallFU: ready ops existed but the FU pool was exhausted.
	ClassStallFU
	// ClassStallFetch: the next basic block could not be fetched (window
	// full or drain policy).
	ClassStallFetch
	// ClassStallOperand: nothing was ready — ops were waiting for operand
	// values from in-flight producers.
	ClassStallOperand

	numCycleClasses
)

// NumCycleClasses is the number of attribution categories; a breakdown
// over all classes sums to the engine's total active cycles.
const NumCycleClasses = int(numCycleClasses)

var classNames = [NumCycleClasses]string{
	"issue", "stall.mem", "stall.fu", "stall.fetch", "stall.operand",
}

func (c CycleClass) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return "unknown"
}

// Recorder receives timeline events. All ticks are absolute picoseconds;
// durations are picoseconds. Implementations must not schedule events or
// mutate simulated state — see the package invariant.
type Recorder interface {
	// Lane registers a lane under a component group (Perfetto: group is
	// the process, lane the thread) and returns its ID. Called during
	// attachment, never on a hot path.
	Lane(group, name string) LaneID
	// Slice records an activity span [start, start+dur) on a lane.
	// Back-to-back slices with the same label may be merged by backends.
	Slice(lane LaneID, start, dur uint64, label string)
	// Instant records a point event (a cache miss, a dropped DMA start).
	Instant(lane LaneID, tick uint64, label string)
	// Counter records a sampled value (FIFO occupancy, MSHR usage).
	Counter(lane LaneID, tick uint64, value float64)
	// Cycle attributes one engine cycle [start, start+dur) to a class.
	Cycle(lane LaneID, start, dur uint64, class CycleClass)
}

// Tee fans every event out to several recorders (e.g. a JSON trace and a
// breakdown table from one run). Lane IDs differ per backend, so Tee keeps
// its own ID space and translates.
type Tee struct {
	recs []Recorder
	ids  [][]LaneID // ids[tee lane][recorder index]
}

// NewTee combines recorders into one.
func NewTee(recs ...Recorder) *Tee { return &Tee{recs: recs} }

func (t *Tee) Lane(group, name string) LaneID {
	row := make([]LaneID, len(t.recs))
	for i, r := range t.recs {
		row[i] = r.Lane(group, name)
	}
	t.ids = append(t.ids, row)
	return LaneID(len(t.ids) - 1)
}

func (t *Tee) Slice(lane LaneID, start, dur uint64, label string) {
	for i, r := range t.recs {
		r.Slice(t.ids[lane][i], start, dur, label)
	}
}

func (t *Tee) Instant(lane LaneID, tick uint64, label string) {
	for i, r := range t.recs {
		r.Instant(t.ids[lane][i], tick, label)
	}
}

func (t *Tee) Counter(lane LaneID, tick uint64, value float64) {
	for i, r := range t.recs {
		r.Counter(t.ids[lane][i], tick, value)
	}
}

func (t *Tee) Cycle(lane LaneID, start, dur uint64, class CycleClass) {
	for i, r := range t.recs {
		r.Cycle(t.ids[lane][i], start, dur, class)
	}
}
