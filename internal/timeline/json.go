package timeline

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// JSON records events in memory and writes them as a Chrome trace_event
// file ("JSON Array Format") that loads directly in Perfetto or
// chrome://tracing. Groups become processes, lanes become threads, slices
// become complete ("X") events, instants "i", counters "C".
//
// Adjacent same-label slices on a lane are merged at record time, so a
// thousand consecutive busy cycles store as one span; this keeps traces
// small without changing what Perfetto renders.
type JSON struct {
	groups []string
	lanes  []jsonLane
	events []jsonEvent
	// lastSlice[lane] indexes the lane's most recent slice in events, or
	// -1; used for adjacent-slice merging.
	lastSlice []int32
}

type jsonLane struct {
	name  string
	group int32
	tid   int32 // thread ordinal within the group
}

const (
	evSlice = iota
	evInstant
	evCounter
)

type jsonEvent struct {
	lane  LaneID
	kind  uint8
	start uint64
	dur   uint64
	label string
	value float64
}

// NewJSON returns an empty trace recorder.
func NewJSON() *JSON { return &JSON{} }

func (j *JSON) Lane(group, name string) LaneID {
	gi := int32(-1)
	for i, g := range j.groups {
		if g == group {
			gi = int32(i)
			break
		}
	}
	if gi < 0 {
		gi = int32(len(j.groups))
		j.groups = append(j.groups, group)
	}
	tid := int32(0)
	for _, l := range j.lanes {
		if l.group == gi {
			tid++
		}
	}
	j.lanes = append(j.lanes, jsonLane{name: name, group: gi, tid: tid})
	j.lastSlice = append(j.lastSlice, -1)
	return LaneID(len(j.lanes) - 1)
}

func (j *JSON) Slice(lane LaneID, start, dur uint64, label string) {
	if idx := j.lastSlice[lane]; idx >= 0 {
		ev := &j.events[idx]
		if ev.label == label && ev.start+ev.dur == start {
			ev.dur += dur
			return
		}
	}
	j.events = append(j.events, jsonEvent{lane: lane, kind: evSlice, start: start, dur: dur, label: label})
	j.lastSlice[lane] = int32(len(j.events) - 1)
}

func (j *JSON) Instant(lane LaneID, tick uint64, label string) {
	j.events = append(j.events, jsonEvent{lane: lane, kind: evInstant, start: tick, label: label})
}

func (j *JSON) Counter(lane LaneID, tick uint64, value float64) {
	j.events = append(j.events, jsonEvent{lane: lane, kind: evCounter, start: tick, value: value})
}

func (j *JSON) Cycle(lane LaneID, start, dur uint64, class CycleClass) {
	j.Slice(lane, start, dur, class.String())
}

// Events returns the number of recorded (post-merge) events.
func (j *JSON) Events() int { return len(j.events) }

// escaper covers the characters our fixed label vocabulary could ever
// need escaped in a JSON string.
var escaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`)

// Write emits the trace. Ticks are picoseconds; trace_event timestamps
// are microseconds, so values are scaled by 1e-6 and printed with six
// decimals to preserve picosecond resolution.
func (j *JSON) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprint(bw, `{"displayTimeUnit":"ns","traceEvents":[`)
	first := true
	sep := func() {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		bw.WriteByte('\n')
	}
	// Metadata: name every process (group) and thread (lane), with sort
	// indices pinning registration order in the UI.
	for gi, g := range j.groups {
		sep()
		fmt.Fprintf(bw, `{"ph":"M","pid":%d,"name":"process_name","args":{"name":"%s"}}`, gi+1, escaper.Replace(g))
		sep()
		fmt.Fprintf(bw, `{"ph":"M","pid":%d,"name":"process_sort_index","args":{"sort_index":%d}}`, gi+1, gi)
	}
	for _, l := range j.lanes {
		sep()
		fmt.Fprintf(bw, `{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":"%s"}}`,
			l.group+1, l.tid+1, escaper.Replace(l.name))
		sep()
		fmt.Fprintf(bw, `{"ph":"M","pid":%d,"tid":%d,"name":"thread_sort_index","args":{"sort_index":%d}}`,
			l.group+1, l.tid+1, l.tid)
	}
	for i := range j.events {
		ev := &j.events[i]
		l := j.lanes[ev.lane]
		ts := float64(ev.start) / 1e6
		sep()
		switch ev.kind {
		case evSlice:
			fmt.Fprintf(bw, `{"ph":"X","pid":%d,"tid":%d,"ts":%.6f,"dur":%.6f,"name":"%s"}`,
				l.group+1, l.tid+1, ts, float64(ev.dur)/1e6, escaper.Replace(ev.label))
		case evInstant:
			fmt.Fprintf(bw, `{"ph":"i","pid":%d,"tid":%d,"ts":%.6f,"s":"t","name":"%s"}`,
				l.group+1, l.tid+1, ts, escaper.Replace(ev.label))
		case evCounter:
			fmt.Fprintf(bw, `{"ph":"C","pid":%d,"ts":%.6f,"name":"%s","args":{"value":%g}}`,
				l.group+1, ts, escaper.Replace(l.name), ev.value)
		}
	}
	fmt.Fprint(bw, "\n]}\n")
	return bw.Flush()
}
