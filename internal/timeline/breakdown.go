package timeline

import (
	"fmt"
	"io"
)

// Breakdown accumulates Cycle attributions into a per-lane histogram —
// the Fig. 10-style stall breakdown. Slices, instants and counters are
// ignored; only engine lanes call Cycle, so the table has one row per
// engine. Rows keep lane registration order, which is deterministic.
type Breakdown struct {
	lanes  []breakLane
	counts [][NumCycleClasses]uint64
}

type breakLane struct {
	group, name string
}

// NewBreakdown returns an empty histogram recorder.
func NewBreakdown() *Breakdown { return &Breakdown{} }

func (b *Breakdown) Lane(group, name string) LaneID {
	b.lanes = append(b.lanes, breakLane{group: group, name: name})
	b.counts = append(b.counts, [NumCycleClasses]uint64{})
	return LaneID(len(b.lanes) - 1)
}

func (b *Breakdown) Slice(LaneID, uint64, uint64, string) {}
func (b *Breakdown) Instant(LaneID, uint64, string)       {}
func (b *Breakdown) Counter(LaneID, uint64, float64)      {}

func (b *Breakdown) Cycle(lane LaneID, _, _ uint64, class CycleClass) {
	b.counts[lane][class]++
}

// Counts returns the class histogram for a lane, looked up by group and
// name as registered, and whether any cycles were attributed to it.
func (b *Breakdown) Counts(group, name string) ([NumCycleClasses]uint64, bool) {
	for i, l := range b.lanes {
		if l.group == group && l.name == name {
			return b.counts[i], true
		}
	}
	return [NumCycleClasses]uint64{}, false
}

// Total returns the summed cycle count for a lane — equal to the engine's
// active cycle count, since every active cycle is attributed exactly once.
func (b *Breakdown) Total(group, name string) uint64 {
	c, _ := b.Counts(group, name)
	var t uint64
	for _, n := range c {
		t += n
	}
	return t
}

// WriteTable prints the breakdown for every lane that attributed at least
// one cycle, with per-class percentages.
func (b *Breakdown) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%-24s %10s", "lane", "cycles"); err != nil {
		return err
	}
	for c := 0; c < NumCycleClasses; c++ {
		fmt.Fprintf(w, " %16s", CycleClass(c).String())
	}
	fmt.Fprintln(w)
	for i, l := range b.lanes {
		var total uint64
		for _, n := range b.counts[i] {
			total += n
		}
		if total == 0 {
			continue
		}
		fmt.Fprintf(w, "%-24s %10d", l.group+"/"+l.name, total)
		for _, n := range b.counts[i] {
			fmt.Fprintf(w, " %8d (%5.1f%%)", n, 100*float64(n)/float64(total))
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
