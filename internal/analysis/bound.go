package analysis

import (
	"gosalam/internal/core"
	"gosalam/internal/hw"
)

// Every component below is a provable lower bound on kernel cycles,
// derived from an invariant the engine enforces by construction:
//
//   - read/write ports: at most ReadPorts loads (WritePorts stores) issue
//     per cycle, and at least Totals.Loads/Stores dynamic instances must
//     issue (minExec-weighted, so itself a lower bound on dynamic count);
//   - fu:<class>: per cycle, issue slots used plus busy unpipelined units
//     never exceed the instantiated units; a pipelined initiation consumes
//     one unit-cycle, an unpipelined one at least Latency unit-cycles;
//   - op-ii: a static op initiates at most once per cycle (the per-op
//     II=1 stamp), so the most-executed block containing a stamped op
//     forces at least that many cycles;
//   - block-fetch: the engine fetches at most two basic blocks per cycle,
//     and all but the entry block's first execution require a fetch;
//   - crit-path: a block's intra-block dependence chain cannot complete
//     faster than its weighted critical path (see opWeight), and every
//     block with MinExec >= 1 runs at least once inside the kernel window.
//
// The overall bound is the maximum; Binding names the component that set
// it — the resource a designer must widen before anything else matters.

// Component is one named contributor to the lower bound.
type Component struct {
	Name   string `json:"name"`
	Cycles uint64 `json:"cycles"`
}

// ClassBound is the per-FU-class demand and utilization envelope.
type ClassBound struct {
	Class     string `json:"class"`
	Units     int    `json:"units"`
	StaticOps int    `json:"static_ops"`
	// BusyWeighted is the minExec-weighted unit-cycle demand of the class.
	BusyWeighted uint64 `json:"busy_weighted"`
	MinCycles    uint64 `json:"min_cycles"`
	// UtilUB bounds the class's achievable occupancy from above:
	// demand / (bound_cycles * units), capped at 1. Sound as an upper
	// bound only when every contributing block's execution count is exact
	// (UtilSound); otherwise it is a heuristic estimate.
	UtilUB    float64 `json:"util_ub"`
	UtilSound bool    `json:"util_sound"`
}

// Bound is the resource-constrained cycle-count lower bound for one CDFG
// under one accelerator configuration.
type Bound struct {
	Cycles     uint64      `json:"cycles"`
	Binding    string      `json:"binding"`
	Components []Component `json:"components"`
	ReadPorts  int         `json:"read_ports"`
	WritePorts int         `json:"write_ports"`
	Classes    []ClassBound `json:"classes,omitempty"`
}

func ceilDiv(a uint64, b int) uint64 {
	if b <= 0 {
		return a
	}
	return (a + uint64(b) - 1) / uint64(b)
}

// LowerBound evaluates the bound for a specific accelerator config. The
// FU pool sizes are baked into the CDFG (limits apply at elaboration);
// only the memory-port knobs come from cfg, normalized exactly as the
// engine normalizes them.
func (r *Report) LowerBound(cfg core.AccelConfig) Bound {
	cfg = cfg.Normalized()
	b := Bound{ReadPorts: cfg.ReadPorts, WritePorts: cfg.WritePorts}

	comps := []Component{
		{Name: "read-ports", Cycles: ceilDiv(r.Totals.Loads, cfg.ReadPorts)},
		{Name: "write-ports", Cycles: ceilDiv(r.Totals.Stores, cfg.WritePorts)},
		{Name: "op-ii", Cycles: r.Totals.MaxOpExecs},
		{Name: "crit-path", Cycles: r.Totals.MaxBlockCP},
	}
	if r.Totals.BlockExecs > 0 {
		// ceil((execs-1)/2): all but the entry's first execution are
		// fetched, at most two fetches per cycle.
		comps = append(comps, Component{Name: "block-fetch", Cycles: r.Totals.BlockExecs / 2})
	}
	for _, c := range hw.AllFUClasses() {
		if r.classOps[c] == 0 || r.fuTotal[c] <= 0 {
			continue
		}
		comps = append(comps, Component{
			Name:   "fu:" + c.String(),
			Cycles: ceilDiv(r.classBusy[c], r.fuTotal[c]),
		})
	}
	for _, c := range comps {
		if c.Cycles > b.Cycles {
			b.Cycles = c.Cycles
			b.Binding = c.Name
		}
	}
	b.Components = comps
	if b.Cycles == 0 && r.StaticOps > 0 {
		b.Cycles = 1
		b.Binding = "min"
	}

	for _, c := range hw.AllFUClasses() {
		if r.classOps[c] == 0 {
			continue
		}
		cb := ClassBound{
			Class:        c.String(),
			Units:        r.fuTotal[c],
			StaticOps:    r.classOps[c],
			BusyWeighted: r.classBusy[c],
			MinCycles:    ceilDiv(r.classBusy[c], r.fuTotal[c]),
			UtilSound:    r.classExact[c],
		}
		if b.Cycles > 0 && r.fuTotal[c] > 0 {
			cb.UtilUB = float64(r.classBusy[c]) / (float64(b.Cycles) * float64(r.fuTotal[c]))
			if cb.UtilUB > 1 {
				cb.UtilUB = 1
			}
		}
		b.Classes = append(b.Classes, cb)
	}
	return b
}

// busyWeight is the unit-cycle cost one initiation charges against its FU
// class: pipelined units free their issue slot after one cycle, while an
// unpipelined unit stays occupied for the op's full latency.
func busyWeight(st *core.StaticOp) uint64 {
	if st.Pipelined {
		return 1
	}
	if st.Latency < 1 {
		return 1
	}
	return uint64(st.Latency)
}
