package analysis_test

// FuzzAnalyzeReport throws malformed CDFG sources at the whole static
// pipeline: parse -> verify -> elaborate -> analyze -> cycle bound ->
// energy bound. The contract under fuzz is "reject or analyze, never
// panic" — every bound must also stay finite and non-negative, since the
// search engine trusts these numbers enough to prune without simulating.

import (
	"math"
	"testing"

	"gosalam/internal/analysis"
	"gosalam/internal/core"
	"gosalam/internal/hw"
	"gosalam/ir"
	"gosalam/kernels"
)

func FuzzAnalyzeReport(f *testing.F) {
	// A real kernel round-tripped through the printer seeds the corpus with
	// well-formed structure for the mutator to corrupt.
	f.Add(ir.Print(kernels.GEMM(4, 1).M))
	f.Add(ir.Print(kernels.GEMMTree(4).M))
	f.Add("define void @f() {\nentry:\n  ret\n}\n")
	f.Add("define i32 @f(i32 %a) {\nentry:\n  %b = add i32 %a, 1\n  ret %b\n}\n")
	f.Add("define void @loop() {\nentry:\n  br head\nhead:\n  br head\n}\n")
	f.Add("global @g [16 x f32]\ndefine void @f(f32* %p) {\nentry:\n  %v = load f32, %p\n  ret\n}\n")
	f.Add("; comment only\n")
	f.Add("define")

	profile := hw.Default40nm()
	f.Fuzz(func(t *testing.T, src string) {
		m, err := ir.Parse("fuzz", src)
		if err != nil {
			return
		}
		cfg := core.AccelConfig{ReadPorts: 2, WritePorts: 2}
		for _, fn := range m.Funcs {
			g, err := core.Elaborate(fn, profile, nil)
			if err != nil {
				continue
			}
			rep := analysis.For(g)
			lb := rep.LowerBound(cfg)
			eb := rep.EnergyLowerBound(cfg, analysis.MemEnergy{ReadPJ: 1, WritePJ: 1.18, LeakMW: 0.3})
			for _, v := range []float64{eb.FUPJ, eb.RegPJ, eb.MemPJ, eb.LeakPJ, eb.TotalPJ, eb.EDPpJns()} {
				if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("non-finite or negative energy bound %v for %q (cycles %d)", eb, fn.Name(), lb.Cycles)
				}
			}
		}
	})
}
