package analysis

import (
	"gosalam/internal/core"
	"gosalam/internal/hw"
)

// This file proves a dynamic-energy lower bound per (CDFG, config): the
// static counterpart of the engine's energy accounting, built from the same
// minExec floors that back LowerBound. Every term mirrors a runtime counter
// and is provably no larger than what that counter will report:
//
//   - FUPJ <= FUEnergyPJ: every reachable block executes at least minExec
//     times inside the kernel window, and each execution of a non-memory op
//     charges its FU energy exactly once at commit;
//   - RegPJ <= RegReadPJ + RegWritePJ: each execution charges its operand
//     (or address) reads at issue and its result write at commit;
//   - MemPJ <= SPM reads*ReadEnergyPJ + writes*WriteEnergyPJ: each dynamic
//     load (store) performs at least one private-memory read (write), and
//     DMA/host traffic only adds accesses. Cache-backed runs attribute no
//     private-memory categories in PowerReport.TotalMW, so callers pass a
//     zero MemEnergy there and the term vanishes;
//   - LeakPJ <= leakage*elapsed: the kernel's wall time is at least
//     CyclesLB accelerator cycles, and leakage power is constant.
//
// The bound is therefore sound against measured TotalMW * elapsedNS for
// any run of the same (kernel, config); it is additionally Exact-flagged
// when every contributing block's trip count is proved (the same lattice
// as the UtilSound flag).

// MemEnergy carries the private-memory energy coefficients of one
// configuration: per-access read/write energy and leakage from the CACTI
// model at the run's exact sizing. Pass the zero value for cache-backed
// runs, mirroring the runtime accounting, which attributes no
// private-memory categories to the accelerator.
type MemEnergy struct {
	ReadPJ  float64
	WritePJ float64
	LeakMW  float64
}

// ClassEnergy is one FU class's share of the dynamic-energy floor.
type ClassEnergy struct {
	Class string `json:"class"`
	// Inits is the minExec-weighted initiation count (terminators counted
	// under their control class: they charge FU energy at commit).
	Inits    uint64  `json:"inits"`
	EnergyPJ float64 `json:"energy_pj"`
	// Exact is true when every block contributing to this class has a
	// proved trip count, so Inits and EnergyPJ are exact rather than
	// floors.
	Exact bool `json:"exact"`
}

// EnergyBound is the provable dynamic-energy lower bound of one (CDFG,
// config) pair, in picojoules.
type EnergyBound struct {
	// FUPJ/RegPJ/MemPJ are the dynamic floors mirroring the engine's
	// FUEnergyPJ, RegReadPJ+RegWritePJ, and private-memory access-energy
	// counters.
	FUPJ  float64 `json:"fu_pj"`
	RegPJ float64 `json:"reg_pj"`
	MemPJ float64 `json:"mem_pj"`
	// LeakPJ is total leakage (datapath + private memory) integrated over
	// the cycle-count lower bound.
	LeakPJ  float64 `json:"leak_pj"`
	TotalPJ float64 `json:"total_pj"`
	// CyclesLB and PeriodNS are the cycle bound and clock period the
	// leakage term integrates over.
	CyclesLB uint64  `json:"cycles_lb"`
	PeriodNS float64 `json:"period_ns"`
	// Exact is true when every reachable block's trip count is proved, so
	// the dynamic terms are exact counts, not just floors (same lattice as
	// Envelope.EnergyExact / ClassBound.UtilSound).
	Exact   bool          `json:"exact"`
	Classes []ClassEnergy `json:"classes,omitempty"`
}

// EDPpJns returns the energy-delay-product lower bound in pJ*ns: the
// energy floor times the delay floor. Sound because both factors are
// positive lower bounds of their measured counterparts.
func (b EnergyBound) EDPpJns() float64 {
	return b.TotalPJ * float64(b.CyclesLB) * b.PeriodNS
}

// EnergyLowerBound evaluates the dynamic-energy lower bound for a specific
// accelerator config and private-memory energy model. The FU inventory is
// baked into the CDFG; cfg contributes the port knobs (through the cycle
// bound) and the clock period.
func (r *Report) EnergyLowerBound(cfg core.AccelConfig, mem MemEnergy) EnergyBound {
	cfg = cfg.Normalized()
	mhz := cfg.ClockMHz
	if mhz <= 0 {
		mhz = 100
	}
	b := EnergyBound{
		FUPJ:     r.fuFloorPJ,
		RegPJ:    r.regFloorPJ,
		MemPJ:    float64(r.Totals.Loads)*mem.ReadPJ + float64(r.Totals.Stores)*mem.WritePJ,
		CyclesLB: r.LowerBound(cfg).Cycles,
		PeriodNS: 1000.0 / mhz,
		Exact:    r.Envelope.EnergyExact,
	}
	leakMW := r.Envelope.StaticFUMW + r.Envelope.StaticRegMW + mem.LeakMW
	b.LeakPJ = leakMW * float64(b.CyclesLB) * b.PeriodNS // mW * ns = pJ
	b.TotalPJ = b.FUPJ + b.RegPJ + b.MemPJ + b.LeakPJ
	for _, c := range hw.AllFUClasses() {
		if r.classInits[c] == 0 {
			continue
		}
		b.Classes = append(b.Classes, ClassEnergy{
			Class:    c.String(),
			Inits:    r.classInits[c],
			EnergyPJ: r.classEnergyPJ[c],
			Exact:    r.classInitOK[c],
		})
	}
	return b
}
