package analysis

import (
	"gosalam/ir"
	"gosalam/internal/core"
	"gosalam/internal/hw"
)

// OpSched is one op's position in its block's dependence-only schedule.
// ASAP assumes infinite resources; ALAP is the latest issue cycle that
// still meets the block's critical path. Slack-zero ops are the critical
// chain — the ops a faster FU or extra port cannot hide.
type OpSched struct {
	Name     string `json:"name"`
	Op       string `json:"op"`
	Class    string `json:"class,omitempty"`
	Weight   uint64 `json:"weight"`
	ASAP     uint64 `json:"asap"`
	ALAP     uint64 `json:"alap"`
	Slack    uint64 `json:"slack"`
	Critical bool   `json:"critical"`
}

// BlockSched is the dependence schedule of one basic block.
type BlockSched struct {
	Block string `json:"block"`
	// CritPathCycles is the longest dependence chain through the block
	// under the engine's verified timing contract (see opWeight), so a
	// single execution of this block cannot finish in fewer cycles.
	CritPathCycles uint64 `json:"crit_path_cycles"`
	// MinExec is the provable per-invocation execution floor; Exact marks
	// counts derived entirely from counted loops and dominance.
	MinExec uint64 `json:"min_exec"`
	Exact   bool   `json:"exact"`
	Ops     []OpSched `json:"ops,omitempty"`
	// Critical lists the slack-zero op names in program order.
	Critical []string `json:"critical,omitempty"`
}

// opWeight is the minimum number of cycles between an op's issue and the
// earliest cycle a dependent op can issue, under the engine's verified
// contract: a latency-L compute op commits exactly L cycles after issue
// (commit phase precedes issue phase, so a consumer issues at +L); a load
// completes no earlier than the next cycle even on an SPM hit; stores,
// terminators, and zero-latency ops (mux, control) commit in their issue
// cycle.
func opWeight(st *core.StaticOp) uint64 {
	switch {
	case st.Mem && st.Load:
		return 1
	case st.Mem: // store: a sink, nothing consumes its (absent) result
		return 1
	case st.Term:
		return 0
	case st.Latency > 0:
		return uint64(st.Latency)
	}
	return 0
}

// scheduleBlock computes the ASAP/ALAP schedule of one block over its
// intra-block SSA dependence DAG. Phi operands are loop-carried or
// cross-block by construction and carry no same-execution edge; everything
// else follows In.Args producers defined in the same block. BlockOps is in
// program order and non-phi SSA producers precede their consumers, so one
// forward and one backward pass suffice.
func scheduleBlock(b *ir.Block, ops []*core.StaticOp, minExec uint64, exact bool) BlockSched {
	n := len(ops)
	pos := make(map[*ir.Instr]int, n)
	for i, st := range ops {
		pos[st.In] = i
	}
	w := make([]uint64, n)
	asap := make([]uint64, n)
	for i, st := range ops {
		w[i] = opWeight(st)
		if st.In.Op == ir.OpPhi {
			continue
		}
		for _, arg := range st.In.Args {
			p, ok := arg.(*ir.Instr)
			if !ok {
				continue
			}
			j, same := pos[p]
			if !same || j >= i {
				continue
			}
			if t := asap[j] + w[j]; t > asap[i] {
				asap[i] = t
			}
		}
	}
	var cp uint64
	for i := range ops {
		if t := asap[i] + w[i]; t > cp {
			cp = t
		}
	}
	alap := make([]uint64, n)
	hasUse := make([]bool, n)
	for i := n - 1; i >= 0; i-- {
		st := ops[i]
		if st.In.Op != ir.OpPhi {
			for _, arg := range st.In.Args {
				if p, ok := arg.(*ir.Instr); ok {
					if j, same := pos[p]; same && j < i {
						hasUse[j] = true
					}
				}
			}
		}
	}
	for i := n - 1; i >= 0; i-- {
		alap[i] = cp - w[i]
		if !hasUse[i] {
			continue
		}
		first := true
		for k := i + 1; k < n; k++ {
			if ops[k].In.Op == ir.OpPhi {
				continue
			}
			for _, arg := range ops[k].In.Args {
				if p, ok := arg.(*ir.Instr); ok && p == ops[i].In {
					if t := alap[k] - w[i]; first || t < alap[i] {
						alap[i] = t
						first = false
					}
				}
			}
		}
	}
	bs := BlockSched{Block: b.Name(), CritPathCycles: cp, MinExec: minExec, Exact: exact}
	bs.Ops = make([]OpSched, n)
	for i, st := range ops {
		cls := ""
		if st.Class != hw.FUNone {
			cls = st.Class.String()
		}
		slack := alap[i] - asap[i]
		bs.Ops[i] = OpSched{
			Name:     st.In.Name,
			Op:       st.In.Op.String(),
			Class:    cls,
			Weight:   w[i],
			ASAP:     asap[i],
			ALAP:     alap[i],
			Slack:    slack,
			Critical: slack == 0,
		}
		if bs.Ops[i].Slack == 0 {
			bs.Critical = append(bs.Critical, st.In.Name)
		}
	}
	return bs
}
