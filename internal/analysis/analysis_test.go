package analysis

import (
	"testing"

	"gosalam/ir"
	"gosalam/internal/core"
	"gosalam/internal/hw"
)

func elab(t *testing.T, f *ir.Function) *core.CDFG {
	t.Helper()
	g, err := core.Elaborate(f, hw.Default40nm(), nil)
	if err != nil {
		t.Fatalf("elaborate %s: %v", f.Name(), err)
	}
	return g
}

// buildNest builds a 2-deep counted nest storing to a global:
//
//	for i in [0,8) { for j in [0,4) { buf[i*4+j] = j } }
func buildNest(t *testing.T) (*ir.Module, *ir.Function) {
	t.Helper()
	m := ir.NewModule("t")
	buf := m.AddGlobal("buf", ir.Arr(32, ir.I32))
	b := ir.NewBuilder(m)
	f := b.Func("nest", ir.Void)
	b.Loop("i", ir.I64c(0), ir.I64c(8), 1, func(i ir.Value) {
		b.Loop("j", ir.I64c(0), ir.I64c(4), 1, func(j ir.Value) {
			base := b.Mul(i, ir.I64c(4), "base")
			idx := b.Add(base, j, "idx")
			p := b.GEP(buf, "p", ir.I64c(0), idx)
			b.Store(b.Trunc(j, ir.I32, "jv"), p)
		})
	})
	b.Ret(nil)
	return m, f
}

func TestCountedNestExecCounts(t *testing.T) {
	_, f := buildNest(t)
	c := buildCFG(f)
	if len(c.loops) != 2 {
		t.Fatalf("loops = %d, want 2", len(c.loops))
	}
	trips := map[string]int64{}
	for _, l := range c.loops {
		trips[c.blocks[l.header].Name()] = l.trip
	}
	if trips["i.head"] != 8 || trips["j.head"] != 4 {
		t.Fatalf("trips = %v, want i=8 j=4", trips)
	}
	want := map[string]uint64{
		"entry":  1,
		"i.head": 9,
		"j.head": 8 * 5, // (4+1) headers per entry, 8 entries
		"j.body": 32,
		"j.exit": 8,
		"i.exit": 1,
	}
	for i, b := range f.Blocks {
		if w, ok := want[b.Name()]; ok {
			if c.minExec[i] != w {
				t.Errorf("minExec[%s] = %d, want %d", b.Name(), c.minExec[i], w)
			}
			if !c.exact[i] {
				t.Errorf("minExec[%s] should be exact", b.Name())
			}
		}
	}
}

// Data-dependent bound: the comparison limit is a loaded value, so the
// trip is unprovable and counts degrade to the dominance fallback.
func TestDataDependentLoopUnproven(t *testing.T) {
	m := ir.NewModule("t")
	n := m.AddGlobal("n", ir.I64)
	buf := m.AddGlobal("buf", ir.Arr(64, ir.I64))
	b := ir.NewBuilder(m)
	f := b.Func("dyn", ir.Void)
	limit := b.Load(n, "limit")

	head := b.Block("head")
	body := b.Block("body")
	exit := b.Block("exit")
	pre := b.B
	b.Br(head)
	b.SetBlock(head)
	iv := b.Phi(ir.I64, "iv")
	ir.AddIncoming(iv, ir.I64c(0), pre)
	cond := b.ICmp(ir.ISLT, iv, limit, "cond")
	b.CondBr(cond, body, exit)
	b.SetBlock(body)
	b.Store(iv, b.GEP(buf, "p", ir.I64c(0), iv))
	next := b.Add(iv, ir.I64c(1), "next")
	ir.AddIncoming(iv, next, b.B)
	b.Br(head)
	b.SetBlock(exit)
	b.Ret(nil)

	c := buildCFG(f)
	if len(c.loops) != 1 || c.loops[0].trip != -1 {
		t.Fatalf("data-dependent loop should be unproven, got %+v", c.loops[0])
	}
	for i, blk := range f.Blocks {
		switch blk.Name() {
		case "entry", "head", "exit":
			// entry and head/exit dominate the ret: at least one execution.
			if c.minExec[i] != 1 {
				t.Errorf("minExec[%s] = %d, want fallback 1", blk.Name(), c.minExec[i])
			}
		case "body":
			if c.minExec[i] != 0 {
				t.Errorf("minExec[body] = %d, want 0 (may never run)", c.minExec[i])
			}
		}
	}
}

// A loop with a break (exit from the body) must not be treated as counted.
func TestLoopWithBreakUnproven(t *testing.T) {
	m := ir.NewModule("t")
	buf := m.AddGlobal("buf", ir.Arr(64, ir.I64))
	b := ir.NewBuilder(m)
	f := b.Func("brk", ir.Void)

	head := b.Block("head")
	body := b.Block("body")
	cont := b.Block("cont")
	exit := b.Block("exit")
	pre := b.B
	b.Br(head)
	b.SetBlock(head)
	iv := b.Phi(ir.I64, "iv")
	ir.AddIncoming(iv, ir.I64c(0), pre)
	cond := b.ICmp(ir.ISLT, iv, ir.I64c(16), "cond")
	b.CondBr(cond, body, exit)
	b.SetBlock(body)
	v := b.Load(b.GEP(buf, "p", ir.I64c(0), iv), "v")
	brk := b.ICmp(ir.IEQ, v, ir.I64c(7), "brk")
	b.CondBr(brk, exit, cont) // the break edge
	b.SetBlock(cont)
	next := b.Add(iv, ir.I64c(1), "next")
	ir.AddIncoming(iv, next, b.B)
	b.Br(head)
	b.SetBlock(exit)
	b.Ret(nil)

	c := buildCFG(f)
	if len(c.loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(c.loops))
	}
	if c.loops[0].exitViaHeaderOnly || c.loops[0].trip != -1 {
		t.Fatalf("break loop must be unproven, got trip %d", c.loops[0].trip)
	}
}

// A single-block self-loop (header == latch, the shape clang -O1 emits for
// innermost loops) must have a body of exactly its header. Seeding the
// backward body walk with the header used to absorb every block reaching
// the loop, which broke nesting badly enough to cycle the loop parent
// chain — buildCFG then never terminated. The go test timeout guards the
// termination half of this regression.
func TestSelfLoopBodyAndNesting(t *testing.T) {
	m := ir.NewModule("t")
	buf := m.AddGlobal("buf", ir.Arr(64, ir.I64))
	b := ir.NewBuilder(m)
	f := b.Func("selfnest", ir.Void)

	ohead := b.Block("ohead")
	inner := b.Block("inner")
	olatch := b.Block("olatch")
	exit := b.Block("exit")
	pre := b.B
	b.Br(ohead)
	b.SetBlock(ohead)
	i := b.Phi(ir.I64, "i")
	ir.AddIncoming(i, ir.I64c(0), pre)
	oc := b.ICmp(ir.ISLT, i, ir.I64c(8), "oc")
	b.CondBr(oc, inner, exit)
	b.SetBlock(inner)
	j := b.Phi(ir.I64, "j")
	ir.AddIncoming(j, ir.I64c(0), ohead)
	b.Store(j, b.GEP(buf, "p", ir.I64c(0), j))
	jn := b.Add(j, ir.I64c(1), "jn")
	ir.AddIncoming(j, jn, inner)
	ic := b.ICmp(ir.ISLT, jn, ir.I64c(4), "ic")
	b.CondBr(ic, inner, olatch)
	b.SetBlock(olatch)
	in := b.Add(i, ir.I64c(1), "in")
	ir.AddIncoming(i, in, olatch)
	b.Br(ohead)
	b.SetBlock(exit)
	b.Ret(nil)

	c := buildCFG(f)
	if len(c.loops) != 2 {
		t.Fatalf("loops = %d, want 2", len(c.loops))
	}
	byHeader := map[string]*loopInfo{}
	for _, l := range c.loops {
		byHeader[c.blocks[l.header].Name()] = l
	}
	self, outer := byHeader["inner"], byHeader["ohead"]
	if self == nil || outer == nil {
		t.Fatalf("headers = %v, want inner and ohead", byHeader)
	}
	if self.nblocks != 1 {
		t.Errorf("self-loop nblocks = %d, want 1 (body must be the header alone)", self.nblocks)
	}
	if outer.nblocks != 3 {
		t.Errorf("outer nblocks = %d, want 3 (ohead, inner, olatch)", outer.nblocks)
	}
	if self.parent < 0 || c.loops[self.parent] != outer || self.depth != 1 {
		t.Errorf("self-loop parent/depth = %d/%d, want nested once under ohead", self.parent, self.depth)
	}
	if outer.parent != -1 || outer.depth != 0 {
		t.Errorf("outer parent/depth = %d/%d, want top level", outer.parent, outer.depth)
	}
}

// buildRotated builds the rotated (do-while) counted loop clang -O1
// emits: increment first, then `icmp eq %inc, hi` exiting on true from
// the latch. step/hi are parameters so the non-divisible case can assert
// the prover refuses to guess.
func buildRotated(t *testing.T, step, hi int64) *ir.Function {
	t.Helper()
	m := ir.NewModule("t")
	buf := m.AddGlobal("buf", ir.Arr(64, ir.I64))
	b := ir.NewBuilder(m)
	f := b.Func("rot", ir.Void)

	body := b.Block("body")
	exit := b.Block("exit")
	pre := b.B
	b.Br(body)
	b.SetBlock(body)
	iv := b.Phi(ir.I64, "iv")
	ir.AddIncoming(iv, ir.I64c(0), pre)
	b.Store(iv, b.GEP(buf, "p", ir.I64c(0), iv))
	inc := b.Add(iv, ir.I64c(step), "inc")
	ir.AddIncoming(iv, inc, body)
	done := b.ICmp(ir.IEQ, inc, ir.I64c(hi), "done")
	b.CondBr(done, exit, body)
	b.SetBlock(exit)
	b.Ret(nil)
	return f
}

// The rotated shape must prove its trip, and the header — which IS the
// body in a self-loop — must count exactly trip executions, not the
// while-shape's trip+1 header tests.
func TestRotatedLoopTripProven(t *testing.T) {
	c := buildCFG(buildRotated(t, 1, 16))
	if len(c.loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(c.loops))
	}
	l := c.loops[0]
	if !l.rotated || l.trip != 16 || l.lo != 0 || l.step != 1 {
		t.Fatalf("rotated/trip/lo/step = %v/%d/%d/%d, want true/16/0/1", l.rotated, l.trip, l.lo, l.step)
	}
	if l.ivLast != 15 {
		t.Errorf("ivLast = %d, want 15 (the phi never holds the exit bound)", l.ivLast)
	}
	for i, blk := range c.blocks {
		want := uint64(1)
		if blk.Name() == "body" {
			want = 16
		}
		if c.minExec[i] != want || !c.exact[i] {
			t.Errorf("minExec[%s] = %d exact=%v, want %d exact", blk.Name(), c.minExec[i], c.exact[i], want)
		}
	}
}

// An equality exit the increment steps over (3 never divides 16) must
// stay unproven: guessing a trip there would be unsound, the source loop
// would not even terminate.
func TestRotatedLoopNonDivisibleUnproven(t *testing.T) {
	c := buildCFG(buildRotated(t, 3, 16))
	if len(c.loops) != 1 || c.loops[0].trip != -1 {
		t.Fatalf("non-divisible rotated loop must stay unproven, got trip %d", c.loops[0].trip)
	}
}

func TestMemDisjointHalvesNoHazard(t *testing.T) {
	m := ir.NewModule("t")
	buf := m.AddGlobal("buf", ir.Arr(16, ir.I64))
	b := ir.NewBuilder(m)
	f := b.Func("halves", ir.Void)
	b.Loop("i", ir.I64c(0), ir.I64c(8), 1, func(i ir.Value) {
		v := b.Load(b.GEP(buf, "lo", ir.I64c(0), b.Add(i, ir.I64c(8), "hi_idx")), "v")
		b.Store(v, b.GEP(buf, "so", ir.I64c(0), i))
	})
	b.Ret(nil)
	rep := Analyze(elab(t, f))
	if !rep.Mem.NoHazardProven || len(rep.Mem.Hazards) != 0 {
		t.Fatalf("disjoint halves flagged: hazards=%v", rep.Mem.Hazards)
	}
	if len(rep.Mem.OOB) != 0 {
		t.Fatalf("unexpected OOB: %v", rep.Mem.OOB)
	}
}

// Interleaved strides: store buf[2i], load buf[2i+1] — congruence-disjoint
// even though the ranges overlap.
func TestMemStrideDisjointNoHazard(t *testing.T) {
	m := ir.NewModule("t")
	buf := m.AddGlobal("buf", ir.Arr(32, ir.I64))
	b := ir.NewBuilder(m)
	f := b.Func("stride", ir.Void)
	b.Loop("i", ir.I64c(0), ir.I64c(8), 1, func(i ir.Value) {
		even := b.Mul(i, ir.I64c(2), "even")
		odd := b.Add(even, ir.I64c(1), "odd")
		v := b.Load(b.GEP(buf, "lp", ir.I64c(0), odd), "v")
		b.Store(v, b.GEP(buf, "sp", ir.I64c(0), even))
	})
	b.Ret(nil)
	rep := Analyze(elab(t, f))
	if !rep.Mem.NoHazardProven {
		t.Fatalf("stride-disjoint accesses flagged: %v", rep.Mem.Hazards)
	}
}

// Same-cell traffic must be reported as a hazard pair.
func TestMemOverlapHazardReported(t *testing.T) {
	m := ir.NewModule("t")
	buf := m.AddGlobal("buf", ir.Arr(16, ir.I64))
	b := ir.NewBuilder(m)
	f := b.Func("acc", ir.Void)
	b.Loop("i", ir.I64c(0), ir.I64c(8), 1, func(i ir.Value) {
		p := b.GEP(buf, "p", ir.I64c(0), ir.I64c(0))
		v := b.Load(p, "v")
		b.Store(b.Add(v, i, "nv"), p)
	})
	b.Ret(nil)
	rep := Analyze(elab(t, f))
	if rep.Mem.NoHazardProven || len(rep.Mem.Hazards) == 0 {
		t.Fatal("accumulator traffic should report hazards")
	}
	kinds := map[string]bool{}
	for _, h := range rep.Mem.Hazards {
		kinds[h.Kind] = true
	}
	if !kinds["raw"] && !kinds["war"] {
		t.Fatalf("expected raw/war hazards, got %v", rep.Mem.Hazards)
	}
}

func TestProvableOutOfBounds(t *testing.T) {
	m := ir.NewModule("t")
	buf := m.AddGlobal("buf", ir.Arr(8, ir.I64))
	b := ir.NewBuilder(m)
	f := b.Func("oob", ir.Void)
	// Every execution reads buf[8..15] of an 8-element buffer.
	b.Loop("i", ir.I64c(0), ir.I64c(8), 1, func(i ir.Value) {
		v := b.Load(b.GEP(buf, "p", ir.I64c(0), b.Add(i, ir.I64c(8), "idx")), "v")
		b.Store(v, b.GEP(buf, "q", ir.I64c(0), ir.I64c(0)))
	})
	b.Ret(nil)
	rep := Analyze(elab(t, f))
	if len(rep.Mem.OOB) == 0 {
		t.Fatal("no OOB finding for a provably out-of-bounds access")
	}
	found := false
	for _, o := range rep.Mem.OOB {
		if o.Proven {
			found = true
		}
	}
	if !found {
		t.Fatalf("OOB finding should be proven: %+v", rep.Mem.OOB)
	}
}

// The final iteration leaks one element past the end: a heuristic warning,
// not a proof (some executions are in bounds).
func TestPartialOOBWarned(t *testing.T) {
	m := ir.NewModule("t")
	buf := m.AddGlobal("buf", ir.Arr(8, ir.I64))
	b := ir.NewBuilder(m)
	f := b.Func("edge", ir.Void)
	b.Loop("i", ir.I64c(0), ir.I64c(8), 1, func(i ir.Value) {
		v := b.Load(b.GEP(buf, "p", ir.I64c(0), b.Add(i, ir.I64c(1), "idx")), "v")
		b.Store(v, b.GEP(buf, "q", ir.I64c(0), i))
	})
	b.Ret(nil)
	rep := Analyze(elab(t, f))
	if len(rep.Mem.OOB) != 1 {
		t.Fatalf("OOB findings = %v, want exactly the load warning", rep.Mem.OOB)
	}
	if rep.Mem.OOB[0].Proven {
		t.Fatal("partial overrun must stay a heuristic warning, not a proof")
	}
}

func TestDeadAndUnreachableReporting(t *testing.T) {
	m := ir.NewModule("t")
	b := ir.NewBuilder(m)
	f := b.Func("dead", ir.Void)
	b.Add(ir.I64c(1), ir.I64c(2), "unused")
	done := b.Block("done")
	b.Br(done)
	orphan := b.Block("orphan")
	b.SetBlock(orphan)
	b.Br(done)
	b.SetBlock(done)
	b.Ret(nil)

	rep := Analyze(elab(t, f))
	if len(rep.DeadOps) != 1 || rep.DeadOps[0] != "%unused" {
		t.Errorf("DeadOps = %v, want [%%unused]", rep.DeadOps)
	}
	if len(rep.Unreachable) != 1 || rep.Unreachable[0] != "orphan" {
		t.Errorf("Unreachable = %v, want [orphan]", rep.Unreachable)
	}
}

// The bound's components must respond to the knobs they model.
func TestBoundComponentsRespondToConfig(t *testing.T) {
	_, f := buildNest(t)
	rep := Analyze(elab(t, f))
	narrow := rep.LowerBound(core.AccelConfig{ReadPorts: 1, WritePorts: 1})
	wide := rep.LowerBound(core.AccelConfig{ReadPorts: 8, WritePorts: 8})
	if narrow.Cycles < wide.Cycles {
		t.Fatalf("narrowing ports lowered the bound: %d < %d", narrow.Cycles, wide.Cycles)
	}
	if wide.Binding == "" || len(wide.Components) == 0 {
		t.Fatalf("bound missing binding/components: %+v", wide)
	}
	// 32 stores through 1 write port force at least 32 cycles.
	if narrow.Cycles < 32 {
		t.Fatalf("1-port bound %d, want >= 32 (32 stores)", narrow.Cycles)
	}
}
