package analysis

import (
	"sync"
	"sync/atomic"

	"gosalam/ir"
	"gosalam/internal/core"
	"gosalam/internal/hw"
)

// Totals are the minExec-weighted dynamic-work floors of one CDFG — the
// configuration-independent inputs to LowerBound.
type Totals struct {
	// Loads/Stores are lower bounds on dynamic memory instances.
	Loads  uint64 `json:"loads"`
	Stores uint64 `json:"stores"`
	// BlockExecs is a lower bound on total basic-block executions.
	BlockExecs uint64 `json:"block_execs"`
	// DynOps is a lower bound on total dynamic op instances.
	DynOps uint64 `json:"dyn_ops"`
	// MaxOpExecs is the largest execution floor of any block containing a
	// stamped compute op (per-static-op initiation interval of 1).
	MaxOpExecs uint64 `json:"max_op_execs"`
	// MaxBlockCP is the longest weighted critical path of any block that
	// provably executes.
	MaxBlockCP uint64 `json:"max_block_cp"`
}

// Envelope is the static power/area/energy envelope from the hardware
// profile's models: leakage and area are exact properties of the
// elaborated datapath; MinDynEnergyPJ is the minExec-weighted floor of
// the dynamic energy the engine will charge (exact when EnergyExact).
type Envelope struct {
	StaticFUMW     float64 `json:"static_fu_mw"`
	StaticRegMW    float64 `json:"static_reg_mw"`
	AreaFUUM2      float64 `json:"area_fu_um2"`
	AreaRegUM2     float64 `json:"area_reg_um2"`
	AreaUM2        float64 `json:"area_um2"`
	MinDynEnergyPJ float64 `json:"min_dyn_energy_pj"`
	EnergyExact    bool    `json:"energy_exact"`
}

// LoopReport is one detected natural loop.
type LoopReport struct {
	Header string `json:"header"`
	Depth  int    `json:"depth"`
	Blocks int    `json:"blocks"`
	// Trip is the proven constant trip count, -1 when not provable
	// (data-dependent bounds degrade every dependent result to its
	// dominance fallback, never to an unsound number).
	Trip int64  `json:"trip"`
	IV   string `json:"iv,omitempty"`
}

// Report is the full static analysis of one elaborated CDFG. It is
// immutable once built and safe to share across goroutines.
type Report struct {
	Function  string       `json:"function"`
	Blocks    int          `json:"blocks"`
	Reachable int          `json:"reachable"`
	StaticOps int          `json:"static_ops"`
	// Unreachable lists blocks no entry path reaches; DeadOps lists ops
	// whose results are never consumed (a DCE pass or HLS tool would
	// strip them; the engine still spends issue slots on them).
	Unreachable []string     `json:"unreachable,omitempty"`
	DeadOps     []string     `json:"dead_ops,omitempty"`
	Loops       []LoopReport `json:"loops,omitempty"`
	Sched       []BlockSched `json:"sched"`
	Mem         MemReport    `json:"mem"`
	Totals      Totals       `json:"totals"`
	Envelope    Envelope     `json:"envelope"`

	// Per-FU-class demand, indexed by hw.FUClass (terminators excluded:
	// the engine's control path never contends for units).
	classBusy  []uint64
	classOps   []int
	classExact []bool
	fuTotal    []int

	// Per-FU-class minExec-weighted initiation counts and FU energy,
	// indexed by hw.FUClass. Terminators ARE included here (under
	// FUControl): they never contend for units, but the engine charges
	// their FU energy at commit, so the per-class energies must sum to the
	// FU floor.
	classInits    []uint64
	classEnergyPJ []float64
	classInitOK   []bool

	// The MinDynEnergyPJ split, mirroring the engine's three counters:
	// fuFloorPJ lower-bounds FUEnergyPJ, regFloorPJ lower-bounds
	// RegReadPJ + RegWritePJ. MinDynEnergyPJ == fuFloorPJ + regFloorPJ.
	fuFloorPJ  float64
	regFloorPJ float64
}

// Analyze computes the full static report for an elaborated CDFG. Use For
// to get the cached instance instead; Analyze always recomputes.
func Analyze(g *core.CDFG) *Report {
	c := buildCFG(g.F)
	r := &Report{
		Function:   g.F.Name(),
		Blocks:     len(g.F.Blocks),
		StaticOps:  g.NumOps,
		classBusy:     make([]uint64, hw.NumFUClasses()),
		classOps:      make([]int, hw.NumFUClasses()),
		classExact:    make([]bool, hw.NumFUClasses()),
		fuTotal:       make([]int, hw.NumFUClasses()),
		classInits:    make([]uint64, hw.NumFUClasses()),
		classEnergyPJ: make([]float64, hw.NumFUClasses()),
		classInitOK:   make([]bool, hw.NumFUClasses()),
	}
	for _, cl := range hw.AllFUClasses() {
		r.fuTotal[cl] = g.FUTotal[cl]
		r.classExact[cl] = true
		r.classInitOK[cl] = true
	}

	used := make(map[*ir.Instr]bool)
	for _, b := range g.F.Blocks {
		for _, in := range b.Instrs {
			for _, arg := range in.Args {
				if p, ok := arg.(*ir.Instr); ok {
					used[p] = true
				}
			}
		}
	}

	energyExact := true
	for bi, b := range g.F.Blocks {
		if !c.reachable[bi] {
			r.Unreachable = append(r.Unreachable, b.Name())
			continue
		}
		r.Reachable++
		minExec, exact := c.minExec[bi], c.exact[bi]
		if !exact {
			energyExact = false
		}
		bs := scheduleBlock(b, g.BlockOps[b], minExec, exact)
		r.Sched = append(r.Sched, bs)
		r.Totals.BlockExecs += minExec
		if minExec >= 1 && bs.CritPathCycles > r.Totals.MaxBlockCP {
			r.Totals.MaxBlockCP = bs.CritPathCycles
		}
		for _, st := range g.BlockOps[b] {
			r.Totals.DynOps += minExec
			switch {
			case st.Mem && st.Load:
				r.Totals.Loads += minExec
			case st.Mem:
				r.Totals.Stores += minExec
			case st.Term:
				// control path: no FU contention, no II stamp
			case st.Class != hw.FUNone:
				r.classBusy[st.Class] += minExec * busyWeight(st)
				r.classOps[st.Class]++
				if !exact {
					r.classExact[st.Class] = false
				}
				if minExec > r.Totals.MaxOpExecs {
					r.Totals.MaxOpExecs = minExec
				}
			}
			if in := st.In; in.HasResult() && !used[in] && !st.Store && !st.Term {
				r.DeadOps = append(r.DeadOps, "%"+in.Name)
			}
			fuPJ, regPJ := fuPerExecPJ(st), regPerExecPJ(st)
			r.fuFloorPJ += float64(minExec) * fuPJ
			r.regFloorPJ += float64(minExec) * regPJ
			r.Envelope.MinDynEnergyPJ += float64(minExec) * (fuPJ + regPJ)
			if !st.Mem && st.Class != hw.FUNone {
				r.classInits[st.Class] += minExec
				r.classEnergyPJ[st.Class] += float64(minExec) * st.EnergyPJ
				if !exact {
					r.classInitOK[st.Class] = false
				}
			}
		}
	}

	for _, l := range c.loops {
		lr := LoopReport{
			Header: c.blocks[l.header].Name(),
			Depth:  l.depth,
			Blocks: l.nblocks,
			Trip:   l.trip,
		}
		if l.iv != nil {
			lr.IV = "%" + l.iv.Name
		}
		r.Loops = append(r.Loops, lr)
	}

	r.Mem, _ = c.analyzeMem(g)

	r.Envelope.StaticFUMW = g.StaticFULeakageMW()
	r.Envelope.StaticRegMW = g.StaticRegLeakageMW()
	r.Envelope.AreaUM2 = g.AreaUM2()
	r.Envelope.AreaRegUM2 = g.Profile.Reg.AreaUM2 * float64(g.RegBits)
	r.Envelope.AreaFUUM2 = r.Envelope.AreaUM2 - r.Envelope.AreaRegUM2
	r.Envelope.EnergyExact = energyExact
	return r
}

// perExecEnergyPJ is the energy the engine charges for one dynamic
// execution of a static op, mirroring the issue/commit accounting in
// accel.go: memory ops charge the address read at issue and (loads) the
// register write at commit; terminators charge only their FU energy at
// commit; everything else charges all operand reads at issue plus FU
// energy and the result write at commit.
func perExecEnergyPJ(st *core.StaticOp) float64 {
	return fuPerExecPJ(st) + regPerExecPJ(st)
}

// fuPerExecPJ is the slice of one execution's energy the engine books
// against FUEnergyPJ: the FU dynamic energy, charged at commit for every
// non-memory op (memory ops have no FU; class FUNone specs are zero).
func fuPerExecPJ(st *core.StaticOp) float64 {
	if st.Mem {
		return 0
	}
	return st.EnergyPJ
}

// regPerExecPJ is the slice booked against RegReadPJ + RegWritePJ: the
// address-register read (memory ops), operand reads (compute ops), and the
// result write when the op produces one. Terminators charge no register
// traffic.
func regPerExecPJ(st *core.StaticOp) float64 {
	switch {
	case st.Mem:
		e := st.MemReadPJ
		if st.Result {
			e += st.WritePJ
		}
		return e
	case st.Term:
		return 0
	}
	e := 0.0
	for _, v := range st.ReadPJ {
		e += v
	}
	if st.Result {
		e += st.WritePJ
	}
	return e
}

// The per-CDFG report cache. Elaboration interns CDFGs process-wide (see
// core/elabcache.go), so pointer identity is a correct and collision-free
// cache key, and the analysis of a design-space sweep's shared graph is
// paid once.
var (
	reportCache sync.Map // *core.CDFG -> *Report
	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64
)

// For returns the (possibly cached) analysis of g. Concurrent first calls
// may compute twice; the result is deterministic, so either copy wins.
func For(g *core.CDFG) *Report {
	if v, ok := reportCache.Load(g); ok {
		cacheHits.Add(1)
		return v.(*Report)
	}
	cacheMisses.Add(1)
	r := Analyze(g)
	if prev, loaded := reportCache.LoadOrStore(g, r); loaded {
		return prev.(*Report)
	}
	return r
}

// CacheStats reports hit/miss counters of the per-CDFG report cache.
func CacheStats() (hits, misses uint64) {
	return cacheHits.Load(), cacheMisses.Load()
}
