// Package analysis runs static analyses over elaborated CDFGs without
// simulating: provable cycle-count lower bounds with per-resource binding
// constraints, ASAP/ALAP block scheduling with critical paths, memory
// dependence and bounds analysis over scratchpad accesses, dead/unreachable
// op reporting, and a static power/area envelope. Everything the engine
// would discover by executing, the analyzer derives from the graph — the
// static half of the paper's static/dynamic split, turned into a query
// engine. Results are immutable and cached per CDFG (see analysis.go), so
// a design-space sweep pays for the analysis once per static configuration.
package analysis

import (
	"gosalam/ir"
)

// cfgInfo holds control-flow facts for one function: reachability,
// dominators, natural loops with provable trip counts, and the provable
// minimum execution count of every block per kernel invocation. All
// derived counts are lower bounds — sound for cycle-count lower bounds and
// "this will happen at runtime" claims, never exact-by-assumption.
type cfgInfo struct {
	f      *ir.Function
	blocks []*ir.Block
	idx    map[*ir.Block]int
	succs  [][]int
	preds  [][]int

	reachable []bool
	idom      []int // immediate dominator index; entry maps to itself, unreachable to -1
	rets      []int // reachable blocks terminated by ret

	loops  []*loopInfo
	loopOf []int // innermost loop containing each block (-1 = none)

	// minExec[b] is a provable lower bound on how many times block b
	// executes per invocation; exact[b] marks counts derived purely from
	// counted loops and dominance (no data-dependent control), which are
	// therefore also upper bounds on reducible CFGs.
	minExec []uint64
	exact   []bool
}

// loopInfo is one natural loop: all back edges sharing a header, merged.
type loopInfo struct {
	header  int
	latches []int
	body    []bool
	nblocks int
	parent  int // innermost enclosing loop index, -1 at top level
	depth   int

	// exitViaHeaderOnly: every non-header block branches only inside the
	// loop, so the header's exit edge is the unique way out (no breaks).
	exitViaHeaderOnly bool

	// Counted-loop facts; trip < 0 means not provable. When trip >= 0:
	// iv is the induction phi, starting at lo, stepping by step > 0, and
	// ivLast is the largest value the phi takes (including the final
	// failing header check), so iv ranges over [lo, ivLast].
	trip   int64
	iv     *ir.Instr
	lo     int64
	step   int64
	ivLast int64

	// rotated marks the do-while shape (exit test at the latch, after
	// the increment): the header then executes exactly trip times per
	// entry, not trip+1, and the phi never holds the exit bound.
	rotated bool
}

func buildCFG(f *ir.Function) *cfgInfo {
	n := len(f.Blocks)
	c := &cfgInfo{
		f:      f,
		blocks: f.Blocks,
		idx:    make(map[*ir.Block]int, n),
		succs:  make([][]int, n),
		preds:  make([][]int, n),
		loopOf: make([]int, n),
	}
	for i, b := range f.Blocks {
		c.idx[b] = i
	}
	for i, b := range f.Blocks {
		for _, s := range b.Succs() {
			j := c.idx[s]
			c.succs[i] = append(c.succs[i], j)
			c.preds[j] = append(c.preds[j], i)
		}
	}
	c.computeDoms()
	for i, b := range f.Blocks {
		if c.reachable[i] {
			if t := b.Terminator(); t != nil && t.Op == ir.OpRet {
				c.rets = append(c.rets, i)
			}
		}
	}
	c.findLoops()
	for _, l := range c.loops {
		c.proveTrip(l)
	}
	c.computeMinExec()
	return c
}

// computeDoms computes reachability and immediate dominators with the
// iterative Cooper-Harvey-Kennedy algorithm over reverse postorder.
func (c *cfgInfo) computeDoms() {
	n := len(c.blocks)
	c.reachable = make([]bool, n)
	c.idom = make([]int, n)
	for i := range c.idom {
		c.idom[i] = -1
	}
	if n == 0 {
		return
	}
	post := make([]int, 0, n)
	seen := make([]bool, n)
	var dfs func(int)
	dfs = func(u int) {
		seen[u] = true
		for _, v := range c.succs[u] {
			if !seen[v] {
				dfs(v)
			}
		}
		post = append(post, u)
	}
	dfs(0)
	rpo := make([]int, 0, len(post))
	for i := len(post) - 1; i >= 0; i-- {
		rpo = append(rpo, post[i])
	}
	rpoNum := make([]int, n)
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	for i, u := range rpo {
		rpoNum[u] = i
		c.reachable[u] = true
	}

	c.idom[0] = 0
	intersect := func(a, b int) int {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = c.idom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = c.idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, u := range rpo[1:] {
			newIdom := -1
			for _, p := range c.preds[u] {
				if c.idom[p] < 0 {
					continue // unreachable or not yet processed
				}
				if newIdom < 0 {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom >= 0 && c.idom[u] != newIdom {
				c.idom[u] = newIdom
				changed = true
			}
		}
	}
}

// dominates reports whether block a dominates block b.
func (c *cfgInfo) dominates(a, b int) bool {
	if !c.reachable[a] || !c.reachable[b] {
		return false
	}
	for {
		if a == b {
			return true
		}
		if b == 0 {
			return false
		}
		b = c.idom[b]
	}
}

// alwaysExec reports whether b lies on every entry-to-return path: b must
// dominate every reachable ret block. Such a block is guaranteed at least
// one execution per invocation.
func (c *cfgInfo) alwaysExec(b int) bool {
	if !c.reachable[b] || len(c.rets) == 0 {
		return b == 0 && c.reachable[b] && len(c.rets) == 0
	}
	for _, r := range c.rets {
		if !c.dominates(b, r) {
			return false
		}
	}
	return true
}

// findLoops detects natural loops: for every back edge u->h (h dominates
// u), the loop body is everything that reaches u without passing h. Back
// edges sharing a header merge into one loop. Headers are visited in block
// order, so the loop list is deterministic.
func (c *cfgInfo) findLoops() {
	n := len(c.blocks)
	latchesOf := make([][]int, n)
	for u := 0; u < n; u++ {
		if !c.reachable[u] {
			continue
		}
		for _, h := range c.succs[u] {
			if c.dominates(h, u) {
				latchesOf[h] = append(latchesOf[h], u)
			}
		}
	}
	for h := 0; h < n; h++ {
		if len(latchesOf[h]) == 0 {
			continue
		}
		l := &loopInfo{header: h, latches: latchesOf[h], body: make([]bool, n), parent: -1, trip: -1}
		l.body[h] = true
		l.nblocks = 1
		// Seed the backward walk with the latches — except a latch that
		// IS the header (a self-loop, which clang emits for single-block
		// inner loops). Expanding the header would walk its out-of-loop
		// preds and absorb everything that reaches the loop into the
		// body, wrecking nesting: such a bloated body "contains" sibling
		// headers, and the parent chains built from it can cycle.
		stack := make([]int, 0, len(l.latches))
		for _, u := range l.latches {
			if u == h {
				continue
			}
			if !l.body[u] {
				l.body[u] = true
				l.nblocks++
			}
			stack = append(stack, u)
		}
		// The latches were marked above; grow backwards to the header.
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, p := range c.preds[u] {
				if c.reachable[p] && !l.body[p] {
					l.body[p] = true
					l.nblocks++
					stack = append(stack, p)
				}
			}
		}
		l.exitViaHeaderOnly = true
		for b := 0; b < n; b++ {
			if !l.body[b] || b == h {
				continue
			}
			for _, s := range c.succs[b] {
				if !l.body[s] {
					l.exitViaHeaderOnly = false
				}
			}
		}
		c.loops = append(c.loops, l)
	}
	// Innermost loop per block: the smallest body containing it. Natural
	// loops with distinct headers are either nested or disjoint, so the
	// smallest containing body is the innermost.
	for b := 0; b < n; b++ {
		c.loopOf[b] = -1
		for li, l := range c.loops {
			if !l.body[b] {
				continue
			}
			if c.loopOf[b] < 0 || l.nblocks < c.loops[c.loopOf[b]].nblocks {
				c.loopOf[b] = li
			}
		}
	}
	// Parent: the innermost loop properly containing this loop's header.
	// A parent must be strictly larger than its child: genuine nesting
	// always is, and the constraint makes the relation well-founded, so
	// the parent-chain walks below (depth here, provableExec later)
	// provably terminate even if a body is ever overcomputed again the
	// way the self-loop seeding bug overcomputed them.
	for li, l := range c.loops {
		for lj, outer := range c.loops {
			if li == lj || outer.nblocks <= l.nblocks || !outer.body[l.header] {
				continue
			}
			if l.parent < 0 || outer.nblocks < c.loops[l.parent].nblocks {
				l.parent = lj
			}
		}
	}
	for _, l := range c.loops {
		for p := l.parent; p >= 0; p = c.loops[p].parent {
			l.depth++
		}
	}
}

// proveTrip establishes a constant trip count for two canonical counted
// shapes. The while shape: a header `icmp slt/sle (phi iv), C` feeding a
// conditional branch whose true edge stays in the loop, an induction phi
// starting at a constant and stepped by a positive constant add, and no
// exit other than the header. The rotated (do-while) shape clang -O1
// emits: the single latch carries the loop's only exit, testing the
// already-incremented induction value with `icmp eq (add (phi iv), step),
// C` and leaving on true. Loops that match neither stay at trip = -1
// (unproven), which degrades every dependent bound gracefully rather than
// unsoundly.
func (c *cfgInfo) proveTrip(l *loopInfo) {
	c.proveWhileTrip(l)
	if l.trip < 0 {
		c.proveRotatedTrip(l)
	}
}

func (c *cfgInfo) proveWhileTrip(l *loopInfo) {
	if !l.exitViaHeaderOnly {
		return
	}
	h := c.blocks[l.header]
	term := h.Terminator()
	if term == nil || term.Op != ir.OpBr || len(term.Blocks) != 2 || len(term.Args) != 1 {
		return
	}
	body, exit := c.idx[term.Blocks[0]], c.idx[term.Blocks[1]]
	// Loop continues on true, exits on false — the shape the slt/sle
	// trip-count formulae assume.
	if !l.body[body] || l.body[exit] {
		return
	}
	cmp, ok := term.Args[0].(*ir.Instr)
	if !ok || cmp.Op != ir.OpICmp || cmp.Block() != h {
		return
	}
	if cmp.Pred != ir.ISLT && cmp.Pred != ir.ISLE {
		return
	}
	iv, ok := cmp.Args[0].(*ir.Instr)
	if !ok || iv.Op != ir.OpPhi || iv.Block() != h {
		return
	}
	hiC, ok := cmp.Args[1].(*ir.ConstInt)
	if !ok {
		return
	}
	var lo int64
	haveLo := false
	var step int64
	haveStep := false
	for k, inBlk := range iv.Blocks {
		bi := c.idx[inBlk]
		if l.body[bi] {
			// Latch incoming: must be iv + positive constant, computed
			// inside the loop on every path to this latch.
			add, ok := iv.Args[k].(*ir.Instr)
			if !ok || add.Op != ir.OpAdd || ir.Value(add.Args[0]) != ir.Value(iv) {
				return
			}
			stC, ok := add.Args[1].(*ir.ConstInt)
			if !ok || stC.V <= 0 {
				return
			}
			ai := c.idx[add.Block()]
			if !l.body[ai] || !c.dominates(ai, bi) {
				return
			}
			if haveStep && step != stC.V {
				return
			}
			step, haveStep = stC.V, true
		} else {
			loC, ok := iv.Args[k].(*ir.ConstInt)
			if !ok {
				return
			}
			if haveLo && lo != loC.V {
				return
			}
			lo, haveLo = loC.V, true
		}
	}
	if !haveLo || !haveStep {
		return
	}
	hi := hiC.V
	var trips int64
	if cmp.Pred == ir.ISLT {
		trips = floorDiv(hi-lo+step-1, step)
	} else {
		trips = floorDiv(hi-lo, step) + 1
	}
	if trips < 0 {
		trips = 0
	}
	l.trip = trips
	l.iv = iv
	l.lo, l.step = lo, step
	// The phi's value range including the final failing check.
	l.ivLast = lo + trips*step
}

// proveRotatedTrip recognizes clang's rotated counted loops, including
// the single-block self-loop where the latch IS the header. Every
// iteration ends at the latch, so when the latch carries the only exit
// the whole body — header included — runs exactly (C-lo)/step times per
// entry. The exit bound must be reached exactly ((C-lo) divisible by
// step, C > lo): an equality test that the increment could step over is
// left unproven rather than guessed at.
func (c *cfgInfo) proveRotatedTrip(l *loopInfo) {
	if len(l.latches) != 1 {
		return
	}
	lt := l.latches[0]
	// The latch must be the only block with an edge out of the loop.
	for b := 0; b < len(c.blocks); b++ {
		if !l.body[b] || b == lt {
			continue
		}
		for _, s := range c.succs[b] {
			if !l.body[s] {
				return
			}
		}
	}
	term := c.blocks[lt].Terminator()
	if term == nil || term.Op != ir.OpBr || len(term.Blocks) != 2 || len(term.Args) != 1 {
		return
	}
	exit, stay := c.idx[term.Blocks[0]], c.idx[term.Blocks[1]]
	// Exit on true, back edge on false — clang's `icmp eq %inc, C` shape.
	if l.body[exit] || stay != l.header {
		return
	}
	cmp, ok := term.Args[0].(*ir.Instr)
	if !ok || cmp.Op != ir.OpICmp || cmp.Pred != ir.IEQ || len(cmp.Args) != 2 {
		return
	}
	next, ok := cmp.Args[0].(*ir.Instr)
	if !ok || next.Op != ir.OpAdd || len(next.Args) != 2 {
		return
	}
	hiC, ok := cmp.Args[1].(*ir.ConstInt)
	if !ok {
		return
	}
	iv, ok := next.Args[0].(*ir.Instr)
	if !ok || iv.Op != ir.OpPhi || c.idx[iv.Block()] != l.header {
		return
	}
	stC, ok := next.Args[1].(*ir.ConstInt)
	if !ok || stC.V <= 0 {
		return
	}
	ni := c.idx[next.Block()]
	if !l.body[ni] || !c.dominates(ni, lt) {
		return
	}
	// The latch incoming must be the very increment the exit tests, and
	// every entry incoming the same constant start.
	var lo int64
	haveLo := false
	for k, inBlk := range iv.Blocks {
		if l.body[c.idx[inBlk]] {
			if ir.Value(iv.Args[k]) != ir.Value(next) {
				return
			}
			continue
		}
		loC, ok := iv.Args[k].(*ir.ConstInt)
		if !ok || (haveLo && lo != loC.V) {
			return
		}
		lo, haveLo = loC.V, true
	}
	if !haveLo {
		return
	}
	hi := hiC.V
	if hi <= lo || (hi-lo)%stC.V != 0 {
		return
	}
	l.trip = (hi - lo) / stC.V
	l.iv = iv
	l.lo, l.step = lo, stC.V
	l.rotated = true
	// The increment exits the moment it reaches hi, so the phi tops out
	// one step earlier — there is no "final failing check" value.
	l.ivLast = lo + (l.trip-1)*stC.V
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

// domAllLatches reports whether b dominates every latch of l — the
// condition under which every back-edge traversal passes through b.
func (c *cfgInfo) domAllLatches(b int, l *loopInfo) bool {
	for _, latch := range l.latches {
		if !c.dominates(b, latch) {
			return false
		}
	}
	return true
}

// computeMinExec derives the provable per-invocation execution floor for
// every block by chaining counted loops outward:
//
//   - a block inside loop L that dominates all of L's latches executes at
//     least trip(L) times per entry of L (every back-edge traversal must
//     pass it, because no loop-body block dominates its own header);
//   - L's header itself executes trip(L)+1 times per entry;
//   - entries of L per entry of its parent follow the same rule applied to
//     L's header; and
//   - the outermost anchor contributes its count only when it lies on
//     every entry-to-ret path (it dominates every reachable ret).
//
// Any unproven link degrades to the dominance fallback: at least one
// execution when the block dominates every ret, else zero. The result is
// always a sound lower bound; exact[b] additionally records that the chain
// succeeded, making the count exact for reducible structured control flow.
func (c *cfgInfo) computeMinExec() {
	n := len(c.blocks)
	c.minExec = make([]uint64, n)
	c.exact = make([]bool, n)
	for b := 0; b < n; b++ {
		if !c.reachable[b] {
			continue
		}
		c.minExec[b], c.exact[b] = c.provableExec(b)
	}
}

func (c *cfgInfo) provableExec(b int) (uint64, bool) {
	var fallback uint64
	if c.alwaysExec(b) {
		fallback = 1
	}
	count := uint64(1)
	anchor := b
	li := c.loopOf[b]
	for li >= 0 {
		l := c.loops[li]
		if l.trip < 0 {
			return fallback, false
		}
		var per uint64
		switch {
		case anchor == l.header:
			// A while-shape header is tested once more than the body
			// runs; a rotated header is itself body, tested at the
			// latch, so it runs exactly trip times.
			per = uint64(l.trip) + 1
			if l.rotated {
				per = uint64(l.trip)
			}
		case l.trip > 0 && c.domAllLatches(anchor, l):
			per = uint64(l.trip)
		default:
			return fallback, false
		}
		count *= per
		anchor = l.header
		li = l.parent
	}
	if !c.alwaysExec(anchor) {
		return fallback, false
	}
	if count < fallback {
		count = fallback
	}
	return count, true
}

// ivRangeAt returns the provable value range of an induction phi as
// observed from block `at`, or false when v is not a counted-loop
// induction variable. Inside the loop body the phi only ever holds the
// executed iteration values [lo, lo+(trip-1)*step]; the final failing
// value lo+trip*step is visible only in the header and past the exit.
// Both ranges cover every value that can reach `at`, so claims built on
// emptiness or totality of derived sets stay sound.
func (c *cfgInfo) ivRangeAt(v *ir.Instr, at int) (lo, hi int64, ok bool) {
	for li, l := range c.loops {
		if l.trip < 0 || l.iv != v {
			continue
		}
		if at >= 0 && at != l.header && c.inLoop(at, li) {
			if l.trip == 0 {
				return l.lo, l.lo, true // body never runs; degenerate range
			}
			return l.lo, l.lo + (l.trip-1)*l.step, true
		}
		return l.lo, l.ivLast, true
	}
	return 0, 0, false
}

// inLoop reports whether block b belongs to loop li's body.
func (c *cfgInfo) inLoop(b, li int) bool { return c.loops[li].body[b] }
