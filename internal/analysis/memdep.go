package analysis

import (
	"fmt"
	"sort"

	"gosalam/ir"
	"gosalam/internal/core"
)

// The memory layer reduces every scratchpad access to an affine form
//
//	base + c + Σ coeff_i × iv_i
//
// where each iv is a counted-loop induction phi with a proven value range
// (cfg.ivRange). From that form it derives byte footprints, pairwise
// hazard classification (RAW/WAR/WAW the dynamic engine's disambiguator
// would serialize), and out-of-bounds proofs for globals whose element
// type fixes the buffer size. The lattice is explicit: "no overlap" and
// "every execution out of bounds" are sound claims (ranges are
// over-approximations, so emptiness and totality survive); "may overlap"
// is a heuristic warning, as is any claim about two distinct pointer
// parameters, which the engine binds to disjoint scratchpad buffers.

type symTerm struct {
	iv     *ir.Instr
	coeff  int64
	lo, hi int64 // proven value range of iv
}

// intExpr is an affine integer expression with proven term ranges.
type intExpr struct {
	c     int64
	terms []symTerm
}

const (
	baseUnknown = iota
	baseParam
	baseGlobal
)

// Access is one static memory op with its derived address information.
type Access struct {
	op    *core.StaticOp
	store bool
	size  int64

	baseKind int
	param    *ir.Param
	global   *ir.Global

	exact    bool // affine derivation succeeded end to end
	expr     intExpr
	min, max int64 // byte-offset range of the access start, valid when exact
	stride   int64 // gcd of |coeffs|, 0 when the offset is a single constant

	minExec uint64 // provable executions of the enclosing block
}

// MemReport is the function-level memory analysis.
type MemReport struct {
	Accesses  int          `json:"accesses"`
	Loads     int          `json:"loads"`
	Stores    int          `json:"stores"`
	Resolved  int          `json:"resolved"` // accesses with exact affine form
	Footprint []BaseExtent `json:"footprint,omitempty"`
	Hazards   []Hazard     `json:"hazards,omitempty"`
	OOB       []OOBFinding `json:"oob,omitempty"`
	// NoHazardProven: every same-base pair of accesses (with at least one
	// store) was proven non-overlapping — the engine's dynamic
	// disambiguator will never serialize two in-flight scratchpad ops of
	// this kernel on the same buffer.
	NoHazardProven bool `json:"no_hazard_proven"`
}

// BaseExtent is the provable byte extent touched through one base pointer.
type BaseExtent struct {
	Base     string `json:"base"`
	MinByte  int64  `json:"min_byte"`
	MaxByte  int64  `json:"max_byte"` // exclusive
	Bytes    int64  `json:"bytes"`
	Resolved bool   `json:"resolved"` // all accesses through this base are exact
}

// Hazard is one may-overlap pair the dynamic engine would serialize.
type Hazard struct {
	Kind  string `json:"kind"` // raw | war | waw
	First string `json:"first"`
	Then  string `json:"then"`
	Base  string `json:"base"`
	// Proven is false for may-analysis results: the pair could not be
	// proven disjoint, which is a warning, not a certainty.
	Proven bool `json:"proven"`
}

// OOBFinding is an access whose every possible address misses its buffer
// (Proven, when the block provably executes) or whose footprint extends
// past the buffer for some over-approximated index value (heuristic).
type OOBFinding struct {
	Op      string `json:"op"`
	Base    string `json:"base"`
	MinByte int64  `json:"min_byte"`
	MaxByte int64  `json:"max_byte"` // exclusive, over the access footprint
	Size    int64  `json:"buffer_bytes"`
	Proven  bool   `json:"proven"`
}

func mulOverflows(a, b int64) bool {
	if a == 0 || b == 0 {
		return false
	}
	p := a * b
	return p/b != a
}

// deriveInt reduces v to affine form as observed from block `at` (the
// block of the consuming access, which narrows induction ranges to the
// values that actually reach it). ok=false means "unknown", which poisons
// the access conservatively (it may alias anything on any base).
func (c *cfgInfo) deriveInt(v ir.Value, at int) (intExpr, bool) {
	switch t := v.(type) {
	case *ir.ConstInt:
		return intExpr{c: t.V}, true
	case *ir.Instr:
		switch t.Op {
		case ir.OpPhi:
			if lo, hi, ok := c.ivRangeAt(t, at); ok {
				return intExpr{terms: []symTerm{{iv: t, coeff: 1, lo: lo, hi: hi}}}, true
			}
			return intExpr{}, false
		case ir.OpAdd, ir.OpSub:
			a, okA := c.deriveInt(t.Args[0], at)
			b, okB := c.deriveInt(t.Args[1], at)
			if !okA || !okB {
				return intExpr{}, false
			}
			if t.Op == ir.OpSub {
				b = b.scale(-1)
			}
			return a.add(b), true
		case ir.OpMul:
			a, okA := c.deriveInt(t.Args[0], at)
			b, okB := c.deriveInt(t.Args[1], at)
			if !okA || !okB {
				return intExpr{}, false
			}
			if len(b.terms) == 0 {
				return a.scaleChecked(b.c)
			}
			if len(a.terms) == 0 {
				return b.scaleChecked(a.c)
			}
			return intExpr{}, false
		case ir.OpShl:
			a, okA := c.deriveInt(t.Args[0], at)
			sh, okS := ir.ConstBits(t.Args[1])
			if !okA || !okS || sh >= 63 {
				return intExpr{}, false
			}
			return a.scaleChecked(int64(1) << sh)
		case ir.OpZExt, ir.OpSExt:
			// Width changes preserve the mathematical value only when the
			// operand's proven range fits the source width.
			a, ok := c.deriveInt(t.Args[0], at)
			if !ok {
				return intExpr{}, false
			}
			it, isInt := t.Args[0].Type().(ir.IntType)
			if !isInt || it.W <= 0 || it.W > 64 {
				return intExpr{}, false
			}
			lo, hi := a.valueRange()
			if t.Op == ir.OpZExt {
				if it.W == 64 || (lo >= 0 && hi < int64(1)<<uint(it.W)) {
					return a, true
				}
			} else {
				if it.W == 64 || (lo >= -(int64(1)<<uint(it.W-1)) && hi < int64(1)<<uint(it.W-1)) {
					return a, true
				}
			}
			return intExpr{}, false
		}
	}
	return intExpr{}, false
}

func (e intExpr) add(o intExpr) intExpr {
	r := intExpr{c: e.c + o.c, terms: append(append([]symTerm(nil), e.terms...), o.terms...)}
	return r.canon()
}

func (e intExpr) scale(k int64) intExpr {
	r := intExpr{c: e.c * k}
	for _, t := range e.terms {
		t.coeff *= k
		r.terms = append(r.terms, t)
	}
	return r
}

func (e intExpr) scaleChecked(k int64) (intExpr, bool) {
	if mulOverflows(e.c, k) {
		return intExpr{}, false
	}
	for _, t := range e.terms {
		if mulOverflows(t.coeff, k) || mulOverflows(t.coeff*k, t.lo) || mulOverflows(t.coeff*k, t.hi) {
			return intExpr{}, false
		}
	}
	return e.scale(k).canon(), true
}

// canon merges duplicate induction variables and drops zero coefficients.
func (e intExpr) canon() intExpr {
	if len(e.terms) < 2 {
		if len(e.terms) == 1 && e.terms[0].coeff == 0 {
			e.terms = nil
		}
		return e
	}
	merged := e.terms[:0:0]
	for _, t := range e.terms {
		found := false
		for i := range merged {
			if merged[i].iv == t.iv {
				merged[i].coeff += t.coeff
				found = true
				break
			}
		}
		if !found {
			merged = append(merged, t)
		}
	}
	out := merged[:0]
	for _, t := range merged {
		if t.coeff != 0 {
			out = append(out, t)
		}
	}
	e.terms = out
	return e
}

// valueRange is the over-approximated range of the expression: each iv
// independently spans its proven range.
func (e intExpr) valueRange() (lo, hi int64) {
	lo, hi = e.c, e.c
	for _, t := range e.terms {
		a, b := t.coeff*t.lo, t.coeff*t.hi
		if a > b {
			a, b = b, a
		}
		lo += a
		hi += b
	}
	return lo, hi
}

func gcd64(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func (e intExpr) strideGCD() int64 {
	var g int64
	for _, t := range e.terms {
		g = gcd64(g, t.coeff)
	}
	return g
}

// derivePtr resolves a pointer value to (base, affine byte offset),
// with induction ranges narrowed to block `at`.
func (c *cfgInfo) derivePtr(v ir.Value, at int) (a Access, ok bool) {
	defer func() {
		// GEPStrides panics on pointer shapes the builder never emits;
		// treat those as unresolved rather than crashing the analyzer.
		if recover() != nil {
			a, ok = Access{baseKind: baseUnknown}, false
		}
	}()
	switch t := v.(type) {
	case *ir.Param:
		return Access{baseKind: baseParam, param: t, exact: true}, true
	case *ir.Global:
		return Access{baseKind: baseGlobal, global: t, exact: true}, true
	case *ir.Instr:
		switch t.Op {
		case ir.OpGEP:
			base, ok := c.derivePtr(t.Args[0], at)
			if !ok {
				return base, false
			}
			strides := t.GEPStrides()
			for k := 1; k < len(t.Args); k++ {
				idx, okI := c.deriveInt(t.Args[k], at)
				if !okI {
					base.exact = false
					return base, true // base known, offset unknown
				}
				scaled, okS := idx.scaleChecked(strides[k-1])
				if !okS {
					base.exact = false
					return base, true
				}
				base.expr = base.expr.add(scaled)
			}
			return base, true
		case ir.OpBitcast:
			return c.derivePtr(t.Args[0], at)
		}
	}
	return Access{baseKind: baseUnknown}, false
}

func (a *Access) baseName() string {
	switch a.baseKind {
	case baseParam:
		return "%" + a.param.PName
	case baseGlobal:
		return "@" + a.global.GName
	}
	return "?"
}

func (a *Access) sameBase(b *Access) bool {
	if a.baseKind != b.baseKind {
		return false
	}
	switch a.baseKind {
	case baseParam:
		return a.param == b.param
	case baseGlobal:
		return a.global == b.global
	}
	return true // both unknown: must assume same
}

// mayOverlap reports whether the two footprints can intersect. Only the
// negative answer is a proof; the positive is a may-result. Requires
// sameBase.
func (a *Access) mayOverlap(b *Access) bool {
	if !a.exact || !b.exact {
		return true
	}
	// d = bStart - aStart; accesses overlap iff d in (-b.size... precisely
	// d in (-sB, sA) where sA/sB are the access widths.
	dmin, dmax := b.min-a.max, b.max-a.min
	if dmax <= -b.size || dmin >= a.size {
		return false // range test: gap proven
	}
	g := gcd64(a.expr.strideGCD(), b.expr.strideGCD())
	if g == 0 {
		d := b.expr.c - a.expr.c
		return d > -b.size && d < a.size
	}
	// d ≡ (cB - cA) mod g. Overlap needs a representative in (-sB, sA).
	r := ((b.expr.c-a.expr.c)%g + g) % g
	return r < a.size || r+b.size > g
}

// analyzeMem derives the memory report for one CDFG.
func (c *cfgInfo) analyzeMem(g *core.CDFG) (MemReport, []*Access) {
	var accs []*Access
	for _, b := range g.F.Blocks {
		bi := c.idx[b]
		if !c.reachable[bi] {
			continue
		}
		for _, st := range g.BlockOps[b] {
			if !st.Mem {
				continue
			}
			var addr ir.Value
			if st.Store {
				addr = st.In.Args[1]
			} else {
				addr = st.In.Args[0]
			}
			a, _ := c.derivePtr(addr, bi)
			a.op = st
			a.store = st.Store
			a.size = int64(st.AccSize)
			a.minExec = c.minExec[bi]
			if a.exact {
				a.min, a.max = a.expr.valueRange()
				a.stride = a.expr.strideGCD()
			}
			accs = append(accs, &a)
		}
	}
	sort.SliceStable(accs, func(i, j int) bool { return accs[i].op.ID < accs[j].op.ID })

	rep := MemReport{Accesses: len(accs)}
	for _, a := range accs {
		if a.store {
			rep.Stores++
		} else {
			rep.Loads++
		}
		if a.exact {
			rep.Resolved++
		}
	}

	// Per-base footprints, named deterministically and sorted.
	type extAcc struct {
		ext  BaseExtent
		seen bool
	}
	exts := map[string]*extAcc{}
	var names []string
	for _, a := range accs {
		name := a.baseName()
		e := exts[name]
		if e == nil {
			e = &extAcc{ext: BaseExtent{Base: name, Resolved: true}}
			exts[name] = e
			names = append(names, name)
		}
		if !a.exact {
			e.ext.Resolved = false
			continue
		}
		if !e.seen || a.min < e.ext.MinByte {
			e.ext.MinByte = a.min
		}
		if !e.seen || a.max+a.size > e.ext.MaxByte {
			e.ext.MaxByte = a.max + a.size
		}
		e.seen = true
	}
	sort.Strings(names)
	for _, n := range names {
		e := exts[n]
		if e.seen {
			e.ext.Bytes = e.ext.MaxByte - e.ext.MinByte
		}
		rep.Footprint = append(rep.Footprint, e.ext)
	}

	// Pairwise hazards: every same-base pair with at least one store that
	// cannot be proven disjoint. Distinct params and distinct globals are
	// disjoint buffers in this machine model (the engine binds them to
	// separate scratchpad regions), so only same-base pairs serialize.
	rep.NoHazardProven = true
	const hazardCap = 64
	for i := 0; i < len(accs); i++ {
		for j := i + 1; j < len(accs); j++ {
			a, b := accs[i], accs[j]
			if !a.store && !b.store {
				continue
			}
			if !a.sameBase(b) {
				continue
			}
			if !a.mayOverlap(b) {
				continue
			}
			rep.NoHazardProven = false
			kind := "waw"
			switch {
			case a.store && !b.store:
				kind = "raw"
			case !a.store && b.store:
				kind = "war"
			}
			if len(rep.Hazards) < hazardCap {
				rep.Hazards = append(rep.Hazards, Hazard{
					Kind:  kind,
					First: "%" + a.op.In.Name,
					Then:  "%" + b.op.In.Name,
					Base:  a.baseName(),
				})
			}
		}
	}

	// Out-of-bounds: globals carry their buffer size in the type. A
	// finding is Proven when every possible start offset misses the
	// buffer and the enclosing block provably executes; otherwise it is a
	// heuristic warning when the over-approximated footprint leaks out.
	for _, a := range accs {
		if a.baseKind != baseGlobal || !a.exact {
			continue
		}
		buf := int64(a.global.Elem.SizeBytes())
		if buf <= 0 {
			continue
		}
		allOOB := a.min+a.size > buf || a.max < 0
		someOOB := a.min < 0 || a.max+a.size > buf
		if !someOOB {
			continue
		}
		rep.OOB = append(rep.OOB, OOBFinding{
			Op:      "%" + a.op.In.Name,
			Base:    a.baseName(),
			MinByte: a.min,
			MaxByte: a.max + a.size,
			Size:    buf,
			Proven:  allOOB && a.minExec >= 1,
		})
	}
	// Negative offsets on parameter bases are worth a warning too.
	for _, a := range accs {
		if a.baseKind == baseParam && a.exact && a.min < 0 {
			rep.OOB = append(rep.OOB, OOBFinding{
				Op:      "%" + a.op.In.Name,
				Base:    a.baseName(),
				MinByte: a.min,
				MaxByte: a.max + a.size,
				Size:    -1,
			})
		}
	}
	return rep, accs
}

// String renders a hazard compactly for the text report.
func (h Hazard) String() string {
	return fmt.Sprintf("%s %s -> %s on %s", h.Kind, h.First, h.Then, h.Base)
}
