package sim

import (
	"fmt"

	"gosalam/internal/timeline"
)

// ClockDomain converts between cycles and ticks for objects sharing a clock.
type ClockDomain struct {
	period Tick
	name   string
}

// NewClockDomain creates a domain with the given period in ticks.
func NewClockDomain(name string, period Tick) *ClockDomain {
	if period == 0 {
		panic("sim: clock period must be nonzero")
	}
	return &ClockDomain{period: period, name: name}
}

// NewClockDomainMHz creates a domain from a frequency in MHz.
func NewClockDomainMHz(name string, mhz float64) *ClockDomain {
	if mhz <= 0 {
		panic("sim: clock frequency must be positive")
	}
	period := Tick(1e6/mhz + 0.5)
	return NewClockDomain(name, period)
}

// Period returns the clock period in ticks.
func (c *ClockDomain) Period() Tick { return c.period }

// FrequencyMHz returns the clock frequency in MHz.
func (c *ClockDomain) FrequencyMHz() float64 { return 1e6 / float64(c.period) }

// Name returns the domain name.
func (c *ClockDomain) Name() string { return c.name }

// CyclesToTicks converts a cycle count to ticks.
func (c *ClockDomain) CyclesToTicks(cycles uint64) Tick {
	return Tick(cycles) * c.period
}

// TicksToCycles converts ticks to whole elapsed cycles.
func (c *ClockDomain) TicksToCycles(t Tick) uint64 {
	return uint64(t / c.period)
}

// NextEdge returns the first clock edge at or after t.
func (c *ClockDomain) NextEdge(t Tick) Tick {
	rem := t % c.period
	if rem == 0 {
		return t
	}
	return t + (c.period - rem)
}

// Clocked is embedded by simulation objects that advance on clock edges.
// It provides self-rescheduling "tick" behaviour: the object calls Activate
// when it has work, the embedded logic calls Cycle() once per clock edge
// while active, and the object calls Deactivate (or returns idle=true from
// its cycle function) when it runs out of work. Idle objects consume no
// events, which keeps large systems fast.
type Clocked struct {
	Q      *EventQueue
	Clk    *ClockDomain
	name   string
	active bool
	// tick is the pre-bound edge event: the callback closure is created
	// once at InitClocked, so per-cycle rescheduling never allocates.
	tick *Recurring
	// CycleFn is called once per clock edge while active. If it returns
	// true the object stays active and another edge is scheduled.
	CycleFn func() bool
	// Cycles counts executed cycles (active edges only).
	Cycles uint64
	// rec, when non-nil, receives one "active" slice per executed edge on
	// lane. The recorder only observes — it must never schedule — so the
	// edge schedule is identical whether a recorder is attached or not.
	rec  timeline.Recorder
	lane timeline.LaneID
}

// InitClocked wires a Clocked helper. CycleFn must be set before Activate.
func (c *Clocked) InitClocked(name string, q *EventQueue, clk *ClockDomain) {
	c.name = name
	c.Q = q
	c.Clk = clk
	c.tick = q.NewRecurring(PriClock, c.edge)
}

// Name returns the object name.
func (c *Clocked) Name() string { return c.name }

// Active reports whether the object is currently self-scheduling.
func (c *Clocked) Active() bool { return c.active }

// Activate starts per-cycle execution at the next clock edge (or continues
// it if already active).
func (c *Clocked) Activate() {
	if c.active {
		return
	}
	if c.CycleFn == nil {
		panic(fmt.Sprintf("sim: Clocked %q activated without CycleFn", c.name))
	}
	c.active = true
	edge := c.Clk.NextEdge(c.Q.Now())
	if edge == c.Q.Now() {
		// Run at the next edge, not the current instant, so state set up
		// "this cycle" is visible: schedule one period out if we are exactly
		// on an edge and already inside event execution.
		edge += c.Clk.Period()
	}
	c.tick.ScheduleAt(edge)
}

// ActivateNow behaves like Activate but will run on the current tick's edge
// if the current tick is exactly an edge.
func (c *Clocked) ActivateNow() {
	if c.active {
		return
	}
	if c.CycleFn == nil {
		panic(fmt.Sprintf("sim: Clocked %q activated without CycleFn", c.name))
	}
	c.active = true
	c.tick.ScheduleAt(c.Clk.NextEdge(c.Q.Now()))
}

// Deactivate stops per-cycle execution.
func (c *Clocked) Deactivate() {
	if !c.active {
		return
	}
	c.active = false
	c.tick.Cancel()
}

// ResetClocked returns the helper to its just-initialised state after the
// owning EventQueue has been Reset: the pre-bound tick closure is kept,
// any stale arm is forgotten (the queue reset already invalidated its
// EventID), and the cycle counter rewinds so a warm run counts from zero
// exactly like a cold one.
func (c *Clocked) ResetClocked() {
	c.active = false
	c.Cycles = 0
	if c.tick != nil {
		c.tick.id = EventID{}
	}
}

// AttachTimeline binds a recorder lane to the clocked object; every
// executed edge then records an "active" slice one period long, and
// Perfetto's adjacent-slice merge renders contiguous activity as one
// span with idle gaps between. A nil recorder detaches.
func (c *Clocked) AttachTimeline(rec timeline.Recorder, lane timeline.LaneID) {
	c.rec = rec
	c.lane = lane
}

func (c *Clocked) edge() {
	if !c.active {
		return
	}
	c.Cycles++
	if c.rec != nil {
		c.rec.Slice(c.lane, uint64(c.Q.Now()), uint64(c.Clk.Period()), "active")
	}
	if c.CycleFn() {
		c.tick.ScheduleAt(c.Q.Now() + c.Clk.Period())
	} else {
		c.active = false
	}
}

// CurCycle returns the number of whole cycles elapsed at the current time.
func (c *Clocked) CurCycle() uint64 { return c.Clk.TicksToCycles(c.Q.Now()) }
