package sim

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Stat is anything that can report itself into a stats dump.
type Stat interface {
	StatName() string
	StatDesc() string
	Rows() []StatRow
}

// StatRow is one line of a stats dump.
type StatRow struct {
	Name  string
	Value float64
	Desc  string
}

// Scalar is a single counter or gauge.
type Scalar struct {
	name, desc string
	V          float64
}

// NewScalar registers nothing; attach it to a Group to have it dumped.
func NewScalar(name, desc string) *Scalar { return &Scalar{name: name, desc: desc} }

// Inc adds delta.
func (s *Scalar) Inc(delta float64) { s.V += delta }

// Set overwrites the value.
func (s *Scalar) Set(v float64) { s.V = v }

// ResetStat zeroes the counter.
func (s *Scalar) ResetStat() { s.V = 0 }

// Value returns the current value.
func (s *Scalar) Value() float64 { return s.V }

func (s *Scalar) StatName() string { return s.name }
func (s *Scalar) StatDesc() string { return s.desc }
func (s *Scalar) Rows() []StatRow {
	return []StatRow{{Name: s.name, Value: s.V, Desc: s.desc}}
}

// Vector is a set of named counters under one stat (e.g. per-FU-class).
// Buckets live in a value slice; the map only resolves names to indices,
// so hot paths can pre-bind a Bucket handle and skip the string lookup.
type Vector struct {
	name, desc string
	keys       []string
	vals       []float64
	idx        map[string]int
}

// NewVector creates an empty vector stat.
func NewVector(name, desc string) *Vector {
	return &Vector{name: name, desc: desc, idx: map[string]int{}}
}

func (v *Vector) bucketIdx(key string) int {
	i, ok := v.idx[key]
	if !ok {
		i = len(v.keys)
		v.keys = append(v.keys, key)
		v.vals = append(v.vals, 0)
		v.idx[key] = i
	}
	return i
}

// Inc adds delta to the named bucket, creating it if needed.
func (v *Vector) Inc(key string, delta float64) {
	v.vals[v.bucketIdx(key)] += delta
}

// Bucket is a pre-bound accumulator for one Vector bucket. Handles stay
// valid as the vector grows. The zero Bucket is unbound (Valid reports
// false); Inc through it panics.
type Bucket struct {
	v *Vector
	i int32
}

// Bucket resolves (creating if needed) the named bucket and returns a
// handle that increments it without a map lookup. Bind lazily — at the
// first increment, not at construction — when key insertion order is
// observable (Keys reports it).
func (v *Vector) Bucket(key string) Bucket {
	return Bucket{v: v, i: int32(v.bucketIdx(key))}
}

// Inc adds delta to the bound bucket.
func (b Bucket) Inc(delta float64) { b.v.vals[b.i] += delta }

// Valid reports whether the handle is bound.
func (b Bucket) Valid() bool { return b.v != nil }

// Get returns the bucket value (0 if absent).
func (v *Vector) Get(key string) float64 {
	if i, ok := v.idx[key]; ok {
		return v.vals[i]
	}
	return 0
}

// Total returns the sum over buckets.
func (v *Vector) Total() float64 {
	t := 0.0
	for _, x := range v.vals {
		t += x
	}
	return t
}

// Keys returns bucket names in insertion order.
func (v *Vector) Keys() []string { return append([]string(nil), v.keys...) }

// ResetStat zeroes every bucket while keeping keys and indices, so Bucket
// handles bound before the reset keep pointing at their bucket. Keys that
// a previous run created remain present at value zero.
func (v *Vector) ResetStat() {
	for i := range v.vals {
		v.vals[i] = 0
	}
}

func (v *Vector) StatName() string { return v.name }
func (v *Vector) StatDesc() string { return v.desc }
func (v *Vector) Rows() []StatRow {
	keys := append([]string(nil), v.keys...)
	sort.Strings(keys)
	rows := make([]StatRow, 0, len(keys))
	for _, k := range keys {
		rows = append(rows, StatRow{Name: v.name + "::" + k, Value: v.vals[v.idx[k]], Desc: v.desc})
	}
	return rows
}

// Distribution tracks min/max/mean of samples plus a sample count.
type Distribution struct {
	name, desc string
	n          uint64
	sum        float64
	min, max   float64
}

// NewDistribution creates an empty distribution stat.
func NewDistribution(name, desc string) *Distribution {
	return &Distribution{name: name, desc: desc}
}

// Sample records one observation.
func (d *Distribution) Sample(v float64) {
	if d.n == 0 || v < d.min {
		d.min = v
	}
	if d.n == 0 || v > d.max {
		d.max = v
	}
	d.n++
	d.sum += v
}

// Count returns the number of samples.
func (d *Distribution) Count() uint64 { return d.n }

// Mean returns the sample mean (0 when empty).
func (d *Distribution) Mean() float64 {
	if d.n == 0 {
		return 0
	}
	return d.sum / float64(d.n)
}

// Min returns the smallest sample (0 when empty).
func (d *Distribution) Min() float64 { return d.min }

// Max returns the largest sample (0 when empty).
func (d *Distribution) Max() float64 { return d.max }

// ResetStat drops all samples.
func (d *Distribution) ResetStat() { d.n, d.sum, d.min, d.max = 0, 0, 0, 0 }

func (d *Distribution) StatName() string { return d.name }
func (d *Distribution) StatDesc() string { return d.desc }
func (d *Distribution) Rows() []StatRow {
	return []StatRow{
		{Name: d.name + "::count", Value: float64(d.n), Desc: d.desc},
		{Name: d.name + "::mean", Value: d.Mean(), Desc: d.desc},
		{Name: d.name + "::min", Value: d.min, Desc: d.desc},
		{Name: d.name + "::max", Value: d.max, Desc: d.desc},
	}
}

// Formula is a stat computed from others at dump time.
type Formula struct {
	name, desc string
	Fn         func() float64
}

// NewFormula creates a derived stat evaluated lazily.
func NewFormula(name, desc string, fn func() float64) *Formula {
	return &Formula{name: name, desc: desc, Fn: fn}
}

// ResetStat is a no-op: a formula stores nothing, but implementing the
// method lets formulas sit in groups that are reset between warm runs.
func (f *Formula) ResetStat() {}

func (f *Formula) StatName() string { return f.name }
func (f *Formula) StatDesc() string { return f.desc }
func (f *Formula) Rows() []StatRow {
	return []StatRow{{Name: f.name, Value: f.Fn(), Desc: f.desc}}
}

// Group is a named collection of stats and child groups, mirroring gem5's
// SimObject stat hierarchy.
type Group struct {
	name     string
	stats    []Stat
	children []*Group
}

// NewGroup creates a root or standalone group.
func NewGroup(name string) *Group { return &Group{name: name} }

// Child creates (or returns an existing) child group.
func (g *Group) Child(name string) *Group {
	for _, c := range g.children {
		if c.name == name {
			return c
		}
	}
	c := &Group{name: name}
	g.children = append(g.children, c)
	return c
}

// Add registers stats into the group and returns the group for chaining.
func (g *Group) Add(stats ...Stat) *Group {
	g.stats = append(g.stats, stats...)
	return g
}

// Scalar creates and registers a scalar in one step.
func (g *Group) Scalar(name, desc string) *Scalar {
	s := NewScalar(name, desc)
	g.Add(s)
	return s
}

// Vector creates and registers a vector in one step.
func (g *Group) Vector(name, desc string) *Vector {
	v := NewVector(name, desc)
	g.Add(v)
	return v
}

// Distribution creates and registers a distribution in one step.
func (g *Group) Distribution(name, desc string) *Distribution {
	d := NewDistribution(name, desc)
	g.Add(d)
	return d
}

// Formula creates and registers a formula in one step.
func (g *Group) Formula(name, desc string, fn func() float64) *Formula {
	f := NewFormula(name, desc, fn)
	g.Add(f)
	return f
}

// Reset recursively zeroes every stat in this group and its children that
// implements ResetStat (all sim-provided stat types do). Structure is
// preserved — registered stats, child groups, and Vector key order all
// survive — so handles and formulas bound before the reset stay valid.
func (g *Group) Reset() {
	type resetter interface{ ResetStat() }
	for _, s := range g.stats {
		if r, ok := s.(resetter); ok {
			r.ResetStat()
		}
	}
	for _, c := range g.children {
		c.Reset()
	}
}

// Dump writes all stats, depth-first, one per line, prefixed by the group
// path, in a fixed-width gem5-like format.
func (g *Group) Dump(w io.Writer) {
	g.dump(w, "")
}

func (g *Group) dump(w io.Writer, prefix string) {
	path := g.name
	if prefix != "" {
		path = prefix + "." + g.name
	}
	for _, s := range g.stats {
		for _, row := range s.Rows() {
			fmt.Fprintf(w, "%-58s %16.6g  # %s\n", path+"."+row.Name, row.Value, row.Desc)
		}
	}
	for _, c := range g.children {
		c.dump(w, path)
	}
}

// Lookup finds a stat row value by dotted path ("sys.acc0.cycles"). It
// returns false if the path does not resolve. The walk is structural —
// not a re-parse of the %16.6g Dump text — so values keep full float64
// precision (a Dump round-trip truncates anything >= 1e6, which cycle
// counts routinely are, to 6 significant digits).
func (g *Group) Lookup(path string) (float64, bool) {
	prefix := g.name + "."
	if !strings.HasPrefix(path, prefix) {
		return 0, false
	}
	return g.lookup(path[len(prefix):])
}

// lookup resolves rest, a dotted path relative to g. Stat rows are
// checked before child groups, matching Dump's ordering; row names may
// themselves be dotted (Vector keys, Distribution "name::mean" rows never
// are, but nothing forbids it), so rows are compared whole.
func (g *Group) lookup(rest string) (float64, bool) {
	for _, s := range g.stats {
		for _, row := range s.Rows() {
			if row.Name == rest {
				return row.Value, true
			}
		}
	}
	for _, c := range g.children {
		p := c.name + "."
		if strings.HasPrefix(rest, p) {
			if v, ok := c.lookup(rest[len(p):]); ok {
				return v, true
			}
		}
	}
	return 0, false
}
