// Package sim provides the discrete-event simulation substrate that the
// rest of gosalam is built on. It plays the role that the gem5 framework
// plays for gem5-SALAM: a deterministic event queue with picosecond ticks,
// clock domains, clocked objects, and a statistics framework.
package sim

import (
	"container/heap"
	"fmt"
)

// Tick is the simulation time unit. Following gem5 convention, one tick is
// one picosecond, so a 1 GHz clock has a period of 1000 ticks.
type Tick uint64

// Common durations expressed in ticks.
const (
	Picosecond  Tick = 1
	Nanosecond  Tick = 1000
	Microsecond Tick = 1000 * 1000
	Millisecond Tick = 1000 * 1000 * 1000
	Second      Tick = 1000 * 1000 * 1000 * 1000
)

// MaxTick is the largest representable simulation time.
const MaxTick Tick = ^Tick(0)

// Event priorities. Lower values run first when events share a tick.
// The split mirrors gem5: device state updates run before generic CPU-side
// callbacks, and stat dumps run last.
const (
	PriBeforeClock = 5  // state arriving "during" the previous cycle
	PriClock       = 10 // clocked-object cycle updates
	PriMemResp     = 20 // memory response delivery
	PriDefault     = 50 // generic events
	PriStatDump    = 90 // statistics dumps
)

// event is a scheduled callback.
type event struct {
	when Tick
	pri  int
	seq  uint64 // insertion order; breaks ties deterministically
	fn   func()
	// canceled events stay in the heap but are skipped when popped.
	canceled bool
	index    int
}

// EventID identifies a scheduled event so that it can be canceled.
type EventID struct{ ev *event }

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled event is a no-op.
func (id EventID) Cancel() {
	if id.ev != nil {
		id.ev.canceled = true
	}
}

// Valid reports whether the ID refers to a scheduled event.
func (id EventID) Valid() bool { return id.ev != nil }

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	if h[i].pri != h[j].pri {
		return h[i].pri < h[j].pri
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// EventQueue is a deterministic discrete-event scheduler. It is not safe
// for concurrent use; a simulation is a single-threaded run over one queue,
// which is what makes results reproducible.
type EventQueue struct {
	now    Tick
	seq    uint64
	events eventHeap
	// fired counts events executed, for stats and runaway detection.
	fired uint64
}

// NewEventQueue returns an empty queue at tick zero.
func NewEventQueue() *EventQueue {
	return &EventQueue{}
}

// Now returns the current simulation time.
func (q *EventQueue) Now() Tick { return q.now }

// Fired returns the number of events executed so far.
func (q *EventQueue) Fired() uint64 { return q.fired }

// Pending returns the number of events still scheduled (including canceled
// events that have not yet been discarded).
func (q *EventQueue) Pending() int { return len(q.events) }

// Schedule runs fn at the given absolute tick with the given priority.
// Scheduling in the past panics: that is always a model bug.
func (q *EventQueue) Schedule(when Tick, pri int, fn func()) EventID {
	if when < q.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", when, q.now))
	}
	ev := &event{when: when, pri: pri, seq: q.seq, fn: fn}
	q.seq++
	heap.Push(&q.events, ev)
	return EventID{ev: ev}
}

// After schedules fn delta ticks from now at default priority.
func (q *EventQueue) After(delta Tick, fn func()) EventID {
	return q.Schedule(q.now+delta, PriDefault, fn)
}

// step executes the next event. It reports false if the queue is empty.
func (q *EventQueue) step() bool {
	for len(q.events) > 0 {
		ev := heap.Pop(&q.events).(*event)
		if ev.canceled {
			continue
		}
		q.now = ev.when
		q.fired++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains. It returns the final time.
func (q *EventQueue) Run() Tick {
	for q.step() {
	}
	return q.now
}

// RunUntil executes events with time <= limit. Events scheduled beyond the
// limit remain pending. It returns the current time afterwards.
func (q *EventQueue) RunUntil(limit Tick) Tick {
	for len(q.events) > 0 {
		// Peek.
		next := q.events[0]
		if next.canceled {
			heap.Pop(&q.events)
			continue
		}
		if next.when > limit {
			break
		}
		q.step()
	}
	if q.now < limit {
		q.now = limit
	}
	return q.now
}

// RunWhile executes events while cond() remains true and events remain.
// cond is checked after every event.
func (q *EventQueue) RunWhile(cond func() bool) Tick {
	for cond() && q.step() {
	}
	return q.now
}
