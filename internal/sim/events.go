// Package sim provides the discrete-event simulation substrate that the
// rest of gosalam is built on. It plays the role that the gem5 framework
// plays for gem5-SALAM: a deterministic event queue with picosecond ticks,
// clock domains, clocked objects, and a statistics framework.
package sim

import (
	"fmt"

	"gosalam/internal/timeline"
)

// Tick is the simulation time unit. Following gem5 convention, one tick is
// one picosecond, so a 1 GHz clock has a period of 1000 ticks.
type Tick uint64

// Common durations expressed in ticks.
const (
	Picosecond  Tick = 1
	Nanosecond  Tick = 1000
	Microsecond Tick = 1000 * 1000
	Millisecond Tick = 1000 * 1000 * 1000
	Second      Tick = 1000 * 1000 * 1000 * 1000
)

// MaxTick is the largest representable simulation time.
const MaxTick Tick = ^Tick(0)

// Event priorities. Lower values run first when events share a tick.
// The split mirrors gem5: device state updates run before generic CPU-side
// callbacks, and stat dumps run last.
const (
	PriBeforeClock = 5  // state arriving "during" the previous cycle
	PriClock       = 10 // clocked-object cycle updates
	PriMemResp     = 20 // memory response delivery
	PriDefault     = 50 // generic events
	PriStatDump    = 90 // statistics dumps
)

// Firer is an event payload scheduled by object instead of by closure: the
// object itself goes into the queue and Fire is the callback. Hot paths
// that would otherwise allocate a closure per event (memory-request
// completion, for one) implement Firer and use ScheduleObj.
type Firer interface{ Fire() }

// eventSlot is one entry in the queue's slot arena. Slots are reused
// through a free list, so a steady-state simulation schedules events
// without allocating; the generation stamp keeps stale EventIDs inert
// across reuse.
type eventSlot struct {
	when Tick
	seq  uint64 // insertion order; breaks ties deterministically
	fn   func()
	obj  Firer
	gen  uint32
	pri  int32
	pos  int32 // index in the heap order array; -1 when free
}

// EventID identifies a scheduled event so that it can be canceled. The
// zero EventID is invalid. IDs stay safe across slot reuse: once the
// event fires or is canceled, the slot's generation advances and the old
// ID becomes a no-op.
type EventID struct {
	q    *EventQueue
	slot int32
	gen  uint32
}

// Cancel removes the event from the queue. Canceling an already-fired,
// already-canceled, or zero ID is a no-op.
func (id EventID) Cancel() {
	if id.q == nil {
		return
	}
	s := &id.q.slots[id.slot]
	if s.gen != id.gen || s.pos < 0 {
		return
	}
	id.q.removeAt(int(s.pos))
	id.q.release(id.slot)
}

// Valid reports whether the ID was produced by a Schedule call (it may
// have fired since).
func (id EventID) Valid() bool { return id.q != nil }

// Scheduled reports whether the event is still in the queue: it has
// neither fired nor been canceled.
func (id EventID) Scheduled() bool {
	return id.q != nil && id.q.slots[id.slot].gen == id.gen
}

// EventQueue is a deterministic discrete-event scheduler. It is not safe
// for concurrent use; a simulation is a single-threaded run over one queue,
// which is what makes results reproducible.
//
// Internally it is an index heap over a value-slice slot arena: the heap
// orders int32 slot indices, slots are recycled through a free list, and
// EventIDs carry generation stamps so cancellation stays safe across
// reuse. Scheduling in steady state therefore performs no allocation.
type EventQueue struct {
	now   Tick
	seq   uint64
	slots []eventSlot
	order []int32 // binary heap of slot indices
	free  []int32
	// fired counts events executed, for stats and runaway detection.
	fired uint64
	// rec, when non-nil, receives a per-tick fired-event-count sample on
	// recLane — event density over time, one counter track in the trace.
	// The sample for a tick is emitted when the next distinct tick begins,
	// so recTick/recCount accumulate the current tick's total.
	rec      timeline.Recorder
	recLane  timeline.LaneID
	recTick  Tick
	recCount uint64
}

// AttachTimeline binds (or with nil detaches) a timeline recorder to the
// queue. The hook only counts fired events and reports them; it never
// schedules, so execution is identical with and without a recorder.
func (q *EventQueue) AttachTimeline(rec timeline.Recorder) {
	q.rec = rec
	q.recTick, q.recCount = 0, 0
	if rec != nil {
		q.recLane = rec.Lane("sim", "events")
	}
}

// NewEventQueue returns an empty queue at tick zero.
func NewEventQueue() *EventQueue {
	return &EventQueue{}
}

// Now returns the current simulation time.
func (q *EventQueue) Now() Tick { return q.now }

// Fired returns the number of events executed so far.
func (q *EventQueue) Fired() uint64 { return q.fired }

// Pending returns the number of events still scheduled. Canceled events
// are removed immediately, so the count is exact.
func (q *EventQueue) Pending() int { return len(q.order) }

// Reset returns the queue to tick zero while keeping the slot arena, so a
// warm-started simulation schedules into storage the previous run already
// grew. Every slot's generation advances, which turns EventIDs held from
// before the reset into inert no-ops (Cancel and Scheduled see a stale
// generation) instead of dangling references. The free list is rebuilt in
// ascending slot order so a warm run allocates slots in the same sequence
// as a cold run; pop order never depends on slot indices anyway — only on
// (when, pri, seq), all of which restart from zero here.
func (q *EventQueue) Reset() {
	for i := range q.slots {
		s := &q.slots[i]
		s.gen++
		s.fn = nil
		s.obj = nil
		s.pos = -1
	}
	q.free = q.free[:0]
	for i := len(q.slots) - 1; i >= 0; i-- {
		q.free = append(q.free, int32(i))
	}
	q.order = q.order[:0]
	q.now, q.seq, q.fired = 0, 0, 0
	q.recTick, q.recCount = 0, 0
}

// alloc takes a slot from the free list (or grows the arena) and returns
// its index.
func (q *EventQueue) alloc() int32 {
	if n := len(q.free); n > 0 {
		idx := q.free[n-1]
		q.free = q.free[:n-1]
		return idx
	}
	q.slots = append(q.slots, eventSlot{pos: -1})
	return int32(len(q.slots) - 1)
}

// release returns a slot to the free list, invalidating outstanding IDs.
func (q *EventQueue) release(idx int32) {
	s := &q.slots[idx]
	s.gen++
	s.fn = nil
	s.obj = nil
	s.pos = -1
	q.free = append(q.free, idx)
}

// less orders slots by (when, pri, seq); seq is unique, so the order is
// total and pop order is independent of heap layout.
func (q *EventQueue) less(a, b int32) bool {
	sa, sb := &q.slots[a], &q.slots[b]
	if sa.when != sb.when {
		return sa.when < sb.when
	}
	if sa.pri != sb.pri {
		return sa.pri < sb.pri
	}
	return sa.seq < sb.seq
}

func (q *EventQueue) siftUp(pos int) {
	idx := q.order[pos]
	for pos > 0 {
		parent := (pos - 1) / 2
		if !q.less(idx, q.order[parent]) {
			break
		}
		q.order[pos] = q.order[parent]
		q.slots[q.order[pos]].pos = int32(pos)
		pos = parent
	}
	q.order[pos] = idx
	q.slots[idx].pos = int32(pos)
}

func (q *EventQueue) siftDown(pos int) {
	n := len(q.order)
	idx := q.order[pos]
	for {
		child := 2*pos + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && q.less(q.order[r], q.order[child]) {
			child = r
		}
		if !q.less(q.order[child], idx) {
			break
		}
		q.order[pos] = q.order[child]
		q.slots[q.order[pos]].pos = int32(pos)
		pos = child
	}
	q.order[pos] = idx
	q.slots[idx].pos = int32(pos)
}

// removeAt deletes the heap entry at pos, preserving heap order.
func (q *EventQueue) removeAt(pos int) {
	n := len(q.order) - 1
	last := q.order[n]
	q.order = q.order[:n]
	if pos == n {
		return
	}
	q.order[pos] = last
	q.slots[last].pos = int32(pos)
	if pos > 0 && q.less(last, q.order[(pos-1)/2]) {
		q.siftUp(pos)
	} else {
		q.siftDown(pos)
	}
}

func (q *EventQueue) schedule(when Tick, pri int, fn func(), obj Firer) EventID {
	if when < q.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", when, q.now))
	}
	idx := q.alloc()
	s := &q.slots[idx]
	s.when, s.pri, s.seq = when, int32(pri), q.seq
	s.fn, s.obj = fn, obj
	q.seq++
	q.order = append(q.order, idx)
	q.siftUp(len(q.order) - 1)
	return EventID{q: q, slot: idx, gen: s.gen}
}

// Schedule runs fn at the given absolute tick with the given priority.
// Scheduling in the past panics: that is always a model bug.
func (q *EventQueue) Schedule(when Tick, pri int, fn func()) EventID {
	return q.schedule(when, pri, fn, nil)
}

// ScheduleObj is Schedule with a Firer payload instead of a closure; it
// performs no allocation beyond the slot arena's steady-state reuse.
func (q *EventQueue) ScheduleObj(when Tick, pri int, obj Firer) EventID {
	return q.schedule(when, pri, nil, obj)
}

// After schedules fn delta ticks from now at default priority.
func (q *EventQueue) After(delta Tick, fn func()) EventID {
	return q.schedule(q.now+delta, PriDefault, fn, nil)
}

// step executes the next event. It reports false if the queue is empty.
func (q *EventQueue) step() bool {
	if len(q.order) == 0 {
		return false
	}
	idx := q.order[0]
	s := &q.slots[idx]
	q.now = s.when
	if q.rec != nil {
		if q.now != q.recTick {
			if q.recCount > 0 {
				q.rec.Counter(q.recLane, uint64(q.recTick), float64(q.recCount))
			}
			q.recTick, q.recCount = q.now, 0
		}
		q.recCount++
	}
	fn, obj := s.fn, s.obj
	q.removeAt(0)
	q.release(idx) // free before firing so fn can reuse the slot
	q.fired++
	if fn != nil {
		fn()
	} else {
		obj.Fire()
	}
	return true
}

// Run executes events until the queue drains. It returns the final time.
func (q *EventQueue) Run() Tick {
	for q.step() {
	}
	return q.now
}

// RunUntil executes events with time <= limit. Events scheduled beyond the
// limit remain pending. It returns the current time afterwards.
func (q *EventQueue) RunUntil(limit Tick) Tick {
	for len(q.order) > 0 && q.slots[q.order[0]].when <= limit {
		q.step()
	}
	if q.now < limit {
		q.now = limit
	}
	return q.now
}

// RunWhile executes events while cond() remains true and events remain.
// cond is checked after every event.
func (q *EventQueue) RunWhile(cond func() bool) Tick {
	for cond() && q.step() {
	}
	return q.now
}

// Recurring is a pre-bound event: the callback is captured once at
// construction and every (re)scheduling afterwards is allocation-free.
// Clocked objects, DMA pacing, and anything else that fires the same
// callback cycle after cycle should schedule through a Recurring instead
// of passing a fresh closure to Schedule each time.
type Recurring struct {
	q   *EventQueue
	fn  func()
	pri int
	id  EventID
}

// NewRecurring creates a recurring event on the queue. fn is captured
// once; the event starts unscheduled.
func (q *EventQueue) NewRecurring(pri int, fn func()) *Recurring {
	return &Recurring{q: q, pri: pri, fn: fn}
}

// ScheduleAt arms the event for the given absolute tick. The caller is
// responsible for not double-arming (use Scheduled to check); each firing
// disarms the event.
func (r *Recurring) ScheduleAt(when Tick) {
	r.id = r.q.Schedule(when, r.pri, r.fn)
}

// ScheduleAfter arms the event delta ticks from now.
func (r *Recurring) ScheduleAfter(delta Tick) { r.ScheduleAt(r.q.now + delta) }

// Cancel disarms the event if armed.
func (r *Recurring) Cancel() {
	r.id.Cancel()
	r.id = EventID{}
}

// Scheduled reports whether the event is currently armed.
func (r *Recurring) Scheduled() bool { return r.id.Scheduled() }
