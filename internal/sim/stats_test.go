package sim

import (
	"strings"
	"testing"
)

func TestScalar(t *testing.T) {
	s := NewScalar("cycles", "total cycles")
	s.Inc(3)
	s.Inc(4)
	if s.Value() != 7 {
		t.Fatalf("value = %g, want 7", s.Value())
	}
	s.Set(2)
	if s.Value() != 2 {
		t.Fatalf("value = %g, want 2", s.Value())
	}
	rows := s.Rows()
	if len(rows) != 1 || rows[0].Name != "cycles" || rows[0].Value != 2 {
		t.Fatalf("rows = %+v", rows)
	}
}

func TestVector(t *testing.T) {
	v := NewVector("ops", "ops by class")
	v.Inc("fadd", 2)
	v.Inc("fmul", 3)
	v.Inc("fadd", 1)
	if v.Get("fadd") != 3 {
		t.Fatalf("fadd = %g", v.Get("fadd"))
	}
	if v.Total() != 6 {
		t.Fatalf("total = %g", v.Total())
	}
	if v.Get("missing") != 0 {
		t.Fatal("missing key should read 0")
	}
	rows := v.Rows()
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	// Rows sorted by key.
	if rows[0].Name != "ops::fadd" || rows[1].Name != "ops::fmul" {
		t.Fatalf("row order: %+v", rows)
	}
}

func TestVectorBucket(t *testing.T) {
	v := NewVector("ops", "ops by class")
	var b Bucket
	if b.Valid() {
		t.Fatal("zero Bucket reports Valid")
	}
	v.Inc("fadd", 2)
	b = v.Bucket("fadd")
	if !b.Valid() {
		t.Fatal("bound Bucket not Valid")
	}
	b.Inc(3)
	if v.Get("fadd") != 5 {
		t.Fatalf("fadd = %g, want 5", v.Get("fadd"))
	}
	// Binding a fresh key creates it, but only increments make it count.
	c := v.Bucket("fmul")
	c.Inc(4)
	if v.Get("fmul") != 4 || v.Total() != 9 {
		t.Fatalf("fmul = %g total = %g", v.Get("fmul"), v.Total())
	}
	// Handles stay valid as more keys bind (index-stable).
	v.Bucket("fdiv").Inc(1)
	b.Inc(1)
	if v.Get("fadd") != 6 {
		t.Fatalf("fadd after growth = %g, want 6", v.Get("fadd"))
	}
	// Key order reflects first-touch order, matching plain Inc semantics.
	keys := v.Keys()
	want := []string{"fadd", "fmul", "fdiv"}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys = %v, want %v", keys, want)
		}
	}
}

func TestDistribution(t *testing.T) {
	d := NewDistribution("lat", "latency")
	if d.Mean() != 0 {
		t.Fatal("empty mean should be 0")
	}
	for _, v := range []float64{4, 2, 6} {
		d.Sample(v)
	}
	if d.Count() != 3 || d.Min() != 2 || d.Max() != 6 || d.Mean() != 4 {
		t.Fatalf("count=%d min=%g max=%g mean=%g", d.Count(), d.Min(), d.Max(), d.Mean())
	}
}

func TestGroupDumpAndLookup(t *testing.T) {
	root := NewGroup("sys")
	acc := root.Child("acc0")
	c := acc.Scalar("cycles", "cycles")
	c.Set(123)
	acc.Formula("freq", "derived", func() float64 { return 2 * c.Value() })
	v := acc.Vector("ops", "per class")
	v.Inc("fadd", 5)

	var sb strings.Builder
	root.Dump(&sb)
	out := sb.String()
	for _, want := range []string{"sys.acc0.cycles", "sys.acc0.freq", "sys.acc0.ops::fadd"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
	got, ok := root.Lookup("sys.acc0.cycles")
	if !ok || got != 123 {
		t.Fatalf("Lookup cycles = %g, %v", got, ok)
	}
	got, ok = root.Lookup("sys.acc0.freq")
	if !ok || got != 246 {
		t.Fatalf("Lookup freq = %g, %v", got, ok)
	}
	if _, ok := root.Lookup("sys.acc0.nonexistent"); ok {
		t.Fatal("lookup of missing stat succeeded")
	}
}

// TestLookupPrecision pins the regression where Lookup re-parsed the
// %16.6g Dump rendering: any value needing more than six significant
// digits (every large cycle/tick counter) came back rounded. Lookup must
// walk the stat tree structurally and return exact values.
func TestLookupPrecision(t *testing.T) {
	root := NewGroup("sys")
	acc := root.Child("acc0")
	c := acc.Scalar("ticks", "ticks")
	c.Set(123456789) // %16.6g renders 1.23457e+08
	got, ok := root.Lookup("sys.acc0.ticks")
	if !ok || got != 123456789 {
		t.Fatalf("Lookup ticks = %v, %v; want exact 123456789", got, ok)
	}

	// Vector rows and deep nesting go through the same structural walk.
	v := acc.Child("fu").Vector("ops", "per class")
	v.Inc("fadd", 98765432.5)
	got, ok = root.Lookup("sys.acc0.fu.ops::fadd")
	if !ok || got != 98765432.5 {
		t.Fatalf("Lookup vector row = %v, %v; want exact 98765432.5", got, ok)
	}

	// Paths that only differ from a real stat by prefix still miss.
	for _, miss := range []string{
		"acc0.ticks",          // missing root prefix
		"sys.acc0",            // group, not a stat
		"sys.acc0.fu",         // nested group, not a stat
		"sys.acc0.ticks.tail", // trailing junk
	} {
		if _, ok := root.Lookup(miss); ok {
			t.Fatalf("Lookup(%q) unexpectedly succeeded", miss)
		}
	}
}

func TestGroupChildReuse(t *testing.T) {
	root := NewGroup("sys")
	a := root.Child("x")
	b := root.Child("x")
	if a != b {
		t.Fatal("Child should return the existing group")
	}
}
