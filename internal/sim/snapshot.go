package sim

import (
	"fmt"

	"gosalam/internal/snapshot"
)

// This file is the sim half of checkpoint/restore. A snapshot records the
// queue's logical state only — (now, seq, fired) plus each pending
// event's (when, pri, seq) coordinates, claimed by the component that
// owns the callback — never slot indices, heap layout, or the free list.
// That is sound because pop order is a total order on (when, pri, seq):
// two queues holding the same logical pending multiset at the same
// (now, seq) execute identically regardless of physical layout.

// Info returns the scheduling coordinates of a still-pending event, so
// its owner can claim it in a snapshot. ok is false once the event has
// fired or been canceled.
func (id EventID) Info() (when Tick, pri int32, seq uint64, ok bool) {
	if !id.Scheduled() {
		return 0, 0, 0, false
	}
	s := &id.q.slots[id.slot]
	if s.pos < 0 {
		return 0, 0, 0, false
	}
	return s.when, s.pri, s.seq, true
}

// Seq returns the queue's next-sequence cursor, for snapshots.
func (q *EventQueue) Seq() uint64 { return q.seq }

// ForEachPending calls f for every pending event in heap-array order
// (arbitrary but deterministic). obj is non-nil for ScheduleObj events;
// closure events pass nil and must be claimed by their owners through
// EventID.Info instead.
func (q *EventQueue) ForEachPending(f func(when Tick, pri int32, seq uint64, obj Firer)) {
	for _, idx := range q.order {
		s := &q.slots[idx]
		f(s.when, s.pri, s.seq, s.obj)
	}
}

// RestoreAt rewinds a freshly Reset (empty) queue to a captured logical
// position. Subsequent ScheduleRestored calls re-insert the pending
// events; new Schedule calls continue the sequence from seq exactly as
// the original run would have.
func (q *EventQueue) RestoreAt(now Tick, seq, fired uint64) {
	if len(q.order) != 0 {
		panic("sim: RestoreAt on a queue with pending events")
	}
	q.now, q.seq, q.fired = now, seq, fired
}

// scheduleRestored inserts an event with a historical sequence number
// instead of allocating a new one. Only valid between RestoreAt and the
// resumption of execution; the seq must predate the restored cursor.
func (q *EventQueue) scheduleRestored(when Tick, pri int, seq uint64, fn func(), obj Firer) EventID {
	if when < q.now {
		panic(fmt.Sprintf("sim: restoring event at %d before now %d", when, q.now))
	}
	if seq >= q.seq {
		panic(fmt.Sprintf("sim: restored event seq %d not below queue seq %d", seq, q.seq))
	}
	idx := q.alloc()
	s := &q.slots[idx]
	s.when, s.pri, s.seq = when, int32(pri), seq
	s.fn, s.obj = fn, obj
	q.order = append(q.order, idx)
	q.siftUp(len(q.order) - 1)
	return EventID{q: q, slot: idx, gen: s.gen}
}

// ScheduleRestored re-inserts a captured closure event.
func (q *EventQueue) ScheduleRestored(ev snapshot.Event, fn func()) EventID {
	return q.scheduleRestored(Tick(ev.When), int(ev.Pri), ev.Seq, fn, nil)
}

// ScheduleRestoredObj re-inserts a captured Firer event.
func (q *EventQueue) ScheduleRestoredObj(ev snapshot.Event, obj Firer) EventID {
	return q.scheduleRestored(Tick(ev.When), int(ev.Pri), ev.Seq, nil, obj)
}

// CaptureClock snapshots a Clocked helper: activity, executed cycles, and
// the armed tick event's coordinates.
func (c *Clocked) CaptureClock() snapshot.Clock {
	out := snapshot.Clock{Active: c.active, Cycles: c.Cycles}
	if c.tick != nil {
		if when, pri, seq, ok := c.tick.id.Info(); ok {
			out.Armed = true
			out.Tick = snapshot.Event{When: uint64(when), Pri: pri, Seq: seq}
		}
	}
	return out
}

// RestoreClock rewinds a Clocked helper into a captured state, re-arming
// its pre-bound tick closure with the historical event coordinates. The
// owning queue must already be positioned via RestoreAt.
func (c *Clocked) RestoreClock(s snapshot.Clock) {
	c.active = s.Active
	c.Cycles = s.Cycles
	if s.Armed {
		c.tick.id = c.Q.scheduleRestored(Tick(s.Tick.When), int(s.Tick.Pri), s.Tick.Seq, c.tick.fn, nil)
	} else {
		c.tick.id = EventID{}
	}
}

// CaptureStats snapshots a stats group tree. It fails on a Stat
// implementation it does not know how to serialize — snapshotting demands
// every stat be one of the four sim types.
func CaptureStats(g *Group) (snapshot.Group, error) {
	out := snapshot.Group{Name: g.name}
	for _, s := range g.stats {
		switch st := s.(type) {
		case *Scalar:
			out.Stats = append(out.Stats, snapshot.Stat{Kind: snapshot.StatScalar, Name: st.name, V: st.V})
		case *Vector:
			out.Stats = append(out.Stats, snapshot.Stat{
				Kind: snapshot.StatVector, Name: st.name,
				Keys: append([]string(nil), st.keys...),
				Vals: append([]float64(nil), st.vals...),
			})
		case *Distribution:
			out.Stats = append(out.Stats, snapshot.Stat{
				Kind: snapshot.StatDistribution, Name: st.name,
				N: st.n, Sum: st.sum, Min: st.min, Max: st.max,
			})
		case *Formula:
			out.Stats = append(out.Stats, snapshot.Stat{Kind: snapshot.StatFormula, Name: st.name})
		default:
			return snapshot.Group{}, fmt.Errorf("sim: cannot snapshot stat %q (%T)", s.StatName(), s)
		}
	}
	for _, c := range g.children {
		cg, err := CaptureStats(c)
		if err != nil {
			return snapshot.Group{}, err
		}
		out.Children = append(out.Children, cg)
	}
	return out, nil
}

// RestoreStats loads captured values into an already-Reset live tree.
// Stats are matched by name within each group and must exist with the
// captured kind; the structure comes from elaboration, never from the
// image. Vector restore is a merge: captured keys are created (in
// captured insertion order) or overwritten, and keys only the live tree
// knows stay at their reset value of zero — so Bucket handles bound
// before the restore remain valid.
func RestoreStats(g *Group, s snapshot.Group) error {
	if g.name != s.Name {
		return fmt.Errorf("sim: stats group %q does not match image group %q", g.name, s.Name)
	}
	for _, ss := range s.Stats {
		live := findStat(g, ss.Name)
		if live == nil {
			return fmt.Errorf("sim: stats group %q has no stat %q from image", g.name, ss.Name)
		}
		switch st := live.(type) {
		case *Scalar:
			if ss.Kind != snapshot.StatScalar {
				return kindMismatch(g.name, ss.Name)
			}
			st.V = ss.V
		case *Vector:
			if ss.Kind != snapshot.StatVector {
				return kindMismatch(g.name, ss.Name)
			}
			for i, k := range ss.Keys {
				st.vals[st.bucketIdx(k)] = ss.Vals[i]
			}
		case *Distribution:
			if ss.Kind != snapshot.StatDistribution {
				return kindMismatch(g.name, ss.Name)
			}
			st.n, st.sum, st.min, st.max = ss.N, ss.Sum, ss.Min, ss.Max
		case *Formula:
			if ss.Kind != snapshot.StatFormula {
				return kindMismatch(g.name, ss.Name)
			}
		default:
			return fmt.Errorf("sim: cannot restore into stat %q (%T)", ss.Name, live)
		}
	}
	for _, sc := range s.Children {
		live := findChild(g, sc.Name)
		if live == nil {
			return fmt.Errorf("sim: stats group %q has no child %q from image", g.name, sc.Name)
		}
		if err := RestoreStats(live, sc); err != nil {
			return err
		}
	}
	return nil
}

func findStat(g *Group, name string) Stat {
	for _, s := range g.stats {
		if s.StatName() == name {
			return s
		}
	}
	return nil
}

func findChild(g *Group, name string) *Group {
	for _, c := range g.children {
		if c.name == name {
			return c
		}
	}
	return nil
}

func kindMismatch(group, stat string) error {
	return fmt.Errorf("sim: stat %q in group %q has a different kind in the image", stat, group)
}
