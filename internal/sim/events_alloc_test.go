package sim

import "testing"

// TestCancelRemovesFromQueue: Cancel must remove the event from the heap
// immediately — Pending is exact, and the canceled callback never runs
// even when the queue keeps executing past its scheduled time.
func TestCancelRemovesFromQueue(t *testing.T) {
	q := NewEventQueue()
	fired := false
	id := q.Schedule(100, PriDefault, func() { fired = true })
	q.Schedule(200, PriDefault, func() {})
	if q.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", q.Pending())
	}
	id.Cancel()
	if q.Pending() != 1 {
		t.Fatalf("Pending after cancel = %d, want 1 (canceled event must leave the heap)", q.Pending())
	}
	if id.Scheduled() {
		t.Fatal("canceled event still reports Scheduled")
	}
	q.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	if q.Now() != 200 {
		t.Fatalf("Now = %d, want 200", q.Now())
	}
	if q.Pending() != 0 {
		t.Fatalf("Pending after drain = %d, want 0", q.Pending())
	}
}

// TestCancelInteriorKeepsOrder: removing an event from the middle of the
// heap must not disturb the firing order of the remainder.
func TestCancelInteriorKeepsOrder(t *testing.T) {
	q := NewEventQueue()
	var got []Tick
	ids := make([]EventID, 10)
	for i := 0; i < 10; i++ {
		when := Tick(10 * (i + 1))
		ids[i] = q.Schedule(when, PriDefault, func() { got = append(got, q.Now()) })
	}
	ids[3].Cancel()
	ids[7].Cancel()
	ids[3].Cancel() // double-cancel is a no-op
	if q.Pending() != 8 {
		t.Fatalf("Pending = %d, want 8", q.Pending())
	}
	q.Run()
	want := []Tick{10, 20, 30, 50, 60, 70, 90, 100}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fire %d at tick %d, want %d", i, got[i], want[i])
		}
	}
}

// TestStaleIDAfterReuse: once an event fires, its slot may be reused by a
// later Schedule; the old ID must stay inert (no cancel of the new event,
// Scheduled false).
func TestStaleIDAfterReuse(t *testing.T) {
	q := NewEventQueue()
	first := q.Schedule(10, PriDefault, func() {})
	q.Run()
	if first.Scheduled() {
		t.Fatal("fired event reports Scheduled")
	}
	// The freed slot is reused by the next schedule.
	fired := false
	second := q.Schedule(20, PriDefault, func() { fired = true })
	if second.slot != first.slot {
		t.Fatalf("slot not reused: first=%d second=%d", first.slot, second.slot)
	}
	first.Cancel() // stale generation: must not cancel the new event
	if !second.Scheduled() {
		t.Fatal("stale Cancel removed a newer event in the same slot")
	}
	q.Run()
	if !fired {
		t.Fatal("second event did not fire")
	}
}

// TestScheduleSteadyStateAllocs: after warm-up, scheduling and firing
// events reuses slots and performs zero heap allocations.
func TestScheduleSteadyStateAllocs(t *testing.T) {
	q := NewEventQueue()
	fn := func() {}
	// Warm the arena.
	for i := 0; i < 64; i++ {
		q.Schedule(q.Now()+1, PriDefault, fn)
	}
	q.Run()
	allocs := testing.AllocsPerRun(100, func() {
		q.Schedule(q.Now()+1, PriDefault, fn)
		q.Run()
	})
	if allocs != 0 {
		t.Fatalf("steady-state schedule+fire allocates %.1f objects/op, want 0", allocs)
	}
}

type firerProbe struct {
	count int
	at    Tick
	q     *EventQueue
}

func (f *firerProbe) Fire() {
	f.count++
	f.at = f.q.Now()
}

// TestScheduleObj: object payloads fire like closures, interleaved in the
// same (when, pri, seq) order.
func TestScheduleObj(t *testing.T) {
	q := NewEventQueue()
	p := &firerProbe{q: q}
	var closureAt Tick
	q.ScheduleObj(50, PriDefault, p)
	q.Schedule(40, PriDefault, func() { closureAt = q.Now() })
	id := q.ScheduleObj(60, PriDefault, p)
	id.Cancel()
	q.Run()
	if p.count != 1 {
		t.Fatalf("Firer ran %d times, want 1 (cancel must work for obj events)", p.count)
	}
	if p.at != 50 || closureAt != 40 {
		t.Fatalf("fire times = obj:%d closure:%d, want 50/40", p.at, closureAt)
	}
}

// TestRecurring: a pre-bound event can be re-armed every firing without
// allocating, canceled while armed, and re-armed after cancel.
func TestRecurring(t *testing.T) {
	q := NewEventQueue()
	count := 0
	var r *Recurring
	r = q.NewRecurring(PriClock, func() {
		count++
		if count < 5 {
			r.ScheduleAfter(10)
		}
	})
	if r.Scheduled() {
		t.Fatal("new Recurring reports Scheduled")
	}
	r.ScheduleAt(10)
	if !r.Scheduled() {
		t.Fatal("armed Recurring not Scheduled")
	}
	q.Run()
	if count != 5 {
		t.Fatalf("recurring fired %d times, want 5", count)
	}
	if q.Now() != 50 {
		t.Fatalf("Now = %d, want 50", q.Now())
	}

	// Cancel while armed.
	r.ScheduleAfter(10)
	r.Cancel()
	if r.Scheduled() {
		t.Fatal("canceled Recurring still Scheduled")
	}
	q.Run()
	if count != 5 {
		t.Fatalf("canceled recurring fired (count=%d)", count)
	}

	// Re-arm after cancel still works, and re-arming is allocation-free.
	allocs := testing.AllocsPerRun(50, func() {
		r.ScheduleAfter(1)
		q.Run()
	})
	if allocs != 0 {
		t.Fatalf("recurring rescheduling allocates %.1f objects/op, want 0", allocs)
	}
}

// TestPendingExactUnderChurn: Pending tracks the live event count exactly
// through interleaved schedules, cancels, and fires.
func TestPendingExactUnderChurn(t *testing.T) {
	q := NewEventQueue()
	live := 0
	var ids []EventID
	for round := 0; round < 20; round++ {
		for i := 0; i < 7; i++ {
			ids = append(ids, q.Schedule(q.Now()+Tick(1+(round+i)%13), PriDefault, func() {}))
			live++
		}
		// Cancel every third outstanding id (some already fired/canceled).
		for i := 0; i < len(ids); i += 3 {
			if ids[i].Scheduled() {
				ids[i].Cancel()
				live--
			}
		}
		if q.Pending() != live {
			t.Fatalf("round %d: Pending = %d, want %d", round, q.Pending(), live)
		}
		q.RunUntil(q.Now() + 2)
		// Recount live events after partial drain.
		live = 0
		for _, id := range ids {
			if id.Scheduled() {
				live++
			}
		}
		if q.Pending() != live {
			t.Fatalf("round %d after drain: Pending = %d, want %d", round, q.Pending(), live)
		}
	}
	q.Run()
	if q.Pending() != 0 {
		t.Fatalf("Pending after full drain = %d, want 0", q.Pending())
	}
}
