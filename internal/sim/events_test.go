package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	q := NewEventQueue()
	var got []int
	q.Schedule(30, PriDefault, func() { got = append(got, 3) })
	q.Schedule(10, PriDefault, func() { got = append(got, 1) })
	q.Schedule(20, PriDefault, func() { got = append(got, 2) })
	q.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if q.Now() != 30 {
		t.Fatalf("Now() = %d, want 30", q.Now())
	}
}

func TestEventPriorityAndFIFOTies(t *testing.T) {
	q := NewEventQueue()
	var got []string
	q.Schedule(10, PriDefault, func() { got = append(got, "d1") })
	q.Schedule(10, PriClock, func() { got = append(got, "c") })
	q.Schedule(10, PriDefault, func() { got = append(got, "d2") })
	q.Schedule(10, PriStatDump, func() { got = append(got, "s") })
	q.Run()
	want := []string{"c", "d1", "d2", "s"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	q := NewEventQueue()
	q.Schedule(100, PriDefault, func() {})
	q.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	q.Schedule(50, PriDefault, func() {})
}

func TestCancel(t *testing.T) {
	q := NewEventQueue()
	fired := false
	id := q.Schedule(10, PriDefault, func() { fired = true })
	id.Cancel()
	q.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	if q.Fired() != 0 {
		t.Fatalf("Fired() = %d, want 0", q.Fired())
	}
}

func TestRunUntil(t *testing.T) {
	q := NewEventQueue()
	var got []Tick
	for _, tk := range []Tick{5, 15, 25} {
		tk := tk
		q.Schedule(tk, PriDefault, func() { got = append(got, tk) })
	}
	q.RunUntil(15)
	if len(got) != 2 {
		t.Fatalf("executed %d events by t=15, want 2", len(got))
	}
	if q.Now() != 15 {
		t.Fatalf("Now() = %d, want 15", q.Now())
	}
	q.Run()
	if len(got) != 3 {
		t.Fatalf("executed %d events total, want 3", len(got))
	}
}

func TestRunWhile(t *testing.T) {
	q := NewEventQueue()
	count := 0
	var self func()
	self = func() {
		count++
		q.After(10, self)
	}
	q.After(10, self)
	q.RunWhile(func() bool { return count < 5 })
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
}

func TestNestedScheduling(t *testing.T) {
	q := NewEventQueue()
	depth := 0
	var rec func()
	rec = func() {
		depth++
		if depth < 100 {
			q.After(1, rec)
		}
	}
	q.After(1, rec)
	q.Run()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if q.Now() != 100 {
		t.Fatalf("Now() = %d, want 100", q.Now())
	}
}

// Property: events fire in nondecreasing time order for random schedules.
func TestEventOrderProperty(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		q := NewEventQueue()
		var times []Tick
		count := int(n%64) + 1
		for i := 0; i < count; i++ {
			when := Tick(rng.Intn(1000))
			q.Schedule(when, PriDefault, func() { times = append(times, q.Now()) })
		}
		q.Run()
		return sort.SliceIsSorted(times, func(i, j int) bool { return times[i] < times[j] })
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestClockDomain(t *testing.T) {
	c := NewClockDomainMHz("acc", 100) // 100 MHz -> 10 ns = 10000 ps
	if c.Period() != 10000 {
		t.Fatalf("period = %d, want 10000", c.Period())
	}
	if c.NextEdge(0) != 0 {
		t.Fatalf("NextEdge(0) = %d, want 0", c.NextEdge(0))
	}
	if c.NextEdge(1) != 10000 {
		t.Fatalf("NextEdge(1) = %d, want 10000", c.NextEdge(1))
	}
	if c.NextEdge(10000) != 10000 {
		t.Fatalf("NextEdge(10000) = %d, want 10000", c.NextEdge(10000))
	}
	if c.CyclesToTicks(3) != 30000 {
		t.Fatalf("CyclesToTicks(3) = %d", c.CyclesToTicks(3))
	}
	if c.TicksToCycles(25000) != 2 {
		t.Fatalf("TicksToCycles(25000) = %d", c.TicksToCycles(25000))
	}
	if got := c.FrequencyMHz(); got < 99.9 || got > 100.1 {
		t.Fatalf("FrequencyMHz = %g", got)
	}
}

func TestClockedRunsPerCycleAndDeactivates(t *testing.T) {
	q := NewEventQueue()
	clk := NewClockDomain("c", 100)
	var c Clocked
	c.InitClocked("obj", q, clk)
	work := 5
	c.CycleFn = func() bool {
		work--
		return work > 0
	}
	c.ActivateNow()
	q.Run()
	if work != 0 {
		t.Fatalf("work = %d, want 0", work)
	}
	if c.Cycles != 5 {
		t.Fatalf("Cycles = %d, want 5", c.Cycles)
	}
	if c.Active() {
		t.Fatal("still active after CycleFn returned false")
	}
	// Reactivation works.
	work = 2
	c.Activate()
	q.Run()
	if work != 0 || c.Cycles != 7 {
		t.Fatalf("after reactivation: work=%d cycles=%d", work, c.Cycles)
	}
}

func TestClockedActivateIdempotent(t *testing.T) {
	q := NewEventQueue()
	clk := NewClockDomain("c", 100)
	var c Clocked
	c.InitClocked("obj", q, clk)
	runs := 0
	c.CycleFn = func() bool {
		runs++
		return false
	}
	c.Activate()
	c.Activate()
	c.Activate()
	q.Run()
	if runs != 1 {
		t.Fatalf("runs = %d, want 1 (duplicate activation)", runs)
	}
}

func TestClockedDeactivate(t *testing.T) {
	q := NewEventQueue()
	clk := NewClockDomain("c", 100)
	var c Clocked
	c.InitClocked("obj", q, clk)
	c.CycleFn = func() bool { return true }
	c.Activate()
	q.Schedule(450, PriDefault, func() { c.Deactivate() })
	q.RunUntil(2000)
	// Edges at 100,200,300,400 fire; 500+ canceled.
	if c.Cycles != 4 {
		t.Fatalf("Cycles = %d, want 4", c.Cycles)
	}
}

func TestClockEdgeAlignment(t *testing.T) {
	q := NewEventQueue()
	clk := NewClockDomain("c", 100)
	var c Clocked
	c.InitClocked("obj", q, clk)
	var edges []Tick
	c.CycleFn = func() bool {
		edges = append(edges, q.Now())
		return len(edges) < 3
	}
	q.Schedule(250, PriDefault, func() { c.Activate() })
	q.Run()
	want := []Tick{300, 400, 500}
	for i := range want {
		if edges[i] != want[i] {
			t.Fatalf("edges = %v, want %v", edges, want)
		}
	}
}
