package trace

import (
	"gosalam/internal/hw"
)

// MemModel assigns a latency to each memory access during datapath
// reconstruction. The baseline's defining weakness is that this model
// leaks into the datapath: different cache configurations produce
// different reverse-engineered FU allocations (Table II).
type MemModel interface {
	AccessLatency(addr uint64, size int, write bool) int
	Name() string
}

// FixedLatency models a multi-ported scratchpad.
type FixedLatency struct {
	Cycles int
	Label  string
}

// AccessLatency returns the fixed latency.
func (m FixedLatency) AccessLatency(uint64, int, bool) int { return m.Cycles }

// Name returns the label.
func (m FixedLatency) Name() string { return m.Label }

// CacheProbe is a stateful set-associative cache simulator: accesses in
// trace order hit or miss, returning the corresponding latency.
type CacheProbe struct {
	SizeBytes    int
	LineBytes    int
	Assoc        int
	HitCycles    int
	MissCycles   int
	sets         [][]cacheLine
	tick         uint64
	Hits, Misses uint64
}

type cacheLine struct {
	tag   uint64
	valid bool
	lru   uint64
}

// NewCacheProbe builds a probe.
func NewCacheProbe(sizeBytes, lineBytes, assoc, hitCycles, missCycles int) *CacheProbe {
	nLines := sizeBytes / lineBytes
	if nLines < 1 {
		nLines = 1
	}
	if assoc > nLines {
		assoc = nLines
	}
	if assoc < 1 {
		assoc = 1
	}
	nSets := nLines / assoc
	if nSets < 1 {
		nSets = 1
	}
	c := &CacheProbe{
		SizeBytes: sizeBytes, LineBytes: lineBytes, Assoc: assoc,
		HitCycles: hitCycles, MissCycles: missCycles,
		sets: make([][]cacheLine, nSets),
	}
	for i := range c.sets {
		c.sets[i] = make([]cacheLine, assoc)
	}
	return c
}

// AccessLatency simulates one access.
func (c *CacheProbe) AccessLatency(addr uint64, size int, write bool) int {
	line := addr / uint64(c.LineBytes)
	set := c.sets[line%uint64(len(c.sets))]
	c.tick++
	for i := range set {
		if set[i].valid && set[i].tag == line {
			set[i].lru = c.tick
			c.Hits++
			return c.HitCycles
		}
	}
	c.Misses++
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	set[victim] = cacheLine{tag: line, valid: true, lru: c.tick}
	return c.MissCycles
}

// Name describes the configuration.
func (c *CacheProbe) Name() string {
	switch {
	case c.SizeBytes >= 1024:
		return formatKB(c.SizeBytes)
	default:
		return formatB(c.SizeBytes)
	}
}

func formatKB(b int) string { return itoa(b/1024) + "kB cache" }
func formatB(b int) string  { return itoa(b) + "B cache" }

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// Datapath is the reverse-engineered accelerator: per-class FU counts
// derived from the trace's peak per-cycle parallelism.
type Datapath struct {
	FUCount map[hw.FUClass]int
	// Levels is each entry's ASAP start cycle.
	Levels []int
	// Depth is the critical-path length in cycles.
	Depth int
}

// BuildDatapath ASAP-levelizes the dynamic dependence graph under the
// memory model and allocates max-per-cycle functional units per class —
// Aladdin's datapath reconstruction.
func BuildDatapath(t *Trace, mm MemModel) *Datapath {
	n := len(t.Entries)
	levels := make([]int, n)
	finish := make([]int, n)
	perCycle := map[int]map[hw.FUClass]int{}
	depth := 0
	for i := range t.Entries {
		e := &t.Entries[i]
		start := 0
		for _, d := range e.Deps {
			if f := finish[d]; f > start {
				start = f
			}
		}
		lat := e.Latency
		if e.IsLoad || e.IsStore {
			lat = mm.AccessLatency(e.Addr, e.Size, e.IsStore)
		}
		levels[i] = start
		finish[i] = start + lat
		if finish[i] > depth {
			depth = finish[i]
		}
		if e.Class != hw.FUNone && e.Class != hw.FUControl {
			pc := perCycle[start]
			if pc == nil {
				pc = map[hw.FUClass]int{}
				perCycle[start] = pc
			}
			pc[e.Class]++
		}
	}
	dp := &Datapath{FUCount: map[hw.FUClass]int{}, Levels: levels, Depth: depth}
	for _, pc := range perCycle {
		for c, cnt := range pc {
			if cnt > dp.FUCount[c] {
				dp.FUCount[c] = cnt
			}
		}
	}
	return dp
}

// AreaUM2 returns the datapath area implied by the allocation.
func (d *Datapath) AreaUM2(p *hw.Profile) float64 {
	a := 0.0
	for c, n := range d.FUCount {
		a += p.Spec(c).AreaUM2 * float64(n)
	}
	return a
}

// Simulate list-schedules the trace graph under the allocated FUs and a
// memory-port limit, returning the cycle count — the baseline's
// trace-graph execution phase.
func Simulate(t *Trace, dp *Datapath, mm MemModel, readPorts, writePorts int) uint64 {
	n := len(t.Entries)
	finish := make([]int, n)
	classUse := map[int]map[hw.FUClass]int{}
	readUse := map[int]int{}
	writeUse := map[int]int{}
	total := 0
	for i := range t.Entries {
		e := &t.Entries[i]
		start := 0
		for _, d := range e.Deps {
			if f := finish[d]; f > start {
				start = f
			}
		}
		for {
			if e.IsLoad {
				if readUse[start] < readPorts {
					readUse[start]++
					break
				}
			} else if e.IsStore {
				if writeUse[start] < writePorts {
					writeUse[start]++
					break
				}
			} else if e.Class == hw.FUNone || e.Class == hw.FUControl || e.Class == hw.FUMux {
				break
			} else {
				cu := classUse[start]
				if cu == nil {
					cu = map[hw.FUClass]int{}
					classUse[start] = cu
				}
				if cu[e.Class] < dp.FUCount[e.Class] {
					cu[e.Class]++
					break
				}
			}
			start++
		}
		lat := e.Latency
		if e.IsLoad || e.IsStore {
			lat = mm.AccessLatency(e.Addr, e.Size, e.IsStore)
		}
		finish[i] = start + lat
		if finish[i] > total {
			total = finish[i]
		}
	}
	return uint64(total)
}
