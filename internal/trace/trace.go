// Package trace implements the Aladdin-style trace-based baseline that
// gem5-SALAM defines itself against. It instruments a functional run to
// produce a dynamic LLVM instruction trace (serialized gzip-compressed,
// as Aladdin's instrumented binaries do), reverse-engineers a datapath
// from the trace's parallelism under a memory timing model, and schedules
// the trace graph. Because the datapath is derived from the *dynamic*
// trace, it inherits Aladdin's artifacts: functional-unit allocations
// change with input data (Table I) and with cache configuration
// (Table II), and preprocessing/simulation are far slower than SALAM's
// execute-in-execute engine (Table IV).
package trace

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"

	"gosalam/internal/hw"
	"gosalam/ir"
)

// Entry is one dynamic instruction in the trace.
type Entry struct {
	Op      ir.Opcode
	Class   hw.FUClass
	Latency int
	Deps    []int32 // producing trace indices (register + memory RAW)
	IsLoad  bool
	IsStore bool
	Addr    uint64
	Size    int
}

// Trace is a dynamic instruction stream.
type Trace struct {
	Entries []Entry
}

// Generate runs the kernel functionally and records the dynamic trace —
// Aladdin's binary instrumentation step.
func Generate(f *ir.Function, args []uint64, mem *ir.FlatMem, profile *hw.Profile) (*Trace, error) {
	tr := &Trace{}
	lastDef := map[*ir.Instr]int32{}
	lastStore := map[uint64]int32{} // per 8-byte word
	word := func(addr uint64) uint64 { return addr &^ 7 }

	hook := func(ev ir.TraceEvent) {
		in := ev.I
		idx := int32(len(tr.Entries))
		e := Entry{
			Op:      in.Op,
			Class:   hw.OpClass(in),
			Latency: profile.OpLatency(in),
		}
		seen := map[int32]bool{}
		addDep := func(d int32, ok bool) {
			if ok && !seen[d] {
				seen[d] = true
				e.Deps = append(e.Deps, d)
			}
		}
		args := in.Args
		if in.Op == ir.OpPhi {
			args = nil // incoming already executed; treat as wire
		}
		for _, a := range args {
			if ai, ok := a.(*ir.Instr); ok {
				d, found := lastDef[ai]
				addDep(d, found)
			}
		}
		switch in.Op {
		case ir.OpLoad:
			e.IsLoad = true
			e.Addr, e.Size = ev.Addr, ev.Bytes
			d, found := lastStore[word(ev.Addr)]
			addDep(d, found)
		case ir.OpStore:
			e.IsStore = true
			e.Addr, e.Size = ev.Addr, ev.Bytes
			lastStore[word(ev.Addr)] = idx
		}
		if in.HasResult() {
			lastDef[in] = idx
		}
		tr.Entries = append(tr.Entries, e)
	}
	scratch := ir.NewFlatMem(mem.Base, len(mem.Data))
	copy(scratch.Data, mem.Data)
	if _, _, err := ir.Exec(f, args, scratch, &ir.ExecOpts{Trace: hook}); err != nil {
		return nil, fmt.Errorf("trace: generation: %w", err)
	}
	return tr, nil
}

// Write serializes the trace as gzip-compressed text, one line per
// dynamic instruction — the on-disk trace Aladdin's flow produces.
func (t *Trace) Write(w io.Writer) error {
	gz := gzip.NewWriter(w)
	bw := bufio.NewWriter(gz)
	for _, e := range t.Entries {
		fmt.Fprintf(bw, "%d %d %d %t %t %d %d", int(e.Op), int(e.Class), e.Latency,
			e.IsLoad, e.IsStore, e.Addr, e.Size)
		for _, d := range e.Deps {
			fmt.Fprintf(bw, " %d", d)
		}
		fmt.Fprintln(bw)
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	return gz.Close()
}

// Read deserializes a trace written by Write — the trace-loading phase
// of baseline simulation.
func Read(r io.Reader) (*Trace, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return nil, err
	}
	defer gz.Close()
	tr := &Trace{}
	sc := bufio.NewScanner(gz)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var e Entry
		var op, class int
		fields := splitFields(sc.Text())
		if len(fields) < 7 {
			return nil, fmt.Errorf("trace: short line %q", sc.Text())
		}
		if _, err := fmt.Sscanf(fields[0], "%d", &op); err != nil {
			return nil, err
		}
		fmt.Sscanf(fields[1], "%d", &class)
		fmt.Sscanf(fields[2], "%d", &e.Latency)
		fmt.Sscanf(fields[3], "%t", &e.IsLoad)
		fmt.Sscanf(fields[4], "%t", &e.IsStore)
		fmt.Sscanf(fields[5], "%d", &e.Addr)
		fmt.Sscanf(fields[6], "%d", &e.Size)
		e.Op = ir.Opcode(op)
		e.Class = hw.FUClass(class)
		for _, f := range fields[7:] {
			var d int32
			fmt.Sscanf(f, "%d", &d)
			e.Deps = append(e.Deps, d)
		}
		tr.Entries = append(tr.Entries, e)
	}
	return tr, sc.Err()
}

func splitFields(s string) []string {
	var out []string
	start := -1
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ' ' {
			if start >= 0 {
				out = append(out, s[start:i])
				start = -1
			}
		} else if start < 0 {
			start = i
		}
	}
	return out
}
