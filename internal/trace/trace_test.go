package trace

import (
	"bytes"
	"testing"

	"gosalam/internal/hw"
	"gosalam/ir"
	"gosalam/kernels"
)

func genFor(t *testing.T, k *kernels.Kernel, seed int64) (*Trace, *ir.FlatMem, *kernels.Instance) {
	t.Helper()
	mem := ir.NewFlatMem(0, 1<<24)
	inst := k.Setup(mem, seed)
	tr, err := Generate(k.F, inst.Args, mem, hw.Default40nm())
	if err != nil {
		t.Fatal(err)
	}
	return tr, mem, inst
}

func TestGenerateBasicProperties(t *testing.T) {
	tr, _, _ := genFor(t, kernels.GEMM(4, 1), 1)
	if len(tr.Entries) == 0 {
		t.Fatal("empty trace")
	}
	loads, stores := 0, 0
	for i, e := range tr.Entries {
		for _, d := range e.Deps {
			if int(d) >= i {
				t.Fatalf("entry %d depends on future entry %d", i, d)
			}
		}
		if e.IsLoad {
			loads++
		}
		if e.IsStore {
			stores++
		}
	}
	// 4x4x4 GEMM: 2 loads per inner iteration, 1 store per (i,j).
	if loads != 2*4*4*4 {
		t.Fatalf("loads = %d, want %d", loads, 2*64)
	}
	if stores != 4*4 {
		t.Fatalf("stores = %d, want 16", stores)
	}
}

func TestTraceSerializationRoundTrip(t *testing.T) {
	tr, _, _ := genFor(t, kernels.GEMM(4, 1), 1)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("nothing serialized")
	}
	tr2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr2.Entries) != len(tr.Entries) {
		t.Fatalf("entry count %d != %d", len(tr2.Entries), len(tr.Entries))
	}
	for i := range tr.Entries {
		a, b := tr.Entries[i], tr2.Entries[i]
		if a.Op != b.Op || a.Class != b.Class || a.Latency != b.Latency ||
			a.IsLoad != b.IsLoad || a.IsStore != b.IsStore ||
			a.Addr != b.Addr || a.Size != b.Size || len(a.Deps) != len(b.Deps) {
			t.Fatalf("entry %d differs: %+v vs %+v", i, a, b)
		}
	}
}

// Table I's mechanism: the same kernel code with different input data
// produces different reverse-engineered datapaths.
func TestDatapathChangesWithInputData(t *testing.T) {
	k := kernels.SPMVCondShift(32, 4)
	mm := FixedLatency{Cycles: 2, Label: "spm"}

	tr1, _, _ := genFor(t, k, 2) // even seed: shift never triggers
	dp1 := BuildDatapath(tr1, mm)
	tr2, _, _ := genFor(t, k, 3) // odd seed: shift triggers
	dp2 := BuildDatapath(tr2, mm)

	if dp1.FUCount[hw.FUShifter] != 0 {
		t.Fatalf("dataset 1 allocated %d shifters, want 0", dp1.FUCount[hw.FUShifter])
	}
	if dp2.FUCount[hw.FUShifter] == 0 {
		t.Fatal("dataset 2 allocated no shifter despite executing shifts")
	}
}

// Table II's mechanism: the same kernel over different memory
// configurations produces different FU allocations.
func TestDatapathChangesWithMemoryModel(t *testing.T) {
	k := kernels.GEMMUnrolledInner(8)
	tr, _, _ := genFor(t, k, 1)

	counts := map[string]int{}
	for _, mm := range []MemModel{
		NewCacheProbe(256, 64, 2, 2, 20),
		NewCacheProbe(4096, 64, 2, 2, 20),
		FixedLatency{Cycles: 1, Label: "spm"},
	} {
		dp := BuildDatapath(tr, mm)
		counts[mm.Name()] = dp.FUCount[hw.FUFPMultiplier]
	}
	if counts["256B cache"] == counts["spm"] && counts["4kB cache"] == counts["spm"] {
		t.Fatalf("FU counts identical across memory models: %v", counts)
	}
}

// SALAM's static elaboration is invariant to both (the contrast the paper
// draws) — verified in internal/core; here we verify the cache probe
// behaves like a cache.
func TestCacheProbe(t *testing.T) {
	c := NewCacheProbe(256, 64, 2, 2, 20)
	if lat := c.AccessLatency(0, 8, false); lat != 20 {
		t.Fatalf("cold access latency = %d", lat)
	}
	if lat := c.AccessLatency(8, 8, false); lat != 2 {
		t.Fatalf("same-line access latency = %d", lat)
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", c.Hits, c.Misses)
	}
	// Fill beyond capacity: later re-access misses.
	for i := 0; i < 8; i++ {
		c.AccessLatency(uint64(i*64), 8, false)
	}
	if lat := c.AccessLatency(0, 8, false); lat != 20 {
		t.Fatalf("evicted line hit? lat=%d", lat)
	}
	if c.Name() == "" {
		t.Fatal("no name")
	}
}

func TestSimulateRespectsResources(t *testing.T) {
	k := kernels.GEMM(6, 6) // unrolled inner: parallelism to constrain
	tr, _, _ := genFor(t, k, 1)
	mm := FixedLatency{Cycles: 2, Label: "spm"}
	dp := BuildDatapath(tr, mm)

	free := Simulate(tr, dp, mm, 8, 8)
	// Starve the FP multipliers: must take longer.
	constrained := &Datapath{FUCount: map[hw.FUClass]int{}}
	for c, n := range dp.FUCount {
		constrained.FUCount[c] = n
	}
	constrained.FUCount[hw.FUFPMultiplier] = 1
	slow := Simulate(tr, constrained, mm, 8, 8)
	if !(slow > free) {
		t.Fatalf("constrained sim (%d) not slower than free (%d)", slow, free)
	}
	// Starve memory ports instead.
	slowMem := Simulate(tr, dp, mm, 1, 1)
	if !(slowMem > free) {
		t.Fatalf("port-starved sim (%d) not slower than free (%d)", slowMem, free)
	}
}

func TestDatapathAreaScalesWithFUs(t *testing.T) {
	p := hw.Default40nm()
	small := &Datapath{FUCount: map[hw.FUClass]int{hw.FUFPAdder: 1}}
	big := &Datapath{FUCount: map[hw.FUClass]int{hw.FUFPAdder: 10}}
	if !(big.AreaUM2(p) > small.AreaUM2(p)) {
		t.Fatal("area not monotonic in FU count")
	}
}
