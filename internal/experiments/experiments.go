// Package experiments regenerates every table and figure in the paper's
// evaluation (Sec. IV). Each experiment returns a Table that renders to
// markdown/CSV; cmd/salam-experiments drives them and bench_test.go wraps
// each in a testing.B benchmark. Scale selects workload sizes: ScaleSmoke
// for tests, ScaleFull for the recorded results in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Scale selects workload sizes.
type Scale int

// Scales.
const (
	ScaleSmoke Scale = iota // fast: CI / go test
	ScaleFull               // the sizes recorded in EXPERIMENTS.md
)

// Table is a rendered experiment result.
type Table struct {
	ID     string // "table1", "fig10", ...
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Note appends a footnote.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Markdown renders the table.
func (t *Table) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "### %s — %s\n\n", strings.ToUpper(t.ID[:1])+t.ID[1:], t.Title)
	sb.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	sb.WriteString("|" + strings.Repeat("---|", len(t.Header)) + "\n")
	for _, r := range t.Rows {
		sb.WriteString("| " + strings.Join(r, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		sb.WriteString("\n> " + n + "\n")
	}
	return sb.String()
}

// CSV renders comma-separated values.
func (t *Table) CSV() string {
	var sb strings.Builder
	sb.WriteString(strings.Join(t.Header, ",") + "\n")
	for _, r := range t.Rows {
		sb.WriteString(strings.Join(r, ",") + "\n")
	}
	return sb.String()
}

// Runner is one experiment.
type Runner struct {
	ID   string
	Desc string
	Run  func(s Scale) (*Table, error)
}

// AllRunners lists every experiment in paper order.
func AllRunners() []Runner {
	return []Runner{
		{"table1", "Aladdin datapath vs data-dependent execution", Table1},
		{"table2", "Aladdin datapath vs memory design", Table2},
		{"fig4", "Total power breakdown with private SPM", Fig4},
		{"fig10", "Performance validation vs HLS", Fig10},
		{"fig11", "Power validation vs synthesis reference", Fig11},
		{"fig12", "Area validation vs synthesis reference", Fig12},
		{"table3", "System validation vs FPGA model", Table3},
		{"table4", "Simulator setup and runtime vs trace baseline", Table4},
		{"fig13", "GEMM design-space Pareto", Fig13},
		{"fig14", "GEMM stalls breakdown vs read/write ports", Fig14},
		{"fig15", "GEMM memory/compute co-design exploration", Fig15},
		{"fig16", "Producer-consumer accelerator scenarios (CNN layer)", Fig16},
	}
}

// RunnerByID finds an experiment.
func RunnerByID(id string) (Runner, bool) {
	for _, r := range AllRunners() {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}

// helpers

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func pct(v float64) string { return fmt.Sprintf("%.2f%%", v*100) }
func itoa(v int) string    { return fmt.Sprintf("%d", v) }
func u64(v uint64) string  { return fmt.Sprintf("%d", v) }

// errPct returns |a-b|/b as a percentage value.
func errPct(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	d := (a - b) / b
	if d < 0 {
		d = -d
	}
	return d * 100
}

// signedErrPct returns (a-b)/b as a percentage (positive = a larger).
func signedErrPct(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return (a - b) / b * 100
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
