package experiments

import (
	"fmt"

	salam "gosalam"
	"gosalam/internal/core"
	"gosalam/internal/cpu"
	"gosalam/internal/hls"
	"gosalam/internal/hw"
	"gosalam/internal/sim"
	"gosalam/ir"
	"gosalam/kernels"
)

// Fig4 reproduces Fig. 4: the seven-category total power breakdown for
// the MachSuite set running with private SPMs.
func Fig4(s Scale) (*Table, error) {
	preset := kernels.Small
	if s == ScaleFull {
		preset = kernels.Default
	}
	t := &Table{
		ID:    "fig4",
		Title: "Total power analysis with private SPM (% contribution)",
		Header: []string{"Benchmark", "Dyn FU", "Dyn Reg", "Dyn SPM Rd", "Dyn SPM Wr",
			"Static FU", "Static Reg", "Static SPM", "Total (mW)"},
	}
	for _, k := range kernels.All(preset) {
		res, err := salam.RunKernel(k, salam.DefaultRunOpts())
		if err != nil {
			return nil, fmt.Errorf("%s: %w", k.Name, err)
		}
		p := res.Power
		tot := p.TotalMW()
		t.AddRow(k.Name,
			pct(p.DynFU/tot), pct(p.DynReg/tot), pct(p.DynSPMRead/tot), pct(p.DynSPMWrite/tot),
			pct(p.StaticFU/tot), pct(p.StaticReg/tot), pct(p.StaticSPM/tot), f2(tot))
	}
	t.Note("Paper Fig. 4 shows the same seven stacked categories; FP-heavy kernels " +
		"are dominated by dynamic FU power, memory-bound ones by SPM power. (The paper " +
		"ran the benchmarks concurrently; with private SPMs each accelerator's breakdown " +
		"is independent, so per-kernel runs report the same mix.)")
	return t, nil
}

// valBenchmarks is the Fig. 10-12 benchmark set (the paper evaluates 8;
// we run the full suite and note exclusions where the paper had them).
func valBenchmarks(preset kernels.Preset) []*kernels.Kernel {
	return kernels.All(preset)
}

// hlsConfigFor matches the static scheduler's view to the RunKernel
// configuration.
func hlsConfigFor(opts salam.RunOpts) hls.Config {
	return hls.Config{
		ReadPorts:  opts.Accel.ReadPorts,
		WritePorts: opts.Accel.WritePorts,
		// Engine-observed SPM round trip: issue edge + SPM service +
		// latency cycles + commit edge.
		MemLatency: opts.SPMLatency + 1,
		// The engine resolves and redirects within about one cycle.
		BranchCycles: 0,
	}
}

// Fig10 reproduces Fig. 10: cycle counts from the dynamic engine vs the
// static HLS reference, with per-benchmark error.
func Fig10(s Scale) (*Table, error) {
	preset := kernels.Small
	if s == ScaleFull {
		preset = kernels.Default
	}
	t := &Table{
		ID:     "fig10",
		Title:  "Performance validation (cycles, gosalam vs HLS reference)",
		Header: []string{"Benchmark", "gosalam (cy)", "HLS (cy)", "Error"},
	}
	opts := salam.DefaultRunOpts()
	var sumErr float64
	var n int
	for _, k := range valBenchmarks(preset) {
		res, err := salam.RunKernel(k, opts)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", k.Name, err)
		}
		mem := ir.NewFlatMem(0, 1<<24)
		inst := k.Setup(mem, opts.Seed)
		g, err := core.Elaborate(k.F, hw.Default40nm(), opts.Accel.FULimits)
		if err != nil {
			return nil, err
		}
		est, err := hls.EstimateCycles(g, hlsConfigFor(opts), inst.Args, mem)
		if err != nil {
			return nil, err
		}
		e := errPct(float64(res.Cycles), float64(est.Cycles))
		sumErr += e
		n++
		t.AddRow(k.Name, u64(res.Cycles), u64(est.Cycles), f2(e)+"%")
	}
	t.AddRow("Average", "-", "-", f2(sumErr/float64(n))+"%")
	t.Note("Paper Fig. 10: ~1%% average timing error vs Vivado HLS, with regular " +
		"kernels (FFT, GEMM, Stencil2D, NW) lowest and FP-reuse-heavy MD-KNN highest.")
	return t, nil
}

// powerAreaRows runs a kernel under both hardware calibrations and
// reports power or area error.
func powerAreaRows(preset kernels.Preset, area bool, skip map[string]string) (*Table, error) {
	what := "Power (mW)"
	if area {
		what = "Area (µm²)"
	}
	t := &Table{
		Header: []string{"Benchmark", "gosalam " + what, "Reference " + what, "Error"},
	}
	opts := salam.DefaultRunOpts()
	refOpts := opts
	refOpts.Profile = hw.SynthesisRef()
	var sumErr float64
	var n int
	for _, k := range valBenchmarks(preset) {
		if why, ok := skip[k.Name]; ok {
			t.AddRow(k.Name, "-", "-", "excluded: "+why)
			continue
		}
		res, err := salam.RunKernel(k, opts)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", k.Name, err)
		}
		refRes, err := salam.RunKernel(k, refOpts)
		if err != nil {
			return nil, fmt.Errorf("%s (ref): %w", k.Name, err)
		}
		var a, b float64
		if area {
			a = res.Power.AreaFU + res.Power.AreaReg
			b = refRes.Power.AreaFU + refRes.Power.AreaReg
		} else {
			a = res.Power.DatapathMW()
			b = refRes.Power.DatapathMW()
		}
		e := errPct(a, b)
		sumErr += e
		n++
		t.AddRow(k.Name, f2(a), f2(b), f2(e)+"%")
	}
	t.AddRow("Average", "-", "-", f2(sumErr/float64(n))+"%")
	return t, nil
}

// Fig11 reproduces Fig. 11: datapath power under the simulator profile vs
// the independent synthesis-reference calibration.
func Fig11(s Scale) (*Table, error) {
	preset := kernels.Small
	if s == ScaleFull {
		preset = kernels.Default
	}
	t, err := powerAreaRows(preset, false, map[string]string{
		"stencil3d": "Design Compiler ran out of memory during elaboration (paper Sec. IV-A)",
	})
	if err != nil {
		return nil, err
	}
	t.ID = "fig11"
	t.Title = "Power validation vs synthesis reference"
	t.Note("Paper Fig. 11: average power error 3.25%%; MD-KNN/MD-Grid/NW highest " +
		"due to mux/non-arithmetic operators.")
	return t, nil
}

// Fig12 reproduces Fig. 12: datapath area under both calibrations.
func Fig12(s Scale) (*Table, error) {
	preset := kernels.Small
	if s == ScaleFull {
		preset = kernels.Default
	}
	t, err := powerAreaRows(preset, true, map[string]string{
		"md-grid": "custom IPs prevented Design Compiler area estimation (paper Sec. IV-A)",
	})
	if err != nil {
		return nil, err
	}
	t.ID = "fig12"
	t.Title = "Area validation vs synthesis reference"
	t.Note("Paper Fig. 12: average area error 2.24%%.")
	return t, nil
}

// Table3 reproduces Table III: end-to-end system validation. The
// simulation side runs the full SoC (DMA staging + MMR control + IRQs);
// the board side is the analytic ZCU102 model.
func Table3(s Scale) (*Table, error) {
	preset := kernels.Small
	if s == ScaleFull {
		preset = kernels.Default
	}
	// The synthesized GEMM uses a reduction-tree inner loop, matching how
	// Vivado HLS unrolls the constant-bound k-loop on the board.
	table3Kernels := []*kernels.Kernel{
		kernels.ByName(preset, "fft"),
		kernels.GEMMTree(16),
		kernels.ByName(preset, "stencil2d"),
		kernels.ByName(preset, "stencil3d"),
		kernels.ByName(preset, "md-knn"),
	}
	t := &Table{
		ID:    "table3",
		Title: "System validation (simulation vs FPGA model)",
		Header: []string{"Benchmark", "FPGA Comp (µs)", "FPGA Xfer (µs)", "FPGA Total (µs)",
			"Sim Comp (µs)", "Sim Xfer (µs)", "Sim Total (µs)",
			"Comp Err", "Xfer Err", "Total Err"},
	}
	var sumC, sumX, sumT float64
	for _, k := range table3Kernels {
		simT, moved, err := runSystem(k)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", k.Name, err)
		}
		// Board model over the same workload.
		mem := ir.NewFlatMem(0, 1<<24)
		inst := k.Setup(mem, 1)
		g, err := core.Elaborate(k.F, hw.Default40nm(), nil)
		if err != nil {
			return nil, err
		}
		fpga, err := hls.DefaultZCU102().Run(g, hls.Config{ReadPorts: 2, WritePorts: 2, MemLatency: 4},
			inst.Args, mem, moved, 0)
		if err != nil {
			return nil, err
		}
		ce := signedErrPct(simT.ComputeUS, fpga.ComputeUS)
		xe := signedErrPct(simT.XferUS, fpga.XferUS)
		te := signedErrPct(simT.TotalUS, fpga.TotalUS)
		sumC += abs(ce)
		sumX += abs(xe)
		sumT += abs(te)
		t.AddRow(k.Name, f2(fpga.ComputeUS), f2(fpga.XferUS), f2(fpga.TotalUS),
			f2(simT.ComputeUS), f2(simT.XferUS), f2(simT.TotalUS),
			f2(ce)+"%", f2(xe)+"%", f2(te)+"%")
	}
	n := float64(len(table3Kernels))
	t.AddRow("Average |err|", "-", "-", "-", "-", "-", "-",
		f2(sumC/n)+"%", f2(sumX/n)+"%", f2(sumT/n)+"%")
	t.Note("Paper Table III: average errors ~1.9%% compute, ~2.4%% transfer, ~1.6%% total " +
		"on a ZCU102. Positive error = simulation faster.")
	return t, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// runSystem executes one kernel through the full SoC flow: DMA input from
// DRAM into the accelerator SPM, run under MMR/IRQ control, DMA results
// back — and splits the time into compute and bulk-transfer phases.
func runSystem(k *kernels.Kernel) (hls.Times, uint64, error) {
	soc := salam.NewSoC(32)
	// Stage the workload in DRAM.
	soc.Space.SetAllocBase(1 << 20)
	inst := k.Setup(soc.Space, 1)
	footprint := soc.Space.AllocCursor() - (1 << 20)

	spmBytes := uint64(nextPow2(int(footprint) + 4096))
	cfg := salam.AccelConfig{
		ClockMHz:       100,
		ReadPorts:      2,
		WritePorts:     2,
		MaxOutstanding: 16,
		// Room for wide unrolled blocks so loop pipelining matches the
		// board pipeline.
		ResQueueSize:  512,
		PipelineLoops: true,
	}
	node, err := soc.AddAccel(k.Name, k.F, salam.AccelOpts{SPMBytes: spmBytes, Cfg: cfg})
	if err != nil {
		return hls.Times{}, 0, err
	}
	dma, dmaIRQ := soc.AddBlockDMA("dma")

	// Remap pointer args from DRAM into the SPM.
	dramLo := uint64(1 << 20)
	dramHi := dramLo + footprint
	delta := node.SPM.Range().Base - dramLo
	args := make([]uint64, len(inst.Args))
	for i, a := range inst.Args {
		if ir.IsPtr(k.F.Params[i].T) && a >= dramLo && a < dramHi {
			args[i] = a + delta
		} else {
			args[i] = a
		}
	}
	// Bulk-copy the whole footprint in (inputs + workspace), run, copy
	// outputs back.
	var t0, t1, t2, t3 sim.Tick
	prog := []cpu.Op{salam.Stamp(soc, &t0)}
	prog = append(prog, cpu.StartDMA(dma.MMR.Range().Base, dramLo, dramLo+delta, footprint, 128, true)...)
	prog = append(prog, cpu.WaitIRQ{Line: dmaIRQ}, salam.Stamp(soc, &t1))
	prog = append(prog, cpu.StartAccel(node.MMRBase, args, true)...)
	prog = append(prog, cpu.WaitIRQ{Line: node.IRQLine}, salam.Stamp(soc, &t2))
	prog = append(prog, cpu.StartDMA(dma.MMR.Range().Base, inst.OutAddr+delta, inst.OutAddr, inst.OutBytes, 128, true)...)
	prog = append(prog, cpu.WaitIRQ{Line: dmaIRQ}, salam.Stamp(soc, &t3))
	if _, err := soc.RunHost(prog); err != nil {
		return hls.Times{}, 0, err
	}
	soc.Run()
	if err := inst.Check(soc.Space); err != nil {
		return hls.Times{}, 0, fmt.Errorf("system run produced wrong results: %w", err)
	}
	us := func(d sim.Tick) float64 { return float64(d) / 1e6 }
	return hls.Times{
		ComputeUS: us(t2 - t1),
		XferUS:    us(t1-t0) + us(t3-t2),
		TotalUS:   us(t3 - t0),
	}, footprint + inst.OutBytes, nil
}

func nextPow2(v int) int {
	n := 1 << 12
	for n < v {
		n <<= 1
	}
	return n
}
