package experiments

import (
	"bytes"
	"fmt"
	"time"

	salam "gosalam"
	"gosalam/internal/core"
	"gosalam/internal/hw"
	"gosalam/internal/trace"
	"gosalam/ir"
	"gosalam/kernels"
)

// Table1 reproduces Table I: the trace-based baseline allocates different
// functional units for the same SPMV-CRS kernel depending on the input
// dataset, while SALAM's statically elaborated datapath is invariant.
func Table1(s Scale) (*Table, error) {
	n, nnz := 32, 4
	if s == ScaleFull {
		n, nnz = 128, 5
	}
	k := kernels.SPMVCondShift(n, nnz)
	profile := hw.Default40nm()
	mm := trace.FixedLatency{Cycles: 2, Label: "spm"}

	t := &Table{
		ID:     "table1",
		Title:  "Aladdin-style datapath vs data-dependent execution (SPMV-CRS)",
		Header: []string{"Model", "Dataset", "FMUL", "FADD", "Int Shifter"},
	}
	for seed := int64(2); seed <= 3; seed++ {
		mem := ir.NewFlatMem(0, 1<<24)
		inst := k.Setup(mem, seed)
		tr, err := trace.Generate(k.F, inst.Args, mem, profile)
		if err != nil {
			return nil, err
		}
		dp := trace.BuildDatapath(tr, mm)
		t.AddRow("trace-based", fmt.Sprintf("%d", seed-1),
			itoa(dp.FUCount[hw.FUFPMultiplier]),
			itoa(dp.FUCount[hw.FUFPAdder]),
			itoa(dp.FUCount[hw.FUShifter]))
	}
	// SALAM: the static CDFG is a function of the IR alone.
	g, err := core.Elaborate(k.F, profile, nil)
	if err != nil {
		return nil, err
	}
	for ds := 1; ds <= 2; ds++ {
		t.AddRow("gosalam (static)", itoa(ds),
			itoa(g.FUCount(hw.FUFPMultiplier)),
			itoa(g.FUCount(hw.FUFPAdder)),
			itoa(g.FUCount(hw.FUShifter)))
	}
	t.Note("Dataset 2 contains values that trigger the conditional shift; " +
		"the baseline's datapath changes with the data, SALAM's does not (paper Table I).")
	return t, nil
}

// Table2 reproduces Table II: the baseline's reverse-engineered datapath
// for fully-unrolled GEMM varies with cache size and memory type, while
// SALAM decouples the datapath from the memory hierarchy.
func Table2(s Scale) (*Table, error) {
	n := 6
	if s == ScaleFull {
		n = 10
	}
	k := kernels.GEMMUnrolledInner(n)
	profile := hw.Default40nm()
	mem := ir.NewFlatMem(0, 1<<24)
	inst := k.Setup(mem, 1)
	tr, err := trace.Generate(k.F, inst.Args, mem, profile)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:     "table2",
		Title:  "Aladdin-style datapath vs memory design (GEMM n-cubed, fully unrolled)",
		Header: []string{"Model", "Memory", "FMUL", "FADD"},
	}
	sizes := []int{256, 512, 1024, 2048, 4096, 8192, 16384}
	for _, sz := range sizes {
		probe := trace.NewCacheProbe(sz, 64, 2, 2, 20)
		dp := trace.BuildDatapath(tr, probe)
		t.AddRow("trace-based", probe.Name(),
			itoa(dp.FUCount[hw.FUFPMultiplier]), itoa(dp.FUCount[hw.FUFPAdder]))
	}
	dpSPM := trace.BuildDatapath(tr, trace.FixedLatency{Cycles: 1, Label: "SPM"})
	t.AddRow("trace-based", "SPM",
		itoa(dpSPM.FUCount[hw.FUFPMultiplier]), itoa(dpSPM.FUCount[hw.FUFPAdder]))

	g, err := core.Elaborate(k.F, profile, nil)
	if err != nil {
		return nil, err
	}
	t.AddRow("gosalam (static)", "any",
		itoa(g.FUCount(hw.FUFPMultiplier)), itoa(g.FUCount(hw.FUFPAdder)))
	t.Note("The baseline's FU allocation follows data availability under each memory " +
		"configuration; SALAM's static datapath lets memory and datapath sweep independently (paper Table II).")
	return t, nil
}

// Table4 reproduces Table IV: wall-clock preprocessing and simulation time
// of the trace-based baseline vs gosalam, per benchmark.
func Table4(s Scale) (*Table, error) {
	preset := kernels.Small
	if s == ScaleFull {
		preset = kernels.Default
	}
	profile := hw.Default40nm()
	t := &Table{
		ID:    "table4",
		Title: "Simulator setup and runtime execution timing",
		Header: []string{"Benchmark", "Trace-Gen (s)", "Trace-Sim (s)",
			"Compile (s)", "SALAM-Sim (s)", "Preprocess Speedup", "Sim Speedup"},
	}
	var prodPre, prodSim float64
	count := 0
	for _, k := range kernels.All(preset) {
		mem := ir.NewFlatMem(0, 1<<24)
		inst := k.Setup(mem, 1)

		// Baseline preprocessing: instrumented run + gzip trace on "disk".
		t0 := time.Now()
		tr, err := trace.Generate(k.F, inst.Args, mem, profile)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			return nil, err
		}
		traceGen := time.Since(t0).Seconds()

		// Baseline simulation: load trace, rebuild graph, schedule it.
		t0 = time.Now()
		tr2, err := trace.Read(&buf)
		if err != nil {
			return nil, err
		}
		mm := trace.FixedLatency{Cycles: 2, Label: "spm"}
		dp := trace.BuildDatapath(tr2, mm)
		trace.Simulate(tr2, dp, mm, 2, 2)
		traceSim := time.Since(t0).Seconds()

		// SALAM preprocessing: just (re)build + elaborate the kernel.
		t0 = time.Now()
		k2 := kernels.ByName(preset, k.Name)
		if _, err := core.Elaborate(k2.F, profile, nil); err != nil {
			return nil, err
		}
		compile := time.Since(t0).Seconds()

		// SALAM simulation: the execute-in-execute engine.
		t0 = time.Now()
		if _, err := salam.RunKernel(k, salam.DefaultRunOpts()); err != nil {
			return nil, err
		}
		salamSim := time.Since(t0).Seconds()

		preSpeed := safeDiv(traceGen, compile)
		simSpeed := safeDiv(traceSim, salamSim)
		prodPre += preSpeed
		prodSim += simSpeed
		count++
		t.AddRow(k.Name, f6(traceGen), f6(traceSim), f6(compile), f6(salamSim),
			f1(preSpeed)+"x", f1(simSpeed)+"x")
	}
	t.AddRow("Average", "-", "-", "-", "-",
		f1(prodPre/float64(count))+"x", f1(prodSim/float64(count))+"x")
	t.Note("Wall-clock on this host. The paper reports average speedups of 123x " +
		"(preprocess) and 697x (simulation); the expected shape is large speedups in SALAM's favor.")
	return t, nil
}

func f6(v float64) string { return fmt.Sprintf("%.3g", v) }

func safeDiv(a, b float64) float64 {
	if b <= 0 {
		b = 1e-9
	}
	return a / b
}
