package experiments

import (
	"context"
	"fmt"
	"strings"

	salam "gosalam"
	"gosalam/internal/campaign"
	"gosalam/internal/hw"
	"gosalam/kernels"
)

// campaignWorkers sizes the DSE worker pool (0 = GOMAXPROCS); see
// SetWorkers.
var campaignWorkers int

// SetWorkers sets the parallelism for the DSE sweeps (Figs. 13-15).
// n <= 0 restores the default (GOMAXPROCS). Table output is byte-identical
// at any setting; the campaign engine returns results in submission order.
func SetWorkers(n int) { campaignWorkers = n }

// runCampaign drains jobs through the campaign engine, failing the whole
// experiment on the first failed point (in submission order) — the same
// semantics the serial loops had, minus the pile of already-simulated
// siblings being thrown away.
func runCampaign(jobs []campaign.Job) ([]campaign.Outcome, error) {
	out := campaign.Run(context.Background(), campaign.Config{Workers: campaignWorkers}, jobs)
	if err := campaign.FirstError(out); err != nil {
		return nil, err
	}
	return out, nil
}

// gemmFor returns the DSE GEMM: inner loop fully unrolled into an adder
// tree, so the datapath is 2n loads wide (the paper's 64-wide datapath at
// n=32) and ports/FP units — not a serial accumulation chain — bound it.
func gemmFor(s Scale) (*kernels.Kernel, int) {
	n := 8
	if s == ScaleFull {
		n = 32
	}
	return kernels.GEMMTree(n), n
}

// gemmOpts builds the run options for one DSE GEMM point.
func gemmOpts(ports, fuAdd, fuMul int, memKind salam.MemKind) salam.RunOpts {
	opts := salam.DefaultRunOpts()
	opts.Mem = memKind
	opts.Accel.ReadPorts = ports
	opts.Accel.WritePorts = ports
	opts.Accel.MaxOutstanding = 2 * ports
	opts.Accel.ResQueueSize = 1024
	opts.SPMPortsPer = ports // memory bandwidth follows the port sweep
	opts.SPMBanks = 4
	if fuAdd > 0 || fuMul > 0 {
		opts.Accel.FULimits = map[hw.FUClass]int{}
		if fuAdd > 0 {
			opts.Accel.FULimits[hw.FUFPAdder] = fuAdd
		}
		if fuMul > 0 {
			opts.Accel.FULimits[hw.FUFPMultiplier] = fuMul
		}
	}
	return opts
}

// gemmJob is one DSE GEMM campaign job.
func gemmJob(k *kernels.Kernel, n, ports, fuAdd, fuMul int, memKind salam.MemKind,
	probe func(*salam.Result) map[string]float64, probeKey string) campaign.Job {
	mem := "spm"
	if memKind == salam.MemCache {
		mem = "cache"
	}
	return campaign.Job{
		ID:        fmt.Sprintf("gemm%d %s fu=%d/%d p=%d", n, mem, fuAdd, fuMul, ports),
		Kernel:    k,
		KernelKey: fmt.Sprintf("gemm_tree/n=%d", n),
		Opts:      gemmOpts(ports, fuAdd, fuMul, memKind),
		Probe:     probe,
		ProbeKey:  probeKey,
	}
}

// Fig13 reproduces Fig. 13: the GEMM power/performance Pareto sweep over
// functional-unit allocations and memory bandwidth, in three series:
// datapath-only, datapath+SPM, datapath+cache. Each (FU, ports) point is
// two independent simulations (SPM and cache), all submitted to the
// campaign engine and rendered in submission order.
func Fig13(s Scale) (*Table, error) {
	k, n := gemmFor(s)
	fus := []int{2, 4, 8, 16}
	ports := []int{2, 4, 8}
	if s == ScaleFull {
		fus = []int{4, 8, 16, 32, 64}
		ports = []int{4, 8, 16, 32, 64}
	}
	t := &Table{
		ID:     "fig13",
		Title:  fmt.Sprintf("GEMM (%d³, inner fully unrolled) design-space Pareto sweep", n),
		Header: []string{"Series", "FP units", "R/W ports", "Exec time (µs)", "Power (mW)"},
	}
	cacheProbe := func(res *salam.Result) map[string]float64 {
		return map[string]float64{"cache_power_mw": cachePowerMW(res)}
	}
	var jobs []campaign.Job
	for _, fu := range fus {
		for _, p := range ports {
			jobs = append(jobs,
				gemmJob(k, n, p, fu, fu, salam.MemSPM, nil, ""),
				gemmJob(k, n, p, fu, fu, salam.MemCache, cacheProbe, "fig13/v2"))
		}
	}
	out, err := runCampaign(jobs)
	if err != nil {
		return nil, err
	}
	i := 0
	for _, fu := range fus {
		for _, p := range ports {
			m, cm := out[i].Metrics, out[i+1].Metrics
			i += 2
			us := float64(m.Ticks) / 1e6
			t.AddRow("datapath", itoa(fu), itoa(p), f2(us), f2(m.Power.DatapathMW()))
			t.AddRow("datapath+spm", itoa(fu), itoa(p), f2(us), f2(m.Power.TotalMW()))

			cus := float64(cm.Ticks) / 1e6
			cachePower := cm.Power.DatapathMW() + cm.Extra["cache_power_mw"]
			t.AddRow("datapath+cache", itoa(fu), itoa(p), f2(cus), f2(cachePower))
		}
	}
	t.Note("Paper Fig. 13: duplicate execution times at higher power reveal " +
		"over-allocated functional units; memory bandwidth limits where extra FUs stop helping.")
	return t, nil
}

// cachePowerMW reports cache power through the shared energy accounting
// (salam.MeasuredEnergy): accepted reads and writes each charged at their
// own CACTI energy, plus leakage. The old inline estimate charged every
// access — including MSHR-full retries of the same request — at read
// energy, undercounting writes (1.15x a read) and double-counting stalls.
func cachePowerMW(res *salam.Result) float64 {
	if res.Cache == nil {
		return 0
	}
	return salam.MeasuredEnergy(res).MemPowerMW()
}

// fig14Probe captures the stall-analysis metrics while the result is live.
func fig14Probe(res *salam.Result) map[string]float64 {
	a := res.Acc
	// Blocking-resource mix: loads alone, loads+stores together, rest.
	loadsOnly, loadsStores, other := 0.0, 0.0, 0.0
	for _, key := range a.HazardKinds.Keys() {
		v := a.HazardKinds.Get(key)
		switch {
		case key == "load_ports":
			loadsOnly += v
		case strings.Contains(key, "load_ports") && strings.Contains(key, "store_ports"):
			loadsStores += v
		default:
			other += v
		}
	}
	return map[string]float64{
		"active":       a.ActiveCycles.Value(),
		"hazard":       a.HazardCycles.Value(),
		"exec":         a.NewExecCycles.Value(),
		"loads_only":   loadsOnly,
		"loads_stores": loadsStores,
		"other":        other,
	}
}

// Fig14 reproduces Fig. 14: GEMM stall analysis over the read/write-port
// sweep — (a) stalled vs new-execution cycles, (b) the stall-source
// breakdown.
func Fig14(s Scale) (*Table, error) {
	k, n := gemmFor(s)
	ports := []int{16, 8, 4}
	if s == ScaleFull {
		ports = []int{64, 32, 16, 8, 4}
	}
	t := &Table{
		ID:    "fig14",
		Title: fmt.Sprintf("GEMM (%d³) stalls vs read/write ports", n),
		Header: []string{"R/W ports", "Cycles", "% cycles stalled (ready op blocked)",
			"% new execution", "blocked on: loads", "blocked on: loads+stores", "blocked on: other"},
	}
	var jobs []campaign.Job
	for _, p := range ports {
		jobs = append(jobs, gemmJob(k, n, p, 0, 0, salam.MemSPM, fig14Probe, "fig14/v1"))
	}
	out, err := runCampaign(jobs)
	if err != nil {
		return nil, err
	}
	for i, p := range ports {
		m := out[i].Metrics
		x := m.Extra
		active, hz := x["active"], x["hazard"]
		t.AddRow(itoa(p), u64(m.Cycles),
			pct(hz/active), pct(x["exec"]/active),
			pct(safeFrac(x["loads_only"], hz)), pct(safeFrac(x["loads_stores"], hz)),
			pct(safeFrac(x["other"], hz)))
	}
	t.Note("Paper Fig. 14: execution time halves with each port doubling and saturates "+
		"at the datapath width (%d here); blocked cycles shrink with bandwidth and are "+
		"attributed almost entirely to loads feeding the FP tree.", 2*n)
	return t, nil
}

func safeFrac(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// fig15Probe captures the co-design metrics while the result is live.
func fig15Probe(res *salam.Result) map[string]float64 {
	a := res.Acc
	loads := a.IssuedByClass.Get("load")
	stores := a.IssuedByClass.Get("store")
	fp := a.IssuedByClass.Get(hw.FUFPAdder.String()) +
		a.IssuedByClass.Get(hw.FUFPMultiplier.String())
	return map[string]float64{
		"active":     a.ActiveCycles.Value(),
		"stall":      a.StallCycles.Value(),
		"exec":       a.NewExecCycles.Value(),
		"overlap":    a.ActivityFraction(func(l, st, fp bool) bool { return l && st }),
		"load_only":  a.ActivityFraction(func(l, st, fp bool) bool { return l && !st }),
		"store_only": a.ActivityFraction(func(l, st, fp bool) bool { return !l && st }),
		"fpmul_occ":  a.FUOccupancy(hw.FUFPMultiplier),
		"loads":      loads,
		"stores":     stores,
		"fp":         fp,
	}
}

// Fig15 reproduces Fig. 15: with FP adders held fixed, the co-design view
// per port configuration — memory parallelism, FP-multiplier occupancy,
// scheduling mix, performance and power.
func Fig15(s Scale) (*Table, error) {
	k, n := gemmFor(s)
	fuAdd := 16
	ports := []int{16, 8, 4}
	if s == ScaleFull {
		fuAdd = 64
		ports = []int{64, 32, 16, 8, 4}
	}
	t := &Table{
		ID:    "fig15",
		Title: fmt.Sprintf("GEMM (%d³) co-design exploration, FP adders fixed at %d", n, fuAdd),
		Header: []string{"R/W ports", "% stalled", "% new exec",
			"% load+store overlap", "% load only", "% store only",
			"FP-mul occupancy", "% loads sched", "% stores sched", "% FP sched",
			"Cycles", "Datapath power (mW)"},
	}
	var jobs []campaign.Job
	for _, p := range ports {
		jobs = append(jobs, gemmJob(k, n, p, fuAdd, 0, salam.MemSPM, fig15Probe, "fig15/v1"))
	}
	out, err := runCampaign(jobs)
	if err != nil {
		return nil, err
	}
	for i, p := range ports {
		m := out[i].Metrics
		x := m.Extra
		active := x["active"]
		loads, stores, fp := x["loads"], x["stores"], x["fp"]
		mix := loads + stores + fp
		t.AddRow(itoa(p),
			pct(x["stall"]/active), pct(x["exec"]/active),
			pct(x["overlap"]), pct(x["load_only"]), pct(x["store_only"]),
			pct(x["fpmul_occ"]),
			pct(safeFrac(loads, mix)), pct(safeFrac(stores, mix)), pct(safeFrac(fp, mix)),
			u64(m.Cycles), f2(m.Power.DatapathMW()))
	}
	t.Note("Paper Fig. 15: best performance lands where the scheduled op mix approaches " +
		"GEMM's intrinsic FP-to-memory ratio; FP-multiplier occupancy rises as load/store " +
		"overlap falls.")
	return t, nil
}
