package experiments

import (
	"fmt"
	"strings"

	salam "gosalam"
	"gosalam/internal/hw"
	"gosalam/kernels"
)

// gemmFor returns the DSE GEMM: inner loop fully unrolled into an adder
// tree, so the datapath is 2n loads wide (the paper's 64-wide datapath at
// n=32) and ports/FP units — not a serial accumulation chain — bound it.
func gemmFor(s Scale) (*kernels.Kernel, int) {
	n := 8
	if s == ScaleFull {
		n = 32
	}
	return kernels.GEMMTree(n), n
}

// runGEMM runs the DSE GEMM with the given knobs.
func runGEMM(k *kernels.Kernel, ports, fuAdd, fuMul int, memKind salam.MemKind) (*salam.Result, error) {
	opts := salam.DefaultRunOpts()
	opts.Mem = memKind
	opts.Accel.ReadPorts = ports
	opts.Accel.WritePorts = ports
	opts.Accel.MaxOutstanding = 2 * ports
	opts.Accel.ResQueueSize = 1024
	opts.SPMPortsPer = ports // memory bandwidth follows the port sweep
	opts.SPMBanks = 4
	if fuAdd > 0 || fuMul > 0 {
		opts.Accel.FULimits = map[hw.FUClass]int{}
		if fuAdd > 0 {
			opts.Accel.FULimits[hw.FUFPAdder] = fuAdd
		}
		if fuMul > 0 {
			opts.Accel.FULimits[hw.FUFPMultiplier] = fuMul
		}
	}
	return salam.RunKernel(k, opts)
}

// Fig13 reproduces Fig. 13: the GEMM power/performance Pareto sweep over
// functional-unit allocations and memory bandwidth, in three series:
// datapath-only, datapath+SPM, datapath+cache.
func Fig13(s Scale) (*Table, error) {
	k, n := gemmFor(s)
	fus := []int{2, 4, 8, 16}
	ports := []int{2, 4, 8}
	if s == ScaleFull {
		fus = []int{4, 8, 16, 32, 64}
		ports = []int{4, 8, 16, 32, 64}
	}
	t := &Table{
		ID:     "fig13",
		Title:  fmt.Sprintf("GEMM (%d³, inner fully unrolled) design-space Pareto sweep", n),
		Header: []string{"Series", "FP units", "R/W ports", "Exec time (µs)", "Power (mW)"},
	}
	for _, fu := range fus {
		for _, p := range ports {
			res, err := runGEMM(k, p, fu, fu, salam.MemSPM)
			if err != nil {
				return nil, err
			}
			us := float64(res.Ticks) / 1e6
			t.AddRow("datapath", itoa(fu), itoa(p), f2(us), f2(res.Power.DatapathMW()))
			t.AddRow("datapath+spm", itoa(fu), itoa(p), f2(us), f2(res.Power.TotalMW()))

			cres, err := runGEMM(k, p, fu, fu, salam.MemCache)
			if err != nil {
				return nil, err
			}
			cus := float64(cres.Ticks) / 1e6
			cachePower := cres.Power.DatapathMW() + cachePowerMW(cres)
			t.AddRow("datapath+cache", itoa(fu), itoa(p), f2(cus), f2(cachePower))
		}
	}
	t.Note("Paper Fig. 13: duplicate execution times at higher power reveal " +
		"over-allocated functional units; memory bandwidth limits where extra FUs stop helping.")
	return t, nil
}

// cachePowerMW estimates cache power from the CACTI model and access
// counts over the run.
func cachePowerMW(res *salam.Result) float64 {
	if res.Cache == nil {
		return 0
	}
	c := res.Cache.Cacti()
	ns := float64(res.Ticks) / 1000.0
	if ns <= 0 {
		return 0
	}
	dyn := res.Cache.Accesses.Value() * c.ReadEnergyPJ() / ns
	return dyn + c.LeakageMW()
}

// Fig14 reproduces Fig. 14: GEMM stall analysis over the read/write-port
// sweep — (a) stalled vs new-execution cycles, (b) the stall-source
// breakdown.
func Fig14(s Scale) (*Table, error) {
	k, n := gemmFor(s)
	ports := []int{16, 8, 4}
	if s == ScaleFull {
		ports = []int{64, 32, 16, 8, 4}
	}
	t := &Table{
		ID:    "fig14",
		Title: fmt.Sprintf("GEMM (%d³) stalls vs read/write ports", n),
		Header: []string{"R/W ports", "Cycles", "% cycles stalled (ready op blocked)",
			"% new execution", "blocked on: loads", "blocked on: loads+stores", "blocked on: other"},
	}
	for _, p := range ports {
		res, err := runGEMM(k, p, 0, 0, salam.MemSPM)
		if err != nil {
			return nil, err
		}
		a := res.Acc
		active := a.ActiveCycles.Value()
		hz := a.HazardCycles.Value()
		execC := a.NewExecCycles.Value()
		// Blocking-resource mix: loads alone, loads+stores together, rest.
		loadsOnly, loadsStores, other := 0.0, 0.0, 0.0
		for _, key := range a.HazardKinds.Keys() {
			v := a.HazardKinds.Get(key)
			switch {
			case key == "load_ports":
				loadsOnly += v
			case strings.Contains(key, "load_ports") && strings.Contains(key, "store_ports"):
				loadsStores += v
			default:
				other += v
			}
		}
		t.AddRow(itoa(p), u64(res.Cycles),
			pct(hz/active), pct(execC/active),
			pct(safeFrac(loadsOnly, hz)), pct(safeFrac(loadsStores, hz)), pct(safeFrac(other, hz)))
	}
	t.Note("Paper Fig. 14: execution time halves with each port doubling and saturates "+
		"at the datapath width (%d here); blocked cycles shrink with bandwidth and are "+
		"attributed almost entirely to loads feeding the FP tree.", 2*n)
	return t, nil
}

func safeFrac(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Fig15 reproduces Fig. 15: with FP adders held fixed, the co-design view
// per port configuration — memory parallelism, FP-multiplier occupancy,
// scheduling mix, performance and power.
func Fig15(s Scale) (*Table, error) {
	k, n := gemmFor(s)
	fuAdd := 16
	ports := []int{16, 8, 4}
	if s == ScaleFull {
		fuAdd = 64
		ports = []int{64, 32, 16, 8, 4}
	}
	t := &Table{
		ID:    "fig15",
		Title: fmt.Sprintf("GEMM (%d³) co-design exploration, FP adders fixed at %d", n, fuAdd),
		Header: []string{"R/W ports", "% stalled", "% new exec",
			"% load+store overlap", "% load only", "% store only",
			"FP-mul occupancy", "% loads sched", "% stores sched", "% FP sched",
			"Cycles", "Datapath power (mW)"},
	}
	for _, p := range ports {
		res, err := runGEMM(k, p, fuAdd, 0, salam.MemSPM)
		if err != nil {
			return nil, err
		}
		a := res.Acc
		active := a.ActiveCycles.Value()
		overlap := a.ActivityFraction(func(l, st, fp bool) bool { return l && st })
		loadOnly := a.ActivityFraction(func(l, st, fp bool) bool { return l && !st })
		storeOnly := a.ActivityFraction(func(l, st, fp bool) bool { return !l && st })
		occ := a.FUOccupancy(hw.FUFPMultiplier)

		loads := a.IssuedByClass.Get("load")
		stores := a.IssuedByClass.Get("store")
		fp := a.IssuedByClass.Get(hw.FUFPAdder.String()) +
			a.IssuedByClass.Get(hw.FUFPMultiplier.String())
		mix := loads + stores + fp
		t.AddRow(itoa(p),
			pct(a.StallCycles.Value()/active), pct(a.NewExecCycles.Value()/active),
			pct(overlap), pct(loadOnly), pct(storeOnly),
			pct(occ),
			pct(safeFrac(loads, mix)), pct(safeFrac(stores, mix)), pct(safeFrac(fp, mix)),
			u64(res.Cycles), f2(res.Power.DatapathMW()))
	}
	t.Note("Paper Fig. 15: best performance lands where the scheduled op mix approaches " +
		"GEMM's intrinsic FP-to-memory ratio; FP-multiplier occupancy rises as load/store " +
		"overlap falls.")
	return t, nil
}
