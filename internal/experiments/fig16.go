package experiments

import (
	"fmt"

	salam "gosalam"
	"gosalam/internal/cpu"
	"gosalam/internal/sim"
	"gosalam/ir"
	"gosalam/kernels"
)

// cnnDims returns the CNN-layer geometry: h×w input image, conv output
// (h-2)×(w-2), pooled output half that.
func cnnDims(s Scale) (int, int) {
	if s == ScaleFull {
		return 34, 34
	}
	return 18, 18
}

// cnnAccelOpts configures the CNN-stage accelerators with the wide memory
// interfaces the paper's FPGA implementations have (burst AXI masters),
// so stage times are balanced and integration effects dominate.
func cnnAccelOpts(spmBytes uint64) salam.AccelOpts {
	cfg := salam.AccelConfig{
		ClockMHz:       100,
		ReadPorts:      8,
		WritePorts:     4,
		MaxOutstanding: 32,
		ResQueueSize:   256,
		PipelineLoops:  true,
	}
	return salam.AccelOpts{Cfg: cfg, SPMBytes: spmBytes, SPMPorts: 8, SPMBanks: 8}
}

// cnnWorkload bundles the shared input and the end-to-end golden.
type cnnWorkload struct {
	h, w    int
	img     []float64
	weights []float64
	want    []float64 // pooled output
}

func newCNNWorkload(s Scale) *cnnWorkload {
	h, w := cnnDims(s)
	wl := &cnnWorkload{h: h, w: w}
	wl.img = make([]float64, h*w)
	for i := range wl.img {
		wl.img[i] = float64((i*37)%17)/8.0 - 1
	}
	wl.weights = []float64{1, 0, -1, 2, 0, -2, 1, 0, -1}
	conv := kernels.ConvGolden(wl.img, wl.weights, h, w)
	rel := kernels.ReLUGolden(conv)
	wl.want = kernels.MaxPoolGolden(rel, h-2, w-2)
	return wl
}

func (wl *cnnWorkload) stage(space *ir.FlatMem, base uint64) (imgA, wA uint64) {
	space.SetAllocBase(base)
	imgA = space.AllocFor(ir.F64, wl.h*wl.w)
	wA = space.AllocFor(ir.F64, 9)
	for i, v := range wl.img {
		space.WriteF64(imgA+uint64(i*8), v)
	}
	for i, v := range wl.weights {
		space.WriteF64(wA+uint64(i*8), v)
	}
	return imgA, wA
}

func (wl *cnnWorkload) check(space *ir.FlatMem, outA uint64) error {
	for i, w := range wl.want {
		got := space.ReadF64(outA + uint64(i*8))
		d := got - w
		if d < 0 {
			d = -d
		}
		if d > 1e-9 {
			return fmt.Errorf("pool[%d] = %g, want %g", i, got, w)
		}
	}
	return nil
}

// Fig16 reproduces Fig. 16: the first CNN layer (conv2d → ReLU → max-pool)
// in three integration styles — private SPMs with DMA data movement and
// host synchronization (baseline), a shared scratchpad with host
// synchronization, and direct stream-buffer communication with
// self-synchronizing accelerators.
func Fig16(s Scale) (*Table, error) {
	wl := newCNNWorkload(s)
	t := &Table{
		ID:     "fig16",
		Title:  fmt.Sprintf("CNN layer (%dx%d image) producer-consumer scenarios", wl.h, wl.w),
		Header: []string{"Scenario", "End-to-end time (µs)", "Speedup vs private-SPM"},
	}
	base, err := scenarioPrivate(wl)
	if err != nil {
		return nil, fmt.Errorf("private: %w", err)
	}
	shared, err := scenarioShared(wl)
	if err != nil {
		return nil, fmt.Errorf("shared: %w", err)
	}
	stream, err := scenarioStream(wl)
	if err != nil {
		return nil, fmt.Errorf("stream: %w", err)
	}
	us := func(d sim.Tick) float64 { return float64(d) / 1e6 }
	t.AddRow("(a) private SPM + DMA", f2(us(base)), "1.00x")
	t.AddRow("(b) shared SPM + host sync", f2(us(shared)), f2(float64(base)/float64(shared))+"x")
	t.AddRow("(c) stream buffers (direct)", f2(us(stream)), f2(float64(base)/float64(stream))+"x")
	t.Note("Paper Fig. 16 / Sec. IV-E: removing inter-accelerator copies gains ~25%%, and " +
		"stream-based pipelining with self-synchronization reaches ~2.08x over the baseline.")
	return t, nil
}

// scenarioPrivate: each accelerator has a private SPM; the host moves data
// between them by DMA and synchronizes every stage.
func scenarioPrivate(wl *cnnWorkload) (sim.Tick, error) {
	soc := salam.NewSoC(16)
	h, w := wl.h, wl.w
	ch, cw := h-2, w-2
	convK := kernels.Conv2D(h, w)
	reluK := kernels.ReLU(ch * cw)
	poolK := kernels.MaxPool(ch, cw)

	spmSize := uint64(nextPow2(h*w*8*3 + 4096))
	conv, err := soc.AddAccel("conv", convK.F, cnnAccelOpts(spmSize))
	if err != nil {
		return 0, err
	}
	relu, err := soc.AddAccel("relu", reluK.F, cnnAccelOpts(spmSize))
	if err != nil {
		return 0, err
	}
	pool, err := soc.AddAccel("pool", poolK.F, cnnAccelOpts(spmSize))
	if err != nil {
		return 0, err
	}
	dma, dmaIRQ := soc.AddBlockDMA("dma")

	imgA, wA := wl.stage(soc.Space, 1<<20)
	imgBytes := uint64(h * w * 8)
	convBytes := uint64(ch * cw * 8)
	poolBytes := uint64((ch / 2) * (cw / 2) * 8)

	// SPM layouts.
	cb := conv.SPM.Range().Base
	cImg, cW, cOut := cb, cb+imgBytes, cb+imgBytes+128
	rb := relu.SPM.Range().Base
	rIn, rOut := rb, rb+convBytes
	pb := pool.SPM.Range().Base
	pIn, pOut := pb, pb+convBytes
	dramOut := uint64(8 << 20)

	dmaBase := dma.MMR.Range().Base
	var tEnd sim.Tick
	prog := []cpu.Op{}
	xfer := func(src, dst, n uint64) {
		prog = append(prog, cpu.StartDMA(dmaBase, src, dst, n, 256, true)...)
		prog = append(prog, cpu.WaitIRQ{Line: dmaIRQ})
	}
	run := func(node *salam.AccelNode, args []uint64) {
		prog = append(prog, cpu.StartAccel(node.MMRBase, args, true)...)
		prog = append(prog, cpu.WaitIRQ{Line: node.IRQLine})
	}
	xfer(imgA, cImg, imgBytes)
	xfer(wA, cW, 72)
	run(conv, []uint64{cImg, cW, cOut})
	xfer(cOut, rIn, convBytes)
	run(relu, []uint64{rIn, rOut})
	xfer(rOut, pIn, convBytes)
	run(pool, []uint64{pIn, pOut})
	xfer(pOut, dramOut, poolBytes)
	prog = append(prog, salam.Stamp(soc, &tEnd))

	if _, err := soc.RunHost(prog); err != nil {
		return 0, err
	}
	soc.Run()
	if err := wl.check(soc.Space, dramOut); err != nil {
		return 0, err
	}
	return tEnd, nil
}

// scenarioShared: one shared scratchpad; data passes in place but the
// host still sequences the accelerators (PARADE-style central control).
func scenarioShared(wl *cnnWorkload) (sim.Tick, error) {
	soc := salam.NewSoC(16)
	h, w := wl.h, wl.w
	ch, cw := h-2, w-2
	convK := kernels.Conv2D(h, w)
	reluK := kernels.ReLU(ch * cw)
	poolK := kernels.MaxPool(ch, cw)

	shared := soc.AddSPM("shared", uint64(nextPow2(h*w*8*4+4096)), 2, 8, 8)
	sharedOpts := func() salam.AccelOpts {
		o := cnnAccelOpts(0)
		o.SharedSPM = shared
		return o
	}
	conv, err := soc.AddAccel("conv", convK.F, sharedOpts())
	if err != nil {
		return 0, err
	}
	relu, err := soc.AddAccel("relu", reluK.F, sharedOpts())
	if err != nil {
		return 0, err
	}
	pool, err := soc.AddAccel("pool", poolK.F, sharedOpts())
	if err != nil {
		return 0, err
	}
	dma, dmaIRQ := soc.AddBlockDMA("dma")

	imgA, wA := wl.stage(soc.Space, 1<<20)
	imgBytes := uint64(h * w * 8)
	convBytes := uint64(ch * cw * 8)
	poolBytes := uint64((ch / 2) * (cw / 2) * 8)

	sb := shared.Range().Base
	sImg, sW := sb, sb+imgBytes
	sConv := sW + 128
	sRelu := sConv + convBytes
	sPool := sRelu + convBytes
	dramOut := uint64(8 << 20)

	dmaBase := dma.MMR.Range().Base
	var tEnd sim.Tick
	prog := []cpu.Op{}
	prog = append(prog, cpu.StartDMA(dmaBase, imgA, sImg, imgBytes, 256, true)...)
	prog = append(prog, cpu.WaitIRQ{Line: dmaIRQ})
	prog = append(prog, cpu.StartDMA(dmaBase, wA, sW, 72, 256, true)...)
	prog = append(prog, cpu.WaitIRQ{Line: dmaIRQ})
	prog = append(prog, cpu.StartAccel(conv.MMRBase, []uint64{sImg, sW, sConv}, true)...)
	prog = append(prog, cpu.WaitIRQ{Line: conv.IRQLine})
	prog = append(prog, cpu.StartAccel(relu.MMRBase, []uint64{sConv, sRelu}, true)...)
	prog = append(prog, cpu.WaitIRQ{Line: relu.IRQLine})
	prog = append(prog, cpu.StartAccel(pool.MMRBase, []uint64{sRelu, sPool}, true)...)
	prog = append(prog, cpu.WaitIRQ{Line: pool.IRQLine})
	prog = append(prog, cpu.StartDMA(dmaBase, sPool, dramOut, poolBytes, 256, true)...)
	prog = append(prog, cpu.WaitIRQ{Line: dmaIRQ})
	prog = append(prog, salam.Stamp(soc, &tEnd))

	if _, err := soc.RunHost(prog); err != nil {
		return 0, err
	}
	soc.Run()
	if err := wl.check(soc.Space, dramOut); err != nil {
		return 0, err
	}
	return tEnd, nil
}

// scenarioStream: conv → relu → pool connected by stream buffers; the
// stages self-synchronize through the FIFO handshake and the host only
// starts them and waits for the last IRQ.
func scenarioStream(wl *cnnWorkload) (sim.Tick, error) {
	soc := salam.NewSoC(16)
	h, w := wl.h, wl.w
	ch, cw := h-2, w-2
	convK := kernels.Conv2D(h, w)
	reluK := kernels.ReLU(ch * cw)
	poolK := kernels.MaxPoolStream(ch, cw)

	spmSize := uint64(nextPow2(h*w*8*2 + 4096))
	conv, err := soc.AddAccel("conv", convK.F, cnnAccelOpts(spmSize))
	if err != nil {
		return 0, err
	}
	relu, err := soc.AddAccel("relu", reluK.F, cnnAccelOpts(4096))
	if err != nil {
		return 0, err
	}
	pool, err := soc.AddAccel("pool", poolK.F, cnnAccelOpts(spmSize))
	if err != nil {
		return 0, err
	}
	dma, dmaIRQ := soc.AddBlockDMA("dma")

	convOutWin, reluInWin := soc.StreamLink("s1", conv, relu, 512)
	reluOutWin, poolInWin := soc.StreamLink("s2", relu, pool, 512)

	imgA, wA := wl.stage(soc.Space, 1<<20)
	imgBytes := uint64(h * w * 8)
	poolBytes := uint64((ch / 2) * (cw / 2) * 8)

	cb := conv.SPM.Range().Base
	cImg, cW := cb, cb+imgBytes
	pb := pool.SPM.Range().Base
	pLines, pOut := pb, pb+uint64(2*cw*8)+64
	dramOut := uint64(8 << 20)

	dmaBase := dma.MMR.Range().Base
	var tEnd sim.Tick
	prog := []cpu.Op{}
	prog = append(prog, cpu.StartDMA(dmaBase, imgA, cImg, imgBytes, 256, true)...)
	prog = append(prog, cpu.WaitIRQ{Line: dmaIRQ})
	prog = append(prog, cpu.StartDMA(dmaBase, wA, cW, 72, 256, true)...)
	prog = append(prog, cpu.WaitIRQ{Line: dmaIRQ})
	// Start all three stages; only the last one is awaited — the FIFOs
	// provide the two-way handshake.
	prog = append(prog, cpu.StartAccel(pool.MMRBase, []uint64{poolInWin, pLines, pOut}, true)...)
	prog = append(prog, cpu.StartAccel(relu.MMRBase, []uint64{reluInWin, reluOutWin}, false)...)
	prog = append(prog, cpu.StartAccel(conv.MMRBase, []uint64{cImg, cW, convOutWin}, false)...)
	prog = append(prog, cpu.WaitIRQ{Line: pool.IRQLine})
	prog = append(prog, cpu.StartDMA(dmaBase, pOut, dramOut, poolBytes, 256, true)...)
	prog = append(prog, cpu.WaitIRQ{Line: dmaIRQ})
	prog = append(prog, salam.Stamp(soc, &tEnd))

	if _, err := soc.RunHost(prog); err != nil {
		return 0, err
	}
	soc.Run()
	if err := wl.check(soc.Space, dramOut); err != nil {
		return 0, err
	}
	return tEnd, nil
}
