package experiments

import (
	"strconv"
	"strings"
	"testing"

	salam "gosalam"
	"gosalam/kernels"
)

// Every experiment must run at smoke scale, produce rows, and render.
func TestAllExperimentsSmoke(t *testing.T) {
	for _, r := range AllRunners() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			tab, err := r.Run(ScaleSmoke)
			if err != nil {
				t.Fatal(err)
			}
			if len(tab.Rows) == 0 {
				t.Fatal("no rows")
			}
			md := tab.Markdown()
			if !strings.Contains(md, tab.Header[0]) {
				t.Fatal("markdown missing header")
			}
			if csv := tab.CSV(); !strings.Contains(csv, ",") {
				t.Fatal("csv render broken")
			}
			for _, row := range tab.Rows {
				if len(row) != len(tab.Header) {
					t.Fatalf("row width %d != header width %d: %v", len(row), len(tab.Header), row)
				}
			}
		})
	}
}

func TestRunnerByID(t *testing.T) {
	if _, ok := RunnerByID("fig10"); !ok {
		t.Fatal("fig10 missing")
	}
	if _, ok := RunnerByID("nope"); ok {
		t.Fatal("found nonexistent runner")
	}
}

// Table 1's headline property: baseline shifter count differs across
// datasets while SALAM's rows are identical.
func TestTable1Shape(t *testing.T) {
	tab, err := Table1(ScaleSmoke)
	if err != nil {
		t.Fatal(err)
	}
	// rows: trace ds1, trace ds2, salam ds1, salam ds2
	shifter := func(row []string) string { return row[4] }
	if shifter(tab.Rows[0]) == shifter(tab.Rows[1]) {
		t.Fatalf("baseline shifters identical across datasets: %v", tab.Rows)
	}
	if shifter(tab.Rows[0]) != "0" {
		t.Fatalf("dataset 1 baseline should have no shifter: %v", tab.Rows[0])
	}
	if tab.Rows[2][2] != tab.Rows[3][2] || tab.Rows[2][3] != tab.Rows[3][3] ||
		shifter(tab.Rows[2]) != shifter(tab.Rows[3]) {
		t.Fatalf("SALAM datapath varies with data: %v vs %v", tab.Rows[2], tab.Rows[3])
	}
}

// Table 2's headline property: baseline FU counts vary across memory
// configurations; SALAM emits a single invariant row.
func TestTable2Shape(t *testing.T) {
	tab, err := Table2(ScaleSmoke)
	if err != nil {
		t.Fatal(err)
	}
	baselineCounts := map[string]bool{}
	for _, row := range tab.Rows {
		if row[0] == "trace-based" {
			baselineCounts[row[2]+"/"+row[3]] = true
		}
	}
	if len(baselineCounts) < 2 {
		t.Fatalf("baseline datapath did not vary across memories: %v", baselineCounts)
	}
}

// Fig 14's headline property: stalls decrease (weakly) as ports increase.
func TestFig14Shape(t *testing.T) {
	tab, err := Fig14(ScaleSmoke)
	if err != nil {
		t.Fatal(err)
	}
	// Rows ordered wide -> narrow; stall fraction should not decrease as
	// ports shrink.
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
		if err != nil {
			t.Fatalf("bad pct %q", s)
		}
		return v
	}
	first := parse(tab.Rows[0][2])
	last := parse(tab.Rows[len(tab.Rows)-1][2])
	if !(last >= first) {
		t.Fatalf("stalls with few ports (%g%%) < stalls with many (%g%%)", last, first)
	}
}

// Fig 16's headline property: shared SPM beats private, streams beat both.
func TestFig16Shape(t *testing.T) {
	tab, err := Fig16(ScaleSmoke)
	if err != nil {
		t.Fatal(err)
	}
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("bad time %q", s)
		}
		return v
	}
	private := parse(tab.Rows[0][1])
	shared := parse(tab.Rows[1][1])
	stream := parse(tab.Rows[2][1])
	if !(shared < private) {
		t.Fatalf("shared SPM (%g) not faster than private (%g)", shared, private)
	}
	if !(stream < shared) {
		t.Fatalf("streaming (%g) not faster than shared (%g)", stream, shared)
	}
}

// Fig 10's average error should land in a credible validation band.
func TestFig10ErrorBand(t *testing.T) {
	tab, err := Fig10(ScaleSmoke)
	if err != nil {
		t.Fatal(err)
	}
	avg := tab.Rows[len(tab.Rows)-1][3]
	v, err := strconv.ParseFloat(strings.TrimSuffix(avg, "%"), 64)
	if err != nil {
		t.Fatal(err)
	}
	if v < 0 || v > 40 {
		t.Fatalf("average timing error %g%% outside credible band", v)
	}
}

// TestCachePowerAccounting is the regression test for the Fig. 13 cache
// power series. The old inline estimate charged every cache access —
// including MSHR-full retries of the same request — at read energy;
// cachePowerMW must instead charge only accepted accesses, each at its
// own direction's CACTI energy.
func TestCachePowerAccounting(t *testing.T) {
	k := kernels.GEMM(8, 1)
	opts := salam.DefaultRunOpts()
	opts.Mem = salam.MemCache
	res, err := salam.RunKernel(k, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache == nil {
		t.Fatal("cache-backed run returned no cache")
	}

	reads := res.Cache.Reads.Value()
	writes := res.Cache.Writes.Value()
	accesses := res.Cache.Accesses.Value()
	if writes == 0 {
		t.Fatal("GEMM stores never wrote the cache")
	}
	if reads+writes > accesses {
		t.Fatalf("accepted reads+writes %.0f exceed raw accesses %.0f", reads+writes, accesses)
	}

	// Reconstruct the power from first principles: accepted accesses at
	// per-direction energies over the elapsed time, plus leakage.
	c := res.Cache.Cacti()
	ns := float64(res.Ticks) / 1000.0
	want := (reads*c.ReadEnergyPJ()+writes*c.WriteEnergyPJ())/ns + c.LeakageMW()
	got := cachePowerMW(res)
	if d := got - want; d > 1e-9 || d < -1e-9 {
		t.Fatalf("cachePowerMW %.6f != reconstructed %.6f", got, want)
	}
	if c.WriteEnergyPJ() <= c.ReadEnergyPJ() {
		t.Fatalf("cache write energy %.3f not above read energy %.3f — writes would be undercounted",
			c.WriteEnergyPJ(), c.ReadEnergyPJ())
	}

	// SPM-backed runs contribute no cache power to the Fig. 13 series.
	spm, err := salam.RunKernel(k, salam.DefaultRunOpts())
	if err != nil {
		t.Fatal(err)
	}
	if p := cachePowerMW(spm); p != 0 {
		t.Fatalf("SPM-backed run reported %.6f mW of cache power", p)
	}
}

// TestDSEParallelDeterminism: the campaign-backed DSE sweeps must render
// byte-identical CSV at any worker count — the ordering guarantee the
// campaign engine promises its callers.
func TestDSEParallelDeterminism(t *testing.T) {
	for _, id := range []string{"fig13", "fig14", "fig15"} {
		id := id
		t.Run(id, func(t *testing.T) {
			r, ok := RunnerByID(id)
			if !ok {
				t.Fatalf("unknown experiment %q", id)
			}
			SetWorkers(1)
			serial, err := r.Run(ScaleSmoke)
			if err != nil {
				t.Fatal(err)
			}
			SetWorkers(8)
			defer SetWorkers(0)
			parallel, err := r.Run(ScaleSmoke)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := parallel.CSV(), serial.CSV(); got != want {
				t.Fatalf("parallel CSV differs from serial:\n--- serial\n%s--- parallel\n%s", want, got)
			}
		})
	}
}
