package hls

import (
	"gosalam/internal/core"
	"gosalam/ir"
)

// FPGAModel is the ZCU102 board stand-in for Table III's system
// validation: HLS-scheduled compute at the programmable-logic clock plus a
// DDR bulk-transfer model with the cache-maintenance overheads the paper
// attributes its transfer-time error to.
type FPGAModel struct {
	// PLClockMHz is the programmable-logic clock.
	PLClockMHz float64
	// DDRBandwidthGBs is the effective data-mover bandwidth.
	DDRBandwidthGBs float64
	// XferFixedUS is the per-transfer setup cost (driver + descriptor).
	XferFixedUS float64
	// InvalidateUSPerKB models cache invalidation cost per KB moved —
	// the ZCU102 effect behind the paper's transfer-time discrepancies.
	InvalidateUSPerKB float64
	// FPLatencyDelta models the DSP-IP pipeline depth difference vs the
	// simulator's 3-stage FP units.
	FPLatencyDelta int
}

// DefaultZCU102 returns board parameters in the ZCU102's regime.
func DefaultZCU102() FPGAModel {
	return FPGAModel{
		PLClockMHz:        100,
		DDRBandwidthGBs:   2.1,
		XferFixedUS:       2.5,
		InvalidateUSPerKB: 0.55,
		FPLatencyDelta:    1,
	}
}

// Times is the Table III triple.
type Times struct {
	ComputeUS float64
	XferUS    float64
	TotalUS   float64
}

// Run produces the board-side reference times for a kernel: compute from
// the static schedule at the PL clock, transfer from the DDR model over
// the kernel's input+output footprint.
func (m FPGAModel) Run(g *core.CDFG, cfg Config, args []uint64, mem *ir.FlatMem,
	bytesIn, bytesOut uint64) (Times, error) {
	cfg.FPLatencyDelta = m.FPLatencyDelta
	est, err := EstimateCycles(g, cfg, args, mem)
	if err != nil {
		return Times{}, err
	}
	computeUS := float64(est.Cycles) / m.PLClockMHz

	bytes := float64(bytesIn + bytesOut)
	xferUS := 2*m.XferFixedUS + bytes/(m.DDRBandwidthGBs*1e3) +
		m.InvalidateUSPerKB*bytes/1024
	return Times{ComputeUS: computeUS, XferUS: xferUS, TotalUS: computeUS + xferUS}, nil
}
