package hls

import (
	"testing"

	"gosalam/internal/core"
	"gosalam/internal/hw"
	"gosalam/ir"
	"gosalam/kernels"
)

func estimateFor(t *testing.T, k *kernels.Kernel, cfg Config, seed int64) *Estimate {
	t.Helper()
	mem := ir.NewFlatMem(0, 1<<24)
	inst := k.Setup(mem, seed)
	g, err := core.Elaborate(k.F, hw.Default40nm(), nil)
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimateCycles(g, cfg, inst.Args, mem)
	if err != nil {
		t.Fatal(err)
	}
	return est
}

func TestEstimateBasics(t *testing.T) {
	est := estimateFor(t, kernels.GEMM(8, 1), DefaultConfig(), 1)
	if est.Cycles == 0 {
		t.Fatal("zero cycle estimate")
	}
	if est.Ops == 0 {
		t.Fatal("no ops scheduled")
	}
	// The schedule cannot beat the memory-port bound: 2*8^3 loads over
	// ReadPorts per cycle.
	minCycles := uint64(2 * 8 * 8 * 8 / DefaultConfig().ReadPorts)
	if est.Cycles < minCycles {
		t.Fatalf("estimate %d below port bound %d", est.Cycles, minCycles)
	}
	if len(est.Visits) == 0 {
		t.Fatal("no profile data")
	}
}

func TestEstimateRespectsMemoryCarriedDeps(t *testing.T) {
	// NW's DP fill has true memory-carried dependences (cell (i,j) reads
	// cells written moments earlier); the schedule must be far longer
	// than the pure port bound.
	est := estimateFor(t, kernels.NW(12), DefaultConfig(), 1)
	if est.Cycles < 12*12 {
		t.Fatalf("NW schedule %d ignores memory-carried deps", est.Cycles)
	}
}

func TestEstimateScalesWithWork(t *testing.T) {
	small := estimateFor(t, kernels.GEMM(4, 1), DefaultConfig(), 1)
	big := estimateFor(t, kernels.GEMM(8, 1), DefaultConfig(), 1)
	// 8^3 vs 4^3: about 8x the work.
	ratio := float64(big.Cycles) / float64(small.Cycles)
	if ratio < 4 || ratio > 16 {
		t.Fatalf("cycle ratio %g for 8x work", ratio)
	}
}

// scaleKernel builds an unrolled elementwise kernel with no loop-carried
// FP recurrence, so ports and FU pools (not the reduction chain) bound II.
func scaleKernel() (*ir.Function, func(*ir.FlatMem) []uint64) {
	m := ir.NewModule("scale")
	b := ir.NewBuilder(m)
	f := b.Func("scale8", ir.Void,
		ir.P("a", ir.Ptr(ir.F64)), ir.P("c", ir.Ptr(ir.F64)), ir.P("n", ir.I64))
	a, cp, n := f.Params[0], f.Params[1], f.Params[2]
	b.LoopUnrolled("i", ir.I64c(0), n, 1, 8, func(iv ir.Value) {
		v := b.Load(b.GEP(a, "pa", iv), "v")
		b.Store(b.FMul(v, ir.F64c(2), "d"), b.GEP(cp, "pc", iv))
	})
	b.Ret(nil)
	setup := func(mem *ir.FlatMem) []uint64 {
		aA := mem.AllocFor(ir.F64, 64)
		cA := mem.AllocFor(ir.F64, 64)
		return []uint64{aA, cA, 64}
	}
	return f, setup
}

func TestEstimateRespectsPorts(t *testing.T) {
	f, setup := scaleKernel()
	mem := ir.NewFlatMem(0, 1<<20)
	args := setup(mem)
	g, err := core.Elaborate(f, hw.Default40nm(), nil)
	if err != nil {
		t.Fatal(err)
	}
	wide := DefaultConfig()
	wide.ReadPorts, wide.WritePorts = 8, 8
	narrow := DefaultConfig()
	narrow.ReadPorts, narrow.WritePorts = 1, 1
	w, err := EstimateCycles(g, wide, args, mem)
	if err != nil {
		t.Fatal(err)
	}
	n, err := EstimateCycles(g, narrow, args, mem)
	if err != nil {
		t.Fatal(err)
	}
	if !(w.Cycles < n.Cycles) {
		t.Fatalf("wide (%d) not faster than narrow (%d)", w.Cycles, n.Cycles)
	}
}

func TestRecurrenceBoundsII(t *testing.T) {
	// GEMM's serial FP accumulation dominates II: making ports wider must
	// NOT change the estimate (the recurrence, not bandwidth, binds).
	wide := DefaultConfig()
	wide.ReadPorts, wide.WritePorts = 8, 8
	narrow := DefaultConfig()
	narrow.ReadPorts, narrow.WritePorts = 2, 2
	k := kernels.GEMM(8, 8)
	w := estimateFor(t, k, wide, 1)
	n := estimateFor(t, k, narrow, 1)
	if w.Cycles != n.Cycles {
		t.Fatalf("recurrence-bound loop changed with ports: %d vs %d", w.Cycles, n.Cycles)
	}
}

func TestEstimateRespectsFULimits(t *testing.T) {
	f, setup := scaleKernel()
	mem := ir.NewFlatMem(0, 1<<20)
	args := setup(mem)
	free, err := core.Elaborate(f, hw.Default40nm(), nil)
	if err != nil {
		t.Fatal(err)
	}
	lim, err := core.Elaborate(f, hw.Default40nm(),
		map[hw.FUClass]int{hw.FUFPMultiplier: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.ReadPorts, cfg.WritePorts = 8, 8
	estFree, err := EstimateCycles(free, cfg, args, mem)
	if err != nil {
		t.Fatal(err)
	}
	estLim, err := EstimateCycles(lim, cfg, args, mem)
	if err != nil {
		t.Fatal(err)
	}
	if !(estLim.Cycles > estFree.Cycles) {
		t.Fatalf("limited (%d) not slower than free (%d)", estLim.Cycles, estFree.Cycles)
	}
}

func TestEstimateDoesNotPerturbMemory(t *testing.T) {
	k := kernels.GEMM(4, 1)
	mem := ir.NewFlatMem(0, 1<<24)
	inst := k.Setup(mem, 1)
	before := append([]byte(nil), mem.Data...)
	g, _ := core.Elaborate(k.F, hw.Default40nm(), nil)
	if _, err := EstimateCycles(g, DefaultConfig(), inst.Args, mem); err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if mem.Data[i] != before[i] {
			t.Fatal("profiling run mutated caller memory")
		}
	}
}

func TestFPLatencyDeltaShifts(t *testing.T) {
	base := DefaultConfig()
	bumped := DefaultConfig()
	bumped.FPLatencyDelta = 2
	k := kernels.MDKnn(8, 8) // FP-dominated
	b := estimateFor(t, k, base, 1)
	d := estimateFor(t, k, bumped, 1)
	if !(d.Cycles > b.Cycles) {
		t.Fatalf("FP latency delta had no effect: %d vs %d", b.Cycles, d.Cycles)
	}
}

func TestFPGAModel(t *testing.T) {
	k := kernels.GEMM(8, 1)
	mem := ir.NewFlatMem(0, 1<<24)
	inst := k.Setup(mem, 1)
	g, _ := core.Elaborate(k.F, hw.Default40nm(), nil)
	m := DefaultZCU102()
	times, err := m.Run(g, DefaultConfig(), inst.Args, mem, inst.InBytes, inst.OutBytes)
	if err != nil {
		t.Fatal(err)
	}
	if times.ComputeUS <= 0 || times.XferUS <= 0 {
		t.Fatalf("times: %+v", times)
	}
	if times.TotalUS != times.ComputeUS+times.XferUS {
		t.Fatal("total != compute + xfer")
	}
	// Transfer time grows with footprint.
	times2, _ := m.Run(g, DefaultConfig(), inst.Args, mem, inst.InBytes*10, inst.OutBytes*10)
	if !(times2.XferUS > times.XferUS) {
		t.Fatal("transfer time not monotonic in bytes")
	}
}
