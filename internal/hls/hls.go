// Package hls is the validation reference for gosalam's timing model,
// standing in for Vivado HLS in the paper's validation flow (Fig. 9). It
// produces an idealized *static* schedule of the kernel's full computation:
// with trip counts known, an HLS tool's unrolled/pipelined schedule is an
// ASAP list schedule of the dataflow graph under functional-unit and
// memory-port constraints, with fixed-latency local memory and true
// memory-carried dependences. The dynamic engine discovers the same
// parallelism at runtime but pays control, queueing and handshake costs
// the static schedule does not — the gap between the two models is the
// quantity Fig. 10 reports.
package hls

import (
	"fmt"

	"gosalam/internal/core"
	"gosalam/internal/hw"
	"gosalam/ir"
)

// Config mirrors the schedule-relevant device knobs.
type Config struct {
	ReadPorts  int
	WritePorts int
	// MemLatency is the scheduled latency of a memory access in cycles
	// (SPM-class memory; HLS pipelines assume fixed-latency local BRAM).
	MemLatency int
	// BranchCycles is the pipeline-redirect cost of a *conditional*
	// branch: operations after a data-dependent branch cannot be
	// scheduled before it resolves. Counted-loop pipelining in real HLS
	// hides most of this; irregular control pays it in full.
	BranchCycles int
	// FPLatencyDelta adjusts floating-point op latencies relative to the
	// simulator profile — the FPGA DSP IPs the paper notes do not exactly
	// match SALAM's 3-stage units (Sec. IV-B).
	FPLatencyDelta int
}

// DefaultConfig matches core.DefaultConfig.
func DefaultConfig() Config {
	return Config{ReadPorts: 2, WritePorts: 2, MemLatency: 4, BranchCycles: 2}
}

// Estimate is a static performance estimate.
type Estimate struct {
	// Cycles is the scheduled makespan.
	Cycles uint64
	// Ops is the number of scheduled operations.
	Ops uint64
	// Visits is the profiled execution count per block.
	Visits map[*ir.Block]uint64
}

// EstimateCycles statically schedules the kernel's complete computation
// for the given workload: every dynamic operation is placed at its
// earliest cycle subject to data dependences (register and memory RAW),
// one initiation per mapped functional unit per cycle, class-wide FU pool
// limits, and the configured memory ports. The caller's memory is not
// modified (profiling runs on a scratch copy).
func EstimateCycles(g *core.CDFG, cfg Config, args []uint64, mem *ir.FlatMem) (*Estimate, error) {
	if cfg.ReadPorts <= 0 {
		cfg.ReadPorts = 1
	}
	if cfg.WritePorts <= 0 {
		cfg.WritePorts = 1
	}
	if cfg.MemLatency <= 0 {
		cfg.MemLatency = 1
	}
	scratch := ir.NewFlatMem(mem.Base, len(mem.Data))
	copy(scratch.Data, mem.Data)

	sched := &scheduler{
		g:        g,
		cfg:      cfg,
		lastDef:  map[*ir.Instr]int{},
		lastSt:   map[uint64]int{},
		nextFree: map[*ir.Instr]int{},
		classUse: map[classCycle]int{},
		readUse:  map[int]int{},
		writeUse: map[int]int{},
	}
	_, stats, err := ir.Exec(g.F, args, scratch, &ir.ExecOpts{Trace: sched.place})
	if err != nil {
		return nil, fmt.Errorf("hls: scheduling run: %w", err)
	}
	return &Estimate{
		Cycles: uint64(sched.makespan),
		Ops:    sched.ops,
		Visits: stats.BlockVisits,
	}, nil
}

type opCycle struct {
	in    *ir.Instr
	cycle int
}

type classCycle struct {
	class hw.FUClass
	cycle int
}

// scheduler performs on-the-fly ASAP list scheduling as the interpreter
// streams the dynamic instruction sequence.
type scheduler struct {
	g   *core.CDFG
	cfg Config

	// lastDef maps a static SSA value to the finish cycle of its most
	// recent dynamic instance.
	lastDef map[*ir.Instr]int
	// lastSt maps an 8-byte word to the finish cycle of the last store.
	lastSt map[uint64]int

	// nextFree is the first cycle each mapped unit (static instruction)
	// can initiate again: +1 for pipelined units, +latency for
	// unpipelined ones (dividers, sqrt).
	nextFree map[*ir.Instr]int
	classUse map[classCycle]int // pooled class limits
	readUse  map[int]int
	writeUse map[int]int

	// ctrlFinish is the resolve cycle of the most recent conditional
	// branch; later operations issue at or after it.
	ctrlFinish int

	makespan int
	ops      uint64
}

func (s *scheduler) latency(in *ir.Instr) int {
	op := s.g.Ops[in]
	if op == nil {
		return 0
	}
	if op.IsMem() {
		return s.cfg.MemLatency
	}
	lat := op.Latency
	if op.IsFP() {
		lat += s.cfg.FPLatencyDelta
		if lat < 1 {
			lat = 1
		}
	}
	return lat
}

func (s *scheduler) place(ev ir.TraceEvent) {
	in := ev.I
	op := s.g.Ops[in]
	s.ops++

	// Earliest start: after the last unresolved conditional branch and
	// all register operands...
	start := s.ctrlFinish
	args := in.Args
	if in.Op == ir.OpPhi {
		args = nil // wiring; incoming value's producer already constrains users via lastDef below
	}
	for _, a := range args {
		if ai, ok := a.(*ir.Instr); ok {
			if f, ok := s.lastDef[ai]; ok && f > start {
				start = f
			}
		}
	}
	// ...and memory RAW dependences.
	isLoad := in.Op == ir.OpLoad
	isStore := in.Op == ir.OpStore
	if isLoad || isStore {
		w := ev.Addr &^ 7
		if f, ok := s.lastSt[w]; ok && f > start {
			start = f
		}
	}

	// Structural hazards.
	class := hw.FUNone
	pooled := false
	if op != nil {
		class = op.Class
	}
	if class != hw.FUNone && class != hw.FUControl && class != hw.FUMux && !isLoad && !isStore {
		pooled = s.g.FULimit[class] > 0
	}
	for {
		switch {
		case isLoad:
			if s.readUse[start] < s.cfg.ReadPorts {
				s.readUse[start]++
				goto placed
			}
		case isStore:
			if s.writeUse[start] < s.cfg.WritePorts {
				s.writeUse[start]++
				goto placed
			}
		case class == hw.FUNone || class == hw.FUControl || class == hw.FUMux:
			goto placed // free wiring / control
		default:
			// The mapped unit must be free; pooled classes also respect
			// the pool width.
			if start < s.nextFree[in] {
				start = s.nextFree[in]
				continue
			}
			if !pooled || s.classUse[classCycle{class, start}] < s.g.FUTotal[class] {
				if s.g.Profile.Spec(class).Pipelined {
					s.nextFree[in] = start + 1
				} else {
					s.nextFree[in] = start + s.latency(in)
				}
				if pooled {
					s.classUse[classCycle{class, start}]++
				}
				goto placed
			}
		}
		start++
	}
placed:
	finish := start + s.latency(in)
	if in.Op == ir.OpBr && len(in.Args) == 1 {
		// Conditional branch: redirect cost gates younger operations.
		resolve := start + s.cfg.BranchCycles
		if resolve > s.ctrlFinish {
			s.ctrlFinish = resolve
		}
		if resolve > finish {
			finish = resolve
		}
	}
	if in.HasResult() {
		s.lastDef[in] = finish
	}
	if isStore {
		s.lastSt[ev.Addr&^7] = finish
	}
	if in.Op == ir.OpPhi {
		// The phi forwards its incoming value's availability.
		for k, blk := range in.Blocks {
			_ = blk
			if ai, ok := in.Args[k].(*ir.Instr); ok {
				if f, ok := s.lastDef[ai]; ok && f > finish {
					finish = f
				}
			}
		}
		s.lastDef[in] = finish
	}
	if finish > s.makespan {
		s.makespan = finish
	}
}
