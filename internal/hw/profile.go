// Package hw models the hardware resources that IR instructions map onto:
// functional-unit classes with latency, area, leakage and per-operation
// energy; a single-bit register model; and a CACTI-like analytic SRAM model
// for scratchpads and caches. It plays the role of gem5-SALAM's "hardware
// profile", whose default values the paper validated against Synopsys
// Design Compiler on an open 40nm standard-cell library.
package hw

import (
	"fmt"

	"gosalam/ir"
)

// FUClass is a functional-unit class.
type FUClass int

// Functional unit classes.
const (
	FUNone FUClass = iota
	FUIntAdder
	FUIntMultiplier
	FUIntDivider
	FUShifter
	FUBitwise
	FUComparator
	FUFPAdder
	FUFPMultiplier
	FUFPDivider
	FUFPSqrt
	FUConversion
	FUMux
	FUControl
	fuClassCount
)

var fuNames = [...]string{
	FUNone:          "none",
	FUIntAdder:      "int_adder",
	FUIntMultiplier: "int_multiplier",
	FUIntDivider:    "int_divider",
	FUShifter:       "shifter",
	FUBitwise:       "bitwise",
	FUComparator:    "comparator",
	FUFPAdder:       "fp_adder",
	FUFPMultiplier:  "fp_multiplier",
	FUFPDivider:     "fp_divider",
	FUFPSqrt:        "fp_sqrt",
	FUConversion:    "conversion",
	FUMux:           "mux",
	FUControl:       "control",
}

// String returns the class name used in stats and configs.
func (c FUClass) String() string {
	if int(c) < len(fuNames) {
		return fuNames[c]
	}
	return fmt.Sprintf("fu(%d)", int(c))
}

// NumFUClasses returns the number of FU classes including FUNone, so
// callers can size dense per-class arrays indexed by FUClass.
func NumFUClasses() int { return int(fuClassCount) }

// AllFUClasses lists every allocatable class (excluding FUNone).
func AllFUClasses() []FUClass {
	out := make([]FUClass, 0, int(fuClassCount)-1)
	for c := FUIntAdder; c < fuClassCount; c++ {
		out = append(out, c)
	}
	return out
}

// FUClassByName resolves a class name (FUNone if unknown).
func FUClassByName(s string) FUClass {
	for c, n := range fuNames {
		if n == s {
			return FUClass(c)
		}
	}
	return FUNone
}

// FUSpec describes one functional-unit class in a profile.
type FUSpec struct {
	Class FUClass
	// Latency in accelerator cycles from issue to commit.
	Latency int
	// Pipelined units accept a new operation every cycle; unpipelined
	// units are busy for their whole latency.
	Pipelined bool
	// AreaUM2 is silicon area in square microns.
	AreaUM2 float64
	// LeakageMW is static power in milliwatts.
	LeakageMW float64
	// EnergyPJ is dynamic (internal + switching) energy per operation in
	// picojoules.
	EnergyPJ float64
}

// RegSpec is the per-bit register model used for datapath register power.
type RegSpec struct {
	AreaUM2       float64 // per bit
	LeakageMW     float64 // per bit
	ReadEnergyPJ  float64 // per bit per read
	WriteEnergyPJ float64 // per bit per write
}

// Profile is a complete hardware profile: the timing/power/area model that
// static elaboration and the runtime engine consult.
type Profile struct {
	Name string
	FUs  map[FUClass]FUSpec
	Reg  RegSpec
	// CycleOverride lets the device config pin per-opcode latencies,
	// overriding the FU class latency (the paper's "device config defines
	// the cycle time each LLVM IR instruction takes").
	CycleOverride map[ir.Opcode]int
}

// Default40nm returns the simulator's default profile. Magnitudes follow
// the Aladdin-style 40nm characterization the paper bases its hardware
// profile on: FP units are an order of magnitude more expensive than
// integer ones, dividers/sqrt are long-latency unpipelined blocks, and
// 3-stage pipelined FP adders/multipliers are the default (Sec. IV-B).
func Default40nm() *Profile {
	fus := map[FUClass]FUSpec{
		FUIntAdder:      {Class: FUIntAdder, Latency: 1, Pipelined: true, AreaUM2: 420, LeakageMW: 0.0012, EnergyPJ: 0.12},
		FUIntMultiplier: {Class: FUIntMultiplier, Latency: 3, Pipelined: true, AreaUM2: 4200, LeakageMW: 0.012, EnergyPJ: 2.2},
		FUIntDivider:    {Class: FUIntDivider, Latency: 12, Pipelined: false, AreaUM2: 6100, LeakageMW: 0.016, EnergyPJ: 5.4},
		FUShifter:       {Class: FUShifter, Latency: 1, Pipelined: true, AreaUM2: 510, LeakageMW: 0.0014, EnergyPJ: 0.11},
		FUBitwise:       {Class: FUBitwise, Latency: 1, Pipelined: true, AreaUM2: 160, LeakageMW: 0.0005, EnergyPJ: 0.05},
		FUComparator:    {Class: FUComparator, Latency: 1, Pipelined: true, AreaUM2: 310, LeakageMW: 0.0009, EnergyPJ: 0.08},
		FUFPAdder:       {Class: FUFPAdder, Latency: 3, Pipelined: true, AreaUM2: 6400, LeakageMW: 0.021, EnergyPJ: 3.9},
		FUFPMultiplier:  {Class: FUFPMultiplier, Latency: 3, Pipelined: true, AreaUM2: 12300, LeakageMW: 0.041, EnergyPJ: 7.8},
		FUFPDivider:     {Class: FUFPDivider, Latency: 16, Pipelined: false, AreaUM2: 21000, LeakageMW: 0.066, EnergyPJ: 19.5},
		FUFPSqrt:        {Class: FUFPSqrt, Latency: 20, Pipelined: false, AreaUM2: 24500, LeakageMW: 0.075, EnergyPJ: 24.0},
		FUConversion:    {Class: FUConversion, Latency: 2, Pipelined: true, AreaUM2: 1900, LeakageMW: 0.006, EnergyPJ: 1.1},
		FUMux:           {Class: FUMux, Latency: 0, Pipelined: true, AreaUM2: 60, LeakageMW: 0.0002, EnergyPJ: 0.02},
		FUControl:       {Class: FUControl, Latency: 0, Pipelined: true, AreaUM2: 90, LeakageMW: 0.0003, EnergyPJ: 0.015},
	}
	return &Profile{
		Name: "default-40nm",
		FUs:  fus,
		Reg: RegSpec{
			AreaUM2:       5.9,
			LeakageMW:     0.0000082,
			ReadEnergyPJ:  0.0021,
			WriteEnergyPJ: 0.0036,
		},
	}
}

// SynthesisRef returns the independent "synthesis reference" calibration
// used only for validation experiments. It models Design Compiler results
// on the same 40nm library: same inventory, coefficients re-derived with
// gate-level effects the simulator profile abstracts (wiring in reuse
// muxing, clock-tree leakage, operator merging), so the two legitimately
// disagree by a few percent — the comparison structure of Figs. 11-12.
func SynthesisRef() *Profile {
	p := Default40nm()
	p.Name = "synthesis-ref-40nm"
	adj := map[FUClass]struct{ area, leak, energy float64 }{
		FUIntAdder:      {1.031, 1.02, 0.985},
		FUIntMultiplier: {0.972, 0.99, 1.034},
		FUIntDivider:    {1.041, 1.03, 1.05},
		FUShifter:       {0.964, 0.97, 1.02},
		FUBitwise:       {1.012, 1.01, 0.99},
		FUComparator:    {1.022, 1.02, 1.015},
		FUFPAdder:       {1.046, 1.04, 1.052}, // FP macros synthesize larger
		FUFPMultiplier:  {1.038, 1.05, 1.061},
		FUFPDivider:     {1.055, 1.06, 1.072},
		FUFPSqrt:        {1.06, 1.05, 1.068},
		FUConversion:    {0.981, 0.99, 1.025},
		FUMux:           {1.09, 1.07, 1.08}, // mux trees dominate error (Sec. IV-A)
		FUControl:       {1.05, 1.04, 1.06},
	}
	for _, c := range AllFUClasses() {
		a, ok := adj[c]
		if !ok {
			continue
		}
		spec := p.FUs[c]
		spec.AreaUM2 *= a.area
		spec.LeakageMW *= a.leak
		spec.EnergyPJ *= a.energy
		p.FUs[c] = spec
	}
	p.Reg.AreaUM2 *= 1.018
	p.Reg.LeakageMW *= 1.022
	p.Reg.ReadEnergyPJ *= 1.027
	p.Reg.WriteEnergyPJ *= 1.027
	return p
}

// OpClass maps an IR instruction to its functional-unit class, mirroring
// the LLVM-parser FU mapping in gem5-SALAM's static elaboration.
func OpClass(in *ir.Instr) FUClass {
	switch in.Op {
	case ir.OpAdd, ir.OpSub:
		return FUIntAdder
	case ir.OpMul:
		return FUIntMultiplier
	case ir.OpSDiv, ir.OpUDiv, ir.OpSRem, ir.OpURem:
		return FUIntDivider
	case ir.OpShl, ir.OpLShr, ir.OpAShr:
		return FUShifter
	case ir.OpAnd, ir.OpOr, ir.OpXor:
		return FUBitwise
	case ir.OpICmp, ir.OpFCmp:
		return FUComparator
	case ir.OpFAdd, ir.OpFSub:
		return FUFPAdder
	case ir.OpFMul:
		return FUFPMultiplier
	case ir.OpFDiv:
		return FUFPDivider
	case ir.OpGEP:
		// Address generation synthesizes onto integer add/multiply chains;
		// model as an integer adder (indices scale by constant strides).
		return FUIntAdder
	case ir.OpZExt, ir.OpSExt, ir.OpTrunc, ir.OpBitcast:
		return FUBitwise // wiring-only conversions
	case ir.OpFPExt, ir.OpFPTrunc, ir.OpFPToSI, ir.OpSIToFP:
		return FUConversion
	case ir.OpPhi, ir.OpSelect:
		return FUMux
	case ir.OpBr, ir.OpRet:
		return FUControl
	case ir.OpCall:
		return FUFPSqrt // math IP blocks: model with the sqrt macro class
	case ir.OpLoad, ir.OpStore:
		return FUNone // memory ops use ports, not datapath FUs
	}
	return FUNone
}

// OpLatency returns the issue-to-commit latency for an instruction under
// this profile, honoring per-opcode overrides.
func (p *Profile) OpLatency(in *ir.Instr) int {
	if p.CycleOverride != nil {
		if l, ok := p.CycleOverride[in.Op]; ok {
			return l
		}
	}
	c := OpClass(in)
	if c == FUNone {
		return 0
	}
	return p.FUs[c].Latency
}

// Spec returns the FUSpec for a class.
func (p *Profile) Spec(c FUClass) FUSpec { return p.FUs[c] }

// Clone deep-copies the profile so callers can tweak knobs safely.
func (p *Profile) Clone() *Profile {
	q := &Profile{Name: p.Name, FUs: make(map[FUClass]FUSpec, len(p.FUs)), Reg: p.Reg}
	for c, s := range p.FUs { //salam:vet:ok key-for-key map copy, order cannot escape
		q.FUs[c] = s
	}
	if p.CycleOverride != nil {
		q.CycleOverride = make(map[ir.Opcode]int, len(p.CycleOverride))
		for k, v := range p.CycleOverride { //salam:vet:ok key-for-key map copy, order cannot escape
			q.CycleOverride[k] = v
		}
	}
	return q
}
