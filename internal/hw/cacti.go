package hw

import "math"

// CactiSRAM is an analytic SRAM power/area model standing in for the
// McPAT/CACTI flow gem5-SALAM shells out to for private memories (Sec.
// III-C1). The fits follow CACTI's first-order scaling behaviour at 40nm:
// area and leakage grow linearly with capacity plus a per-port overhead;
// access energy grows with the square root of capacity (bitline/wordline
// length) and falls with banking.
type CactiSRAM struct {
	Bytes int
	Ports int
	Banks int
}

// NewCactiSRAM builds a model, clamping degenerate configurations.
func NewCactiSRAM(bytes, ports, banks int) CactiSRAM {
	if bytes < 64 {
		bytes = 64
	}
	if ports < 1 {
		ports = 1
	}
	if banks < 1 {
		banks = 1
	}
	return CactiSRAM{Bytes: bytes, Ports: ports, Banks: banks}
}

// AreaUM2 returns the macro area in square microns.
func (c CactiSRAM) AreaUM2() float64 {
	// ~1.9 µm²/byte cell+periphery at 40nm; each extra port costs ~35%;
	// banking adds ~6% duplication overhead per extra bank.
	base := 1.9 * float64(c.Bytes)
	portMul := 1 + 0.35*float64(c.Ports-1)
	bankMul := 1 + 0.06*float64(c.Banks-1)
	return base*portMul*bankMul + 900 // fixed decoder/controller overhead
}

// LeakageMW returns static power in milliwatts.
func (c CactiSRAM) LeakageMW() float64 {
	base := 0.0000115 * float64(c.Bytes)
	portMul := 1 + 0.22*float64(c.Ports-1)
	return base*portMul + 0.004
}

// ReadEnergyPJ returns energy per read access in picojoules.
func (c CactiSRAM) ReadEnergyPJ() float64 {
	bankBytes := float64(c.Bytes) / float64(c.Banks)
	return 0.45 + 0.11*math.Sqrt(bankBytes/1024)*8
}

// WriteEnergyPJ returns energy per write access in picojoules.
func (c CactiSRAM) WriteEnergyPJ() float64 {
	return c.ReadEnergyPJ() * 1.18
}

// CactiCache extends the SRAM model with tag-array overheads for caches.
type CactiCache struct {
	Data CactiSRAM
	// Assoc and LineBytes size the tag array.
	Assoc     int
	LineBytes int
}

// NewCactiCache builds a cache model.
func NewCactiCache(bytes, lineBytes, assoc int) CactiCache {
	if lineBytes <= 0 {
		lineBytes = 64
	}
	if assoc <= 0 {
		assoc = 1
	}
	return CactiCache{Data: NewCactiSRAM(bytes, 1, 1), Assoc: assoc, LineBytes: lineBytes}
}

func (c CactiCache) tagBytes() int {
	lines := c.Data.Bytes / c.LineBytes
	if lines < 1 {
		lines = 1
	}
	// ~4 tag+state bytes per line.
	return lines * 4
}

// AreaUM2 returns total (data + tag) area.
func (c CactiCache) AreaUM2() float64 {
	tag := NewCactiSRAM(c.tagBytes(), 1, 1)
	assocMul := 1 + 0.03*float64(c.Assoc-1) // comparators/way muxing
	return (c.Data.AreaUM2() + tag.AreaUM2()) * assocMul
}

// LeakageMW returns total static power.
func (c CactiCache) LeakageMW() float64 {
	tag := NewCactiSRAM(c.tagBytes(), 1, 1)
	return c.Data.LeakageMW() + tag.LeakageMW()
}

// ReadEnergyPJ returns per-access read energy including the tag probe of
// all ways.
func (c CactiCache) ReadEnergyPJ() float64 {
	tag := NewCactiSRAM(c.tagBytes(), 1, 1)
	return c.Data.ReadEnergyPJ() + tag.ReadEnergyPJ()*float64(c.Assoc)*0.25
}

// WriteEnergyPJ returns per-access write energy.
func (c CactiCache) WriteEnergyPJ() float64 {
	return c.ReadEnergyPJ() * 1.15
}
