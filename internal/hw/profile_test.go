package hw

import (
	"math"
	"testing"

	"gosalam/ir"
)

func TestOpClassCoversAllOpcodes(t *testing.T) {
	m := ir.NewModule("t")
	b := ir.NewBuilder(m)
	f := b.Func("f", ir.F64,
		ir.P("p", ir.Ptr(ir.F64)), ir.P("q", ir.Ptr(ir.I32)),
		ir.P("n", ir.I64), ir.P("x", ir.F64))
	p, q, n, x := f.Params[0], f.Params[1], f.Params[2], f.Params[3]

	checks := map[*ir.Instr]FUClass{
		b.Add(n, n, "a"):                                FUIntAdder,
		b.Sub(n, n, "s"):                                FUIntAdder,
		b.Mul(n, n, "m"):                                FUIntMultiplier,
		b.SDiv(n, ir.I64c(3), "d"):                      FUIntDivider,
		b.SRem(n, ir.I64c(3), "r"):                      FUIntDivider,
		b.Shl(n, ir.I64c(1), "sh"):                      FUShifter,
		b.And(n, n, "an"):                               FUBitwise,
		b.ICmp(ir.ISLT, n, n, "c"):                      FUComparator,
		b.FCmp(ir.FOLT, x, x, "fc"):                     FUComparator,
		b.FAdd(x, x, "fa"):                              FUFPAdder,
		b.FSub(x, x, "fs"):                              FUFPAdder,
		b.FMul(x, x, "fm"):                              FUFPMultiplier,
		b.FDiv(x, x, "fd"):                              FUFPDivider,
		b.GEP(p, "g", n):                                FUIntAdder,
		b.Load(p, "l"):                                  FUNone,
		b.Store(x, p):                                   FUNone,
		b.Trunc(n, ir.I32, "t32"):                       FUBitwise,
		b.SIToFP(b.Load(q, "qi"), ir.F64, "f"):          FUConversion,
		b.Call("sqrt", ir.F64, "sq", x):                 FUFPSqrt,
		b.Select(b.ICmp(ir.IEQ, n, n, "e"), x, x, "se"): FUMux,
	}
	ret := b.Ret(x)
	checks[ret] = FUControl

	for in, want := range checks {
		if got := OpClass(in); got != want {
			t.Errorf("OpClass(%s) = %s, want %s", in.Op, got, want)
		}
	}
}

func TestProfileLatencies(t *testing.T) {
	p := Default40nm()
	m := ir.NewModule("t")
	b := ir.NewBuilder(m)
	f := b.Func("f", ir.Void, ir.P("x", ir.F64), ir.P("n", ir.I64))
	fa := b.FAdd(f.Params[0], f.Params[0], "fa")
	ia := b.Add(f.Params[1], f.Params[1], "ia")
	fd := b.FDiv(f.Params[0], f.Params[0], "fd")
	b.Ret(nil)

	if got := p.OpLatency(fa); got != 3 {
		t.Errorf("fadd latency = %d, want 3 (paper: 3-stage FP adders)", got)
	}
	if got := p.OpLatency(ia); got != 1 {
		t.Errorf("add latency = %d, want 1", got)
	}
	if got := p.OpLatency(fd); got != 16 {
		t.Errorf("fdiv latency = %d", got)
	}
	// Override wins.
	p.CycleOverride = map[ir.Opcode]int{ir.OpFAdd: 5}
	if got := p.OpLatency(fa); got != 5 {
		t.Errorf("override latency = %d, want 5", got)
	}
}

func TestProfileRelativeMagnitudes(t *testing.T) {
	p := Default40nm()
	if !(p.FUs[FUFPMultiplier].AreaUM2 > p.FUs[FUFPAdder].AreaUM2) {
		t.Error("FP multiplier should be larger than FP adder")
	}
	if !(p.FUs[FUFPAdder].AreaUM2 > p.FUs[FUIntAdder].AreaUM2) {
		t.Error("FP adder should be larger than int adder")
	}
	if !(p.FUs[FUFPDivider].Latency > p.FUs[FUFPAdder].Latency) {
		t.Error("FP divider should be slower than FP adder")
	}
	if p.FUs[FUFPDivider].Pipelined {
		t.Error("FP divider should be unpipelined")
	}
	if !p.FUs[FUFPAdder].Pipelined {
		t.Error("FP adder should be pipelined")
	}
}

func TestSynthesisRefDiffersByFewPercent(t *testing.T) {
	def := Default40nm()
	ref := SynthesisRef()
	for _, c := range AllFUClasses() {
		d, r := def.FUs[c], ref.FUs[c]
		for _, pair := range [][2]float64{
			{d.AreaUM2, r.AreaUM2},
			{d.LeakageMW, r.LeakageMW},
			{d.EnergyPJ, r.EnergyPJ},
		} {
			if pair[0] == 0 {
				continue
			}
			ratio := pair[1] / pair[0]
			if ratio < 0.9 || ratio > 1.12 {
				t.Errorf("%s: reference deviates by %.1f%%, want within ~10%%", c, (ratio-1)*100)
			}
			if ratio == 1.0 {
				t.Errorf("%s: reference identical to default — not an independent calibration", c)
			}
		}
		if d.Latency != r.Latency {
			t.Errorf("%s: latencies must match (same RTL)", c)
		}
	}
	// Cloning must not alias.
	cl := def.Clone()
	spec := cl.FUs[FUFPAdder]
	spec.AreaUM2 = 1
	cl.FUs[FUFPAdder] = spec
	if def.FUs[FUFPAdder].AreaUM2 == 1 {
		t.Error("Clone aliases FU map")
	}
}

func TestFUClassNames(t *testing.T) {
	for _, c := range AllFUClasses() {
		if FUClassByName(c.String()) != c {
			t.Errorf("name round trip failed for %s", c)
		}
	}
	if FUClassByName("bogus") != FUNone {
		t.Error("unknown name should map to FUNone")
	}
}

func TestCactiSRAMScaling(t *testing.T) {
	small := NewCactiSRAM(1024, 1, 1)
	big := NewCactiSRAM(16*1024, 1, 1)
	if !(big.AreaUM2() > small.AreaUM2()) {
		t.Error("area should grow with capacity")
	}
	if !(big.LeakageMW() > small.LeakageMW()) {
		t.Error("leakage should grow with capacity")
	}
	if !(big.ReadEnergyPJ() > small.ReadEnergyPJ()) {
		t.Error("read energy should grow with capacity")
	}
	// Energy sublinear in capacity (sqrt-ish).
	ratio := big.ReadEnergyPJ() / small.ReadEnergyPJ()
	if ratio >= 16 {
		t.Errorf("energy ratio %g should be far sublinear", ratio)
	}
	// Ports increase area and leakage.
	multi := NewCactiSRAM(1024, 4, 1)
	if !(multi.AreaUM2() > small.AreaUM2()) {
		t.Error("ports should cost area")
	}
	// Banking reduces per-access energy.
	banked := NewCactiSRAM(16*1024, 1, 4)
	if !(banked.ReadEnergyPJ() < big.ReadEnergyPJ()) {
		t.Error("banking should reduce access energy")
	}
	// Write costs more than read.
	if !(small.WriteEnergyPJ() > small.ReadEnergyPJ()) {
		t.Error("write should cost more than read")
	}
	// Degenerate configs clamp.
	c := NewCactiSRAM(0, 0, 0)
	if c.Bytes < 64 || c.Ports < 1 || c.Banks < 1 {
		t.Error("clamping failed")
	}
	if math.IsNaN(c.AreaUM2()) || math.IsInf(c.ReadEnergyPJ(), 0) {
		t.Error("degenerate config produced NaN/Inf")
	}
}

func TestCactiCache(t *testing.T) {
	c := NewCactiCache(4096, 64, 4)
	s := NewCactiSRAM(4096, 1, 1)
	if !(c.AreaUM2() > s.AreaUM2()) {
		t.Error("cache should cost more than raw SRAM (tags)")
	}
	if !(c.ReadEnergyPJ() > s.ReadEnergyPJ()) {
		t.Error("cache access should cost more than raw SRAM access")
	}
	direct := NewCactiCache(4096, 64, 1)
	if !(c.AreaUM2() > direct.AreaUM2()) {
		t.Error("associativity should cost area")
	}
}
