package core

import (
	"strings"
	"testing"

	"gosalam/internal/hw"
	"gosalam/internal/mem"
	"gosalam/ir"
)

func TestStartWhileBusyPanics(t *testing.T) {
	f, setup := buildVecAdd(t)
	r := newRig(t, f, DefaultConfig(), nil)
	args := setup(r.space, 8)
	r.acc.Start(args)
	defer func() {
		if recover() == nil {
			t.Fatal("double start did not panic")
		}
	}()
	r.acc.Start(args)
}

func TestStartWrongArgCountPanics(t *testing.T) {
	f, _ := buildVecAdd(t)
	r := newRig(t, f, DefaultConfig(), nil)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong arg count did not panic")
		}
	}()
	r.acc.Start([]uint64{1})
}

func TestElaborateRejectsBadIR(t *testing.T) {
	m := ir.NewModule("bad")
	f := m.NewFunction("f", ir.Void)
	f.NewBlock("entry") // no terminator
	if _, err := Elaborate(f, hw.Default40nm(), nil); err == nil {
		t.Fatal("unverifiable IR accepted")
	}
}

func TestLoadFromOutputStreamPanics(t *testing.T) {
	m := ir.NewModule("s")
	b := ir.NewBuilder(m)
	f := b.Func("f", ir.Void, ir.P("p", ir.Ptr(ir.F64)))
	b.Store(b.Load(f.Params[0], "v"), f.Params[0])
	b.Ret(nil)

	r := newRig(t, f, DefaultConfig(), nil)
	buf := mem.NewStreamBuffer("b", 64, r.stats)
	win := mem.AddrRange{Base: 0xE0000000, Size: 0x1000}
	r.comm.AttachStream(win, buf, StreamOut) // output-only window

	defer func() {
		if recover() == nil {
			t.Fatal("load from output stream window did not panic")
		}
	}()
	r.acc.Start([]uint64{win.Base})
	r.q.Run()
}

func TestWindowIndex(t *testing.T) {
	f, _ := buildVecAdd(t)
	r := newRig(t, f, DefaultConfig(), nil)
	buf := mem.NewStreamBuffer("b", 64, r.stats)
	r.comm.AttachStream(mem.AddrRange{Base: 0xE0000000, Size: 0x1000}, buf, StreamIn)
	r.comm.AttachStream(mem.AddrRange{Base: 0xE0010000, Size: 0x1000}, buf, StreamOut)
	if r.comm.WindowIndex(0xE0000010) != 0 {
		t.Fatal("first window not found")
	}
	if r.comm.WindowIndex(0xE0010010) != 1 {
		t.Fatal("second window not found")
	}
	if r.comm.WindowIndex(0x1000) != -1 {
		t.Fatal("non-window address matched")
	}
}

func TestCDFGSummaryAndPowerString(t *testing.T) {
	f, setup := buildVecAdd(t)
	r := newRig(t, f, DefaultConfig(), nil)
	runToDone(t, r, setup(r.space, 8))
	s := r.acc.CDFG.Summary()
	for _, want := range []string{"fp_adder", "int_adder", "blocks"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
	p := r.acc.Power(r.spm, r.q.Now())
	if !strings.Contains(p.String(), "total=") {
		t.Fatalf("power string: %s", p.String())
	}
}

func TestHazardStats(t *testing.T) {
	// Port-starved run must record load-port hazards.
	m := ir.NewModule("h")
	b := ir.NewBuilder(m)
	f := b.Func("f", ir.Void, ir.P("a", ir.Ptr(ir.F64)), ir.P("c", ir.Ptr(ir.F64)))
	b.LoopUnrolled("i", ir.I64c(0), ir.I64c(32), 1, 8, func(iv ir.Value) {
		v := b.Load(b.GEP(f.Params[0], "p", iv), "v")
		b.Store(v, b.GEP(f.Params[1], "q", iv))
	})
	b.Ret(nil)
	cfg := DefaultConfig()
	cfg.ReadPorts, cfg.WritePorts = 1, 1
	cfg.ResQueueSize = 256
	r := newRig(t, f, cfg, nil)
	aA := r.space.AllocFor(ir.F64, 32)
	cA := r.space.AllocFor(ir.F64, 32)
	runToDone(t, r, []uint64{aA, cA})
	if r.acc.HazardCycles.Value() == 0 {
		t.Fatal("no hazard cycles under port starvation")
	}
	if r.acc.HazardKinds.Total() != r.acc.HazardCycles.Value() {
		t.Fatalf("hazard kinds %g != hazard cycles %g",
			r.acc.HazardKinds.Total(), r.acc.HazardCycles.Value())
	}
	foundLoad := false
	for _, k := range r.acc.HazardKinds.Keys() {
		if strings.Contains(k, "load_ports") {
			foundLoad = true
		}
	}
	if !foundLoad {
		t.Fatalf("no load-port hazards recorded: %v", r.acc.HazardKinds.Keys())
	}
}

func TestActivityFractionPredicates(t *testing.T) {
	f, setup := buildVecAdd(t)
	r := newRig(t, f, DefaultConfig(), nil)
	runToDone(t, r, setup(r.space, 32))
	all := r.acc.ActivityFraction(func(l, s, fp bool) bool { return true })
	if all < 0.999 || all > 1.001 {
		t.Fatalf("total activity fraction = %g, want 1", all)
	}
	none := r.acc.ActivityFraction(func(l, s, fp bool) bool { return false })
	if none != 0 {
		t.Fatalf("empty predicate = %g", none)
	}
	loads := r.acc.ActivityFraction(func(l, s, fp bool) bool { return l })
	if loads <= 0 {
		t.Fatal("no load activity in a load-heavy kernel")
	}
}

func TestFUOccupancyBounds(t *testing.T) {
	// Even for pipelined units under heavy reuse, occupancy stays in [0,1].
	m := ir.NewModule("o")
	b := ir.NewBuilder(m)
	f := b.Func("f", ir.Void, ir.P("a", ir.Ptr(ir.F64)), ir.P("c", ir.Ptr(ir.F64)))
	b.LoopUnrolled("i", ir.I64c(0), ir.I64c(64), 1, 8, func(iv ir.Value) {
		v := b.Load(b.GEP(f.Params[0], "p", iv), "v")
		b.Store(b.FMul(v, ir.F64c(2), "m"), b.GEP(f.Params[1], "q", iv))
	})
	b.Ret(nil)
	cfg := DefaultConfig()
	cfg.ReadPorts, cfg.WritePorts, cfg.MaxOutstanding = 8, 8, 32
	cfg.ResQueueSize = 512
	r := newRig(t, f, cfg, map[hw.FUClass]int{hw.FUFPMultiplier: 1})
	aA := r.space.AllocFor(ir.F64, 64)
	cA := r.space.AllocFor(ir.F64, 64)
	runToDone(t, r, []uint64{aA, cA})
	for _, c := range hw.AllFUClasses() {
		occ := r.acc.FUOccupancy(c)
		if occ < 0 || occ > 1 {
			t.Fatalf("%s occupancy = %g", c, occ)
		}
	}
	// The single shared multiplier should be hot.
	if r.acc.FUOccupancy(hw.FUFPMultiplier) < 0.3 {
		t.Fatalf("shared multiplier occupancy = %g, expected high",
			r.acc.FUOccupancy(hw.FUFPMultiplier))
	}
}

func TestCycleProfile(t *testing.T) {
	f, setup := buildVecAdd(t)
	r := newRig(t, f, DefaultConfig(), nil)
	prof := r.acc.EnableProfile(0)
	runToDone(t, r, setup(r.space, 32))
	if len(prof.Samples) == 0 {
		t.Fatal("no samples")
	}
	if float64(len(prof.Samples)) != r.acc.ActiveCycles.Value() {
		t.Fatalf("samples %d != active cycles %g", len(prof.Samples), r.acc.ActiveCycles.Value())
	}
	// Per-cycle issue counts must total the aggregate counters.
	var loads, stores int
	for _, s := range prof.Samples {
		loads += int(s.Loads)
		stores += int(s.Stores)
	}
	if float64(loads) != r.acc.IssuedByClass.Get("load") ||
		float64(stores) != r.acc.IssuedByClass.Get("store") {
		t.Fatalf("profile loads/stores %d/%d disagree with aggregates %g/%g",
			loads, stores, r.acc.IssuedByClass.Get("load"), r.acc.IssuedByClass.Get("store"))
	}
	var sb strings.Builder
	if err := prof.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "cycle,loads,stores") {
		t.Fatal("CSV header missing")
	}
	iss, _, avg := prof.Summary()
	if iss == 0 || avg <= 0 {
		t.Fatalf("summary: issue=%d avg=%g", iss, avg)
	}

	// Bounded capacity drops samples rather than growing.
	prof2 := r.acc.EnableProfile(4)
	runToDone(t, r, setup(r.space, 32))
	if len(prof2.Samples) != 4 || prof2.Dropped == 0 {
		t.Fatalf("cap not honored: %d samples, %d dropped", len(prof2.Samples), prof2.Dropped)
	}
}
