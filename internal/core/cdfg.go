// Package core implements gem5-SALAM's contribution: LLVM-based
// execute-in-execute accelerator modeling. Static elaboration turns an IR
// function into a static control/data-flow graph with functional-unit and
// register mappings (Sec. III-A2); the dynamic runtime engine (Sec. III-B)
// instantiates it basic block by basic block through reservation, compute,
// and read/write queues; the communications interface (Sec. III-D1)
// connects the datapath to the rest of the memory system; and the metrics
// layer produces the paper's power/area/occupancy outputs (Sec. III-C).
package core

import (
	"fmt"

	"gosalam/internal/hw"
	"gosalam/ir"
)

// operandSrc is a precompiled operand source: where one input of a static
// op comes from at runtime. Compiling sources once at elaboration keeps the
// per-fetch dependency search free of interface dispatch and map lookups.
type operandSrc struct {
	bits uint64 // constant bits or global address (srcConst)
	idx  int32  // param index (srcParam) or producer StaticOp.ID (srcDef)
	kind uint8
}

const (
	srcConst uint8 = iota // literal constant or global address
	srcParam              // kernel argument register
	srcDef                // SSA value produced by another static op
)

// StaticOp is one statically elaborated instruction: the IR instruction
// linked to its virtual hardware resources.
type StaticOp struct {
	In      *ir.Instr
	Class   hw.FUClass
	Latency int
	// Pipelined mirrors the FU spec; unpipelined units stay busy for
	// their full latency.
	Pipelined bool
	// RegBits is the width of the destination register (0 for void).
	RegBits int

	// ID densely numbers static ops within the function, so runtime state
	// (last definitions, per-cycle issue stamps) lives in flat slices.
	ID int

	// Precompiled operand sources. Srcs parallels In.Args for every op but
	// phi; PhiSrcs parallels In.Blocks, one source per incoming edge.
	Srcs    []operandSrc
	PhiSrcs []operandSrc

	// Dispatch flags and energies precomputed from the IR and profile so
	// the cycle loop never re-derives them.
	Mem, Load, Store bool
	Term             bool
	FP               bool
	Result           bool
	AccSize          int       // memory access size in bytes
	EnergyPJ         float64   // FU dynamic energy per initiation
	WritePJ          float64   // register-write energy on commit
	MemReadPJ        float64   // register-read energy on memory issue
	ReadPJ           []float64 // per-argument register-read energy
}

// IsMem reports whether the op uses the memory queues instead of an FU.
func (s *StaticOp) IsMem() bool { return s.Mem }

// IsFP reports whether the op occupies a floating-point functional unit.
func (s *StaticOp) IsFP() bool {
	switch s.Class {
	case hw.FUFPAdder, hw.FUFPMultiplier, hw.FUFPDivider, hw.FUFPSqrt:
		return true
	}
	return false
}

// CDFG is the statically elaborated datapath skeleton: the static half of
// the paper's dual-CDFG design. Unlike the trace-based baseline, it is a
// pure function of the IR and the hardware profile — input data and memory
// configuration cannot change it (the property Tables I and II test).
type CDFG struct {
	F       *ir.Function
	Profile *hw.Profile

	Ops      map[*ir.Instr]*StaticOp
	BlockOps map[*ir.Block][]*StaticOp

	// FUTotal is the number of functional units instantiated per class:
	// one per static instruction by default (dedicated 1:1 mapping), or
	// the user-constrained pool size when a limit is set.
	FUTotal map[hw.FUClass]int
	// FULimit holds the user constraints that were applied (0 = none).
	FULimit map[hw.FUClass]int

	// RegBits is the total datapath register width: every SSA value plus
	// the argument registers.
	RegBits int
	// RegCount is the number of registers.
	RegCount int

	// NumOps is the number of static ops (dense StaticOp.ID space).
	NumOps int
	// opsByID maps a dense ID back to its static op, so snapshots can
	// name ops by ID and restores can rebind them.
	opsByID []*StaticOp
}

// OpByID returns the static op with the given dense ID.
func (g *CDFG) OpByID(id int) *StaticOp { return g.opsByID[id] }

// compileSrc resolves one IR operand to its precompiled source.
func (g *CDFG) compileSrc(v ir.Value) operandSrc {
	if b, ok := ir.ConstBits(v); ok {
		return operandSrc{kind: srcConst, bits: b}
	}
	switch vv := v.(type) {
	case *ir.Global:
		return operandSrc{kind: srcConst, bits: vv.Addr}
	case *ir.Param:
		return operandSrc{kind: srcParam, idx: int32(vv.Index)}
	case *ir.Instr:
		return operandSrc{kind: srcDef, idx: int32(g.Ops[vv].ID)}
	}
	panic("core: unknown value kind")
}

// Elaborate builds the static CDFG for f under a hardware profile with
// optional per-class FU limits ("hardware profile" constraints enforcing
// reuse, Sec. III-A2).
func Elaborate(f *ir.Function, profile *hw.Profile, limits map[hw.FUClass]int) (*CDFG, error) {
	if err := ir.Verify(f); err != nil {
		return nil, fmt.Errorf("core: elaborating unverifiable IR: %w", err)
	}
	g := &CDFG{
		F:        f,
		Profile:  profile,
		Ops:      map[*ir.Instr]*StaticOp{},
		BlockOps: map[*ir.Block][]*StaticOp{},
		FUTotal:  map[hw.FUClass]int{},
		FULimit:  map[hw.FUClass]int{},
	}
	for _, c := range hw.AllFUClasses() {
		if n, ok := limits[c]; ok {
			g.FULimit[c] = n
		}
	}
	demand := map[hw.FUClass]int{}
	for _, b := range f.Blocks {
		ops := make([]*StaticOp, 0, len(b.Instrs))
		for _, in := range b.Instrs {
			class := hw.OpClass(in)
			spec := profile.Spec(class)
			op := &StaticOp{
				In:        in,
				Class:     class,
				Latency:   profile.OpLatency(in),
				Pipelined: spec.Pipelined || class == hw.FUNone,
				RegBits:   in.T.Bits(),
				ID:        g.NumOps,
				Mem:       in.Op.IsMemAccess(),
				Load:      in.Op == ir.OpLoad,
				Store:     in.Op == ir.OpStore,
				Term:      in.Op.IsTerminator(),
				Result:    in.HasResult(),
				EnergyPJ:  spec.EnergyPJ,
			}
			op.FP = op.IsFP()
			g.NumOps++
			g.opsByID = append(g.opsByID, op)
			g.Ops[in] = op
			ops = append(ops, op)
			if class != hw.FUNone {
				demand[class]++
			}
			if in.HasResult() {
				g.RegBits += in.T.Bits()
				g.RegCount++
			}
		}
		g.BlockOps[b] = ops
	}
	// Second pass: compile operand sources and per-op energies. This must
	// run after every op has an ID, because phi arguments reference ops in
	// blocks that are elaborated later.
	for _, b := range f.Blocks {
		for _, op := range g.BlockOps[b] {
			in := op.In
			if in.Op == ir.OpPhi {
				op.PhiSrcs = make([]operandSrc, len(in.Args))
				for k, v := range in.Args {
					op.PhiSrcs[k] = g.compileSrc(v)
				}
			} else if len(in.Args) > 0 {
				op.Srcs = make([]operandSrc, len(in.Args))
				for k, v := range in.Args {
					op.Srcs[k] = g.compileSrc(v)
				}
			}
			if len(in.Args) > 0 {
				op.ReadPJ = make([]float64, len(in.Args))
				for k, v := range in.Args {
					op.ReadPJ[k] = profile.Reg.ReadEnergyPJ * float64(v.Type().Bits())
				}
			}
			if op.Result {
				op.WritePJ = profile.Reg.WriteEnergyPJ * float64(in.T.Bits())
			}
			if op.Load {
				op.AccSize = in.T.SizeBytes()
				op.MemReadPJ = profile.Reg.ReadEnergyPJ * 64
			} else if op.Store {
				op.AccSize = in.Args[0].Type().SizeBytes()
				op.MemReadPJ = profile.Reg.ReadEnergyPJ * float64(64+op.AccSize*8)
			}
		}
	}
	for _, p := range f.Params {
		g.RegBits += p.T.Bits()
		g.RegCount++
	}
	for _, c := range hw.AllFUClasses() {
		n, ok := demand[c]
		if !ok {
			continue
		}
		if lim := g.FULimit[c]; lim > 0 && lim < n {
			g.FUTotal[c] = lim
		} else {
			g.FUTotal[c] = n
		}
	}
	return g, nil
}

// AreaUM2 returns datapath area: functional units plus registers. Memory
// macros are reported separately (they belong to the memory hierarchy,
// which gem5-SALAM deliberately decouples from the datapath).
func (g *CDFG) AreaUM2() float64 {
	// Iterate classes in declaration order: float summation order must be
	// fixed or reports differ in the last bit between runs (map iteration
	// order is randomized).
	area := 0.0
	for _, c := range hw.AllFUClasses() {
		if n := g.FUTotal[c]; n > 0 {
			area += g.Profile.Spec(c).AreaUM2 * float64(n)
		}
	}
	area += g.Profile.Reg.AreaUM2 * float64(g.RegBits)
	return area
}

// StaticFULeakageMW returns functional-unit leakage power.
func (g *CDFG) StaticFULeakageMW() float64 {
	p := 0.0
	for _, c := range hw.AllFUClasses() {
		if n := g.FUTotal[c]; n > 0 {
			p += g.Profile.Spec(c).LeakageMW * float64(n)
		}
	}
	return p
}

// StaticRegLeakageMW returns register leakage power.
func (g *CDFG) StaticRegLeakageMW() float64 {
	return g.Profile.Reg.LeakageMW * float64(g.RegBits)
}

// FUCount returns the instantiated unit count for one class.
func (g *CDFG) FUCount(c hw.FUClass) int { return g.FUTotal[c] }

// Summary renders a one-line-per-class inventory for reports.
func (g *CDFG) Summary() string {
	s := fmt.Sprintf("function %s: %d blocks, %d instrs, %d regs (%d bits)\n",
		g.F.Name(), len(g.F.Blocks), g.F.NumInstrs(), g.RegCount, g.RegBits)
	for _, c := range hw.AllFUClasses() {
		if n := g.FUTotal[c]; n > 0 {
			lim := ""
			if g.FULimit[c] > 0 {
				lim = fmt.Sprintf(" (limit %d)", g.FULimit[c])
			}
			s += fmt.Sprintf("  %-16s %d%s\n", c, n, lim)
		}
	}
	return s
}
