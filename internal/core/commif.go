package core

import (
	"fmt"

	"gosalam/internal/mem"
	"gosalam/internal/sim"
)

// StreamDir is the direction of a stream window.
type StreamDir int

// Stream window directions.
const (
	StreamIn  StreamDir = iota // kernel loads pop from the buffer
	StreamOut                  // kernel stores push into the buffer
)

// streamWindow binds an address range seen by the kernel to a stream
// buffer. Accesses inside the window become FIFO pops/pushes with a full/
// empty handshake, modeling AXI-Stream ports (Fig. 16c): the address
// offset is ignored, accesses are consumed in program order.
type streamWindow struct {
	rng mem.AddrRange
	buf *mem.StreamBuffer
	dir StreamDir
}

// CommInterface is the paper's communications interface (Fig. 5): MMRs for
// control, up to two master memory ports (a local scratchpad port and a
// global port), stream windows, bounded read/write request queues with a
// configurable per-cycle issue width, and an interrupt line.
type CommInterface struct {
	q    *sim.EventQueue
	clk  *sim.ClockDomain
	name string

	// MMR is the control/status/argument register file. Layout:
	// reg0 = CTRL (bit0 start, bit1 IRQ enable), reg1 = STATUS (bit0 busy,
	// bit1 done), regs 2..2+nargs-1 = kernel arguments.
	MMR *mem.MMRBlock

	local   mem.Ranged // scratchpad port (may be nil)
	global  mem.Port   // cache/xbar port (may be nil)
	streams []streamWindow

	// ReadPorts and WritePorts bound memory issues per engine cycle — the
	// read/write-port knob swept in Figs. 14 and 15.
	ReadPorts  int
	WritePorts int
	// MaxOutstanding bounds in-flight requests per direction.
	MaxOutstanding int

	// IRQ, when set, is raised at kernel completion if CTRL bit1 is set.
	IRQ func()

	readsThisCycle  int
	writesThisCycle int
	outReads        int
	outWrites       int

	// tagOwner/tagID hold the snapshot owner tag for the next issued
	// request (TagNext); consumed by the next IssueRead/IssueWrite.
	tagOwner uint8
	tagID    uint64

	// reqPool recycles commReq wrappers (request + bound Done callback +
	// read buffer), so issuing memory traffic is allocation-free once the
	// pool is warm.
	reqPool []*commReq

	// Stats.
	LoadsIssued, StoresIssued   *sim.Scalar
	StreamPops, StreamPushes    *sim.Scalar
	StreamStalls                *sim.Scalar
	LocalAccesses, GlobalAccess *sim.Scalar
	LoadLatency                 *sim.Distribution
}

// CtrlReg and friends name the fixed MMR indices.
const (
	CtrlReg   = 0
	StatusReg = 1
	ArgReg0   = 2
)

// NewCommInterface builds a communications interface with nargs argument
// registers, MMRs based at mmrBase.
func NewCommInterface(name string, q *sim.EventQueue, clk *sim.ClockDomain,
	mmrBase uint64, nargs int, stats *sim.Group) *CommInterface {
	c := &CommInterface{
		q: q, clk: clk, name: name,
		ReadPorts: 2, WritePorts: 2, MaxOutstanding: 16,
	}
	c.MMR = mem.NewMMRBlock(name+".mmr", q, clk, mmrBase, ArgReg0+nargs, stats)
	g := stats.Child(name)
	c.LoadsIssued = g.Scalar("loads", "load requests issued")
	c.StoresIssued = g.Scalar("stores", "store requests issued")
	c.StreamPops = g.Scalar("stream_pops", "stream window pops")
	c.StreamPushes = g.Scalar("stream_pushes", "stream window pushes")
	c.StreamStalls = g.Scalar("stream_stalls", "stream handshake stalls")
	c.LocalAccesses = g.Scalar("local_accesses", "accesses via the SPM port")
	c.GlobalAccess = g.Scalar("global_accesses", "accesses via the global port")
	c.LoadLatency = g.Distribution("load_latency", "ticks from issue to data")
	return c
}

// Reset rewinds the interface for a warm-started run after the owning
// EventQueue has been Reset: per-cycle and outstanding counters return to
// zero and the MMRs clear. Requests that were in flight when a previous
// run was abandoned are forgotten — their completion events died with the
// queue reset (their pooled wrappers are not reclaimed, which only costs a
// fresh allocation later). Attached ports, stream windows, and the request
// pool survive.
func (c *CommInterface) Reset() {
	c.readsThisCycle, c.writesThisCycle = 0, 0
	c.outReads, c.outWrites = 0, 0
	c.tagOwner, c.tagID = 0, 0
	c.MMR.Reset()
}

// TagNext sets the snapshot owner tag stamped onto the next issued
// request, so a checkpoint can claim the request while it is in flight.
func (c *CommInterface) TagNext(owner uint8, id uint64) {
	c.tagOwner, c.tagID = owner, id
}

// takeTag consumes the pending owner tag.
func (c *CommInterface) takeTag() (uint8, uint64) {
	o, id := c.tagOwner, c.tagID
	c.tagOwner, c.tagID = 0, 0
	return o, id
}

// AttachLocal connects the scratchpad master port.
func (c *CommInterface) AttachLocal(p mem.Ranged) { c.local = p }

// AttachGlobal connects the global (cache/crossbar) master port.
func (c *CommInterface) AttachGlobal(p mem.Port) { c.global = p }

// AttachStream binds a stream buffer to an address window.
func (c *CommInterface) AttachStream(rng mem.AddrRange, buf *mem.StreamBuffer, dir StreamDir) {
	c.streams = append(c.streams, streamWindow{rng: rng, buf: buf, dir: dir})
}

// NewCycle resets the per-cycle port counters; the engine calls it at each
// clock edge.
func (c *CommInterface) NewCycle() {
	c.readsThisCycle = 0
	c.writesThisCycle = 0
}

// CanRead reports whether another read may issue this cycle.
func (c *CommInterface) CanRead() bool {
	return c.readsThisCycle < c.ReadPorts && c.outReads < c.MaxOutstanding
}

// CanWrite reports whether another write may issue this cycle.
func (c *CommInterface) CanWrite() bool {
	return c.writesThisCycle < c.WritePorts && c.outWrites < c.MaxOutstanding
}

// WindowIndex returns which stream window addr falls in (-1 for none).
// The engine uses it to keep same-window accesses in program order: FIFO
// pops and pushes must not reorder.
func (c *CommInterface) WindowIndex(addr uint64) int {
	for i := range c.streams {
		if c.streams[i].rng.Contains(addr, 1) {
			return i
		}
	}
	return -1
}

func (c *CommInterface) stream(addr uint64, size int) *streamWindow {
	for i := range c.streams {
		if c.streams[i].rng.Contains(addr, 1) {
			return &c.streams[i]
		}
	}
	return nil
}

func (c *CommInterface) route(addr uint64, size int) mem.Port {
	if c.local != nil && c.local.Range().Contains(addr, size) {
		c.LocalAccesses.Inc(1)
		return c.local
	}
	if c.global == nil {
		panic(fmt.Sprintf("core: %s: no port for address %#x", c.name, addr))
	}
	c.GlobalAccess.Inc(1)
	return c.global
}

// commReq is one pooled in-flight request. Its Done callbacks are bound
// once at allocation; a request returns to the pool when its engine
// callback has been delivered, which is the last reference any device
// holds (devices drop the request at completion scheduling).
type commReq struct {
	c           *CommInterface
	req         mem.Request
	start       sim.Tick
	rdone       func(data []byte)
	wdone       func()
	buf         [8]byte
	readDoneFn  func(*mem.Request)
	writeDoneFn func(*mem.Request)
}

func (c *CommInterface) allocReq() *commReq {
	if n := len(c.reqPool); n > 0 {
		cr := c.reqPool[n-1]
		c.reqPool = c.reqPool[:n-1]
		return cr
	}
	cr := &commReq{c: c}
	cr.readDoneFn = func(r *mem.Request) {
		cc := cr.c
		cc.outReads--
		cc.LoadLatency.Sample(float64(cc.q.Now() - cr.start))
		done := cr.rdone
		cr.rdone = nil
		done(r.Data)
		cc.reqPool = append(cc.reqPool, cr)
	}
	cr.writeDoneFn = func(*mem.Request) {
		cc := cr.c
		cc.outWrites--
		done := cr.wdone
		cr.wdone = nil
		done()
		cc.reqPool = append(cc.reqPool, cr)
	}
	return cr
}

// IssueRead starts a read. It returns false when the access targets a
// stream window that is currently empty (the op must retry). done receives
// the data bits via the event queue.
func (c *CommInterface) IssueRead(addr uint64, size int, done func(data []byte)) bool {
	owner, ownerID := c.takeTag()
	if w := c.stream(addr, size); w != nil {
		if w.dir != StreamIn {
			panic(fmt.Sprintf("core: %s: load from output stream window %#x", c.name, addr))
		}
		data, ok := w.buf.Pop(size)
		if !ok {
			c.StreamStalls.Inc(1)
			return false
		}
		c.StreamPops.Inc(1)
		c.readsThisCycle++
		c.q.Schedule(c.q.Now()+c.clk.Period(), sim.PriMemResp, func() { done(data) })
		return true
	}
	c.readsThisCycle++
	c.outReads++
	c.LoadsIssued.Inc(1)
	cr := c.allocReq()
	cr.start = c.q.Now()
	cr.rdone = done
	cr.req = mem.Request{Addr: addr, Size: size, Done: cr.readDoneFn, Owner: owner, OwnerID: ownerID}
	if size <= len(cr.buf) {
		cr.req.Data = cr.buf[:size] // response buffer; consumed inside done
	}
	c.route(addr, size).Send(&cr.req)
	return true
}

// IssueWrite starts a write. It returns false when the access targets a
// stream window that is currently full.
func (c *CommInterface) IssueWrite(addr uint64, data []byte, done func()) bool {
	owner, ownerID := c.takeTag()
	if w := c.stream(addr, len(data)); w != nil {
		if w.dir != StreamOut {
			panic(fmt.Sprintf("core: %s: store to input stream window %#x", c.name, addr))
		}
		if !w.buf.Push(data) {
			c.StreamStalls.Inc(1)
			return false
		}
		c.StreamPushes.Inc(1)
		c.writesThisCycle++
		c.q.Schedule(c.q.Now()+c.clk.Period(), sim.PriMemResp, func() { done() })
		return true
	}
	c.writesThisCycle++
	c.outWrites++
	c.StoresIssued.Inc(1)
	cr := c.allocReq()
	cr.start = c.q.Now()
	cr.wdone = done
	cr.req = mem.Request{Addr: addr, Size: len(data), Write: true, Data: data, Done: cr.writeDoneFn, Owner: owner, OwnerID: ownerID}
	c.route(addr, len(data)).Send(&cr.req)
	return true
}

// OutstandingReads returns in-flight read count (for stall classification).
func (c *CommInterface) OutstandingReads() int { return c.outReads }

// OutstandingWrites returns in-flight write count.
func (c *CommInterface) OutstandingWrites() int { return c.outWrites }
