package core

import (
	"encoding/binary"
	"testing"

	"gosalam/internal/hw"
	"gosalam/internal/mem"
	"gosalam/internal/sim"
	"gosalam/ir"
)

// rig is a minimal single-accelerator system: SPM + comm + accelerator.
type rig struct {
	q     *sim.EventQueue
	space *ir.FlatMem
	spm   *mem.Scratchpad
	comm  *CommInterface
	acc   *Accelerator
	stats *sim.Group
}

func newRig(t *testing.T, f *ir.Function, cfg AccelConfig, limits map[hw.FUClass]int) *rig {
	t.Helper()
	q := sim.NewEventQueue()
	space := ir.NewFlatMem(0, 1<<20)
	stats := sim.NewGroup("sys")
	clk := sim.NewClockDomainMHz("sysclk", cfg.ClockMHz)
	spm := mem.NewScratchpad("spm", q, clk, space,
		mem.AddrRange{Base: 0, Size: 1 << 20}, 1, 4, 4, stats)
	comm := NewCommInterface("comm", q, clk, 0xF0000000, len(f.Params), stats)
	comm.AttachLocal(spm)
	g, err := Elaborate(f, hw.Default40nm(), limits)
	if err != nil {
		t.Fatal(err)
	}
	acc := NewAccelerator("acc", q, g, cfg, comm, stats)
	return &rig{q: q, space: space, spm: spm, comm: comm, acc: acc, stats: stats}
}

// buildVecAdd builds c[i] = a[i] + b[i] over n doubles.
func buildVecAdd(t *testing.T) (*ir.Function, func(m *ir.FlatMem, n int) []uint64) {
	t.Helper()
	m := ir.NewModule("vadd")
	b := ir.NewBuilder(m)
	f := b.Func("vadd", ir.Void,
		ir.P("a", ir.Ptr(ir.F64)), ir.P("b", ir.Ptr(ir.F64)),
		ir.P("c", ir.Ptr(ir.F64)), ir.P("n", ir.I64))
	a, bp, cp, n := f.Params[0], f.Params[1], f.Params[2], f.Params[3]
	b.Loop("i", ir.I64c(0), n, 1, func(iv ir.Value) {
		av := b.Load(b.GEP(a, "pa", iv), "va")
		bv := b.Load(b.GEP(bp, "pb", iv), "vb")
		b.Store(b.FAdd(av, bv, "sum"), b.GEP(cp, "pc", iv))
	})
	b.Ret(nil)
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
	setup := func(mm *ir.FlatMem, n int) []uint64 {
		aA := mm.AllocFor(ir.F64, n)
		bA := mm.AllocFor(ir.F64, n)
		cA := mm.AllocFor(ir.F64, n)
		for i := 0; i < n; i++ {
			mm.WriteF64(aA+uint64(i*8), float64(i))
			mm.WriteF64(bA+uint64(i*8), float64(2*i))
		}
		return []uint64{aA, bA, cA, uint64(n)}
	}
	return f, setup
}

func runToDone(t *testing.T, r *rig, args []uint64) uint64 {
	t.Helper()
	done := false
	r.acc.OnDone = func() { done = true }
	r.acc.Start(args)
	r.q.RunWhile(func() bool { return !done })
	if !done {
		t.Fatal("accelerator never finished")
	}
	return r.acc.LastKernelCycles()
}

func TestAcceleratorExecutesVecAdd(t *testing.T) {
	f, setup := buildVecAdd(t)
	r := newRig(t, f, DefaultConfig(), nil)
	n := 32
	args := setup(r.space, n)
	cycles := runToDone(t, r, args)

	cA := args[2]
	for i := 0; i < n; i++ {
		want := float64(i) + float64(2*i)
		if got := r.space.ReadF64(cA + uint64(i*8)); got != want {
			t.Fatalf("c[%d] = %g, want %g", i, got, want)
		}
	}
	if cycles == 0 {
		t.Fatal("zero kernel cycles")
	}
	// Sanity: at least n loads+stores issued.
	if r.comm.LoadsIssued.Value() != float64(2*n) {
		t.Fatalf("loads = %g, want %d", r.comm.LoadsIssued.Value(), 2*n)
	}
	if r.comm.StoresIssued.Value() != float64(n) {
		t.Fatalf("stores = %g, want %d", r.comm.StoresIssued.Value(), n)
	}
	if r.acc.Busy() {
		t.Fatal("still busy after done")
	}
}

// The runtime engine must compute exactly what the functional interpreter
// computes — the execute-in-execute property.
func TestEngineMatchesInterpreter(t *testing.T) {
	f, setup := buildVecAdd(t)
	n := 16

	refMem := ir.NewFlatMem(0, 1<<20)
	refArgs := setup(refMem, n)
	if _, _, err := ir.Exec(f, refArgs, refMem, nil); err != nil {
		t.Fatal(err)
	}

	r := newRig(t, f, DefaultConfig(), nil)
	args := setup(r.space, n)
	runToDone(t, r, args)

	for i := range r.space.Data {
		if r.space.Data[i] != refMem.Data[i] {
			t.Fatalf("memory diverges from interpreter at byte %d", i)
		}
	}
}

func TestLoopPipeliningSpeedsUp(t *testing.T) {
	f, setup := buildVecAdd(t)
	cfgPipe := DefaultConfig()
	cfgNoPipe := DefaultConfig()
	cfgNoPipe.PipelineLoops = false

	r1 := newRig(t, f, cfgPipe, nil)
	c1 := runToDone(t, r1, setup(r1.space, 32))
	r2 := newRig(t, f, cfgNoPipe, nil)
	c2 := runToDone(t, r2, setup(r2.space, 32))
	if !(c1 < c2) {
		t.Fatalf("pipelined %d cycles !< unpipelined %d", c1, c2)
	}
}

func TestMorePortsFewerCycles(t *testing.T) {
	// Unrolled vector add: lots of memory parallelism for ports to exploit.
	m := ir.NewModule("v")
	b := ir.NewBuilder(m)
	f := b.Func("vadd8", ir.Void,
		ir.P("a", ir.Ptr(ir.F64)), ir.P("b", ir.Ptr(ir.F64)),
		ir.P("c", ir.Ptr(ir.F64)), ir.P("n", ir.I64))
	a, bp, cp, n := f.Params[0], f.Params[1], f.Params[2], f.Params[3]
	b.LoopUnrolled("i", ir.I64c(0), n, 1, 8, func(iv ir.Value) {
		av := b.Load(b.GEP(a, "pa", iv), "va")
		bv := b.Load(b.GEP(bp, "pb", iv), "vb")
		b.Store(b.FAdd(av, bv, "s"), b.GEP(cp, "pc", iv))
	})
	b.Ret(nil)

	setup := func(mm *ir.FlatMem, nn int) []uint64 {
		aA := mm.AllocFor(ir.F64, nn)
		bA := mm.AllocFor(ir.F64, nn)
		cA := mm.AllocFor(ir.F64, nn)
		for i := 0; i < nn; i++ {
			mm.WriteF64(aA+uint64(i*8), 1)
			mm.WriteF64(bA+uint64(i*8), 2)
		}
		return []uint64{aA, bA, cA, uint64(nn)}
	}
	cycles := map[int]uint64{}
	for _, ports := range []int{1, 8} {
		cfg := DefaultConfig()
		cfg.ReadPorts, cfg.WritePorts = ports, ports
		cfg.MaxOutstanding = 32
		r := newRig(t, f, cfg, nil)
		cycles[ports] = runToDone(t, r, setup(r.space, 64))
	}
	if !(cycles[8] < cycles[1]) {
		t.Fatalf("8 ports (%d cy) not faster than 1 port (%d cy)", cycles[8], cycles[1])
	}
}

func TestFULimitsSlowExecutionButPreserveResults(t *testing.T) {
	// Unrolled element-wise FP kernel: 8 independent fmuls + fadds per
	// iteration. Limiting the units to 1 each forces reuse and must
	// serialize the iteration without changing results.
	m := ir.NewModule("acc")
	b := ir.NewBuilder(m)
	f := b.Func("fma8", ir.Void,
		ir.P("a", ir.Ptr(ir.F64)), ir.P("c", ir.Ptr(ir.F64)), ir.P("n", ir.I64))
	a, cp, n := f.Params[0], f.Params[1], f.Params[2]
	b.LoopUnrolled("i", ir.I64c(0), n, 1, 8, func(iv ir.Value) {
		v := b.Load(b.GEP(a, "p", iv), "v")
		w := b.FMul(v, ir.F64c(3), "w")
		x := b.FAdd(v, w, "x")
		b.Store(x, b.GEP(cp, "pc", iv))
	})
	b.Ret(nil)

	setup := func(mm *ir.FlatMem, nn int) []uint64 {
		aA := mm.AllocFor(ir.F64, nn)
		cA := mm.AllocFor(ir.F64, nn)
		for i := 0; i < nn; i++ {
			mm.WriteF64(aA+uint64(i*8), float64(i+1))
		}
		return []uint64{aA, cA, uint64(nn)}
	}
	cfg := DefaultConfig()
	cfg.ReadPorts, cfg.WritePorts, cfg.MaxOutstanding = 8, 8, 64

	rFree := newRig(t, f, cfg, nil)
	argsFree := setup(rFree.space, 64)
	cFree := runToDone(t, rFree, argsFree)

	rLim := newRig(t, f, cfg, map[hw.FUClass]int{hw.FUFPAdder: 1, hw.FUFPMultiplier: 1})
	argsLim := setup(rLim.space, 64)
	cLim := runToDone(t, rLim, argsLim)

	for i := 0; i < 64; i++ {
		want := float64(i+1) * 4 // v + 3v
		gFree := rFree.space.ReadF64(argsFree[1] + uint64(i*8))
		gLim := rLim.space.ReadF64(argsLim[1] + uint64(i*8))
		if gFree != want || gLim != want {
			t.Fatalf("c[%d]: free=%g lim=%g want=%g", i, gFree, gLim, want)
		}
	}
	if !(cLim > cFree) {
		t.Fatalf("limited (%d cy) not slower than dedicated (%d cy)", cLim, cFree)
	}
	// Datapath area shrinks with limits.
	if !(rLim.acc.CDFG.AreaUM2() < rFree.acc.CDFG.AreaUM2()) {
		t.Fatal("FU limits did not reduce area")
	}
}

func TestConservativeMemOrderAblation(t *testing.T) {
	f, setup := buildVecAdd(t)
	cfg := DefaultConfig()
	r1 := newRig(t, f, cfg, nil)
	c1 := runToDone(t, r1, setup(r1.space, 32))

	cfg.ConservativeMemOrder = true
	r2 := newRig(t, f, cfg, nil)
	c2 := runToDone(t, r2, setup(r2.space, 32))
	if !(c1 < c2) {
		t.Fatalf("disambiguation (%d cy) not faster than strict order (%d cy)", c1, c2)
	}
	// Results identical.
	for i := range r1.space.Data {
		if r1.space.Data[i] != r2.space.Data[i] {
			t.Fatal("memory ordering ablation changed results")
		}
	}
}

func TestMMRStartProtocolAndIRQ(t *testing.T) {
	f, setup := buildVecAdd(t)
	r := newRig(t, f, DefaultConfig(), nil)
	irqs := 0
	r.comm.IRQ = func() { irqs++ }
	args := setup(r.space, 8)

	// Program args then set ctrl start|irq-enable, all over the bus.
	wr := func(idx int, val uint64) {
		data := make([]byte, 8)
		binary.LittleEndian.PutUint64(data, val)
		r.comm.MMR.Send(mem.NewWrite(r.comm.MMR.AddrOf(idx), data, nil))
	}
	for i, v := range args {
		wr(ArgReg0+i, v)
	}
	wr(CtrlReg, 1|2)
	r.q.Run()

	if irqs != 1 {
		t.Fatalf("irqs = %d", irqs)
	}
	if r.comm.MMR.Reg(StatusReg)&2 == 0 {
		t.Fatal("done bit not set")
	}
	cA := args[2]
	if got := r.space.ReadF64(cA + 8); got != 3 {
		t.Fatalf("c[1] = %g, want 3", got)
	}
}

func TestStreamWindows(t *testing.T) {
	// Kernel: out[i] = in[i] * 2, reading from a stream-in window and
	// writing to a stream-out window.
	m := ir.NewModule("s")
	b := ir.NewBuilder(m)
	f := b.Func("scale", ir.Void,
		ir.P("in", ir.Ptr(ir.F64)), ir.P("out", ir.Ptr(ir.F64)), ir.P("n", ir.I64))
	in, out, n := f.Params[0], f.Params[1], f.Params[2]
	b.Loop("i", ir.I64c(0), n, 1, func(iv ir.Value) {
		v := b.Load(b.GEP(in, "pi", iv), "v")
		b.Store(b.FMul(v, ir.F64c(2), "d"), b.GEP(out, "po", iv))
	})
	b.Ret(nil)

	r := newRig(t, f, DefaultConfig(), nil)
	inBuf := mem.NewStreamBuffer("in", 64, r.stats)
	outBuf := mem.NewStreamBuffer("out", 64, r.stats)
	inWin := mem.AddrRange{Base: 0xE0000000, Size: 0x1000}
	outWin := mem.AddrRange{Base: 0xE0010000, Size: 0x1000}
	r.comm.AttachStream(inWin, inBuf, StreamIn)
	r.comm.AttachStream(outWin, outBuf, StreamOut)

	nElems := 16
	// Producer: trickle elements in over time (slower than the kernel).
	pushed := 0
	var pump func()
	pump = func() {
		if pushed >= nElems {
			return
		}
		data := make([]byte, 8)
		binary.LittleEndian.PutUint64(data, ir.FloatToBits(ir.F64, float64(pushed+1)))
		if inBuf.Push(data) {
			pushed++
		}
		r.q.After(30000, pump) // one element per 3 accelerator cycles
	}
	pump()

	// Consumer: drain the out buffer as data appears.
	var got []float64
	var drain func()
	drain = func() {
		for {
			d, ok := outBuf.Pop(8)
			if !ok {
				break
			}
			got = append(got, ir.FloatFromBits(ir.F64, binary.LittleEndian.Uint64(d)))
		}
		if len(got) < nElems {
			outBuf.NotifyData(drain)
		}
	}
	drain()

	runToDone(t, r, []uint64{inWin.Base, outWin.Base, uint64(nElems)})
	r.q.Run()
	if len(got) != nElems {
		t.Fatalf("drained %d of %d", len(got), nElems)
	}
	for i, v := range got {
		if v != float64(2*(i+1)) {
			t.Fatalf("out[%d] = %g, want %g", i, v, float64(2*(i+1)))
		}
	}
	if r.comm.StreamStalls.Value() == 0 {
		t.Fatal("expected stream handshake stalls with a slow producer")
	}
}

func TestStallAndActivityStats(t *testing.T) {
	f, setup := buildVecAdd(t)
	cfg := DefaultConfig()
	cfg.ReadPorts, cfg.WritePorts = 1, 1
	r := newRig(t, f, cfg, nil)
	runToDone(t, r, setup(r.space, 64))

	if r.acc.NewExecCycles.Value() == 0 {
		t.Fatal("no execution cycles recorded")
	}
	total := r.acc.NewExecCycles.Value() + r.acc.StallCycles.Value()
	if total > r.acc.ActiveCycles.Value() {
		t.Fatalf("exec+stall (%g) > active (%g)", total, r.acc.ActiveCycles.Value())
	}
	if r.acc.StallCycles.Value() > 0 && r.acc.StallKinds.Total() != r.acc.StallCycles.Value() {
		t.Fatalf("stall kinds (%g) != stall cycles (%g)",
			r.acc.StallKinds.Total(), r.acc.StallCycles.Value())
	}
	if r.acc.Activity.Total() != r.acc.ActiveCycles.Value() {
		t.Fatalf("activity total %g != active cycles %g",
			r.acc.Activity.Total(), r.acc.ActiveCycles.Value())
	}
	// FP adder occupancy must be in (0, 1].
	occ := r.acc.FUOccupancy(hw.FUFPAdder)
	if occ <= 0 || occ > 1 {
		t.Fatalf("fp adder occupancy = %g", occ)
	}
}

func TestPowerReportCategories(t *testing.T) {
	f, setup := buildVecAdd(t)
	r := newRig(t, f, DefaultConfig(), nil)
	runToDone(t, r, setup(r.space, 32))
	elapsed := r.q.Now()
	p := r.acc.Power(r.spm, elapsed)
	if p.DynFU <= 0 || p.DynReg <= 0 {
		t.Fatalf("dynamic datapath power missing: %+v", p)
	}
	if p.DynSPMRead <= 0 || p.DynSPMWrite <= 0 {
		t.Fatalf("SPM dynamic power missing: %+v", p)
	}
	if p.StaticFU <= 0 || p.StaticReg <= 0 || p.StaticSPM <= 0 {
		t.Fatalf("static power missing: %+v", p)
	}
	if p.TotalMW() <= p.DatapathMW() {
		t.Fatal("total power should exceed datapath-only power")
	}
	if p.TotalAreaUM2() <= 0 {
		t.Fatal("no area")
	}
	// Without an SPM the SPM categories are zero.
	p2 := r.acc.Power(nil, elapsed)
	if p2.DynSPMRead != 0 || p2.StaticSPM != 0 {
		t.Fatal("SPM categories leak without an SPM")
	}
}

func TestElaborateCountsAndLimits(t *testing.T) {
	f, _ := buildVecAdd(t)
	g, err := Elaborate(f, hw.Default40nm(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// One fadd in the kernel -> one dedicated FP adder.
	if g.FUCount(hw.FUFPAdder) != 1 {
		t.Fatalf("fp adders = %d", g.FUCount(hw.FUFPAdder))
	}
	// GEPs (3) + iv add (1) -> 4 int adders.
	if g.FUCount(hw.FUIntAdder) != 4 {
		t.Fatalf("int adders = %d", g.FUCount(hw.FUIntAdder))
	}
	if g.RegBits == 0 || g.RegCount == 0 {
		t.Fatal("no registers counted")
	}
	if g.Summary() == "" {
		t.Fatal("empty summary")
	}

	// A limit below demand caps the pool; above demand it is ignored.
	g2, _ := Elaborate(f, hw.Default40nm(), map[hw.FUClass]int{hw.FUIntAdder: 2, hw.FUFPAdder: 99})
	if g2.FUCount(hw.FUIntAdder) != 2 {
		t.Fatalf("limited int adders = %d", g2.FUCount(hw.FUIntAdder))
	}
	if g2.FUCount(hw.FUFPAdder) != 1 {
		t.Fatalf("over-provisioned limit changed count: %d", g2.FUCount(hw.FUFPAdder))
	}
}

func TestDataDependentControlFlow(t *testing.T) {
	// Kernel with a data-dependent branch: count elements > threshold and
	// conditionally transform them — exercises phi resolution on both
	// edges and branchy reservation-queue behaviour.
	m := ir.NewModule("c")
	b := ir.NewBuilder(m)
	f := b.Func("thresh", ir.I64,
		ir.P("a", ir.Ptr(ir.F64)), ir.P("n", ir.I64), ir.P("t", ir.F64))
	a, n, th := f.Params[0], f.Params[1], f.Params[2]
	cnt := b.LoopCarried("i", ir.I64c(0), n, 1, []ir.Value{ir.I64c(0)},
		func(iv ir.Value, cv []ir.Value) []ir.Value {
			p := b.GEP(a, "p", iv)
			v := b.Load(p, "v")
			isBig := b.FCmp(ir.FOGT, v, th, "big")
			newCnt := b.IfValue(isBig, "br", func() ir.Value {
				b.Store(b.FMul(v, ir.F64c(-1), "neg"), p)
				return b.Add(cv[0], ir.I64c(1), "inc")
			}, func() ir.Value {
				return cv[0]
			})
			return []ir.Value{newCnt}
		})
	b.Ret(cnt[0])

	r := newRig(t, f, DefaultConfig(), nil)
	nn := 20
	aA := r.space.AllocFor(ir.F64, nn)
	for i := 0; i < nn; i++ {
		r.space.WriteF64(aA+uint64(i*8), float64(i-10)) // -10..9
	}
	runToDone(t, r, []uint64{aA, uint64(nn), ir.FloatToBits(ir.F64, 0)})
	if got := int64(r.acc.RetBits()); got != 9 { // 1..9 are > 0
		t.Fatalf("count = %d, want 9", got)
	}
	// Positive elements negated, others untouched.
	for i := 0; i < nn; i++ {
		want := float64(i - 10)
		if want > 0 {
			want = -want
		}
		if got := r.space.ReadF64(aA + uint64(i*8)); got != want {
			t.Fatalf("a[%d] = %g, want %g", i, got, want)
		}
	}
}

func TestAcceleratorReinvocation(t *testing.T) {
	f, setup := buildVecAdd(t)
	r := newRig(t, f, DefaultConfig(), nil)
	args := setup(r.space, 8)
	runToDone(t, r, args)
	c1 := r.acc.LastKernelCycles()
	// Run again on the same accelerator.
	runToDone(t, r, args)
	if r.acc.Invocations.Value() != 2 {
		t.Fatalf("invocations = %g", r.acc.Invocations.Value())
	}
	if r.acc.LastKernelCycles() == 0 || c1 == 0 {
		t.Fatal("kernel cycles not tracked per invocation")
	}
}
