package core

import (
	"encoding/binary"
	"fmt"

	"gosalam/internal/hw"
	"gosalam/internal/sim"
	"gosalam/internal/snapshot"
	"gosalam/internal/timeline"
	"gosalam/ir"
)

// AccelConfig are the "device config" knobs of Sec. III-E1.
type AccelConfig struct {
	// ClockMHz is the accelerator clock (independent of system clocks).
	ClockMHz float64
	// FULimits constrains functional units per class; absent/0 means a
	// dedicated unit per static instruction (the default 1-to-1 map).
	FULimits map[hw.FUClass]int
	// ReadPorts/WritePorts bound memory issues per cycle.
	ReadPorts, WritePorts int
	// MaxOutstanding bounds in-flight memory requests per direction.
	MaxOutstanding int
	// ResQueueSize caps resident dynamic ops in the reservation queue.
	ResQueueSize int
	// PipelineLoops fetches the next basic block as soon as the
	// terminator evaluates (loop pipelining). When false, a block must
	// fully drain first — the ablation of design decision 3 in DESIGN.md.
	PipelineLoops bool
	// ConservativeMemOrder disables address-based dynamic disambiguation:
	// memory ops issue strictly in program order (ablation 5).
	ConservativeMemOrder bool
}

// DefaultConfig returns the paper-default accelerator configuration.
func DefaultConfig() AccelConfig {
	return AccelConfig{
		ClockMHz:       100,
		ReadPorts:      2,
		WritePorts:     2,
		MaxOutstanding: 16,
		ResQueueSize:   128,
		PipelineLoops:  true,
	}
}

// Normalized returns the config with unset sizing knobs replaced by their
// defaults, so cold construction, warm reconfiguration, and the static
// analyzer (which must bound the same effective design point the engine
// will run) agree on the knob values.
func (c AccelConfig) Normalized() AccelConfig {
	if c.ResQueueSize <= 0 {
		c.ResQueueSize = 128
	}
	if c.ReadPorts <= 0 {
		c.ReadPorts = 1
	}
	if c.WritePorts <= 0 {
		c.WritePorts = 1
	}
	if c.MaxOutstanding <= 0 {
		c.MaxOutstanding = 16
	}
	return c
}

type opState uint8

const (
	stWaiting opState = iota
	stInflight
	stDone
)

// waiter records a consumer operand slot fed by a producer.
type waiter struct {
	op  *dynOp
	idx int
}

// dynOp is a dynamic instance of a static op, created when its basic block
// is imported into the reservation queue. Objects are recycled through the
// accelerator's pool, and their completion callbacks are bound once per
// object, so steady-state fetch/issue/commit never allocates.
type dynOp struct {
	st  *StaticOp
	seq uint64

	operands []uint64
	// pending marks operand slots still awaiting a producer: a store's
	// address can disambiguate as soon as its pointer operand resolves,
	// even while its data operand is pending.
	pending   []bool
	waitingOn int
	waiters   []waiter

	state opState
	val   uint64

	// qi is the op's current index in resQ, kept up to date through
	// compaction so commit-time wakes can lower the ready watermark.
	qi int32

	// Memory fields.
	addr    uint64
	size    int
	arrived bool // response received, committing at next edge
	// buf stages outbound store data; the memory system consumes it before
	// completion, and the op is not recycled until it commits.
	buf [8]byte

	// arriveFn marks the op arrived and wakes the engine; readDoneFn
	// additionally captures load data. Both close over the op once, at
	// first allocation.
	arriveFn   func()
	readDoneFn func([]byte)

	// ev is the pending compute-latency event (issueCompute), kept so a
	// checkpoint can claim it; it goes stale the moment the event fires.
	ev sim.EventID
}

func (d *dynOp) isLoad() bool  { return d.st.Load }
func (d *dynOp) isStore() bool { return d.st.Store }

// defRec tracks the newest definition of a static SSA value: either a
// committed bit pattern or the dynamic op that will produce it. live
// guards against reading a register never written this invocation.
type defRec struct {
	val      uint64
	producer *dynOp
	live     bool
}

// Accelerator is one modeled hardware accelerator: a statically elaborated
// CDFG executed by the dynamic LLVM runtime engine, attached to the system
// through a communications interface.
type Accelerator struct {
	sim.Clocked

	CDFG *CDFG
	Cfg  AccelConfig
	Comm *CommInterface

	// OnDone fires when the kernel returns and all queues drain.
	OnDone func()

	// engine state
	resQ []*dynOp
	// pendingMem holds unfinished memory ops in program order, so
	// disambiguation scans only memory traffic instead of the whole
	// reservation queue.
	pendingMem []*dynOp
	// lastDef is indexed by producer StaticOp.ID.
	lastDef  []defRec
	opPool   []*dynOp
	seq      uint64
	inflight int
	argBits  []uint64
	// readyCount tracks resQ entries that are waiting with all operands
	// resolved; readyLow is a lower bound on the smallest such index. The
	// issue scan starts at the watermark and skips entirely when nothing
	// is ready.
	readyCount int
	readyLow   int
	// resident counts non-committed resQ entries (the window-check scan
	// in handleTerminator reduced to a counter).
	resident int
	// Incremental cycle-classification counters: resident entries by kind
	// and memory ops in flight, maintained at state transitions so
	// recordCycleStats never rescans the reservation queue.
	pendLoads, pendStores, pendComp int
	inflLoads, inflStores           int
	// arrivals counts in-flight ops whose completion callback has fired
	// but which have not yet committed; the commit-phase scan is skipped
	// when it is zero.
	arrivals int
	// zeroLatProgress is set when a zero-latency commit or block fetch
	// happens inside the issue scan: only those events can unlock earlier
	// queue entries within the same cycle.
	zeroLatProgress bool
	// Per-cycle structural-hazard flags: a ready op failed to issue
	// because of read ports, write ports, FU pools, or memory ordering.
	hazLoad, hazStore, hazFU, hazOrder bool
	// profile, when non-nil, receives a per-cycle sample (EnableProfile).
	profile *CycleProfile
	// Per-cycle issue counters for the profile.
	cycLoads, cycStores, cycFP, cycInt, cycOther uint16
	// rec, when non-nil, receives one stall-attributed Cycle per edge plus
	// busy slices per FU class and memory port (AttachTimeline). The
	// recorder only observes; the sole engine state feeding it —
	// fetchBlocked, set when a terminator could not fetch its next block —
	// is maintained unconditionally like the haz flags, so the schedule is
	// identical whether a recorder is attached or not.
	rec             timeline.Recorder
	tlCycle         timeline.LaneID
	tlLoad, tlStore timeline.LaneID
	tlFU            []timeline.LaneID
	fetchBlocked    bool

	finished bool
	running  bool
	retBits  uint64

	// Per-class counters indexed by hw.FUClass. opStamp implements the
	// per-static-op II=1 rule: a stamp equal to cycleStamp means the op
	// already initiated this cycle (no per-cycle map clears).
	fuBusy     []int // unpipelined units occupied
	fuIssued   []int // issue slots used this cycle
	fuTotal    []int // instantiated units (from CDFG.FUTotal)
	opStamp    []uint64
	cycleStamp uint64
	fetches    int // block fetches this cycle

	startCycle uint64

	// Pre-bound stat buckets, lazily resolved at first increment so key
	// insertion order matches the string-keyed code this replaces.
	issuedBk       []sim.Bucket // per FU class
	issuedLoadBk   sim.Bucket
	issuedStoreBk  sim.Bucket
	occBk          []sim.Bucket // per FU class
	stallBk, actBk [8]sim.Bucket
	hazBk          [16]sim.Bucket

	// Stats.
	ActiveCycles  *sim.Scalar
	IssuedByClass *sim.Vector
	Committed     *sim.Scalar
	NewExecCycles *sim.Scalar
	StallCycles   *sim.Scalar
	StallKinds    *sim.Vector
	// HazardCycles counts cycles where at least one ready operation was
	// blocked by a structural hazard (even if other ops issued) — the
	// per-source stall accounting behind Fig. 14(b).
	HazardCycles *sim.Scalar
	HazardKinds  *sim.Vector
	Activity     *sim.Vector
	OccupancySum *sim.Vector
	FUEnergyPJ   *sim.Scalar
	RegReadPJ    *sim.Scalar
	RegWritePJ   *sim.Scalar
	Invocations  *sim.Scalar
	KernelCycles *sim.Distribution
}

// NewAccelerator builds an accelerator around an elaborated CDFG. The
// communications interface must already be constructed; its port counts
// are overridden from cfg.
func NewAccelerator(name string, q *sim.EventQueue, g *CDFG, cfg AccelConfig,
	comm *CommInterface, stats *sim.Group) *Accelerator {
	cfg = cfg.Normalized()
	nc := hw.NumFUClasses()
	a := &Accelerator{
		CDFG: g, Cfg: cfg, Comm: comm,
		lastDef:  make([]defRec, g.NumOps),
		fuBusy:   make([]int, nc),
		fuIssued: make([]int, nc),
		fuTotal:  make([]int, nc),
		opStamp:  make([]uint64, g.NumOps),
		issuedBk: make([]sim.Bucket, nc),
		occBk:    make([]sim.Bucket, nc),
	}
	for _, c := range hw.AllFUClasses() {
		a.fuTotal[c] = g.FUTotal[c]
	}
	comm.ReadPorts = cfg.ReadPorts
	comm.WritePorts = cfg.WritePorts
	comm.MaxOutstanding = cfg.MaxOutstanding
	clk := sim.NewClockDomainMHz(name+".clk", cfg.ClockMHz)
	a.InitClocked(name, q, clk)
	a.CycleFn = a.cycle

	gr := stats.Child(name)
	a.ActiveCycles = gr.Scalar("cycles", "active engine cycles")
	a.IssuedByClass = gr.Vector("issued", "ops issued by FU class")
	a.Committed = gr.Scalar("committed", "dynamic ops committed")
	a.NewExecCycles = gr.Scalar("exec_cycles", "cycles issuing at least one op")
	a.StallCycles = gr.Scalar("stall_cycles", "cycles with work but no issue")
	a.StallKinds = gr.Vector("stall_kinds", "stalled cycles by pending-op mix")
	a.HazardCycles = gr.Scalar("hazard_cycles", "cycles with a ready op blocked by a structural hazard")
	a.HazardKinds = gr.Vector("hazard_kinds", "hazard cycles by blocking resource")
	a.Activity = gr.Vector("activity", "cycles by load/store/fp overlap")
	a.OccupancySum = gr.Vector("occupancy_sum", "in-flight op-cycles by class")
	a.FUEnergyPJ = gr.Scalar("fu_energy_pj", "dynamic FU energy")
	a.RegReadPJ = gr.Scalar("reg_read_pj", "register-file read energy")
	a.RegWritePJ = gr.Scalar("reg_write_pj", "register-file write energy")
	a.Invocations = gr.Scalar("invocations", "kernel invocations")
	a.KernelCycles = gr.Distribution("kernel_cycles", "cycles per invocation")

	// Wire the MMR start protocol: writing CTRL bit0 launches the kernel
	// with arguments taken from the argument registers. The closure reads
	// a.CDFG (not the constructor's g) so Reconfigure can swap the graph.
	comm.MMR.OnWrite = func(idx int, val uint64) {
		if idx == CtrlReg && val&1 != 0 && !a.running {
			n := len(a.CDFG.F.Params)
			args := make([]uint64, n)
			for i := 0; i < n; i++ {
				args[i] = comm.MMR.Reg(ArgReg0 + i)
			}
			a.Start(args)
		}
	}
	return a
}

// Reconfigure rebinds an idle accelerator to a (possibly different) shared
// immutable CDFG and design-point configuration for a warm-started run.
// The caller must Reset the owning EventQueue and stats group around it;
// this method rewinds every piece of engine state to its just-constructed
// zero value — resizing the per-static-op slices for the new graph and
// keeping the dynOp pool — so a warm run is indistinguishable from a cold
// one. Panics if a kernel is still executing.
func (a *Accelerator) Reconfigure(g *CDFG, cfg AccelConfig) {
	if a.running {
		panic(fmt.Sprintf("core: accelerator %s reconfigured while busy", a.Name()))
	}
	cfg = cfg.Normalized()
	if cfg.ClockMHz != a.Cfg.ClockMHz {
		a.Clk = sim.NewClockDomainMHz(a.Name()+".clk", cfg.ClockMHz)
	}
	a.CDFG, a.Cfg = g, cfg
	if cap(a.lastDef) < g.NumOps {
		a.lastDef = make([]defRec, g.NumOps)
		a.opStamp = make([]uint64, g.NumOps)
	} else {
		a.lastDef = a.lastDef[:g.NumOps]
		a.opStamp = a.opStamp[:g.NumOps]
	}
	for i := range a.lastDef {
		a.lastDef[i] = defRec{}
	}
	for i := range a.opStamp {
		a.opStamp[i] = 0
	}
	for i := range a.fuTotal {
		a.fuTotal[i], a.fuBusy[i], a.fuIssued[i] = 0, 0, 0
	}
	for _, c := range hw.AllFUClasses() {
		a.fuTotal[c] = g.FUTotal[c]
	}
	a.Comm.ReadPorts = cfg.ReadPorts
	a.Comm.WritePorts = cfg.WritePorts
	a.Comm.MaxOutstanding = cfg.MaxOutstanding
	a.resQ = a.resQ[:0]
	a.pendingMem = a.pendingMem[:0]
	a.seq, a.inflight = 0, 0
	a.readyCount, a.readyLow, a.resident = 0, 0, 0
	a.pendLoads, a.pendStores, a.pendComp = 0, 0, 0
	a.inflLoads, a.inflStores = 0, 0
	a.arrivals = 0
	a.zeroLatProgress = false
	a.hazLoad, a.hazStore, a.hazFU, a.hazOrder = false, false, false, false
	a.fetchBlocked = false
	a.profile = nil
	a.cycLoads, a.cycStores, a.cycFP, a.cycInt, a.cycOther = 0, 0, 0, 0, 0
	a.finished, a.running, a.retBits = false, false, 0
	a.cycleStamp, a.fetches, a.startCycle = 0, 0, 0
	a.ResetClocked()
}

// Busy reports whether a kernel is executing.
func (a *Accelerator) Busy() bool { return a.running }

// RetBits returns the bits of the last kernel return value.
func (a *Accelerator) RetBits() uint64 { return a.retBits }

// LastKernelCycles returns the cycle count of the most recent invocation.
func (a *Accelerator) LastKernelCycles() uint64 {
	return uint64(a.KernelCycles.Max())
}

// Start launches the kernel with the given argument bits.
func (a *Accelerator) Start(args []uint64) {
	if a.running {
		panic(fmt.Sprintf("core: accelerator %s started while busy", a.Name()))
	}
	f := a.CDFG.F
	if len(args) != len(f.Params) {
		panic(fmt.Sprintf("core: %s takes %d args, got %d", f.Name(), len(f.Params), len(args)))
	}
	a.running = true
	a.finished = false
	a.resQ = a.resQ[:0]
	a.pendingMem = a.pendingMem[:0]
	a.inflight = 0
	a.readyCount, a.readyLow, a.resident = 0, 0, 0
	a.pendLoads, a.pendStores, a.pendComp = 0, 0, 0
	a.inflLoads, a.inflStores = 0, 0
	a.arrivals = 0
	for i := range a.lastDef {
		a.lastDef[i] = defRec{}
	}
	for i := range a.fuBusy {
		a.fuBusy[i] = 0
	}
	a.argBits = append(a.argBits[:0], args...)
	a.startCycle = a.Cycles
	a.Invocations.Inc(1)
	a.Comm.MMR.SetReg(StatusReg, 1) // busy
	a.fetch(f.Entry(), nil)
	a.Activate()
}

// newDynOp takes an op from the pool (or allocates one, binding its
// completion callbacks for the object's lifetime).
func (a *Accelerator) newDynOp() *dynOp {
	if n := len(a.opPool); n > 0 {
		d := a.opPool[n-1]
		a.opPool = a.opPool[:n-1]
		return d
	}
	d := &dynOp{}
	d.arriveFn = func() {
		d.arrived = true
		a.arrivals++
		a.Activate()
	}
	d.readDoneFn = func(data []byte) {
		var bits uint64
		switch d.size {
		case 1:
			bits = uint64(data[0])
		case 2:
			bits = uint64(binary.LittleEndian.Uint16(data))
		case 4:
			bits = uint64(binary.LittleEndian.Uint32(data))
		default:
			bits = binary.LittleEndian.Uint64(data)
		}
		d.val = bits
		d.arrived = true
		a.arrivals++
		a.Activate()
	}
	return d
}

// recycle returns a committed op to the pool. Safe at compaction time: its
// waiters were cleared at commit, lastDef no longer names it as producer,
// and its completion events (if any) fired before it could commit.
func (a *Accelerator) recycle(d *dynOp) {
	d.st = nil
	a.opPool = append(a.opPool, d)
}

// fetch imports a basic block into the reservation queue, generating
// dynamic dependencies by searching the newest definitions (the paper's
// upward search of the reservation and in-flight queues).
func (a *Accelerator) fetch(b *ir.Block, prev *ir.Block) {
	for _, st := range a.CDFG.BlockOps[b] {
		in := st.In
		d := a.newDynOp()
		d.st, d.seq = st, a.seq
		a.seq++
		d.state = stWaiting
		d.arrived = false
		d.waitingOn = 0
		srcs := st.Srcs
		if in.Op == ir.OpPhi {
			// Resolve the incoming edge now; the mux selects one operand.
			k := -1
			for j, blk := range in.Blocks {
				if blk == prev {
					k = j
					break
				}
			}
			if k < 0 {
				panic(fmt.Sprintf("core: phi %%%s has no incoming from %s", in.Name, prev.Name()))
			}
			srcs = st.PhiSrcs[k : k+1]
		}
		n := len(srcs)
		if cap(d.operands) < n {
			d.operands = make([]uint64, n)
			d.pending = make([]bool, n)
		} else {
			d.operands = d.operands[:n]
			d.pending = d.pending[:n]
		}
		for k := range srcs {
			s := &srcs[k]
			d.pending[k] = false
			switch s.kind {
			case srcDef:
				rec := &a.lastDef[s.idx]
				if !rec.live {
					panic(fmt.Sprintf("core: %%%s uses an undefined value", in.Name))
				}
				if rec.producer != nil {
					d.waitingOn++
					d.pending[k] = true
					rec.producer.waiters = append(rec.producer.waiters, waiter{op: d, idx: k})
				} else {
					d.operands[k] = rec.val
				}
			case srcParam:
				d.operands[k] = a.argBits[s.idx]
			default:
				d.operands[k] = s.bits
			}
		}
		if st.Result {
			a.lastDef[st.ID] = defRec{producer: d, live: true}
		}
		d.qi = int32(len(a.resQ))
		a.resQ = append(a.resQ, d)
		a.resident++
		switch {
		case st.Load:
			a.pendLoads++
		case st.Store:
			a.pendStores++
		default:
			a.pendComp++
		}
		if d.waitingOn == 0 {
			a.readyCount++
			if int(d.qi) < a.readyLow {
				a.readyLow = int(d.qi)
			}
		}
		if st.Mem {
			a.pendingMem = append(a.pendingMem, d)
		}
	}
}

// commit finishes a dynamic op: writes its register, charges energy, wakes
// consumers.
func (a *Accelerator) commit(d *dynOp) {
	st := d.st
	if d.state == stWaiting {
		// Zero-latency and terminator commits consume a ready entry.
		a.readyCount--
	} else if d.state == stInflight && st.Mem {
		if st.Store {
			a.inflStores--
		} else {
			a.inflLoads--
		}
	}
	d.state = stDone
	a.resident--
	switch {
	case st.Load:
		a.pendLoads--
	case st.Store:
		a.pendStores--
	default:
		a.pendComp--
	}
	a.Committed.Inc(1)
	if st.Class != hw.FUNone {
		a.FUEnergyPJ.Inc(st.EnergyPJ)
		if !st.Pipelined {
			a.fuBusy[st.Class]--
		}
	}
	if st.Result {
		a.RegWritePJ.Inc(st.WritePJ)
		if rec := &a.lastDef[st.ID]; rec.producer == d {
			rec.val = d.val
			rec.producer = nil
		}
	}
	for _, w := range d.waiters {
		w.op.operands[w.idx] = d.val
		w.op.pending[w.idx] = false
		w.op.waitingOn--
		if w.op.waitingOn == 0 {
			// The waiter becomes issuable; it can sit below the current
			// watermark (wakes land at arbitrary queue positions).
			a.readyCount++
			if int(w.op.qi) < a.readyLow {
				a.readyLow = int(w.op.qi)
			}
		}
	}
	d.waiters = d.waiters[:0]
}

// evaluate computes an op's value from its resolved operands — the
// execute-in-execute step shared with the functional interpreter.
func (a *Accelerator) evaluate(d *dynOp) uint64 {
	in := d.st.In
	ops := d.operands
	switch {
	case in.Op.IsBinOp():
		return ir.EvalBin(in.Op, in.T, ops[0], ops[1])
	case in.Op == ir.OpICmp:
		return ir.EvalICmp(in.Pred, in.Args[0].Type(), ops[0], ops[1])
	case in.Op == ir.OpFCmp:
		return ir.EvalFCmp(in.Pred, in.Args[0].Type(), ops[0], ops[1])
	case in.Op.IsCast():
		return ir.EvalCast(in.Op, in.Args[0].Type(), in.T, ops[0])
	case in.Op == ir.OpGEP:
		return ir.EvalGEP(in, ops[0], ops[1:])
	case in.Op == ir.OpPhi:
		return ops[0]
	case in.Op == ir.OpSelect:
		if ops[0] != 0 {
			return ops[1]
		}
		return ops[2]
	case in.Op == ir.OpCall:
		return ir.EvalCall(in.Callee, in.T, ops)
	}
	panic(fmt.Sprintf("core: cannot evaluate %s", in.Op))
}

// memOrderOK applies dynamic disambiguation: an access may issue only if
// no older, unfinished access could alias it.
func (a *Accelerator) memOrderOK(d *dynOp) bool {
	for _, o := range a.pendingMem {
		if o.seq >= d.seq {
			break
		}
		if o.state == stDone {
			continue
		}
		if a.Cfg.ConservativeMemOrder {
			return false // strict program order among memory ops
		}
		dAddr, dSize := d.effAddr()
		dWin := a.Comm.WindowIndex(dAddr)
		if d.isLoad() && o.isLoad() {
			// Loads reorder freely — except within a stream window, where
			// pops must stay in program order.
			if dWin < 0 {
				continue
			}
			if !o.addrKnown() {
				return false
			}
			oAddr, _ := o.effAddr()
			if a.Comm.WindowIndex(oAddr) == dWin && o.state == stWaiting {
				return false
			}
			continue
		}
		if !o.addrKnown() {
			return false // older access with unknown address
		}
		oAddr, oSize := o.effAddr()
		// Same-window stores (FIFO pushes) stay in program order even
		// though their addresses never overlap.
		if dWin >= 0 && a.Comm.WindowIndex(oAddr) == dWin && o.state == stWaiting {
			return false
		}
		if oAddr < dAddr+uint64(dSize) && dAddr < oAddr+uint64(oSize) {
			return false // overlap
		}
	}
	return true
}

// addrKnown reports whether the op's address operand has resolved.
func (d *dynOp) addrKnown() bool {
	if d.isLoad() {
		return !d.pending[0]
	}
	return !d.pending[1]
}

// effAddr returns the access address and size for a resolved memory op.
func (d *dynOp) effAddr() (uint64, int) {
	if d.st.Load {
		return d.operands[0], d.st.AccSize
	}
	return d.operands[1], d.st.AccSize
}

// tryIssueMem attempts to issue a resolved memory op. The O(1) port check
// runs before the O(pending) disambiguation scan.
func (a *Accelerator) tryIssueMem(d *dynOp) bool {
	if d.isLoad() {
		if !a.Comm.CanRead() {
			a.hazLoad = true
			return false
		}
		if !a.memOrderOK(d) {
			a.hazOrder = true
			return false
		}
		addr, size := d.effAddr()
		d.addr, d.size = addr, size
		a.RegReadPJ.Inc(d.st.MemReadPJ) // address register
		a.Comm.TagNext(snapshot.OwnerEngine, d.seq)
		ok := a.Comm.IssueRead(addr, size, d.readDoneFn)
		if !ok {
			return false // stream empty; retry
		}
		d.state = stInflight
		a.readyCount--
		a.inflight++
		a.inflLoads++
		return true
	}
	// Store.
	if !a.Comm.CanWrite() {
		a.hazStore = true
		return false
	}
	if !a.memOrderOK(d) {
		a.hazOrder = true
		return false
	}
	addr, size := d.effAddr()
	d.addr, d.size = addr, size
	data := d.buf[:size]
	switch size {
	case 1:
		data[0] = byte(d.operands[0])
	case 2:
		binary.LittleEndian.PutUint16(data, uint16(d.operands[0]))
	case 4:
		binary.LittleEndian.PutUint32(data, uint32(d.operands[0]))
	default:
		binary.LittleEndian.PutUint64(data, d.operands[0])
	}
	a.RegReadPJ.Inc(d.st.MemReadPJ)
	a.Comm.TagNext(snapshot.OwnerEngine, d.seq)
	ok := a.Comm.IssueWrite(addr, data, d.arriveFn)
	if !ok {
		return false
	}
	d.state = stInflight
	a.readyCount--
	a.inflight++
	a.inflStores++
	return true
}

// fuAvailable checks structural availability for a compute op. Only pool
// exhaustion counts as a hazard for stall analysis: a second initiation of
// the same static instruction in one cycle is ordinary pipelining
// backpressure, not resource contention.
func (a *Accelerator) fuAvailable(d *dynOp) bool {
	c := d.st.Class
	if c == hw.FUNone {
		return true
	}
	if a.opStamp[d.st.ID] == a.cycleStamp {
		return false // one initiation per static instruction per cycle
	}
	if a.fuIssued[c]+a.fuBusy[c] >= a.fuTotal[c] {
		a.hazFU = true
		return false
	}
	return true
}

// issueCompute launches a compute op (immediate functional evaluation,
// delayed commit — Sec. III-B2).
func (a *Accelerator) issueCompute(d *dynOp) {
	c := d.st.Class
	if c != hw.FUNone {
		a.fuIssued[c]++
		a.opStamp[d.st.ID] = a.cycleStamp
		if !d.st.Pipelined {
			a.fuBusy[c]++
		}
	}
	for _, e := range d.st.ReadPJ {
		a.RegReadPJ.Inc(e)
	}
	d.val = a.evaluate(d)
	if d.st.Latency <= 0 {
		a.commit(d) // zero-latency chaining (muxes, control)
		a.zeroLatProgress = true
		return
	}
	d.state = stInflight
	a.readyCount--
	a.inflight++
	lat := d.st.Latency
	// PriBeforeClock: the result is ready when the commit edge runs, so a
	// latency-L op commits exactly L cycles after issue. The pre-bound
	// arriveFn keeps latency events allocation-free.
	d.ev = a.Q.Schedule(a.Q.Now()+a.Clk.CyclesToTicks(uint64(lat)), sim.PriBeforeClock, d.arriveFn)
}

// handleTerminator evaluates a br/ret, triggering the next block fetch.
func (a *Accelerator) handleTerminator(d *dynOp) bool {
	in := d.st.In
	if a.fetches >= 2 {
		a.fetchBlocked = true
		return false // bound control work per cycle
	}
	if !a.Cfg.PipelineLoops {
		// Drain the queue before moving on: without loop pipelining the
		// terminator is the only op of its block left uncommitted, so any
		// second resident op is an older one.
		if a.resident > 1 {
			a.fetchBlocked = true
			return false
		}
	}
	switch in.Op {
	case ir.OpRet:
		if len(in.Args) == 1 {
			a.retBits = d.operands[0]
		}
		a.finished = true
		a.commit(d)
		return true
	case ir.OpBr:
		var next *ir.Block
		if len(in.Args) == 0 {
			next = in.Blocks[0]
		} else if d.operands[0] != 0 {
			next = in.Blocks[0]
		} else {
			next = in.Blocks[1]
		}
		// Window check: defer the fetch while other work is resident, but
		// never wedge — once only this terminator remains, the next block
		// must be admitted even if it exceeds the configured window.
		if resident := a.resident; resident > 1 && resident-1+len(next.Instrs) > a.Cfg.ResQueueSize {
			a.fetchBlocked = true
			return false // window full; retry next cycle
		}
		from := in.Block()
		a.commit(d)
		a.fetches++
		a.fetch(next, from)
		a.zeroLatProgress = true
		return true
	}
	panic("core: unknown terminator")
}

// cycle is the runtime scheduler: commit, then issue in program order.
func (a *Accelerator) cycle() bool {
	a.ActiveCycles.Inc(1)
	a.Comm.NewCycle()
	for i := range a.fuIssued {
		a.fuIssued[i] = 0
	}
	a.cycleStamp++
	a.fetches = 0
	a.hazLoad, a.hazStore, a.hazFU, a.hazOrder = false, false, false, false
	a.fetchBlocked = false
	a.cycLoads, a.cycStores, a.cycFP, a.cycInt, a.cycOther = 0, 0, 0, 0, 0

	// Commit phase: everything whose result arrived since the last edge.
	// The arrivals counter (bumped by the completion callbacks) bounds the
	// scan: it is skipped outright on cycles with nothing to commit and
	// stops at the last arrived op otherwise.
	for qi := 0; qi < len(a.resQ) && a.arrivals > 0; qi++ {
		d := a.resQ[qi]
		if d.state == stInflight && d.arrived {
			a.inflight--
			a.arrivals--
			a.commit(d)
		}
	}

	// Issue phase: scan in program order, starting at the ready watermark
	// (every entry below it is either in flight or awaiting operands). A
	// rescan is only useful when a zero-latency commit or a block fetch
	// happened — those are the only same-cycle events that can unlock
	// earlier queue entries or add new ones; latency-bearing issues commit
	// at later edges. When nothing is ready the phase is skipped outright.
	issued := 0
	issuedFP := false
	for rescan := true; rescan && a.readyCount > 0; {
		a.zeroLatProgress = false
		for a.readyLow < len(a.resQ) {
			d := a.resQ[a.readyLow]
			if d.state == stWaiting && d.waitingOn == 0 {
				break
			}
			a.readyLow++
		}
		// readyCount upper-bounds the remaining ready entries: issues and
		// zero-latency commits keep it exact, so once it reaches zero no
		// entry above qi can be issuable and the scan can stop early.
		for qi := a.readyLow; qi < len(a.resQ) && a.readyCount > 0; qi++ {
			d := a.resQ[qi]
			if d.state != stWaiting || d.waitingOn > 0 {
				continue
			}
			st := d.st
			switch {
			case st.Term:
				if a.handleTerminator(d) {
					issued++
					a.incIssued(st.Class)
				}
			case st.Mem:
				if a.tryIssueMem(d) {
					issued++
					if st.Store {
						a.cycStores++
						if !a.issuedStoreBk.Valid() {
							a.issuedStoreBk = a.IssuedByClass.Bucket("store")
						}
						a.issuedStoreBk.Inc(1)
					} else {
						a.cycLoads++
						if !a.issuedLoadBk.Valid() {
							a.issuedLoadBk = a.IssuedByClass.Bucket("load")
						}
						a.issuedLoadBk.Inc(1)
					}
				}
			default:
				if a.fuAvailable(d) {
					a.issueCompute(d)
					issued++
					if st.FP {
						issuedFP = true
						a.cycFP++
					} else {
						switch st.Class {
						case hw.FUIntAdder, hw.FUIntMultiplier, hw.FUIntDivider,
							hw.FUShifter, hw.FUBitwise, hw.FUComparator:
							a.cycInt++
						default:
							a.cycOther++
						}
					}
					a.incIssued(st.Class)
				}
			}
		}
		rescan = a.zeroLatProgress
	}

	// Compact committed ops out of the queues: memory list first, then the
	// reservation queue, where committed ops return to the pool. Surviving
	// ops get fresh queue indices and the ready watermark is rebuilt.
	// Compaction is amortized: committed entries linger until they are at
	// least a quarter of the queue, because every scan (commit, issue,
	// disambiguation) already skips stDone entries and all architectural
	// state — window checks, stall classification, profiling — reads the
	// resident counter, never the queue length. Deferral therefore changes
	// no simulated behaviour, only when the O(queue) rewrite is paid.
	// readyLow stays a (possibly stale but valid) lower bound between
	// compactions; the next issue phase advances it.
	if dead := len(a.resQ) - a.resident; dead > 0 && dead*4 >= len(a.resQ) {
		keptMem := a.pendingMem[:0]
		for _, d := range a.pendingMem {
			if d.state != stDone {
				keptMem = append(keptMem, d)
			}
		}
		a.pendingMem = keptMem
		kept := a.resQ[:0]
		newLow := len(a.resQ)
		for _, d := range a.resQ {
			if d.state == stDone {
				a.recycle(d)
				continue
			}
			d.qi = int32(len(kept))
			if d.state == stWaiting && d.waitingOn == 0 && int(d.qi) < newLow {
				newLow = int(d.qi)
			}
			kept = append(kept, d)
		}
		a.resQ = kept
		if newLow > len(kept) {
			newLow = len(kept)
		}
		a.readyLow = newLow
	}

	// Cycle-level statistics (Sec. III-C2).
	a.recordCycleStats(issued, issuedFP)

	if a.finished && a.resident == 0 && a.inflight == 0 {
		// Deferred compaction can leave committed entries behind; recycle
		// them now so the pool is full for the next kernel invocation.
		for _, d := range a.resQ {
			a.recycle(d)
		}
		a.resQ = a.resQ[:0]
		a.pendingMem = a.pendingMem[:0]
		a.readyLow = 0
		a.running = false
		kc := a.Cycles - a.startCycle
		a.KernelCycles.Sample(float64(kc))
		a.Comm.MMR.SetReg(StatusReg, 2) // done
		if a.Comm.MMR.Reg(CtrlReg)&2 != 0 && a.Comm.IRQ != nil {
			a.Comm.IRQ()
		}
		if a.OnDone != nil {
			a.OnDone()
		}
		return false
	}
	return true
}

// incIssued bumps the per-class issue counter through a lazily bound
// bucket handle (bound at first issue, preserving key insertion order).
func (a *Accelerator) incIssued(c hw.FUClass) {
	bk := &a.issuedBk[c]
	if !bk.Valid() {
		*bk = a.IssuedByClass.Bucket(c.String())
	}
	bk.Inc(1)
}

// incOccupancy is incIssued's counterpart for the occupancy vector.
func (a *Accelerator) incOccupancy(c hw.FUClass, n float64) {
	bk := &a.occBk[c]
	if !bk.Valid() {
		*bk = a.OccupancySum.Bucket(c.String())
	}
	bk.Inc(n)
}

// Cycle-classification keys precomputed per flag mask, replacing the
// per-cycle string concatenation the stats used to do.
var (
	stallKeys = [8]string{
		"other", "load", "store", "load+store",
		"compute", "load+compute", "store+compute", "load+store+compute",
	}
	hazardKeys = [16]string{
		"", "load_ports", "store_ports", "load_ports+store_ports",
		"fu", "load_ports+fu", "store_ports+fu", "load_ports+store_ports+fu",
		"mem_order", "load_ports+mem_order", "store_ports+mem_order",
		"load_ports+store_ports+mem_order", "fu+mem_order",
		"load_ports+fu+mem_order", "store_ports+fu+mem_order",
		"load_ports+store_ports+fu+mem_order",
	}
	activityKeys = [8]string{
		"none", "load", "store", "load+store",
		"fp", "load+fp", "store+fp", "load+store+fp",
	}
)

// recordCycleStats classifies the cycle for the occupancy/stall analyses
// behind Figs. 14 and 15.
func (a *Accelerator) recordCycleStats(issued int, issuedFP bool) {
	// The classification counters are maintained at state transitions
	// (fetch, memory issue, commit), so this reads O(1) state instead of
	// rescanning the reservation queue every cycle.
	loadsInFlight, storesInFlight := a.inflLoads, a.inflStores
	pendLoad, pendStore, pendComp := a.pendLoads > 0, a.pendStores > 0, a.pendComp > 0
	// FU occupancy: pipelined units are busy when they initiate an op
	// this cycle; unpipelined units while an op is resident. fuAvailable
	// keeps fuIssued+fuBusy <= total, so occupancy stays within [0, 1].
	for c := range a.fuIssued {
		if n := a.fuIssued[c]; n > 0 && a.CDFG.Profile.Spec(hw.FUClass(c)).Pipelined {
			a.incOccupancy(hw.FUClass(c), float64(n))
		}
	}
	for c := range a.fuBusy {
		if n := a.fuBusy[c]; n > 0 {
			a.incOccupancy(hw.FUClass(c), float64(n))
		}
	}
	if a.hazLoad || a.hazStore || a.hazFU || a.hazOrder {
		a.HazardCycles.Inc(1)
		mask := 0
		if a.hazLoad {
			mask |= 1
		}
		if a.hazStore {
			mask |= 2
		}
		if a.hazFU {
			mask |= 4
		}
		if a.hazOrder {
			mask |= 8
		}
		bk := &a.hazBk[mask]
		if !bk.Valid() {
			*bk = a.HazardKinds.Bucket(hazardKeys[mask])
		}
		bk.Inc(1)
	}
	if issued > 0 {
		a.NewExecCycles.Inc(1)
	} else if a.resident > 0 {
		a.StallCycles.Inc(1)
		mask := 0
		if pendLoad {
			mask |= 1
		}
		if pendStore {
			mask |= 2
		}
		if pendComp {
			mask |= 4
		}
		bk := &a.stallBk[mask]
		if !bk.Valid() {
			*bk = a.StallKinds.Bucket(stallKeys[mask])
		}
		bk.Inc(1)
	}
	mask := 0
	if loadsInFlight > 0 {
		mask |= 1
	}
	if storesInFlight > 0 {
		mask |= 2
	}
	if issuedFP {
		mask |= 4
	}
	bk := &a.actBk[mask]
	if !bk.Valid() {
		*bk = a.Activity.Bucket(activityKeys[mask])
	}
	bk.Inc(1)

	if a.profile != nil {
		var haz uint8
		if a.hazLoad {
			haz |= HazLoadPorts
		}
		if a.hazStore {
			haz |= HazStorePorts
		}
		if a.hazFU {
			haz |= HazFUPool
		}
		if a.hazOrder {
			haz |= HazMemOrder
		}
		resident := a.resident
		if resident > 0xffff {
			resident = 0xffff
		}
		a.profile.record(CycleSample{
			Cycle:    a.Cycles - a.startCycle,
			Loads:    a.cycLoads,
			Stores:   a.cycStores,
			FPOps:    a.cycFP,
			IntOps:   a.cycInt,
			Other:    a.cycOther,
			Resident: uint16(resident),
			Stalled:  issued == 0 && a.resident > 0,
			Hazard:   haz,
		})
	}
	if a.rec != nil {
		a.recordTimeline(issued)
	}
}

// AttachTimeline binds recorder lanes for the engine: one stall-attributed
// cycle lane, load/store port lanes, and one lane per instantiated FU
// class. A nil recorder detaches. Call after Reconfigure when the CDFG or
// FU limits changed, so the lane set matches the instantiated units.
func (a *Accelerator) AttachTimeline(rec timeline.Recorder) {
	a.rec = rec
	if rec == nil {
		return
	}
	name := a.Name()
	a.tlCycle = rec.Lane(name, "engine")
	a.tlLoad = rec.Lane(name, "port.load")
	a.tlStore = rec.Lane(name, "port.store")
	if cap(a.tlFU) < len(a.fuTotal) {
		a.tlFU = make([]timeline.LaneID, len(a.fuTotal))
	} else {
		a.tlFU = a.tlFU[:len(a.fuTotal)]
	}
	for c := range a.tlFU {
		a.tlFU[c] = -1
	}
	for _, c := range hw.AllFUClasses() {
		if a.fuTotal[c] > 0 {
			a.tlFU[c] = rec.Lane(name, "fu."+c.String())
		}
	}
}

// recordTimeline emits the cycle's timeline events: exactly one Cycle on
// the engine lane — issue, or the highest-priority stall reason — plus
// busy slices for the memory ports and FU classes that did work. The
// attribution priority mirrors the paper's Fig. 10 categories: a memory
// hazard outranks FU contention, which outranks a blocked block fetch;
// with no hazard at all, outstanding memory means a memory wait and an
// empty ready set means an operand wait.
func (a *Accelerator) recordTimeline(issued int) {
	start, dur := uint64(a.Q.Now()), uint64(a.Clk.Period())
	class := timeline.ClassIssue
	if issued == 0 {
		switch {
		case a.hazLoad || a.hazStore || a.hazOrder:
			class = timeline.ClassStallMem
		case a.hazFU:
			class = timeline.ClassStallFU
		case a.fetchBlocked:
			class = timeline.ClassStallFetch
		case a.inflLoads+a.inflStores > 0:
			class = timeline.ClassStallMem
		default:
			class = timeline.ClassStallOperand
		}
	}
	a.rec.Cycle(a.tlCycle, start, dur, class)
	if a.cycLoads > 0 {
		a.rec.Slice(a.tlLoad, start, dur, "load")
	}
	if a.cycStores > 0 {
		a.rec.Slice(a.tlStore, start, dur, "store")
	}
	for c := range a.tlFU {
		if a.tlFU[c] >= 0 && (a.fuIssued[c] > 0 || a.fuBusy[c] > 0) {
			a.rec.Slice(a.tlFU[c], start, dur, "busy")
		}
	}
}
