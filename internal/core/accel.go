package core

import (
	"encoding/binary"
	"fmt"

	"gosalam/internal/hw"
	"gosalam/internal/sim"
	"gosalam/ir"
)

// AccelConfig are the "device config" knobs of Sec. III-E1.
type AccelConfig struct {
	// ClockMHz is the accelerator clock (independent of system clocks).
	ClockMHz float64
	// FULimits constrains functional units per class; absent/0 means a
	// dedicated unit per static instruction (the default 1-to-1 map).
	FULimits map[hw.FUClass]int
	// ReadPorts/WritePorts bound memory issues per cycle.
	ReadPorts, WritePorts int
	// MaxOutstanding bounds in-flight memory requests per direction.
	MaxOutstanding int
	// ResQueueSize caps resident dynamic ops in the reservation queue.
	ResQueueSize int
	// PipelineLoops fetches the next basic block as soon as the
	// terminator evaluates (loop pipelining). When false, a block must
	// fully drain first — the ablation of design decision 3 in DESIGN.md.
	PipelineLoops bool
	// ConservativeMemOrder disables address-based dynamic disambiguation:
	// memory ops issue strictly in program order (ablation 5).
	ConservativeMemOrder bool
}

// DefaultConfig returns the paper-default accelerator configuration.
func DefaultConfig() AccelConfig {
	return AccelConfig{
		ClockMHz:       100,
		ReadPorts:      2,
		WritePorts:     2,
		MaxOutstanding: 16,
		ResQueueSize:   128,
		PipelineLoops:  true,
	}
}

type opState uint8

const (
	stWaiting opState = iota
	stInflight
	stDone
)

// waiter records a consumer operand slot fed by a producer.
type waiter struct {
	op  *dynOp
	idx int
}

// dynOp is a dynamic instance of a static op, created when its basic block
// is imported into the reservation queue.
type dynOp struct {
	st  *StaticOp
	seq uint64

	operands []uint64
	// pending marks operand slots still awaiting a producer: a store's
	// address can disambiguate as soon as its pointer operand resolves,
	// even while its data operand is pending.
	pending   []bool
	waitingOn int
	waiters   []waiter

	state opState
	val   uint64

	// Memory fields.
	addr    uint64
	size    int
	arrived bool // response received, committing at next edge
}

func (d *dynOp) isLoad() bool  { return d.st.In.Op == ir.OpLoad }
func (d *dynOp) isStore() bool { return d.st.In.Op == ir.OpStore }

// defRec tracks the newest definition of a static SSA value: either a
// committed bit pattern or the dynamic op that will produce it.
type defRec struct {
	val      uint64
	producer *dynOp
}

// Accelerator is one modeled hardware accelerator: a statically elaborated
// CDFG executed by the dynamic LLVM runtime engine, attached to the system
// through a communications interface.
type Accelerator struct {
	sim.Clocked

	CDFG *CDFG
	Cfg  AccelConfig
	Comm *CommInterface

	// OnDone fires when the kernel returns and all queues drain.
	OnDone func()

	// engine state
	resQ []*dynOp
	// pendingMem holds unfinished memory ops in program order, so
	// disambiguation scans only memory traffic instead of the whole
	// reservation queue.
	pendingMem []*dynOp
	lastDef    map[*ir.Instr]*defRec
	seq        uint64
	inflight   int
	argBits    []uint64
	// zeroLatProgress is set when a zero-latency commit or block fetch
	// happens inside the issue scan: only those events can unlock earlier
	// queue entries within the same cycle.
	zeroLatProgress bool
	// Per-cycle structural-hazard flags: a ready op failed to issue
	// because of read ports, write ports, FU pools, or memory ordering.
	hazLoad, hazStore, hazFU, hazOrder bool
	// profile, when non-nil, receives a per-cycle sample (EnableProfile).
	profile *CycleProfile
	// Per-cycle issue counters for the profile.
	cycLoads, cycStores, cycFP, cycInt, cycOther uint16

	finished bool
	running  bool
	retBits  uint64

	fuBusy   map[hw.FUClass]int // unpipelined units occupied
	fuIssued map[hw.FUClass]int // issue slots used this cycle
	opIssued map[*StaticOp]bool // per-static-op II=1
	fetches  int                // block fetches this cycle

	startCycle uint64

	// Stats.
	ActiveCycles  *sim.Scalar
	IssuedByClass *sim.Vector
	Committed     *sim.Scalar
	NewExecCycles *sim.Scalar
	StallCycles   *sim.Scalar
	StallKinds    *sim.Vector
	// HazardCycles counts cycles where at least one ready operation was
	// blocked by a structural hazard (even if other ops issued) — the
	// per-source stall accounting behind Fig. 14(b).
	HazardCycles *sim.Scalar
	HazardKinds  *sim.Vector
	Activity     *sim.Vector
	OccupancySum *sim.Vector
	FUEnergyPJ   *sim.Scalar
	RegReadPJ    *sim.Scalar
	RegWritePJ   *sim.Scalar
	Invocations  *sim.Scalar
	KernelCycles *sim.Distribution
}

// NewAccelerator builds an accelerator around an elaborated CDFG. The
// communications interface must already be constructed; its port counts
// are overridden from cfg.
func NewAccelerator(name string, q *sim.EventQueue, g *CDFG, cfg AccelConfig,
	comm *CommInterface, stats *sim.Group) *Accelerator {
	if cfg.ResQueueSize <= 0 {
		cfg.ResQueueSize = 128
	}
	if cfg.ReadPorts <= 0 {
		cfg.ReadPorts = 1
	}
	if cfg.WritePorts <= 0 {
		cfg.WritePorts = 1
	}
	if cfg.MaxOutstanding <= 0 {
		cfg.MaxOutstanding = 16
	}
	a := &Accelerator{
		CDFG: g, Cfg: cfg, Comm: comm,
		lastDef:  map[*ir.Instr]*defRec{},
		fuBusy:   map[hw.FUClass]int{},
		fuIssued: map[hw.FUClass]int{},
		opIssued: map[*StaticOp]bool{},
	}
	comm.ReadPorts = cfg.ReadPorts
	comm.WritePorts = cfg.WritePorts
	comm.MaxOutstanding = cfg.MaxOutstanding
	clk := sim.NewClockDomainMHz(name+".clk", cfg.ClockMHz)
	a.InitClocked(name, q, clk)
	a.CycleFn = a.cycle

	gr := stats.Child(name)
	a.ActiveCycles = gr.Scalar("cycles", "active engine cycles")
	a.IssuedByClass = gr.Vector("issued", "ops issued by FU class")
	a.Committed = gr.Scalar("committed", "dynamic ops committed")
	a.NewExecCycles = gr.Scalar("exec_cycles", "cycles issuing at least one op")
	a.StallCycles = gr.Scalar("stall_cycles", "cycles with work but no issue")
	a.StallKinds = gr.Vector("stall_kinds", "stalled cycles by pending-op mix")
	a.HazardCycles = gr.Scalar("hazard_cycles", "cycles with a ready op blocked by a structural hazard")
	a.HazardKinds = gr.Vector("hazard_kinds", "hazard cycles by blocking resource")
	a.Activity = gr.Vector("activity", "cycles by load/store/fp overlap")
	a.OccupancySum = gr.Vector("occupancy_sum", "in-flight op-cycles by class")
	a.FUEnergyPJ = gr.Scalar("fu_energy_pj", "dynamic FU energy")
	a.RegReadPJ = gr.Scalar("reg_read_pj", "register-file read energy")
	a.RegWritePJ = gr.Scalar("reg_write_pj", "register-file write energy")
	a.Invocations = gr.Scalar("invocations", "kernel invocations")
	a.KernelCycles = gr.Distribution("kernel_cycles", "cycles per invocation")

	// Wire the MMR start protocol: writing CTRL bit0 launches the kernel
	// with arguments taken from the argument registers.
	comm.MMR.OnWrite = func(idx int, val uint64) {
		if idx == CtrlReg && val&1 != 0 && !a.running {
			n := len(g.F.Params)
			args := make([]uint64, n)
			for i := 0; i < n; i++ {
				args[i] = comm.MMR.Reg(ArgReg0 + i)
			}
			a.Start(args)
		}
	}
	return a
}

// Busy reports whether a kernel is executing.
func (a *Accelerator) Busy() bool { return a.running }

// RetBits returns the bits of the last kernel return value.
func (a *Accelerator) RetBits() uint64 { return a.retBits }

// LastKernelCycles returns the cycle count of the most recent invocation.
func (a *Accelerator) LastKernelCycles() uint64 {
	return uint64(a.KernelCycles.Max())
}

// Start launches the kernel with the given argument bits.
func (a *Accelerator) Start(args []uint64) {
	if a.running {
		panic(fmt.Sprintf("core: accelerator %s started while busy", a.Name()))
	}
	f := a.CDFG.F
	if len(args) != len(f.Params) {
		panic(fmt.Sprintf("core: %s takes %d args, got %d", f.Name(), len(f.Params), len(args)))
	}
	a.running = true
	a.finished = false
	a.resQ = a.resQ[:0]
	a.pendingMem = a.pendingMem[:0]
	a.inflight = 0
	a.lastDef = map[*ir.Instr]*defRec{}
	a.fuBusy = map[hw.FUClass]int{}
	a.argBits = append(a.argBits[:0], args...)
	a.startCycle = a.Cycles
	a.Invocations.Inc(1)
	a.Comm.MMR.SetReg(StatusReg, 1) // busy
	a.fetch(f.Entry(), nil)
	a.Activate()
}

func (a *Accelerator) valueOf(v ir.Value, prev *ir.Block) (bits uint64, producer *dynOp) {
	if b, ok := ir.ConstBits(v); ok {
		return b, nil
	}
	switch vv := v.(type) {
	case *ir.Global:
		return vv.Addr, nil
	case *ir.Param:
		return a.argBits[vv.Index], nil
	case *ir.Instr:
		rec, ok := a.lastDef[vv]
		if !ok {
			panic(fmt.Sprintf("core: use of undefined value %%%s", vv.Name))
		}
		if rec.producer != nil {
			return 0, rec.producer
		}
		return rec.val, nil
	}
	panic("core: unknown value kind")
}

// fetch imports a basic block into the reservation queue, generating
// dynamic dependencies by searching the newest definitions (the paper's
// upward search of the reservation and in-flight queues).
func (a *Accelerator) fetch(b *ir.Block, prev *ir.Block) {
	for _, st := range a.CDFG.BlockOps[b] {
		in := st.In
		d := &dynOp{st: st, seq: a.seq}
		a.seq++
		var vals []ir.Value
		if in.Op == ir.OpPhi {
			// Resolve the incoming edge now; the mux selects one operand.
			found := false
			for k, blk := range in.Blocks {
				if blk == prev {
					vals = []ir.Value{in.Args[k]}
					found = true
					break
				}
			}
			if !found {
				panic(fmt.Sprintf("core: phi %%%s has no incoming from %s", in.Name, prev.Name()))
			}
		} else {
			vals = in.Args
		}
		d.operands = make([]uint64, len(vals))
		d.pending = make([]bool, len(vals))
		for k, v := range vals {
			bits, prod := a.valueOf(v, prev)
			if prod != nil {
				d.waitingOn++
				d.pending[k] = true
				prod.waiters = append(prod.waiters, waiter{op: d, idx: k})
			} else {
				d.operands[k] = bits
			}
		}
		if in.HasResult() {
			a.lastDef[in] = &defRec{producer: d}
		}
		a.resQ = append(a.resQ, d)
		if d.st.IsMem() {
			a.pendingMem = append(a.pendingMem, d)
		}
	}
}

// commit finishes a dynamic op: writes its register, charges energy, wakes
// consumers.
func (a *Accelerator) commit(d *dynOp) {
	d.state = stDone
	a.Committed.Inc(1)
	in := d.st.In
	if d.st.Class != hw.FUNone {
		a.FUEnergyPJ.Inc(a.CDFG.Profile.Spec(d.st.Class).EnergyPJ)
		if !d.st.Pipelined {
			a.fuBusy[d.st.Class]--
		}
	}
	if in.HasResult() {
		a.RegWritePJ.Inc(a.CDFG.Profile.Reg.WriteEnergyPJ * float64(in.T.Bits()))
		if rec := a.lastDef[in]; rec != nil && rec.producer == d {
			rec.val = d.val
			rec.producer = nil
		}
	}
	for _, w := range d.waiters {
		w.op.operands[w.idx] = d.val
		w.op.pending[w.idx] = false
		w.op.waitingOn--
	}
	d.waiters = nil
}

// evaluate computes an op's value from its resolved operands — the
// execute-in-execute step shared with the functional interpreter.
func (a *Accelerator) evaluate(d *dynOp) uint64 {
	in := d.st.In
	ops := d.operands
	switch {
	case in.Op.IsBinOp():
		return ir.EvalBin(in.Op, in.T, ops[0], ops[1])
	case in.Op == ir.OpICmp:
		return ir.EvalICmp(in.Pred, in.Args[0].Type(), ops[0], ops[1])
	case in.Op == ir.OpFCmp:
		return ir.EvalFCmp(in.Pred, in.Args[0].Type(), ops[0], ops[1])
	case in.Op.IsCast():
		return ir.EvalCast(in.Op, in.Args[0].Type(), in.T, ops[0])
	case in.Op == ir.OpGEP:
		return ir.EvalGEP(in, ops[0], ops[1:])
	case in.Op == ir.OpPhi:
		return ops[0]
	case in.Op == ir.OpSelect:
		if ops[0] != 0 {
			return ops[1]
		}
		return ops[2]
	case in.Op == ir.OpCall:
		return ir.EvalCall(in.Callee, in.T, ops)
	}
	panic(fmt.Sprintf("core: cannot evaluate %s", in.Op))
}

// memOrderOK applies dynamic disambiguation: an access may issue only if
// no older, unfinished access could alias it.
func (a *Accelerator) memOrderOK(d *dynOp) bool {
	for _, o := range a.pendingMem {
		if o.seq >= d.seq {
			break
		}
		if o.state == stDone {
			continue
		}
		if a.Cfg.ConservativeMemOrder {
			return false // strict program order among memory ops
		}
		dAddr, dSize := d.effAddr()
		dWin := a.Comm.WindowIndex(dAddr)
		if d.isLoad() && o.isLoad() {
			// Loads reorder freely — except within a stream window, where
			// pops must stay in program order.
			if dWin < 0 {
				continue
			}
			if !o.addrKnown() {
				return false
			}
			oAddr, _ := o.effAddr()
			if a.Comm.WindowIndex(oAddr) == dWin && o.state == stWaiting {
				return false
			}
			continue
		}
		if !o.addrKnown() {
			return false // older access with unknown address
		}
		oAddr, oSize := o.effAddr()
		// Same-window stores (FIFO pushes) stay in program order even
		// though their addresses never overlap.
		if dWin >= 0 && a.Comm.WindowIndex(oAddr) == dWin && o.state == stWaiting {
			return false
		}
		if oAddr < dAddr+uint64(dSize) && dAddr < oAddr+uint64(oSize) {
			return false // overlap
		}
	}
	return true
}

// addrKnown reports whether the op's address operand has resolved.
func (d *dynOp) addrKnown() bool {
	if d.isLoad() {
		return !d.pending[0]
	}
	return !d.pending[1]
}

// effAddr returns the access address and size for a resolved memory op.
func (d *dynOp) effAddr() (uint64, int) {
	in := d.st.In
	if d.isLoad() {
		return d.operands[0], in.T.SizeBytes()
	}
	return d.operands[1], in.Args[0].Type().SizeBytes()
}

// tryIssueMem attempts to issue a resolved memory op. The O(1) port check
// runs before the O(pending) disambiguation scan.
func (a *Accelerator) tryIssueMem(d *dynOp) bool {
	if d.isLoad() {
		if !a.Comm.CanRead() {
			a.hazLoad = true
			return false
		}
		if !a.memOrderOK(d) {
			a.hazOrder = true
			return false
		}
		addr, size := d.effAddr()
		d.addr, d.size = addr, size
		a.RegReadPJ.Inc(a.CDFG.Profile.Reg.ReadEnergyPJ * 64) // address register
		ok := a.Comm.IssueRead(addr, size, func(data []byte) {
			var bits uint64
			switch size {
			case 1:
				bits = uint64(data[0])
			case 2:
				bits = uint64(binary.LittleEndian.Uint16(data))
			case 4:
				bits = uint64(binary.LittleEndian.Uint32(data))
			default:
				bits = binary.LittleEndian.Uint64(data)
			}
			d.val = bits
			d.arrived = true
			a.Activate() // wake to commit at the next edge
		})
		if !ok {
			return false // stream empty; retry
		}
		d.state = stInflight
		a.inflight++
		return true
	}
	// Store.
	if !a.Comm.CanWrite() {
		a.hazStore = true
		return false
	}
	if !a.memOrderOK(d) {
		a.hazOrder = true
		return false
	}
	addr, size := d.effAddr()
	d.addr, d.size = addr, size
	data := make([]byte, size)
	switch size {
	case 1:
		data[0] = byte(d.operands[0])
	case 2:
		binary.LittleEndian.PutUint16(data, uint16(d.operands[0]))
	case 4:
		binary.LittleEndian.PutUint32(data, uint32(d.operands[0]))
	default:
		binary.LittleEndian.PutUint64(data, d.operands[0])
	}
	a.RegReadPJ.Inc(a.CDFG.Profile.Reg.ReadEnergyPJ * float64(64+size*8))
	ok := a.Comm.IssueWrite(addr, data, func() {
		d.arrived = true
		a.Activate()
	})
	if !ok {
		return false
	}
	d.state = stInflight
	a.inflight++
	return true
}

// fuAvailable checks structural availability for a compute op. Only pool
// exhaustion counts as a hazard for stall analysis: a second initiation of
// the same static instruction in one cycle is ordinary pipelining
// backpressure, not resource contention.
func (a *Accelerator) fuAvailable(d *dynOp) bool {
	c := d.st.Class
	if c == hw.FUNone {
		return true
	}
	if a.opIssued[d.st] {
		return false // one initiation per static instruction per cycle
	}
	total := a.CDFG.FUTotal[c]
	if a.fuIssued[c]+a.fuBusy[c] >= total {
		a.hazFU = true
		return false
	}
	return true
}

// issueCompute launches a compute op (immediate functional evaluation,
// delayed commit — Sec. III-B2).
func (a *Accelerator) issueCompute(d *dynOp) {
	c := d.st.Class
	if c != hw.FUNone {
		a.fuIssued[c]++
		a.opIssued[d.st] = true
		if !d.st.Pipelined {
			a.fuBusy[c]++
		}
	}
	for _, v := range d.st.In.Args {
		a.RegReadPJ.Inc(a.CDFG.Profile.Reg.ReadEnergyPJ * float64(v.Type().Bits()))
	}
	d.val = a.evaluate(d)
	if d.st.Latency <= 0 {
		a.commit(d) // zero-latency chaining (muxes, control)
		a.zeroLatProgress = true
		return
	}
	d.state = stInflight
	a.inflight++
	lat := d.st.Latency
	// PriBeforeClock: the result is ready when the commit edge runs, so a
	// latency-L op commits exactly L cycles after issue.
	a.Q.Schedule(a.Q.Now()+a.Clk.CyclesToTicks(uint64(lat)), sim.PriBeforeClock, func() {
		d.arrived = true
		a.Activate()
	})
}

// handleTerminator evaluates a br/ret, triggering the next block fetch.
func (a *Accelerator) handleTerminator(d *dynOp) bool {
	in := d.st.In
	if a.fetches >= 2 {
		return false // bound control work per cycle
	}
	if !a.Cfg.PipelineLoops {
		// Drain the queue (all older ops committed) before moving on.
		for _, o := range a.resQ {
			if o.seq < d.seq && o.state != stDone {
				return false
			}
		}
	}
	switch in.Op {
	case ir.OpRet:
		if len(in.Args) == 1 {
			a.retBits = d.operands[0]
		}
		a.finished = true
		a.commit(d)
		return true
	case ir.OpBr:
		var next *ir.Block
		if len(in.Args) == 0 {
			next = in.Blocks[0]
		} else if d.operands[0] != 0 {
			next = in.Blocks[0]
		} else {
			next = in.Blocks[1]
		}
		resident := 0
		for _, o := range a.resQ {
			if o.state != stDone {
				resident++
			}
		}
		// Window check: defer the fetch while other work is resident, but
		// never wedge — once only this terminator remains, the next block
		// must be admitted even if it exceeds the configured window.
		if resident > 1 && resident-1+len(next.Instrs) > a.Cfg.ResQueueSize {
			return false // window full; retry next cycle
		}
		from := in.Block()
		a.commit(d)
		a.fetches++
		a.fetch(next, from)
		a.zeroLatProgress = true
		return true
	}
	panic("core: unknown terminator")
}

// cycle is the runtime scheduler: commit, then issue in program order.
func (a *Accelerator) cycle() bool {
	a.ActiveCycles.Inc(1)
	a.Comm.NewCycle()
	for c := range a.fuIssued {
		delete(a.fuIssued, c)
	}
	for o := range a.opIssued {
		delete(a.opIssued, o)
	}
	a.fetches = 0
	a.hazLoad, a.hazStore, a.hazFU, a.hazOrder = false, false, false, false
	a.cycLoads, a.cycStores, a.cycFP, a.cycInt, a.cycOther = 0, 0, 0, 0, 0

	// Commit phase: everything whose result arrived since the last edge.
	for _, d := range a.resQ {
		if d.state == stInflight && d.arrived {
			a.inflight--
			a.commit(d)
		}
	}

	// Issue phase: scan in program order. A rescan is only useful when a
	// zero-latency commit or a block fetch happened — those are the only
	// same-cycle events that can unlock earlier queue entries or add new
	// ones; latency-bearing issues commit at later edges.
	issued := 0
	issuedFP := false
	for rescan := true; rescan; {
		a.zeroLatProgress = false
		for qi := 0; qi < len(a.resQ); qi++ {
			d := a.resQ[qi]
			if d.state != stWaiting || d.waitingOn > 0 {
				continue
			}
			in := d.st.In
			switch {
			case in.Op.IsTerminator():
				if a.handleTerminator(d) {
					issued++
					a.IssuedByClass.Inc(d.st.Class.String(), 1)
				}
			case d.st.IsMem():
				if a.tryIssueMem(d) {
					issued++
					key := "load"
					if d.isStore() {
						key = "store"
						a.cycStores++
					} else {
						a.cycLoads++
					}
					a.IssuedByClass.Inc(key, 1)
				}
			default:
				if a.fuAvailable(d) {
					a.issueCompute(d)
					issued++
					if d.st.IsFP() {
						issuedFP = true
						a.cycFP++
					} else {
						switch d.st.Class {
						case hw.FUIntAdder, hw.FUIntMultiplier, hw.FUIntDivider,
							hw.FUShifter, hw.FUBitwise, hw.FUComparator:
							a.cycInt++
						default:
							a.cycOther++
						}
					}
					a.IssuedByClass.Inc(d.st.Class.String(), 1)
				}
			}
		}
		rescan = a.zeroLatProgress
	}

	// Compact committed ops out of the queues.
	kept := a.resQ[:0]
	for _, d := range a.resQ {
		if d.state != stDone {
			kept = append(kept, d)
		}
	}
	a.resQ = kept
	keptMem := a.pendingMem[:0]
	for _, d := range a.pendingMem {
		if d.state != stDone {
			keptMem = append(keptMem, d)
		}
	}
	a.pendingMem = keptMem

	// Cycle-level statistics (Sec. III-C2).
	a.recordCycleStats(issued, issuedFP)

	if a.finished && len(a.resQ) == 0 && a.inflight == 0 {
		a.running = false
		kc := a.Cycles - a.startCycle
		a.KernelCycles.Sample(float64(kc))
		a.Comm.MMR.SetReg(StatusReg, 2) // done
		if a.Comm.MMR.Reg(CtrlReg)&2 != 0 && a.Comm.IRQ != nil {
			a.Comm.IRQ()
		}
		if a.OnDone != nil {
			a.OnDone()
		}
		return false
	}
	return true
}

// recordCycleStats classifies the cycle for the occupancy/stall analyses
// behind Figs. 14 and 15.
func (a *Accelerator) recordCycleStats(issued int, issuedFP bool) {
	loadsInFlight, storesInFlight := 0, 0
	pendLoad, pendStore, pendComp := false, false, false
	for _, d := range a.resQ {
		switch {
		case d.isLoad():
			pendLoad = true
			if d.state == stInflight {
				loadsInFlight++
			}
		case d.isStore():
			pendStore = true
			if d.state == stInflight {
				storesInFlight++
			}
		default:
			pendComp = true
		}
	}
	// FU occupancy: pipelined units are busy when they initiate an op
	// this cycle; unpipelined units while an op is resident. fuAvailable
	// keeps fuIssued+fuBusy <= total, so occupancy stays within [0, 1].
	for c, n := range a.fuIssued {
		if a.CDFG.Profile.Spec(c).Pipelined {
			a.OccupancySum.Inc(c.String(), float64(n))
		}
	}
	for c, n := range a.fuBusy {
		a.OccupancySum.Inc(c.String(), float64(n))
	}
	if a.hazLoad || a.hazStore || a.hazFU || a.hazOrder {
		a.HazardCycles.Inc(1)
		hkey := ""
		if a.hazLoad {
			hkey += "load_ports+"
		}
		if a.hazStore {
			hkey += "store_ports+"
		}
		if a.hazFU {
			hkey += "fu+"
		}
		if a.hazOrder {
			hkey += "mem_order+"
		}
		a.HazardKinds.Inc(hkey[:len(hkey)-1], 1)
	}
	if issued > 0 {
		a.NewExecCycles.Inc(1)
	} else if len(a.resQ) > 0 {
		a.StallCycles.Inc(1)
		key := ""
		if pendLoad {
			key += "load+"
		}
		if pendStore {
			key += "store+"
		}
		if pendComp {
			key += "compute+"
		}
		if key == "" {
			key = "other+"
		}
		a.StallKinds.Inc(key[:len(key)-1], 1)
	}
	akey := ""
	if loadsInFlight > 0 {
		akey += "load+"
	}
	if storesInFlight > 0 {
		akey += "store+"
	}
	if issuedFP {
		akey += "fp+"
	}
	if akey == "" {
		akey = "none+"
	}
	a.Activity.Inc(akey[:len(akey)-1], 1)

	if a.profile != nil {
		var haz uint8
		if a.hazLoad {
			haz |= HazLoadPorts
		}
		if a.hazStore {
			haz |= HazStorePorts
		}
		if a.hazFU {
			haz |= HazFUPool
		}
		if a.hazOrder {
			haz |= HazMemOrder
		}
		resident := len(a.resQ)
		if resident > 0xffff {
			resident = 0xffff
		}
		a.profile.record(CycleSample{
			Cycle:    a.Cycles - a.startCycle,
			Loads:    a.cycLoads,
			Stores:   a.cycStores,
			FPOps:    a.cycFP,
			IntOps:   a.cycInt,
			Other:    a.cycOther,
			Resident: uint16(resident),
			Stalled:  issued == 0 && len(a.resQ) > 0,
			Hazard:   haz,
		})
	}
}
