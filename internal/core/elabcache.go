package core

// The elaboration cache amortizes static elaboration across a sweep: the
// CDFG is a pure function of (IR function, hardware profile, FU limits), so
// design points that share a static configuration can share one immutable
// CDFG instead of re-running Elaborate per point (the paper's static/dynamic
// split, Sec. III-A2/III-B, applied to the simulator's own hot path). After
// elaboration the CDFG is never written — the runtime engine keeps all
// per-run state in the Accelerator — so one cached artifact may be read by
// any number of concurrent campaign workers.

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"gosalam/internal/hw"
	"gosalam/ir"
)

// elabKey identifies one static configuration. Functions and profiles are
// keyed by identity: every front-end builds a kernel's IR once and reuses
// the object across design points (kernel name + build params determine the
// *ir.Function), and profiles are long-lived shared objects. Identity keying
// can never alias two different configurations; at worst a duplicate object
// costs a duplicate elaboration. FU limits arrive as a map, so they are
// canonicalized to a string.
type elabKey struct {
	f       *ir.Function
	profile *hw.Profile
	limits  string
}

// CanonicalLimits renders per-class FU limits in a fixed class order,
// skipping unset classes, so semantically equal maps key identically.
func CanonicalLimits(limits map[hw.FUClass]int) string {
	if len(limits) == 0 {
		return ""
	}
	var sb strings.Builder
	for _, c := range hw.AllFUClasses() {
		if n := limits[c]; n != 0 {
			fmt.Fprintf(&sb, "%s=%d;", c, n)
		}
	}
	return sb.String()
}

// elabEntry is one cache slot. The sync.Once guarantees a given
// configuration is elaborated exactly once even when many workers miss
// concurrently; losers block on the winner instead of duplicating work.
type elabEntry struct {
	once sync.Once
	g    *CDFG
	err  error
}

// ElabCache is a keyed, in-process cache of elaborated CDFGs. It is safe
// for concurrent use. Errors are cached too: elaboration is deterministic,
// so a failing configuration fails identically on every lookup.
type ElabCache struct {
	mu      sync.Mutex
	entries map[elabKey]*elabEntry
	hits    atomic.Uint64
	misses  atomic.Uint64
}

// NewElabCache returns an empty cache.
func NewElabCache() *ElabCache {
	return &ElabCache{entries: map[elabKey]*elabEntry{}}
}

// SharedElab is the process-wide cache used by the salam front door and the
// SoC builders. Sweeps across any number of campaigns share it.
var SharedElab = NewElabCache()

// Elaborate returns the cached CDFG for the configuration, elaborating on
// first use. A lookup that finds an existing entry counts as a hit even if
// the winner is still elaborating.
func (c *ElabCache) Elaborate(f *ir.Function, profile *hw.Profile, limits map[hw.FUClass]int) (*CDFG, error) {
	key := elabKey{f: f, profile: profile, limits: CanonicalLimits(limits)}
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &elabEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	e.once.Do(func() { e.g, e.err = Elaborate(f, profile, limits) })
	return e.g, e.err
}

// Stats returns lookup counters: hits found an existing artifact, misses
// paid for an elaboration.
func (c *ElabCache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// Len returns the number of cached configurations.
func (c *ElabCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
