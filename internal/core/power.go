package core

import (
	"fmt"

	"gosalam/internal/hw"
	"gosalam/internal/mem"
	"gosalam/internal/sim"
)

// PowerReport is the paper's seven-category power breakdown (Fig. 4) plus
// area, computed from static elaboration, runtime activity, and the
// CACTI-like SRAM model.
type PowerReport struct {
	// Dynamic power (mW).
	DynFU       float64
	DynReg      float64
	DynSPMRead  float64
	DynSPMWrite float64
	// Static power (mW).
	StaticFU  float64
	StaticReg float64
	StaticSPM float64
	// Area (µm²).
	AreaFU  float64
	AreaReg float64
	AreaSPM float64
}

// TotalMW returns total power.
func (p PowerReport) TotalMW() float64 {
	return p.DynamicMW() + p.StaticMW()
}

// DynamicMW returns total dynamic power.
func (p PowerReport) DynamicMW() float64 {
	return p.DynFU + p.DynReg + p.DynSPMRead + p.DynSPMWrite
}

// StaticMW returns total static power.
func (p PowerReport) StaticMW() float64 {
	return p.StaticFU + p.StaticReg + p.StaticSPM
}

// DatapathMW returns power excluding SPM categories (Fig. 13's
// "datapath only" series).
func (p PowerReport) DatapathMW() float64 {
	return p.DynFU + p.DynReg + p.StaticFU + p.StaticReg
}

// TotalAreaUM2 returns total area.
func (p PowerReport) TotalAreaUM2() float64 { return p.AreaFU + p.AreaReg + p.AreaSPM }

func (p PowerReport) String() string {
	return fmt.Sprintf(
		"dyn: fu=%.3f reg=%.3f spmR=%.3f spmW=%.3f | static: fu=%.3f reg=%.3f spm=%.3f | total=%.3f mW",
		p.DynFU, p.DynReg, p.DynSPMRead, p.DynSPMWrite,
		p.StaticFU, p.StaticReg, p.StaticSPM, p.TotalMW())
}

// Power computes the report for an accelerator over an elapsed wall time.
// spm, when non-nil, contributes private-memory categories through the
// CACTI model. elapsed is the runtime the dynamic energy was spent over;
// pass the kernel's active window for per-invocation power.
func (a *Accelerator) Power(spm *mem.Scratchpad, elapsed sim.Tick) PowerReport {
	var r PowerReport
	g := a.CDFG
	r.StaticFU = g.StaticFULeakageMW()
	r.StaticReg = g.StaticRegLeakageMW()
	r.AreaFU = g.AreaUM2() - g.Profile.Reg.AreaUM2*float64(g.RegBits)
	r.AreaReg = g.Profile.Reg.AreaUM2 * float64(g.RegBits)

	ns := float64(elapsed) / 1000.0 // ticks are ps
	if ns <= 0 {
		ns = 1
	}
	// pJ / ns = mW.
	r.DynFU = a.FUEnergyPJ.Value() / ns
	r.DynReg = (a.RegReadPJ.Value() + a.RegWritePJ.Value()) / ns

	if spm != nil {
		c := spm.Cacti()
		r.StaticSPM = c.LeakageMW()
		r.AreaSPM = c.AreaUM2()
		r.DynSPMRead = spm.Reads.Value() * c.ReadEnergyPJ() / ns
		r.DynSPMWrite = spm.Writes.Value() * c.WriteEnergyPJ() / ns
	}
	return r
}

// FUOccupancy returns the average busy fraction of a class's units over
// the active cycles: the co-design metric of Fig. 15(b).
func (a *Accelerator) FUOccupancy(c hw.FUClass) float64 {
	total := a.CDFG.FUTotal[c]
	cyc := a.ActiveCycles.Value()
	if total == 0 || cyc == 0 {
		return 0
	}
	return a.OccupancySum.Get(c.String()) / (cyc * float64(total))
}

// ActivityFraction returns the fraction of active cycles whose in-flight
// mix matches pred (keys are combinations of "load", "store", "fp").
func (a *Accelerator) ActivityFraction(pred func(load, store, fp bool) bool) float64 {
	cyc := a.ActiveCycles.Value()
	if cyc == 0 {
		return 0
	}
	sum := 0.0
	for _, key := range a.Activity.Keys() {
		load, store, fp := false, false, false
		switch {
		case key == "none":
		default:
			for _, part := range splitPlus(key) {
				switch part {
				case "load":
					load = true
				case "store":
					store = true
				case "fp":
					fp = true
				}
			}
		}
		if pred(load, store, fp) {
			sum += a.Activity.Get(key)
		}
	}
	return sum / cyc
}

func splitPlus(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '+' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return append(out, s[start:])
}
