package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gosalam/internal/hw"
	"gosalam/ir"
)

// genRandomKernel builds a random but well-formed kernel mixing loops,
// conditionals, integer/FP arithmetic and memory traffic over two buffers.
func genRandomKernel(rng *rand.Rand) (*ir.Function, int) {
	m := ir.NewModule("rand")
	b := ir.NewBuilder(m)
	f := b.Func("rand", ir.Void, ir.P("a", ir.Ptr(ir.F64)), ir.P("x", ir.Ptr(ir.I64)))
	a, x := f.Params[0], f.Params[1]
	n := 8 + rng.Intn(24)

	// values available for use as FP/int operands
	fvals := []ir.Value{ir.F64c(1.5), ir.F64c(-0.25)}
	ivals := []ir.Value{ir.I64c(3), ir.I64c(-7)}

	b.Loop("i", ir.I64c(0), ir.I64c(int64(n)), 1, func(iv ir.Value) {
		ivals2 := append(append([]ir.Value{}, ivals...), iv)
		pa := b.GEP(a, "pa", iv)
		px := b.GEP(x, "px", iv)
		fv := b.Load(pa, "fv")
		iu := b.Load(px, "iu")
		fvals2 := append(append([]ir.Value{}, fvals...), fv)
		ivals2 = append(ivals2, iu)

		steps := 2 + rng.Intn(6)
		for s := 0; s < steps; s++ {
			switch rng.Intn(5) {
			case 0:
				v := b.FAdd(pick(rng, fvals2), pick(rng, fvals2), "f")
				fvals2 = append(fvals2, v)
			case 1:
				v := b.FMul(pick(rng, fvals2), pick(rng, fvals2), "g")
				fvals2 = append(fvals2, v)
			case 2:
				v := b.Add(pick(rng, ivals2), pick(rng, ivals2), "k")
				ivals2 = append(ivals2, v)
			case 3:
				v := b.Xor(pick(rng, ivals2), pick(rng, ivals2), "m")
				ivals2 = append(ivals2, v)
			case 4:
				c := b.ICmp(ir.ISLT, pick(rng, ivals2), pick(rng, ivals2), "c")
				v := b.Select(c, pick(rng, ivals2), pick(rng, ivals2), "s")
				ivals2 = append(ivals2, v)
			}
		}
		// Conditional store keeps control flow data-dependent.
		cond := b.ICmp(ir.ISGE, pick(rng, ivals2), ir.I64c(0), "cc")
		fOut := pick(rng, fvals2)
		iOut := pick(rng, ivals2)
		b.IfElse(cond, "w", func() {
			b.Store(fOut, pa)
		}, func() {
			b.Store(iOut, px)
		})
	})
	b.Ret(nil)
	return f, n
}

func pick(rng *rand.Rand, vals []ir.Value) ir.Value {
	return vals[rng.Intn(len(vals))]
}

// The execute-in-execute invariant: for random kernels, random data and
// random device configurations, the cycle-accurate engine leaves memory in
// exactly the state the functional interpreter does.
func TestEngineInterpreterEquivalenceProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f, n := genRandomKernel(rng)
		if err := ir.Verify(f); err != nil {
			t.Logf("generated invalid IR: %v", err)
			return false
		}
		ref := ir.NewFlatMem(0, 1<<16)
		refArgs := setupWith(ref, n, seed)
		if _, _, err := ir.Exec(f, refArgs, ref, nil); err != nil {
			t.Logf("interp: %v", err)
			return false
		}

		cfg := DefaultConfig()
		cfg.ReadPorts = 1 + rng.Intn(4)
		cfg.WritePorts = 1 + rng.Intn(4)
		cfg.ResQueueSize = 24 + rng.Intn(200)
		cfg.PipelineLoops = rng.Intn(2) == 0
		cfg.ConservativeMemOrder = rng.Intn(2) == 0

		r := newRig(t, f, cfg, map[hw.FUClass]int{hw.FUFPAdder: 1 + rng.Intn(3)})
		args := setupWith(r.space, n, seed)
		runToDone(t, r, args)

		for i := range ref.Data {
			if ref.Data[i] != r.space.Data[i] {
				t.Logf("seed %d: memory diverges at byte %d", seed, i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// setupWith deterministically initializes the two buffers from a seed.
func setupWith(mem *ir.FlatMem, n int, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed ^ 0x5a5a))
	aA := mem.AllocFor(ir.F64, n)
	xA := mem.AllocFor(ir.I64, n)
	for i := 0; i < n; i++ {
		mem.WriteF64(aA+uint64(i*8), rng.Float64()*8-4)
		mem.WriteI64(xA+uint64(i*8), rng.Int63n(64)-32)
	}
	return []uint64{aA, xA}
}
