package core

import (
	"fmt"

	"gosalam/internal/mem"
	"gosalam/internal/sim"
	"gosalam/internal/snapshot"
)

// This file is the core half of checkpoint/restore: the accelerator
// engine's dynamic state (in-flight dynOps, dependence edges, ready
// watermarks, per-static-op stamps) and the communications interface's
// counters. Dynamic ops are captured by reservation-queue index —
// dependence edges (waiters, lastDef producers, pendingMem) all point at
// live resQ members, so indices fully encode the graph — and static
// identity is the dense StaticOp ID, valid because restore happens into
// the same elaborated CDFG.

// CaptureState snapshots the interface's persistent counters and MMRs.
// Per-cycle counters (readsThisCycle/writesThisCycle) are captured too:
// a checkpoint can land between an engine edge and a same-tick retry.
func (c *CommInterface) CaptureState() snapshot.Comm {
	return snapshot.Comm{
		ReadsCycle: c.readsThisCycle, WritesCycle: c.writesThisCycle,
		OutReads: c.outReads, OutWrites: c.outWrites,
		MMR: c.MMR.Regs(),
	}
}

// RestoreState rewinds a freshly Reset interface into a captured state.
func (c *CommInterface) RestoreState(st snapshot.Comm) error {
	c.readsThisCycle, c.writesThisCycle = st.ReadsCycle, st.WritesCycle
	c.outReads, c.outWrites = st.OutReads, st.OutWrites
	return c.MMR.RestoreRegs(st.MMR)
}

// CaptureState snapshots the engine between events. Per-cycle transients
// (fuIssued, hazard flags, profile counters) are dead at event boundaries
// and excluded; everything else that outlives an event is recorded.
func (a *Accelerator) CaptureState() (snapshot.Accel, error) {
	st := snapshot.Accel{
		Clk:     a.CaptureClock(),
		Running: a.running, Finished: a.finished, RetBits: a.retBits,
		Seq:     a.seq,
		ArgBits: append([]uint64(nil), a.argBits...),
		StartCycle: a.startCycle,
		Inflight:   a.inflight, Arrivals: a.arrivals, Resident: a.resident,
		PendLoads: a.pendLoads, PendStores: a.pendStores, PendComp: a.pendComp,
		InflLoads: a.inflLoads, InflStores: a.inflStores,
		ReadyCount: a.readyCount, ReadyLow: a.readyLow,
		FuBusy:     append([]int(nil), a.fuBusy...),
		OpStamp:    append([]uint64(nil), a.opStamp...),
		CycleStamp: a.cycleStamp,
	}
	for qi, d := range a.resQ {
		if d.st == nil {
			return snapshot.Accel{}, fmt.Errorf("core: %s: resQ[%d] has no static op", a.Name(), qi)
		}
		sd := snapshot.DynOp{
			StaticID: int32(d.st.ID), Seq: d.seq,
			Operands:  append([]uint64(nil), d.operands...),
			Pending:   append([]bool(nil), d.pending...),
			WaitingOn: int32(d.waitingOn),
			State:     uint8(d.state), Val: d.val,
			Addr: d.addr, Size: int32(d.size), Arrived: d.arrived,
			Buf: d.buf,
		}
		for _, w := range d.waiters {
			sd.Waiters = append(sd.Waiters, snapshot.Waiter{Op: w.op.qi, Idx: int32(w.idx)})
		}
		if when, pri, seq, ok := d.ev.Info(); ok {
			sd.HasEv = true
			sd.Ev = snapshot.Event{When: uint64(when), Pri: pri, Seq: seq}
		}
		st.Ops = append(st.Ops, sd)
	}
	for _, d := range a.pendingMem {
		st.PendingMem = append(st.PendingMem, d.qi)
	}
	st.LastDef = make([]snapshot.Def, len(a.lastDef))
	for i := range a.lastDef {
		rec := &a.lastDef[i]
		sd := snapshot.Def{Val: rec.val, Producer: -1, Live: rec.live}
		if rec.producer != nil {
			sd.Producer = rec.producer.qi
		}
		st.LastDef[i] = sd
	}
	return st, nil
}

// RestoreState rewinds an engine — freshly Reconfigure'd against the same
// CDFG and config — into a captured state, re-inserting pending compute
// latency events with their historical coordinates. In-flight memory
// requests are rebuilt separately via RebuildRequest as the memory system
// restores its queues.
func (a *Accelerator) RestoreState(st snapshot.Accel) error {
	g := a.CDFG
	if len(st.OpStamp) != g.NumOps || len(st.LastDef) != g.NumOps {
		return fmt.Errorf("core: %s: image has %d static ops, CDFG has %d", a.Name(), len(st.OpStamp), g.NumOps)
	}
	a.running, a.finished, a.retBits = st.Running, st.Finished, st.RetBits
	a.seq = st.Seq
	a.argBits = append(a.argBits[:0], st.ArgBits...)
	a.startCycle = st.StartCycle
	a.inflight, a.arrivals, a.resident = st.Inflight, st.Arrivals, st.Resident
	a.pendLoads, a.pendStores, a.pendComp = st.PendLoads, st.PendStores, st.PendComp
	a.inflLoads, a.inflStores = st.InflLoads, st.InflStores
	a.readyCount, a.readyLow = st.ReadyCount, st.ReadyLow
	copy(a.fuBusy, st.FuBusy)
	copy(a.opStamp, st.OpStamp)
	a.cycleStamp = st.CycleStamp

	// Pass 1: materialize every dynamic op with its scalar state.
	a.resQ = a.resQ[:0]
	for qi, sd := range st.Ops {
		if int(sd.StaticID) < 0 || int(sd.StaticID) >= g.NumOps {
			return fmt.Errorf("core: %s: image op %d names static op %d of %d", a.Name(), qi, sd.StaticID, g.NumOps)
		}
		d := a.newDynOp()
		d.st = g.OpByID(int(sd.StaticID))
		d.seq = sd.Seq
		d.operands = append(d.operands[:0], sd.Operands...)
		d.pending = append(d.pending[:0], sd.Pending...)
		d.waitingOn = int(sd.WaitingOn)
		d.waiters = d.waiters[:0]
		d.state = opState(sd.State)
		d.val = sd.Val
		d.qi = int32(qi)
		d.addr, d.size = sd.Addr, int(sd.Size)
		d.arrived = sd.Arrived
		d.buf = sd.Buf
		d.ev = sim.EventID{}
		a.resQ = append(a.resQ, d)
	}
	// Pass 2: rebuild dependence edges and pending latency events, now
	// that queue indices resolve.
	for qi, sd := range st.Ops {
		d := a.resQ[qi]
		for _, w := range sd.Waiters {
			if int(w.Op) < 0 || int(w.Op) >= len(a.resQ) {
				return fmt.Errorf("core: %s: image op %d waiter names resQ[%d]", a.Name(), qi, w.Op)
			}
			d.waiters = append(d.waiters, waiter{op: a.resQ[w.Op], idx: int(w.Idx)})
		}
		if sd.HasEv {
			d.ev = a.Q.ScheduleRestored(sd.Ev, d.arriveFn)
		}
	}
	a.pendingMem = a.pendingMem[:0]
	for _, qi := range st.PendingMem {
		if int(qi) < 0 || int(qi) >= len(a.resQ) {
			return fmt.Errorf("core: %s: image pendingMem names resQ[%d]", a.Name(), qi)
		}
		a.pendingMem = append(a.pendingMem, a.resQ[qi])
	}
	for i, sd := range st.LastDef {
		rec := defRec{val: sd.Val, live: sd.Live}
		if sd.Producer >= 0 {
			if int(sd.Producer) >= len(a.resQ) {
				return fmt.Errorf("core: %s: image lastDef[%d] names resQ[%d]", a.Name(), i, sd.Producer)
			}
			rec.producer = a.resQ[sd.Producer]
		}
		a.lastDef[i] = rec
	}
	a.RestoreClock(st.Clk)
	return nil
}

// RebuildRequest reconstructs an in-flight engine memory request from its
// captured form, rebinding it to the restored dynamic op named by its
// owner ID (the dynOp seq) through a fresh pooled wrapper — exactly the
// binding IssueRead/IssueWrite would have produced.
func (a *Accelerator) RebuildRequest(sr snapshot.Req) (*mem.Request, error) {
	var d *dynOp
	for _, o := range a.resQ {
		if o.seq == sr.OwnerID && o.st != nil && o.state == stInflight {
			d = o
			break
		}
	}
	if d == nil {
		return nil, fmt.Errorf("core: %s: in-flight request owner seq %d not in restored queue", a.Name(), sr.OwnerID)
	}
	c := a.Comm
	cr := c.allocReq()
	cr.start = sim.Tick(sr.Issued)
	if sr.Write {
		cr.wdone = d.arriveFn
		cr.req = mem.Request{
			Addr: sr.Addr, Size: sr.Size, Write: true, Data: d.buf[:sr.Size],
			Done: cr.writeDoneFn, Owner: sr.Owner, OwnerID: sr.OwnerID,
		}
	} else {
		cr.rdone = d.readDoneFn
		cr.req = mem.Request{
			Addr: sr.Addr, Size: sr.Size,
			Done: cr.readDoneFn, Owner: sr.Owner, OwnerID: sr.OwnerID,
		}
		if sr.Size <= len(cr.buf) {
			cr.req.Data = cr.buf[:sr.Size]
		}
	}
	return &cr.req, nil
}
