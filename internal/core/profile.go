package core

import (
	"fmt"
	"io"
)

// CycleSample is one cycle of the fine-grained execution profile: what
// issued, what was in flight, and why ready work stalled — the per-cycle
// scheduling log behind the paper's occupancy/stall explorations
// (Sec. III-C2, Figs. 14-15).
type CycleSample struct {
	Cycle  uint64
	Loads  uint16
	Stores uint16
	FPOps  uint16
	IntOps uint16
	Other  uint16
	// Resident is the reservation-queue depth at end of cycle.
	Resident uint16
	// Stalled marks a cycle that issued nothing despite pending work.
	Stalled bool
	// Hazard flags: bit0 load ports, bit1 store ports, bit2 FU pool,
	// bit3 memory ordering.
	Hazard uint8
}

// Hazard bit masks.
const (
	HazLoadPorts uint8 = 1 << iota
	HazStorePorts
	HazFUPool
	HazMemOrder
)

// CycleProfile is a bounded per-cycle log. Enable with
// Accelerator.EnableProfile before starting a kernel.
type CycleProfile struct {
	Samples []CycleSample
	cap     int
	Dropped uint64
}

// EnableProfile starts per-cycle logging, keeping at most capSamples
// (default 1<<20 when <=0). Re-enabling clears previous samples.
func (a *Accelerator) EnableProfile(capSamples int) *CycleProfile {
	if capSamples <= 0 {
		capSamples = 1 << 20
	}
	a.profile = &CycleProfile{cap: capSamples}
	return a.profile
}

// Profile returns the current profile (nil when disabled).
func (a *Accelerator) Profile() *CycleProfile { return a.profile }

func (p *CycleProfile) record(s CycleSample) {
	if len(p.Samples) >= p.cap {
		p.Dropped++
		return
	}
	p.Samples = append(p.Samples, s)
}

// WriteCSV dumps the profile.
func (p *CycleProfile) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "cycle,loads,stores,fp_ops,int_ops,other,resident,stalled,haz_load,haz_store,haz_fu,haz_order"); err != nil {
		return err
	}
	b := func(v bool) int {
		if v {
			return 1
		}
		return 0
	}
	for _, s := range p.Samples {
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
			s.Cycle, s.Loads, s.Stores, s.FPOps, s.IntOps, s.Other, s.Resident,
			b(s.Stalled), b(s.Hazard&HazLoadPorts != 0), b(s.Hazard&HazStorePorts != 0),
			b(s.Hazard&HazFUPool != 0), b(s.Hazard&HazMemOrder != 0)); err != nil {
			return err
		}
	}
	return nil
}

// Summary aggregates the samples for quick inspection.
func (p *CycleProfile) Summary() (issueCycles, stallCycles int, avgResident float64) {
	var res uint64
	for _, s := range p.Samples {
		if s.Stalled {
			stallCycles++
		} else if s.Loads+s.Stores+s.FPOps+s.IntOps+s.Other > 0 {
			issueCycles++
		}
		res += uint64(s.Resident)
	}
	if len(p.Samples) > 0 {
		avgResident = float64(res) / float64(len(p.Samples))
	}
	return
}
