// Package config loads JSON simulation profiles — the counterpart of
// gem5-SALAM's gem5-python device and system configuration files (Sec.
// III-E): a single-accelerator run is described by kernel choice, device
// config (clock, FU constraints, ports, queues), and memory configuration,
// without recompiling anything.
package config

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	salam "gosalam"
	"gosalam/internal/hw"
	"gosalam/kernels"
)

// RunConfig describes a single-accelerator simulation.
type RunConfig struct {
	// Kernel selects a built-in MachSuite kernel by name.
	Kernel string `json:"kernel"`
	// Preset is "small" or "default".
	Preset string `json:"preset,omitempty"`
	Seed   int64  `json:"seed,omitempty"`

	// Device config.
	ClockMHz      float64        `json:"clock_mhz,omitempty"`
	ReadPorts     int            `json:"read_ports,omitempty"`
	WritePorts    int            `json:"write_ports,omitempty"`
	ResQueue      int            `json:"res_queue,omitempty"`
	PipelineLoops *bool          `json:"pipeline_loops,omitempty"`
	FULimits      map[string]int `json:"fu_limits,omitempty"`

	// Memory configuration.
	Memory     string `json:"memory,omitempty"` // "spm" (default) or "cache"
	SPMLatency int    `json:"spm_latency,omitempty"`
	SPMBanks   int    `json:"spm_banks,omitempty"`
	SPMPorts   int    `json:"spm_ports,omitempty"`
	CacheBytes int    `json:"cache_bytes,omitempty"`
	CacheLine  int    `json:"cache_line,omitempty"`
	CacheAssoc int    `json:"cache_assoc,omitempty"`
}

// Load reads a RunConfig from a JSON file.
func Load(path string) (*RunConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(data)
}

// Parse decodes a RunConfig, rejecting unknown fields.
func Parse(data []byte) (*RunConfig, error) {
	var c RunConfig
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	if c.Kernel == "" {
		return nil, fmt.Errorf("config: missing kernel")
	}
	return &c, nil
}

// Build resolves the config into a kernel and run options.
func (c *RunConfig) Build() (*kernels.Kernel, salam.RunOpts, error) {
	preset := kernels.Default
	if c.Preset == "small" {
		preset = kernels.Small
	} else if c.Preset != "" && c.Preset != "default" {
		return nil, salam.RunOpts{}, fmt.Errorf("config: unknown preset %q", c.Preset)
	}
	k := kernels.ByName(preset, c.Kernel)
	if k == nil {
		return nil, salam.RunOpts{}, fmt.Errorf("config: unknown kernel %q", c.Kernel)
	}
	opts := salam.DefaultRunOpts()
	if c.Seed != 0 {
		opts.Seed = c.Seed
	}
	if c.ClockMHz > 0 {
		opts.Accel.ClockMHz = c.ClockMHz
	}
	if c.ReadPorts > 0 {
		opts.Accel.ReadPorts = c.ReadPorts
	}
	if c.WritePorts > 0 {
		opts.Accel.WritePorts = c.WritePorts
	}
	if c.ResQueue > 0 {
		opts.Accel.ResQueueSize = c.ResQueue
	}
	if c.PipelineLoops != nil {
		opts.Accel.PipelineLoops = *c.PipelineLoops
	}
	if len(c.FULimits) > 0 {
		opts.Accel.FULimits = map[hw.FUClass]int{}
		for name, n := range c.FULimits {
			cls := hw.FUClassByName(name)
			if cls == hw.FUNone {
				return nil, salam.RunOpts{}, fmt.Errorf("config: unknown FU class %q", name)
			}
			opts.Accel.FULimits[cls] = n
		}
	}
	switch c.Memory {
	case "", "spm":
		opts.Mem = salam.MemSPM
	case "cache":
		opts.Mem = salam.MemCache
	default:
		return nil, salam.RunOpts{}, fmt.Errorf("config: unknown memory %q", c.Memory)
	}
	if c.SPMLatency > 0 {
		opts.SPMLatency = c.SPMLatency
	}
	if c.SPMBanks > 0 {
		opts.SPMBanks = c.SPMBanks
	}
	if c.SPMPorts > 0 {
		opts.SPMPortsPer = c.SPMPorts
	}
	if c.CacheBytes > 0 {
		opts.CacheBytes = c.CacheBytes
	}
	if c.CacheLine > 0 {
		opts.CacheLine = c.CacheLine
	}
	if c.CacheAssoc > 0 {
		opts.CacheAssoc = c.CacheAssoc
	}
	return k, opts, nil
}
