package config

import (
	"testing"

	salam "gosalam"
)

func TestParseAndBuild(t *testing.T) {
	src := `{
		"kernel": "gemm", "preset": "small", "seed": 3,
		"clock_mhz": 200, "read_ports": 4, "write_ports": 4,
		"memory": "spm", "spm_latency": 1, "spm_banks": 8,
		"fu_limits": {"fp_adder": 2}
	}`
	c, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	k, opts, err := c.Build()
	if err != nil {
		t.Fatal(err)
	}
	if k.Name != "gemm" {
		t.Fatalf("kernel = %s", k.Name)
	}
	if opts.Accel.ClockMHz != 200 || opts.Accel.ReadPorts != 4 {
		t.Fatalf("device config not applied: %+v", opts.Accel)
	}
	if opts.SPMLatency != 1 || opts.SPMBanks != 8 {
		t.Fatalf("memory config not applied")
	}
	if opts.Seed != 3 {
		t.Fatalf("seed = %d", opts.Seed)
	}
	if len(opts.Accel.FULimits) != 1 {
		t.Fatalf("fu limits = %v", opts.Accel.FULimits)
	}

	// Config-built runs execute and pass goldens.
	res, err := salam.RunKernel(k, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 {
		t.Fatal("no cycles")
	}
}

func TestParseRejectsBadConfigs(t *testing.T) {
	cases := []string{
		`{}`,                                   // no kernel
		`{"kernel": "gemm", "bogus_field": 1}`, // unknown field
		`{"kernel": "gemm", "preset": "huge"}`, // bad preset -> Build error
		`{"kernel": "nope"}`,                   // bad kernel -> Build error
		`{"kernel": "gemm", "memory": "tape"}`, // bad memory -> Build error
		`{"kernel": "gemm", "fu_limits": {"warp_core": 1}}`,
	}
	for i, src := range cases {
		c, err := Parse([]byte(src))
		if err != nil {
			continue // rejected at parse time: fine
		}
		if _, _, err := c.Build(); err == nil {
			t.Errorf("case %d accepted: %s", i, src)
		}
	}
}

func TestLoadFromDisk(t *testing.T) {
	for _, path := range []string{
		"../../configs/gemm_spm.json",
		"../../configs/gemm_cache.json",
		"../../configs/mdknn_fu_limited.json",
	} {
		c, err := Load(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if _, _, err := c.Build(); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
	}
}
