// Package cpu models the host side of an accelerator-rich SoC: a timing
// CPU that executes driver programs (MMR pokes, polling, memcpy/dmacpy,
// IRQ waits) and a GIC-like interrupt controller. It stands in for the ARM
// host + bare-metal drivers of the paper's full-system runs: what matters
// to the experiments is the control and synchronization overhead the host
// contributes (Fig. 16), which these models exercise.
package cpu

import (
	"encoding/binary"
	"fmt"

	"gosalam/internal/mem"
	"gosalam/internal/sim"
)

// GIC is a minimal interrupt controller: devices raise numbered lines;
// hosts wait on them. Raised lines stay pending until consumed.
type GIC struct {
	pending map[int]int
	waiters map[int][]func()
	Raised  *sim.Scalar
}

// NewGIC creates an interrupt controller.
func NewGIC(stats *sim.Group) *GIC {
	g := &GIC{pending: map[int]int{}, waiters: map[int][]func(){}}
	g.Raised = stats.Child("gic").Scalar("irqs", "interrupts raised")
	return g
}

// Raise asserts line n, waking one waiter or latching if none waits.
func (g *GIC) Raise(n int) {
	g.Raised.Inc(1)
	if ws := g.waiters[n]; len(ws) > 0 {
		fn := ws[0]
		g.waiters[n] = ws[1:]
		fn()
		return
	}
	g.pending[n]++
}

// Wait invokes fn when line n fires (immediately if already pending).
func (g *GIC) Wait(n int, fn func()) {
	if g.pending[n] > 0 {
		g.pending[n]--
		fn()
		return
	}
	g.waiters[n] = append(g.waiters[n], fn)
}

// Line returns a closure that raises line n — handed to devices as their
// IRQ callback.
func (g *GIC) Line(n int) func() {
	return func() { g.Raise(n) }
}

// Reset rewinds the controller for a warm-started run: latched pending
// lines and registered waiters from an abandoned program are forgotten.
func (g *GIC) Reset() {
	clear(g.pending)
	clear(g.waiters)
}

// Op is one step of a driver program. Ops run strictly in order; each op
// calls done exactly once (possibly after waiting on the memory system or
// an interrupt).
type Op interface {
	Run(h *Host, done func())
	String() string
}

// Host executes a driver program against the system bus. It models a
// simple in-order core: each op has a fixed issue cost plus whatever the
// memory system adds.
type Host struct {
	q    *sim.EventQueue
	clk  *sim.ClockDomain
	name string
	// Bus is where the host's loads/stores go (usually the global xbar).
	Bus mem.Port
	// GIC handles WaitIRQ ops.
	GIC *GIC
	// OpCost is the fixed per-op pipeline cost in cycles.
	OpCost int

	running bool

	Ops       *sim.Scalar
	BusReads  *sim.Scalar
	BusWrites *sim.Scalar
	Finished  *sim.Scalar
}

// NewHost creates a host CPU.
func NewHost(name string, q *sim.EventQueue, clk *sim.ClockDomain,
	bus mem.Port, gic *GIC, stats *sim.Group) *Host {
	h := &Host{q: q, clk: clk, name: name, Bus: bus, GIC: gic, OpCost: 1}
	g := stats.Child(name)
	h.Ops = g.Scalar("ops", "driver ops executed")
	h.BusReads = g.Scalar("bus_reads", "bus read transactions")
	h.BusWrites = g.Scalar("bus_writes", "bus write transactions")
	h.Finished = g.Scalar("programs", "driver programs completed")
	return h
}

// Clk exposes the host clock.
func (h *Host) Clk() *sim.ClockDomain { return h.clk }

// Reset rewinds the host for a warm-started run: an abandoned program's
// step closures died with the event queue, so only the running latch
// remains to clear.
func (h *Host) Reset() { h.running = false }

// Run executes a driver program; onDone fires after the last op.
func (h *Host) Run(prog []Op, onDone func()) {
	if h.running {
		panic("cpu: host " + h.name + " already running a program")
	}
	h.running = true
	i := 0
	var step func()
	step = func() {
		if i >= len(prog) {
			h.running = false
			h.Finished.Inc(1)
			if onDone != nil {
				onDone()
			}
			return
		}
		op := prog[i]
		i++
		h.Ops.Inc(1)
		cost := h.clk.CyclesToTicks(uint64(h.OpCost))
		h.q.Schedule(h.q.Now()+cost, sim.PriDefault, func() {
			op.Run(h, step)
		})
	}
	step()
}

// write64 issues a bus write of a 64-bit value.
func (h *Host) write64(addr uint64, val uint64, done func()) {
	h.BusWrites.Inc(1)
	data := make([]byte, 8)
	binary.LittleEndian.PutUint64(data, val)
	h.Bus.Send(mem.NewWrite(addr, data, func(*mem.Request) { done() }))
}

// read64 issues a bus read of a 64-bit value.
func (h *Host) read64(addr uint64, done func(uint64)) {
	h.BusReads.Inc(1)
	h.Bus.Send(mem.NewRead(addr, 8, func(r *mem.Request) {
		done(binary.LittleEndian.Uint64(r.Data))
	}))
}

// --- Driver ops ---

// WriteReg writes a 64-bit value to a device register or memory word.
type WriteReg struct {
	Addr uint64
	Val  uint64
}

func (o WriteReg) Run(h *Host, done func()) { h.write64(o.Addr, o.Val, done) }
func (o WriteReg) String() string           { return fmt.Sprintf("write [%#x] = %#x", o.Addr, o.Val) }

// ReadReg reads a 64-bit value into *Into (may be nil to discard).
type ReadReg struct {
	Addr uint64
	Into *uint64
}

func (o ReadReg) Run(h *Host, done func()) {
	h.read64(o.Addr, func(v uint64) {
		if o.Into != nil {
			*o.Into = v
		}
		done()
	})
}
func (o ReadReg) String() string { return fmt.Sprintf("read [%#x]", o.Addr) }

// PollReg re-reads a register until (value & Mask) == Want — the paper's
// software polling of accelerator status registers.
type PollReg struct {
	Addr       uint64
	Mask, Want uint64
	// IntervalCycles between polls (default 20).
	IntervalCycles int
}

func (o PollReg) Run(h *Host, done func()) {
	iv := o.IntervalCycles
	if iv <= 0 {
		iv = 20
	}
	var poll func()
	poll = func() {
		h.read64(o.Addr, func(v uint64) {
			if v&o.Mask == o.Want {
				done()
				return
			}
			h.q.Schedule(h.q.Now()+h.clk.CyclesToTicks(uint64(iv)), sim.PriDefault, poll)
		})
	}
	poll()
}
func (o PollReg) String() string {
	return fmt.Sprintf("poll [%#x] & %#x == %#x", o.Addr, o.Mask, o.Want)
}

// WaitIRQ blocks until the interrupt line fires.
type WaitIRQ struct{ Line int }

func (o WaitIRQ) Run(h *Host, done func()) { h.GIC.Wait(o.Line, done) }
func (o WaitIRQ) String() string           { return fmt.Sprintf("wfi line %d", o.Line) }

// Memcpy copies N bytes through the host, word by word — the slow,
// CPU-driven data movement that DMA replaces.
type Memcpy struct {
	Dst, Src uint64
	N        uint64
}

func (o Memcpy) Run(h *Host, done func()) {
	var off uint64
	var step func()
	step = func() {
		if off >= o.N {
			done()
			return
		}
		size := uint64(8)
		if o.N-off < size {
			size = o.N - off
		}
		h.BusReads.Inc(1)
		h.Bus.Send(mem.NewRead(o.Src+off, int(size), func(r *mem.Request) {
			h.BusWrites.Inc(1)
			h.Bus.Send(mem.NewWrite(o.Dst+off, r.Data, func(*mem.Request) {
				off += size
				step()
			}))
		}))
	}
	step()
}
func (o Memcpy) String() string { return fmt.Sprintf("memcpy %#x <- %#x (%d)", o.Dst, o.Src, o.N) }

// Compute burns a fixed number of host cycles (software work).
type Compute struct{ Cycles uint64 }

func (o Compute) Run(h *Host, done func()) {
	h.q.Schedule(h.q.Now()+h.clk.CyclesToTicks(o.Cycles), sim.PriDefault, done)
}
func (o Compute) String() string { return fmt.Sprintf("compute %d cycles", o.Cycles) }

// Call runs an arbitrary simulation-side action; done must be called by fn.
type Call struct {
	Fn   func(h *Host, done func())
	Desc string
}

func (o Call) Run(h *Host, done func()) { o.Fn(h, done) }
func (o Call) String() string           { return "call " + o.Desc }

// StartAccel programs an accelerator's argument MMRs and sets the start
// (and optionally IRQ-enable) bit — the generated device-driver prologue.
func StartAccel(mmrBase uint64, args []uint64, irqEnable bool) []Op {
	ops := make([]Op, 0, len(args)+1)
	for i, a := range args {
		ops = append(ops, WriteReg{Addr: mmrBase + uint64(16+8*i), Val: a})
	}
	ctrl := uint64(1)
	if irqEnable {
		ctrl |= 2
	}
	ops = append(ops, WriteReg{Addr: mmrBase, Val: ctrl})
	return ops
}

// StartDMA programs a block DMA through its MMRs.
func StartDMA(mmrBase uint64, src, dst, n uint64, burst int, irqEnable bool) []Op {
	ctrl := uint64(1)
	if irqEnable {
		ctrl |= 2
	}
	return []Op{
		WriteReg{Addr: mmrBase + 8*mem.DMARegSrc, Val: src},
		WriteReg{Addr: mmrBase + 8*mem.DMARegDst, Val: dst},
		WriteReg{Addr: mmrBase + 8*mem.DMARegLen, Val: n},
		WriteReg{Addr: mmrBase + 8*mem.DMARegBurst, Val: uint64(burst)},
		WriteReg{Addr: mmrBase + 8*mem.DMARegCtrl, Val: ctrl},
	}
}
