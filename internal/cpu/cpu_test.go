package cpu

import (
	"testing"

	"gosalam/internal/mem"
	"gosalam/internal/sim"
	"gosalam/ir"
)

type env struct {
	q     *sim.EventQueue
	clk   *sim.ClockDomain
	space *ir.FlatMem
	stats *sim.Group
	gic   *GIC
	dram  *mem.DRAM
	host  *Host
}

func newEnv() *env {
	e := &env{
		q:     sim.NewEventQueue(),
		clk:   sim.NewClockDomainMHz("cpu", 1200),
		space: ir.NewFlatMem(0, 1<<20),
		stats: sim.NewGroup("sys"),
	}
	e.gic = NewGIC(e.stats)
	e.dram = mem.NewDRAM("dram", e.q, e.clk, e.space, mem.AddrRange{Base: 0, Size: 1 << 20}, e.stats)
	e.host = NewHost("host", e.q, e.clk, e.dram, e.gic, e.stats)
	return e
}

func TestGICLatchAndWait(t *testing.T) {
	e := newEnv()
	fired := 0
	// Wait first, then raise.
	e.gic.Wait(3, func() { fired++ })
	e.gic.Raise(3)
	if fired != 1 {
		t.Fatal("waiter not woken")
	}
	// Raise first, then wait (latched).
	e.gic.Raise(5)
	e.gic.Wait(5, func() { fired++ })
	if fired != 2 {
		t.Fatal("pending IRQ not delivered")
	}
	// Lines are independent.
	e.gic.Wait(7, func() { fired++ })
	e.gic.Raise(8)
	if fired != 2 {
		t.Fatal("wrong line woke a waiter")
	}
}

func TestHostWriteReadPoll(t *testing.T) {
	e := newEnv()
	var got uint64
	done := false
	prog := []Op{
		WriteReg{Addr: 0x100, Val: 42},
		ReadReg{Addr: 0x100, Into: &got},
	}
	e.host.Run(prog, func() { done = true })
	e.q.Run()
	if !done || got != 42 {
		t.Fatalf("done=%v got=%d", done, got)
	}
	if e.space.ReadI64(0x100) != 42 {
		t.Fatal("write did not land")
	}

	// Poll until another event sets the value.
	done = false
	e.host.Run([]Op{PollReg{Addr: 0x200, Mask: 0xff, Want: 7}}, func() { done = true })
	e.q.RunUntil(e.q.Now() + 100*e.clk.Period())
	if done {
		t.Fatal("poll satisfied too early")
	}
	e.space.WriteI64(0x200, 7)
	e.q.Run()
	if !done {
		t.Fatal("poll never satisfied")
	}
}

func TestHostWaitIRQ(t *testing.T) {
	e := newEnv()
	done := false
	e.host.Run([]Op{WaitIRQ{Line: 1}, Compute{Cycles: 5}}, func() { done = true })
	e.q.RunUntil(1000)
	if done {
		t.Fatal("finished before IRQ")
	}
	e.gic.Raise(1)
	e.q.Run()
	if !done {
		t.Fatal("IRQ did not unblock")
	}
}

func TestHostMemcpy(t *testing.T) {
	e := newEnv()
	for i := 0; i < 100; i++ {
		e.space.Data[0x300+i] = byte(i)
	}
	done := false
	e.host.Run([]Op{Memcpy{Dst: 0x1000, Src: 0x300, N: 100}}, func() { done = true })
	e.q.Run()
	if !done {
		t.Fatal("memcpy incomplete")
	}
	for i := 0; i < 100; i++ {
		if e.space.Data[0x1000+i] != byte(i) {
			t.Fatalf("byte %d corrupt", i)
		}
	}
	// CPU-driven copy costs at least one bus round trip per word.
	if e.host.BusReads.Value() < 13 {
		t.Fatalf("bus reads = %g", e.host.BusReads.Value())
	}
}

func TestMemcpySlowerThanDMA(t *testing.T) {
	// The motivation for DMA offload: host memcpy of a block takes longer
	// than a DMA transfer of the same block.
	e := newEnv()
	n := uint64(4096)
	var hostTicks sim.Tick
	e.host.Run([]Op{Memcpy{Dst: 0x10000, Src: 0, N: n}}, func() { hostTicks = e.q.Now() })
	e.q.Run()

	e2 := newEnv()
	dma := mem.NewBlockDMA("dma", e2.q, e2.clk, 0xF0000000, e2.dram, e2.stats)
	var dmaTicks sim.Tick
	dma.Transfer(0, 0x10000, n, 256, func() { dmaTicks = e2.q.Now() })
	e2.q.Run()
	if !(dmaTicks < hostTicks/2) {
		t.Fatalf("DMA (%d) not much faster than memcpy (%d)", dmaTicks, hostTicks)
	}
}

func TestStartAccelAndDMAOpBuilders(t *testing.T) {
	ops := StartAccel(0x9000, []uint64{1, 2, 3}, true)
	if len(ops) != 4 {
		t.Fatalf("ops = %d", len(ops))
	}
	last := ops[3].(WriteReg)
	if last.Addr != 0x9000 || last.Val != 3 {
		t.Fatalf("ctrl write = %+v", last)
	}
	arg0 := ops[0].(WriteReg)
	if arg0.Addr != 0x9010 || arg0.Val != 1 {
		t.Fatalf("arg0 write = %+v", arg0)
	}

	dops := StartDMA(0x8000, 0x1, 0x2, 64, 32, false)
	if len(dops) != 5 {
		t.Fatalf("dma ops = %d", len(dops))
	}
	if dops[4].(WriteReg).Val != 1 {
		t.Fatal("dma ctrl without IRQ should be 1")
	}
}

func TestHostDoubleRunPanics(t *testing.T) {
	e := newEnv()
	e.host.Run([]Op{Compute{Cycles: 100}}, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("double Run did not panic")
		}
	}()
	e.host.Run([]Op{Compute{Cycles: 1}}, nil)
}

func TestOpStrings(t *testing.T) {
	for _, op := range []Op{
		WriteReg{1, 2}, ReadReg{1, nil}, PollReg{Addr: 1, Mask: 2, Want: 3},
		WaitIRQ{4}, Memcpy{1, 2, 3}, Compute{9},
		Call{Fn: func(h *Host, done func()) { done() }, Desc: "x"},
	} {
		if op.String() == "" {
			t.Fatalf("%T has empty String", op)
		}
	}
}
