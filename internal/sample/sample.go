// Package sample implements interval-sampled simulation: a large-N kernel
// whose loop structure is statically exact (every block's trip count is
// proven by the counted-trip analysis in internal/analysis) is divided
// into N equal intervals of committed dynamic ops, only the first K are
// simulated in detail, and the remaining work is extrapolated from the
// measured steady-state rate. The first interval absorbs warmup (pipeline
// fill, cold scratchpad banks, cache misses); intervals 2..K measure the
// steady phase and their spread yields the reported error bound.
//
// Sampled results are estimates. They are marked as such end to end and
// are never allowed into golden files or exactness-dependent search
// frontiers; the package only provides the arithmetic, the policy lives in
// the root package and its consumers.
package sample

import "fmt"

// Spec configures interval sampling for one run. The zero value disables
// sampling.
type Spec struct {
	// K is how many of the N intervals are simulated in detail (the
	// prefix). At least 2: the first interval is treated as warmup and
	// never contributes to the extrapolation rate.
	K int `json:"k"`
	// N is how many intervals the kernel's total committed-op count is
	// divided into. Must exceed K, otherwise the run would be detailed
	// anyway.
	N int `json:"n"`
}

// Enabled reports whether the spec requests sampling.
func (s Spec) Enabled() bool { return s.K != 0 || s.N != 0 }

// Validate checks an enabled spec.
func (s Spec) Validate() error {
	if s.K < 2 {
		return fmt.Errorf("sample: need at least 2 detailed intervals (K=%d): interval 1 is warmup", s.K)
	}
	if s.N <= s.K {
		return fmt.Errorf("sample: N=%d intervals with K=%d detailed leaves nothing to skip", s.N, s.K)
	}
	return nil
}

// Interval is one measured detailed interval.
type Interval struct {
	// Ops is the number of dynamic ops committed in the interval.
	Ops uint64 `json:"ops"`
	// Cycles is the accelerator cycles the interval took.
	Cycles uint64 `json:"cycles"`
}

// Estimate is the extrapolated result of a sampled run.
type Estimate struct {
	// Intervals are the detailed measurements, in order.
	Intervals []Interval `json:"intervals"`
	// MeasuredOps/MeasuredCycles cover the detailed prefix.
	MeasuredOps    uint64 `json:"measured_ops"`
	MeasuredCycles uint64 `json:"measured_cycles"`
	// RemainingOps is the extrapolated-over op count.
	RemainingOps uint64 `json:"remaining_ops"`
	// CyclesPerOp is the steady-state rate: the mean over intervals 2..K.
	CyclesPerOp float64 `json:"cycles_per_op"`
	// Cycles is the estimated total kernel cycle count.
	Cycles uint64 `json:"cycles"`
	// ErrorBound is the relative spread of the steady-state rates,
	// (max-min)/mean — the reported uncertainty of Cycles. With a single
	// steady interval (K=2) the warmup interval is included, which is
	// conservative.
	ErrorBound float64 `json:"error_bound"`
}

// Extrapolate turns the measured detailed intervals into a total-cycle
// estimate for a run with remainingOps committed ops still to go.
func Extrapolate(intervals []Interval, remainingOps uint64) (Estimate, error) {
	if len(intervals) < 2 {
		return Estimate{}, fmt.Errorf("sample: %d detailed intervals, need at least 2", len(intervals))
	}
	est := Estimate{Intervals: intervals, RemainingOps: remainingOps}
	for _, iv := range intervals {
		est.MeasuredOps += iv.Ops
		est.MeasuredCycles += iv.Cycles
	}

	rate := func(iv Interval) (float64, error) {
		if iv.Ops == 0 {
			return 0, fmt.Errorf("sample: empty detailed interval (%d cycles, 0 ops)", iv.Cycles)
		}
		return float64(iv.Cycles) / float64(iv.Ops), nil
	}
	steady := intervals[1:]
	var sum float64
	for _, iv := range steady {
		r, err := rate(iv)
		if err != nil {
			return Estimate{}, err
		}
		sum += r
	}
	est.CyclesPerOp = sum / float64(len(steady))
	est.Cycles = est.MeasuredCycles + uint64(est.CyclesPerOp*float64(remainingOps)+0.5)

	// The error bound comes from the spread of steady rates; with only one
	// steady interval, fall back to all intervals (warmup included) so the
	// bound is never vacuously zero.
	spreadOver := steady
	if len(spreadOver) < 2 {
		spreadOver = intervals
	}
	min, max, mean := 0.0, 0.0, 0.0
	for i, iv := range spreadOver {
		r, err := rate(iv)
		if err != nil {
			return Estimate{}, err
		}
		if i == 0 || r < min {
			min = r
		}
		if i == 0 || r > max {
			max = r
		}
		mean += r
	}
	mean /= float64(len(spreadOver))
	if mean > 0 {
		est.ErrorBound = (max - min) / mean
	}
	return est, nil
}
