package sample

import (
	"math"
	"strings"
	"testing"
)

func TestSpecEnabledAndValidate(t *testing.T) {
	if (Spec{}).Enabled() {
		t.Fatal("zero spec reports enabled")
	}
	if !(Spec{K: 2, N: 10}).Enabled() {
		t.Fatal("set spec reports disabled")
	}
	if err := (Spec{K: 2, N: 10}).Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	if err := (Spec{K: 1, N: 10}).Validate(); err == nil {
		t.Fatal("K=1 accepted: interval 1 is warmup, K must be >= 2")
	}
	if err := (Spec{K: 4, N: 4}).Validate(); err == nil {
		t.Fatal("N=K accepted: nothing would be skipped")
	}
	if err := (Spec{K: 4, N: 3}).Validate(); err == nil {
		t.Fatal("N<K accepted")
	}
}

func TestExtrapolateSteadyRate(t *testing.T) {
	// Warmup interval is slow (20 cycles/op); steady intervals run at
	// exactly 10 cycles/op. The estimate must use only the steady rate.
	intervals := []Interval{
		{Ops: 100, Cycles: 2000},
		{Ops: 100, Cycles: 1000},
		{Ops: 100, Cycles: 1000},
	}
	est, err := Extrapolate(intervals, 700)
	if err != nil {
		t.Fatal(err)
	}
	if est.MeasuredOps != 300 || est.MeasuredCycles != 4000 {
		t.Fatalf("measured totals: %d ops, %d cycles", est.MeasuredOps, est.MeasuredCycles)
	}
	if est.CyclesPerOp != 10 {
		t.Fatalf("CyclesPerOp = %g, want 10 (warmup must be excluded)", est.CyclesPerOp)
	}
	if want := uint64(4000 + 7000); est.Cycles != want {
		t.Fatalf("Cycles = %d, want %d", est.Cycles, want)
	}
	if est.ErrorBound != 0 {
		t.Fatalf("ErrorBound = %g for identical steady rates, want 0", est.ErrorBound)
	}
}

func TestExtrapolateErrorBoundSpread(t *testing.T) {
	// Steady rates 9 and 11 cycles/op: mean 10, spread (11-9)/10 = 0.2.
	intervals := []Interval{
		{Ops: 100, Cycles: 5000},
		{Ops: 100, Cycles: 900},
		{Ops: 100, Cycles: 1100},
	}
	est, err := Extrapolate(intervals, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.CyclesPerOp-10) > 1e-12 {
		t.Fatalf("CyclesPerOp = %g, want 10", est.CyclesPerOp)
	}
	if math.Abs(est.ErrorBound-0.2) > 1e-12 {
		t.Fatalf("ErrorBound = %g, want 0.2", est.ErrorBound)
	}
}

func TestExtrapolateK2FallsBackToAllIntervals(t *testing.T) {
	// With a single steady interval the spread would be vacuously zero;
	// the bound must fall back to including the warmup interval.
	intervals := []Interval{
		{Ops: 100, Cycles: 1500}, // 15 cycles/op warmup
		{Ops: 100, Cycles: 1000}, // 10 cycles/op steady
	}
	est, err := Extrapolate(intervals, 500)
	if err != nil {
		t.Fatal(err)
	}
	if est.CyclesPerOp != 10 {
		t.Fatalf("CyclesPerOp = %g, want 10", est.CyclesPerOp)
	}
	// spread over both: (15-10)/12.5 = 0.4
	if math.Abs(est.ErrorBound-0.4) > 1e-12 {
		t.Fatalf("ErrorBound = %g, want 0.4", est.ErrorBound)
	}
}

func TestExtrapolateRejectsDegenerateInput(t *testing.T) {
	if _, err := Extrapolate([]Interval{{Ops: 10, Cycles: 100}}, 5); err == nil {
		t.Fatal("single interval accepted")
	}
	bad := []Interval{{Ops: 10, Cycles: 100}, {Ops: 0, Cycles: 50}}
	if _, err := Extrapolate(bad, 5); err == nil {
		t.Fatal("empty interval accepted")
	} else if !strings.Contains(err.Error(), "0 ops") {
		t.Fatalf("unexpected error: %v", err)
	}
}
