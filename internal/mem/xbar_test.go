package mem

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"gosalam/internal/sim"
)

func TestCrossbarRouting(t *testing.T) {
	env := newEnv(1 << 16)
	x := NewCrossbar("xbar", env.q, env.clk, 1, 4, env.stats)
	spmA := NewScratchpad("spmA", env.q, env.clk, env.space,
		AddrRange{Base: 0x0000, Size: 0x1000}, 1, 1, 2, env.stats)
	spmB := NewScratchpad("spmB", env.q, env.clk, env.space,
		AddrRange{Base: 0x2000, Size: 0x1000}, 1, 1, 2, env.stats)
	x.Attach(spmA)
	x.Attach(spmB)

	env.space.WriteI64(0x100, 11)
	env.space.WriteI64(0x2100, 22)
	var a, b int64
	x.Send(NewRead(0x100, 8, func(r *Request) { a = int64(binary.LittleEndian.Uint64(r.Data)) }))
	x.Send(NewRead(0x2100, 8, func(r *Request) { b = int64(binary.LittleEndian.Uint64(r.Data)) }))
	env.q.Run()
	if a != 11 || b != 22 {
		t.Fatalf("routed reads: a=%d b=%d", a, b)
	}
	if spmA.Reads.Value() != 1 || spmB.Reads.Value() != 1 {
		t.Fatal("requests reached wrong targets")
	}
	if x.Routed.Value() != 2 {
		t.Fatalf("routed = %g", x.Routed.Value())
	}
}

func TestCrossbarDefaultRoute(t *testing.T) {
	env := newEnv(1 << 20)
	x := NewCrossbar("xbar", env.q, env.clk, 0, 4, env.stats)
	spm := NewScratchpad("spm", env.q, env.clk, env.space,
		AddrRange{Base: 0, Size: 0x1000}, 1, 1, 2, env.stats)
	dram := NewDRAM("dram", env.q, env.clk, env.space,
		AddrRange{Base: 0x10000, Size: 1 << 16}, env.stats)
	x.Attach(spm)
	x.SetDefault(dram)

	env.space.WriteI64(0x10040, 5)
	var v int64
	x.Send(NewRead(0x10040, 8, func(r *Request) { v = int64(binary.LittleEndian.Uint64(r.Data)) }))
	env.q.Run()
	if v != 5 {
		t.Fatalf("default route read = %d", v)
	}
	if dram.Reads.Value() != 1 {
		t.Fatal("default target not used")
	}
}

func TestCrossbarOverlapPanics(t *testing.T) {
	env := newEnv(1 << 16)
	x := NewCrossbar("xbar", env.q, env.clk, 0, 4, env.stats)
	x.Attach(NewScratchpad("a", env.q, env.clk, env.space, AddrRange{Base: 0, Size: 0x1000}, 1, 1, 1, env.stats))
	defer func() {
		if recover() == nil {
			t.Fatal("overlapping attach did not panic")
		}
	}()
	x.Attach(NewScratchpad("b", env.q, env.clk, env.space, AddrRange{Base: 0x800, Size: 0x1000}, 1, 1, 1, env.stats))
}

func TestCrossbarAddsLatency(t *testing.T) {
	run := func(fwd int) sim.Tick {
		env := newEnv(1 << 16)
		x := NewCrossbar("xbar", env.q, env.clk, fwd, 4, env.stats)
		spm := NewScratchpad("spm", env.q, env.clk, env.space,
			AddrRange{Base: 0, Size: 0x1000}, 1, 1, 2, env.stats)
		x.Attach(spm)
		var done sim.Tick
		x.Send(NewRead(0x10, 8, func(*Request) { done = env.q.Now() }))
		env.q.Run()
		return done
	}
	if !(run(3) > run(0)) {
		t.Fatal("forward latency has no effect")
	}
}

func TestMMRBlock(t *testing.T) {
	env := newEnv(64)
	mmr := NewMMRBlock("regs", env.q, env.clk, 0x9000, 4, env.stats)
	var writes []struct {
		idx int
		val uint64
	}
	mmr.OnWrite = func(idx int, val uint64) {
		writes = append(writes, struct {
			idx int
			val uint64
		}{idx, val})
	}

	data := make([]byte, 8)
	binary.LittleEndian.PutUint64(data, 0xdead)
	mmr.Send(NewWrite(0x9008, data, nil))
	env.q.Run()
	if mmr.Reg(1) != 0xdead {
		t.Fatalf("reg1 = %#x", mmr.Reg(1))
	}
	if len(writes) != 1 || writes[0].idx != 1 || writes[0].val != 0xdead {
		t.Fatalf("write callback: %+v", writes)
	}

	var got uint64
	mmr.Send(NewRead(0x9008, 8, func(r *Request) { got = binary.LittleEndian.Uint64(r.Data) }))
	env.q.Run()
	if got != 0xdead {
		t.Fatalf("read = %#x", got)
	}

	// ReadHook can override (e.g. live status).
	mmr.ReadHook = func(idx int, cur uint64) uint64 {
		if idx == 0 {
			return 0x1
		}
		return cur
	}
	mmr.Send(NewRead(0x9000, 8, func(r *Request) { got = binary.LittleEndian.Uint64(r.Data) }))
	env.q.Run()
	if got != 1 {
		t.Fatalf("hooked read = %#x", got)
	}
	if mmr.AddrOf(3) != 0x9018 {
		t.Fatalf("AddrOf(3) = %#x", mmr.AddrOf(3))
	}
}

func TestMMRBadAccessPanics(t *testing.T) {
	env := newEnv(64)
	mmr := NewMMRBlock("regs", env.q, env.clk, 0x9000, 4, env.stats)
	defer func() {
		if recover() == nil {
			t.Fatal("misaligned MMR access did not panic")
		}
	}()
	mmr.Send(NewRead(0x9004, 8, nil))
}

// Property: crossbar routing delivers every request to the device owning
// its address, for random target layouts and access streams.
func TestCrossbarRoutingProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		env := newEnv(1 << 16)
		x := NewCrossbar("xbar", env.q, env.clk, rng.Intn(3), 1+rng.Intn(8), env.stats)
		nTargets := 2 + rng.Intn(4)
		spms := make([]*Scratchpad, nTargets)
		for i := range spms {
			base := uint64(i) * 0x1000
			spms[i] = NewScratchpad(fmt.Sprintf("spm%d", i), env.q, env.clk, env.space,
				AddrRange{Base: base, Size: 0x1000}, 1, 1+rng.Intn(4), 1+rng.Intn(4), env.stats)
			x.Attach(spms[i])
		}
		n := 20 + rng.Intn(60)
		done := 0
		for i := 0; i < n; i++ {
			tgt := rng.Intn(nTargets)
			addr := uint64(tgt)*0x1000 + uint64(rng.Intn(0x1000-8))&^7
			x.Send(NewRead(addr, 8, func(*Request) { done++ }))
		}
		env.q.Run()
		if done != n {
			return false
		}
		total := 0.0
		for _, s := range spms {
			total += s.Reads.Value()
		}
		return total == float64(n) && x.Routed.Value() == float64(n)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: cyclic vs block SPM partitioning are functionally identical;
// only timing differs.
func TestSPMPartitionFunctionalEquivalence(t *testing.T) {
	prop := func(seed int64) bool {
		run := func(block bool) []byte {
			rng := rand.New(rand.NewSource(seed))
			env := newEnv(1 << 12)
			spm := NewScratchpad("spm", env.q, env.clk, env.space,
				AddrRange{Base: 0, Size: 1 << 12}, 1, 4, 1, env.stats)
			spm.BlockPartition = block
			n := 30 + rng.Intn(50)
			var issue func(k int)
			issue = func(k int) {
				if k >= n {
					return
				}
				addr := uint64(rng.Intn(1<<12-8)) &^ 7
				if rng.Intn(2) == 0 {
					data := make([]byte, 8)
					rng.Read(data)
					spm.Send(NewWrite(addr, data, func(*Request) { issue(k + 1) }))
				} else {
					spm.Send(NewRead(addr, 8, func(*Request) { issue(k + 1) }))
				}
			}
			issue(0)
			env.q.Run()
			return env.space.Data
		}
		a := run(false)
		b := run(true)
		return bytes.Equal(a, b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
