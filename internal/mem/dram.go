package mem

import (
	"gosalam/internal/sim"
	"gosalam/internal/timeline"
	"gosalam/ir"
)

// DRAM is a bandwidth-limited main-memory model with a per-bank row-buffer:
// row hits complete in HitCycles, row misses (precharge + activate) in
// MissCycles, and at most BytesPerCycle of data transfer per cycle is
// admitted, which models channel bandwidth.
type DRAM struct {
	sim.Clocked

	rng   AddrRange
	space *ir.FlatMem

	HitCycles     int
	MissCycles    int
	BytesPerCycle int
	Banks         int
	RowBytes      int

	queue   reqQueue
	openRow []uint64 // per bank; ^0 = closed
	// budget is the channel-bandwidth token bucket: BytesPerCycle tokens
	// accrue per cycle and requests consume their size, so admission
	// averages to the channel bandwidth even for bursts larger than one
	// cycle's tokens.
	budget int

	Reads, Writes, RowHits, RowMisses *sim.Scalar
	BytesMoved                        *sim.Scalar
	QueueDelay                        *sim.Distribution
}

// NewDRAM builds a DRAM over rng with DDR-ish defaults.
func NewDRAM(name string, q *sim.EventQueue, clk *sim.ClockDomain,
	space *ir.FlatMem, rng AddrRange, stats *sim.Group) *DRAM {
	d := &DRAM{
		rng: rng, space: space,
		HitCycles: 12, MissCycles: 30, BytesPerCycle: 16,
		Banks: 8, RowBytes: 2048,
		openRow: make([]uint64, 8),
	}
	for i := range d.openRow {
		d.openRow[i] = ^uint64(0)
	}
	d.InitClocked(name, q, clk)
	d.CycleFn = d.cycle
	g := stats.Child(name)
	d.Reads = g.Scalar("reads", "read requests")
	d.Writes = g.Scalar("writes", "write requests")
	d.RowHits = g.Scalar("row_hits", "row-buffer hits")
	d.RowMisses = g.Scalar("row_misses", "row-buffer misses")
	d.BytesMoved = g.Scalar("bytes", "total bytes transferred")
	d.QueueDelay = g.Distribution("queue_delay", "ticks queued before service")
	return d
}

// Range returns the DRAM address range.
func (d *DRAM) Range() AddrRange { return d.rng }

// Reset rewinds the DRAM for a warm-started run after the owning
// EventQueue has been Reset: the request queue empties, every row buffer
// closes, and the bandwidth bucket drains, matching cold construction.
func (d *DRAM) Reset() {
	d.queue.reset()
	for i := range d.openRow {
		d.openRow[i] = ^uint64(0)
	}
	d.budget = 0
	d.ResetClocked()
}

// AttachTimeline binds the clocked "active" lane for the DRAM channel —
// service cycles show as activity, gaps as idle. A nil recorder detaches.
func (d *DRAM) AttachTimeline(rec timeline.Recorder) {
	if rec == nil {
		d.Clocked.AttachTimeline(nil, 0)
		return
	}
	d.Clocked.AttachTimeline(rec, rec.Lane(d.Name(), "active"))
}

// Send enqueues a request.
func (d *DRAM) Send(r *Request) {
	if !d.rng.Contains(r.Addr, r.Size) {
		panic("mem: dram request outside range " + d.rng.String())
	}
	r.Issued = d.Q.Now()
	d.queue.push(r)
	d.Activate()
}

func (d *DRAM) cycle() bool {
	d.budget += d.BytesPerCycle
	if d.budget > d.BytesPerCycle {
		d.budget = d.BytesPerCycle // no banking of idle bandwidth
	}
	for d.budget > 0 && !d.queue.empty() {
		r := d.queue.pop()
		d.QueueDelay.Sample(float64(d.Q.Now() - r.Issued))
		d.budget -= r.Size

		bank := (r.Addr / uint64(d.RowBytes)) % uint64(d.Banks)
		row := r.Addr / uint64(d.RowBytes) / uint64(d.Banks)
		lat := d.HitCycles
		if d.openRow[bank] != row {
			lat = d.MissCycles
			d.RowMisses.Inc(1)
			d.openRow[bank] = row
		} else {
			d.RowHits.Inc(1)
		}
		if r.Write {
			d.Writes.Inc(1)
		} else {
			d.Reads.Inc(1)
		}
		d.BytesMoved.Inc(float64(r.Size))
		// Transfer time: latency + size/bandwidth.
		xfer := (r.Size + d.BytesPerCycle - 1) / d.BytesPerCycle
		complete(d.Q, d.space, r, d.Q.Now()+d.Clk.CyclesToTicks(uint64(lat+xfer)))
	}
	if d.queue.empty() {
		if d.budget < 0 {
			d.budget = 0 // don't carry channel debt across idle periods
		}
		return false
	}
	return true
}
