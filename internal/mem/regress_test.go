package mem

// Regression tests for the bugfix sweep: scratchpad multi-bank port
// accounting, the BlockDMA MMR busy-start contract, and the stream
// buffer's head-index FIFO.

import (
	"encoding/binary"
	"testing"

	"gosalam/internal/sim"
)

// TestScratchpadMultiBankBurst pins the banking fix: a burst wider than
// the interleaving word occupies every bank it touches, not just the one
// its start address hashes to. Under 8-byte cyclic interleaving with one
// port per bank, a 64-byte burst fills all eight banks' port slots, so a
// word access to a *different* bank the same cycle must wait — before the
// fix the two proceeded in parallel and partitioning sweeps under-counted
// exactly these conflicts.
func TestScratchpadMultiBankBurst(t *testing.T) {
	env := newEnv(1 << 16)
	spm := NewScratchpad("spm", env.q, env.clk, env.space,
		AddrRange{Base: 0, Size: 0x1000}, 1, 8, 1, env.stats)

	var burstDone, wordDone sim.Tick
	spm.Send(NewRead(0, 64, func(*Request) { burstDone = env.q.Now() })) // banks 0..7
	spm.Send(NewRead(8, 8, func(*Request) { wordDone = env.q.Now() }))   // bank 1
	env.q.Run()

	if burstDone == 0 || wordDone == 0 {
		t.Fatal("requests did not complete")
	}
	if wordDone <= burstDone {
		t.Fatalf("word access at tick %d not delayed behind burst at %d", wordDone, burstDone)
	}
	if got := wordDone - burstDone; got != env.clk.Period() {
		t.Fatalf("word access delayed %d ticks, want one cycle (%d)", got, env.clk.Period())
	}
	if spm.MultiBank.Value() != 1 {
		t.Fatalf("multi_bank_accesses = %g, want 1", spm.MultiBank.Value())
	}
	if spm.BankConflictCycles.Value() == 0 {
		t.Fatal("burst-induced conflict not counted")
	}
}

// TestScratchpadMultiBankWrap: a burst whose span wraps past the last
// bank charges banks modulo Banks and never overruns the port array.
func TestScratchpadMultiBankWrap(t *testing.T) {
	env := newEnv(1 << 16)
	spm := NewScratchpad("spm", env.q, env.clk, env.space,
		AddrRange{Base: 0, Size: 0x1000}, 1, 4, 1, env.stats)

	var wrapDone, wordDone sim.Tick
	// Banks 3, 0 (wraps). Arbitration runs in bank-index order, so the
	// bank-0 word access wins the cycle and the wrapped burst must stall
	// behind it — were the span computed without the wrap, both would
	// service in parallel.
	spm.Send(NewRead(24, 16, func(*Request) { wrapDone = env.q.Now() }))
	spm.Send(NewRead(32, 8, func(*Request) { wordDone = env.q.Now() }))
	env.q.Run()
	if wrapDone == 0 || wordDone == 0 {
		t.Fatal("requests did not complete")
	}
	if wrapDone-wordDone != env.clk.Period() {
		t.Fatalf("wrapped burst did not contend on bank 0 (delta %d)", wrapDone-wordDone)
	}
	// Wider than the bank count: span caps at Banks, still services.
	capDone := false
	spm.Send(NewRead(0x100, 64, func(*Request) { capDone = true })) // 8 words, 4 banks
	env.q.Run()
	if !capDone {
		t.Fatal("burst wider than the bank count never completed")
	}
}

// TestScratchpadSingleWordUnchanged: accesses no wider than the
// interleaving word behave exactly as before the fix — PortsPerBank of
// them service per bank per cycle.
func TestScratchpadSingleWordUnchanged(t *testing.T) {
	env := newEnv(1 << 16)
	spm := NewScratchpad("spm", env.q, env.clk, env.space,
		AddrRange{Base: 0, Size: 0x1000}, 1, 2, 2, env.stats)
	done := 0
	var last sim.Tick
	// Four word reads on bank 0: two ports drain them in two cycles.
	for i := 0; i < 4; i++ {
		spm.Send(NewRead(uint64(i*16), 8, func(*Request) { done++; last = env.q.Now() }))
	}
	env.q.Run()
	if done != 4 {
		t.Fatalf("completed %d of 4", done)
	}
	if spm.MultiBank.Value() != 0 {
		t.Fatalf("word accesses counted as multi-bank: %g", spm.MultiBank.Value())
	}
	_ = last
	if spm.BankConflictCycles.Value() != 1 {
		t.Fatalf("bank_conflict_cycles = %g, want 1 (4 reads / 2 ports)", spm.BankConflictCycles.Value())
	}
}

// TestBlockDMADroppedStart pins the MMR busy-start contract: a ctrl start
// written while a transfer is in flight is ignored, counted in
// dropped_starts, and the in-flight transfer completes untouched.
func TestBlockDMADroppedStart(t *testing.T) {
	env := newEnv(1 << 16)
	dram := NewDRAM("dram", env.q, env.clk, env.space, AddrRange{Base: 0, Size: 1 << 16}, env.stats)
	dma := NewBlockDMA("dma", env.q, env.clk, 0xF0000000, dram, env.stats)

	n := 256
	for i := 0; i < n; i++ {
		env.space.Data[0x100+i] = byte(i * 3)
	}
	wr := func(idx int, val uint64) {
		data := make([]byte, 8)
		binary.LittleEndian.PutUint64(data, val)
		dma.MMR.Send(NewWrite(dma.MMR.AddrOf(idx), data, nil))
	}
	wr(DMARegSrc, 0x100)
	wr(DMARegDst, 0x4000)
	wr(DMARegLen, uint64(n))
	wr(DMARegBurst, 64)
	wr(DMARegCtrl, 1)
	// Re-arm while busy: the engine has no doorbell queue, so this start
	// (with different registers) must vanish without corrupting the
	// in-flight transfer.
	env.q.Schedule(env.q.Now()+env.clk.Period(), sim.PriDefault, func() {
		if !dma.Busy() {
			t.Error("DMA not busy one cycle after start")
		}
		wr(DMARegDst, 0x8000)
		wr(DMARegCtrl, 1)
	})
	env.q.Run()

	if dma.DroppedStarts.Value() != 1 {
		t.Fatalf("dropped_starts = %g, want 1", dma.DroppedStarts.Value())
	}
	if dma.Transfers.Value() != 1 {
		t.Fatalf("transfers = %g, want 1 (dropped start must not queue)", dma.Transfers.Value())
	}
	for i := 0; i < n; i++ {
		if env.space.Data[0x4000+i] != byte(i*3) {
			t.Fatalf("dst[%d] corrupted by dropped start", i)
		}
	}
	// The engine is re-armable after completion: the same MMRs start a
	// second transfer normally.
	wr(DMARegDst, 0x8000)
	wr(DMARegCtrl, 1)
	env.q.Run()
	if dma.Transfers.Value() != 2 {
		t.Fatalf("transfers after re-arm = %g, want 2", dma.Transfers.Value())
	}
	if env.space.Data[0x8000] != 0 || env.space.Data[0x8000+1] != 3 {
		t.Fatal("re-armed transfer did not run")
	}
}

// TestStreamBufferHeadReuse pins the Pop re-slice fix: draining the FIFO
// through many push/pop rounds must keep the backing array bounded — the
// old `data = data[n:]` permanently discarded the popped prefix's
// capacity, so a long-lived stream grew its allocation forever.
func TestStreamBufferHeadReuse(t *testing.T) {
	stats := newEnv(64).stats
	sb := NewStreamBuffer("fifo", 64, stats)

	// Steady-state streaming at half fill: after the initial fill, no
	// round should allocate.
	chunk := make([]byte, 16)
	for i := range chunk {
		chunk[i] = byte(i)
	}
	sb.Push(chunk)
	sb.Push(chunk)
	allocs := testing.AllocsPerRun(200, func() {
		if !sb.Push(chunk) {
			t.Fatal("push failed at half fill")
		}
		if _, ok := sb.Pop(16); !ok {
			t.Fatal("pop failed at half fill")
		}
	})
	// Pop returns a fresh slice (one alloc); the backing array itself must
	// not grow, so exactly that one allocation per round is allowed.
	if allocs > 1 {
		t.Fatalf("steady-state push/pop allocates %.1f objects/op, want <= 1 (backing array grows)", allocs)
	}

	// Byte-exactness across the compaction path: interleave uneven pushes
	// and pops and verify strict FIFO order.
	sb2 := NewStreamBuffer("fifo2", 32, stats)
	var wrote, read []byte
	next := byte(0)
	push := func(n int) {
		p := make([]byte, n)
		for i := range p {
			p[i] = next
			next++
		}
		if !sb2.Push(p) {
			t.Fatalf("push %d failed with %d free", n, sb2.Space())
		}
		wrote = append(wrote, p...)
	}
	pop := func(n int) {
		p, ok := sb2.Pop(n)
		if !ok {
			t.Fatalf("pop %d failed with %d buffered", n, sb2.Len())
		}
		read = append(read, p...)
	}
	push(20)
	pop(13)  // head advances
	push(24) // forces compaction: 7 live + 24 > cap grown for 20
	pop(31)
	push(5)
	pop(5)
	if len(read) != len(wrote) {
		t.Fatalf("read %d bytes, wrote %d", len(read), len(wrote))
	}
	for i := range wrote {
		if read[i] != wrote[i] {
			t.Fatalf("byte %d = %d, want %d (FIFO order broken by compaction)", i, read[i], wrote[i])
		}
	}

	// Reset drops buffered bytes and forgets registered wakeups.
	sb2.Push([]byte{1, 2, 3})
	fired := false
	sb2.NotifyData(func() { fired = true })
	sb2.Reset()
	if sb2.Len() != 0 {
		t.Fatalf("Len after Reset = %d", sb2.Len())
	}
	sb2.Push([]byte{9})
	if fired {
		t.Fatal("stale wakeup survived Reset")
	}
	p, ok := sb2.Pop(1)
	if !ok || p[0] != 9 {
		t.Fatalf("post-Reset pop = %v, %v", p, ok)
	}
}
