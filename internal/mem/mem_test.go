package mem

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"

	"gosalam/internal/sim"
	"gosalam/ir"
)

// testEnv wires a queue, clock, space and stats root.
type testEnv struct {
	q     *sim.EventQueue
	clk   *sim.ClockDomain
	space *ir.FlatMem
	stats *sim.Group
}

func newEnv(spaceSize int) *testEnv {
	return &testEnv{
		q:     sim.NewEventQueue(),
		clk:   sim.NewClockDomain("clk", 1000), // 1 GHz
		space: ir.NewFlatMem(0, spaceSize),
		stats: sim.NewGroup("sys"),
	}
}

func TestAddrRange(t *testing.T) {
	r := AddrRange{Base: 0x1000, Size: 0x100}
	if !r.Contains(0x1000, 1) || !r.Contains(0x10f8, 8) {
		t.Fatal("Contains false negative")
	}
	if r.Contains(0xfff, 1) || r.Contains(0x10f9, 8) {
		t.Fatal("Contains false positive")
	}
	if !r.Overlaps(AddrRange{Base: 0x10ff, Size: 1}) {
		t.Fatal("Overlaps false negative")
	}
	if r.Overlaps(AddrRange{Base: 0x1100, Size: 1}) {
		t.Fatal("Overlaps false positive")
	}
}

func TestScratchpadReadWrite(t *testing.T) {
	env := newEnv(1 << 16)
	spm := NewScratchpad("spm", env.q, env.clk, env.space,
		AddrRange{Base: 0x0, Size: 0x1000}, 1, 2, 2, env.stats)

	env.space.WriteI64(0x100, 42)
	var got int64
	doneTick := sim.Tick(0)
	spm.Send(NewRead(0x100, 8, func(r *Request) {
		got = int64(binary.LittleEndian.Uint64(r.Data))
		doneTick = env.q.Now()
	}))
	env.q.Run()
	if got != 42 {
		t.Fatalf("read = %d, want 42", got)
	}
	if doneTick == 0 {
		t.Fatal("completion tick not recorded")
	}

	// Write lands in backing store.
	data := make([]byte, 8)
	binary.LittleEndian.PutUint64(data, 99)
	spm.Send(NewWrite(0x108, data, nil))
	env.q.Run()
	if env.space.ReadI64(0x108) != 99 {
		t.Fatal("write did not reach backing store")
	}
	if spm.Reads.Value() != 1 || spm.Writes.Value() != 1 {
		t.Fatalf("stats: reads=%g writes=%g", spm.Reads.Value(), spm.Writes.Value())
	}
}

func TestScratchpadBankConflicts(t *testing.T) {
	env := newEnv(1 << 16)
	// 1 bank, 1 port: N requests serialize over N cycles.
	spm := NewScratchpad("spm1", env.q, env.clk, env.space,
		AddrRange{Base: 0, Size: 0x1000}, 1, 1, 1, env.stats)
	n := 8
	doneCount := 0
	var last sim.Tick
	for i := 0; i < n; i++ {
		spm.Send(NewRead(uint64(i*8), 8, func(*Request) {
			doneCount++
			last = env.q.Now()
		}))
	}
	env.q.Run()
	if doneCount != n {
		t.Fatalf("completed %d of %d", doneCount, n)
	}
	serialized := last

	// 4 banks, 2 ports each: same requests finish much sooner.
	env2 := newEnv(1 << 16)
	spm2 := NewScratchpad("spm8", env2.q, env2.clk, env2.space,
		AddrRange{Base: 0, Size: 0x1000}, 1, 4, 2, env2.stats)
	var last2 sim.Tick
	for i := 0; i < n; i++ {
		spm2.Send(NewRead(uint64(i*8), 8, func(*Request) { last2 = env2.q.Now() }))
	}
	env2.q.Run()
	if !(last2 < serialized) {
		t.Fatalf("banked SPM (%d) not faster than single-port (%d)", last2, serialized)
	}
	if spm.BankConflictCycles.Value() == 0 {
		t.Fatal("single-port SPM should report conflicts")
	}
}

func TestScratchpadPartitioning(t *testing.T) {
	env := newEnv(1 << 16)
	spm := NewScratchpad("spm", env.q, env.clk, env.space,
		AddrRange{Base: 0, Size: 1024}, 1, 4, 1, env.stats)
	// Cyclic: consecutive words hit different banks.
	seen := map[int]bool{}
	for i := 0; i < 4; i++ {
		seen[spm.bank(uint64(i*8))] = true
	}
	if len(seen) != 4 {
		t.Fatalf("cyclic partitioning used %d banks, want 4", len(seen))
	}
	// Block: consecutive words hit the same bank.
	spm.BlockPartition = true
	if spm.bank(0) != spm.bank(8) {
		t.Fatal("block partitioning split adjacent words")
	}
	if spm.bank(0) == spm.bank(1023) {
		t.Fatal("block partitioning put far addresses in one bank")
	}
}

func TestScratchpadOutOfRangePanics(t *testing.T) {
	env := newEnv(1 << 16)
	spm := NewScratchpad("spm", env.q, env.clk, env.space,
		AddrRange{Base: 0, Size: 64}, 1, 1, 1, env.stats)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range access did not panic")
		}
	}()
	spm.Send(NewRead(128, 8, nil))
}

func TestDRAMRowBuffer(t *testing.T) {
	env := newEnv(1 << 20)
	d := NewDRAM("dram", env.q, env.clk, env.space,
		AddrRange{Base: 0, Size: 1 << 20}, env.stats)
	// Sequential accesses within one row: first misses, rest hit.
	n := 8
	done := 0
	for i := 0; i < n; i++ {
		d.Send(NewRead(uint64(i*64), 64, func(*Request) { done++ }))
	}
	env.q.Run()
	if done != n {
		t.Fatalf("done = %d", done)
	}
	if d.RowMisses.Value() != 1 || d.RowHits.Value() != float64(n-1) {
		t.Fatalf("row hits=%g misses=%g", d.RowHits.Value(), d.RowMisses.Value())
	}

	// Strided accesses across banks*rows: many misses.
	env2 := newEnv(1 << 20)
	d2 := NewDRAM("dram", env2.q, env2.clk, env2.space,
		AddrRange{Base: 0, Size: 1 << 20}, env2.stats)
	for i := 0; i < n; i++ {
		d2.Send(NewRead(uint64(i*d2.RowBytes*d2.Banks), 64, nil))
	}
	env2.q.Run()
	if d2.RowMisses.Value() != float64(n) {
		t.Fatalf("strided misses = %g, want %d", d2.RowMisses.Value(), n)
	}
}

func TestDRAMBandwidthLimits(t *testing.T) {
	// Time to move N bytes should scale with N / BytesPerCycle.
	env := newEnv(1 << 20)
	d := NewDRAM("dram", env.q, env.clk, env.space, AddrRange{Base: 0, Size: 1 << 20}, env.stats)
	var t1 sim.Tick
	for i := 0; i < 64; i++ {
		d.Send(NewRead(uint64(i*64), 64, func(*Request) { t1 = env.q.Now() }))
	}
	env.q.Run()
	minTicks := sim.Tick(64 * 64 / d.BytesPerCycle * int(env.clk.Period()))
	if t1 < minTicks {
		t.Fatalf("4KB moved in %d ticks; bandwidth limit would need >= %d", t1, minTicks)
	}
}

func TestCacheHitMissAndWriteback(t *testing.T) {
	env := newEnv(1 << 20)
	dram := NewDRAM("dram", env.q, env.clk, env.space, AddrRange{Base: 0, Size: 1 << 20}, env.stats)
	c := NewCache("l1", env.q, env.clk, env.space, AddrRange{Base: 0, Size: 1 << 20},
		dram, 1024, 64, 2, 1, 4, env.stats)

	env.space.WriteI64(0x40, 7)
	var v1, v2 int64
	var t1, t2 sim.Tick
	c.Send(NewRead(0x40, 8, func(r *Request) {
		v1 = int64(binary.LittleEndian.Uint64(r.Data))
		t1 = env.q.Now()
		// Second access to the same line: hit, much faster.
		start := env.q.Now()
		c.Send(NewRead(0x48, 8, func(r2 *Request) {
			v2 = int64(binary.LittleEndian.Uint64(r2.Data))
			t2 = env.q.Now() - start
		}))
	}))
	env.q.Run()
	if v1 != 7 || v2 != 0 {
		t.Fatalf("values %d %d", v1, v2)
	}
	if c.Hits.Value() != 1 || c.Misses.Value() != 1 {
		t.Fatalf("hits=%g misses=%g", c.Hits.Value(), c.Misses.Value())
	}
	if t2 >= t1 {
		t.Fatalf("hit latency %d not faster than miss %d", t2, t1)
	}

	// Fill the cache with dirty lines, then evict: writebacks happen.
	writes := 0
	for i := 0; i < 64; i++ { // 64 lines > 16-line cache
		data := make([]byte, 8)
		binary.LittleEndian.PutUint64(data, uint64(i))
		c.Send(NewWrite(uint64(i*64), data, func(*Request) { writes++ }))
	}
	env.q.Run()
	if writes != 64 {
		t.Fatalf("writes completed = %d", writes)
	}
	if c.Writebacks.Value() == 0 {
		t.Fatal("no writebacks after evicting dirty lines")
	}
	// All data functionally correct.
	for i := 0; i < 64; i++ {
		if env.space.ReadI64(uint64(i*64)) != int64(i) {
			t.Fatalf("space[%d] = %d", i*64, env.space.ReadI64(uint64(i*64)))
		}
	}
}

func TestCacheMSHRCoalescing(t *testing.T) {
	env := newEnv(1 << 20)
	dram := NewDRAM("dram", env.q, env.clk, env.space, AddrRange{Base: 0, Size: 1 << 20}, env.stats)
	c := NewCache("l1", env.q, env.clk, env.space, AddrRange{Base: 0, Size: 1 << 20},
		dram, 1024, 64, 2, 1, 2, env.stats)
	// 4 requests to the same line: 1 fill, all complete.
	done := 0
	for i := 0; i < 4; i++ {
		c.Send(NewRead(uint64(i*8), 8, func(*Request) { done++ }))
	}
	env.q.Run()
	if done != 4 {
		t.Fatalf("done = %d", done)
	}
	if c.Fills.Value() != 1 {
		t.Fatalf("fills = %g, want 1 (coalesced)", c.Fills.Value())
	}
	if dram.Reads.Value() != 1 {
		t.Fatalf("dram reads = %g, want 1", dram.Reads.Value())
	}
}

func TestCacheLRU(t *testing.T) {
	env := newEnv(1 << 20)
	dram := NewDRAM("dram", env.q, env.clk, env.space, AddrRange{Base: 0, Size: 1 << 20}, env.stats)
	// Direct-mapped-ish tiny cache: 2 sets x 2 ways of 64B lines = 256B.
	c := NewCache("l1", env.q, env.clk, env.space, AddrRange{Base: 0, Size: 1 << 20},
		dram, 256, 64, 2, 1, 4, env.stats)
	// Lines mapping to set 0: addresses 0, 128, 256 (line/64 % 2).
	seq := []uint64{0, 128, 0, 256, 0, 128}
	var run func(i int)
	run = func(i int) {
		if i >= len(seq) {
			return
		}
		c.Send(NewRead(seq[i], 8, func(*Request) { run(i + 1) }))
	}
	run(0)
	env.q.Run()
	// 0 miss, 128 miss, 0 hit, 256 miss (evicts LRU=128), 0 hit, 128 miss.
	if c.Misses.Value() != 4 || c.Hits.Value() != 2 {
		t.Fatalf("hits=%g misses=%g, want 2/4 (LRU)", c.Hits.Value(), c.Misses.Value())
	}
}

// Property: a cache in front of DRAM is functionally transparent for
// random access streams.
func TestCacheFunctionalTransparencyProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		env := newEnv(1 << 16)
		ref := make([]byte, 1<<16)
		dram := NewDRAM("dram", env.q, env.clk, env.space, AddrRange{Base: 0, Size: 1 << 16}, env.stats)
		c := NewCache("l1", env.q, env.clk, env.space, AddrRange{Base: 0, Size: 1 << 16},
			dram, 512, 64, 2, 1, 4, env.stats)

		type check struct {
			want []byte
			got  *Request
		}
		var checks []check
		n := 50 + rng.Intn(100)
		var issue func(k int)
		issue = func(k int) {
			if k >= n {
				return
			}
			addr := uint64(rng.Intn(1<<16-8)) &^ 7
			if rng.Intn(2) == 0 {
				data := make([]byte, 8)
				rng.Read(data)
				copy(ref[addr:], data)
				c.Send(NewWrite(addr, data, func(*Request) { issue(k + 1) }))
			} else {
				want := make([]byte, 8)
				copy(want, ref[addr:addr+8])
				r := NewRead(addr, 8, func(rr *Request) { issue(k + 1) })
				checks = append(checks, check{want: want, got: r})
				c.Send(r)
			}
		}
		issue(0)
		env.q.Run()
		for _, ch := range checks {
			if !bytes.Equal(ch.want, ch.got.Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Regression: a dirty line evicted before its write's completion event has
// fired must not clobber the newer data with a stale writeback snapshot.
// (Writebacks are timing-only; the backing store is always current.)
func TestCacheEvictionDoesNotClobberPendingWrites(t *testing.T) {
	env := newEnv(1 << 20)
	dram := NewDRAM("dram", env.q, env.clk, env.space, AddrRange{Base: 0, Size: 1 << 20}, env.stats)
	// Tiny direct-mapped cache: 2 lines of 64B. Addresses 0 and 128 alias.
	c := NewCache("l1", env.q, env.clk, env.space, AddrRange{Base: 0, Size: 1 << 20},
		dram, 128, 64, 1, 1, 4, env.stats)

	data := func(v uint64) []byte {
		d := make([]byte, 8)
		binary.LittleEndian.PutUint64(d, v)
		return d
	}
	// Dirty line 0, then evict it through the aliasing line and rewrite
	// the word before the writeback's downstream completion lands. A
	// data-carrying writeback would clobber the newer value.
	c.Send(NewWrite(0, data(0xAAAA), nil))
	env.q.Run()
	c.Send(NewRead(128, 8, nil)) // evicts dirty line 0 -> writeback
	env.q.RunWhile(func() bool { return c.Writebacks.Value() == 0 })
	// The writeback is now in flight toward DRAM; newer data appears.
	env.space.WriteI64(0, 0xBBBB)
	env.q.Run()
	if got := env.space.ReadI64(0); uint64(got) != 0xBBBB {
		t.Fatalf("space[0] = %#x, want 0xBBBB (stale writeback clobbered it)", got)
	}
	if c.Writebacks.Value() == 0 {
		t.Fatal("test did not exercise writebacks")
	}
}
