package mem

import (
	"gosalam/internal/hw"
	"gosalam/internal/sim"
	"gosalam/internal/snapshot"
	"gosalam/internal/timeline"
	"gosalam/ir"
)

// Cache is a set-associative, write-back, write-allocate, non-blocking
// cache with LRU replacement and a bounded MSHR file. Data is functional
// in the global backing store; the cache models timing (hits, misses,
// fills, writebacks) — the gem5 classic-cache role in the paper's memory
// hierarchy.
type Cache struct {
	sim.Clocked

	rng        AddrRange // addresses this cache fronts
	space      *ir.FlatMem
	downstream Port

	SizeBytes  int
	LineBytes  int
	Assoc      int
	HitCycles  int
	MSHRs      int
	PortsPerCy int

	sets     []cacheSet
	incoming reqQueue
	mshr     map[uint64]*mshrEntry
	// mshrOrder holds live entries in allocation order, so snapshots can
	// enumerate the MSHR file without ranging over the map.
	mshrOrder []*mshrEntry
	lruTick   uint64

	// rec, when non-nil, receives hit/miss instants and an MSHR-occupancy
	// counter (AttachTimeline).
	rec              timeline.Recorder
	tlAccess, tlMSHR timeline.LaneID

	// Stats.
	Hits, Misses, Writebacks, Fills *sim.Scalar
	MSHRStallCycles                 *sim.Scalar
	Accesses                        *sim.Scalar
	// Reads/Writes count accepted accesses by direction (unlike Accesses,
	// which also counts MSHR-full retries of the same request) — the
	// denominators the energy accounting charges CACTI read/write energy
	// against.
	Reads, Writes *sim.Scalar
}

type cacheLine struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint64
}

type cacheSet struct {
	lines []cacheLine
}

type mshrEntry struct {
	lineAddr uint64
	waiting  []*Request
}

// NewCache builds a cache fronting rng, forwarding misses downstream.
func NewCache(name string, q *sim.EventQueue, clk *sim.ClockDomain,
	space *ir.FlatMem, rng AddrRange, downstream Port,
	sizeBytes, lineBytes, assoc, hitCycles, mshrs int, stats *sim.Group) *Cache {
	if lineBytes <= 0 {
		lineBytes = 64
	}
	if assoc <= 0 {
		assoc = 1
	}
	nLines := sizeBytes / lineBytes
	if nLines < assoc {
		assoc = max(1, nLines)
	}
	nSets := max(1, nLines/assoc)
	c := &Cache{
		rng: rng, space: space, downstream: downstream,
		SizeBytes: sizeBytes, LineBytes: lineBytes, Assoc: assoc,
		HitCycles: hitCycles, MSHRs: max(1, mshrs), PortsPerCy: 2,
		sets: make([]cacheSet, nSets),
		mshr: map[uint64]*mshrEntry{},
	}
	for i := range c.sets {
		c.sets[i].lines = make([]cacheLine, assoc)
	}
	c.InitClocked(name, q, clk)
	c.CycleFn = c.cycle
	g := stats.Child(name)
	c.Accesses = g.Scalar("accesses", "total accesses")
	c.Reads = g.Scalar("reads", "read accesses accepted")
	c.Writes = g.Scalar("writes", "write accesses accepted")
	c.Hits = g.Scalar("hits", "hits")
	c.Misses = g.Scalar("misses", "misses")
	c.Writebacks = g.Scalar("writebacks", "dirty evictions written back")
	c.Fills = g.Scalar("fills", "line fills from downstream")
	c.MSHRStallCycles = g.Scalar("mshr_stall_cycles", "cycles stalled on full MSHRs")
	g.Formula("miss_rate", "misses / accesses", func() float64 {
		if c.Accesses.Value() == 0 {
			return 0
		}
		return c.Misses.Value() / c.Accesses.Value()
	})
	return c
}

// Range returns the address range the cache fronts.
func (c *Cache) Range() AddrRange { return c.rng }

// Reset rewinds the cache to its cold state for a warm-started run after
// the owning EventQueue has been Reset: every line is invalidated, the MSHR
// file and incoming queue are emptied, and the LRU clock restarts, so a
// warm run observes exactly the cold-miss behaviour of a fresh cache.
func (c *Cache) Reset() {
	for i := range c.sets {
		lines := c.sets[i].lines
		for j := range lines {
			lines[j] = cacheLine{}
		}
	}
	clear(c.mshr)
	c.mshrOrder = c.mshrOrder[:0]
	c.incoming.reset()
	c.lruTick = 0
	c.ResetClocked()
}

// AttachTimeline binds recorder lanes for the cache: the clocked
// "active" lane, an access lane carrying hit/miss instants, and an MSHR
// occupancy counter. A nil recorder detaches.
func (c *Cache) AttachTimeline(rec timeline.Recorder) {
	c.rec = rec
	if rec == nil {
		c.Clocked.AttachTimeline(nil, 0)
		return
	}
	name := c.Name()
	c.Clocked.AttachTimeline(rec, rec.Lane(name, "active"))
	c.tlAccess = rec.Lane(name, "access")
	c.tlMSHR = rec.Lane(name, "mshr")
}

// Cacti returns the analytic power/area model for this configuration.
func (c *Cache) Cacti() hw.CactiCache {
	return hw.NewCactiCache(c.SizeBytes, c.LineBytes, c.Assoc)
}

func (c *Cache) lineAddr(addr uint64) uint64 { return addr &^ uint64(c.LineBytes-1) }
func (c *Cache) setIdx(lineAddr uint64) int {
	return int(lineAddr/uint64(c.LineBytes)) % len(c.sets)
}

// Send enqueues a request.
func (c *Cache) Send(r *Request) {
	r.Issued = c.Q.Now()
	c.incoming.push(r)
	c.Activate()
}

func (c *Cache) cycle() bool {
	served := 0
	for served < c.PortsPerCy && !c.incoming.empty() {
		r := c.incoming.peek()
		if !c.tryAccess(r) {
			c.MSHRStallCycles.Inc(1)
			break // head-of-line stall on full MSHRs
		}
		c.incoming.pop()
		served++
	}
	return !c.incoming.empty() || len(c.mshr) > 0
}

// tryAccess handles one request; false means it must retry (MSHRs full).
func (c *Cache) tryAccess(r *Request) bool {
	la := c.lineAddr(r.Addr)
	// Accesses that straddle a line are split conservatively by treating
	// the first line as the homed line; kernels here are aligned.
	set := &c.sets[c.setIdx(la)]
	c.Accesses.Inc(1)
	for i := range set.lines {
		ln := &set.lines[i]
		if ln.valid && ln.tag == la {
			// Hit.
			c.countAccess(r)
			c.Hits.Inc(1)
			if c.rec != nil {
				c.rec.Instant(c.tlAccess, uint64(c.Q.Now()), "hit")
			}
			c.lruTick++
			ln.lru = c.lruTick
			if r.Write {
				ln.dirty = true
			}
			complete(c.Q, c.space, r, c.Q.Now()+c.Clk.CyclesToTicks(uint64(c.HitCycles)))
			return true
		}
	}
	// Miss.
	if e, ok := c.mshr[la]; ok {
		c.countAccess(r)
		c.Misses.Inc(1)
		if c.rec != nil {
			c.rec.Instant(c.tlAccess, uint64(c.Q.Now()), "miss")
		}
		e.waiting = append(e.waiting, r)
		return true
	}
	if len(c.mshr) >= c.MSHRs {
		return false
	}
	c.countAccess(r)
	c.Misses.Inc(1)
	if c.rec != nil {
		c.rec.Instant(c.tlAccess, uint64(c.Q.Now()), "miss")
	}
	e := &mshrEntry{lineAddr: la, waiting: []*Request{r}}
	c.mshr[la] = e
	c.mshrOrder = append(c.mshrOrder, e)
	if c.rec != nil {
		c.rec.Counter(c.tlMSHR, uint64(c.Q.Now()), float64(len(c.mshr)))
	}
	// Fetch the line from downstream.
	fill := c.newFill(e)
	c.downstream.Send(fill)
	return true
}

// countAccess books one accepted access against its direction counter.
func (c *Cache) countAccess(r *Request) {
	if r.Write {
		c.Writes.Inc(1)
	} else {
		c.Reads.Inc(1)
	}
}

// newFill builds the downstream line-fetch request for an MSHR entry,
// tagged so a snapshot can claim it wherever it is in flight.
func (c *Cache) newFill(e *mshrEntry) *Request {
	fill := NewRead(e.lineAddr, c.LineBytes, func(*Request) { c.fill(e) })
	fill.Owner = snapshot.OwnerCacheFill
	fill.OwnerID = e.lineAddr
	return fill
}

// fill installs the fetched line and releases waiters.
func (c *Cache) fill(e *mshrEntry) {
	c.Fills.Inc(1)
	set := &c.sets[c.setIdx(e.lineAddr)]
	// Choose LRU victim.
	victim := 0
	for i := range set.lines {
		if !set.lines[i].valid {
			victim = i
			break
		}
		if set.lines[i].lru < set.lines[victim].lru {
			victim = i
		}
	}
	v := &set.lines[victim]
	if v.valid && v.dirty {
		c.Writebacks.Inc(1)
		// The backing store is already functionally current; the
		// writeback only models downstream bandwidth and latency.
		wb := NewWrite(v.tag, make([]byte, c.LineBytes), nil)
		wb.TimingOnly = true
		wb.Owner = snapshot.OwnerWriteback
		c.downstream.Send(wb)
	}
	c.lruTick++
	*v = cacheLine{tag: e.lineAddr, valid: true, lru: c.lruTick}
	delete(c.mshr, e.lineAddr)
	for i, o := range c.mshrOrder {
		if o == e {
			c.mshrOrder = append(c.mshrOrder[:i], c.mshrOrder[i+1:]...)
			break
		}
	}
	if c.rec != nil {
		c.rec.Counter(c.tlMSHR, uint64(c.Q.Now()), float64(len(c.mshr)))
	}
	lat := c.Clk.CyclesToTicks(uint64(c.HitCycles))
	for _, r := range e.waiting {
		if r.Write {
			v.dirty = true
		}
		complete(c.Q, c.space, r, c.Q.Now()+lat)
	}
	c.Activate()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
