package mem

import (
	"fmt"

	"gosalam/internal/sim"
	"gosalam/internal/snapshot"
	"gosalam/ir"
)

// This file is the mem half of checkpoint/restore. Requests are captured
// wherever they currently live — a device queue, an MSHR waiting list, or
// the event queue as a scheduled completion — identified by their Owner
// tag. Restore materializes each captured request through a Resolver that
// rebinds the owner's Done callback, then puts it back exactly where it
// was. Read Data is never captured: Fire fills read buffers at fire time,
// so only the (Addr, Size) coordinates matter before then.

// Resolver rebuilds a live *Request (with the correct Done callback and,
// for writes, payload buffer) from its captured form. The root package
// supplies one that dispatches on the Owner tag.
type Resolver func(snapshot.Req) (*Request, error)

// CaptureReq captures one in-flight request. It fails on untagged
// requests: without an owner no restore could rebind the callback.
func CaptureReq(r *Request) (snapshot.Req, error) {
	if r.Owner == snapshot.OwnerNone {
		return snapshot.Req{}, fmt.Errorf("mem: request %#x (size %d) has no snapshot owner", r.Addr, r.Size)
	}
	sr := snapshot.Req{
		Owner: r.Owner, OwnerID: r.OwnerID,
		Addr: r.Addr, Size: r.Size, Write: r.Write, TimingOnly: r.TimingOnly,
		Issued: uint64(r.Issued),
	}
	if r.Write && !r.TimingOnly {
		sr.Data = append([]byte(nil), r.Data...)
	}
	return sr, nil
}

// materialize resolves a captured request and re-stamps the fields every
// owner shares.
func materialize(sr snapshot.Req, resolve Resolver) (*Request, error) {
	r, err := resolve(sr)
	if err != nil {
		return nil, err
	}
	r.Issued = sim.Tick(sr.Issued)
	return r, nil
}

// RebuildWriteback reconstructs a timing-only cache writeback; it carries
// no callback and no functional payload, only bandwidth.
func RebuildWriteback(sr snapshot.Req) *Request {
	wb := NewWrite(sr.Addr, make([]byte, sr.Size), nil)
	wb.TimingOnly = true
	wb.Owner = snapshot.OwnerWriteback
	return wb
}

// RestoreScheduled re-inserts a request's completion event with its
// captured coordinates, bound to the backing store exactly as complete
// would have bound it.
func RestoreScheduled(q *sim.EventQueue, space *ir.FlatMem, r *Request, ev snapshot.Event) {
	r.space = space
	q.ScheduleRestoredObj(ev, r)
}

// capture snapshots a request FIFO in order.
func (q *reqQueue) capture() ([]snapshot.Req, error) {
	out := make([]snapshot.Req, 0, q.n)
	for i := 0; i < q.n; i++ {
		sr, err := CaptureReq(q.items[(q.head+i)%len(q.items)])
		if err != nil {
			return nil, err
		}
		out = append(out, sr)
	}
	return out, nil
}

// restore refills a freshly reset FIFO from captured requests.
func (q *reqQueue) restore(reqs []snapshot.Req, resolve Resolver) error {
	for _, sr := range reqs {
		r, err := materialize(sr, resolve)
		if err != nil {
			return err
		}
		q.push(r)
	}
	return nil
}

// CaptureState snapshots the scratchpad's dynamic state.
func (s *Scratchpad) CaptureState() (snapshot.SPM, error) {
	st := snapshot.SPM{Clk: s.CaptureClock(), Queues: make([][]snapshot.Req, len(s.queues))}
	for b := range s.queues {
		reqs, err := s.queues[b].capture()
		if err != nil {
			return snapshot.SPM{}, fmt.Errorf("%s bank %d: %w", s.Name(), b, err)
		}
		st.Queues[b] = reqs
	}
	return st, nil
}

// RestoreState rewinds a freshly Reset scratchpad into a captured state.
func (s *Scratchpad) RestoreState(st snapshot.SPM, resolve Resolver) error {
	if len(st.Queues) != len(s.queues) {
		return fmt.Errorf("mem: %s: image has %d banks, scratchpad has %d", s.Name(), len(st.Queues), len(s.queues))
	}
	for b := range st.Queues {
		if err := s.queues[b].restore(st.Queues[b], resolve); err != nil {
			return err
		}
	}
	s.RestoreClock(st.Clk)
	return nil
}

// CaptureState snapshots the cache's dynamic state: line tags, LRU clock,
// the incoming queue, and the MSHR file (in allocation order) with each
// entry's waiting requests. The in-flight fill requests themselves are
// captured wherever they live, as OwnerCacheFill requests.
func (c *Cache) CaptureState() (snapshot.Cache, error) {
	st := snapshot.Cache{Clk: c.CaptureClock(), LRUTick: c.lruTick, Sets: make([][]snapshot.CacheLine, len(c.sets))}
	for i := range c.sets {
		lines := c.sets[i].lines
		st.Sets[i] = make([]snapshot.CacheLine, len(lines))
		for j, ln := range lines {
			st.Sets[i][j] = snapshot.CacheLine{Tag: ln.tag, Valid: ln.valid, Dirty: ln.dirty, LRU: ln.lru}
		}
	}
	var err error
	if st.Incoming, err = c.incoming.capture(); err != nil {
		return snapshot.Cache{}, fmt.Errorf("%s incoming: %w", c.Name(), err)
	}
	for _, e := range c.mshrOrder {
		m := snapshot.MSHR{LineAddr: e.lineAddr}
		for _, r := range e.waiting {
			sr, cerr := CaptureReq(r)
			if cerr != nil {
				return snapshot.Cache{}, fmt.Errorf("%s mshr %#x: %w", c.Name(), e.lineAddr, cerr)
			}
			m.Waiting = append(m.Waiting, sr)
		}
		st.MSHRs = append(st.MSHRs, m)
	}
	return st, nil
}

// RestoreState rewinds a freshly Reset cache into a captured state. MSHR
// entries are rebuilt first so RestoreFillReq can rebind in-flight fills
// that other devices or the event queue still hold.
func (c *Cache) RestoreState(st snapshot.Cache, resolve Resolver) error {
	if len(st.Sets) != len(c.sets) {
		return fmt.Errorf("mem: %s: image has %d sets, cache has %d", c.Name(), len(st.Sets), len(c.sets))
	}
	for i := range st.Sets {
		if len(st.Sets[i]) != len(c.sets[i].lines) {
			return fmt.Errorf("mem: %s: image set %d has %d ways, cache has %d", c.Name(), i, len(st.Sets[i]), len(c.sets[i].lines))
		}
		for j, ln := range st.Sets[i] {
			c.sets[i].lines[j] = cacheLine{tag: ln.Tag, valid: ln.Valid, dirty: ln.Dirty, lru: ln.LRU}
		}
	}
	c.lruTick = st.LRUTick
	for _, m := range st.MSHRs {
		e := &mshrEntry{lineAddr: m.LineAddr}
		for _, sr := range m.Waiting {
			r, err := materialize(sr, resolve)
			if err != nil {
				return err
			}
			e.waiting = append(e.waiting, r)
		}
		c.mshr[m.LineAddr] = e
		c.mshrOrder = append(c.mshrOrder, e)
	}
	if err := c.incoming.restore(st.Incoming, resolve); err != nil {
		return err
	}
	c.RestoreClock(st.Clk)
	return nil
}

// RestoreFillReq rebuilds the in-flight fill request for a restored MSHR
// entry, rebinding its completion to the entry.
func (c *Cache) RestoreFillReq(lineAddr uint64) (*Request, error) {
	e, ok := c.mshr[lineAddr]
	if !ok {
		return nil, fmt.Errorf("mem: %s: fill for line %#x has no restored MSHR entry", c.Name(), lineAddr)
	}
	return c.newFill(e), nil
}

// CaptureState snapshots the DRAM's dynamic state.
func (d *DRAM) CaptureState() (snapshot.DRAM, error) {
	st := snapshot.DRAM{
		Clk:     d.CaptureClock(),
		OpenRow: append([]uint64(nil), d.openRow...),
		Budget:  d.budget,
	}
	var err error
	if st.Queue, err = d.queue.capture(); err != nil {
		return snapshot.DRAM{}, fmt.Errorf("%s queue: %w", d.Name(), err)
	}
	return st, nil
}

// RestoreState rewinds a freshly Reset DRAM into a captured state.
func (d *DRAM) RestoreState(st snapshot.DRAM, resolve Resolver) error {
	if len(st.OpenRow) != len(d.openRow) {
		return fmt.Errorf("mem: %s: image has %d banks, dram has %d", d.Name(), len(st.OpenRow), len(d.openRow))
	}
	copy(d.openRow, st.OpenRow)
	d.budget = st.Budget
	if err := d.queue.restore(st.Queue, resolve); err != nil {
		return err
	}
	d.RestoreClock(st.Clk)
	return nil
}

// Regs returns a copy of the register file (for snapshots).
func (m *MMRBlock) Regs() []uint64 { return append([]uint64(nil), m.regs...) }

// RestoreRegs overwrites the register file from a snapshot.
func (m *MMRBlock) RestoreRegs(regs []uint64) error {
	if len(regs) != len(m.regs) {
		return fmt.Errorf("mem: %s: image has %d registers, block has %d", m.name, len(regs), len(m.regs))
	}
	copy(m.regs, regs)
	return nil
}
