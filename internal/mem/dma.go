package mem

import (
	"gosalam/internal/sim"
	"gosalam/internal/timeline"
)

// BlockDMA register indices (64-bit registers).
const (
	DMARegCtrl   = 0 // bit0: start, bit1: IRQ enable
	DMARegStatus = 1 // bit0: busy, bit1: done
	DMARegSrc    = 2
	DMARegDst    = 3
	DMARegLen    = 4
	DMARegBurst  = 5
	DMANumRegs   = 6
)

// BlockDMA moves a memory block between two addresses in bursts through a
// master port — the cluster DMA of Fig. 6. It is programmed through MMRs
// (host path) or the Transfer API (driver convenience), and raises an
// interrupt line on completion when enabled.
type BlockDMA struct {
	MMR *MMRBlock

	q    *sim.EventQueue
	clk  *sim.ClockDomain
	name string
	port Port

	MaxOutstanding int
	// BytesPerCycle throttles the engine to its channel width: a new
	// burst may only issue once the previous one's beats have streamed
	// out (size/BytesPerCycle cycles of the DMA clock). Real data movers
	// are bandwidth-bound here, not latency-bound.
	BytesPerCycle int
	// IRQ is invoked on completion when ctrl bit1 is set.
	IRQ func()

	// in-flight transfer state
	busy        bool
	src, dst    uint64
	remaining   uint64
	issued      uint64
	outstanding int
	burst       int
	onDone      func()
	// channel pacing
	nextIssue     sim.Tick
	pumpScheduled bool
	pumpEv        *sim.Recurring

	// rec, when non-nil, receives one slice per transfer and one instant
	// per issued burst (AttachTimeline).
	rec    timeline.Recorder
	tlLane timeline.LaneID

	Transfers, BytesMoved *sim.Scalar
	// DroppedStarts counts MMR ctrl-start writes ignored because a
	// transfer was already in flight (see the OnWrite contract).
	DroppedStarts *sim.Scalar
	TransferTicks *sim.Distribution
	startTick     sim.Tick
}

// NewBlockDMA creates a DMA whose MMRs sit at mmrBase and whose transfers
// flow through port.
func NewBlockDMA(name string, q *sim.EventQueue, clk *sim.ClockDomain,
	mmrBase uint64, port Port, stats *sim.Group) *BlockDMA {
	d := &BlockDMA{
		q: q, clk: clk, name: name, port: port,
		MaxOutstanding: 4,
		BytesPerCycle:  16,
	}
	d.pumpEv = q.NewRecurring(sim.PriDefault, func() {
		d.pumpScheduled = false
		d.pump()
	})
	d.MMR = NewMMRBlock(name+".mmr", q, clk, mmrBase, DMANumRegs, stats)
	// MMR start contract: a ctrl-register start written while a transfer
	// is in flight is IGNORED — real data movers have no queue behind the
	// doorbell, so software must poll the status register (or take the
	// IRQ) before re-arming. The drop is observable through the
	// dropped_starts stat and a timeline instant. The programmatic
	// Transfer path panics instead: a driver double-start is a host-code
	// bug and should fail loudly, not vanish.
	d.MMR.OnWrite = func(idx int, val uint64) {
		if idx != DMARegCtrl || val&1 == 0 {
			return
		}
		if d.busy {
			d.DroppedStarts.Inc(1)
			if d.rec != nil {
				d.rec.Instant(d.tlLane, uint64(d.q.Now()), "dropped_start")
			}
			return
		}
		burst := int(d.MMR.Reg(DMARegBurst))
		d.start(d.MMR.Reg(DMARegSrc), d.MMR.Reg(DMARegDst), d.MMR.Reg(DMARegLen), burst, nil)
	}
	g := stats.Child(name)
	d.Transfers = g.Scalar("transfers", "completed transfers")
	d.BytesMoved = g.Scalar("bytes", "bytes moved")
	d.DroppedStarts = g.Scalar("dropped_starts", "MMR starts ignored while busy")
	d.TransferTicks = g.Distribution("transfer_ticks", "ticks per transfer")
	return d
}

// Reset rewinds the DMA for a warm-started run after the owning
// EventQueue has been Reset: any in-flight transfer is abandoned (its
// completion callbacks died with the queue), the pacing state clears,
// and the MMRs zero. Stats survive, like every other component.
func (d *BlockDMA) Reset() {
	d.busy = false
	d.src, d.dst, d.remaining, d.issued = 0, 0, 0, 0
	d.outstanding, d.burst = 0, 0
	d.onDone = nil
	d.nextIssue = 0
	d.pumpScheduled = false
	d.pumpEv.Cancel() // stale-generation no-op that also forgets the arm
	d.startTick = 0
	d.MMR.Reset()
}

// AttachTimeline binds a transfer lane for the DMA engine. A nil
// recorder detaches.
func (d *BlockDMA) AttachTimeline(rec timeline.Recorder) {
	d.rec = rec
	if rec != nil {
		d.tlLane = rec.Lane(d.name, "transfer")
	}
}

// Busy reports whether a transfer is in flight.
func (d *BlockDMA) Busy() bool { return d.busy }

// Transfer starts a transfer programmatically; onDone fires at completion.
func (d *BlockDMA) Transfer(src, dst, n uint64, burst int, onDone func()) {
	if d.busy {
		panic("mem: DMA " + d.name + " started while busy")
	}
	d.start(src, dst, n, burst, onDone)
}

func (d *BlockDMA) start(src, dst, n uint64, burst int, onDone func()) {
	if burst <= 0 {
		burst = 64
	}
	d.busy = true
	d.src, d.dst, d.remaining, d.issued = src, dst, n, 0
	d.burst = burst
	d.onDone = onDone
	d.outstanding = 0
	d.startTick = d.q.Now()
	d.MMR.SetReg(DMARegStatus, 1) // busy
	if n == 0 {
		d.finish()
		return
	}
	d.pump()
}

// pump issues read bursts up to the outstanding limit, paced to the
// channel width: a new burst may not issue before the previous burst's
// beats have streamed out, regardless of which completion re-triggered it.
func (d *BlockDMA) pump() {
	for d.outstanding < d.MaxOutstanding && d.issued < d.remaining {
		now := d.q.Now()
		if now < d.nextIssue {
			if !d.pumpScheduled {
				d.pumpScheduled = true
				d.pumpEv.ScheduleAt(d.nextIssue)
			}
			return
		}
		off := d.issued
		size := uint64(d.burst)
		if d.remaining-off < size {
			size = d.remaining - off
		}
		d.issued += size
		d.outstanding++
		bpc := d.BytesPerCycle
		if bpc <= 0 {
			bpc = 16
		}
		beats := (int(size) + bpc - 1) / bpc
		d.nextIssue = now + d.clk.CyclesToTicks(uint64(beats))
		if d.rec != nil {
			d.rec.Instant(d.tlLane, uint64(now), "burst")
		}
		rd := NewRead(d.src+off, int(size), func(r *Request) {
			// Read burst arrived; write it to the destination.
			wr := NewWrite(d.dst+off, r.Data, func(*Request) {
				d.outstanding--
				d.BytesMoved.Inc(float64(size))
				if d.issued >= d.remaining && d.outstanding == 0 {
					d.finish()
				} else {
					d.pump()
				}
			})
			d.port.Send(wr)
		})
		d.port.Send(rd)
	}
}

func (d *BlockDMA) finish() {
	d.busy = false
	d.Transfers.Inc(1)
	d.TransferTicks.Sample(float64(d.q.Now() - d.startTick))
	if d.rec != nil {
		d.rec.Slice(d.tlLane, uint64(d.startTick), uint64(d.q.Now()-d.startTick), "dma")
	}
	d.MMR.SetReg(DMARegStatus, 2) // done
	if d.MMR.Reg(DMARegCtrl)&2 != 0 && d.IRQ != nil {
		d.IRQ()
	}
	if d.onDone != nil {
		fn := d.onDone
		d.onDone = nil
		fn()
	}
}

// StreamDMA streams a memory region into a StreamBuffer (read mode) or
// drains a StreamBuffer into memory (write mode) in burst-sized chunks —
// the paper's stream DMA devices feeding AXI-Stream-style links.
type StreamDMA struct {
	q    *sim.EventQueue
	clk  *sim.ClockDomain
	name string
	port Port
	buf  *StreamBuffer

	Burst int
	IRQ   func()

	BytesMoved *sim.Scalar
	Transfers  *sim.Scalar

	busy      bool
	startTick sim.Tick
	rec       timeline.Recorder
	tlLane    timeline.LaneID
}

// NewStreamDMA creates a stream DMA bridging port and buf.
func NewStreamDMA(name string, q *sim.EventQueue, clk *sim.ClockDomain,
	port Port, buf *StreamBuffer, stats *sim.Group) *StreamDMA {
	s := &StreamDMA{q: q, clk: clk, name: name, port: port, buf: buf, Burst: 64}
	g := stats.Child(name)
	s.BytesMoved = g.Scalar("bytes", "bytes streamed")
	s.Transfers = g.Scalar("transfers", "completed stream transfers")
	return s
}

// Busy reports whether a stream transfer is in flight.
func (s *StreamDMA) Busy() bool { return s.busy }

// Reset rewinds the stream DMA for a warm-started run: an abandoned
// transfer's step closures died with the event queue (and its buffer
// wakeups with StreamBuffer.Reset), so only the busy latch remains.
func (s *StreamDMA) Reset() { s.busy = false }

// AttachTimeline binds a transfer lane for the stream DMA. A nil
// recorder detaches.
func (s *StreamDMA) AttachTimeline(rec timeline.Recorder) {
	s.rec = rec
	if rec != nil {
		s.tlLane = rec.Lane(s.name, "transfer")
	}
}

// endTransfer closes out a completed stream transfer.
func (s *StreamDMA) endTransfer(label string, onDone func()) {
	s.busy = false
	s.Transfers.Inc(1)
	if s.rec != nil {
		s.rec.Slice(s.tlLane, uint64(s.startTick), uint64(s.q.Now()-s.startTick), label)
	}
	if s.IRQ != nil {
		s.IRQ()
	}
	if onDone != nil {
		onDone()
	}
}

// StreamIn reads [src, src+n) from memory into the stream buffer.
func (s *StreamDMA) StreamIn(src, n uint64, onDone func()) {
	if s.busy {
		panic("mem: stream DMA " + s.name + " started while busy")
	}
	s.busy = true
	s.startTick = s.q.Now()
	var off uint64
	var step func()
	step = func() {
		if off >= n {
			s.endTransfer("stream-in", onDone)
			return
		}
		size := uint64(s.Burst)
		if n-off < size {
			size = n - off
		}
		rd := NewRead(src+off, int(size), func(r *Request) {
			var tryPush func()
			tryPush = func() {
				if s.buf.Push(r.Data) {
					s.BytesMoved.Inc(float64(size))
					off += size
					// Pace at one burst per buffer-clock cycle.
					s.q.Schedule(s.q.Now()+s.clk.Period(), sim.PriDefault, step)
					return
				}
				s.buf.NotifySpace(tryPush)
			}
			tryPush()
		})
		s.port.Send(rd)
	}
	step()
}

// StreamOut drains n bytes from the buffer into [dst, dst+n).
func (s *StreamDMA) StreamOut(dst, n uint64, onDone func()) {
	if s.busy {
		panic("mem: stream DMA " + s.name + " started while busy")
	}
	s.busy = true
	s.startTick = s.q.Now()
	var off uint64
	var step func()
	step = func() {
		if off >= n {
			s.endTransfer("stream-out", onDone)
			return
		}
		size := uint64(s.Burst)
		if n-off < size {
			size = n - off
		}
		var tryPop func()
		tryPop = func() {
			data, ok := s.buf.Pop(int(size))
			if !ok {
				s.buf.NotifyData(tryPop)
				return
			}
			wr := NewWrite(dst+off, data, func(*Request) {
				s.BytesMoved.Inc(float64(size))
				off += size
				s.q.Schedule(s.q.Now()+s.clk.Period(), sim.PriDefault, step)
			})
			s.port.Send(wr)
		}
		tryPop()
	}
	step()
}
