package mem

import (
	"strconv"

	"gosalam/internal/hw"
	"gosalam/internal/sim"
	"gosalam/internal/timeline"
	"gosalam/ir"
)

// Scratchpad is a banked, multi-ported SPM: the paper's private/shared
// scratchpad with configurable partitioning and bandwidth (Fig. 6).
// Requests are serviced at up to PortsPerBank accesses per bank per cycle
// and complete LatencyCycles later.
type Scratchpad struct {
	sim.Clocked

	rng   AddrRange
	space *ir.FlatMem

	LatencyCycles int
	Banks         int
	PortsPerBank  int
	// WordBytes is the interleaving granularity for bank selection
	// (cyclic partitioning). Block partitioning uses contiguous regions.
	WordBytes int
	// BlockPartition switches bank selection from cyclic (word-
	// interleaved) to block (contiguous) partitioning.
	BlockPartition bool

	queues []reqQueue // one per bank
	// portUsed counts port slots consumed per bank within the current
	// cycle; a request charges one slot on every bank it touches.
	portUsed []int

	// rec, when non-nil, receives per-bank service slices (AttachTimeline).
	rec    timeline.Recorder
	tlBank []timeline.LaneID

	// Stats.
	Reads, Writes      *sim.Scalar
	BytesRead, BytesWr *sim.Scalar
	BankConflictCycles *sim.Scalar
	// MultiBank counts serviced accesses that spanned more than one bank
	// (DMA bursts wider than the interleaving word).
	MultiBank  *sim.Scalar
	QueueDelay *sim.Distribution
}

// NewScratchpad creates an SPM over the given range of the global space.
func NewScratchpad(name string, q *sim.EventQueue, clk *sim.ClockDomain,
	space *ir.FlatMem, rng AddrRange, latency, banks, portsPerBank int,
	stats *sim.Group) *Scratchpad {
	if banks < 1 {
		banks = 1
	}
	if portsPerBank < 1 {
		portsPerBank = 1
	}
	s := &Scratchpad{
		rng: rng, space: space,
		LatencyCycles: latency, Banks: banks, PortsPerBank: portsPerBank,
		WordBytes: 8,
		queues:    make([]reqQueue, banks),
		portUsed:  make([]int, banks),
	}
	s.InitClocked(name, q, clk)
	s.CycleFn = s.cycle
	g := stats.Child(name)
	s.Reads = g.Scalar("reads", "read accesses serviced")
	s.Writes = g.Scalar("writes", "write accesses serviced")
	s.BytesRead = g.Scalar("bytes_read", "bytes read")
	s.BytesWr = g.Scalar("bytes_written", "bytes written")
	s.BankConflictCycles = g.Scalar("bank_conflict_cycles", "bank-cycles with requests left waiting")
	s.MultiBank = g.Scalar("multi_bank_accesses", "serviced accesses touching more than one bank")
	s.QueueDelay = g.Distribution("queue_delay", "ticks spent queued before service")
	return s
}

// Range returns the SPM's address range.
func (s *Scratchpad) Range() AddrRange { return s.rng }

// Reset rewinds the SPM for a warm-started run after the owning EventQueue
// has been Reset: bank queues drop any requests an abandoned run left
// behind and the clocked state rewinds to idle. Geometry (range, bank
// count) is fixed at construction; LatencyCycles, PortsPerBank, WordBytes
// and BlockPartition are plain fields the caller may retune per design
// point before the next run.
func (s *Scratchpad) Reset() {
	for b := range s.queues {
		s.queues[b].reset()
	}
	s.ResetClocked()
}

// Cacti returns the analytic power/area model for this configuration.
func (s *Scratchpad) Cacti() hw.CactiSRAM {
	return hw.NewCactiSRAM(int(s.rng.Size), s.PortsPerBank, s.Banks)
}

func (s *Scratchpad) bank(addr uint64) int {
	off := addr - s.rng.Base
	if s.BlockPartition {
		blk := s.rng.Size / uint64(s.Banks)
		if blk == 0 {
			return 0
		}
		b := int(off / blk)
		if b >= s.Banks {
			b = s.Banks - 1
		}
		return b
	}
	return int(off/uint64(s.WordBytes)) % s.Banks
}

// bankSpan returns the banks a request occupies as (first, n): the
// request touches first, first+1, ..., first+n-1, modulo Banks under
// cyclic partitioning. A 64-byte burst over 8-byte interleaving spans
// eight banks, not one — routing by start address alone under-reports
// exactly the bank conflicts partitioning sweeps measure.
func (s *Scratchpad) bankSpan(addr, size uint64) (first, n int) {
	if size == 0 {
		size = 1
	}
	if s.BlockPartition {
		first = s.bank(addr)
		n = s.bank(addr+size-1) - first + 1
		return first, n
	}
	off := addr - s.rng.Base
	w := uint64(s.WordBytes)
	words := int((off+size-1)/w-off/w) + 1
	if words > s.Banks {
		words = s.Banks
	}
	return s.bank(addr), words
}

// Send enqueues a request.
func (s *Scratchpad) Send(r *Request) {
	if !s.rng.Contains(r.Addr, r.Size) {
		panic("mem: scratchpad request outside range: " + s.rng.String())
	}
	r.Issued = s.Q.Now()
	s.queues[s.bank(r.Addr)].push(r)
	s.Activate()
}

func (s *Scratchpad) cycle() bool {
	busy := false
	lat := s.Clk.CyclesToTicks(uint64(s.LatencyCycles))
	// Per-cycle port budget: a request needs one free slot on every bank
	// it touches and charges all of them, so wide bursts consume bandwidth
	// proportional to their width. Banks arbitrate in fixed index order.
	for b := range s.portUsed {
		s.portUsed[b] = 0
	}
	for b := range s.queues {
		for !s.queues[b].empty() {
			r := s.queues[b].peek()
			first, n := s.bankSpan(r.Addr, uint64(r.Size))
			free := true
			for k := 0; k < n; k++ {
				if s.portUsed[(first+k)%s.Banks] >= s.PortsPerBank {
					free = false
					break
				}
			}
			if !free {
				break // head-of-line blocks until slots free up next cycle
			}
			for k := 0; k < n; k++ {
				s.portUsed[(first+k)%s.Banks]++
			}
			if n > 1 {
				s.MultiBank.Inc(1)
			}
			s.queues[b].pop()
			s.QueueDelay.Sample(float64(s.Q.Now() - r.Issued))
			if r.Write {
				s.Writes.Inc(1)
				s.BytesWr.Inc(float64(r.Size))
			} else {
				s.Reads.Inc(1)
				s.BytesRead.Inc(float64(r.Size))
			}
			if s.rec != nil {
				label := "rd"
				if r.Write {
					label = "wr"
				}
				for k := 0; k < n; k++ {
					s.rec.Slice(s.tlBank[(first+k)%s.Banks],
						uint64(s.Q.Now()), uint64(s.Clk.Period()), label)
				}
			}
			complete(s.Q, s.space, r, s.Q.Now()+lat)
		}
		if !s.queues[b].empty() {
			s.BankConflictCycles.Inc(1)
			busy = true
			if s.rec != nil {
				s.rec.Instant(s.tlBank[b], uint64(s.Q.Now()), "conflict")
			}
		}
	}
	return busy
}

// AttachTimeline binds recorder lanes for the SPM: an "active" lane on
// the clocked helper plus one service lane per bank. A nil recorder
// detaches.
func (s *Scratchpad) AttachTimeline(rec timeline.Recorder) {
	s.rec = rec
	s.tlBank = s.tlBank[:0]
	if rec == nil {
		s.Clocked.AttachTimeline(nil, 0)
		return
	}
	name := s.Name()
	s.Clocked.AttachTimeline(rec, rec.Lane(name, "active"))
	for b := 0; b < s.Banks; b++ {
		s.tlBank = append(s.tlBank, rec.Lane(name, "bank"+strconv.Itoa(b)))
	}
}
