package mem

import (
	"gosalam/internal/hw"
	"gosalam/internal/sim"
	"gosalam/ir"
)

// Scratchpad is a banked, multi-ported SPM: the paper's private/shared
// scratchpad with configurable partitioning and bandwidth (Fig. 6).
// Requests are serviced at up to PortsPerBank accesses per bank per cycle
// and complete LatencyCycles later.
type Scratchpad struct {
	sim.Clocked

	rng   AddrRange
	space *ir.FlatMem

	LatencyCycles int
	Banks         int
	PortsPerBank  int
	// WordBytes is the interleaving granularity for bank selection
	// (cyclic partitioning). Block partitioning uses contiguous regions.
	WordBytes int
	// BlockPartition switches bank selection from cyclic (word-
	// interleaved) to block (contiguous) partitioning.
	BlockPartition bool

	queues []reqQueue // one per bank

	// Stats.
	Reads, Writes      *sim.Scalar
	BytesRead, BytesWr *sim.Scalar
	BankConflictCycles *sim.Scalar
	QueueDelay         *sim.Distribution
}

// NewScratchpad creates an SPM over the given range of the global space.
func NewScratchpad(name string, q *sim.EventQueue, clk *sim.ClockDomain,
	space *ir.FlatMem, rng AddrRange, latency, banks, portsPerBank int,
	stats *sim.Group) *Scratchpad {
	if banks < 1 {
		banks = 1
	}
	if portsPerBank < 1 {
		portsPerBank = 1
	}
	s := &Scratchpad{
		rng: rng, space: space,
		LatencyCycles: latency, Banks: banks, PortsPerBank: portsPerBank,
		WordBytes: 8,
		queues:    make([]reqQueue, banks),
	}
	s.InitClocked(name, q, clk)
	s.CycleFn = s.cycle
	g := stats.Child(name)
	s.Reads = g.Scalar("reads", "read accesses serviced")
	s.Writes = g.Scalar("writes", "write accesses serviced")
	s.BytesRead = g.Scalar("bytes_read", "bytes read")
	s.BytesWr = g.Scalar("bytes_written", "bytes written")
	s.BankConflictCycles = g.Scalar("bank_conflict_cycles", "bank-cycles with requests left waiting")
	s.QueueDelay = g.Distribution("queue_delay", "ticks spent queued before service")
	return s
}

// Range returns the SPM's address range.
func (s *Scratchpad) Range() AddrRange { return s.rng }

// Reset rewinds the SPM for a warm-started run after the owning EventQueue
// has been Reset: bank queues drop any requests an abandoned run left
// behind and the clocked state rewinds to idle. Geometry (range, bank
// count) is fixed at construction; LatencyCycles, PortsPerBank, WordBytes
// and BlockPartition are plain fields the caller may retune per design
// point before the next run.
func (s *Scratchpad) Reset() {
	for b := range s.queues {
		s.queues[b].reset()
	}
	s.ResetClocked()
}

// Cacti returns the analytic power/area model for this configuration.
func (s *Scratchpad) Cacti() hw.CactiSRAM {
	return hw.NewCactiSRAM(int(s.rng.Size), s.PortsPerBank, s.Banks)
}

func (s *Scratchpad) bank(addr uint64) int {
	off := addr - s.rng.Base
	if s.BlockPartition {
		blk := s.rng.Size / uint64(s.Banks)
		if blk == 0 {
			return 0
		}
		b := int(off / blk)
		if b >= s.Banks {
			b = s.Banks - 1
		}
		return b
	}
	return int(off/uint64(s.WordBytes)) % s.Banks
}

// Send enqueues a request.
func (s *Scratchpad) Send(r *Request) {
	if !s.rng.Contains(r.Addr, r.Size) {
		panic("mem: scratchpad request outside range: " + s.rng.String())
	}
	r.Issued = s.Q.Now()
	s.queues[s.bank(r.Addr)].push(r)
	s.Activate()
}

func (s *Scratchpad) cycle() bool {
	busy := false
	lat := s.Clk.CyclesToTicks(uint64(s.LatencyCycles))
	for b := range s.queues {
		for i := 0; i < s.PortsPerBank && !s.queues[b].empty(); i++ {
			r := s.queues[b].pop()
			s.QueueDelay.Sample(float64(s.Q.Now() - r.Issued))
			if r.Write {
				s.Writes.Inc(1)
				s.BytesWr.Inc(float64(r.Size))
			} else {
				s.Reads.Inc(1)
				s.BytesRead.Inc(float64(r.Size))
			}
			complete(s.Q, s.space, r, s.Q.Now()+lat)
		}
		if !s.queues[b].empty() {
			s.BankConflictCycles.Inc(1)
			busy = true
		}
	}
	return busy
}
