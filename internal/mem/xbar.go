package mem

import (
	"fmt"

	"gosalam/internal/sim"
	"gosalam/internal/timeline"
)

// Crossbar routes requests to targets by address range, with a per-cycle
// issue width (arbitration) and a forward latency per hop — the paper's
// local and global X-bars (Fig. 6).
type Crossbar struct {
	sim.Clocked

	ForwardCycles int
	WidthPerCycle int

	targets []Ranged
	// Default target for addresses no range claims (e.g. the path off-
	// cluster through the global crossbar). May be nil.
	defaultTarget Port

	queue reqQueue

	// rec, when non-nil, receives a routing slice per busy cycle.
	rec    timeline.Recorder
	tlLane timeline.LaneID

	Routed      *sim.Scalar
	RouteErrors *sim.Scalar
	QueueDelay  *sim.Distribution
}

// NewCrossbar builds a crossbar.
func NewCrossbar(name string, q *sim.EventQueue, clk *sim.ClockDomain,
	forwardCycles, widthPerCycle int, stats *sim.Group) *Crossbar {
	x := &Crossbar{ForwardCycles: forwardCycles, WidthPerCycle: max(1, widthPerCycle)}
	x.InitClocked(name, q, clk)
	x.CycleFn = x.cycle
	g := stats.Child(name)
	x.Routed = g.Scalar("routed", "requests routed")
	x.RouteErrors = g.Scalar("route_errors", "requests with no matching target")
	x.QueueDelay = g.Distribution("queue_delay", "ticks queued at crossbar")
	return x
}

// Attach adds a ranged target.
func (x *Crossbar) Attach(t Ranged) {
	for _, e := range x.targets {
		if e.Range().Overlaps(t.Range()) {
			panic(fmt.Sprintf("mem: crossbar ranges overlap: %s and %s", e.Range(), t.Range()))
		}
	}
	x.targets = append(x.targets, t)
}

// SetDefault routes unmatched addresses to p.
func (x *Crossbar) SetDefault(p Port) { x.defaultTarget = p }

// Reset rewinds the crossbar for a warm-started run after the owning
// EventQueue has been Reset: queued requests from an abandoned run drop
// and the clocked state rewinds to idle. Topology (targets, default)
// survives — it is structural, not per-run.
func (x *Crossbar) Reset() {
	x.queue.reset()
	x.ResetClocked()
}

// AttachTimeline binds a routing lane (plus the clocked "active" lane)
// for the crossbar. A nil recorder detaches.
func (x *Crossbar) AttachTimeline(rec timeline.Recorder) {
	x.rec = rec
	if rec == nil {
		x.Clocked.AttachTimeline(nil, 0)
		return
	}
	x.Clocked.AttachTimeline(rec, rec.Lane(x.Name(), "active"))
	x.tlLane = rec.Lane(x.Name(), "route")
}

// Send enqueues a request for routing.
func (x *Crossbar) Send(r *Request) {
	r.Issued = x.Q.Now()
	x.queue.push(r)
	x.Activate()
}

// route finds the target for an address.
func (x *Crossbar) route(addr uint64, size int) Port {
	for _, t := range x.targets {
		if t.Range().Contains(addr, size) {
			return t
		}
	}
	return x.defaultTarget
}

func (x *Crossbar) cycle() bool {
	routed := 0
	for i := 0; i < x.WidthPerCycle && !x.queue.empty(); i++ {
		r := x.queue.pop()
		routed++
		x.QueueDelay.Sample(float64(x.Q.Now() - r.Issued))
		t := x.route(r.Addr, r.Size)
		if t == nil {
			x.RouteErrors.Inc(1)
			panic(fmt.Sprintf("mem: crossbar %s: no route for %#x", x.Name(), r.Addr))
		}
		x.Routed.Inc(1)
		// Response path costs a hop too: wrap Done.
		if x.ForwardCycles > 0 && r.Done != nil {
			orig := r.Done
			lat := x.Clk.CyclesToTicks(uint64(x.ForwardCycles))
			r.Done = func(rr *Request) {
				x.Q.Schedule(x.Q.Now()+lat, sim.PriMemResp, func() { orig(rr) })
			}
		}
		if x.ForwardCycles > 0 {
			lat := x.Clk.CyclesToTicks(uint64(x.ForwardCycles))
			rr := r
			x.Q.Schedule(x.Q.Now()+lat, sim.PriMemResp, func() { t.Send(rr) })
		} else {
			t.Send(r)
		}
	}
	if x.rec != nil && routed > 0 {
		x.rec.Slice(x.tlLane, uint64(x.Q.Now()), uint64(x.Clk.Period()), "route")
	}
	return !x.queue.empty()
}
