package mem

import (
	"encoding/binary"
	"fmt"

	"gosalam/internal/sim"
)

// MMRBlock is a bank of 64-bit memory-mapped registers: the control/status
// /data register file every communications interface and DMA exposes to
// the host (Sec. III-D3). Reads respond with current values; writes invoke
// an optional callback so devices can react (e.g. a start bit).
type MMRBlock struct {
	q    *sim.EventQueue
	clk  *sim.ClockDomain
	name string
	rng  AddrRange
	regs []uint64

	// OnWrite, if set, observes (index, newValue) after the write lands.
	OnWrite func(idx int, val uint64)
	// ReadHook, if set, can override the value returned for a register.
	ReadHook func(idx int, cur uint64) uint64

	AccessLatency int // cycles

	Reads, Writes *sim.Scalar
}

// NewMMRBlock creates a block of n 64-bit registers based at rng.Base.
func NewMMRBlock(name string, q *sim.EventQueue, clk *sim.ClockDomain,
	base uint64, n int, stats *sim.Group) *MMRBlock {
	m := &MMRBlock{
		q: q, clk: clk, name: name,
		rng:           AddrRange{Base: base, Size: uint64(n * 8)},
		regs:          make([]uint64, n),
		AccessLatency: 1,
	}
	g := stats.Child(name)
	m.Reads = g.Scalar("mmr_reads", "register reads")
	m.Writes = g.Scalar("mmr_writes", "register writes")
	return m
}

// Range returns the register block's address range.
func (m *MMRBlock) Range() AddrRange { return m.rng }

// Reset zeroes every register for a warm-started run. Hooks stay wired.
func (m *MMRBlock) Reset() {
	for i := range m.regs {
		m.regs[i] = 0
	}
}

// Reg returns the current value of register idx (direct, zero-time access
// for device-internal use).
func (m *MMRBlock) Reg(idx int) uint64 { return m.regs[idx] }

// SetReg sets register idx directly (device-internal).
func (m *MMRBlock) SetReg(idx int, v uint64) { m.regs[idx] = v }

// NumRegs returns the register count.
func (m *MMRBlock) NumRegs() int { return len(m.regs) }

// AddrOf returns the bus address of register idx.
func (m *MMRBlock) AddrOf(idx int) uint64 { return m.rng.Base + uint64(idx*8) }

// Send services a bus access to the register file.
func (m *MMRBlock) Send(r *Request) {
	if !m.rng.Contains(r.Addr, r.Size) || r.Size != 8 || (r.Addr-m.rng.Base)%8 != 0 {
		panic(fmt.Sprintf("mem: bad MMR access addr=%#x size=%d at %s", r.Addr, r.Size, m.name))
	}
	idx := int((r.Addr - m.rng.Base) / 8)
	lat := m.clk.CyclesToTicks(uint64(m.AccessLatency))
	m.q.Schedule(m.q.Now()+lat, sim.PriMemResp, func() {
		if r.Write {
			m.Writes.Inc(1)
			m.regs[idx] = binary.LittleEndian.Uint64(r.Data)
			if m.OnWrite != nil {
				m.OnWrite(idx, m.regs[idx])
			}
		} else {
			m.Reads.Inc(1)
			v := m.regs[idx]
			if m.ReadHook != nil {
				v = m.ReadHook(idx, v)
			}
			if r.Data == nil {
				r.Data = make([]byte, 8)
			}
			binary.LittleEndian.PutUint64(r.Data, v)
		}
		if r.Done != nil {
			r.Done(r)
		}
	})
}
