package mem

import (
	"encoding/binary"
	"testing"
	"testing/quick"

	"gosalam/internal/sim"
)

func TestBlockDMATransferAPI(t *testing.T) {
	env := newEnv(1 << 20)
	dram := NewDRAM("dram", env.q, env.clk, env.space, AddrRange{Base: 0, Size: 1 << 20}, env.stats)
	dma := NewBlockDMA("dma", env.q, env.clk, 0xF0000000, dram, env.stats)

	n := 1024
	for i := 0; i < n/8; i++ {
		env.space.WriteI64(uint64(i*8), int64(i))
	}
	done := false
	dma.Transfer(0, 0x8000, uint64(n), 64, func() { done = true })
	env.q.Run()
	if !done {
		t.Fatal("transfer never completed")
	}
	for i := 0; i < n/8; i++ {
		if env.space.ReadI64(0x8000+uint64(i*8)) != int64(i) {
			t.Fatalf("dst[%d] = %d", i, env.space.ReadI64(0x8000+uint64(i*8)))
		}
	}
	if dma.BytesMoved.Value() != float64(n) {
		t.Fatalf("bytes moved = %g", dma.BytesMoved.Value())
	}
	if dma.Busy() {
		t.Fatal("still busy after completion")
	}
}

func TestBlockDMAViaMMRsWithIRQ(t *testing.T) {
	env := newEnv(1 << 20)
	dram := NewDRAM("dram", env.q, env.clk, env.space, AddrRange{Base: 0, Size: 1 << 20}, env.stats)
	dma := NewBlockDMA("dma", env.q, env.clk, 0xF0000000, dram, env.stats)
	irqs := 0
	dma.IRQ = func() { irqs++ }

	env.space.WriteI64(0x100, 77)
	wr := func(idx int, val uint64) {
		data := make([]byte, 8)
		binary.LittleEndian.PutUint64(data, val)
		dma.MMR.Send(NewWrite(dma.MMR.AddrOf(idx), data, nil))
	}
	wr(DMARegSrc, 0x100)
	wr(DMARegDst, 0x200)
	wr(DMARegLen, 8)
	wr(DMARegBurst, 64)
	wr(DMARegCtrl, 1|2) // start + IRQ enable
	env.q.Run()
	if env.space.ReadI64(0x200) != 77 {
		t.Fatalf("MMR-programmed transfer failed: %d", env.space.ReadI64(0x200))
	}
	if irqs != 1 {
		t.Fatalf("irqs = %d", irqs)
	}
	if dma.MMR.Reg(DMARegStatus)&2 == 0 {
		t.Fatal("done status bit not set")
	}
}

func TestBlockDMAZeroLength(t *testing.T) {
	env := newEnv(1 << 16)
	dram := NewDRAM("dram", env.q, env.clk, env.space, AddrRange{Base: 0, Size: 1 << 16}, env.stats)
	dma := NewBlockDMA("dma", env.q, env.clk, 0xF0000000, dram, env.stats)
	done := false
	dma.Transfer(0, 0x100, 0, 64, func() { done = true })
	env.q.Run()
	if !done {
		t.Fatal("zero-length transfer should complete immediately")
	}
}

// Property: DMA through DRAM moves arbitrary blocks intact for random
// sizes, bursts and offsets.
func TestBlockDMAIntegrityProperty(t *testing.T) {
	prop := func(sz16 uint16, burst8 uint8) bool {
		size := int(sz16%2000) + 1
		burst := int(burst8%100) + 4
		env := newEnv(1 << 16)
		dram := NewDRAM("dram", env.q, env.clk, env.space, AddrRange{Base: 0, Size: 1 << 16}, env.stats)
		dma := NewBlockDMA("dma", env.q, env.clk, 0xF0000000, dram, env.stats)
		src, dst := uint64(0x100), uint64(0x4000)
		for i := 0; i < size; i++ {
			env.space.Data[src+uint64(i)] = byte(i * 7)
		}
		ok := false
		dma.Transfer(src, dst, uint64(size), burst, func() { ok = true })
		env.q.Run()
		if !ok {
			return false
		}
		for i := 0; i < size; i++ {
			if env.space.Data[dst+uint64(i)] != byte(i*7) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamBufferHandshake(t *testing.T) {
	stats := newEnv(64).stats
	sb := NewStreamBuffer("fifo", 16, stats)
	if !sb.Push([]byte{1, 2, 3, 4}) {
		t.Fatal("push into empty buffer failed")
	}
	if sb.Len() != 4 || sb.Space() != 12 {
		t.Fatalf("len=%d space=%d", sb.Len(), sb.Space())
	}
	if sb.Push(make([]byte, 13)) {
		t.Fatal("overfull push succeeded")
	}
	got, ok := sb.Pop(4)
	if !ok || got[0] != 1 || got[3] != 4 {
		t.Fatalf("pop = %v, %v", got, ok)
	}
	if _, ok := sb.Pop(1); ok {
		t.Fatal("pop from empty buffer succeeded")
	}

	// FIFO ordering.
	sb.Push([]byte{9})
	sb.Push([]byte{8})
	a, _ := sb.Pop(1)
	b, _ := sb.Pop(1)
	if a[0] != 9 || b[0] != 8 {
		t.Fatal("not FIFO")
	}
}

func TestStreamBufferNotify(t *testing.T) {
	stats := newEnv(64).stats
	sb := NewStreamBuffer("fifo", 4, stats)
	dataFired, spaceFired := 0, 0
	sb.NotifyData(func() { dataFired++ })
	sb.Push([]byte{1})
	if dataFired != 1 {
		t.Fatal("data notify did not fire")
	}
	sb.Push([]byte{2, 3, 4})
	sb.NotifySpace(func() { spaceFired++ })
	sb.Pop(2)
	if spaceFired != 1 {
		t.Fatal("space notify did not fire")
	}
	// One-shot: further pushes don't re-fire.
	sb.Push([]byte{5})
	if dataFired != 1 {
		t.Fatal("notify fired twice")
	}
}

func TestStreamDMAInOut(t *testing.T) {
	env := newEnv(1 << 16)
	dram := NewDRAM("dram", env.q, env.clk, env.space, AddrRange{Base: 0, Size: 1 << 16}, env.stats)
	sb := NewStreamBuffer("fifo", 256, env.stats)
	in := NewStreamDMA("sdma_in", env.q, env.clk, dram, sb, env.stats)
	out := NewStreamDMA("sdma_out", env.q, env.clk, dram, sb, env.stats)

	n := 1000
	for i := 0; i < n; i++ {
		env.space.Data[0x100+i] = byte(i)
	}
	inDone, outDone := false, false
	// Producer streams memory into the FIFO; the consumer starts late, so
	// with a 256B FIFO and 1000B payload backpressure must engage first.
	in.StreamIn(0x100, uint64(n), func() { inDone = true })
	env.q.Schedule(1000*env.clk.Period(), sim.PriDefault, func() {
		out.StreamOut(0x4000, uint64(n), func() { outDone = true })
	})
	env.q.Run()
	if !inDone || !outDone {
		t.Fatalf("inDone=%v outDone=%v", inDone, outDone)
	}
	for i := 0; i < n; i++ {
		if env.space.Data[0x4000+i] != byte(i) {
			t.Fatalf("streamed byte %d = %d", i, env.space.Data[0x4000+i])
		}
	}
	if sb.StallsFull.Value() == 0 {
		t.Fatal("expected backpressure stalls with small FIFO")
	}
	if sb.Len() != 0 {
		t.Fatalf("fifo should be empty, has %d", sb.Len())
	}
}

func TestDMABusyPanics(t *testing.T) {
	env := newEnv(1 << 16)
	dram := NewDRAM("dram", env.q, env.clk, env.space, AddrRange{Base: 0, Size: 1 << 16}, env.stats)
	dma := NewBlockDMA("dma", env.q, env.clk, 0xF0000000, dram, env.stats)
	dma.Transfer(0, 0x100, 64, 64, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("double start did not panic")
		}
	}()
	dma.Transfer(0, 0x200, 64, 64, nil)
}
