package mem

import (
	"gosalam/internal/sim"
)

// StreamBuffer is a bounded FIFO with a two-way handshake, modeling the
// AXI-Stream-style links the paper uses for direct accelerator-to-
// accelerator communication (Fig. 16c). Producers that find it full and
// consumers that find it empty register one-shot wakeups.
type StreamBuffer struct {
	name     string
	capacity int
	data     []byte

	onData  []func()
	onSpace []func()

	Pushes, Pops, StallsFull, StallsEmpty *sim.Scalar
	Occupancy                             *sim.Distribution
}

// NewStreamBuffer creates a FIFO holding up to capacity bytes.
func NewStreamBuffer(name string, capacity int, stats *sim.Group) *StreamBuffer {
	s := &StreamBuffer{name: name, capacity: capacity}
	g := stats.Child(name)
	s.Pushes = g.Scalar("pushes", "bytes pushed")
	s.Pops = g.Scalar("pops", "bytes popped")
	s.StallsFull = g.Scalar("stalls_full", "rejected pushes (buffer full)")
	s.StallsEmpty = g.Scalar("stalls_empty", "rejected pops (not enough data)")
	s.Occupancy = g.Distribution("occupancy", "bytes resident at each push")
	return s
}

// Capacity returns the byte capacity.
func (s *StreamBuffer) Capacity() int { return s.capacity }

// Len returns bytes currently buffered.
func (s *StreamBuffer) Len() int { return len(s.data) }

// Space returns free bytes.
func (s *StreamBuffer) Space() int { return s.capacity - len(s.data) }

// Push appends p if it fits, reporting success. On failure the producer
// should retry after a NotifySpace wakeup.
func (s *StreamBuffer) Push(p []byte) bool {
	if len(p) > s.Space() {
		s.StallsFull.Inc(1)
		return false
	}
	s.data = append(s.data, p...)
	s.Pushes.Inc(float64(len(p)))
	s.Occupancy.Sample(float64(len(s.data)))
	s.wake(&s.onData)
	return true
}

// Pop removes and returns n bytes, or (nil, false) if fewer are buffered.
func (s *StreamBuffer) Pop(n int) ([]byte, bool) {
	if len(s.data) < n {
		s.StallsEmpty.Inc(1)
		return nil, false
	}
	out := make([]byte, n)
	copy(out, s.data[:n])
	s.data = s.data[n:]
	s.Pops.Inc(float64(n))
	s.wake(&s.onSpace)
	return out, true
}

// NotifyData registers a one-shot callback for when data arrives.
func (s *StreamBuffer) NotifyData(fn func()) { s.onData = append(s.onData, fn) }

// NotifySpace registers a one-shot callback for when space frees.
func (s *StreamBuffer) NotifySpace(fn func()) { s.onSpace = append(s.onSpace, fn) }

func (s *StreamBuffer) wake(list *[]func()) {
	fns := *list
	*list = nil
	for _, fn := range fns {
		fn()
	}
}
