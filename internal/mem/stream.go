package mem

import (
	"gosalam/internal/sim"
	"gosalam/internal/timeline"
)

// StreamBuffer is a bounded FIFO with a two-way handshake, modeling the
// AXI-Stream-style links the paper uses for direct accelerator-to-
// accelerator communication (Fig. 16c). Producers that find it full and
// consumers that find it empty register one-shot wakeups.
type StreamBuffer struct {
	name     string
	capacity int
	// data[head:] holds the buffered bytes. Pop advances head instead of
	// re-slicing the front away — `data = data[n:]` permanently discards
	// the prefix capacity, so a long-lived stream re-allocates forever.
	// The prefix is reclaimed by compacting in place when a push would
	// otherwise grow the backing array, and head rewinds to zero whenever
	// the buffer drains.
	data []byte
	head int

	onData  []func()
	onSpace []func()

	// rec, when non-nil, receives an occupancy counter sample per push and
	// pop (AttachTimeline provides the clock for timestamps).
	rec    timeline.Recorder
	tlLane timeline.LaneID
	recQ   *sim.EventQueue

	Pushes, Pops, StallsFull, StallsEmpty *sim.Scalar
	Occupancy                             *sim.Distribution
}

// NewStreamBuffer creates a FIFO holding up to capacity bytes.
func NewStreamBuffer(name string, capacity int, stats *sim.Group) *StreamBuffer {
	s := &StreamBuffer{name: name, capacity: capacity}
	g := stats.Child(name)
	s.Pushes = g.Scalar("pushes", "bytes pushed")
	s.Pops = g.Scalar("pops", "bytes popped")
	s.StallsFull = g.Scalar("stalls_full", "rejected pushes (buffer full)")
	s.StallsEmpty = g.Scalar("stalls_empty", "rejected pops (not enough data)")
	s.Occupancy = g.Distribution("occupancy", "bytes resident at each push")
	return s
}

// Capacity returns the byte capacity.
func (s *StreamBuffer) Capacity() int { return s.capacity }

// Len returns bytes currently buffered.
func (s *StreamBuffer) Len() int { return len(s.data) - s.head }

// Space returns free bytes.
func (s *StreamBuffer) Space() int { return s.capacity - s.Len() }

// Push appends p if it fits, reporting success. On failure the producer
// should retry after a NotifySpace wakeup.
func (s *StreamBuffer) Push(p []byte) bool {
	if len(p) > s.Space() {
		s.StallsFull.Inc(1)
		return false
	}
	if s.head > 0 && len(s.data)+len(p) > cap(s.data) {
		// Reclaim the popped prefix instead of growing: the live bytes
		// slide to the front, so the backing array stays bounded by the
		// capacity the stream actually needs.
		n := copy(s.data, s.data[s.head:])
		s.data = s.data[:n]
		s.head = 0
	}
	s.data = append(s.data, p...)
	s.Pushes.Inc(float64(len(p)))
	s.Occupancy.Sample(float64(s.Len()))
	if s.rec != nil {
		s.rec.Counter(s.tlLane, uint64(s.recQ.Now()), float64(s.Len()))
	}
	s.wake(&s.onData)
	return true
}

// Pop removes and returns n bytes, or (nil, false) if fewer are buffered.
func (s *StreamBuffer) Pop(n int) ([]byte, bool) {
	if s.Len() < n {
		s.StallsEmpty.Inc(1)
		return nil, false
	}
	out := make([]byte, n)
	copy(out, s.data[s.head:s.head+n])
	s.head += n
	if s.head == len(s.data) {
		s.data = s.data[:0]
		s.head = 0
	}
	s.Pops.Inc(float64(n))
	if s.rec != nil {
		s.rec.Counter(s.tlLane, uint64(s.recQ.Now()), float64(s.Len()))
	}
	s.wake(&s.onSpace)
	return out, true
}

// NotifyData registers a one-shot callback for when data arrives.
func (s *StreamBuffer) NotifyData(fn func()) { s.onData = append(s.onData, fn) }

// NotifySpace registers a one-shot callback for when space frees.
func (s *StreamBuffer) NotifySpace(fn func()) { s.onSpace = append(s.onSpace, fn) }

// Reset rewinds the FIFO for a warm-started run: buffered bytes from an
// abandoned run are dropped and registered wakeups are forgotten — a
// stale onData/onSpace callback would otherwise re-animate the previous
// run's producer or consumer mid-way through the next one.
func (s *StreamBuffer) Reset() {
	s.data = s.data[:0]
	s.head = 0
	s.onData = nil
	s.onSpace = nil
}

// AttachTimeline binds an occupancy counter lane for the FIFO, using q
// for timestamps (the buffer itself is unclocked). A nil recorder
// detaches.
func (s *StreamBuffer) AttachTimeline(rec timeline.Recorder, q *sim.EventQueue) {
	s.rec, s.recQ = rec, q
	if rec != nil {
		s.tlLane = rec.Lane(s.name, "occupancy")
	}
}

func (s *StreamBuffer) wake(list *[]func()) {
	fns := *list
	*list = nil
	for _, fn := range fns {
		fn()
	}
}
