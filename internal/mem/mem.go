// Package mem implements gosalam's memory system: the gem5-side substrate
// gem5-SALAM's communications interface talks to. It provides scratchpads,
// set-associative caches, DRAM, crossbars, block and stream DMA engines,
// stream buffers, and memory-mapped register blocks, all as clocked
// discrete-event models.
//
// Functional data lives in a single global backing store (an ir.FlatMem
// covering the simulated physical address space); devices are timing
// models over ranges of it. Writes take functional effect when the owning
// device completes them. Contention is modeled with bounded per-cycle
// service on device queues, so overload appears as queueing latency.
package mem

import (
	"fmt"

	"gosalam/internal/sim"
	"gosalam/ir"
)

// AddrRange is a half-open physical address range [Base, Base+Size).
type AddrRange struct {
	Base uint64
	Size uint64
}

// Contains reports whether the whole access [addr, addr+size) lies inside.
func (r AddrRange) Contains(addr uint64, size int) bool {
	return addr >= r.Base && addr+uint64(size) <= r.Base+r.Size
}

// End returns the first address past the range.
func (r AddrRange) End() uint64 { return r.Base + r.Size }

// Overlaps reports whether two ranges intersect.
func (r AddrRange) Overlaps(o AddrRange) bool {
	return r.Base < o.End() && o.Base < r.End()
}

func (r AddrRange) String() string {
	return fmt.Sprintf("[%#x, %#x)", r.Base, r.End())
}

// Request is one memory transaction. The issuer fills Addr/Size/Write
// (and Data for writes) and Done; the servicing device fills Data for
// reads and invokes Done exactly once from an event when the access
// completes.
type Request struct {
	Addr  uint64
	Size  int
	Write bool
	Data  []byte
	Done  func(*Request)

	// TimingOnly requests consume bandwidth and latency but have no
	// functional effect on the backing store. Cache writebacks use this:
	// the store is always functionally current, so re-applying a possibly
	// stale line snapshot would clobber newer writes.
	TimingOnly bool

	// Issued is stamped by the first device that accepts the request.
	Issued sim.Tick
}

// NewRead builds a read request.
func NewRead(addr uint64, size int, done func(*Request)) *Request {
	return &Request{Addr: addr, Size: size, Done: done}
}

// NewWrite builds a write request carrying data.
func NewWrite(addr uint64, data []byte, done func(*Request)) *Request {
	return &Request{Addr: addr, Size: len(data), Write: true, Data: data, Done: done}
}

// Port is the request entry point of a device or interconnect.
type Port interface {
	Send(r *Request)
}

// Ranged is a Port that claims an address range (routable by a crossbar).
type Ranged interface {
	Port
	Range() AddrRange
}

// complete finishes a request against the backing store and fires Done at
// the given tick via the event queue.
func complete(q *sim.EventQueue, space *ir.FlatMem, r *Request, when sim.Tick) {
	q.Schedule(when, sim.PriMemResp, func() {
		if !r.TimingOnly {
			if r.Write {
				space.WriteRaw(r.Addr, r.Data)
			} else {
				if r.Data == nil {
					r.Data = make([]byte, r.Size)
				}
				space.ReadRaw(r.Addr, r.Data)
			}
		}
		if r.Done != nil {
			r.Done(r)
		}
	})
}

// reqQueue is a simple FIFO of requests.
type reqQueue struct {
	items []*Request
}

func (q *reqQueue) push(r *Request) { q.items = append(q.items, r) }
func (q *reqQueue) empty() bool     { return len(q.items) == 0 }
func (q *reqQueue) len() int        { return len(q.items) }
func (q *reqQueue) peek() *Request  { return q.items[0] }
func (q *reqQueue) pop() *Request {
	r := q.items[0]
	q.items = q.items[1:]
	return r
}
