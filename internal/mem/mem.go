// Package mem implements gosalam's memory system: the gem5-side substrate
// gem5-SALAM's communications interface talks to. It provides scratchpads,
// set-associative caches, DRAM, crossbars, block and stream DMA engines,
// stream buffers, and memory-mapped register blocks, all as clocked
// discrete-event models.
//
// Functional data lives in a single global backing store (an ir.FlatMem
// covering the simulated physical address space); devices are timing
// models over ranges of it. Writes take functional effect when the owning
// device completes them. Contention is modeled with bounded per-cycle
// service on device queues, so overload appears as queueing latency.
package mem

import (
	"fmt"

	"gosalam/internal/sim"
	"gosalam/ir"
)

// AddrRange is a half-open physical address range [Base, Base+Size).
type AddrRange struct {
	Base uint64
	Size uint64
}

// Contains reports whether the whole access [addr, addr+size) lies inside.
func (r AddrRange) Contains(addr uint64, size int) bool {
	return addr >= r.Base && addr+uint64(size) <= r.Base+r.Size
}

// End returns the first address past the range.
func (r AddrRange) End() uint64 { return r.Base + r.Size }

// Overlaps reports whether two ranges intersect.
func (r AddrRange) Overlaps(o AddrRange) bool {
	return r.Base < o.End() && o.Base < r.End()
}

func (r AddrRange) String() string {
	return fmt.Sprintf("[%#x, %#x)", r.Base, r.End())
}

// Request is one memory transaction. The issuer fills Addr/Size/Write
// (and Data for writes) and Done; the servicing device fills Data for
// reads and invokes Done exactly once from an event when the access
// completes.
type Request struct {
	Addr  uint64
	Size  int
	Write bool
	Data  []byte
	Done  func(*Request)

	// TimingOnly requests consume bandwidth and latency but have no
	// functional effect on the backing store. Cache writebacks use this:
	// the store is always functionally current, so re-applying a possibly
	// stale line snapshot would clobber newer writes.
	TimingOnly bool

	// Issued is stamped by the first device that accepts the request.
	Issued sim.Tick

	// Owner and OwnerID tag which component created the request so a
	// checkpoint can claim it and a restore can rebind its Done callback
	// (snapshot.Owner* constants). Untagged requests make the state
	// unsnapshotable; they are harmless otherwise.
	Owner   uint8
	OwnerID uint64

	// space is bound by complete so the request itself is the scheduled
	// event payload (sim.Firer) — no per-completion closure.
	space *ir.FlatMem
}

// Fire applies the request's functional effect and invokes Done. It is the
// completion event scheduled by complete via ScheduleObj.
func (r *Request) Fire() {
	if !r.TimingOnly {
		if r.Write {
			r.space.WriteRaw(r.Addr, r.Data)
		} else {
			if r.Data == nil {
				r.Data = make([]byte, r.Size)
			}
			r.space.ReadRaw(r.Addr, r.Data)
		}
	}
	if r.Done != nil {
		r.Done(r)
	}
}

// NewRead builds a read request.
func NewRead(addr uint64, size int, done func(*Request)) *Request {
	return &Request{Addr: addr, Size: size, Done: done}
}

// NewWrite builds a write request carrying data.
func NewWrite(addr uint64, data []byte, done func(*Request)) *Request {
	return &Request{Addr: addr, Size: len(data), Write: true, Data: data, Done: done}
}

// Port is the request entry point of a device or interconnect.
type Port interface {
	Send(r *Request)
}

// Ranged is a Port that claims an address range (routable by a crossbar).
type Ranged interface {
	Port
	Range() AddrRange
}

// complete finishes a request against the backing store and fires Done at
// the given tick via the event queue. The request itself is the event
// payload, so completion never allocates.
func complete(q *sim.EventQueue, space *ir.FlatMem, r *Request, when sim.Tick) {
	r.space = space
	q.ScheduleObj(when, sim.PriMemResp, r)
}

// reqQueue is a FIFO of requests backed by a ring buffer, so steady-state
// push/pop neither allocates nor shifts elements.
type reqQueue struct {
	items []*Request
	head  int
	n     int
}

func (q *reqQueue) push(r *Request) {
	if q.n == len(q.items) {
		grown := make([]*Request, maxInt(8, 2*len(q.items)))
		for i := 0; i < q.n; i++ {
			grown[i] = q.items[(q.head+i)%len(q.items)]
		}
		q.items, q.head = grown, 0
	}
	q.items[(q.head+q.n)%len(q.items)] = r
	q.n++
}

func (q *reqQueue) empty() bool    { return q.n == 0 }
func (q *reqQueue) len() int       { return q.n }
func (q *reqQueue) peek() *Request { return q.items[q.head] }

func (q *reqQueue) pop() *Request {
	r := q.items[q.head]
	q.items[q.head] = nil
	q.head = (q.head + 1) % len(q.items)
	q.n--
	return r
}

// reset empties the queue in place, dropping references to any requests an
// abandoned run left behind. Capacity is kept for the next run.
func (q *reqQueue) reset() {
	for i := range q.items {
		q.items[i] = nil
	}
	q.head, q.n = 0, 0
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
