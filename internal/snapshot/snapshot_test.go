package snapshot

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"strings"
	"testing"
)

// testImage builds an image exercising every struct in the format.
func testImage() *Image {
	return &Image{
		Kind:  KindSession,
		Key:   "k:test",
		Queue: Queue{Now: 12345, Seq: 678, Fired: 600, Pending: 3},
		Space: []byte{1, 2, 3, 4, 5},
		Stats: Group{
			Name: "root",
			Stats: []Stat{
				{Kind: StatScalar, Name: "cycles", V: 42},
				{Kind: StatVector, Name: "ops", Keys: []string{"load", "add"}, Vals: []float64{7, 9}},
				{Kind: StatDistribution, Name: "lat", N: 3, Sum: 30, Min: 5, Max: 20},
				{Kind: StatFormula, Name: "ipc"},
			},
			Children: []Group{{Name: "acc", Stats: []Stat{{Kind: StatScalar, Name: "stalls", V: 1}}}},
		},
		Accel: &Accel{
			Clk:     Clock{Active: true, Cycles: 99, Armed: true, Tick: Event{When: 1000, Pri: 10, Seq: 55}},
			Running: true,
			Seq:     17,
			ArgBits: []uint64{0x1000, 0x2000},
			OpStamp: []uint64{1, 0, 2},
			Ops: []DynOp{{
				StaticID: 4, Seq: 16, Operands: []uint64{8, 9},
				Pending: []bool{false, true}, WaitingOn: 1,
				Waiters: []Waiter{{Op: 1, Idx: 0}}, State: 1,
				HasEv: true, Ev: Event{When: 1100, Pri: 5, Seq: 56},
			}},
			PendingMem: []int32{0},
			LastDef:    []Def{{Val: 3, Producer: -1, Live: true}},
		},
		Comm: &Comm{OutReads: 1, MMR: []uint64{0, 1, 2, 3}},
		SPM: &SPM{
			Clk:    Clock{Active: true, Cycles: 98, Armed: true, Tick: Event{When: 1000, Pri: 10, Seq: 54}},
			Queues: [][]Req{{{Owner: OwnerEngine, OwnerID: 16, Addr: 0x40, Size: 8, Issued: 12000}}, nil},
		},
		Cache: &Cache{
			Sets:    [][]CacheLine{{{Tag: 0x80, Valid: true, Dirty: true, LRU: 7}}},
			LRUTick: 8,
			MSHRs:   []MSHR{{LineAddr: 0xc0, Waiting: []Req{{Owner: OwnerEngine, OwnerID: 15, Addr: 0xc8, Size: 8}}}},
		},
		DRAM:  &DRAM{Queue: []Req{{Owner: OwnerCacheFill, OwnerID: 0xc0, Addr: 0xc0, Size: 64}}, OpenRow: []uint64{^uint64(0)}, Budget: 32},
		Sched: []Req{{Owner: OwnerWriteback, Addr: 0x100, Size: 64, Write: true, TimingOnly: true, Sched: true, Ev: Event{When: 1050, Pri: 20, Seq: 50}}},
		Comps: []Component{{Name: "dma0", Regs: []uint64{1, 2}, Ints: []int64{0, 3}}},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	img := testImage()
	b, err := img.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	b2, err := got.Encode()
	if err != nil {
		t.Fatalf("re-Encode: %v", err)
	}
	if !bytes.Equal(b, b2) {
		t.Fatalf("Encode→Decode→Encode not byte-identical (%d vs %d bytes)", len(b), len(b2))
	}
	if got.Queue != img.Queue || got.Kind != img.Kind || got.Key != img.Key {
		t.Fatalf("decoded header mismatch: %+v", got.Queue)
	}
	if got.Accel.Ops[0].Ev != img.Accel.Ops[0].Ev {
		t.Fatalf("dynOp event mismatch: %+v", got.Accel.Ops[0].Ev)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	a, err := testImage().Encode()
	if err != nil {
		t.Fatal(err)
	}
	b, err := testImage().Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two encodes of the same logical state differ")
	}
}

// Decode must reject damaged input with an error — never panic — for
// every truncation length and every single-byte corruption.
func TestDecodeRejectsDamage(t *testing.T) {
	full, err := testImage().Encode()
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(full); n++ {
		if _, err := Decode(full[:n]); err == nil {
			t.Fatalf("Decode accepted truncation to %d of %d bytes", n, len(full))
		}
	}
	for i := 0; i < len(full); i++ {
		bad := append([]byte(nil), full...)
		bad[i] ^= 0xff
		if _, err := Decode(bad); err == nil {
			t.Fatalf("Decode accepted corruption at byte %d", i)
		}
	}
	if _, err := Decode(nil); err == nil {
		t.Fatal("Decode accepted nil input")
	}
}

func TestDecodeRejectsWrongVersion(t *testing.T) {
	full, err := testImage().Encode()
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), full...)
	bad[4] ^= 0x01 // version low byte
	// Re-seal with a valid checksum so the version check, not the CRC,
	// is what trips.
	binary.LittleEndian.PutUint32(bad[len(bad)-4:], crc32.ChecksumIEEE(bad[:len(bad)-4]))
	if _, err := Decode(bad); err == nil {
		t.Fatal("Decode accepted wrong format version")
	}
	if !strings.Contains(Decode2Err(bad), "version") {
		t.Fatalf("want version error, got %q", Decode2Err(bad))
	}
}

// Decode2Err returns Decode's error text ("" on success).
func Decode2Err(b []byte) string {
	_, err := Decode(b)
	if err == nil {
		return ""
	}
	return err.Error()
}
