// Package snapshot defines the versioned, deterministic serialization
// format for full SoC dynamic state: the event queue's logical pending
// set, backing-store bytes, device state (SPM/cache/DRAM queues, MSHRs,
// stream buffers, MMRs), per-accelerator CDFG progress (in-flight dynOps,
// ready watermarks, opStamp arrays), and the statistics tree.
//
// The package is a leaf: plain state structs plus an Image envelope, with
// no simulator imports. The sim/mem/core packages provide Capture*/
// Restore* methods that exchange these structs; orchestration (what to
// capture, in which order to restore) lives in the root salam package.
//
// Restoration soundness rests on one property of the event queue: pop
// order is a total order on (when, pri, seq), independent of heap layout
// or slot indices. A snapshot therefore records only the logical state —
// each pending event's (when, pri, seq) claimed by the component that
// owns its callback — and restore re-schedules the same multiset with
// historical sequence numbers, after which the simulation replays
// byte-identically to a run that never stopped.
package snapshot

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
)

// Image kinds.
const (
	// KindSession is a single-accelerator Session checkpoint taken
	// mid-run at an event boundary.
	KindSession = "session"
	// KindSoC is a full-SoC checkpoint taken at quiescence (empty event
	// queue).
	KindSoC = "soc"
)

// Request owner tags: which component created an in-flight memory request
// and will rebind its completion callback on restore. The values are part
// of the image format; do not reorder.
const (
	// OwnerNone marks a request no component claims; such requests make
	// the state unsnapshotable and Checkpoint reports a clean error.
	OwnerNone uint8 = iota
	// OwnerEngine is an accelerator load/store (OwnerID = dynOp seq).
	OwnerEngine
	// OwnerCacheFill is a cache line fill (OwnerID = line address).
	OwnerCacheFill
	// OwnerWriteback is a timing-only dirty eviction (no callback).
	OwnerWriteback
)

// Event is one pending event-queue entry, identified by its logical
// scheduling coordinates. Seq is globally unique among pending events.
type Event struct {
	When uint64
	Pri  int32
	Seq  uint64
}

// Queue is the event queue's logical state: current time, the next
// sequence number, the fired-event count, and how many events were
// pending at capture (cross-checked after restore re-schedules claims).
type Queue struct {
	Now     uint64
	Seq     uint64
	Fired   uint64
	Pending int
}

// Clock is the state of one sim.Clocked helper: whether it is
// self-scheduling, its executed-cycle count, and its armed tick event.
type Clock struct {
	Active bool
	Cycles uint64
	Armed  bool
	Tick   Event
}

// Stat kinds inside a Group.
const (
	StatScalar       uint8 = iota + 1
	StatVector
	StatDistribution
	StatFormula
)

// Stat is one captured statistic. Formula stats carry no state but are
// recorded (kind+name only) so restore can verify structural identity.
type Stat struct {
	Kind uint8
	Name string
	// Scalar value.
	V float64
	// Vector keys in insertion order with their values.
	Keys []string
	Vals []float64
	// Distribution moments.
	N             uint64
	Sum, Min, Max float64
}

// Group is one captured stats group subtree.
type Group struct {
	Name     string
	Stats    []Stat
	Children []Group
}

// Req is one in-flight memory request, captured wherever it lives: a
// device queue (in FIFO order), an MSHR waiting list, or — when Sched is
// set — the event queue itself as a scheduled completion.
type Req struct {
	Owner      uint8
	OwnerID    uint64
	Addr       uint64
	Size       int
	Write      bool
	TimingOnly bool
	// Data carries write payload bytes. Reads omit it: the backing store
	// fills read data at fire time, so pre-fire contents are irrelevant.
	Data   []byte
	Issued uint64
	Sched  bool
	Ev     Event
}

// SPM is a scratchpad's dynamic state: clocked helper plus per-bank
// request queues in FIFO order.
type SPM struct {
	Clk    Clock
	Queues [][]Req
}

// CacheLine is one cache line's tag state.
type CacheLine struct {
	Tag          uint64
	Valid, Dirty bool
	LRU          uint64
}

// MSHR is one miss-status holding register: the missing line and the
// requests waiting on its fill. The fill request itself is captured
// wherever it currently lives (downstream queue or scheduled completion)
// as an OwnerCacheFill request with OwnerID = LineAddr.
type MSHR struct {
	LineAddr uint64
	Waiting  []Req
}

// Cache is a cache's dynamic state.
type Cache struct {
	Clk      Clock
	Sets     [][]CacheLine
	LRUTick  uint64
	Incoming []Req
	MSHRs    []MSHR
}

// DRAM is the DRAM model's dynamic state.
type DRAM struct {
	Clk     Clock
	Queue   []Req
	OpenRow []uint64
	Budget  int
}

// Comm is a communications interface's dynamic state: port counters and
// the MMR register file.
type Comm struct {
	ReadsCycle, WritesCycle int
	OutReads, OutWrites     int
	MMR                     []uint64
}

// Waiter is one (consumer op, operand index) dependence edge, with the
// consumer identified by its reservation-queue index.
type Waiter struct {
	Op  int32
	Idx int32
}

// DynOp is one in-flight dynamic operation in the reservation queue.
// Static identity is the dense StaticOp ID; dependences are encoded as
// queue indices. HasEv marks a compute op whose latency event is pending
// (memory ops complete through captured Reqs instead).
type DynOp struct {
	StaticID  int32
	Seq       uint64
	Operands  []uint64
	Pending   []bool
	WaitingOn int32
	Waiters   []Waiter
	State     uint8
	Val       uint64
	Addr      uint64
	Size      int32
	Arrived   bool
	Buf       [8]byte
	HasEv     bool
	Ev        Event
}

// Def is one last-definition record: the newest value (or in-flight
// producer, by queue index; -1 = none) for a static op's result.
type Def struct {
	Val      uint64
	Producer int32
	Live     bool
}

// Accel is an accelerator engine's dynamic state between events.
// Per-cycle transients (issue slots, hazard flags) are dead at event
// boundaries and are deliberately not part of the format.
type Accel struct {
	Clk                             Clock
	Running, Finished               bool
	RetBits                         uint64
	Seq                             uint64
	ArgBits                         []uint64
	StartCycle                      uint64
	Inflight                        int
	Arrivals                        int
	Resident                        int
	PendLoads, PendStores, PendComp int
	InflLoads, InflStores           int
	ReadyCount, ReadyLow            int
	FuBusy                          []int
	OpStamp                         []uint64
	CycleStamp                      uint64
	Ops                             []DynOp
	PendingMem                      []int32
	LastDef                         []Def
}

// Component is one generically named SoC component's state; exactly the
// fields a component kind uses are populated. Quiescent SoC checkpoints
// use these for everything outside the shared queue/space/stats triple.
type Component struct {
	Name  string
	Clk   *Clock
	SPM   *SPM
	Cache *Cache
	DRAM  *DRAM
	Accel *Accel
	Comm  *Comm
	// Regs holds MMR-style register files (DMAs).
	Regs []uint64
	// Bytes holds raw contents (stream buffer payloads).
	Bytes []byte
	// Ints holds small named-by-convention integer state (GIC pending
	// counts, host cycle counters, and similar).
	Ints []int64
}

// Image is one complete checkpoint. Typed fields serve the Session path;
// Comps serves the quiescent SoC path. Key is an opaque structural
// fingerprint that restore validates before touching any state.
type Image struct {
	Kind  string
	Key   string
	Queue Queue
	Space []byte
	Stats Group
	// Session-path components.
	Accel *Accel
	Comm  *Comm
	SPM   *SPM
	Cache *Cache
	DRAM  *DRAM
	// Sched holds requests pending as scheduled completions, sorted by
	// event sequence number.
	Sched []Req
	// SoC-path components in registration order.
	Comps []Component
}

// Binary envelope: magic, format version, payload length, gob payload,
// CRC-32 (IEEE) over everything before the checksum. The CRC is verified
// before the payload is decoded, so truncated or corrupted images fail
// with a clean error instead of feeding garbage to the decoder.
var magic = [4]byte{'G', 'S', 'N', 'P'}

// Version is the image format version. Decode rejects other versions.
const Version uint16 = 1

// Encode serializes the image. Encoding the same logical state always
// produces the same bytes: the payload is a gob stream of a fixed struct
// shape (type descriptors appear in a deterministic order) and the
// envelope adds only derived fields.
func (img *Image) Encode() ([]byte, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(img); err != nil {
		return nil, fmt.Errorf("snapshot: encode: %w", err)
	}
	var out bytes.Buffer
	out.Write(magic[:])
	var hdr [6]byte
	binary.LittleEndian.PutUint16(hdr[0:2], Version)
	binary.LittleEndian.PutUint32(hdr[2:6], uint32(payload.Len()))
	out.Write(hdr[:])
	out.Write(payload.Bytes())
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(out.Bytes()))
	out.Write(crc[:])
	return out.Bytes(), nil
}

// Decode parses an encoded image, verifying envelope integrity first.
// All failure modes — short input, bad magic, version mismatch, length
// mismatch, checksum failure, undecodable payload — return errors; no
// input can panic the decoder, because the payload is only decoded after
// its checksum proves it byte-identical to what Encode produced.
func Decode(b []byte) (*Image, error) {
	const envelope = 4 + 6 + 4 // magic + header + crc
	if len(b) < envelope {
		return nil, fmt.Errorf("snapshot: truncated image (%d bytes)", len(b))
	}
	if !bytes.Equal(b[:4], magic[:]) {
		return nil, fmt.Errorf("snapshot: bad magic %q", b[:4])
	}
	if v := binary.LittleEndian.Uint16(b[4:6]); v != Version {
		return nil, fmt.Errorf("snapshot: unsupported format version %d (want %d)", v, Version)
	}
	n := int(binary.LittleEndian.Uint32(b[6:10]))
	if len(b) != envelope+n {
		return nil, fmt.Errorf("snapshot: image length %d does not match header (%d payload bytes)", len(b), n)
	}
	want := binary.LittleEndian.Uint32(b[len(b)-4:])
	if got := crc32.ChecksumIEEE(b[:len(b)-4]); got != want {
		return nil, fmt.Errorf("snapshot: checksum mismatch (image corrupted)")
	}
	img := &Image{}
	if err := gob.NewDecoder(bytes.NewReader(b[10 : len(b)-4])).Decode(img); err != nil {
		return nil, fmt.Errorf("snapshot: decode: %w", err)
	}
	return img, nil
}
