package search

import (
	"sort"

	salam "gosalam"
	"gosalam/internal/campaign"
	"gosalam/internal/hw"
)

// axisVal is one resolved knob value together with its position on the
// original Space axis — the position is what enumeration-index attribution
// and JobAt reconstruction need, independent of the sorted exploration
// order.
type axisVal struct {
	val int
	idx int
}

// fuClass is one equivalence class of the FU-limit axis. All members
// elaborate to the same per-class unit counts — the limit clamps to the
// kernel's dedicated demand, so every limit at or above demand (and the
// 0 = dedicated spelling) is the same hardware — and therefore produce
// byte-identical metrics. eff is the class's effective unit count, the
// scalar the lattice orders the axis by; members are sorted ascending by
// axis index so members[0] is the class's lowest-enumeration-index
// representative.
type fuClass struct {
	eff     int
	members []axisVal
}

// lattice is the collapsed exploration grid for one memory kind: FU
// equivalence classes ascending by effective units, ports and banks
// ascending by value (so box corners are bound corners). Under cache mode
// the SPM bank knob configures hardware that is never built, so the bank
// axis collapses to its first entry with bankMult carrying the
// multiplicity.
type lattice struct {
	ax       *campaign.Axes
	memIdx   int
	classes  []fuClass
	ports    []axisVal
	banks    []axisVal
	bankMult int
	// obj is the space's search objective; it orders the best-bound heap
	// (EDP-first under ObjEDP) so the queue expands the most promising
	// regions for what the search is actually minimizing.
	obj Objective
}

// enumIdx recomposes a canonical enumeration index from axis positions
// (banks innermost, mirroring campaign.Axes.coords).
func (l *lattice) enumIdx(fuIdx, portIdx, bankIdx int) int {
	ax := l.ax
	return ((l.memIdx*len(ax.FU)+fuIdx)*len(ax.Ports)+portIdx)*len(ax.Banks) + bankIdx
}

// fpDemand returns the kernel's dedicated unit demand for the FP classes
// the fu knob limits (the clamp point of the equivalence collapse), or
// ok=false when static analysis cannot elaborate the kernel — in which
// case the caller must not collapse.
func fpDemand(ax *campaign.Axes) (int, bool) {
	opts := salam.DefaultRunOpts()
	rep, err := salam.AnalyzeKernel(ax.Kernel, opts) // no FULimits: dedicated counts
	if err != nil {
		return 0, false
	}
	demand := 0
	b := rep.LowerBound(opts.Accel)
	for _, cb := range b.Classes {
		if cb.Class == hw.FUFPAdder.String() || cb.Class == hw.FUFPMultiplier.String() {
			if cb.Units > demand {
				demand = cb.Units
			}
		}
	}
	return demand, true
}

// collapseFU partitions the fu axis into equivalence classes. With demand
// N, a limit v ≥ N (and v = 0, the dedicated spelling) elaborates the
// same units as v = N; below N each value is its own class. Without a
// provable demand nothing collapses: each value is a singleton, ordered
// by value with 0 (dedicated, the least constrained) last, which keeps
// the search exact at the cost of the collapse win.
func collapseFU(ax *campaign.Axes) []fuClass {
	demand, ok := fpDemand(ax)
	eff := func(v int) int {
		switch {
		case !ok && v == 0:
			return 1 << 30 // dedicated sorts last when demand is unknown
		case !ok:
			return v
		case v == 0 || v >= demand:
			return demand
		default:
			return v
		}
	}
	byEff := map[int]*fuClass{}
	var effs []int
	for i, v := range ax.FU {
		e := eff(v)
		if !ok {
			// No collapse: force distinct classes even on equal eff.
			e = e<<8 | i
		}
		c := byEff[e]
		if c == nil {
			c = &fuClass{eff: e}
			byEff[e] = c
			effs = append(effs, e)
		}
		c.members = append(c.members, axisVal{val: v, idx: i})
	}
	sort.Ints(effs)
	classes := make([]fuClass, len(effs))
	for i, e := range effs {
		classes[i] = *byEff[e] // members already ascend by axis index
	}
	return classes
}

// buildLattices constructs one lattice per memory kind and returns them
// with the total collapsed-leaf count.
func buildLattices(ax *campaign.Axes) ([]*lattice, int) {
	sortedVals := func(list []int) []axisVal {
		vs := make([]axisVal, len(list))
		for i, v := range list {
			vs[i] = axisVal{val: v, idx: i}
		}
		sort.Slice(vs, func(a, b int) bool { return vs[a].val < vs[b].val })
		return vs
	}
	classes := collapseFU(ax)
	ports := sortedVals(ax.Ports)
	banks := sortedVals(ax.Banks)
	obj, _ := ParseObjective(ax.Objective) // Axes validated the string
	var lats []*lattice
	leaves := 0
	for mi, mem := range ax.Mem {
		l := &lattice{ax: ax, memIdx: mi, classes: classes, ports: ports, banks: banks, bankMult: 1, obj: obj}
		if mem == "cache" {
			// Cache mode never builds the scratchpad, so the SPM bank knob
			// is inert: one leaf stands for every bank value, attributed to
			// the lowest bank axis index (the first listed value).
			l.banks = []axisVal{{val: ax.Banks[0], idx: 0}}
			l.bankMult = len(ax.Banks)
		}
		leaves += len(l.classes) * len(l.ports) * len(l.banks)
		lats = append(lats, l)
	}
	return lats, leaves
}

// CollapsedSize returns how many distinct hardware configurations a space
// holds after equivalence collapse — the most a search could ever
// simulate, and therefore the honest admission-control size for a search
// submission (a sweep's size is the raw point count; a search's is this).
func CollapsedSize(s campaign.Space) (int, error) {
	ax, err := s.Axes()
	if err != nil {
		return 0, err
	}
	_, leaves := buildLattices(ax)
	return leaves, nil
}

// region is an axis-aligned box of the lattice: inclusive index ranges
// into classes/ports/banks. Its minimum corner (f0, p0, b0) is both the
// point the search simulates next and the corner the power/area lower
// bound is evaluated at; the cycle lower bound comes from the opposite
// (f1, p1) corner, where ports and units are widest.
type region struct {
	lat     *lattice
	f0, f1  int
	p0, p1  int
	b0, b1  int
	lb      Vec
	seq     uint64
	proxied bool
}

// points returns how many raw design points the region covers.
func (r *region) points() int {
	fu := 0
	for f := r.f0; f <= r.f1; f++ {
		fu += len(r.lat.classes[f].members)
	}
	return fu * (r.p1 - r.p0 + 1) * (r.b1 - r.b0 + 1) * r.lat.bankMult
}

// cornerIdx is the enumeration index of the region's minimum corner: the
// lowest-axis-index member of the f0 class at the smallest port and bank
// values — the exact attribution index of anything this corner measures.
func (r *region) cornerIdx() int {
	l := r.lat
	return l.enumIdx(l.classes[r.f0].members[0].idx, l.ports[r.p0].idx, l.banks[r.b0].idx)
}

// cornerPoints is how many raw points the corner's measurement covers
// (its FU class members times the collapsed bank multiplicity).
func (r *region) cornerPoints() int {
	return len(r.lat.classes[r.f0].members) * r.lat.bankMult
}

// computeLB fills r.lb with a provable componentwise lower bound over
// every point in the region:
//
//   - Cycles: the static cycle bound at the (f1, p1) corner. Every bound
//     component is non-increasing in ports (ceil-div by port count) and in
//     effective units (ceil-div by clamped unit count), and independent of
//     banks, so the widest corner bounds the whole box.
//   - Power/area: the static floor (FU+register leakage and area, plus the
//     Cacti SPM envelope under SPM mode) at the (f0, p0, b0) corner. Area
//     and leakage are non-decreasing in units, ports, and banks, and
//     measured power additionally includes dynamic energy, so the smallest
//     corner's floor bounds every measurement in the box.
//   - EnergyPJ: a cross-corner composition, each term minimized at the
//     corner where it is provably smallest:
//       - the FU + register dynamic floor is config-independent across the
//         region (FU limits change unit counts, never op counts or per-op
//         energies), so any corner serves — it is read at (f1, p1, b1);
//       - the SPM access-energy floor is non-increasing in banks (CACTI
//         read/write energy falls with bank subdivision) and independent
//         of units and ports, so the b1 corner bounds it;
//       - the leakage term multiplies the (f0, p0, b0) leakage floor
//         (non-decreasing in units, ports, banks) by the (f1, p1) cycle
//         bound times the clock period — each factor a positive lower
//         bound of its measured counterpart, so the product bounds
//         leakage x elapsed for every point in the box.
//   - EDP: EnergyPJ times the cycle bound times the period. Measured EDP
//     is energy x elapsed with both factors at or above their floors.
//
// A bound that cannot be computed (elaboration failure) degrades to zero,
// which no measured point can strictly dominate or undercut — the region
// simply becomes unprunable, never unsound.
func (r *region) computeLB() {
	l := r.lat
	r.lb = Vec{}
	wide := l.ax.JobAt(l.enumIdx(l.classes[r.f1].members[0].idx, l.ports[r.p1].idx, l.banks[r.b1].idx))
	se, seErr := salam.StaticEnergyLowerBound(wide.Kernel, wide.Opts)
	if seErr == nil {
		r.lb.Cycles = se.CyclesLB
	}
	small := l.ax.JobAt(r.cornerIdx())
	env, envErr := salam.StaticEnvelopeFor(small.Kernel, small.Opts)
	if envErr == nil {
		r.lb.PowerMW = env.StaticMW
		r.lb.AreaUM2 = env.AreaUM2
	}
	if seErr == nil && envErr == nil {
		delayNS := float64(se.CyclesLB) * se.PeriodNS
		r.lb.EnergyPJ = se.FUPJ + se.RegPJ + se.MemPJ + env.StaticMW*delayNS
		r.lb.EDP = r.lb.EnergyPJ * delayNS
	}
}

// split peels the measured minimum corner off the region and returns the
// up-to-three disjoint boxes covering the remainder. Their union plus the
// corner is exactly the region, so accounting stays exact.
func (r *region) split() []*region {
	var out []*region
	if r.f0 < r.f1 {
		s := *r
		s.f0, s.proxied = r.f0+1, false
		out = append(out, &s)
	}
	if r.p0 < r.p1 {
		s := *r
		s.f1, s.p0, s.proxied = r.f0, r.p0+1, false
		out = append(out, &s)
	}
	if r.b0 < r.b1 {
		s := *r
		s.f1, s.p1, s.b0, s.proxied = r.f0, r.p0, r.b0+1, false
		out = append(out, &s)
	}
	return out
}

// regionHeap is the best-bound priority queue: regions ordered by their
// lower-bound vector (under the edp objective EDP leads; then cycles,
// power, area), with the insertion sequence number as the final tiebreak
// so the order is total and deterministic at any worker count.
type regionHeap []*region

func (h regionHeap) Len() int { return len(h) }
func (h regionHeap) Less(i, j int) bool {
	a, b := h[i].lb, h[j].lb
	if h[i].lat.obj == ObjEDP && a.EDP != b.EDP {
		return a.EDP < b.EDP
	}
	if a.Cycles != b.Cycles {
		return a.Cycles < b.Cycles
	}
	if a.PowerMW != b.PowerMW {
		return a.PowerMW < b.PowerMW
	}
	if a.AreaUM2 != b.AreaUM2 {
		return a.AreaUM2 < b.AreaUM2
	}
	return h[i].seq < h[j].seq
}
func (h regionHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *regionHeap) Push(x any)   { *h = append(*h, x.(*region)) }
func (h *regionHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}
