package search

import "fmt"

// Objective selects what a search minimizes. ObjPareto maintains the
// three-axis (cycles, power, area) Pareto frontier; ObjEDP and ObjCycles
// are single-objective modes that keep only the best measured point —
// which is what finally makes dominance pruning fire on power/energy-bound
// spaces: a single incumbent EDP prunes every region whose provable energy
// floor already exceeds it.
type Objective int

// Search objectives.
const (
	ObjPareto Objective = iota
	ObjEDP
	ObjCycles
)

// ParseObjective resolves the Space.Objective spelling ("" and "pareto"
// are the frontier default).
func ParseObjective(s string) (Objective, error) {
	switch s {
	case "", "pareto":
		return ObjPareto, nil
	case "edp":
		return ObjEDP, nil
	case "cycles":
		return ObjCycles, nil
	}
	return ObjPareto, fmt.Errorf("search: unknown objective %q (want pareto, edp, or cycles)", s)
}

func (o Objective) String() string {
	switch o {
	case ObjEDP:
		return "edp"
	case ObjCycles:
		return "cycles"
	}
	return "pareto"
}

// selector unifies incumbent maintenance and region pruning across
// objectives, so Run and BruteForce share one exactness-preserving
// decision procedure:
//
//   - pareto: the strict-dominance frontier with lowest-index tie
//     attribution (unchanged semantics);
//   - edp/cycles: a single incumbent — the lowest key, ties to the lowest
//     enumeration index. Pruning uses strict inequality (best < bound), so
//     a region whose floor ties the incumbent still gets measured and the
//     lowest-index attribution matches a brute-force sweep byte for byte;
//   - max-area (any objective): points over the cap never enter the
//     result, and a region whose area floor — evaluated at its smallest
//     corner, where area is minimal — already exceeds the cap holds no
//     feasible point and is pruned whole.
type selector struct {
	obj     Objective
	maxArea float64
	front   *Frontier
	best    FrontierPoint
	hasBest bool
}

func newSelector(obj Objective, maxArea float64) *selector {
	return &selector{obj: obj, maxArea: maxArea, front: &Frontier{}}
}

// key is the scalar a single-objective mode minimizes.
func (s *selector) key(v Vec) float64 {
	if s.obj == ObjEDP {
		return v.EDP
	}
	return float64(v.Cycles)
}

// feasible applies the area cap to one measured point.
func (s *selector) feasible(v Vec) bool {
	return s.maxArea <= 0 || v.AreaUM2 <= s.maxArea
}

// insert offers a measured point.
func (s *selector) insert(p FrontierPoint) {
	if !s.feasible(p.Vec) {
		return
	}
	if s.obj == ObjPareto {
		s.front.Insert(p)
		return
	}
	k := s.key(p.Vec)
	switch {
	case !s.hasBest,
		k < s.key(s.best.Vec),
		k == s.key(s.best.Vec) && p.Index < s.best.Index:
		s.best, s.hasBest = p, true
	}
}

// prunes reports whether a region with lower-bound vector lb provably
// contains no point that could improve the result.
func (s *selector) prunes(lb Vec) bool {
	if s.maxArea > 0 && lb.AreaUM2 > s.maxArea {
		return true // the whole box is infeasible: area floors at the small corner
	}
	if s.obj == ObjPareto {
		return s.front.DominatesVec(lb)
	}
	// Strict inequality: a floor that merely ties the incumbent may hide a
	// tying point with a lower enumeration index, which must win the tie.
	return s.hasBest && s.key(s.best.Vec) < s.key(lb)
}

// points renders the result set in canonical order.
func (s *selector) points() []FrontierPoint {
	if s.obj == ObjPareto {
		return s.front.Points()
	}
	if !s.hasBest {
		return nil
	}
	return []FrontierPoint{s.best}
}
