// Package search explores a design space without sweeping it: a
// deterministic branch-and-bound Pareto-frontier search over the knob
// lattice a campaign.Space declares. Where the campaign engine's sweep
// simulates every point, the search maintains a frontier over measured
// (cycles, power, area) vectors and expands boxed regions of the lattice
// best-bound first, pruning any region whose provable lower-bound corner
// is already strictly dominated by a measurement — those points can never
// join the frontier, so skipping them is exact, not approximate.
//
// Three levers make million-point spaces tractable:
//
//   - equivalence collapse: FU limits clamp to the kernel's dedicated
//     demand and cache mode ignores SPM banking, so whole slabs of the
//     space are provably the same hardware and are measured once;
//   - bound pruning: static cycle bounds and static power/area floors
//     (internal/analysis plus the Cacti envelope) bound every point in a
//     region from one corner evaluation;
//   - successive halving: when a reduced-trip proxy of the kernel exists
//     (kernels.ProxyOf with proven loop trips), each wave's candidates
//     first race the cheap proxy and only the better half is promoted to
//     a full simulation this wave — the rest re-queue. Proxy numbers only
//     ever order work; they never enter the frontier or any bound.
//
// Everything that decides expansion, pruning, and attribution is a pure
// function of the space and the committed measurements, and simulations
// run through the campaign engine's ordered collector, so the frontier is
// byte-identical at any worker count, warm or cold, fresh or resumed from
// a prior run's result store.
package search

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"sort"

	salam "gosalam"
	"gosalam/internal/campaign"
	"gosalam/internal/sim"
	"gosalam/kernels"
)

// DefaultBatch is the wave size: how many regions a wave pops before
// simulating. It is a fixed constant on purpose — deriving it from the
// worker count would let parallelism change which corners are measured
// and break byte-identical frontiers across -jobs settings.
const DefaultBatch = 32

// Config parameterizes a search. Workers, Cache, Sessions, ColdStart,
// Runner, and Drain have campaign.Config semantics — the search runs its
// simulations through that engine.
type Config struct {
	// Space declares the design space (ranged knobs welcome: the search
	// never enumerates the cross product).
	Space campaign.Space
	// Workers sizes the simulation pool (<=0 means GOMAXPROCS). Any value
	// yields the identical frontier.
	Workers int
	// BatchSize overrides the wave size (<=0 means DefaultBatch). Part of
	// the search's deterministic identity: two runs must use the same
	// batch size to follow the same expansion order.
	BatchSize int
	// Cache is the content-addressed result store (nil = none). A warm
	// store turns re-runs and resumed searches into cache hits.
	Cache campaign.Store
	// Sessions is the warm-start pool simulations draw from (nil = one
	// scoped to this search).
	Sessions *salam.SessionPool
	// ColdStart disables warm-start session reuse.
	ColdStart bool
	// Runner overrides the simulation function (tests).
	Runner campaign.Runner
	// NoProxy disables the successive-halving proxy rung even when a
	// reduced-trip proxy kernel exists.
	NoProxy bool
	// Stats, when non-nil, gets a "search" child group with the outcome
	// counters.
	Stats *sim.Group
	// Drain, when non-nil and closed, soft-stops the search at the next
	// wave boundary: committed results stand, Result.Drained is set, and
	// re-running against the same store resumes the work.
	Drain <-chan struct{}
}

// Result is what a search proved.
type Result struct {
	// Frontier is the exact Pareto frontier (complete runs) or the
	// frontier of everything measured so far (drained runs), sorted by
	// cycles ascending.
	Frontier []FrontierPoint `json:"frontier"`
	// Points is the raw size of the space.
	Points int `json:"points"`
	// Classes is the collapsed leaf count: the space after FU-equivalence
	// and cache-bank collapse, the most the search could ever simulate.
	Classes int `json:"classes"`
	// Evaluated counts committed full-fidelity measurements
	// (Simulated + CacheHits).
	Evaluated int `json:"evaluated"`
	// Simulated counts full simulations that actually ran.
	Simulated int `json:"simulated"`
	// CacheHits counts full measurements served from the store.
	CacheHits int `json:"cache_hits"`
	// ProxyRuns counts proxy (reduced-trip) evaluations; these are
	// ranking-only and never enter the frontier.
	ProxyRuns int `json:"proxy_runs"`
	// PrunedPoints counts raw points discarded by dominance pruning.
	PrunedPoints int `json:"pruned_points"`
	// CollapsedPoints counts raw points covered by an equivalent
	// measured representative.
	CollapsedPoints int `json:"collapsed_points"`
	// Waves is how many expansion waves ran.
	Waves int `json:"waves"`
	// Drained reports a soft stop: the frontier is a certified frontier
	// of the measured prefix, not of the whole space.
	Drained bool `json:"drained"`
}

func (c Config) batch() int {
	if c.BatchSize > 0 {
		return c.BatchSize
	}
	return DefaultBatch
}

// base assembles the campaign config the search submits waves through.
func (c Config) base(pool *salam.SessionPool) campaign.Config {
	return campaign.Config{
		Workers:   c.Workers,
		Cache:     c.Cache,
		Runner:    c.Runner,
		ColdStart: c.ColdStart,
		Sessions:  pool,
		Drain:     c.Drain,
	}
}

func (c Config) pool() *salam.SessionPool {
	if c.Runner != nil || c.ColdStart {
		return nil
	}
	if c.Sessions != nil {
		return c.Sessions
	}
	return salam.NewSessionPool()
}

func vecOf(m *campaign.Metrics) Vec {
	v := Vec{
		Cycles:  m.Cycles,
		PowerMW: m.Power.TotalMW(),
		AreaUM2: m.Power.AreaFU + m.Power.AreaReg + m.Power.AreaSPM,
	}
	// Ticks are ps; mW x ns = pJ. The elapsed window is the same one the
	// power report averaged over, so EnergyPJ is exactly the run's charged
	// energy and EDP its energy-delay product in pJ*ns.
	ns := float64(m.Ticks) / 1000.0
	if ns > 0 {
		v.EnergyPJ = v.PowerMW * ns
		v.EDP = v.EnergyPJ * ns
	}
	return v
}

// proxyKernel resolves the successive-halving proxy: the Micro instance
// of the space's kernel, admitted only when every one of its loops has a
// proven constant trip count — the "reduced-trip" guarantee that makes a
// proxy run strictly cheaper than the real workload rather than
// accidentally equivalent or unbounded.
func proxyKernel(ax *campaign.Axes, disabled bool) (*kernels.Kernel, string) {
	if disabled {
		return nil, ""
	}
	pk := kernels.ProxyOf(ax.Kernel.Name)
	if pk == nil {
		return nil, ""
	}
	rep, err := salam.AnalyzeKernel(pk, salam.DefaultRunOpts())
	if err != nil {
		return nil, ""
	}
	for _, lp := range rep.Loops {
		if lp.Trip < 0 {
			return nil, ""
		}
	}
	return pk, pk.Name + "/preset=micro"
}

func drainClosed(ch <-chan struct{}) bool {
	if ch == nil {
		return false
	}
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

// outcomeErr classifies one wave outcome: drained, context-canceled, or a
// hard job failure.
func outcomeErr(ctx context.Context, o campaign.Outcome) (drained bool, err error) {
	if o.Err == nil {
		return false, nil
	}
	if errors.Is(o.Err, campaign.ErrDrained) {
		return true, nil
	}
	if ctx.Err() != nil {
		return false, ctx.Err()
	}
	return false, fmt.Errorf("search: point %q: %w", o.Job.ID, o.Err)
}

// Run executes the branch-and-bound search to completion (or soft stop)
// and returns the proven frontier. A hard simulation failure aborts with
// an error: a frontier cannot be certified exact over a space with
// unmeasurable points.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ax, err := cfg.Space.Axes()
	if err != nil {
		return nil, err
	}
	lats, leaves := buildLattices(ax)
	res := &Result{Points: ax.Size(), Classes: leaves}
	obj, _ := ParseObjective(ax.Objective) // Axes validated the string
	sel := newSelector(obj, ax.MaxAreaUM2)
	proxyK, proxyKey := proxyKernel(ax, cfg.NoProxy)
	pool := cfg.pool()
	base := cfg.base(pool)

	var seq uint64
	pq := &regionHeap{}
	push := func(r *region) {
		r.computeLB()
		if sel.prunes(r.lb) {
			res.PrunedPoints += r.points()
			return
		}
		r.seq = seq
		seq++
		heap.Push(pq, r)
	}
	for _, l := range lats {
		push(&region{
			lat: l,
			f1:  len(l.classes) - 1, p1: len(l.ports) - 1, b1: len(l.banks) - 1,
		})
	}

	for pq.Len() > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if drainClosed(cfg.Drain) {
			res.Drained = true
			break
		}

		// Pop a wave of candidates, re-checking dominance at pop time:
		// the frontier has grown since these regions were pushed.
		var cands []*region
		for len(cands) < cfg.batch() && pq.Len() > 0 {
			r := heap.Pop(pq).(*region)
			if sel.prunes(r.lb) {
				res.PrunedPoints += r.points()
				continue
			}
			cands = append(cands, r)
		}
		if len(cands) == 0 {
			break
		}
		res.Waves++

		// Successive-halving proxy rung: race the not-yet-proxied
		// candidates on the reduced-trip kernel and promote the better
		// half (plus everything that already lost one rung — a region is
		// demoted at most once, so the search always terminates). Proxy
		// cycles order work and do nothing else.
		if proxyK != nil {
			var fresh []int
			for i, c := range cands {
				if !c.proxied {
					fresh = append(fresh, i)
				}
			}
			if len(fresh) > 1 {
				jobs := make([]campaign.Job, len(fresh))
				for j, i := range fresh {
					jb := cands[i].lat.ax.JobAt(cands[i].cornerIdx())
					jb.Kernel = proxyK
					jb.KernelKey = proxyKey
					jb.ID = "proxy " + jb.ID
					jobs[j] = jb
				}
				outs := campaign.Run(ctx, base, jobs)
				type ranked struct {
					pos    int // index into fresh — the deterministic tiebreak
					cycles uint64
				}
				rs := make([]ranked, len(fresh))
				for j, o := range outs {
					drained, err := outcomeErr(ctx, o)
					if err != nil && ctx.Err() != nil {
						return nil, err
					}
					if drained {
						// Soft stop mid-rung: nothing was committed, so
						// requeueing every candidate restores the exact
						// pre-wave state.
						for _, c := range cands {
							heap.Push(pq, c)
						}
						res.Drained = true
						res.fill(cfg, sel)
						return res, nil
					}
					rs[j] = ranked{pos: j}
					if err == nil && o.Metrics != nil {
						rs[j].cycles = o.Metrics.Cycles
						res.ProxyRuns++
					}
					// A failed proxy ranks first (cycles 0): it promotes to
					// a full run, whose real error is then authoritative.
				}
				sort.Slice(rs, func(a, b int) bool {
					if rs[a].cycles != rs[b].cycles {
						return rs[a].cycles < rs[b].cycles
					}
					return rs[a].pos < rs[b].pos
				})
				promote := make(map[int]bool, len(fresh))
				for _, r := range rs[:(len(rs)+1)/2] {
					promote[fresh[r.pos]] = true
				}
				var kept []*region
				for i, c := range cands {
					if c.proxied || promote[i] {
						kept = append(kept, c)
					} else {
						c.proxied = true
						heap.Push(pq, c)
					}
				}
				cands = kept
			}
		}

		// Full-fidelity corner simulations for the wave's survivors, then
		// commit in candidate order: insert the measurement, peel the
		// corner, and push (or prune) the remainder boxes.
		jobs := make([]campaign.Job, len(cands))
		for i, c := range cands {
			jobs[i] = c.lat.ax.JobAt(c.cornerIdx())
		}
		outs := campaign.Run(ctx, base, jobs)
		for _, o := range outs {
			drained, err := outcomeErr(ctx, o)
			if err != nil {
				return nil, err
			}
			// The frontier's exactness certificate rests on exact corner
			// measurements: the branch-and-bound pruning proof compares
			// measured cycles against static lower bounds, and an
			// extrapolated measurement voids it. JobAt never requests
			// sampling; this guards custom Runners and poisoned caches.
			if o.Metrics != nil && o.Metrics.Estimated {
				return nil, fmt.Errorf("search: job %q returned an estimated measurement; the frontier requires exact runs", o.Job.ID)
			}
			if drained {
				// Completed siblings of this wave are already persisted in
				// the store; requeueing the whole wave keeps the committed
				// state exactly "all complete waves", so a resumed run
				// replays deterministically with cache hits.
				for _, c := range cands {
					heap.Push(pq, c)
				}
				res.Drained = true
				res.fill(cfg, sel)
				return res, nil
			}
		}
		for i, c := range cands {
			o := outs[i]
			res.Evaluated++
			if o.Cached {
				res.CacheHits++
			} else {
				res.Simulated++
			}
			res.CollapsedPoints += c.cornerPoints() - 1
			idx := c.cornerIdx()
			sel.insert(FrontierPoint{
				Index: idx,
				ID:    o.Job.ID,
				Point: ax.PointAt(idx),
				Vec:   vecOf(o.Metrics),
			})
			for _, s := range c.split() {
				push(s)
			}
		}
	}

	res.fill(cfg, sel)
	return res, nil
}

// fill finalizes the result and publishes the stat counters.
func (r *Result) fill(cfg Config, sel *selector) {
	r.Frontier = sel.points()
	if cfg.Stats == nil {
		return
	}
	g := cfg.Stats.Child("search")
	set := func(name, desc string, v int) {
		g.Scalar(name, desc).Set(float64(v))
	}
	set("points", "raw design points in the space", r.Points)
	set("classes", "collapsed leaves after equivalence collapse", r.Classes)
	set("evaluated", "full-fidelity measurements committed", r.Evaluated)
	set("simulated", "full simulations that ran", r.Simulated)
	set("cache_hits", "full measurements served from the store", r.CacheHits)
	set("proxy_runs", "reduced-trip proxy evaluations (ranking only)", r.ProxyRuns)
	set("points_pruned", "raw points discarded by dominance pruning", r.PrunedPoints)
	set("points_collapsed", "raw points covered by an equivalent representative", r.CollapsedPoints)
	set("waves", "expansion waves", r.Waves)
	set("frontier", "Pareto-frontier size", len(r.Frontier))
}

// BruteForce sweeps the entire space through the campaign engine and
// Pareto-filters every measurement: the oracle the search is tested and
// smoke-checked against. Only sensible for spaces small enough to
// enumerate.
func BruteForce(ctx context.Context, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ax, err := cfg.Space.Axes()
	if err != nil {
		return nil, err
	}
	n := ax.Size()
	jobs := make([]campaign.Job, n)
	for i := range jobs {
		jobs[i] = ax.JobAt(i)
	}
	res := &Result{Points: n, Classes: n}
	obj, _ := ParseObjective(ax.Objective) // Axes validated the string
	sel := newSelector(obj, ax.MaxAreaUM2)
	outs := campaign.Run(ctx, cfg.base(cfg.pool()), jobs)
	for i, o := range outs {
		if drained, err := outcomeErr(ctx, o); err != nil {
			return nil, err
		} else if drained {
			return nil, fmt.Errorf("search: brute-force sweep drained before completion")
		}
		if o.Metrics != nil && o.Metrics.Estimated {
			return nil, fmt.Errorf("search: job %q returned an estimated measurement; the frontier requires exact runs", o.Job.ID)
		}
		res.Evaluated++
		if o.Cached {
			res.CacheHits++
		} else {
			res.Simulated++
		}
		sel.insert(FrontierPoint{
			Index: i,
			ID:    o.Job.ID,
			Point: ax.PointAt(i),
			Vec:   vecOf(o.Metrics),
		})
	}
	res.Frontier = sel.points()
	return res, nil
}
