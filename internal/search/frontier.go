package search

import (
	"fmt"
	"sort"
	"strings"

	"gosalam/internal/campaign"
)

// Vec is one design point's objective vector: the three axes the Pareto
// frontier trades off (smaller is better on every axis), plus the energy
// and energy-delay-product components single-objective searches minimize.
type Vec struct {
	Cycles  uint64
	PowerMW float64
	AreaUM2 float64
	// EnergyPJ is total energy over the run (TotalMW x elapsed ns) for a
	// measured point, or the provable energy floor for a region bound.
	// EDP is EnergyPJ x delay-ns. Under the pareto objective these ride
	// along for reporting and region bounds but take no part in dominance
	// or tie equality — the three-axis frontier stays byte-identical to
	// pre-energy runs; the edp objective minimizes EDP directly.
	EnergyPJ float64
	EDP      float64
}

// samePareto reports equality on the three Pareto axes — the tie relation
// Insert resolves by lowest enumeration index. Energy annotations are
// deliberately excluded: two configurations proving the same
// (cycles, power, area) must stay one frontier resident regardless of
// drain-window differences in their elapsed-time-derived energy.
func samePareto(a, b Vec) bool {
	return a.Cycles == b.Cycles && a.PowerMW == b.PowerMW && a.AreaUM2 == b.AreaUM2
}

// dominates reports whether a strictly dominates b: no worse on every
// objective and strictly better on at least one. Equal vectors dominate
// neither way.
func dominates(a, b Vec) bool {
	if a.Cycles > b.Cycles || a.PowerMW > b.PowerMW || a.AreaUM2 > b.AreaUM2 {
		return false
	}
	return a.Cycles < b.Cycles || a.PowerMW < b.PowerMW || a.AreaUM2 < b.AreaUM2
}

// FrontierPoint is one non-dominated design point: the measured objective
// vector attached to the lowest-enumeration-index configuration that
// achieves it.
type FrontierPoint struct {
	// Index is the point's position in the space's canonical enumeration
	// (campaign.Axes order) — the lowest index among all configurations
	// proven to achieve this exact vector.
	Index int            `json:"index"`
	ID    string         `json:"id"`
	Point campaign.Point `json:"point"`
	Vec   Vec            `json:"vec"`
}

// Frontier is a Pareto frontier under strict dominance. The resident set
// is a pure function of the multiset of inserted points — insertion order
// never matters — which is what lets a best-bound search and a brute-force
// sweep arrive at byte-identical frontiers.
type Frontier struct {
	pts []FrontierPoint
}

// Insert offers a measured point. Dominated points are rejected, newly
// dominated residents are evicted, and a point whose vector ties an
// existing resident exactly keeps the lower enumeration index.
func (f *Frontier) Insert(p FrontierPoint) {
	keep := f.pts[:0]
	for _, q := range f.pts {
		if samePareto(q.Vec, p.Vec) {
			if p.Index < q.Index {
				q = p
			}
			// Tie resolved in place; the rest of the set is untouched.
			f.pts = append(keep, f.pts[len(keep):]...)
			for i := range f.pts {
				if samePareto(f.pts[i].Vec, p.Vec) {
					f.pts[i] = q
				}
			}
			return
		}
		if dominates(q.Vec, p.Vec) {
			return // p is dominated; residents never dominate each other
		}
		if !dominates(p.Vec, q.Vec) {
			keep = append(keep, q)
		}
	}
	f.pts = append(keep, p)
}

// DominatesVec reports whether any resident strictly dominates v — the
// region-pruning test: a region whose lower-bound corner is strictly
// dominated contains only strictly dominated points.
func (f *Frontier) DominatesVec(v Vec) bool {
	for _, q := range f.pts {
		if dominates(q.Vec, v) {
			return true
		}
	}
	return false
}

// Len returns the resident count.
func (f *Frontier) Len() int { return len(f.pts) }

// Points returns the frontier sorted by (cycles, power, area) ascending —
// a total order, since resident vectors are pairwise distinct.
func (f *Frontier) Points() []FrontierPoint {
	out := append([]FrontierPoint(nil), f.pts...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Vec, out[j].Vec
		if a.Cycles != b.Cycles {
			return a.Cycles < b.Cycles
		}
		if a.PowerMW != b.PowerMW {
			return a.PowerMW < b.PowerMW
		}
		return a.AreaUM2 < b.AreaUM2
	})
	return out
}

// FrontierCSV renders the frontier in the canonical byte format every
// consumer (salam-dse -search, the serve endpoint, the determinism tests,
// the smoke oracle) compares: header plus one row per point, sorted by
// the Points order.
func FrontierCSV(kernel string, pts []FrontierPoint) string {
	var sb strings.Builder
	sb.WriteString("kernel,memory,fu_limit,ports,banks,index,cycles,power_mw,area_um2,energy_pj,edp\n")
	for _, p := range pts {
		fmt.Fprintf(&sb, "%s,%s,%d,%d,%d,%d,%d,%.4f,%.1f,%.1f,%.1f\n",
			kernel, p.Point.Mem, p.Point.FU, p.Point.Ports, p.Point.Banks,
			p.Index, p.Vec.Cycles, p.Vec.PowerMW, p.Vec.AreaUM2, p.Vec.EnergyPJ, p.Vec.EDP)
	}
	return sb.String()
}
