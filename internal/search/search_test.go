package search

import (
	"context"
	"strings"
	"sync"
	"testing"

	salam "gosalam"
	"gosalam/internal/campaign"
	"gosalam/kernels"
)

func TestFrontierInsert(t *testing.T) {
	f := &Frontier{}
	p := func(idx int, c uint64, pw, a float64) FrontierPoint {
		return FrontierPoint{Index: idx, Vec: Vec{Cycles: c, PowerMW: pw, AreaUM2: a}}
	}
	f.Insert(p(5, 100, 2, 30))
	f.Insert(p(1, 200, 1, 30)) // trades cycles for power: both stay
	if f.Len() != 2 {
		t.Fatalf("frontier len %d, want 2", f.Len())
	}
	f.Insert(p(9, 300, 3, 40)) // dominated by both
	if f.Len() != 2 {
		t.Fatalf("dominated insert changed frontier: len %d", f.Len())
	}
	f.Insert(p(3, 90, 1, 20)) // dominates everything
	if f.Len() != 1 || f.Points()[0].Index != 3 {
		t.Fatalf("dominating insert left %v", f.Points())
	}
	f.Insert(p(7, 90, 1, 20)) // exact tie, higher index: ignored
	f.Insert(p(2, 90, 1, 20)) // exact tie, lower index: wins
	if got := f.Points()[0].Index; got != 2 {
		t.Fatalf("tie kept index %d, want 2", got)
	}
	if f.DominatesVec(Vec{Cycles: 95, PowerMW: 2, AreaUM2: 25}) != true {
		t.Fatal("DominatesVec missed a dominated vector")
	}
	if f.DominatesVec(Vec{Cycles: 80, PowerMW: 5, AreaUM2: 25}) {
		t.Fatal("DominatesVec pruned a non-dominated vector")
	}
}

// checkInvariant asserts the exact accounting identity: every raw point is
// either evaluated, covered by an equivalent evaluated representative, or
// provably dominated — nothing falls through and nothing is counted twice.
func checkInvariant(t *testing.T, res *Result) {
	t.Helper()
	if got := res.Evaluated + res.CollapsedPoints + res.PrunedPoints; got != res.Points {
		t.Fatalf("accounting: evaluated %d + collapsed %d + pruned %d = %d, want %d points",
			res.Evaluated, res.CollapsedPoints, res.PrunedPoints, got, res.Points)
	}
	if res.Simulated+res.CacheHits != res.Evaluated {
		t.Fatalf("evaluated %d != simulated %d + cache hits %d",
			res.Evaluated, res.Simulated, res.CacheHits)
	}
}

// smallSpace is brute-forceable and exercises every collapse mechanism:
// gemm-tree's FP demand folds the top of the fu axis into one class, and
// the cache lattice folds the bank axis entirely.
func smallSpace() campaign.Space {
	return campaign.Space{
		Kernel: "gemm-tree",
		Mem:    []string{"spm", "cache"},
		FU:     []int{0, 2, 4, 8, 16},
		Ports:  []int{2, 4},
		Banks:  []int{2, 4},
	}
}

func TestSearchExactFrontier(t *testing.T) {
	ctx := context.Background()
	space := smallSpace()

	oracle, err := BruteForce(ctx, Config{Space: space, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(ctx, Config{Space: space, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	checkInvariant(t, res)

	want := FrontierCSV(space.Kernel, oracle.Frontier)
	got := FrontierCSV(space.Kernel, res.Frontier)
	if want != got {
		t.Fatalf("search frontier differs from brute-force oracle:\noracle:\n%s\nsearch:\n%s", want, got)
	}
	if res.Evaluated >= res.Points {
		t.Fatalf("search evaluated %d of %d points: no better than sweeping", res.Evaluated, res.Points)
	}
	if res.Evaluated > res.Classes {
		t.Fatalf("evaluated %d points but only %d collapsed leaves exist", res.Evaluated, res.Classes)
	}
	if res.CollapsedPoints == 0 {
		t.Fatal("collapse never fired on a space built to exercise it")
	}
}

func TestSearchMillionPointSpace(t *testing.T) {
	if testing.Short() {
		t.Skip("million-point search skipped in -short")
	}
	// 1000 fu limits x 100 port widths x 10 bank counts = 10^6 raw points.
	// GEMM's dedicated FP demand collapses the entire fu axis, so the
	// search must certify the exact frontier while evaluating under 1% of
	// the space.
	space := campaign.Space{
		Kernel:    "gemm",
		FURange:   &campaign.Range{Min: 1, Max: 1000},
		PortRange: &campaign.Range{Min: 1, Max: 100},
		BankRange: &campaign.Range{Min: 1, Max: 10},
	}
	if n := space.Size(); n != 1_000_000 {
		t.Fatalf("space size %d, want 1000000", n)
	}
	res, err := Run(context.Background(), Config{Space: space})
	if err != nil {
		t.Fatal(err)
	}
	checkInvariant(t, res)
	if res.Evaluated*100 >= res.Points {
		t.Fatalf("evaluated %d of %d points (>= 1%%)", res.Evaluated, res.Points)
	}
	if len(res.Frontier) == 0 {
		t.Fatal("empty frontier")
	}
	t.Logf("points=%d classes=%d evaluated=%d simulated=%d pruned=%d collapsed=%d proxies=%d waves=%d frontier=%d",
		res.Points, res.Classes, res.Evaluated, res.Simulated, res.PrunedPoints,
		res.CollapsedPoints, res.ProxyRuns, res.Waves, len(res.Frontier))
}

func TestSearchDeterministicAcrossWorkers(t *testing.T) {
	space := smallSpace()
	var csvs []string
	for _, workers := range []int{1, 4, 16} {
		res, err := Run(context.Background(), Config{Space: space, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		checkInvariant(t, res)
		csvs = append(csvs, FrontierCSV(space.Kernel, res.Frontier))
	}
	if csvs[0] != csvs[1] || csvs[0] != csvs[2] {
		t.Fatalf("frontier depends on worker count:\n-jobs 1:\n%s\n-jobs 4:\n%s\n-jobs 16:\n%s",
			csvs[0], csvs[1], csvs[2])
	}
}

func TestSearchColdWarmAndResume(t *testing.T) {
	space := smallSpace()
	ctx := context.Background()

	cold, err := Run(ctx, Config{Space: space, Workers: 4, ColdStart: true})
	if err != nil {
		t.Fatal(err)
	}
	pool := salam.NewSessionPool()
	warm, err := Run(ctx, Config{Space: space, Workers: 4, Sessions: pool})
	if err != nil {
		t.Fatal(err)
	}
	coldCSV := FrontierCSV(space.Kernel, cold.Frontier)
	if warmCSV := FrontierCSV(space.Kernel, warm.Frontier); warmCSV != coldCSV {
		t.Fatalf("warm-start frontier differs from cold:\ncold:\n%s\nwarm:\n%s", coldCSV, warmCSV)
	}

	// Resume: a second run against the first run's store must replay every
	// measurement as a cache hit and land on the identical frontier.
	store, err := campaign.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	first, err := Run(ctx, Config{Space: space, Workers: 4, Cache: store})
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(ctx, Config{Space: space, Workers: 1, Cache: store})
	if err != nil {
		t.Fatal(err)
	}
	checkInvariant(t, second)
	if second.Simulated != 0 {
		t.Fatalf("resumed run simulated %d jobs, want 0 (all cache hits)", second.Simulated)
	}
	if second.CacheHits != second.Evaluated {
		t.Fatalf("resumed run: %d cache hits of %d evaluations", second.CacheHits, second.Evaluated)
	}
	a, b := FrontierCSV(space.Kernel, first.Frontier), FrontierCSV(space.Kernel, second.Frontier)
	if a != b {
		t.Fatalf("resumed frontier differs:\nfirst:\n%s\nsecond:\n%s", a, b)
	}
	if a != coldCSV {
		t.Fatalf("cached frontier differs from cold reference")
	}
}

func TestSearchDrainAndResume(t *testing.T) {
	space := smallSpace()
	ctx := context.Background()
	store, err := campaign.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	// A runner that drains the search after the first few simulations.
	drain := make(chan struct{})
	var once sync.Once
	calls := 0
	var mu sync.Mutex
	runner := func(ctx context.Context, k *kernels.Kernel, opts salam.RunOpts) (*salam.Result, error) {
		mu.Lock()
		calls++
		stop := calls >= 3
		mu.Unlock()
		if stop {
			once.Do(func() { close(drain) })
		}
		return salam.RunKernelCtx(ctx, k, opts)
	}
	partial, err := Run(ctx, Config{Space: space, Workers: 2, Cache: store, Runner: runner, Drain: drain})
	if err != nil {
		t.Fatal(err)
	}
	if !partial.Drained {
		t.Fatal("search did not report the drain")
	}

	// Resuming against the same store finishes the space and matches an
	// undrained reference byte for byte.
	resumed, err := Run(ctx, Config{Space: space, Workers: 2, Cache: store})
	if err != nil {
		t.Fatal(err)
	}
	checkInvariant(t, resumed)
	ref, err := Run(ctx, Config{Space: space, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	a, b := FrontierCSV(space.Kernel, ref.Frontier), FrontierCSV(space.Kernel, resumed.Frontier)
	if a != b {
		t.Fatalf("drain+resume frontier differs from reference:\nref:\n%s\nresumed:\n%s", a, b)
	}
}

// TestSearchPruning drives the engine with a scripted runner whose
// fabricated measurements sit exactly on the provable floors, so the
// port-axis tail of the space is strictly dominated and must be pruned
// without simulation.
func TestSearchPruning(t *testing.T) {
	space := campaign.Space{
		Kernel: "gemm-tree",
		FU:     []int{0},
		Ports:  []int{2, 64},
	}
	ax, err := space.Axes()
	if err != nil {
		t.Fatal(err)
	}
	// The wide-corner bounds the narrow corner's fabricated measurement
	// must dominate: cycles at ports=64, power/area floor at ports=64.
	wide := ax.JobAt(1)
	wideLB, ok := salam.StaticLowerBound(wide.Kernel, wide.Opts)
	if !ok {
		t.Fatal("no static bound for the wide corner")
	}
	wideEnv, err := salam.StaticEnvelopeFor(wide.Kernel, wide.Opts)
	if err != nil {
		t.Fatal(err)
	}

	runner := func(ctx context.Context, k *kernels.Kernel, opts salam.RunOpts) (*salam.Result, error) {
		res := &salam.Result{Cycles: wideLB}
		if opts.Accel.ReadPorts != 2 {
			// Only the narrow corner should ever be simulated.
			res.Cycles = wideLB + 1
		}
		res.Power.StaticFU = wideEnv.StaticMW / 2
		res.Power.AreaFU = wideEnv.AreaUM2 / 2
		return res, nil
	}
	res, err := Run(context.Background(), Config{Space: space, Runner: runner, NoProxy: true})
	if err != nil {
		t.Fatal(err)
	}
	checkInvariant(t, res)
	if res.PrunedPoints == 0 {
		t.Fatal("dominated port tail was not pruned")
	}
	if res.Evaluated != 1 {
		t.Fatalf("evaluated %d points, want only the dominating corner", res.Evaluated)
	}
	if got := res.Frontier[0].Point.Ports; got != 2 {
		t.Fatalf("frontier kept ports=%d, want 2", got)
	}
}

// TestStaticEnvelopeFloor anchors the pruning bound to reality: the static
// envelope must reproduce a real run's area exactly and floor its power,
// in both memory modes and across bank counts.
func TestStaticEnvelopeFloor(t *testing.T) {
	k := kernels.ByName(kernels.Small, "gemm")
	for _, mode := range []string{"spm", "cache"} {
		for _, banks := range []int{1, 4, 8} {
			opts := salam.DefaultRunOpts()
			opts.SPMBanks = banks
			if mode == "cache" {
				opts.Mem = salam.MemCache
			}
			env, err := salam.StaticEnvelopeFor(k, opts)
			if err != nil {
				t.Fatal(err)
			}
			res, err := salam.RunKernel(k, opts)
			if err != nil {
				t.Fatal(err)
			}
			area := res.Power.AreaFU + res.Power.AreaReg + res.Power.AreaSPM
			if diff := env.AreaUM2 - area; diff > 1e-6 || diff < -1e-6 {
				t.Fatalf("%s banks=%d: envelope area %.3f != measured %.3f", mode, banks, env.AreaUM2, area)
			}
			if env.StaticMW > res.Power.TotalMW() {
				t.Fatalf("%s banks=%d: static floor %.4f above measured power %.4f",
					mode, banks, env.StaticMW, res.Power.TotalMW())
			}
		}
	}
}

func TestSearchProxyRuns(t *testing.T) {
	// A space wide enough for multi-candidate waves must actually exercise
	// the successive-halving rung when a proxy exists.
	space := campaign.Space{
		Kernel: "gemm",
		Ports:  []int{1, 2, 3, 4, 5, 6, 7, 8},
		Banks:  []int{1, 2, 4, 8},
	}
	res, err := Run(context.Background(), Config{Space: space, Workers: 4, BatchSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	checkInvariant(t, res)
	if res.ProxyRuns == 0 {
		t.Fatal("proxy rung never ran on a multi-wave space")
	}
	noproxy, err := Run(context.Background(), Config{Space: space, Workers: 4, BatchSize: 4, NoProxy: true})
	if err != nil {
		t.Fatal(err)
	}
	if noproxy.ProxyRuns != 0 {
		t.Fatal("NoProxy still ran proxies")
	}
	// Proxy ordering must not change what the search proves.
	a, b := FrontierCSV(space.Kernel, res.Frontier), FrontierCSV(space.Kernel, noproxy.Frontier)
	if a != b {
		t.Fatalf("proxy rung changed the frontier:\nwith:\n%s\nwithout:\n%s", a, b)
	}
}

// TestSearchEDPExactFrontier proves the single-objective modes against
// brute force: for every objective (and with an area cap that rules out
// part of the space), branch and bound must land on the byte-identical
// best point while pruning on the energy/cycle floors.
func TestSearchEDPExactFrontier(t *testing.T) {
	ctx := context.Background()

	// A mid-space area cap: StaticEnvelopeFor at the largest and smallest
	// configurations brackets it so both feasible and infeasible points
	// exist, whatever the calibration constants.
	space := smallSpace()
	ax, err := space.Axes()
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := 0.0, 0.0
	for i := 0; i < ax.Size(); i++ {
		j := ax.JobAt(i)
		env, err := salam.StaticEnvelopeFor(j.Kernel, j.Opts)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 || env.AreaUM2 < lo {
			lo = env.AreaUM2
		}
		if env.AreaUM2 > hi {
			hi = env.AreaUM2
		}
	}
	if hi <= lo {
		t.Fatalf("area cap has no bite: all %d points at %.0f um2", ax.Size(), lo)
	}
	cap := (lo + hi) / 2

	for _, tc := range []struct {
		name      string
		objective string
		maxArea   float64
	}{
		{"edp", "edp", 0},
		{"cycles", "cycles", 0},
		{"edp-max-area", "edp", cap},
		{"cycles-max-area", "cycles", cap},
		{"pareto-max-area", "pareto", cap},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sp := smallSpace()
			sp.Objective = tc.objective
			sp.MaxAreaUM2 = tc.maxArea

			oracle, err := BruteForce(ctx, Config{Space: sp, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(ctx, Config{Space: sp, Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			checkInvariant(t, res)

			want := FrontierCSV(sp.Kernel, oracle.Frontier)
			got := FrontierCSV(sp.Kernel, res.Frontier)
			if want != got {
				t.Fatalf("%s result differs from brute-force oracle:\noracle:\n%s\nsearch:\n%s", tc.name, want, got)
			}
			if tc.objective != "pareto" && len(res.Frontier) > 1 {
				t.Fatalf("single-objective search returned %d points", len(res.Frontier))
			}
			if len(res.Frontier) == 0 {
				t.Fatalf("%s found no feasible point (cap %.0f um2)", tc.name, tc.maxArea)
			}
			if res.Evaluated >= res.Points {
				t.Fatalf("search evaluated %d of %d points: no better than sweeping", res.Evaluated, res.Points)
			}
			if tc.maxArea > 0 {
				for _, p := range res.Frontier {
					if p.Vec.AreaUM2 > tc.maxArea {
						t.Fatalf("result area %.0f exceeds the %.0f um2 cap", p.Vec.AreaUM2, tc.maxArea)
					}
				}
			}
		})
	}
}

// TestSearchEDPDeterministic pins the EDP objective's worker independence.
func TestSearchEDPDeterministic(t *testing.T) {
	sp := smallSpace()
	sp.Objective = "edp"
	var csvs []string
	for _, workers := range []int{1, 8} {
		res, err := Run(context.Background(), Config{Space: sp, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		checkInvariant(t, res)
		csvs = append(csvs, FrontierCSV(sp.Kernel, res.Frontier))
	}
	if csvs[0] != csvs[1] {
		t.Fatalf("EDP winner depends on worker count:\n-jobs 1:\n%s\n-jobs 8:\n%s", csvs[0], csvs[1])
	}
}

func TestFrontierCSVShape(t *testing.T) {
	res, err := Run(context.Background(), Config{Space: campaign.Space{Kernel: "gemm"}})
	if err != nil {
		t.Fatal(err)
	}
	csv := FrontierCSV("gemm", res.Frontier)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if lines[0] != "kernel,memory,fu_limit,ports,banks,index,cycles,power_mw,area_um2,energy_pj,edp" {
		t.Fatalf("bad header %q", lines[0])
	}
	if len(lines) != len(res.Frontier)+1 {
		t.Fatalf("%d rows for %d frontier points", len(lines)-1, len(res.Frontier))
	}
	if !strings.HasPrefix(lines[1], "gemm,spm,") {
		t.Fatalf("bad row %q", lines[1])
	}
}
