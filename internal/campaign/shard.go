package campaign

// Shard-by-cache-key scheduling: several processes pointed at one Store
// split a sweep with zero duplicated simulation by each claiming only the
// jobs whose content-addressed key maps to its shard index. Ownership is a
// pure function of job content and the (Index, Count) pair — no
// coordination, locks, or work-stealing — so the partition is exact and
// identical from every process, and the ordered collector's worker-count
// invariance makes the merged result byte-identical to a single-process
// run of the whole space.

// Shard names one slice of a sharded campaign: this process is shard
// Index of Count. Count <= 1 means unsharded (every job is owned).
type Shard struct {
	// Index is this process's shard number in [0, Count).
	Index int
	// Count is the total number of cooperating shards.
	Count int
}

// Valid reports whether the shard spec is well-formed.
func (s Shard) Valid() bool {
	return s.Count >= 1 && s.Index >= 0 && s.Index < s.Count
}

// Owns reports whether this shard owns the job with the given cache key.
func (s Shard) Owns(key string) bool {
	if s.Count <= 1 {
		return true
	}
	return ShardOf(key, s.Count) == s.Index
}

// ShardOf maps a content-addressed job key (the hex SHA-256 from JobKey)
// to a shard index in [0, n): the full 256-bit digest value mod n, folded
// hex digit by hex digit (Horner's rule), so every bit of the key
// participates and the mapping is stable across processes and platforms.
// Non-hex characters fold as zero, keeping the function total.
func ShardOf(key string, n int) int {
	if n <= 1 {
		return 0
	}
	mod := uint64(n)
	var v uint64
	for i := 0; i < len(key); i++ {
		var d uint64
		switch c := key[i]; {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint64(c-'A') + 10
		}
		v = (v*16 + d) % mod
	}
	return int(v)
}
