package campaign

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"

	salam "gosalam"
	"gosalam/internal/hw"
	"gosalam/internal/sim"
	"gosalam/kernels"
)

// countingRunner wraps a fake simulation and counts invocations — the
// "zero RunKernel calls on a warm cache" hook.
func countingRunner(calls *atomic.Int32) Runner {
	return func(_ context.Context, _ *kernels.Kernel, opts salam.RunOpts) (*salam.Result, error) {
		calls.Add(1)
		return &salam.Result{
			Cycles: uint64(100 + opts.Accel.ReadPorts),
			Ticks:  sim.Tick(1000 * opts.Accel.ReadPorts),
		}, nil
	}
}

func cacheSweep(k *kernels.Kernel) []Job {
	var jobs []Job
	for _, port := range []int{2, 4, 8} {
		opts := salam.DefaultRunOpts()
		opts.Accel.ReadPorts = port
		opts.Accel.WritePorts = port
		jobs = append(jobs, Job{
			ID:        fmt.Sprintf("p=%d", port),
			Kernel:    k,
			KernelKey: "gemm/n=8",
			Opts:      opts,
		})
	}
	return jobs
}

// TestCacheRoundTrip: the second run of an identical sweep performs zero
// simulations; editing one knob re-simulates only that point.
func TestCacheRoundTrip(t *testing.T) {
	cache, err := OpenCache(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	k := kernels.GEMM(8, 1)
	var calls atomic.Int32
	cfg := Config{Workers: 2, Cache: cache, Runner: countingRunner(&calls)}

	first := Run(context.Background(), cfg, cacheSweep(k))
	if err := FirstError(first); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("cold run simulated %d jobs, want 3", got)
	}
	if n, err := cache.Len(); err != nil || n != 3 {
		t.Fatalf("cache has %d entries (err %v), want 3", n, err)
	}

	// Warm run, fresh Cache handle (no in-memory memo): zero simulations.
	cache2, err := OpenCache(cache.Dir())
	if err != nil {
		t.Fatal(err)
	}
	calls.Store(0)
	cfg.Cache = cache2
	second := Run(context.Background(), cfg, cacheSweep(k))
	if err := FirstError(second); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 0 {
		t.Fatalf("warm run simulated %d jobs, want 0", got)
	}
	for i := range second {
		if !second[i].Cached {
			t.Fatalf("warm job %d not served from cache", i)
		}
		if !reflect.DeepEqual(second[i].Metrics, first[i].Metrics) {
			t.Fatalf("job %d metrics changed across cache round-trip:\nfirst  %+v\nsecond %+v",
				i, first[i].Metrics, second[i].Metrics)
		}
	}

	// Edit one knob: only the changed point re-simulates.
	edited := cacheSweep(k)
	edited[1].Opts.SPMLatency = 5
	calls.Store(0)
	third := Run(context.Background(), cfg, edited)
	if err := FirstError(third); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("edited run simulated %d jobs, want 1", got)
	}
	if third[0].Cached != true || third[1].Cached != false || third[2].Cached != true {
		t.Fatalf("cached flags = %v,%v,%v; want true,false,true",
			third[0].Cached, third[1].Cached, third[2].Cached)
	}
}

// TestCacheRealSimulation: metrics survive the JSON round-trip exactly for
// a real simulation — floats must render identically on a warm run.
func TestCacheRealSimulation(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := kernels.GEMM(8, 1)
	job := Job{
		ID: "real", Kernel: k, KernelKey: "gemm/n=8", Opts: salam.DefaultRunOpts(),
		Probe: func(res *salam.Result) map[string]float64 {
			return map[string]float64{"stall": res.Acc.StallCycles.Value()}
		},
		ProbeKey: "test/v1",
	}
	cfg := Config{Workers: 1, Cache: cache}
	cold := Run(context.Background(), cfg, []Job{job})
	if err := FirstError(cold); err != nil {
		t.Fatal(err)
	}

	cache2, err := OpenCache(cache.Dir())
	if err != nil {
		t.Fatal(err)
	}
	cfg.Cache = cache2
	warm := Run(context.Background(), cfg, []Job{job})
	if err := FirstError(warm); err != nil {
		t.Fatal(err)
	}
	if !warm[0].Cached {
		t.Fatal("second run was not a cache hit")
	}
	if !reflect.DeepEqual(cold[0].Metrics, warm[0].Metrics) {
		t.Fatalf("metrics changed across disk round-trip:\ncold %+v\nwarm %+v",
			cold[0].Metrics, warm[0].Metrics)
	}
}

// TestJobKeyCanonical: keys ignore map insertion order but track every
// semantic knob (kernel identity, probe version, options).
func TestJobKeyCanonical(t *testing.T) {
	k := kernels.GEMM(8, 1)
	base := func() Job {
		opts := salam.DefaultRunOpts()
		opts.Accel.FULimits = map[hw.FUClass]int{hw.FUFPAdder: 4, hw.FUFPMultiplier: 8}
		return Job{Kernel: k, KernelKey: "gemm/n=8", Opts: opts}
	}
	a := base()
	b := base()
	// Same limits, reversed insertion order.
	b.Opts.Accel.FULimits = map[hw.FUClass]int{}
	b.Opts.Accel.FULimits[hw.FUFPMultiplier] = 8
	b.Opts.Accel.FULimits[hw.FUFPAdder] = 4
	ka, err := JobKey(a)
	if err != nil {
		t.Fatal(err)
	}
	kb, err := JobKey(b)
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Fatalf("map insertion order changed the key: %s vs %s", ka, kb)
	}

	for name, mutate := range map[string]func(*Job){
		"kernel":  func(j *Job) { j.KernelKey = "gemm/n=16" },
		"probe":   func(j *Job) { j.ProbeKey = "v2" },
		"ports":   func(j *Job) { j.Opts.Accel.ReadPorts++ },
		"seed":    func(j *Job) { j.Opts.Seed++ },
		"mem":     func(j *Job) { j.Opts.Mem = salam.MemCache },
		"fulimit": func(j *Job) { j.Opts.Accel.FULimits[hw.FUFPAdder] = 5 },
	} {
		j := base()
		mutate(&j)
		kj, err := JobKey(j)
		if err != nil {
			t.Fatal(err)
		}
		if kj == ka {
			t.Fatalf("changing %s did not change the key", name)
		}
	}

	// A job with neither KernelKey nor Kernel cannot be keyed.
	if _, err := JobKey(Job{}); err == nil {
		t.Fatal("JobKey accepted an unidentifiable job")
	}
	// KernelKey absent falls back to the kernel name.
	named, err := JobKey(Job{Kernel: k, Opts: salam.DefaultRunOpts()})
	if err != nil || named == "" {
		t.Fatalf("fallback keying failed: %q, %v", named, err)
	}
}

// TestCacheTruncatedAndGarbageEntries: a truncated entry (torn mid-write
// by a crashed process) and a garbage entry are both counted corrupt
// misses, both re-simulate, and both end up repaired — while a plain cold
// miss does not inflate the corrupt counter.
func TestCacheTruncatedAndGarbageEntries(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := kernels.GEMM(8, 1)
	jobs := cacheSweep(k) // 3 jobs: [0] truncated, [1] garbage, [2] absent
	key0, err := JobKey(jobs[0])
	if err != nil {
		t.Fatal(err)
	}
	key1, err := JobKey(jobs[1])
	if err != nil {
		t.Fatal(err)
	}

	// Write a valid entry, then truncate it mid-JSON — the shape a crash
	// between write and rename can never produce, but a damaged disk can.
	if err := cache.Put(key0, jobs[0], &Metrics{Cycles: 7}); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(filepath.Join(cache.Dir(), key0+".json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(cache.Dir(), key0+".json"), full[:len(full)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(cache.Dir(), key1+".json"), []byte("!!garbage!!"), 0o644); err != nil {
		t.Fatal(err)
	}

	// A fresh handle (no memo) must treat both as misses and count them.
	cache2, err := OpenCache(cache.Dir())
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int32
	out := Run(context.Background(), Config{Cache: cache2, Runner: countingRunner(&calls)}, jobs)
	if err := FirstError(out); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("damaged store re-simulated %d jobs, want 3", got)
	}
	if got := cache2.CorruptMisses(); got != 2 {
		t.Fatalf("CorruptMisses = %d, want 2 (truncated + garbage; the absent entry is a clean miss)", got)
	}

	// All three entries repaired: a third handle serves pure hits.
	cache3, err := OpenCache(cache.Dir())
	if err != nil {
		t.Fatal(err)
	}
	calls.Store(0)
	out = Run(context.Background(), Config{Cache: cache3, Runner: countingRunner(&calls)}, jobs)
	if err := FirstError(out); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 0 || cache3.CorruptMisses() != 0 {
		t.Fatalf("repaired store not clean: %d re-simulations, %d corrupt misses",
			calls.Load(), cache3.CorruptMisses())
	}
}

// TestCacheCorruptEntry: a torn or garbage entry is a miss, not an error.
func TestCacheCorruptEntry(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := kernels.GEMM(8, 1)
	job := Job{ID: "x", Kernel: k, KernelKey: "gemm/n=8", Opts: salam.DefaultRunOpts()}
	key, err := JobKey(job)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(cache.Dir(), key+".json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := cache.Get(key); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	var calls atomic.Int32
	out := Run(context.Background(), Config{Cache: cache, Runner: countingRunner(&calls)}, []Job{job})
	if err := FirstError(out); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 1 {
		t.Fatalf("corrupt entry should force a re-simulation; calls = %d", calls.Load())
	}
	// The re-simulation repaired the entry.
	if _, ok := cache.Get(key); !ok {
		t.Fatal("entry not rewritten after corruption")
	}
}
