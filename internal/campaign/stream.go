package campaign

// OrderedStream is a Reporter adapter that re-sequences completion-order
// JobDone events into submission order: Emit sees outcome 0, then 1, then
// 2, ... exactly once each, with out-of-order completions buffered until
// their predecessors land. It is how salam-serve streams a live campaign
// as NDJSON whose bytes are identical at any worker count — the streaming
// analogue of the guarantee Run's outcome slice already gives batch
// callers. All Reporter methods except Warn run on the single collector
// goroutine, so the sequencer needs no locking; Emit must do its own if it
// shares state with other goroutines (the server's row buffer does).
type OrderedStream struct {
	// Emit receives outcomes in submission order (never nil).
	Emit func(Outcome)
	// Inner, when non-nil, observes the raw completion-order events too
	// (progress lines, logs).
	Inner Reporter

	next int
	buf  map[int]Outcome
}

// NewOrderedStream wraps emit (required) and an optional inner reporter.
func NewOrderedStream(emit func(Outcome), inner Reporter) *OrderedStream {
	return &OrderedStream{Emit: emit, Inner: inner}
}

// Start implements Reporter.
func (s *OrderedStream) Start(total int) {
	s.next = 0
	s.buf = make(map[int]Outcome)
	if s.Inner != nil {
		s.Inner.Start(total)
	}
}

// JobDone implements Reporter: buffer the outcome, then release the
// longest contiguous prefix.
func (s *OrderedStream) JobDone(o Outcome, done, total int) {
	if s.buf == nil {
		s.buf = make(map[int]Outcome)
	}
	s.buf[o.Index] = o
	for {
		out, ok := s.buf[s.next]
		if !ok {
			break
		}
		delete(s.buf, s.next)
		s.next++
		s.Emit(out)
	}
	if s.Inner != nil {
		s.Inner.JobDone(o, done, total)
	}
}

// Warn implements Reporter (may be called from worker goroutines).
func (s *OrderedStream) Warn(msg string) {
	if s.Inner != nil {
		s.Inner.Warn(msg)
	}
}

// Finish implements Reporter.
func (s *OrderedStream) Finish() {
	if s.Inner != nil {
		s.Inner.Finish()
	}
}
