package campaign

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	salam "gosalam"
	"gosalam/kernels"
)

// concurrentSweep is a small real-simulation sweep (3 points).
func concurrentSweep(k *kernels.Kernel) []Job {
	var jobs []Job
	for _, port := range []int{2, 4, 8} {
		opts := salam.DefaultRunOpts()
		opts.Accel.ReadPorts = port
		opts.Accel.WritePorts = port
		opts.Accel.MaxOutstanding = 2 * port
		opts.SPMPortsPer = port
		jobs = append(jobs, Job{
			ID:        fmt.Sprintf("gemm p=%d", port),
			Kernel:    k,
			KernelKey: "gemm/n=8",
			Opts:      opts,
		})
	}
	return jobs
}

// TestConcurrentCampaignsShareCacheAndPool: several campaign.Run
// invocations running at once — the salam-serve serving pattern — may
// share one cache directory and one SessionPool. Under -race (the Makefile
// race target covers this package) this doubles as the data-race proof for
// the shared store memo, the pool free lists, and the elaboration cache;
// here it asserts every campaign's metrics match a serial reference run
// bit for bit.
func TestConcurrentCampaignsShareCacheAndPool(t *testing.T) {
	k := kernels.GEMM(8, 1)
	jobs := concurrentSweep(k)

	// Serial reference, no cache, cold pool.
	ref := Run(context.Background(), Config{Workers: 1, Sessions: salam.NewSessionPool()}, jobs)
	if err := FirstError(ref); err != nil {
		t.Fatal(err)
	}

	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	pool := salam.NewSessionPool()
	const campaigns = 4
	results := make([][]Outcome, campaigns)
	var wg sync.WaitGroup
	for c := 0; c < campaigns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			results[c] = Run(context.Background(), Config{
				Workers:  2,
				Cache:    cache,
				Sessions: pool,
			}, concurrentSweep(k))
		}(c)
	}
	wg.Wait()

	for c, out := range results {
		if err := FirstError(out); err != nil {
			t.Fatalf("campaign %d: %v", c, err)
		}
		for i, o := range out {
			if !reflect.DeepEqual(o.Metrics, ref[i].Metrics) {
				t.Fatalf("campaign %d point %d diverged from serial reference:\nconcurrent %+v\nreference  %+v",
					c, i, o.Metrics, ref[i].Metrics)
			}
		}
	}
	if n, err := cache.Len(); err != nil || n != len(jobs) {
		t.Fatalf("shared cache holds %d entries (err %v), want %d", n, err, len(jobs))
	}
	if reused, created := pool.Stats(); reused+created == 0 {
		t.Fatal("shared session pool was never used")
	}
}
