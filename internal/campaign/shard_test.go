package campaign

import (
	"bytes"
	"context"
	"fmt"
	"sync/atomic"
	"testing"

	salam "gosalam"
	"gosalam/kernels"
)

// shardSweep builds a deterministic 12-point fake sweep.
func shardSweep(k *kernels.Kernel) []Job {
	var jobs []Job
	for _, port := range []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12} {
		opts := salam.DefaultRunOpts()
		opts.Accel.ReadPorts = port
		opts.Accel.WritePorts = port
		jobs = append(jobs, Job{
			ID:        fmt.Sprintf("p=%d", port),
			Kernel:    k,
			KernelKey: "gemm/n=8",
			Opts:      opts,
		})
	}
	return jobs
}

// TestShardOfStable: the key->shard mapping is a pure function with sane
// range behavior.
func TestShardOfStable(t *testing.T) {
	keys := []string{
		"0000000000000000000000000000000000000000000000000000000000000000",
		"ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff",
		"deadbeefcafef00ddeadbeefcafef00ddeadbeefcafef00ddeadbeefcafef00d",
	}
	for _, key := range keys {
		for _, n := range []int{1, 2, 3, 5, 7, 16} {
			got := ShardOf(key, n)
			if got < 0 || got >= n {
				t.Fatalf("ShardOf(%q, %d) = %d out of range", key, n, got)
			}
			if got != ShardOf(key, n) {
				t.Fatalf("ShardOf(%q, %d) unstable", key, n)
			}
		}
	}
	if ShardOf(keys[0], 7) != 0 {
		t.Fatalf("all-zero key must map to shard 0")
	}
	// ffff...ff mod 2 == 1 (odd value).
	if ShardOf(keys[1], 2) != 1 {
		t.Fatalf("all-f key mod 2 must be 1")
	}
}

// TestShardPartitionExact: across n shards, every job is owned by exactly
// one shard, the owned sets are disjoint, each shard simulates only its
// own jobs, and the union covers the sweep.
func TestShardPartitionExact(t *testing.T) {
	k := kernels.GEMM(8, 1)
	jobs := shardSweep(k)
	const n = 3
	owned := make([]int, len(jobs))
	for i, j := range jobs {
		key, err := JobKey(j)
		if err != nil {
			t.Fatal(err)
		}
		owned[i] = ShardOf(key, n)
	}

	simulatedBy := make([][]bool, n)
	for shard := 0; shard < n; shard++ {
		simulated := make([]bool, len(jobs))
		runner := func(_ context.Context, _ *kernels.Kernel, opts salam.RunOpts) (*salam.Result, error) {
			simulated[opts.Accel.ReadPorts-1] = true
			return &salam.Result{Cycles: uint64(100 + opts.Accel.ReadPorts)}, nil
		}
		out := Run(context.Background(), Config{
			Workers: 2,
			Runner:  runner,
			Shard:   &Shard{Index: shard, Count: n},
		}, jobs)
		for i, o := range out {
			wantOwned := owned[i] == shard
			if o.Skipped == wantOwned {
				t.Fatalf("shard %d job %d: Skipped=%v, owned=%v", shard, i, o.Skipped, wantOwned)
			}
			if wantOwned && (o.Err != nil || o.Metrics == nil) {
				t.Fatalf("shard %d owned job %d did not run: %+v", shard, i, o)
			}
			if !wantOwned && o.Metrics != nil {
				t.Fatalf("shard %d foreign job %d has metrics", shard, i)
			}
		}
		simulatedBy[shard] = simulated
	}
	for i := range jobs {
		count := 0
		for shard := 0; shard < n; shard++ {
			if simulatedBy[shard][i] {
				count++
			}
		}
		if count != 1 {
			t.Fatalf("job %d simulated by %d shards, want exactly 1", i, count)
		}
	}
}

// TestShardMergeByteIdentical: two shards sharing one store, merged
// through MergeRows, render byte-identical NDJSON to an unsharded run of
// the same sweep — the property that makes sharded campaigns assemble
// deterministically.
func TestShardMergeByteIdentical(t *testing.T) {
	k := kernels.GEMM(8, 1)
	jobs := shardSweep(k)
	var calls atomic.Int32
	runner := countingRunner(&calls)

	// Reference: unsharded, storeless run.
	ref := Run(context.Background(), Config{Workers: 3, Runner: runner}, jobs)
	if err := FirstError(ref); err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := WriteRows(&want, Rows(ref)); err != nil {
		t.Fatal(err)
	}

	store, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	calls.Store(0)
	for shard := 0; shard < 2; shard++ {
		out := Run(context.Background(), Config{
			Workers: 2,
			Runner:  runner,
			Cache:   store,
			Shard:   &Shard{Index: shard, Count: 2},
		}, jobs)
		for _, o := range out {
			if o.Err != nil {
				t.Fatalf("shard %d: %v", shard, o.Err)
			}
		}
	}
	if got := int(calls.Load()); got != len(jobs) {
		t.Fatalf("two shards simulated %d jobs total, want %d (zero duplication)", got, len(jobs))
	}

	merged, err := MergeRows(jobs, store)
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := WriteRows(&got, merged); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("merged rows differ from unsharded run:\nmerged:\n%s\nunsharded:\n%s", got.String(), want.String())
	}
}

// TestShardPruneSharedPilot: Shard and Prune compose. The pilot is a pure
// function of the full job list, so every shard prunes against the same
// pilot measurement; stitching each job's row from the shard that owns it
// reproduces the unsharded pruned sweep byte for byte (pruned rows, bounds,
// and surviving metrics all included). This is the regression test for the
// old behaviour where each shard elected a pilot from its own subset and
// pruned less than a local run.
func TestShardPruneSharedPilot(t *testing.T) {
	jobs := gemmTreeSweep()
	ref := Run(context.Background(), Config{Workers: 4, Prune: StaticPrune}, jobs)
	want := renderPrunedCSV(t, ref)
	nPruned := 0
	for _, o := range ref {
		if o.Pruned {
			nPruned++
		}
	}
	if nPruned == 0 {
		t.Fatal("reference sweep pruned nothing; the test premise is gone")
	}

	const n = 2
	pilot := -1
	var pilotLB uint64
	owner := make([]int, len(jobs))
	for i, j := range jobs {
		key, err := JobKey(j)
		if err != nil {
			t.Fatal(err)
		}
		owner[i] = ShardOf(key, n)
		if lb, ok := StaticPrune(j); ok && (pilot < 0 || lb < pilotLB) {
			pilot, pilotLB = i, lb
		}
	}

	store, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	combined := make([]Outcome, len(jobs))
	for shard := 0; shard < n; shard++ {
		out := Run(context.Background(), Config{
			Workers: 2,
			Cache:   store,
			Prune:   StaticPrune,
			Shard:   &Shard{Index: shard, Count: n},
		}, jobs)
		foreignPruned := 0
		for i, o := range out {
			if owner[i] == shard {
				if o.Skipped {
					t.Fatalf("shard %d skipped its own job %d", shard, i)
				}
				combined[i] = o
			} else if !o.Skipped {
				t.Fatalf("shard %d resolved foreign job %d as %+v, want Skipped", shard, i, o)
			}
			if o.Pruned && owner[pilot] != shard {
				foreignPruned++
			}
		}
		if owner[pilot] != shard && foreignPruned == 0 && nPruned > 1 {
			// The shard without the pilot still pruned nothing only if it
			// owns no prunable job; with this sweep's distribution it does.
			for i, o := range ref {
				if o.Pruned && owner[i] == shard {
					t.Fatalf("shard %d owns prunable job %d but pruned nothing: pilot not shared", shard, i)
				}
			}
		}
	}
	if got := renderPrunedCSV(t, combined); got != want {
		t.Fatalf("sharded union differs from unsharded pruned sweep:\n--- sharded\n%s--- unsharded\n%s", got, want)
	}
}

// TestMergeRowsMissing: a merge over an incomplete store reports the holes
// as status "missing" instead of inventing data.
func TestMergeRowsMissing(t *testing.T) {
	k := kernels.GEMM(8, 1)
	jobs := shardSweep(k)[:3]
	store, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Persist only job 1.
	key, err := JobKey(jobs[1])
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Put(key, jobs[1], &Metrics{Cycles: 42}); err != nil {
		t.Fatal(err)
	}
	rows, err := MergeRows(jobs, store)
	if err != nil {
		t.Fatal(err)
	}
	wantStatus := []string{StatusMissing, StatusOK, StatusMissing}
	for i, r := range rows {
		if r.Status != wantStatus[i] {
			t.Fatalf("row %d status %q, want %q", i, r.Status, wantStatus[i])
		}
	}
	if rows[1].Metrics == nil || rows[1].Metrics.Cycles != 42 {
		t.Fatalf("row 1 metrics lost: %+v", rows[1])
	}
}
