package campaign

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	salam "gosalam"
	"gosalam/internal/sim"
	"gosalam/kernels"
)

// seedJobs builds jobs whose injected runner reports Opts.Seed as the
// cycle count, so dynamic results are scripted exactly.
func seedJobs(cycles ...uint64) []Job {
	k := kernels.GEMM(8, 1)
	jobs := make([]Job, len(cycles))
	for i, c := range cycles {
		jobs[i] = Job{ID: fmt.Sprintf("j%d", i), Kernel: k, Opts: salam.RunOpts{Seed: int64(c)}}
	}
	return jobs
}

func seedRunner(ran *atomic.Int32) Runner {
	return func(_ context.Context, _ *kernels.Kernel, opts salam.RunOpts) (*salam.Result, error) {
		if ran != nil {
			ran.Add(1)
		}
		return fakeResult(uint64(opts.Seed)), nil
	}
}

// TestPruneSkipsOnlyDominatedPoints scripts bounds and dynamics directly:
// the minimum-bound job is the pilot, every job whose bound exceeds the
// pilot's measurement is skipped without running, bound-below-pilot and
// unknown-bound jobs still run, and the stats counter records the skips.
func TestPruneSkipsOnlyDominatedPoints(t *testing.T) {
	// dynamics:         120  80   300  500  90   130(no bound)
	jobs := seedJobs(120, 80, 300, 500, 90, 130)
	lbs := map[string]uint64{"j0": 100, "j1": 60, "j2": 250, "j3": 450, "j4": 70}
	var ran atomic.Int32
	stats := sim.NewGroup("test")
	out := Run(context.Background(), Config{
		Workers: 4,
		Stats:   stats,
		Runner:  seedRunner(&ran),
		Prune: func(j Job) (uint64, bool) {
			lb, ok := lbs[j.ID]
			return lb, ok
		},
	}, jobs)

	// Pilot is j1 (bound 60), measuring 80. Bounds above 80: j0, j2, j3.
	wantPruned := map[int]bool{0: true, 2: true, 3: true}
	for i, o := range out {
		if o.Pruned != wantPruned[i] {
			t.Errorf("job %d pruned = %v, want %v", i, o.Pruned, wantPruned[i])
		}
		if o.Pruned {
			if o.Metrics != nil || o.Err != nil {
				t.Errorf("pruned job %d has metrics/err: %+v", i, o)
			}
			if o.StaticLB != lbs[o.Job.ID] {
				t.Errorf("pruned job %d StaticLB = %d, want %d", i, o.StaticLB, lbs[o.Job.ID])
			}
		} else if o.Err != nil || o.Metrics == nil {
			t.Errorf("surviving job %d did not run cleanly: %+v", i, o)
		}
	}
	if got := ran.Load(); got != 3 { // pilot j1 + surviving j4 + unbounded j5
		t.Errorf("simulations ran = %d, want 3", got)
	}
	if v, ok := stats.Lookup("test.campaign.points_pruned"); !ok || v != 3 {
		t.Errorf("points_pruned = %v, want 3", v)
	}
	if v, ok := stats.Lookup("test.campaign.jobs_ok"); !ok || v != 3 {
		t.Errorf("jobs_ok = %v, want 3", v)
	}
}

// TestPrunePilotFailureDisablesPruning: if the pilot errors there is no
// trusted measurement, so every job must run.
func TestPrunePilotFailureDisablesPruning(t *testing.T) {
	jobs := seedJobs(120, 80, 300)
	out := Run(context.Background(), Config{
		Workers: 2,
		Runner: func(_ context.Context, _ *kernels.Kernel, opts salam.RunOpts) (*salam.Result, error) {
			if opts.Seed == 80 { // the pilot (smallest bound below)
				return nil, errors.New("pilot exploded")
			}
			return fakeResult(uint64(opts.Seed)), nil
		},
		Prune: func(j Job) (uint64, bool) {
			return map[string]uint64{"j0": 100, "j1": 60, "j2": 250}[j.ID], true
		},
	}, jobs)
	for i, o := range out {
		if o.Pruned {
			t.Errorf("job %d pruned after pilot failure", i)
		}
	}
	if out[1].Err == nil || out[0].Err != nil || out[2].Err != nil {
		t.Errorf("unexpected error pattern: %v / %v / %v", out[0].Err, out[1].Err, out[2].Err)
	}
}

// renderPrunedCSV mirrors cmd/salam-dse's row rendering including pruned
// rows, so the determinism assertion covers the user-visible bytes.
func renderPrunedCSV(t *testing.T, outcomes []Outcome) string {
	t.Helper()
	var sb strings.Builder
	for _, o := range outcomes {
		if o.Err != nil {
			t.Fatalf("job %d (%s): %v", o.Index, o.Job.ID, o.Err)
		}
		if o.Pruned {
			fmt.Fprintf(&sb, "%s,pruned,%d\n", o.Job.ID, o.StaticLB)
			continue
		}
		fmt.Fprintf(&sb, "%s,%d,%d,%.3f\n", o.Job.ID, o.Metrics.Cycles, o.StaticLB, o.Metrics.Power.TotalMW())
	}
	return sb.String()
}

// gemmTreeSweep is a real sweep wide enough that StaticPrune provably
// eliminates points (1-port configs are port-bound far above the fast
// pilot's measurement).
func gemmTreeSweep() []Job {
	k := kernels.GEMMTree(8)
	var jobs []Job
	for _, fu := range []int{1, 4} {
		for _, port := range []int{1, 2, 8} {
			opts := salam.DefaultRunOpts()
			opts.Accel.ReadPorts = port
			opts.Accel.WritePorts = port
			opts.Accel.MaxOutstanding = 2 * port
			opts.SPMPortsPer = port
			opts.Accel.FULimits = map[salam.FUClass]int{
				salam.FUFPAdder: fu, salam.FUFPMultiplier: fu,
			}
			jobs = append(jobs, Job{
				ID:        fmt.Sprintf("gt fu=%d p=%d", fu, port),
				Kernel:    k,
				KernelKey: "gemm_tree/n=8",
				Opts:      opts,
			})
		}
	}
	return jobs
}

// TestStaticPrunePreservesBestPoint runs the real GEMMTree sweep pruned
// and unpruned: pruning must actually fire, every surviving point's
// metrics must match the unpruned run bit for bit, every pruned point must
// be provably worse than the unpruned best, and the pruned sweep must be
// byte-identical across worker counts.
func TestStaticPrunePreservesBestPoint(t *testing.T) {
	full := Run(context.Background(), Config{Workers: 4}, gemmTreeSweep())
	if err := FirstError(full); err != nil {
		t.Fatal(err)
	}
	pruned1 := Run(context.Background(), Config{Workers: 1, Prune: StaticPrune}, gemmTreeSweep())
	pruned8 := Run(context.Background(), Config{Workers: 8, Prune: StaticPrune}, gemmTreeSweep())

	if got1, got8 := renderPrunedCSV(t, pruned1), renderPrunedCSV(t, pruned8); got1 != got8 {
		t.Fatalf("pruned sweep differs across worker counts:\n--- w=1\n%s--- w=8\n%s", got1, got8)
	}

	bestFull := full[0].Metrics.Cycles
	for _, o := range full {
		if o.Metrics.Cycles < bestFull {
			bestFull = o.Metrics.Cycles
		}
	}
	nPruned := 0
	for i, o := range pruned1 {
		if o.Pruned {
			nPruned++
			if o.StaticLB <= bestFull {
				t.Errorf("job %d pruned with bound %d <= unpruned best %d: best point lost",
					i, o.StaticLB, bestFull)
			}
			continue
		}
		if o.Metrics.Cycles != full[i].Metrics.Cycles || o.Metrics.Power != full[i].Metrics.Power {
			t.Errorf("job %d surviving metrics differ from unpruned run", i)
		}
	}
	if nPruned == 0 {
		t.Fatal("StaticPrune eliminated nothing on the GEMMTree sweep; the benchmark premise is gone")
	}
	bestPruned := uint64(0)
	for _, o := range pruned1 {
		if !o.Pruned && (bestPruned == 0 || o.Metrics.Cycles < bestPruned) {
			bestPruned = o.Metrics.Cycles
		}
	}
	if bestPruned != bestFull {
		t.Errorf("pruned best %d != unpruned best %d", bestPruned, bestFull)
	}
}
