// Package campaign runs many independent accelerator simulations as one
// batch: the paper's design-space-exploration workflow (Sec. IV-D,
// Figs. 13-15) is a sweep of hundreds of deterministic single-accelerator
// runs, and this package owns "run many simulations" as a first-class
// concern the way a serving stack owns a job queue.
//
// The engine is a fixed worker pool draining a job queue. Results flow
// through a channel into an ordered collector, so Run always returns
// outcomes in submission order regardless of completion order — a parallel
// sweep renders byte-identical CSV to a serial one. Each job is fault
// isolated: a panicking simulation becomes that job's error (not a crashed
// campaign), and a per-job timeout cancels a runaway via context without
// sinking its siblings. An optional content-addressed cache persists each
// job's metrics as JSON keyed by the hash of the kernel identity and run
// options, so re-running a sweep after editing one knob only simulates the
// changed points.
package campaign

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	salam "gosalam"
	"gosalam/internal/sim"
	"gosalam/internal/timeline"
	"gosalam/kernels"
)

// Job is one simulation in a campaign.
type Job struct {
	// ID is a human-readable label for progress lines ("fig13 spm fu=4 p=8").
	ID string
	// Kernel is the accelerator workload to simulate.
	Kernel *kernels.Kernel
	// KernelKey identifies the kernel's construction for cache keying
	// (name plus size/preset, e.g. "gemm_tree/n=8"). Two jobs with equal
	// KernelKey and equal Opts must be the same simulation. Empty falls
	// back to Kernel.Name, which is only safe when the name pins the size.
	KernelKey string
	// Opts configures the run; part of the cache key.
	Opts salam.RunOpts
	// Timeout overrides Config.Timeout for this job (0 = inherit).
	Timeout time.Duration
	// Probe extracts derived metrics from a live result (occupancies,
	// stall fractions, ...) into Metrics.Extra so they survive caching.
	// It runs on the worker goroutine right after a successful simulation.
	Probe func(*salam.Result) map[string]float64
	// ProbeKey versions the Probe computation in the cache key; bump it
	// when the probe's meaning changes so stale extras are not replayed.
	ProbeKey string
}

// Metrics is the JSON-serializable projection of a run that the cache
// stores and every sweep consumer reads: core timing/power plus the job
// probe's derived values.
type Metrics struct {
	Cycles uint64            `json:"cycles"`
	Ticks  sim.Tick          `json:"ticks"`
	Power  salam.PowerReport `json:"power"`
	// Extra holds the job Probe's derived metrics (may be nil).
	Extra map[string]float64 `json:"extra,omitempty"`
	// Estimated marks Cycles as an interval-sampling extrapolation
	// (RunOpts.Sample) with the given relative ErrorBound. Estimated
	// metrics never anchor pruning or best-point election: both rely on
	// exact cycle comparisons.
	Estimated  bool    `json:"estimated,omitempty"`
	ErrorBound float64 `json:"error_bound,omitempty"`
}

// Outcome is one job's result, delivered in submission order.
type Outcome struct {
	// Index is the job's position in the submitted slice.
	Index int
	// Job echoes the spec that produced this outcome.
	Job Job
	// Metrics is non-nil on success (fresh or cached).
	Metrics *Metrics
	// Result is the live simulation result; nil on error, on a cache hit,
	// and under warm-start reuse (the default), where the live result
	// aliases a pooled system the next job will rewind — consume live
	// state through Job.Probe, or set Config.ColdStart to keep Results.
	Result *salam.Result
	// Err is non-nil when the job failed (simulation error, panic, or
	// timeout); sibling jobs are unaffected.
	Err error
	// Cached marks a cache hit (no simulation ran).
	Cached bool
	// Skipped marks a job this process did not own under Config.Shard:
	// another shard pointed at the same Store simulates it. No simulation
	// ran and Metrics is nil; MergeRows (or salam-serve -merge) reassembles
	// the full sweep from the shared store afterwards.
	Skipped bool
	// Pruned marks a job skipped by static lower-bound pruning: its
	// provable cycle bound already exceeded a measured sibling, so its
	// dynamic result could not have been the best point. No simulation
	// ran and Metrics is nil.
	Pruned bool
	// StaticLB is the provable cycle-count lower bound Config.Prune
	// reported for this job (0 when pruning is off or no bound exists).
	StaticLB uint64
	// Wall is the job's wall-clock time on the worker.
	Wall time.Duration
}

// ErrDrained marks a job that was never handed to a worker because
// Config.Drain closed first — the caller shed it gracefully rather than
// failing it. Resubmitting the same job later is always safe.
var ErrDrained = errors.New("campaign: drained before this job started")

// PanicError wraps a panic recovered from a simulation so one crashed job
// cannot sink the campaign.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("simulation panicked: %v", e.Value)
}

// Runner simulates one job; the default wraps salam.RunKernelCtx.
// Tests inject counting, panicking, or slow runners through Config.Runner.
type Runner func(ctx context.Context, k *kernels.Kernel, opts salam.RunOpts) (*salam.Result, error)

// Config parameterizes a campaign.
type Config struct {
	// Workers sizes the pool (<=0 means GOMAXPROCS).
	Workers int
	// Timeout is the default per-job timeout (0 = none).
	Timeout time.Duration
	// Cache enables content-addressed result caching (nil = off). The
	// standard backend is the filesystem Cache (OpenCache), whose atomic
	// writes make one directory safe to share across processes.
	Cache Store
	// Progress receives per-job completion events from the collector
	// goroutine (nil = silent). Events arrive in completion order.
	Progress Reporter
	// Stats, when non-nil, gets a "campaign" child group with job
	// counters wired into the existing sim stats framework.
	Stats *sim.Group
	// Runner overrides the simulation function (nil = warm-start pooled
	// sessions, or salam.RunKernelCtx when ColdStart is set).
	Runner Runner
	// ColdStart disables warm-start session reuse for the default runner:
	// every job builds its system from scratch (the pre-reuse behaviour)
	// and Outcome.Result stays populated.
	ColdStart bool
	// Sessions, when non-nil, is the session pool warm-started jobs draw
	// from. Share one pool across campaigns to start later sweeps warm;
	// nil creates a pool scoped to the Run call. Ignored with ColdStart
	// or a custom Runner.
	Sessions *salam.SessionPool
	// TraceBest, when non-empty, re-runs the sweep's best design point —
	// lowest cycle count among successful outcomes, earliest index on ties
	// — after the campaign with timeline tracing attached, and writes the
	// Perfetto-loadable trace_event JSON to this path. The re-run is a cold
	// one-shot (pooled sessions are untouched) and, because tracing is
	// observer-effect-free, reproduces the sweep's metrics exactly. A trace
	// failure degrades to a Progress warning, not a campaign error.
	TraceBest string
	// Shard, when non-nil, restricts this Run to the jobs it owns: a job
	// is simulated only when its content-addressed key (JobKey) maps to
	// Shard.Index under ShardOf; every other job resolves immediately with
	// Outcome.Skipped set. Ownership is a pure function of job content and
	// (Index, Count), so n processes configured as shards 0..n-1 over one
	// job list partition it exactly — zero duplicated simulation — and a
	// shared Store plus MergeRows reassembles the full sweep byte-
	// identically. Combined with Prune, the pilot is elected over the FULL
	// job list (a pure function of job content), so every shard prunes
	// against the same measurement and the union of owned rows stays
	// byte-identical to an unsharded pruned run; a shard that does not own
	// the pilot still simulates it once for the measurement (a cache hit
	// when another shard persisted it first), which is the one permitted
	// duplication.
	Shard *Shard
	// Drain, when non-nil, is a soft stop: once it is closed, jobs not yet
	// handed to a worker resolve with ErrDrained while in-flight jobs run
	// to completion (and persist to the cache) — the graceful-shutdown
	// half of the ctx story, which by contrast cancels in-flight work too.
	Drain <-chan struct{}
	// Prune, when non-nil, maps a job to a provable lower bound on its
	// simulated cycle count (ok=false when no bound is available; such
	// jobs always run). Before the pool starts, the job with the smallest
	// bound runs first — the pilot — and every job whose bound strictly
	// exceeds the pilot's measured cycles is skipped with Outcome.Pruned
	// set: its dynamic result is provably worse than an already-measured
	// point, so the sweep's best point is unchanged. The pilot choice and
	// the pruned set depend only on the bounds and the deterministic
	// pilot result, never on worker scheduling, so pruned sweeps render
	// byte-identical output at any worker count. StaticPrune is the
	// standard hook.
	Prune func(Job) (lb uint64, ok bool)
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// jobRunner executes one job and its probe as a unit. The probe runs at a
// point where the Result's pooled aliases are still safe to read — for the
// warm path that means while the session is held, before it returns to the
// pool (a probe that ran after release raced the next job's warm-start
// state rewind on the same session).
type jobRunner func(ctx context.Context, job Job) (res *salam.Result, extra map[string]float64, err error)

// probeAfter runs the probe once the runner returned — correct for cold
// and custom runners, whose Results alias nothing shared.
func probeAfter(run Runner) jobRunner {
	return func(ctx context.Context, job Job) (*salam.Result, map[string]float64, error) {
		res, err := run(ctx, job.Kernel, job.Opts)
		if err != nil || job.Probe == nil {
			return res, nil, err
		}
		return res, job.Probe(res), nil
	}
}

// runner resolves the effective simulation function. The default is
// warm-start reuse through a session pool: each job runs in a pooled
// system whose static CDFG comes from the shared elaboration cache and
// whose dynamic state is rewound between design points. The returned pool
// is non-nil only when warm start is active (for reuse stats); transient
// reports whether live Results alias pooled state and must not escape.
func (c Config) runner() (run jobRunner, pool *salam.SessionPool, transient bool) {
	if c.Runner != nil {
		return probeAfter(c.Runner), nil, false
	}
	if c.ColdStart {
		return probeAfter(func(ctx context.Context, k *kernels.Kernel, opts salam.RunOpts) (*salam.Result, error) {
			return salam.RunKernelCtx(ctx, k, opts)
		}), nil, false
	}
	pool = c.Sessions
	if pool == nil {
		pool = salam.NewSessionPool()
	}
	return func(ctx context.Context, job Job) (*salam.Result, map[string]float64, error) {
		var extra map[string]float64
		res, err := pool.RunCtxWith(ctx, job.Kernel, job.Opts, func(r *salam.Result) {
			if job.Probe != nil {
				extra = job.Probe(r)
			}
		})
		return res, extra, err
	}, pool, true
}

// counters is the campaign-level stat group (updated only on the
// collector goroutine, so plain sim scalars are safe).
type counters struct {
	total, ok, failed, cached *sim.Scalar
	reused, built             *sim.Scalar
	pruned, skipped           *sim.Scalar
	simulated                 *sim.Scalar
	wallMS                    *sim.Distribution
}

func newCounters(root *sim.Group) *counters {
	if root == nil {
		return nil
	}
	g := root.Child("campaign")
	return &counters{
		total:     g.Scalar("jobs", "jobs submitted"),
		ok:        g.Scalar("jobs_ok", "jobs completed successfully"),
		failed:    g.Scalar("jobs_failed", "jobs that errored, panicked, or timed out"),
		cached:    g.Scalar("jobs_cached", "jobs served from the result cache"),
		reused:    g.Scalar("sessions_reused", "warm-start runs on a pooled system"),
		built:     g.Scalar("sessions_built", "runs that had to build a system"),
		pruned:    g.Scalar("points_pruned", "design points skipped by static lower-bound pruning"),
		skipped:   g.Scalar("points_skipped", "design points owned by another shard"),
		simulated: g.Scalar("jobs_simulated", "jobs that actually ran a simulation (not cached, pruned, or skipped)"),
		wallMS:    g.Distribution("job_wall_ms", "per-job wall-clock (ms)"),
	}
}

func (c *counters) observe(o Outcome) {
	if c == nil {
		return
	}
	switch {
	case o.Pruned:
		c.pruned.Inc(1)
		return // no simulation ran: neither ok nor failed, no wall sample
	case o.Skipped:
		c.skipped.Inc(1)
		return // another shard's job: nothing ran here
	case o.Err != nil:
		c.failed.Inc(1)
	case o.Cached:
		c.cached.Inc(1)
		c.ok.Inc(1)
	default:
		c.ok.Inc(1)
		c.simulated.Inc(1)
	}
	c.wallMS.Sample(float64(o.Wall) / float64(time.Millisecond))
}

// Run executes jobs on the worker pool and returns their outcomes in
// submission order. Run never returns an error itself: per-job failures
// are recorded in the corresponding Outcome.Err, and FirstError scans for
// callers that want fail-on-any semantics. Canceling ctx stops feeding new
// jobs and cancels in-flight ones; their outcomes carry the context error.
func Run(ctx context.Context, cfg Config, jobs []Job) []Outcome {
	if ctx == nil {
		ctx = context.Background()
	}
	outcomes := make([]Outcome, len(jobs))
	if len(jobs) == 0 {
		return outcomes
	}
	stats := newCounters(cfg.Stats)
	if stats != nil {
		stats.total.Set(float64(len(jobs)))
	}
	if cfg.Progress != nil {
		cfg.Progress.Start(len(jobs))
	}
	run, pool, transient := cfg.runner()
	var poolReused0, poolCreated0 uint64
	if pool != nil {
		poolReused0, poolCreated0 = pool.Stats()
	}

	// deliver records one resolved outcome; every job passes through here
	// exactly once, whether it ran on a worker, ran as the pilot, or was
	// pruned without running.
	done := 0
	deliver := func(o Outcome) {
		outcomes[o.Index] = o
		done++
		stats.observe(o)
		if cfg.Progress != nil {
			cfg.Progress.JobDone(o, done, len(jobs))
		}
	}

	resolved := make([]bool, len(jobs))

	// Shard filter: resolve jobs owned by other shards before anything can
	// simulate. Ownership is content-addressed (ShardOf over JobKey), so
	// the partition is identical in every process regardless of worker
	// count or scheduling. A job that cannot be keyed belongs to shard 0,
	// so exactly one shard reports its keying error.
	if cfg.Shard != nil && cfg.Shard.Count > 1 {
		for i, j := range jobs {
			owner := 0
			if key, err := JobKey(j); err == nil {
				owner = ShardOf(key, cfg.Shard.Count)
			}
			if owner != cfg.Shard.Index {
				resolved[i] = true
				deliver(Outcome{Index: i, Job: j, Skipped: true})
			}
		}
	}

	// Static pruning phase: bound every job, run the smallest-bound pilot
	// on this goroutine, then skip jobs whose bound proves them worse than
	// the pilot's measurement. Everything here is a pure function of the
	// job list, so the surviving set is identical at any worker count —
	// and, because the pilot is elected over the full list rather than the
	// owned subset, identical in every shard: each shard prunes against
	// the same pilot measurement, so the union of owned rows matches an
	// unsharded pruned run byte for byte. A shard that does not own the
	// pilot runs it for the measurement alone (the cache dedups the work
	// when another shard persisted it first) and keeps its Skipped row.
	var lbs []uint64
	var lbKnown []bool
	if cfg.Prune != nil {
		lbs = make([]uint64, len(jobs))
		lbKnown = make([]bool, len(jobs))
		pilot := -1
		for i, j := range jobs {
			if lb, ok := cfg.Prune(j); ok {
				lbs[i], lbKnown[i] = lb, true
				if pilot < 0 || lb < lbs[pilot] {
					pilot = i // ties keep the lowest index
				}
			}
		}
		if pilot >= 0 {
			po := runJob(ctx, cfg, run, transient, pilot, jobs[pilot])
			po.StaticLB = lbs[pilot]
			if !resolved[pilot] {
				resolved[pilot] = true
				deliver(po)
			}
			// An estimated pilot measurement cannot anchor pruning: the
			// static bounds are exact, the extrapolation is not, and a
			// too-low estimate would prune points that beat the truth.
			if po.Err == nil && po.Metrics != nil && !po.Metrics.Estimated {
				best := po.Metrics.Cycles
				for i := range jobs {
					if !resolved[i] && lbKnown[i] && lbs[i] > best {
						resolved[i] = true
						deliver(Outcome{Index: i, Job: jobs[i], Pruned: true, StaticLB: lbs[i]})
					}
				}
			}
		}
	}

	type item struct {
		idx int
		job Job
	}
	work := make(chan item)
	results := make(chan Outcome)

	var wg sync.WaitGroup
	for w := 0; w < cfg.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := range work {
				results <- runJob(ctx, cfg, run, transient, it.idx, it.job)
			}
		}()
	}
	go func() {
		defer close(work)
		var drain <-chan struct{} // nil channel: select case never fires
		if cfg.Drain != nil {
			drain = cfg.Drain
		}
		// fail resolves every not-yet-submitted job with err; in-flight
		// jobs are untouched and still deliver their own outcomes.
		fail := func(from int, err error) {
			for k := from; k < len(jobs); k++ {
				if !resolved[k] {
					results <- Outcome{Index: k, Job: jobs[k], Err: err}
				}
			}
		}
		for i, j := range jobs {
			if resolved[i] {
				continue
			}
			select {
			case work <- item{i, j}:
			case <-ctx.Done():
				// Unsubmitted jobs fail with the context error so the
				// caller can tell "not run" from "ran and failed".
				fail(i, ctx.Err())
				return
			case <-drain:
				// Soft stop: unsubmitted jobs are marked drained; workers
				// finish (and persist) what they already hold.
				fail(i, ErrDrained)
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(results)
	}()

	// Ordered collector: outcomes land by index; progress and stats see
	// them in completion order on this single goroutine. Exactly one
	// outcome arrives per unresolved job (from a worker, or from the
	// feeder for jobs never submitted after a cancel), and results closes
	// after the last.
	for o := range results {
		if lbKnown != nil && lbKnown[o.Index] {
			o.StaticLB = lbs[o.Index]
		}
		deliver(o)
	}
	if cfg.Progress != nil {
		cfg.Progress.Finish()
	}
	if stats != nil && pool != nil {
		reused, created := pool.Stats()
		stats.reused.Set(float64(reused - poolReused0))
		stats.built.Set(float64(created - poolCreated0))
	}
	if cfg.TraceBest != "" {
		traceBest(ctx, cfg, outcomes)
	}
	return outcomes
}

// traceBest re-simulates the campaign's best point with a JSON timeline
// recorder and writes the trace. Cold re-run on purpose: the trace must
// not perturb pooled sessions, and determinism guarantees the replay
// matches the sweep's measurement cycle for cycle.
func traceBest(ctx context.Context, cfg Config, outcomes []Outcome) {
	warn := func(msg string) {
		if cfg.Progress != nil {
			cfg.Progress.Warn(msg)
		}
	}
	best := -1
	for i, o := range outcomes {
		if o.Err != nil || o.Pruned || o.Metrics == nil || o.Metrics.Estimated {
			// Estimated cycle counts cannot elect the best point: the
			// traced replay is exact and would silently disagree.
			continue
		}
		if best < 0 || o.Metrics.Cycles < outcomes[best].Metrics.Cycles {
			best = i
		}
	}
	if best < 0 {
		warn("trace-best: no successful outcome to trace")
		return
	}
	job := outcomes[best].Job
	rec := timeline.NewJSON()
	opts := job.Opts
	opts.Timeline = rec
	res, err := salam.RunKernelCtx(ctx, job.Kernel, opts)
	if err != nil {
		warn(fmt.Sprintf("trace-best: re-running %q: %v", job.ID, err))
		return
	}
	if res.Cycles != outcomes[best].Metrics.Cycles {
		warn(fmt.Sprintf("trace-best: traced replay of %q measured %d cycles, sweep measured %d",
			job.ID, res.Cycles, outcomes[best].Metrics.Cycles))
	}
	f, err := os.Create(cfg.TraceBest)
	if err != nil {
		warn(fmt.Sprintf("trace-best: %v", err))
		return
	}
	werr := rec.Write(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		warn(fmt.Sprintf("trace-best: writing %s: %v", cfg.TraceBest, werr))
	}
}

// runJob executes one job with cache lookup, panic recovery, and timeout.
func runJob(ctx context.Context, cfg Config, run jobRunner, transient bool, idx int, job Job) (out Outcome) {
	start := time.Now()
	out = Outcome{Index: idx, Job: job}
	defer func() { out.Wall = time.Since(start) }()

	var key string
	if cfg.Cache != nil {
		var err error
		key, err = JobKey(job)
		if err != nil {
			out.Err = fmt.Errorf("campaign: keying job %q: %w", job.ID, err)
			return out
		}
		if m, ok := cfg.Cache.Get(key); ok {
			out.Metrics = m
			out.Cached = true
			return out
		}
	}

	jctx := ctx
	timeout := job.Timeout
	if timeout == 0 {
		timeout = cfg.Timeout
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		jctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	res, extra, err := runIsolated(jctx, run, job)
	if err != nil {
		// Attribute timeouts precisely: the simulation reports a generic
		// cancel, the deadline is the campaign's.
		if jctx.Err() != nil && ctx.Err() == nil {
			err = fmt.Errorf("campaign: job %q: %w", job.ID, jctx.Err())
		}
		out.Err = err
		return out
	}
	m := &Metrics{Cycles: res.Cycles, Ticks: res.Ticks, Power: res.Power, Extra: extra,
		Estimated: res.Estimated, ErrorBound: res.SampleError}
	if !transient {
		// Warm-started results alias a pooled system another job will
		// rewind; only snapshots (Metrics, probe extras) may escape.
		out.Result = res
	}
	out.Metrics = m
	if cfg.Cache != nil {
		if err := cfg.Cache.Put(key, job, m); err != nil {
			// A cache write failure degrades to "not cached", it does not
			// fail the job; surface it through the progress reporter.
			out.Err = nil
			if cfg.Progress != nil {
				cfg.Progress.Warn(fmt.Sprintf("cache write for %q failed: %v", job.ID, err))
			}
		}
	}
	return out
}

// runIsolated invokes the runner (simulation plus probe) with panic
// recovery, so a crashing probe is attributed to its job like a crashing
// simulation instead of sinking the worker.
func runIsolated(ctx context.Context, run jobRunner, job Job) (res *salam.Result, extra map[string]float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			buf := make([]byte, 16<<10)
			buf = buf[:runtime.Stack(buf, false)]
			res, extra, err = nil, nil, &PanicError{Value: r, Stack: buf}
		}
	}()
	return run(ctx, job)
}

// StaticPrune is the standard Config.Prune hook: the static analyzer's
// provable cycle lower bound for the job's kernel under its run options
// (see internal/analysis). Elaboration failures yield no bound, so broken
// jobs still run and report their real error.
func StaticPrune(j Job) (uint64, bool) {
	return salam.StaticLowerBound(j.Kernel, j.Opts)
}

// StaticEnergy is the provable dynamic-energy lower bound (total pJ) for
// the job's kernel under its run options — the static_energy column of
// campaign rows. Elaboration failures yield no bound.
func StaticEnergy(j Job) (float64, bool) {
	if j.Kernel == nil {
		return 0, false
	}
	se, err := salam.StaticEnergyLowerBound(j.Kernel, j.Opts)
	if err != nil {
		return 0, false
	}
	return se.TotalPJ, true
}

// FirstError returns the first failed outcome's error in submission order
// (nil when every job succeeded) — the fail-fast view for callers like the
// experiments, which abort a whole table on any failed point.
func FirstError(outcomes []Outcome) error {
	for _, o := range outcomes {
		if o.Err != nil {
			return fmt.Errorf("job %d (%s): %w", o.Index, o.Job.ID, o.Err)
		}
	}
	return nil
}
