package campaign

import (
	"context"
	"testing"
	"time"

	salam "gosalam"
	"gosalam/kernels"
)

// TestOrderedStreamSequences: outcomes emit in submission order at any
// worker count, exactly once each, even when completion order is scrambled
// by deliberately uneven job durations.
func TestOrderedStreamSequences(t *testing.T) {
	k := kernels.GEMM(8, 1)
	jobs := shardSweep(k)
	runner := func(_ context.Context, _ *kernels.Kernel, opts salam.RunOpts) (*salam.Result, error) {
		// Early-index jobs sleep longest, so completion order inverts
		// submission order under a wide pool.
		time.Sleep(time.Duration(13-opts.Accel.ReadPorts) * time.Millisecond)
		return &salam.Result{Cycles: uint64(opts.Accel.ReadPorts)}, nil
	}
	for _, workers := range []int{1, 4, 12} {
		var got []int
		stream := NewOrderedStream(func(o Outcome) {
			got = append(got, o.Index)
			if o.Metrics == nil || o.Metrics.Cycles != uint64(o.Index+1) {
				t.Fatalf("workers=%d: emitted wrong outcome for index %d: %+v", workers, o.Index, o)
			}
		}, nil)
		out := Run(context.Background(), Config{Workers: workers, Runner: runner, Progress: stream}, jobs)
		if err := FirstError(out); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(jobs) {
			t.Fatalf("workers=%d: emitted %d outcomes, want %d", workers, len(got), len(jobs))
		}
		for i, idx := range got {
			if idx != i {
				t.Fatalf("workers=%d: emission order %v not submission order", workers, got)
			}
		}
	}
}

// TestDrainFinishesInFlight: closing Config.Drain mid-campaign lets the
// worker finish its held job (persisting it to the cache) while every
// unsubmitted job resolves with ErrDrained — the graceful-shutdown
// contract salam-serve relies on.
func TestDrainFinishesInFlight(t *testing.T) {
	k := kernels.GEMM(8, 1)
	jobs := shardSweep(k)
	store, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	drain := make(chan struct{})
	started := make(chan struct{})
	var startedOnce bool
	release := make(chan struct{})
	runner := func(_ context.Context, _ *kernels.Kernel, opts salam.RunOpts) (*salam.Result, error) {
		if !startedOnce {
			startedOnce = true
			close(started)
			<-release
		}
		return &salam.Result{Cycles: uint64(100 + opts.Accel.ReadPorts)}, nil
	}
	go func() {
		<-started
		close(drain)
		// Give the (blocked) feeder time to observe the drain before the
		// held job is released; the assertions below tolerate the benign
		// race where the worker still wins a job or two.
		time.Sleep(50 * time.Millisecond)
		close(release)
	}()
	out := Run(context.Background(), Config{
		Workers: 1, // single worker: job 0 is in flight when drain closes
		Runner:  runner,
		Cache:   store,
		Drain:   drain,
	}, jobs)

	if out[0].Err != nil || out[0].Metrics == nil {
		t.Fatalf("in-flight job did not finish: %+v", out[0])
	}
	key, err := JobKey(jobs[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := store.Get(key); !ok {
		t.Fatal("in-flight job's result was not persisted")
	}
	drained := 0
	for _, o := range out[1:] {
		if o.Err == ErrDrained {
			drained++
		} else if o.Err == nil && o.Metrics == nil {
			t.Fatalf("job %d neither ran nor drained: %+v", o.Index, o)
		}
	}
	if drained == 0 {
		t.Fatal("no job was drained")
	}
}
