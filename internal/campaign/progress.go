package campaign

import (
	"fmt"
	"io"
	"time"
)

// Reporter receives campaign progress. All methods are called from the
// single collector goroutine (JobDone in completion order), except Warn,
// which workers may call concurrently; implementations that buffer state
// only need to guard what Warn touches.
type Reporter interface {
	// Start announces the campaign size before any job completes.
	Start(total int)
	// JobDone reports one finished job; done counts completions so far.
	JobDone(o Outcome, done, total int)
	// Warn surfaces a non-fatal campaign problem (e.g. a cache write
	// failure). May be called from any worker goroutine.
	Warn(msg string)
	// Finish is called once after the last job.
	Finish()
}

// WriterReporter streams per-job status lines — done/total, job id,
// disposition, throughput and ETA — to w (normally stderr, keeping stdout
// byte-identical to a serial sweep).
type WriterReporter struct {
	W io.Writer
	// Quiet suppresses per-job lines, keeping only warnings and the
	// final summary (for big campaigns where 1 line/job is noise).
	Quiet bool

	start  time.Time
	failed int
	cached int

	// now is stubbed in tests for deterministic throughput/ETA text.
	now func() time.Time
}

// NewWriterReporter reports to w.
func NewWriterReporter(w io.Writer) *WriterReporter {
	return &WriterReporter{W: w, now: time.Now}
}

func (r *WriterReporter) clock() time.Time {
	if r.now == nil {
		r.now = time.Now
	}
	return r.now()
}

// Start implements Reporter.
func (r *WriterReporter) Start(total int) {
	r.start = r.clock()
	fmt.Fprintf(r.W, "campaign: %d jobs\n", total)
}

// JobDone implements Reporter.
func (r *WriterReporter) JobDone(o Outcome, done, total int) {
	status := "ok"
	switch {
	case o.Err != nil:
		status = "FAIL: " + o.Err.Error()
		r.failed++
	case o.Cached:
		status = "cached"
		r.cached++
	}
	if r.Quiet {
		return
	}
	elapsed := r.clock().Sub(r.start).Seconds()
	if elapsed <= 0 {
		elapsed = 1e-9
	}
	rate := float64(done) / elapsed
	eta := time.Duration(float64(total-done) / rate * float64(time.Second))
	id := o.Job.ID
	if id == "" {
		id = fmt.Sprintf("job %d", o.Index)
	}
	fmt.Fprintf(r.W, "campaign: [%d/%d] %-40s %s (%.0fms)  %.1f jobs/s eta %s\n",
		done, total, id, status, float64(o.Wall)/float64(time.Millisecond),
		rate, eta.Round(time.Second))
}

// Warn implements Reporter.
func (r *WriterReporter) Warn(msg string) {
	fmt.Fprintf(r.W, "campaign: warning: %s\n", msg)
}

// Finish implements Reporter.
func (r *WriterReporter) Finish() {
	fmt.Fprintf(r.W, "campaign: done in %s (%d cached, %d failed)\n",
		r.clock().Sub(r.start).Round(time.Millisecond), r.cached, r.failed)
}
