package campaign

import (
	"encoding/json"
	"fmt"
	"io"
)

// Row is the canonical wire form of one outcome: the NDJSON record
// salam-serve streams, salam-dse -json prints, and salam-serve -merge
// reassembles from a shared store. A Row deliberately excludes everything
// volatile — wall-clock time, cache-hit flags, worker identity — so the
// same design point renders byte-identical whether it was simulated fresh,
// served from the store, or merged from another shard's work. Field order
// is fixed by the struct; map-valued fields (Metrics.Extra) marshal with
// sorted keys under encoding/json, so marshaling is deterministic.
type Row struct {
	// Index is the job's position in the submitted space.
	Index int `json:"index"`
	// ID is the job's human-readable label.
	ID string `json:"id,omitempty"`
	// Kernel is the job's kernel identity (Job.KernelKey).
	Kernel string `json:"kernel,omitempty"`
	// Key is the job's content-addressed store key (JobKey).
	Key string `json:"key,omitempty"`
	// Status is one of ok, error, pruned, skipped, missing.
	Status string `json:"status"`
	// StaticLB is the provable cycle lower bound, when one was computed.
	StaticLB uint64 `json:"static_lb,omitempty"`
	// StaticEnergyPJ is the provable dynamic-energy lower bound in
	// picojoules (0 when no bound exists). Derived from the job spec, not
	// the run, so it renders identically for fresh, cached, merged, and
	// pruned rows.
	StaticEnergyPJ float64 `json:"static_energy,omitempty"`
	// Error carries the failure for status "error".
	Error string `json:"error,omitempty"`
	// Metrics is present for status "ok".
	Metrics *Metrics `json:"metrics,omitempty"`
}

// Row statuses.
const (
	// StatusOK: the point has metrics (simulated fresh or read back).
	StatusOK = "ok"
	// StatusError: the point failed (simulation error, panic, timeout, or
	// drain).
	StatusError = "error"
	// StatusPruned: static lower-bound pruning proved the point worse than
	// a measured sibling; it was never simulated.
	StatusPruned = "pruned"
	// StatusSkipped: another shard owns the point.
	StatusSkipped = "skipped"
	// StatusMissing: a merge found no store entry for the point.
	StatusMissing = "missing"
)

// RowOf projects an outcome onto its canonical row.
func RowOf(o Outcome) Row {
	r := Row{
		Index:    o.Index,
		ID:       o.Job.ID,
		Kernel:   o.Job.KernelKey,
		StaticLB: o.StaticLB,
	}
	if r.Kernel == "" && o.Job.Kernel != nil {
		r.Kernel = o.Job.Kernel.Name
	}
	if key, err := JobKey(o.Job); err == nil {
		r.Key = key
	}
	if e, ok := StaticEnergy(o.Job); ok {
		r.StaticEnergyPJ = e
	}
	switch {
	case o.Pruned:
		r.Status = StatusPruned
	case o.Skipped:
		r.Status = StatusSkipped
	case o.Err != nil:
		r.Status = StatusError
		r.Error = o.Err.Error()
	default:
		r.Status = StatusOK
		r.Metrics = o.Metrics
	}
	return r
}

// Rows projects a whole campaign's outcomes.
func Rows(outcomes []Outcome) []Row {
	rows := make([]Row, len(outcomes))
	for i, o := range outcomes {
		rows[i] = RowOf(o)
	}
	return rows
}

// WriteRow writes one row as an NDJSON line.
func WriteRow(w io.Writer, r Row) error {
	data, err := json.Marshal(r)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WriteRows writes rows as NDJSON, one line per row.
func WriteRows(w io.Writer, rows []Row) error {
	for _, r := range rows {
		if err := WriteRow(w, r); err != nil {
			return err
		}
	}
	return nil
}

// MergeRows reassembles a full sweep's rows from a shared store: for every
// job, the stored metrics become an ok row, and absent entries render as
// status "missing" (a shard that has not finished yet, or a point that
// errored and so never persisted). When every shard of a space has
// completed against the store, the merged rows are byte-identical to a
// single-process run of the same space, because metrics are deterministic
// and the store round-trips them exactly.
func MergeRows(jobs []Job, store Store) ([]Row, error) {
	rows := make([]Row, len(jobs))
	for i, job := range jobs {
		key, err := JobKey(job)
		if err != nil {
			return nil, fmt.Errorf("campaign: keying job %d (%s): %w", i, job.ID, err)
		}
		r := Row{Index: i, ID: job.ID, Kernel: job.KernelKey, Key: key}
		if r.Kernel == "" && job.Kernel != nil {
			r.Kernel = job.Kernel.Name
		}
		if e, ok := StaticEnergy(job); ok {
			r.StaticEnergyPJ = e
		}
		if m, ok := store.Get(key); ok {
			r.Status = StatusOK
			r.Metrics = m
		} else {
			r.Status = StatusMissing
		}
		rows[i] = r
	}
	return rows, nil
}
