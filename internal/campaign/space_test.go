package campaign

import (
	"strings"
	"testing"
)

// TestSpaceBuild: defaults, enumeration order, and the ID/KernelKey format
// every consumer (CLI CSV, server stream, shard keys) agrees on.
func TestSpaceBuild(t *testing.T) {
	pts, jobs, err := Space{Kernel: "gemm", Mem: []string{"spm", "cache"}, FU: []int{0, 4}, Ports: []int{2, 4}}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 8 || len(pts) != 8 {
		t.Fatalf("enumerated %d jobs / %d points, want 8 / 8", len(jobs), len(pts))
	}
	// Mem outermost, then FU, then ports.
	if pts[0] != (Point{Mem: "spm", FU: 0, Ports: 2}) || pts[1] != (Point{Mem: "spm", FU: 0, Ports: 4}) ||
		pts[2] != (Point{Mem: "spm", FU: 4, Ports: 2}) || pts[4] != (Point{Mem: "cache", FU: 0, Ports: 2}) {
		t.Fatalf("enumeration order wrong: %+v", pts)
	}
	if jobs[0].ID != "gemm spm fu=0 ports=2" {
		t.Fatalf("job ID format changed: %q", jobs[0].ID)
	}
	if jobs[0].KernelKey != "gemm/preset=small" {
		t.Fatalf("kernel key format changed: %q", jobs[0].KernelKey)
	}
	if jobs[4].Opts.Mem != 1 { // salam.MemCache
		t.Fatalf("cache points did not select MemCache")
	}
	if got := (Space{Kernel: "gemm"}).Size(); got != 3 {
		t.Fatalf("default space size %d, want 3 (ports 2,4,8)", got)
	}

	for _, bad := range []Space{
		{Kernel: "no-such-kernel"},
		{Kernel: "gemm", Preset: "huge"},
		{Kernel: "gemm", Ports: []int{0}},
		{Kernel: "gemm", FU: []int{-1}},
		{Kernel: "gemm", Mem: []string{"dram"}},
		{Kernel: "gemm", TimeoutMS: -5},
	} {
		if _, _, err := bad.Build(); err == nil {
			t.Fatalf("Space %+v validated", bad)
		} else if !strings.HasPrefix(err.Error(), "campaign: ") {
			t.Fatalf("unprefixed error: %v", err)
		}
	}
}
