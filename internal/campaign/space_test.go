package campaign

import (
	"strings"
	"testing"
)

// TestSpaceBuild: defaults, enumeration order, and the ID/KernelKey format
// every consumer (CLI CSV, server stream, shard keys) agrees on.
func TestSpaceBuild(t *testing.T) {
	pts, jobs, err := Space{Kernel: "gemm", Mem: []string{"spm", "cache"}, FU: []int{0, 4}, Ports: []int{2, 4}}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 8 || len(pts) != 8 {
		t.Fatalf("enumerated %d jobs / %d points, want 8 / 8", len(jobs), len(pts))
	}
	// Mem outermost, then FU, then ports.
	if pts[0] != (Point{Mem: "spm", FU: 0, Ports: 2}) || pts[1] != (Point{Mem: "spm", FU: 0, Ports: 4}) ||
		pts[2] != (Point{Mem: "spm", FU: 4, Ports: 2}) || pts[4] != (Point{Mem: "cache", FU: 0, Ports: 2}) {
		t.Fatalf("enumeration order wrong: %+v", pts)
	}
	if jobs[0].ID != "gemm spm fu=0 ports=2" {
		t.Fatalf("job ID format changed: %q", jobs[0].ID)
	}
	if jobs[0].KernelKey != "gemm/preset=small" {
		t.Fatalf("kernel key format changed: %q", jobs[0].KernelKey)
	}
	if jobs[4].Opts.Mem != 1 { // salam.MemCache
		t.Fatalf("cache points did not select MemCache")
	}
	if got := (Space{Kernel: "gemm"}).Size(); got != 3 {
		t.Fatalf("default space size %d, want 3 (ports 2,4,8)", got)
	}

	for _, bad := range []Space{
		{Kernel: "no-such-kernel"},
		{Kernel: "gemm", Preset: "huge"},
		{Kernel: "gemm", Ports: []int{0}},
		{Kernel: "gemm", FU: []int{-1}},
		{Kernel: "gemm", Mem: []string{"dram"}},
		{Kernel: "gemm", TimeoutMS: -5},
	} {
		if _, _, err := bad.Build(); err == nil {
			t.Fatalf("Space %+v validated", bad)
		} else if !strings.HasPrefix(err.Error(), "campaign: ") {
			t.Fatalf("unprefixed error: %v", err)
		}
	}
}

// TestSpaceValidate: Validate reports every malformed spec without
// enumerating any job, including the empty/duplicate list and range-form
// cases salam-serve turns into HTTP 400s.
func TestSpaceValidate(t *testing.T) {
	good := []Space{
		{Kernel: "gemm"},
		{Kernel: "gemm", Banks: []int{1, 2, 8}},
		{Kernel: "gemm", PortRange: &Range{Min: 1, Max: 100}},
		{Kernel: "gemm", FURange: &Range{Min: 0, Max: 999, Step: 3}},
		{Kernel: "gemm-tree", PortRange: &Range{Min: 1, Max: 100},
			FURange: &Range{Min: 1, Max: 1000}, BankRange: &Range{Min: 1, Max: 10}},
	}
	for _, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", s, err)
		}
	}
	bad := []Space{
		{Kernel: "no-such-kernel"},
		{Kernel: "gemm", Mem: []string{}},
		{Kernel: "gemm", Mem: []string{"spm", "spm"}},
		{Kernel: "gemm", Ports: []int{}},
		{Kernel: "gemm", Ports: []int{2, 4, 2}},
		{Kernel: "gemm", FU: []int{0, 0}},
		{Kernel: "gemm", Banks: []int{0}},
		{Kernel: "gemm", Ports: []int{2}, PortRange: &Range{Min: 1, Max: 4}},
		{Kernel: "gemm", PortRange: &Range{Min: 0, Max: 4}},
		{Kernel: "gemm", PortRange: &Range{Min: 4, Max: 1}},
		{Kernel: "gemm", FURange: &Range{Min: 0, Max: 8, Step: -2}},
	}
	for _, s := range bad {
		err := s.Validate()
		if err == nil {
			t.Errorf("Validate(%+v) passed, want error", s)
			continue
		}
		if !strings.HasPrefix(err.Error(), "campaign: ") {
			t.Errorf("unprefixed error: %v", err)
		}
	}
}

// TestSpaceRangesAndBanks: ranged knobs expand to the same jobs as their
// list forms, Size agrees with enumeration without building, banks sweep
// innermost, and explicitly setting banks tags IDs while the implicit
// default keeps the legacy ID bytes.
func TestSpaceRangesAndBanks(t *testing.T) {
	ranged := Space{Kernel: "gemm", PortRange: &Range{Min: 2, Max: 8, Step: 2}, FURange: &Range{Min: 0, Max: 4, Step: 4}}
	listed := Space{Kernel: "gemm", Ports: []int{2, 4, 6, 8}, FU: []int{0, 4}}
	rp, rj, err := ranged.Build()
	if err != nil {
		t.Fatal(err)
	}
	lp, lj, err := listed.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(rj) != len(lj) || len(rj) != ranged.Size() || ranged.Size() != 8 {
		t.Fatalf("ranged space enumerated %d jobs (Size %d), list form %d", len(rj), ranged.Size(), len(lj))
	}
	for i := range rj {
		if rp[i] != lp[i] || rj[i].ID != lj[i].ID {
			t.Fatalf("point %d: ranged %+v %q != listed %+v %q", i, rp[i], rj[i].ID, lp[i], lj[i].ID)
		}
	}

	banked := Space{Kernel: "gemm", Ports: []int{2}, Banks: []int{2, 4}}
	pts, jobs, err := banked.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 || banked.Size() != 2 {
		t.Fatalf("banked space enumerated %d jobs (Size %d), want 2", len(jobs), banked.Size())
	}
	if pts[0] != (Point{Mem: "spm", FU: 0, Ports: 2, Banks: 2}) ||
		pts[1] != (Point{Mem: "spm", FU: 0, Ports: 2, Banks: 4}) {
		t.Fatalf("bank axis order wrong: %+v", pts)
	}
	if jobs[0].ID != "gemm spm fu=0 ports=2 banks=2" {
		t.Fatalf("explicit-banks ID format: %q", jobs[0].ID)
	}
	if jobs[0].Opts.SPMBanks != 2 || jobs[1].Opts.SPMBanks != 4 {
		t.Fatalf("SPMBanks not wired: %d / %d", jobs[0].Opts.SPMBanks, jobs[1].Opts.SPMBanks)
	}

	// The implicit default bank axis must not disturb legacy job identity:
	// same ID bytes and same content-addressed key as a pre-banks build.
	plain, plainJobs, err := (Space{Kernel: "gemm", Ports: []int{2}}).Build()
	if err != nil {
		t.Fatal(err)
	}
	if plain[0] != (Point{Mem: "spm", FU: 0, Ports: 2}) {
		t.Fatalf("default-banks point gained a Banks value: %+v", plain[0])
	}
	if plainJobs[0].ID != "gemm spm fu=0 ports=2" {
		t.Fatalf("default-banks ID changed: %q", plainJobs[0].ID)
	}
	if plainJobs[0].Opts.SPMBanks != 4 {
		t.Fatalf("default bank count %d, want 4", plainJobs[0].Opts.SPMBanks)
	}
	wantKey, err := JobKey(plainJobs[0])
	if err != nil {
		t.Fatal(err)
	}
	gotKey, err := JobKey(jobs[1]) // banks=4 explicit: same opts, different ID
	if err != nil {
		t.Fatal(err)
	}
	if wantKey != gotKey {
		t.Fatalf("banks=4 explicit and implicit default produce different cache keys")
	}
}

// TestSpaceAxesLazy: JobAt/PointAt agree with Build index for index, so
// lazy consumers (the search engine, shard merges over huge spaces) see
// exactly the enumeration Build would produce.
func TestSpaceAxesLazy(t *testing.T) {
	s := Space{Kernel: "gemm", Mem: []string{"spm", "cache"}, FU: []int{0, 2}, Ports: []int{1, 4}, Banks: []int{2, 4}}
	pts, jobs, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Axes()
	if err != nil {
		t.Fatal(err)
	}
	if a.Size() != len(jobs) || a.Size() != 16 {
		t.Fatalf("Axes.Size %d, Build enumerated %d", a.Size(), len(jobs))
	}
	for i := range jobs {
		if a.PointAt(i) != pts[i] {
			t.Fatalf("PointAt(%d) = %+v, Build has %+v", i, a.PointAt(i), pts[i])
		}
		j := a.JobAt(i)
		if j.ID != jobs[i].ID {
			t.Fatalf("JobAt(%d).ID = %q, Build has %q", i, j.ID, jobs[i].ID)
		}
		k1, err := JobKey(j)
		if err != nil {
			t.Fatal(err)
		}
		k2, err := JobKey(jobs[i])
		if err != nil {
			t.Fatal(err)
		}
		if k1 != k2 {
			t.Fatalf("JobAt(%d) cache key differs from Build", i)
		}
	}
}
