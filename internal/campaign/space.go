package campaign

import (
	"fmt"
	"time"

	salam "gosalam"
	"gosalam/internal/hw"
	"gosalam/kernels"
)

// Space is a declarative design-space spec: the JSON body a salam-serve
// campaign submission carries, and the structure salam-dse builds from its
// flags. One definition on both sides guarantees the CLI and the service
// enumerate identical job lists — same IDs, same content-addressed keys —
// which is what makes their outputs diffable and their shards mergeable.
type Space struct {
	// Kernel names the workload (kernels.ByName).
	Kernel string `json:"kernel"`
	// Preset selects the workload size: "small" (default) or "default".
	Preset string `json:"preset,omitempty"`
	// Ports lists the read/write port counts to sweep (default 2,4,8).
	Ports []int `json:"ports,omitempty"`
	// FU lists FP adder+multiplier limits to sweep; 0 = dedicated
	// (default just 0).
	FU []int `json:"fu,omitempty"`
	// Mem lists memory kinds to sweep: "spm" and/or "cache"
	// (default just "spm").
	Mem []string `json:"mem,omitempty"`
	// TimeoutMS bounds each point's simulation (0 = no per-job timeout).
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// Point is the sweep coordinate of one job, in enumeration order — the
// metadata a CSV renderer needs alongside the outcome rows.
type Point struct {
	Mem   string
	FU    int
	Ports int
}

// normalized fills defaults without mutating the receiver.
func (s Space) normalized() Space {
	if s.Preset == "" {
		s.Preset = "small"
	}
	if len(s.Ports) == 0 {
		s.Ports = []int{2, 4, 8}
	}
	if len(s.FU) == 0 {
		s.FU = []int{0}
	}
	if len(s.Mem) == 0 {
		s.Mem = []string{"spm"}
	}
	return s
}

// Size returns the number of points the space enumerates (after
// defaulting), without building jobs.
func (s Space) Size() int {
	n := s.normalized()
	return len(n.Mem) * len(n.FU) * len(n.Ports)
}

// Build validates the space and enumerates it into points and jobs in the
// canonical order: memory kind outermost, then FU limit, then ports — the
// order salam-dse has always swept. Every validation error is reported
// before any simulation could run.
func (s Space) Build() ([]Point, []Job, error) {
	n := s.normalized()
	var preset kernels.Preset
	switch n.Preset {
	case "small":
		preset = kernels.Small
	case "default":
		preset = kernels.Default
	default:
		return nil, nil, fmt.Errorf("campaign: unknown preset %q (want small or default)", n.Preset)
	}
	k := kernels.ByName(preset, n.Kernel)
	if k == nil {
		return nil, nil, fmt.Errorf("campaign: unknown kernel %q", n.Kernel)
	}
	for _, p := range n.Ports {
		if p < 1 {
			return nil, nil, fmt.Errorf("campaign: invalid port count %d: must be >= 1", p)
		}
	}
	for _, fu := range n.FU {
		if fu < 0 {
			return nil, nil, fmt.Errorf("campaign: invalid FU limit %d: must be >= 0", fu)
		}
	}
	for _, m := range n.Mem {
		if m != "spm" && m != "cache" {
			return nil, nil, fmt.Errorf("campaign: unknown memory %q (want spm or cache)", m)
		}
	}
	if n.TimeoutMS < 0 {
		return nil, nil, fmt.Errorf("campaign: negative timeout_ms %d", n.TimeoutMS)
	}

	kkey := fmt.Sprintf("%s/preset=%s", k.Name, n.Preset)
	var pts []Point
	var jobs []Job
	for _, memKind := range n.Mem {
		for _, fu := range n.FU {
			for _, port := range n.Ports {
				opts := salam.DefaultRunOpts()
				opts.Accel.ReadPorts = port
				opts.Accel.WritePorts = port
				opts.Accel.MaxOutstanding = 2 * port
				opts.SPMPortsPer = port
				if fu > 0 {
					opts.Accel.FULimits = map[hw.FUClass]int{
						hw.FUFPAdder: fu, hw.FUFPMultiplier: fu,
					}
				}
				if memKind == "cache" {
					opts.Mem = salam.MemCache
				}
				pts = append(pts, Point{Mem: memKind, FU: fu, Ports: port})
				jobs = append(jobs, Job{
					ID:        fmt.Sprintf("%s %s fu=%d ports=%d", k.Name, memKind, fu, port),
					Kernel:    k,
					KernelKey: kkey,
					Opts:      opts,
					Timeout:   time.Duration(n.TimeoutMS) * time.Millisecond,
				})
			}
		}
	}
	return pts, jobs, nil
}
