package campaign

import (
	"fmt"
	"time"

	salam "gosalam"
	"gosalam/internal/hw"
	"gosalam/kernels"
)

// Space is a declarative design-space spec: the JSON body a salam-serve
// campaign submission carries, and the structure salam-dse builds from its
// flags. One definition on both sides guarantees the CLI and the service
// enumerate identical job lists — same IDs, same content-addressed keys —
// which is what makes their outputs diffable and their shards mergeable.
//
// Each knob has a list form (spell out every value) and a range form
// (Min..Max arithmetic progression); the range form keeps 10⁵–10⁶-point
// spaces a few bytes of JSON, which is what internal/search explores
// without enumerating. A knob may use one form or the other, not both.
type Space struct {
	// Kernel names the workload (kernels.ByName).
	Kernel string `json:"kernel"`
	// Preset selects the workload size: "small" (default) or "default".
	Preset string `json:"preset,omitempty"`
	// Ports lists the read/write port counts to sweep (default 2,4,8).
	Ports []int `json:"ports,omitempty"`
	// FU lists FP adder+multiplier limits to sweep; 0 = dedicated
	// (default just 0).
	FU []int `json:"fu,omitempty"`
	// Banks lists SPM bank counts to sweep (default just 4, the paper
	// default — the default axis is omitted from job IDs so pre-banks
	// sweeps keep byte-identical IDs and cache keys).
	Banks []int `json:"banks,omitempty"`
	// Mem lists memory kinds to sweep: "spm" and/or "cache"
	// (default just "spm").
	Mem []string `json:"mem,omitempty"`
	// PortRange/FURange/BankRange are the ranged forms of the knobs
	// above, each mutually exclusive with its list form.
	PortRange *Range `json:"port_range,omitempty"`
	FURange   *Range `json:"fu_range,omitempty"`
	BankRange *Range `json:"bank_range,omitempty"`
	// TimeoutMS bounds each point's simulation (0 = no per-job timeout).
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// Objective selects what a search over this space optimizes: "pareto"
	// (the default: the three-axis cycles/power/area frontier), "edp"
	// (minimize energy-delay product), or "cycles" (minimize cycles).
	// Sweeps enumerate every point regardless and ignore it.
	Objective string `json:"objective,omitempty"`
	// MaxAreaUM2, when > 0, constrains a search to configurations whose
	// total area fits the budget; infeasible points never enter the result
	// and provably-infeasible regions are pruned without simulating.
	// Sweeps ignore it.
	MaxAreaUM2 float64 `json:"max_area_um2,omitempty"`
}

// Range is an inclusive arithmetic progression: Min, Min+Step, … ≤ Max.
// Step 0 means 1.
type Range struct {
	Min  int `json:"min"`
	Max  int `json:"max"`
	Step int `json:"step,omitempty"`
}

func (r Range) step() int {
	if r.Step > 0 {
		return r.Step
	}
	return 1
}

// Count returns how many values the range enumerates.
func (r Range) Count() int {
	if r.Max < r.Min {
		return 0
	}
	return (r.Max-r.Min)/r.step() + 1
}

// Values expands the progression.
func (r Range) Values() []int {
	vs := make([]int, 0, r.Count())
	for v := r.Min; v <= r.Max; v += r.step() {
		vs = append(vs, v)
	}
	return vs
}

// Point is the sweep coordinate of one job, in enumeration order — the
// metadata a CSV renderer needs alongside the outcome rows. Banks is 0
// when the space left the bank axis at its implicit default.
type Point struct {
	Mem   string
	FU    int
	Ports int
	Banks int
}

// axisValues resolves one integer knob: list form, range form, or the
// default. Empty (but present) lists, duplicate values, out-of-range
// values, and list+range conflicts are errors.
func axisValues(name string, list []int, rng *Range, min int, def []int) ([]int, error) {
	if list != nil && rng != nil {
		return nil, fmt.Errorf("campaign: both %s list and %s range set; pick one form", name, name)
	}
	if rng != nil {
		if rng.Step < 0 {
			return nil, fmt.Errorf("campaign: negative %s range step %d", name, rng.Step)
		}
		if rng.Min < min {
			return nil, fmt.Errorf("campaign: invalid %s range min %d: must be >= %d", name, rng.Min, min)
		}
		if rng.Max < rng.Min {
			return nil, fmt.Errorf("campaign: empty %s range [%d, %d]", name, rng.Min, rng.Max)
		}
		return rng.Values(), nil
	}
	if list == nil {
		return def, nil
	}
	if len(list) == 0 {
		return nil, fmt.Errorf("campaign: empty %s list (omit the field for the default)", name)
	}
	seen := make(map[int]bool, len(list))
	for _, v := range list {
		if v < min {
			return nil, fmt.Errorf("campaign: invalid %s value %d: must be >= %d", name, v, min)
		}
		if seen[v] {
			return nil, fmt.Errorf("campaign: duplicate %s value %d", name, v)
		}
		seen[v] = true
	}
	return list, nil
}

// Axes is a validated, enumerable view of a Space: kernel resolved, every
// knob axis expanded, defaults applied. PointAt/JobAt construct points on
// demand in canonical enumeration order (memory kind outermost, then FU,
// then ports, then banks innermost), so million-point spaces never have to
// materialize a job slice.
type Axes struct {
	Kernel    *kernels.Kernel
	KernelKey string
	Mem       []string
	FU        []int
	Ports     []int
	Banks     []int
	// Objective and MaxAreaUM2 carry the validated search-only knobs
	// through to internal/search; sweeps ignore them.
	Objective  string
	MaxAreaUM2 float64

	// banksDefaulted records that the bank axis is the implicit paper
	// default ([4]): job IDs and Points omit it, keeping pre-banks sweeps
	// byte-identical.
	banksDefaulted bool
	timeout        time.Duration
}

// Axes validates the space and resolves its axes without enumerating the
// cross product.
func (s Space) Axes() (*Axes, error) {
	preset := s.Preset
	if preset == "" {
		preset = "small"
	}
	var kp kernels.Preset
	switch preset {
	case "small":
		kp = kernels.Small
	case "default":
		kp = kernels.Default
	default:
		return nil, fmt.Errorf("campaign: unknown preset %q (want small or default)", preset)
	}
	k := kernels.ByName(kp, s.Kernel)
	if k == nil {
		return nil, fmt.Errorf("campaign: unknown kernel %q", s.Kernel)
	}
	ports, err := axisValues("ports", s.Ports, s.PortRange, 1, []int{2, 4, 8})
	if err != nil {
		return nil, err
	}
	fu, err := axisValues("fu", s.FU, s.FURange, 0, []int{0})
	if err != nil {
		return nil, err
	}
	banks, err := axisValues("banks", s.Banks, s.BankRange, 1, []int{4})
	if err != nil {
		return nil, err
	}
	mems := s.Mem
	if mems == nil {
		mems = []string{"spm"}
	}
	if len(mems) == 0 {
		return nil, fmt.Errorf("campaign: empty mem list (omit the field for the default)")
	}
	seen := make(map[string]bool, len(mems))
	for _, m := range mems {
		if m != "spm" && m != "cache" {
			return nil, fmt.Errorf("campaign: unknown memory %q (want spm or cache)", m)
		}
		if seen[m] {
			return nil, fmt.Errorf("campaign: duplicate memory %q", m)
		}
		seen[m] = true
	}
	if s.TimeoutMS < 0 {
		return nil, fmt.Errorf("campaign: negative timeout_ms %d", s.TimeoutMS)
	}
	switch s.Objective {
	case "", "pareto", "edp", "cycles":
	default:
		return nil, fmt.Errorf("campaign: unknown objective %q (want pareto, edp, or cycles)", s.Objective)
	}
	if s.MaxAreaUM2 < 0 {
		return nil, fmt.Errorf("campaign: negative max_area_um2 %g", s.MaxAreaUM2)
	}
	return &Axes{
		Kernel:         k,
		KernelKey:      fmt.Sprintf("%s/preset=%s", k.Name, preset),
		Mem:            mems,
		FU:             fu,
		Ports:          ports,
		Banks:          banks,
		Objective:      s.Objective,
		MaxAreaUM2:     s.MaxAreaUM2,
		banksDefaulted: s.Banks == nil && s.BankRange == nil,
		timeout:        time.Duration(s.TimeoutMS) * time.Millisecond,
	}, nil
}

// Validate checks the space without enumerating it: unknown kernels,
// presets, and memory kinds, empty or duplicate knob lists, malformed
// ranges, and negative timeouts are all reported before any job exists.
func (s Space) Validate() error {
	_, err := s.Axes()
	return err
}

// Size returns the number of points the space enumerates (after
// defaulting), without building jobs. Invalid spaces still get an
// arithmetic answer; Validate is the error-reporting path.
func (s Space) Size() int {
	axis := func(list []int, rng *Range, def int) int {
		switch {
		case rng != nil:
			return rng.Count()
		case list != nil:
			return len(list)
		default:
			return def
		}
	}
	mem := len(s.Mem)
	if s.Mem == nil {
		mem = 1
	}
	return mem * axis(s.FU, s.FURange, 1) * axis(s.Ports, s.PortRange, 3) * axis(s.Banks, s.BankRange, 1)
}

// Size is the number of points the axes enumerate.
func (a *Axes) Size() int {
	return len(a.Mem) * len(a.FU) * len(a.Ports) * len(a.Banks)
}

// coords decomposes an enumeration index (banks fastest, memory slowest).
func (a *Axes) coords(i int) (mem string, fu, port, bank int) {
	bank = a.Banks[i%len(a.Banks)]
	i /= len(a.Banks)
	port = a.Ports[i%len(a.Ports)]
	i /= len(a.Ports)
	fu = a.FU[i%len(a.FU)]
	i /= len(a.FU)
	return a.Mem[i], fu, port, bank
}

// PointAt returns the i-th sweep coordinate.
func (a *Axes) PointAt(i int) Point {
	mem, fu, port, bank := a.coords(i)
	p := Point{Mem: mem, FU: fu, Ports: port}
	if !a.banksDefaulted {
		p.Banks = bank
	}
	return p
}

// JobAt constructs the i-th job. Pure in i: the same index always yields
// the same ID, options, and content-addressed key.
func (a *Axes) JobAt(i int) Job {
	mem, fu, port, bank := a.coords(i)
	opts := salam.DefaultRunOpts()
	opts.Accel.ReadPorts = port
	opts.Accel.WritePorts = port
	opts.Accel.MaxOutstanding = 2 * port
	opts.SPMPortsPer = port
	opts.SPMBanks = bank
	if fu > 0 {
		opts.Accel.FULimits = map[hw.FUClass]int{
			hw.FUFPAdder: fu, hw.FUFPMultiplier: fu,
		}
	}
	if mem == "cache" {
		opts.Mem = salam.MemCache
	}
	id := fmt.Sprintf("%s %s fu=%d ports=%d", a.Kernel.Name, mem, fu, port)
	if !a.banksDefaulted {
		id = fmt.Sprintf("%s banks=%d", id, bank)
	}
	return Job{
		ID:        id,
		Kernel:    a.Kernel,
		KernelKey: a.KernelKey,
		Opts:      opts,
		Timeout:   a.timeout,
	}
}

// Build validates the space and enumerates it into points and jobs in the
// canonical order. Every validation error is reported before any
// simulation could run. Spaces too large to materialize should use Axes
// and JobAt instead.
func (s Space) Build() ([]Point, []Job, error) {
	a, err := s.Axes()
	if err != nil {
		return nil, nil, err
	}
	n := a.Size()
	pts := make([]Point, n)
	jobs := make([]Job, n)
	for i := 0; i < n; i++ {
		pts[i] = a.PointAt(i)
		jobs[i] = a.JobAt(i)
	}
	return pts, jobs, nil
}
