package campaign

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	salam "gosalam"
	"gosalam/internal/hw"
	"gosalam/internal/sim"
	"gosalam/kernels"
)

// sweepJobs builds a small real GEMM sweep (ports × FU limits).
func sweepJobs(t testing.TB) []Job {
	t.Helper()
	k := kernels.GEMM(8, 1)
	var jobs []Job
	for _, fu := range []int{0, 2} {
		for _, port := range []int{2, 4} {
			opts := salam.DefaultRunOpts()
			opts.Accel.ReadPorts = port
			opts.Accel.WritePorts = port
			opts.Accel.MaxOutstanding = 2 * port
			opts.SPMPortsPer = port
			if fu > 0 {
				opts.Accel.FULimits = map[hw.FUClass]int{
					hw.FUFPAdder: fu, hw.FUFPMultiplier: fu,
				}
			}
			jobs = append(jobs, Job{
				ID:        fmt.Sprintf("gemm fu=%d p=%d", fu, port),
				Kernel:    k,
				KernelKey: "gemm/n=8",
				Opts:      opts,
			})
		}
	}
	return jobs
}

// renderCSV formats outcomes exactly the way cmd/salam-dse does, so the
// test asserts the property users see: parallel sweeps emit the same bytes.
func renderCSV(t *testing.T, outcomes []Outcome) string {
	t.Helper()
	var sb strings.Builder
	for _, o := range outcomes {
		if o.Err != nil {
			t.Fatalf("job %d (%s): %v", o.Index, o.Job.ID, o.Err)
		}
		m := o.Metrics
		fmt.Fprintf(&sb, "%s,%d,%.3f,%.3f,%.3f,%.0f\n",
			o.Job.ID, m.Cycles, float64(m.Ticks)/1e6, m.Power.TotalMW(),
			m.Power.DatapathMW(), m.Power.TotalAreaUM2())
	}
	return sb.String()
}

// TestParallelDeterminism: a parallel campaign must produce byte-identical
// output to the serial path for a real GEMM sweep, with outcomes in
// submission order regardless of completion order.
func TestParallelDeterminism(t *testing.T) {
	serial := Run(context.Background(), Config{Workers: 1}, sweepJobs(t))
	parallel := Run(context.Background(), Config{Workers: 8}, sweepJobs(t))
	got, want := renderCSV(t, parallel), renderCSV(t, serial)
	if got != want {
		t.Fatalf("parallel CSV differs from serial:\n--- serial\n%s--- parallel\n%s", want, got)
	}
	for i, o := range parallel {
		if o.Index != i {
			t.Fatalf("outcome %d has index %d", i, o.Index)
		}
	}
}

// fakeResult builds a minimal live result for injected runners.
func fakeResult(cycles uint64) *salam.Result {
	return &salam.Result{Cycles: cycles, Ticks: sim.Tick(cycles) * 10}
}

// TestSubmissionOrder: completion order is scrambled by per-job delays;
// outcomes must still come back in submission order.
func TestSubmissionOrder(t *testing.T) {
	k := kernels.GEMM(8, 1)
	var jobs []Job
	for i := 0; i < 8; i++ {
		jobs = append(jobs, Job{ID: fmt.Sprintf("j%d", i), Kernel: k})
	}
	// Delays keyed off a shared counter: first-claimed jobs sleep longest,
	// so completion order is roughly the reverse of submission order.
	var claimed atomic.Int32
	out := Run(context.Background(), Config{
		Workers: 4,
		Runner: func(ctx context.Context, _ *kernels.Kernel, opts salam.RunOpts) (*salam.Result, error) {
			n := claimed.Add(1)
			time.Sleep(time.Duration(50-5*n) * time.Millisecond)
			return fakeResult(uint64(opts.Seed)), nil
		},
	}, withSeeds(jobs))
	for i, o := range out {
		if o.Err != nil {
			t.Fatalf("job %d: %v", i, o.Err)
		}
		if o.Metrics.Cycles != uint64(i+1) {
			t.Fatalf("outcome %d carries job seed %d, want %d", i, o.Metrics.Cycles, i+1)
		}
	}
}

func withSeeds(jobs []Job) []Job {
	for i := range jobs {
		jobs[i].Opts.Seed = int64(i + 1)
	}
	return jobs
}

// TestPanicIsolation: one panicking job becomes that job's error; siblings
// complete normally and campaign counters record the split.
func TestPanicIsolation(t *testing.T) {
	k := kernels.GEMM(8, 1)
	jobs := []Job{
		{ID: "ok-0", Kernel: k, Opts: salam.RunOpts{Seed: 1}},
		{ID: "boom", Kernel: k, Opts: salam.RunOpts{Seed: 2}},
		{ID: "ok-2", Kernel: k, Opts: salam.RunOpts{Seed: 3}},
	}
	stats := sim.NewGroup("test")
	out := Run(context.Background(), Config{
		Workers: 2,
		Stats:   stats,
		Runner: func(_ context.Context, _ *kernels.Kernel, opts salam.RunOpts) (*salam.Result, error) {
			if opts.Seed == 2 {
				panic("simulated engine bug")
			}
			return fakeResult(uint64(opts.Seed)), nil
		},
	}, jobs)

	var pe *PanicError
	if !errors.As(out[1].Err, &pe) {
		t.Fatalf("job 1 error = %v, want PanicError", out[1].Err)
	}
	if !strings.Contains(pe.Error(), "simulated engine bug") {
		t.Fatalf("panic error %q lost the panic value", pe.Error())
	}
	if len(pe.Stack) == 0 {
		t.Fatal("panic error has no stack")
	}
	for _, i := range []int{0, 2} {
		if out[i].Err != nil || out[i].Metrics == nil {
			t.Fatalf("sibling job %d affected by panic: %+v", i, out[i])
		}
	}
	if v, ok := stats.Lookup("test.campaign.jobs_failed"); !ok || v != 1 {
		t.Fatalf("jobs_failed = %v, want 1", v)
	}
	if v, ok := stats.Lookup("test.campaign.jobs_ok"); !ok || v != 2 {
		t.Fatalf("jobs_ok = %v, want 2", v)
	}
}

// TestTimeoutIsolation: a job that exceeds its timeout fails with
// DeadlineExceeded while siblings complete.
func TestTimeoutIsolation(t *testing.T) {
	k := kernels.GEMM(8, 1)
	jobs := []Job{
		{ID: "fast", Kernel: k, Opts: salam.RunOpts{Seed: 1}},
		{ID: "runaway", Kernel: k, Opts: salam.RunOpts{Seed: 2}, Timeout: 20 * time.Millisecond},
		{ID: "fast-2", Kernel: k, Opts: salam.RunOpts{Seed: 3}},
	}
	out := Run(context.Background(), Config{
		Workers: 2,
		Runner: func(ctx context.Context, _ *kernels.Kernel, opts salam.RunOpts) (*salam.Result, error) {
			if opts.Seed == 2 {
				<-ctx.Done() // a runaway that only stops when killed
				return nil, ctx.Err()
			}
			return fakeResult(uint64(opts.Seed)), nil
		},
	}, jobs)
	if !errors.Is(out[1].Err, context.DeadlineExceeded) {
		t.Fatalf("runaway error = %v, want DeadlineExceeded", out[1].Err)
	}
	for _, i := range []int{0, 2} {
		if out[i].Err != nil {
			t.Fatalf("sibling job %d affected by timeout: %v", i, out[i].Err)
		}
	}
}

// TestRunKernelCtxTimeout: the real engine stops cooperatively when its
// context expires mid-simulation — no goroutine is left simulating.
func TestRunKernelCtxTimeout(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Microsecond)
	defer cancel()
	// Big enough that the deadline fires mid-run on any machine.
	_, err := salam.RunKernelCtx(ctx, kernels.GEMM(8, 1), salam.DefaultRunOpts())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

// TestCampaignCancel: canceling the campaign context fails remaining jobs
// with the context error instead of hanging.
func TestCampaignCancel(t *testing.T) {
	k := kernels.GEMM(8, 1)
	ctx, cancel := context.WithCancel(context.Background())
	var jobs []Job
	for i := 0; i < 16; i++ {
		jobs = append(jobs, Job{ID: fmt.Sprintf("j%d", i), Kernel: k, Opts: salam.RunOpts{Seed: int64(i)}})
	}
	var started atomic.Int32
	out := Run(ctx, Config{
		Workers: 2,
		Runner: func(ctx context.Context, _ *kernels.Kernel, _ salam.RunOpts) (*salam.Result, error) {
			if started.Add(1) == 2 {
				cancel()
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return fakeResult(1), nil
		},
	}, jobs)
	canceled := 0
	for _, o := range out {
		if errors.Is(o.Err, context.Canceled) {
			canceled++
		}
	}
	if canceled == 0 {
		t.Fatal("no job observed the cancellation")
	}
	if err := FirstError(out); err == nil {
		t.Fatal("FirstError = nil on a canceled campaign")
	}
}

// TestProgressReporter: per-job lines carry done/total, status, and the
// summary counts cached/failed jobs.
func TestProgressReporter(t *testing.T) {
	var sb strings.Builder
	base := time.Unix(1000, 0)
	tick := 0
	r := NewWriterReporter(&sb)
	r.now = func() time.Time {
		tick++
		return base.Add(time.Duration(tick) * time.Second)
	}
	r.Start(2)
	r.JobDone(Outcome{Index: 0, Job: Job{ID: "a"}, Metrics: &Metrics{}}, 1, 2)
	r.JobDone(Outcome{Index: 1, Job: Job{ID: "b"}, Err: errors.New("boom")}, 2, 2)
	r.Warn("disk full")
	r.Finish()
	outStr := sb.String()
	for _, want := range []string{"2 jobs", "[1/2] a", "[2/2] b", "FAIL: boom", "warning: disk full", "1 failed"} {
		if !strings.Contains(outStr, want) {
			t.Fatalf("progress output missing %q:\n%s", want, outStr)
		}
	}
}

// TestEmptyCampaign: zero jobs is a no-op, not a hang.
func TestEmptyCampaign(t *testing.T) {
	out := Run(context.Background(), Config{Workers: 4}, nil)
	if len(out) != 0 {
		t.Fatalf("got %d outcomes for 0 jobs", len(out))
	}
}

// TestProbeReadsPooledStateSafely pins the probe-after-release race: a
// probe reads statistics that alias the pooled session, so it must run
// while the session is still held — after release, a concurrent job on the
// same structural configuration rewinds exactly that state. Many identical
// jobs on one structural key under the race detector catch a regression;
// the value checks catch a probe that silently reads rewound state.
func TestProbeReadsPooledStateSafely(t *testing.T) {
	k := kernels.GEMM(8, 1)
	var jobs []Job
	for i := 0; i < 24; i++ {
		jobs = append(jobs, Job{
			ID:        fmt.Sprintf("probe-%d", i),
			Kernel:    k,
			KernelKey: "gemm/n=8",
			Opts:      salam.DefaultRunOpts(),
			Probe: func(res *salam.Result) map[string]float64 {
				// Walk live pooled stats, the way cache-power probes do.
				v, ok := res.Stats.Lookup("system.gemm.cycles")
				if !ok {
					// Stat path drift must fail loudly, not yield zeros.
					panic("probe: cycles stat not found")
				}
				return map[string]float64{"probed_cycles": v}
			},
		})
	}
	out := Run(context.Background(), Config{Workers: 8}, jobs)
	want := out[0].Metrics.Extra["probed_cycles"]
	if want <= 0 {
		t.Fatalf("probe read %v cycles from live stats", want)
	}
	for _, o := range out {
		if o.Err != nil {
			t.Fatalf("%s: %v", o.Job.ID, o.Err)
		}
		if got := o.Metrics.Extra["probed_cycles"]; got != want {
			t.Fatalf("%s probed %v cycles, first job probed %v — probe saw rewound state", o.Job.ID, got, want)
		}
		if got := float64(o.Metrics.Cycles); got != want {
			t.Fatalf("%s probe value %v != measured cycles %v", o.Job.ID, want, got)
		}
	}
}

// TestProbePanicIsolation: a crashing probe fails its own job like a
// crashing simulation; siblings are unaffected and the pool stays usable.
func TestProbePanicIsolation(t *testing.T) {
	k := kernels.GEMM(8, 1)
	boom := func(*salam.Result) map[string]float64 { panic("probe bug") }
	jobs := []Job{
		{ID: "ok-0", Kernel: k, Opts: salam.DefaultRunOpts()},
		{ID: "boom", Kernel: k, Opts: salam.DefaultRunOpts(), Probe: boom, ProbeKey: "v1"},
		{ID: "ok-2", Kernel: k, Opts: salam.DefaultRunOpts()},
	}
	out := Run(context.Background(), Config{Workers: 2}, jobs)
	var pe *PanicError
	if !errors.As(out[1].Err, &pe) {
		t.Fatalf("probe panic surfaced as %v, want PanicError", out[1].Err)
	}
	for _, i := range []int{0, 2} {
		if out[i].Err != nil || out[i].Metrics == nil {
			t.Fatalf("sibling job %d affected by probe panic: %+v", i, out[i])
		}
	}
}
