package campaign

import (
	"context"
	"fmt"
	"testing"

	salam "gosalam"
	"gosalam/internal/sim"
	"gosalam/kernels"
)

// TestSharedCDFGParallelWorkers hammers one cached CDFG from many warm
// campaign workers at once: every job runs the identical configuration, so
// all workers' sessions share a single immutable graph while simulating
// concurrently. Under -race (the make race gate runs this package) the
// test proves the static artifact is read-only at runtime; the cycle
// assertion proves pooled warm-started systems stay byte-deterministic.
func TestSharedCDFGParallelWorkers(t *testing.T) {
	k := kernels.GEMMTree(8)
	opts := salam.DefaultRunOpts()
	opts.Accel.FULimits = map[salam.FUClass]int{salam.FUFPAdder: 4, salam.FUFPMultiplier: 4}

	const n = 32
	jobs := make([]Job, n)
	for i := range jobs {
		jobs[i] = Job{ID: fmt.Sprintf("p%d", i), Kernel: k, Opts: opts}
	}

	stats := sim.NewGroup("stress")
	out := Run(context.Background(), Config{Workers: 8, Stats: stats}, jobs)
	want := out[0].Metrics.Cycles
	for _, o := range out {
		if o.Err != nil {
			t.Fatalf("%s: %v", o.Job.ID, o.Err)
		}
		if o.Metrics.Cycles != want {
			t.Fatalf("%s: %d cycles, first job got %d", o.Job.ID, o.Metrics.Cycles, want)
		}
	}

	// Warm start is the default: with 8 workers at most 8 sessions are
	// built and the remaining jobs reuse them.
	built, ok := stats.Lookup("stress.campaign.sessions_built")
	if !ok {
		t.Fatal("sessions_built counter missing")
	}
	reused, ok := stats.Lookup("stress.campaign.sessions_reused")
	if !ok {
		t.Fatal("sessions_reused counter missing")
	}
	if built > 8 || reused+built != n {
		t.Fatalf("sessions built=%v reused=%v over %d jobs", built, reused, n)
	}
}

// TestWarmMatchesColdCampaign: the warm-start default must emit the same
// metrics as a cold-start campaign over a mixed sweep.
func TestWarmMatchesColdCampaign(t *testing.T) {
	warm := Run(context.Background(), Config{Workers: 4}, sweepJobs(t))
	cold := Run(context.Background(), Config{Workers: 4, ColdStart: true}, sweepJobs(t))
	for i := range warm {
		if warm[i].Err != nil || cold[i].Err != nil {
			t.Fatalf("job %d: warm err %v, cold err %v", i, warm[i].Err, cold[i].Err)
		}
		w, c := warm[i].Metrics, cold[i].Metrics
		if w.Cycles != c.Cycles || w.Ticks != c.Ticks || w.Power != c.Power {
			t.Fatalf("job %d: warm metrics %+v != cold %+v", i, w, c)
		}
	}
}

// TestSharedSessionPool: an explicit pool passed through Config.Sessions
// survives across campaigns, so a second sweep starts fully warm.
func TestSharedSessionPool(t *testing.T) {
	pool := salam.NewSessionPool()
	jobs := sweepJobs(t)
	first := Run(context.Background(), Config{Workers: 1, Sessions: pool}, jobs)
	second := Run(context.Background(), Config{Workers: 1, Sessions: pool}, jobs)
	for i := range first {
		if first[i].Err != nil || second[i].Err != nil {
			t.Fatalf("job %d: %v / %v", i, first[i].Err, second[i].Err)
		}
		if first[i].Metrics.Cycles != second[i].Metrics.Cycles {
			t.Fatalf("job %d: cycles drifted across campaigns: %d vs %d",
				i, first[i].Metrics.Cycles, second[i].Metrics.Cycles)
		}
	}
	reused, created := pool.Stats()
	if created != 1 || reused != uint64(2*len(jobs)-1) {
		t.Fatalf("pool stats reused=%d created=%d over two sweeps of %d jobs", reused, created, len(jobs))
	}
}
