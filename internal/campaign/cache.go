package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"

	salam "gosalam"
)

// cacheSchema versions the on-disk entry layout; bump to invalidate every
// entry after an incompatible Metrics change.
const cacheSchema = 1

// keyDoc is the canonical content of a cache key. encoding/json writes map
// keys in sorted order, so marshaling this struct is a canonical encoding:
// equal jobs hash equal, regardless of map iteration order.
type keyDoc struct {
	Schema int           `json:"schema"`
	Kernel string        `json:"kernel"`
	Probe  string        `json:"probe,omitempty"`
	Opts   salam.RunOpts `json:"opts"`
}

// JobKey returns the job's content-addressed cache key: the hex SHA-256 of
// the canonical JSON of kernel identity + probe version + run options.
func JobKey(job Job) (string, error) {
	name := job.KernelKey
	if name == "" && job.Kernel != nil {
		name = job.Kernel.Name
	}
	if name == "" {
		return "", errors.New("job has neither KernelKey nor Kernel")
	}
	doc, err := json.Marshal(keyDoc{
		Schema: cacheSchema,
		Kernel: name,
		Probe:  job.ProbeKey,
		Opts:   job.Opts,
	})
	if err != nil {
		return "", fmt.Errorf("canonicalizing job: %w", err)
	}
	sum := sha256.Sum256(doc)
	return hex.EncodeToString(sum[:]), nil
}

// entry is one cache file: the key document for debuggability plus the
// stored metrics.
type entry struct {
	ID      string   `json:"id"`
	Kernel  string   `json:"kernel"`
	Probe   string   `json:"probe,omitempty"`
	Metrics *Metrics `json:"metrics"`
}

// Cache is a directory-backed, content-addressed store of job metrics.
// One JSON file per key keeps concurrent access trivial: reads of distinct
// files never conflict, and writes go through a temp file + rename so a
// crashed run can never leave a torn entry. A small in-memory memo avoids
// re-reading files within a campaign; it is guarded for concurrent workers.
type Cache struct {
	dir string

	mu   sync.Mutex
	memo map[string]*Metrics
}

// OpenCache creates dir if needed and returns a cache over it.
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: opening cache: %w", err)
	}
	return &Cache{dir: dir, memo: map[string]*Metrics{}}, nil
}

// Dir returns the backing directory.
func (c *Cache) Dir() string { return c.dir }

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// Get returns the stored metrics for key, or false on a miss. Unreadable
// or corrupt entries count as misses (the job just re-simulates).
func (c *Cache) Get(key string) (*Metrics, bool) {
	c.mu.Lock()
	m, ok := c.memo[key]
	c.mu.Unlock()
	if ok {
		return m, true
	}
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	var e entry
	if err := json.Unmarshal(data, &e); err != nil || e.Metrics == nil {
		return nil, false
	}
	c.mu.Lock()
	c.memo[key] = e.Metrics
	c.mu.Unlock()
	return e.Metrics, true
}

// Put stores metrics under key atomically (temp file + rename).
func (c *Cache) Put(key string, job Job, m *Metrics) error {
	e := entry{ID: job.ID, Kernel: job.KernelKey, Probe: job.ProbeKey, Metrics: m}
	if e.Kernel == "" && job.Kernel != nil {
		e.Kernel = job.Kernel.Name
	}
	data, err := json.MarshalIndent(&e, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(c.dir, key+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	c.mu.Lock()
	c.memo[key] = m
	c.mu.Unlock()
	return nil
}

// Len counts the entries on disk (for tooling and tests).
func (c *Cache) Len() (int, error) {
	n := 0
	err := filepath.WalkDir(c.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && filepath.Ext(path) == ".json" {
			n++
		}
		return nil
	})
	return n, err
}
