package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	salam "gosalam"
)

// Store is the durable result store a campaign reads and writes: a
// content-addressed map from job key (JobKey) to metrics. Implementations
// must be safe for concurrent use by campaign workers, and — because one
// store directory may be shared by several processes (sharded salam-serve
// instances splitting a sweep) — a Put must never expose a torn entry to a
// concurrent Get in another process. Get treats anything unreadable as a
// miss: the job simply re-simulates, determinism makes the rewrite
// byte-identical.
type Store interface {
	// Get returns the stored metrics for key, or false on a miss.
	Get(key string) (*Metrics, bool)
	// Put durably stores metrics under key. job is the spec that produced
	// them, recorded for debuggability.
	Put(key string, job Job, m *Metrics) error
}

// cacheSchema versions the on-disk entry layout; bump to invalidate every
// entry after an incompatible Metrics change.
//
// v2: RunOpts grew the Sample field (interval sampling) and Metrics grew
// Estimated/ErrorBound, so sampled and exact runs of the same point key —
// and cache — separately.
const cacheSchema = 2

// keyDoc is the canonical content of a cache key. encoding/json writes map
// keys in sorted order, so marshaling this struct is a canonical encoding:
// equal jobs hash equal, regardless of map iteration order.
type keyDoc struct {
	Schema int           `json:"schema"`
	Kernel string        `json:"kernel"`
	Probe  string        `json:"probe,omitempty"`
	Opts   salam.RunOpts `json:"opts"`
}

// JobKey returns the job's content-addressed cache key: the hex SHA-256 of
// the canonical JSON of kernel identity + probe version + run options.
func JobKey(job Job) (string, error) {
	name := job.KernelKey
	if name == "" && job.Kernel != nil {
		name = job.Kernel.Name
	}
	if name == "" {
		return "", errors.New("job has neither KernelKey nor Kernel")
	}
	doc, err := json.Marshal(keyDoc{
		Schema: cacheSchema,
		Kernel: name,
		Probe:  job.ProbeKey,
		Opts:   job.Opts,
	})
	if err != nil {
		return "", fmt.Errorf("canonicalizing job: %w", err)
	}
	sum := sha256.Sum256(doc)
	return hex.EncodeToString(sum[:]), nil
}

// entry is one cache file: the key document for debuggability plus the
// stored metrics.
type entry struct {
	ID      string   `json:"id"`
	Kernel  string   `json:"kernel"`
	Probe   string   `json:"probe,omitempty"`
	Metrics *Metrics `json:"metrics"`
}

// Cache is the filesystem Store: a directory-backed, content-addressed
// store of job metrics. One JSON file per key keeps concurrent access
// trivial — reads of distinct files never conflict, and writes go through
// a temp file + os.Rename (atomic within a filesystem), so neither a
// crashed run nor a concurrent reader in another process can ever observe
// a torn entry. Corrupt, truncated, or otherwise unreadable entries are
// counted and treated as misses, never errors: the worst outcome of a
// damaged store is a redundant (and byte-identical) re-simulation. A small
// in-memory memo avoids re-reading files within a campaign; it is guarded
// for concurrent workers.
type Cache struct {
	dir string

	// corrupt counts Gets that found an entry file but could not use it
	// (unreadable, torn, or invalid JSON) — each one is served as a miss.
	corrupt atomic.Uint64

	mu   sync.Mutex
	memo map[string]*Metrics
}

// Cache implements Store.
var _ Store = (*Cache)(nil)

// OpenCache creates dir if needed and returns a cache over it.
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: opening cache: %w", err)
	}
	return &Cache{dir: dir, memo: map[string]*Metrics{}}, nil
}

// Dir returns the backing directory.
func (c *Cache) Dir() string { return c.dir }

// CorruptMisses reports how many Gets found an entry file but had to treat
// it as a miss because it was unreadable, truncated, or invalid JSON.
func (c *Cache) CorruptMisses() uint64 { return c.corrupt.Load() }

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// Get returns the stored metrics for key, or false on a miss. Unreadable
// or corrupt entries count as misses (the job just re-simulates); they are
// tallied in CorruptMisses so operators can tell a damaged store from a
// cold one.
func (c *Cache) Get(key string) (*Metrics, bool) {
	c.mu.Lock()
	m, ok := c.memo[key]
	c.mu.Unlock()
	if ok {
		return m, true
	}
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			c.corrupt.Add(1)
		}
		return nil, false
	}
	var e entry
	if err := json.Unmarshal(data, &e); err != nil || e.Metrics == nil {
		c.corrupt.Add(1)
		return nil, false
	}
	c.mu.Lock()
	c.memo[key] = e.Metrics
	c.mu.Unlock()
	return e.Metrics, true
}

// Put stores metrics under key atomically (temp file + rename).
func (c *Cache) Put(key string, job Job, m *Metrics) error {
	e := entry{ID: job.ID, Kernel: job.KernelKey, Probe: job.ProbeKey, Metrics: m}
	if e.Kernel == "" && job.Kernel != nil {
		e.Kernel = job.Kernel.Name
	}
	data, err := json.MarshalIndent(&e, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(c.dir, key+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	c.mu.Lock()
	c.memo[key] = m
	c.mu.Unlock()
	return nil
}

// Len counts the entries on disk (for tooling and tests).
func (c *Cache) Len() (int, error) {
	n := 0
	err := filepath.WalkDir(c.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && filepath.Ext(path) == ".json" {
			n++
		}
		return nil
	})
	return n, err
}
