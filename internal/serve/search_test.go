package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	salam "gosalam"
	"gosalam/internal/campaign"
	"gosalam/internal/search"
	"gosalam/kernels"
)

// fakeSim is the deterministic instant simulation the search tests inject
// (cycles = 100 + ports): the serve-side frontier must match an in-process
// search.Run with the same runner, byte for byte.
func fakeSim(_ context.Context, _ *kernels.Kernel, opts salam.RunOpts) (*salam.Result, error) {
	return &salam.Result{Cycles: uint64(100 + opts.Accel.ReadPorts)}, nil
}

func fakeSearchRunner(cfg *search.Config) { cfg.Runner = fakeSim }

// blockingSearchRunner blocks every search simulation until release closes.
func blockingSearchRunner(release <-chan struct{}) func(*search.Config) {
	return func(cfg *search.Config) {
		cfg.Runner = func(ctx context.Context, k *kernels.Kernel, opts salam.RunOpts) (*salam.Result, error) {
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return fakeSim(ctx, k, opts)
		}
	}
}

func postSearch(t *testing.T, ts *httptest.Server, space campaign.Space, tenant string) *http.Response {
	t.Helper()
	body, err := json.Marshal(space)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", ts.URL+"/v1/searches", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-API-Key", tenant)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func submitSearch(t *testing.T, ts *httptest.Server, space campaign.Space) searchSubmitResponse {
	t.Helper()
	resp := postSearch(t, ts, space, "")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("search submit: HTTP %d: %v", resp.StatusCode, e)
	}
	var sr searchSubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	return sr
}

// TestSearchSubmitValidation: malformed spaces are 400s (the Validate
// path), and the admission gate is the COLLAPSED size — a raw point count
// far beyond MaxPoints is admissible as a search when it collapses, while
// the same space stays a 413 as a sweep.
func TestSearchSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxPoints: 4, testHook: fakeRunner, searchHook: fakeSearchRunner})

	if r := postSearch(t, ts, campaign.Space{Kernel: "no-such-kernel"}, ""); r.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown kernel: HTTP %d", r.StatusCode)
	}
	if r := postSearch(t, ts, campaign.Space{Kernel: "gemm", Ports: []int{2, 2}}, ""); r.StatusCode != http.StatusBadRequest {
		t.Fatalf("duplicate ports: HTTP %d", r.StatusCode)
	}
	if r := postSearch(t, ts, campaign.Space{Kernel: "gemm", Ports: []int{2}, PortRange: &campaign.Range{Min: 1, Max: 4}}, ""); r.StatusCode != http.StatusBadRequest {
		t.Fatalf("list+range conflict: HTTP %d", r.StatusCode)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/searches", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage body: HTTP %d", resp.StatusCode)
	}

	// Five distinct port values never collapse: 413 on both endpoints.
	wide := campaign.Space{Kernel: "gemm", Ports: []int{1, 2, 3, 4, 5}}
	if r := postSearch(t, ts, wide, ""); r.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("uncollapsible oversized search: HTTP %d", r.StatusCode)
	}

	// A 1000-point FU range collapses to a handful of equivalence classes:
	// too big to sweep (413), fine to search (202).
	ranged := campaign.Space{Kernel: "gemm", Ports: []int{2}, FURange: &campaign.Range{Min: 1, Max: 1000}}
	if r := postSpace(t, ts, ranged, ""); r.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("ranged space as sweep: HTTP %d, want 413", r.StatusCode)
	}
	sr := submitSearch(t, ts, ranged)
	if sr.Points != 1000 || sr.Classes >= sr.Points || sr.Classes > 4 {
		t.Fatalf("ranged submit response %+v: want 1000 raw points collapsed to <=4 classes", sr)
	}
	if !strings.HasPrefix(sr.ID, "s") {
		t.Fatalf("search ID %q does not use the search namespace", sr.ID)
	}
}

// TestSearchLifecycle: submit, status while running (frontier 409), then
// the terminal snapshot and a frontier CSV byte-identical to an in-process
// search.Run over the same space — the service adds admission and HTTP,
// never a different answer.
func TestSearchLifecycle(t *testing.T) {
	release := make(chan struct{})
	space := campaign.Space{Kernel: "gemm", Ports: []int{2, 4, 8, 16}}
	s, ts := newTestServer(t, Config{Workers: 2, searchHook: blockingSearchRunner(release)})

	sr := submitSearch(t, ts, space)
	if sr.Points != 4 || sr.Frontier != "/v1/searches/"+sr.ID+"/frontier" {
		t.Fatalf("submit response %+v", sr)
	}
	waitState(t, s, sr.ID, stateRunning)

	// The frontier is not served before the search certifies it.
	if r, _ := ts.Client().Get(ts.URL + sr.Frontier); r.StatusCode != http.StatusConflict {
		t.Fatalf("frontier while running: HTTP %d, want 409", r.StatusCode)
	}
	// The two ID namespaces never cross-resolve.
	if r, _ := ts.Client().Get(ts.URL + "/v1/campaigns/" + sr.ID); r.StatusCode != http.StatusNotFound {
		t.Fatalf("search ID resolved as campaign: HTTP %d", r.StatusCode)
	}
	if r, _ := ts.Client().Get(ts.URL + "/v1/searches/nope"); r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown search: HTTP %d", r.StatusCode)
	}

	close(release)
	waitState(t, s, sr.ID, stateDone)

	resp, err := ts.Client().Get(ts.URL + "/v1/searches/" + sr.ID)
	if err != nil {
		t.Fatal(err)
	}
	var snap snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Kind != "search" || snap.State != stateDone || snap.Simulated == 0 || snap.FrontierSize == 0 {
		t.Fatalf("terminal snapshot %+v", snap)
	}
	if snap.Evaluated != snap.Simulated+snap.Cached {
		t.Fatalf("snapshot accounting: evaluated %d != simulated %d + cached %d", snap.Evaluated, snap.Simulated, snap.Cached)
	}

	resp, err = ts.Client().Get(ts.URL + sr.Frontier)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != "text/csv" {
		t.Fatalf("frontier: HTTP %d, Content-Type %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	ref, err := search.Run(context.Background(), search.Config{Space: space, Runner: fakeSim})
	if err != nil {
		t.Fatal(err)
	}
	if want := search.FrontierCSV(space.Kernel, ref.Frontier); string(got) != want {
		t.Fatalf("served frontier differs from in-process search:\nserved:\n%s\nlocal:\n%s", got, want)
	}

	// The search shows up in its own listing and only there.
	resp, err = ts.Client().Get(ts.URL + "/v1/searches")
	if err != nil {
		t.Fatal(err)
	}
	var listed struct {
		Searches []snapshot `json:"searches"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listed); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(listed.Searches) != 1 || listed.Searches[0].ID != sr.ID {
		t.Fatalf("search listing %+v", listed)
	}
	resp, err = ts.Client().Get(ts.URL + "/v1/campaigns")
	if err != nil {
		t.Fatal(err)
	}
	var camps struct {
		Campaigns []snapshot `json:"campaigns"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&camps); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(camps.Campaigns) != 0 {
		t.Fatalf("campaign listing leaked the search: %+v", camps.Campaigns)
	}
}

// TestSearchObjectivePassthrough: a Space carrying an objective and an
// area cap survives the HTTP round trip intact — the served result is
// byte-identical to an in-process single-objective search, and a bad
// objective spelling is rejected at admission.
func TestSearchObjectivePassthrough(t *testing.T) {
	space := campaign.Space{Kernel: "gemm", Ports: []int{2, 4, 8, 16}, Objective: "edp"}
	s, ts := newTestServer(t, Config{Workers: 2, searchHook: fakeSearchRunner})

	sr := submitSearch(t, ts, space)
	waitState(t, s, sr.ID, stateDone)
	resp, err := ts.Client().Get(ts.URL + sr.Frontier)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := search.Run(context.Background(), search.Config{Space: space, Runner: fakeSim})
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.Frontier) != 1 {
		t.Fatalf("reference EDP search returned %d points", len(ref.Frontier))
	}
	if want := search.FrontierCSV(space.Kernel, ref.Frontier); string(got) != want {
		t.Fatalf("served EDP result differs from in-process search:\nserved:\n%s\nlocal:\n%s", got, want)
	}

	if r := postSearch(t, ts, campaign.Space{Kernel: "gemm", Ports: []int{2}, Objective: "fastest"}, ""); r.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad objective: HTTP %d, want 400", r.StatusCode)
	}
	if r := postSearch(t, ts, campaign.Space{Kernel: "gemm", Ports: []int{2}, MaxAreaUM2: -1}, ""); r.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative area cap: HTTP %d, want 400", r.StatusCode)
	}
}

// TestSearchShardedRejected: a sharded server partitions fixed job lists;
// it cannot host a global wave schedule, so searches are 501s.
func TestSearchShardedRejected(t *testing.T) {
	store, err := campaign.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Store: store, Shard: campaign.Shard{Index: 0, Count: 2}})
	r := postSearch(t, ts, campaign.Space{Kernel: "gemm", Ports: []int{2}}, "")
	defer r.Body.Close()
	if r.StatusCode != http.StatusNotImplemented {
		t.Fatalf("sharded search submit: HTTP %d, want 501", r.StatusCode)
	}
}
