package serve

import (
	"context"
	"encoding/json"
	"sync"

	"gosalam/internal/campaign"
	"gosalam/internal/search"
)

// Campaign states.
const (
	stateQueued   = "queued"
	stateRunning  = "running"
	stateDone     = "done"
	stateCanceled = "canceled"
)

// Campaign is one submitted sweep's server-side state: the validated job
// list, the growing row log the results stream replays, and completion
// counters. Rows land in submission order (campaign.OrderedStream), so a
// stream resumed at ?from=i is always byte-identical to the suffix of a
// stream read from the start — the server-side face of the engine's
// worker-count-invariant output guarantee.
type Campaign struct {
	ID     string
	Tenant string
	Space  campaign.Space

	jobs []campaign.Job

	// isSearch marks a branch-and-bound search submission (POST
	// /v1/searches): no job list, no row stream — the runner executes
	// search.Run and parks the certified result in searchRes. points is
	// the admission debt either way (enumerated points for a sweep,
	// collapsed leaves for a search).
	isSearch bool
	points   int

	mu        sync.Mutex
	wake      chan struct{} // closed+replaced on every append/state change
	state     string
	rows      [][]byte // marshaled NDJSON lines, submission order
	done      int      // outcomes delivered (completion order, for progress)
	fail      string   // terminal failure reason (stateCanceled)
	searchRes *search.Result

	simulated, cached, failed, pruned, skipped int
}

func newCampaign(id, tenant string, space campaign.Space, jobs []campaign.Job) *Campaign {
	return &Campaign{
		ID:     id,
		Tenant: tenant,
		Space:  space,
		jobs:   jobs,
		points: len(jobs),
		wake:   make(chan struct{}),
		state:  stateQueued,
	}
}

// terminal reports whether the campaign will never append another row.
func (c *Campaign) terminal() bool {
	return c.state == stateDone || c.state == stateCanceled
}

// broadcast wakes every waiting stream. Callers hold c.mu.
func (c *Campaign) broadcast() {
	close(c.wake)
	c.wake = make(chan struct{})
}

// appendRow marshals one submission-ordered outcome onto the row log.
func (c *Campaign) appendRow(o campaign.Outcome) {
	row := campaign.RowOf(o)
	data, err := json.Marshal(row)
	if err != nil {
		// A row that cannot marshal (out-of-range float in a probe) must
		// not stall the stream: degrade to an error row for the point.
		data, _ = json.Marshal(campaign.Row{
			Index: o.Index, ID: o.Job.ID, Status: campaign.StatusError,
			Error: "row marshal: " + err.Error(),
		})
	}
	c.mu.Lock()
	c.rows = append(c.rows, append(data, '\n'))
	c.broadcast()
	c.mu.Unlock()
}

// observe tracks completion-order progress. Runs on the campaign's
// collector goroutine.
func (c *Campaign) observe(o campaign.Outcome) {
	c.mu.Lock()
	c.done++
	switch {
	case o.Pruned:
		c.pruned++
	case o.Skipped:
		c.skipped++
	case o.Err != nil:
		c.failed++
	case o.Cached:
		c.cached++
	default:
		c.simulated++
	}
	c.mu.Unlock()
}

// progressReporter adapts observe onto the campaign Reporter interface as
// the inner reporter behind the ordered stream.
type progressReporter struct{ c *Campaign }

func (p progressReporter) Start(int)                            {}
func (p progressReporter) JobDone(o campaign.Outcome, _, _ int) { p.c.observe(o) }
func (p progressReporter) Warn(string)                          {}
func (p progressReporter) Finish()                              {}

// campaignContext builds one run's context: the configured wall-clock
// deadline, or background when none is set.
func (s *Server) campaignContext() (context.Context, context.CancelFunc) {
	if s.cfg.Deadline > 0 {
		return context.WithTimeout(context.Background(), s.cfg.Deadline)
	}
	return context.Background(), func() {}
}

// runCampaign executes one campaign on this runner goroutine: the queued →
// running → done lifecycle around one campaign.Run call wired into the
// shared store, session pool, shard filter, and drain channel.
func (s *Server) runCampaign(c *Campaign) {
	c.mu.Lock()
	c.state = stateRunning
	c.broadcast()
	c.mu.Unlock()

	ctx, cancel := s.campaignContext()
	defer cancel()
	stats := statGroup(c.ID)
	cfg := campaign.Config{
		Workers:  s.cfg.Workers,
		Cache:    s.cfg.Store,
		Sessions: s.sessions,
		Stats:    stats,
		Progress: campaign.NewOrderedStream(c.appendRow, progressReporter{c}),
		Drain:    s.drain,
	}
	if s.cfg.Shard.Count > 1 {
		shard := s.cfg.Shard
		cfg.Shard = &shard
	}
	if s.cfg.testHook != nil {
		s.cfg.testHook(&cfg)
	}
	campaign.Run(ctx, cfg, c.jobs)

	// Fold the campaign's sim-stats counters into the server totals; the
	// per-campaign group dies with the campaign, the totals feed /statsz.
	if v, ok := stats.Lookup(c.ID + ".campaign.jobs_simulated"); ok {
		s.stats.pointsSimulated.Add(uint64(v))
	}
	if v, ok := stats.Lookup(c.ID + ".campaign.jobs_cached"); ok {
		s.stats.pointsCached.Add(uint64(v))
	}
	if v, ok := stats.Lookup(c.ID + ".campaign.jobs_failed"); ok {
		s.stats.pointsFailed.Add(uint64(v))
	}
	if v, ok := stats.Lookup(c.ID + ".campaign.points_pruned"); ok {
		s.stats.pointsPruned.Add(uint64(v))
	}
	if v, ok := stats.Lookup(c.ID + ".campaign.points_skipped"); ok {
		s.stats.pointsSkipped.Add(uint64(v))
	}
	s.finishCampaign(c, stateDone, "")
}

// finishCampaign moves a campaign to a terminal state and returns its
// admission debt to the tenant.
func (s *Server) finishCampaign(c *Campaign, state, reason string) {
	c.mu.Lock()
	if c.terminal() {
		c.mu.Unlock()
		return
	}
	c.state = state
	c.fail = reason
	c.broadcast()
	c.mu.Unlock()
	switch state {
	case stateDone:
		s.stats.campaignsDone.Add(1)
	case stateCanceled:
		s.stats.campaignsCanceled.Add(1)
	}
	s.releaseTenant(c.Tenant, c.points)
}

// snapshot is the status view of a campaign or search. Search snapshots
// carry the certified result's accounting once terminal.
type snapshot struct {
	ID        string `json:"id"`
	Kind      string `json:"kind"`
	State     string `json:"state"`
	Points    int    `json:"points"`
	Emitted   int    `json:"emitted,omitempty"`
	Done      int    `json:"done,omitempty"`
	Simulated int    `json:"simulated"`
	Cached    int    `json:"cached"`
	Failed    int    `json:"failed,omitempty"`
	Pruned    int    `json:"pruned,omitempty"`
	Skipped   int    `json:"skipped,omitempty"`
	Reason    string `json:"reason,omitempty"`

	// Search-only accounting (see search.Result).
	Classes         int  `json:"classes,omitempty"`
	Evaluated       int  `json:"evaluated,omitempty"`
	ProxyRuns       int  `json:"proxy_runs,omitempty"`
	PrunedPoints    int  `json:"pruned_points,omitempty"`
	CollapsedPoints int  `json:"collapsed_points,omitempty"`
	Waves           int  `json:"waves,omitempty"`
	FrontierSize    int  `json:"frontier_size,omitempty"`
	Drained         bool `json:"drained,omitempty"`
}

func (c *Campaign) snapshot() snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	kind := "campaign"
	if c.isSearch {
		kind = "search"
	}
	sn := snapshot{
		ID:        c.ID,
		Kind:      kind,
		State:     c.state,
		Points:    c.points,
		Emitted:   len(c.rows),
		Done:      c.done,
		Simulated: c.simulated,
		Cached:    c.cached,
		Failed:    c.failed,
		Pruned:    c.pruned,
		Skipped:   c.skipped,
		Reason:    c.fail,
	}
	if res := c.searchRes; res != nil {
		sn.Points = res.Points
		sn.Classes = res.Classes
		sn.Simulated = res.Simulated
		sn.Cached = res.CacheHits
		sn.Evaluated = res.Evaluated
		sn.ProxyRuns = res.ProxyRuns
		sn.PrunedPoints = res.PrunedPoints
		sn.CollapsedPoints = res.CollapsedPoints
		sn.Waves = res.Waves
		sn.FrontierSize = len(res.Frontier)
		sn.Drained = res.Drained
	}
	return sn
}
