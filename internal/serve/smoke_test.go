package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"gosalam/internal/campaign"
)

// TestServeSmoke is the end-to-end acceptance run behind `make serve-smoke`:
// two salam-serve instances over real HTTP, configured as shards 0/2 and
// 1/2 of one shared store, each receive the gemm_dse design space. Every
// point must be simulated by exactly one shard (zero duplicated work,
// verified through /statsz), and the merged store contents must be
// byte-identical to a single-process campaign.Run over the same space.
func TestServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("real two-shard sweep; skipped in -short")
	}
	storeDir := t.TempDir()
	space := campaign.Space{
		Kernel: "gemm-tree",
		FU:     []int{2, 4, 8, 16},
		Ports:  []int{2, 4, 8, 16},
	}
	_, jobs, err := space.Build()
	if err != nil {
		t.Fatal(err)
	}

	// Expected ownership per shard, from the same pure partition function
	// the servers use.
	owned := [2]int{}
	for _, j := range jobs {
		key, err := campaign.JobKey(j)
		if err != nil {
			t.Fatal(err)
		}
		owned[campaign.ShardOf(key, 2)]++
	}
	if owned[0] == 0 || owned[1] == 0 {
		t.Fatalf("degenerate partition %v: the space no longer spans both shards", owned)
	}

	// Two servers, each with its own store handle on the shared directory —
	// the in-process stand-in for two salam-serve processes.
	var tss [2]*httptest.Server
	for i := range tss {
		store, err := campaign.OpenCache(storeDir)
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewServer(Config{
			Store:   store,
			Shard:   campaign.Shard{Index: i, Count: 2},
			Workers: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s)
		t.Cleanup(func() {
			s.Drain()
			s.Wait()
			ts.Close()
		})
		tss[i] = ts
	}

	// Submit the same space to both shards and stream both to completion.
	var streamed [2][]string
	for i, ts := range tss {
		sr := submit(t, ts, space, "smoke")
		if sr.Points != len(jobs) {
			t.Fatalf("shard %d accepted %d points, want %d", i, sr.Points, len(jobs))
		}
		streamed[i] = streamRows(t, ts, sr.ID, 0)
		if len(streamed[i]) != len(jobs) {
			t.Fatalf("shard %d streamed %d rows, want %d", i, len(streamed[i]), len(jobs))
		}
	}

	// Zero duplicated simulation: each shard simulated exactly its owned
	// subset and skipped the rest.
	totalSim := uint64(0)
	for i, ts := range tss {
		resp, err := ts.Client().Get(ts.URL + "/statsz")
		if err != nil {
			t.Fatal(err)
		}
		var stats statszResponse
		err = json.NewDecoder(resp.Body).Decode(&stats)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		sim, skip := stats.Serve["points_simulated"], stats.Serve["points_skipped"]
		if sim != uint64(owned[i]) {
			t.Errorf("shard %d simulated %d points, owns %d", i, sim, owned[i])
		}
		if skip != uint64(len(jobs)-owned[i]) {
			t.Errorf("shard %d skipped %d points, want %d", i, skip, len(jobs)-owned[i])
		}
		if stats.Serve["points_failed"] != 0 || stats.Serve["points_cached"] != 0 {
			t.Errorf("shard %d: failed=%d cached=%d, want all fresh successes",
				i, stats.Serve["points_failed"], stats.Serve["points_cached"])
		}
		if stats.Shard.Index != i || stats.Shard.Count != 2 {
			t.Errorf("shard %d reports identity %d/%d", i, stats.Shard.Index, stats.Shard.Count)
		}
		totalSim += sim
	}
	if totalSim != uint64(len(jobs)) {
		t.Fatalf("shards simulated %d points in total, want exactly %d", totalSim, len(jobs))
	}

	// Per-shard streams: owned points are ok rows, foreign points skipped.
	for i := range tss {
		var ok, skipped int
		for n, line := range streamed[i] {
			var row campaign.Row
			if err := json.Unmarshal([]byte(line), &row); err != nil {
				t.Fatalf("shard %d row %d: %v", i, n, err)
			}
			switch row.Status {
			case campaign.StatusOK:
				ok++
			case campaign.StatusSkipped:
				skipped++
			default:
				t.Fatalf("shard %d row %d unexpected status %q", i, n, row.Status)
			}
		}
		if ok != owned[i] || skipped != len(jobs)-owned[i] {
			t.Fatalf("shard %d stream: %d ok + %d skipped, want %d + %d",
				i, ok, skipped, owned[i], len(jobs)-owned[i])
		}
	}

	// Merge the shared store and compare against a single-process,
	// cache-free campaign.Run — the two must render byte-identically.
	mergeStore, err := campaign.OpenCache(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	var merged bytes.Buffer
	missing, err := Merge(space, mergeStore, &merged)
	if err != nil {
		t.Fatal(err)
	}
	if missing != 0 {
		t.Fatalf("merge reports %d missing points", missing)
	}

	outcomes := campaign.Run(context.Background(), campaign.Config{Workers: 4}, jobs)
	var local bytes.Buffer
	if err := campaign.WriteRows(&local, campaign.Rows(outcomes)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(merged.Bytes(), local.Bytes()) {
		t.Fatalf("merged store differs from the single-process run:\n%s",
			firstDiff(merged.String(), local.String()))
	}
}

// firstDiff returns the first differing line pair for a readable failure.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  merged: %s\n  local:  %s", i, al[i], bl[i])
		}
	}
	return "length mismatch"
}
