// Package serve is salam-serve's engine: a long-running, multi-tenant
// simulation-campaign service over the campaign package. It promotes the
// in-process sweep pool into a daemon with three layers:
//
//   - an API layer (api.go): POST /v1/campaigns submits a design-space
//     spec, GET /v1/campaigns/{id}/results streams per-point rows as
//     NDJSON in deterministic submission order (resumable via ?from=idx),
//     GET /v1/campaigns/{id} reports status, and /healthz + /statsz expose
//     liveness and counters;
//   - an admission/fairness layer (admission.go): a bounded submission
//     queue with load shedding (429 + Retry-After), per-tenant concurrent-
//     campaign and queued-point quotas keyed by API key, per-campaign
//     deadlines on the campaign engine's ctx isolation, and graceful drain
//     (finish and persist in-flight points, reject new work);
//   - a durable shared result layer: every simulated point persists to a
//     campaign.Store, and a server configured as shard k of n claims only
//     the points whose content-addressed key maps to k, so several
//     salam-serve processes pointed at one store split a sweep with zero
//     duplicated simulation and Merge reassembles byte-identical results.
//
// All campaigns multiplex one warm-start salam.SessionPool and the
// process-wide elaboration cache, so a busy server amortizes static
// elaboration across tenants exactly like a long DSE sweep does.
package serve

import (
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	salam "gosalam"
	"gosalam/internal/campaign"
	"gosalam/internal/search"
	"gosalam/internal/sim"
)

// Config parameterizes a Server. Zero values choose serving-safe defaults.
type Config struct {
	// Store is the durable result store campaigns read and write. Required
	// when Shard.Count > 1 (shards rendezvous through it); optional
	// otherwise (nil disables persistence).
	Store campaign.Store
	// Shard names this process's slice of every submitted campaign.
	// The zero value (unsharded) claims all points.
	Shard campaign.Shard
	// Workers sizes each campaign's worker pool (<= 0 = GOMAXPROCS).
	Workers int
	// MaxActive bounds concurrently running campaigns (default 2). Each
	// active campaign runs its own worker pool; keep MaxActive*Workers
	// near the core count.
	MaxActive int
	// QueueDepth bounds the submission queue (default 16). A full queue
	// sheds load with 429 + Retry-After instead of growing without bound.
	QueueDepth int
	// MaxPoints bounds one campaign's design-space size (default 4096).
	MaxPoints int
	// TenantActive bounds one tenant's queued+running campaigns
	// (default 4).
	TenantActive int
	// TenantPoints bounds one tenant's queued+running points
	// (default 16384).
	TenantPoints int
	// Deadline bounds each campaign's wall-clock run (0 = no deadline);
	// it rides the campaign engine's per-run context isolation.
	Deadline time.Duration
	// Sessions is the shared warm-start pool (nil = a new pool).
	Sessions *salam.SessionPool

	// testHook, when non-nil, edits each campaign's engine config just
	// before Run — in-package tests inject counting or blocking runners.
	testHook func(*campaign.Config)
	// searchHook is testHook's twin for search submissions.
	searchHook func(*search.Config)
}

func (c Config) maxActive() int {
	if c.MaxActive > 0 {
		return c.MaxActive
	}
	return 2
}

func (c Config) queueDepth() int {
	if c.QueueDepth > 0 {
		return c.QueueDepth
	}
	return 16
}

func (c Config) maxPoints() int {
	if c.MaxPoints > 0 {
		return c.MaxPoints
	}
	return 4096
}

func (c Config) tenantActive() int {
	if c.TenantActive > 0 {
		return c.TenantActive
	}
	return 4
}

func (c Config) tenantPoints() int {
	if c.TenantPoints > 0 {
		return c.TenantPoints
	}
	return 16384
}

// counters is the server-wide stat set. Everything is atomic: admission
// updates arrive from HTTP handler goroutines, campaign totals from runner
// goroutines, and /statsz reads from yet another.
type counters struct {
	submitted         atomic.Uint64
	accepted          atomic.Uint64
	rejectedInvalid   atomic.Uint64
	rejectedQueueFull atomic.Uint64
	rejectedQuota     atomic.Uint64
	rejectedDraining  atomic.Uint64
	campaignsDone     atomic.Uint64
	campaignsCanceled atomic.Uint64
	pointsAccepted    atomic.Uint64
	pointsSimulated   atomic.Uint64
	pointsCached      atomic.Uint64
	pointsFailed      atomic.Uint64
	pointsPruned      atomic.Uint64
	pointsSkipped     atomic.Uint64
}

// Server is one salam-serve process: HTTP handlers in front, a bounded
// queue in the middle, MaxActive campaign runners behind it, all sharing
// one session pool and one result store.
type Server struct {
	cfg      Config
	sessions *salam.SessionPool
	mux      *http.ServeMux
	stats    counters

	drain     chan struct{} // closed by Drain: reject new work, finish in-flight
	drainOnce sync.Once
	queue     chan *Campaign
	runners   sync.WaitGroup

	mu        sync.Mutex
	campaigns map[string]*Campaign
	order     []string // campaign IDs in submission order (stable listings)
	tenants   map[string]*tenant
	nextID    uint64
}

// NewServer validates cfg, starts the campaign runners, and returns the
// server. Call Drain then Wait for a graceful stop.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Shard.Count > 1 {
		if !cfg.Shard.Valid() {
			return nil, fmt.Errorf("serve: invalid shard %d/%d", cfg.Shard.Index, cfg.Shard.Count)
		}
		if cfg.Store == nil {
			return nil, errors.New("serve: sharding requires a shared store (shards rendezvous through it)")
		}
	}
	s := &Server{
		cfg:       cfg,
		sessions:  cfg.Sessions,
		drain:     make(chan struct{}),
		queue:     make(chan *Campaign, cfg.queueDepth()),
		campaigns: map[string]*Campaign{},
		tenants:   map[string]*tenant{},
	}
	if s.sessions == nil {
		s.sessions = salam.NewSessionPool()
	}
	s.mux = s.routes()
	for i := 0; i < cfg.maxActive(); i++ {
		s.runners.Add(1)
		go s.runner() //salam:vet:ok — the campaign-runner pool is the sanctioned concurrency, mirroring the campaign worker pool
	}
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool {
	select {
	case <-s.drain:
		return true
	default:
		return false
	}
}

// Drain begins a graceful stop: new submissions are rejected, queued
// campaigns that never started are canceled, running campaigns stop
// feeding new points while their in-flight points finish and persist
// (campaign.Config.Drain). Safe to call more than once.
func (s *Server) Drain() {
	s.drainOnce.Do(func() { close(s.drain) })
}

// Wait blocks until every runner has stopped — meaningful after Drain.
// Queued campaigns the runners never picked up are canceled here.
func (s *Server) Wait() {
	s.runners.Wait()
	for {
		select {
		case c := <-s.queue:
			s.finishCampaign(c, stateCanceled, "server drained before the campaign started")
		default:
			return
		}
	}
}

// runner drains the submission queue one campaign at a time. On drain it
// cancels what remains queued and exits; the campaign it is mid-way
// through finishes its in-flight points first (soft stop).
func (s *Server) runner() {
	defer s.runners.Done()
	for {
		// Check drain first so a closed drain channel wins over a non-empty
		// queue even though select picks ready cases at random.
		select {
		case <-s.drain:
			for {
				select {
				case c := <-s.queue:
					s.finishCampaign(c, stateCanceled, "server drained before the campaign started")
				default:
					return
				}
			}
		default:
		}
		select {
		case <-s.drain:
			continue // top of loop empties the queue and exits
		case c := <-s.queue:
			if c.isSearch {
				s.runSearch(c)
			} else {
				s.runCampaign(c)
			}
		}
	}
}

// statGroup builds the per-campaign sim-stats root the campaign engine
// fills; its counters are read back by Lookup in finishCampaign.
func statGroup(id string) *sim.Group { return sim.NewGroup(id) }
