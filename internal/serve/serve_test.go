package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	salam "gosalam"
	"gosalam/internal/campaign"
	"gosalam/kernels"
)

// fakeRunner injects an instant fake simulation (cycles = 100 + ports) so
// API tests don't pay for real simulations.
func fakeRunner(cfg *campaign.Config) {
	cfg.Runner = func(_ context.Context, _ *kernels.Kernel, opts salam.RunOpts) (*salam.Result, error) {
		return &salam.Result{Cycles: uint64(100 + opts.Accel.ReadPorts)}, nil
	}
}

// blockingRunner blocks every simulation until release closes.
func blockingRunner(release <-chan struct{}) func(*campaign.Config) {
	return func(cfg *campaign.Config) {
		cfg.Runner = func(ctx context.Context, _ *kernels.Kernel, opts salam.RunOpts) (*salam.Result, error) {
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return &salam.Result{Cycles: uint64(100 + opts.Accel.ReadPorts)}, nil
		}
	}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		s.Drain()
		s.Wait()
		ts.Close()
	})
	return s, ts
}

func submit(t *testing.T, ts *httptest.Server, space campaign.Space, tenant string) submitResponse {
	t.Helper()
	resp := postSpace(t, ts, space, tenant)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("submit: HTTP %d: %v", resp.StatusCode, e)
	}
	var sr submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	return sr
}

func postSpace(t *testing.T, ts *httptest.Server, space campaign.Space, tenant string) *http.Response {
	t.Helper()
	body, err := json.Marshal(space)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", ts.URL+"/v1/campaigns", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-API-Key", tenant)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// streamRows reads a campaign's full NDJSON stream starting at from.
func streamRows(t *testing.T, ts *httptest.Server, id string, from int) []string {
	t.Helper()
	resp, err := ts.Client().Get(fmt.Sprintf("%s/v1/campaigns/%s/results?from=%d", ts.URL, id, from))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("results content type %q", ct)
	}
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

// TestSubmitStreamStatus: the basic lifecycle — submit, stream every row
// in submission order, resume mid-stream byte-identically, read status.
func TestSubmitStreamStatus(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, testHook: fakeRunner})
	space := campaign.Space{Kernel: "gemm", Ports: []int{2, 4, 8, 16}}
	sr := submit(t, ts, space, "")
	if sr.Points != 4 || sr.ID == "" {
		t.Fatalf("submit response %+v", sr)
	}

	lines := streamRows(t, ts, sr.ID, 0)
	if len(lines) != 4 {
		t.Fatalf("streamed %d rows, want 4", len(lines))
	}
	for i, line := range lines {
		var row campaign.Row
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		if row.Index != i || row.Status != campaign.StatusOK || row.Metrics == nil {
			t.Fatalf("row %d out of order or not ok: %s", i, line)
		}
	}

	// Resume from index 2: exactly the suffix, byte-identical.
	tail := streamRows(t, ts, sr.ID, 2)
	if len(tail) != 2 || tail[0] != lines[2] || tail[1] != lines[3] {
		t.Fatalf("resumed stream differs:\nfull tail %q\nresume    %q", lines[2:], tail)
	}

	resp, err := ts.Client().Get(ts.URL + "/v1/campaigns/" + sr.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.State != stateDone || snap.Done != 4 || snap.Simulated != 4 {
		t.Fatalf("status %+v", snap)
	}

	// Unknown campaign and bad from are client errors.
	if r, _ := ts.Client().Get(ts.URL + "/v1/campaigns/nope"); r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown campaign: HTTP %d", r.StatusCode)
	}
	if r, _ := ts.Client().Get(ts.URL + "/v1/campaigns/" + sr.ID + "/results?from=99"); r.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range from: HTTP %d", r.StatusCode)
	}
}

// TestSubmitValidation: malformed and oversized spaces are rejected before
// any simulation, with the right statuses.
func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxPoints: 4, testHook: fakeRunner})
	if r := postSpace(t, ts, campaign.Space{Kernel: "no-such-kernel"}, ""); r.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown kernel: HTTP %d", r.StatusCode)
	}
	big := campaign.Space{Kernel: "gemm", Ports: []int{1, 2, 3, 4, 5}}
	if r := postSpace(t, ts, big, ""); r.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized space: HTTP %d", r.StatusCode)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/campaigns", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage body: HTTP %d", resp.StatusCode)
	}
}

// TestQuotasAndShedding: per-tenant quotas 429 without consuming queue
// slots for other tenants, and a full queue sheds with Retry-After.
func TestQuotasAndShedding(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	s, ts := newTestServer(t, Config{
		MaxActive:    1,
		QueueDepth:   1,
		TenantActive: 2,
		TenantPoints: 8,
		testHook:     blockingRunner(release),
	})
	space := campaign.Space{Kernel: "gemm", Ports: []int{2}}

	// First campaign occupies the single runner (blocking), second fills
	// the queue. Both belong to tenant A.
	submit(t, ts, space, "tenant-a")
	waitState(t, s, "c1", stateRunning)
	submit(t, ts, space, "tenant-a")

	// Tenant A is now at its active quota: 429 quota.
	r := postSpace(t, ts, space, "tenant-a")
	if r.StatusCode != http.StatusTooManyRequests || r.Header.Get("Retry-After") == "" {
		t.Fatalf("tenant quota: HTTP %d, Retry-After %q", r.StatusCode, r.Header.Get("Retry-After"))
	}
	r.Body.Close()

	// Tenant B is under quota but the queue is full: 429 shed.
	r = postSpace(t, ts, space, "tenant-b")
	if r.StatusCode != http.StatusTooManyRequests || r.Header.Get("Retry-After") == "" {
		t.Fatalf("queue shed: HTTP %d, Retry-After %q", r.StatusCode, r.Header.Get("Retry-After"))
	}
	r.Body.Close()

	// A tenant asking for more points than its quota allows: 429.
	r = postSpace(t, ts, campaign.Space{Kernel: "gemm", Ports: []int{1, 2, 3, 4, 5, 6, 7, 8, 9}}, "tenant-c")
	if r.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("point quota: HTTP %d", r.StatusCode)
	}
	r.Body.Close()

	if got := s.stats.rejectedQuota.Load(); got != 2 {
		t.Fatalf("rejected_quota = %d, want 2", got)
	}
	if got := s.stats.rejectedQueueFull.Load(); got != 1 {
		t.Fatalf("rejected_queue_full = %d, want 1", got)
	}
}

// waitState polls until the campaign reaches the given state.
func waitState(t *testing.T, s *Server, id, state string) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		s.mu.Lock()
		c := s.campaigns[id]
		s.mu.Unlock()
		if c != nil {
			c.mu.Lock()
			got := c.state
			c.mu.Unlock()
			if got == state {
				return
			}
		}
		select {
		case <-deadline:
			t.Fatalf("campaign %s never reached state %s", id, state)
		case <-time.After(time.Millisecond):
		}
	}
}

// TestDrainLifecycle: a draining server rejects new work (503 on submit
// and healthz), cancels queued campaigns, finishes in-flight points, and
// terminates every stream.
func TestDrainLifecycle(t *testing.T) {
	release := make(chan struct{})
	s, ts := newTestServer(t, Config{
		MaxActive:  1,
		QueueDepth: 4,
		testHook:   blockingRunner(release),
	})
	space := campaign.Space{Kernel: "gemm", Ports: []int{2, 4}}
	running := submit(t, ts, space, "")
	waitState(t, s, running.ID, stateRunning)
	queued := submit(t, ts, space, "")

	s.Drain()
	if r, _ := ts.Client().Get(ts.URL + "/healthz"); r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: HTTP %d", r.StatusCode)
	}
	if r := postSpace(t, ts, space, ""); r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining submit: HTTP %d", r.StatusCode)
	}
	close(release) // let the in-flight point finish
	s.Wait()

	waitState(t, s, queued.ID, stateCanceled)
	// The running campaign terminated; its in-flight point either finished
	// ok or the remainder drained — every row is present either way.
	lines := streamRows(t, ts, running.ID, 0)
	if len(lines) != 2 {
		t.Fatalf("drained campaign streamed %d rows, want 2", len(lines))
	}
	var first campaign.Row
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first.Status != campaign.StatusOK {
		t.Fatalf("in-flight point did not finish ok: %s", lines[0])
	}
	// Canceled campaigns stream nothing but do terminate.
	if rows := streamRows(t, ts, queued.ID, 0); len(rows) != 0 {
		t.Fatalf("canceled campaign streamed %d rows", len(rows))
	}
}

// TestStatszAndHealthz: the counters document is well-formed and tracks
// the elab cache, sessions, and store health.
func TestStatszAndHealthz(t *testing.T) {
	store, err := campaign.OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Store: store, testHook: fakeRunner})
	if r, _ := ts.Client().Get(ts.URL + "/healthz"); r.StatusCode != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", r.StatusCode)
	}
	sr := submit(t, ts, campaign.Space{Kernel: "gemm", Ports: []int{2, 4}}, "")
	streamRows(t, ts, sr.ID, 0) // wait for completion

	resp, err := ts.Client().Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats statszResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Serve["accepted"] != 1 || stats.Serve["points_accepted"] != 2 {
		t.Fatalf("statsz serve counters: %+v", stats.Serve)
	}
	if stats.Serve["points_simulated"] != 2 || stats.Serve["campaigns_done"] != 1 {
		t.Fatalf("statsz campaign counters: %+v", stats.Serve)
	}
	if stats.Store == nil {
		t.Fatal("statsz missing store section despite a configured store")
	}
	if stats.Shard.Count != 1 {
		t.Fatalf("unsharded server reports shard count %d", stats.Shard.Count)
	}
}
