package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"

	salam "gosalam"
	"gosalam/internal/campaign"
)

// routes builds the server's HTTP surface.
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/campaigns", s.handleSubmit)
	mux.HandleFunc("GET /v1/campaigns", s.handleList)
	mux.HandleFunc("GET /v1/campaigns/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/campaigns/{id}/results", s.handleResults)
	mux.HandleFunc("POST /v1/searches", s.handleSearchSubmit)
	mux.HandleFunc("GET /v1/searches", s.handleSearchList)
	mux.HandleFunc("GET /v1/searches/{id}", s.handleSearchStatus)
	mux.HandleFunc("GET /v1/searches/{id}/frontier", s.handleSearchFrontier)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	return mux
}

// writeJSON writes v with status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client gone mid-write is not actionable
}

// writeError writes a JSON error body.
func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// submitResponse acknowledges an accepted campaign.
type submitResponse struct {
	ID      string `json:"id"`
	State   string `json:"state"`
	Points  int    `json:"points"`
	Results string `json:"results"`
}

// handleSubmit: POST /v1/campaigns with a campaign.Space JSON body.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	s.stats.submitted.Add(1)
	var space campaign.Space
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&space); err != nil {
		s.stats.rejectedInvalid.Add(1)
		writeError(w, http.StatusBadRequest, "decoding space spec: "+err.Error())
		return
	}
	// Validate before Size before Build: a malformed space is a clean 400
	// and an oversized one a 413 before anything enumerates the cross
	// product — a million-point typo never materializes a job slice.
	if err := space.Validate(); err != nil {
		s.stats.rejectedInvalid.Add(1)
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if n := space.Size(); n > s.cfg.maxPoints() {
		s.stats.rejectedInvalid.Add(1)
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("space enumerates %d points (limit %d); split the sweep, or submit it to /v1/searches", n, s.cfg.maxPoints()))
		return
	}
	_, jobs, err := space.Build()
	if err != nil {
		s.stats.rejectedInvalid.Add(1)
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	c, aerr := s.admit(tenantOf(r), space, jobs, len(jobs), false)
	if aerr != nil {
		if aerr.retryAfter != "" {
			w.Header().Set("Retry-After", aerr.retryAfter)
		}
		writeError(w, aerr.status, aerr.msg)
		return
	}
	writeJSON(w, http.StatusAccepted, submitResponse{
		ID:      c.ID,
		State:   stateQueued,
		Points:  len(jobs),
		Results: "/v1/campaigns/" + c.ID + "/results",
	})
}

// handleList: GET /v1/campaigns — snapshots in submission order.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"campaigns": s.list(false)})
}

// list snapshots registered work of one kind in submission order.
func (s *Server) list(searches bool) []snapshot {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	cs := make([]*Campaign, 0, len(ids))
	for _, id := range ids {
		if c := s.campaigns[id]; c != nil && c.isSearch == searches {
			cs = append(cs, c)
		}
	}
	s.mu.Unlock()
	out := make([]snapshot, len(cs))
	for i, c := range cs {
		out[i] = c.snapshot()
	}
	return out
}

// lookup fetches a registered campaign or search by ID, filtered by kind
// so the two API families never cross-resolve each other's IDs.
func (s *Server) lookup(id string, search bool) *Campaign {
	s.mu.Lock()
	c := s.campaigns[id]
	s.mu.Unlock()
	if c == nil || c.isSearch != search {
		return nil
	}
	return c
}

// handleStatus: GET /v1/campaigns/{id}.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	c := s.lookup(r.PathValue("id"), false)
	if c == nil {
		writeError(w, http.StatusNotFound, "no such campaign")
		return
	}
	writeJSON(w, http.StatusOK, c.snapshot())
}

// handleResults: GET /v1/campaigns/{id}/results?from=idx — the NDJSON
// stream of campaign.Row records in submission order. Rows appear as their
// point (and every earlier point) completes; the stream ends when the
// campaign is terminal and fully replayed. ?from resumes mid-stream: a
// client that got n rows before a disconnect reconnects with from=n and
// the concatenation is byte-identical to one uninterrupted stream.
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	c := s.lookup(r.PathValue("id"), false)
	if c == nil {
		writeError(w, http.StatusNotFound, "no such campaign")
		return
	}
	from := 0
	if q := r.URL.Query().Get("from"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, "invalid from index")
			return
		}
		from = v
	}
	if from > len(c.jobs) {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("from=%d beyond the campaign's %d points", from, len(c.jobs)))
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	flusher, _ := w.(http.Flusher)
	next := from
	for {
		c.mu.Lock()
		for next >= len(c.rows) && !c.terminal() {
			wake := c.wake
			c.mu.Unlock()
			select {
			case <-wake:
			case <-r.Context().Done():
				return // client gone; the campaign runs on
			}
			c.mu.Lock()
		}
		batch := c.rows[next:]
		next = len(c.rows)
		terminal := c.terminal()
		c.mu.Unlock()

		for _, row := range batch {
			if _, err := w.Write(row); err != nil {
				return
			}
		}
		if flusher != nil {
			flusher.Flush()
		}
		if terminal {
			return
		}
	}
}

// handleHealthz: liveness plus drain visibility — a draining server
// reports 503 so load balancers stop routing to it while in-flight work
// finishes.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// statszResponse is the /statsz document.
type statszResponse struct {
	Shard struct {
		Index int `json:"index"`
		Count int `json:"count"`
	} `json:"shard"`
	Serve map[string]uint64 `json:"serve"`
	Elab  struct {
		Hits    uint64  `json:"hits"`
		Misses  uint64  `json:"misses"`
		HitRate float64 `json:"hit_rate"`
	} `json:"elab_cache"`
	Sessions struct {
		Reused  uint64 `json:"reused"`
		Created uint64 `json:"created"`
	} `json:"sessions"`
	Store *struct {
		CorruptMisses uint64 `json:"corrupt_misses"`
	} `json:"store,omitempty"`
}

// handleStatsz: GET /statsz — the server's counters, the process-wide
// elaboration-cache hit rate, session-pool reuse, and store health as one
// JSON document.
func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	var resp statszResponse
	resp.Shard.Index = s.cfg.Shard.Index
	resp.Shard.Count = s.cfg.Shard.Count
	if resp.Shard.Count == 0 {
		resp.Shard.Count = 1
	}
	resp.Serve = map[string]uint64{
		"submitted":           s.stats.submitted.Load(),
		"accepted":            s.stats.accepted.Load(),
		"rejected_invalid":    s.stats.rejectedInvalid.Load(),
		"rejected_queue_full": s.stats.rejectedQueueFull.Load(),
		"rejected_quota":      s.stats.rejectedQuota.Load(),
		"rejected_draining":   s.stats.rejectedDraining.Load(),
		"campaigns_done":      s.stats.campaignsDone.Load(),
		"campaigns_canceled":  s.stats.campaignsCanceled.Load(),
		"points_accepted":     s.stats.pointsAccepted.Load(),
		"points_simulated":    s.stats.pointsSimulated.Load(),
		"points_cached":       s.stats.pointsCached.Load(),
		"points_failed":       s.stats.pointsFailed.Load(),
		"points_pruned":       s.stats.pointsPruned.Load(),
		"points_skipped":      s.stats.pointsSkipped.Load(),
	}
	hits, misses := salam.ElabCacheStats()
	resp.Elab.Hits, resp.Elab.Misses = hits, misses
	if total := hits + misses; total > 0 {
		resp.Elab.HitRate = float64(hits) / float64(total)
	}
	resp.Sessions.Reused, resp.Sessions.Created = s.sessions.Stats()
	if fs, ok := s.cfg.Store.(*campaign.Cache); ok {
		resp.Store = &struct {
			CorruptMisses uint64 `json:"corrupt_misses"`
		}{CorruptMisses: fs.CorruptMisses()}
	}
	writeJSON(w, http.StatusOK, resp)
}

// Merge reassembles a full sweep from a shared store as the canonical
// NDJSON row stream — the merge half of shard-by-cache-key scheduling
// (salam-serve -merge). It returns the number of points still missing from
// the store (shards not yet finished, or points that errored and never
// persisted).
func Merge(space campaign.Space, store campaign.Store, w io.Writer) (missing int, err error) {
	_, jobs, err := space.Build()
	if err != nil {
		return 0, err
	}
	rows, err := campaign.MergeRows(jobs, store)
	if err != nil {
		return 0, err
	}
	for _, r := range rows {
		if r.Status == campaign.StatusMissing {
			missing++
		}
	}
	return missing, campaign.WriteRows(w, rows)
}
