package serve

// Admission and fairness: a server for many tenants must degrade
// predictably under overload. Three gates run in order at submission time,
// cheapest first, each with its own rejection counter so /statsz shows
// exactly where load is shed:
//
//  1. drain gate — a draining server takes nothing new (503);
//  2. per-tenant quotas — a tenant (API-key header; anonymous otherwise)
//     may hold at most TenantActive queued+running campaigns and
//     TenantPoints queued+running points, so one tenant's million-point
//     sweep cannot starve everyone else (429);
//  3. global backpressure — the bounded submission queue sheds load with
//     429 + Retry-After once MaxActive runners and QueueDepth slots are
//     all busy, keeping admitted work's latency bounded instead of
//     queueing unboundedly.
//
// Quota debt is taken atomically at admission and returned when the
// campaign reaches a terminal state, whichever path it takes there.

import (
	"fmt"
	"net/http"

	"gosalam/internal/campaign"
)

// tenant tracks one API key's outstanding admission debt.
type tenant struct {
	active int // queued + running campaigns
	points int // queued + running points
}

// tenantOf derives the tenant identity from the request: the X-API-Key
// header, or "anonymous". (This is fairness bookkeeping, not
// authentication — any stable per-client token works.)
func tenantOf(r *http.Request) string {
	if key := r.Header.Get("X-API-Key"); key != "" {
		return key
	}
	return "anonymous"
}

// admitError describes a rejected submission.
type admitError struct {
	status     int // HTTP status
	msg        string
	retryAfter string // Retry-After seconds ("" = none)
}

func (e *admitError) Error() string { return e.msg }

// admit runs the quota gates and, on success, registers the campaign (or
// search: points is the admission debt — enumerated points for a sweep,
// collapsed leaves for a search, since that is the work the server could
// actually run) and enqueues it. The queue send is non-blocking: a full
// queue is load to shed, not to buffer.
func (s *Server) admit(tenantID string, space campaign.Space, jobs []campaign.Job, points int, isSearch bool) (*Campaign, *admitError) {
	if s.Draining() {
		s.stats.rejectedDraining.Add(1)
		return nil, &admitError{status: http.StatusServiceUnavailable, msg: "server is draining"}
	}

	s.mu.Lock()
	t := s.tenants[tenantID]
	if t == nil {
		t = &tenant{}
		s.tenants[tenantID] = t
	}
	if t.active >= s.cfg.tenantActive() {
		s.mu.Unlock()
		s.stats.rejectedQuota.Add(1)
		return nil, &admitError{
			status:     http.StatusTooManyRequests,
			msg:        fmt.Sprintf("tenant %q already has %d campaigns queued or running (limit %d)", tenantID, t.active, s.cfg.tenantActive()),
			retryAfter: "2",
		}
	}
	if t.points+points > s.cfg.tenantPoints() {
		s.mu.Unlock()
		s.stats.rejectedQuota.Add(1)
		return nil, &admitError{
			status:     http.StatusTooManyRequests,
			msg:        fmt.Sprintf("tenant %q would hold %d points (limit %d)", tenantID, t.points+points, s.cfg.tenantPoints()),
			retryAfter: "2",
		}
	}
	t.active++
	t.points += points
	s.nextID++
	prefix := "c"
	if isSearch {
		prefix = "s"
	}
	c := newCampaign(fmt.Sprintf("%s%d", prefix, s.nextID), tenantID, space, jobs)
	c.isSearch = isSearch
	c.points = points
	s.campaigns[c.ID] = c
	s.order = append(s.order, c.ID)
	s.mu.Unlock()

	select {
	case s.queue <- c:
		s.stats.accepted.Add(1)
		s.stats.pointsAccepted.Add(uint64(points))
		return c, nil
	default:
		// Shed: undo the registration so the rejected campaign leaves no
		// debt and no dangling ID.
		s.mu.Lock()
		delete(s.campaigns, c.ID)
		if n := len(s.order); n > 0 && s.order[n-1] == c.ID {
			s.order = s.order[:n-1]
		}
		t.active--
		t.points -= points
		s.mu.Unlock()
		s.stats.rejectedQueueFull.Add(1)
		return nil, &admitError{
			status:     http.StatusTooManyRequests,
			msg:        fmt.Sprintf("submission queue full (%d campaigns waiting)", s.cfg.queueDepth()),
			retryAfter: "1",
		}
	}
}

// releaseTenant returns a finished campaign's admission debt.
func (s *Server) releaseTenant(tenantID string, points int) {
	s.mu.Lock()
	if t := s.tenants[tenantID]; t != nil {
		t.active--
		t.points -= points
		if t.active <= 0 && t.points <= 0 {
			delete(s.tenants, tenantID)
		}
	}
	s.mu.Unlock()
}
