package serve

// The /v1/searches family: branch-and-bound Pareto search as a service.
// A search submission carries the same campaign.Space JSON a sweep does,
// but the admission math is different on purpose — the gate and the quota
// debt are the space's COLLAPSED leaf count (search.CollapsedSize), the
// most the engine could ever simulate, so a million-point ranged space
// with a thousand distinct hardware configurations is admissible work,
// not a 413. Searches share the sweep path's submission queue, runner
// pool, tenant quotas, session pool, result store, and drain behaviour;
// a drained search reports Drained and a resubmission against the same
// store resumes from cache hits.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"gosalam/internal/campaign"
	"gosalam/internal/search"
)

// searchSubmitResponse acknowledges an accepted search.
type searchSubmitResponse struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	Points   int    `json:"points"`
	Classes  int    `json:"classes"`
	Frontier string `json:"frontier"`
}

// handleSearchSubmit: POST /v1/searches with a campaign.Space JSON body.
func (s *Server) handleSearchSubmit(w http.ResponseWriter, r *http.Request) {
	s.stats.submitted.Add(1)
	var space campaign.Space
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&space); err != nil {
		s.stats.rejectedInvalid.Add(1)
		writeError(w, http.StatusBadRequest, "decoding space spec: "+err.Error())
		return
	}
	if err := space.Validate(); err != nil {
		s.stats.rejectedInvalid.Add(1)
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if s.cfg.Shard.Count > 1 {
		// A search's wave schedule is a global decision; shard-by-cache-key
		// splitting only partitions fixed job lists.
		s.stats.rejectedInvalid.Add(1)
		writeError(w, http.StatusNotImplemented, "sharded servers run sweeps, not searches; submit to an unsharded server")
		return
	}
	leaves, err := search.CollapsedSize(space)
	if err != nil {
		s.stats.rejectedInvalid.Add(1)
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if leaves > s.cfg.maxPoints() {
		s.stats.rejectedInvalid.Add(1)
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("space has %d distinct configurations after collapse (limit %d); narrow the knobs", leaves, s.cfg.maxPoints()))
		return
	}
	c, aerr := s.admit(tenantOf(r), space, nil, leaves, true)
	if aerr != nil {
		if aerr.retryAfter != "" {
			w.Header().Set("Retry-After", aerr.retryAfter)
		}
		writeError(w, aerr.status, aerr.msg)
		return
	}
	writeJSON(w, http.StatusAccepted, searchSubmitResponse{
		ID:       c.ID,
		State:    stateQueued,
		Points:   space.Size(),
		Classes:  leaves,
		Frontier: "/v1/searches/" + c.ID + "/frontier",
	})
}

// handleSearchList: GET /v1/searches.
func (s *Server) handleSearchList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"searches": s.list(true)})
}

// handleSearchStatus: GET /v1/searches/{id}.
func (s *Server) handleSearchStatus(w http.ResponseWriter, r *http.Request) {
	c := s.lookup(r.PathValue("id"), true)
	if c == nil {
		writeError(w, http.StatusNotFound, "no such search")
		return
	}
	writeJSON(w, http.StatusOK, c.snapshot())
}

// handleSearchFrontier: GET /v1/searches/{id}/frontier — the certified
// frontier CSV once the search is done (409 while it is still queued or
// running, 410 if it was canceled). The bytes are identical to what
// salam-dse -search prints for the same space, store or no store.
func (s *Server) handleSearchFrontier(w http.ResponseWriter, r *http.Request) {
	c := s.lookup(r.PathValue("id"), true)
	if c == nil {
		writeError(w, http.StatusNotFound, "no such search")
		return
	}
	c.mu.Lock()
	state, reason, res := c.state, c.fail, c.searchRes
	c.mu.Unlock()
	switch {
	case res != nil:
		w.Header().Set("Content-Type", "text/csv")
		io.WriteString(w, search.FrontierCSV(c.Space.Kernel, res.Frontier)) //nolint:errcheck // client gone mid-write is not actionable
	case state == stateCanceled:
		writeError(w, http.StatusGone, "search canceled: "+reason)
	default:
		writeError(w, http.StatusConflict, "search is "+state+"; retry when done")
	}
}

// runSearch executes one search on this runner goroutine: the queued →
// running → done lifecycle around one search.Run call wired into the
// shared store, session pool, and drain channel.
func (s *Server) runSearch(c *Campaign) {
	c.mu.Lock()
	c.state = stateRunning
	c.broadcast()
	c.mu.Unlock()

	ctx, cancel := s.campaignContext()
	defer cancel()
	cfg := search.Config{
		Space:    c.Space,
		Workers:  s.cfg.Workers,
		Cache:    s.cfg.Store,
		Sessions: s.sessions,
		Drain:    s.drain,
	}
	if s.cfg.searchHook != nil {
		s.cfg.searchHook(&cfg)
	}
	res, err := search.Run(ctx, cfg)
	if err != nil {
		s.finishCampaign(c, stateCanceled, err.Error())
		return
	}
	c.mu.Lock()
	c.searchRes = res
	c.mu.Unlock()
	s.stats.pointsSimulated.Add(uint64(res.Simulated))
	s.stats.pointsCached.Add(uint64(res.CacheHits))
	s.stats.pointsPruned.Add(uint64(res.PrunedPoints))
	s.finishCampaign(c, stateDone, "")
}
