// Package soccfg defines the versioned declarative SoC configuration
// schema — the counterpart of gem5-SALAM's gem5-python system
// configuration scripts. A config file describes a simulation without Go
// code: version 0 is the flat single-accelerator form (kernel + device
// knobs + memory mode), version 1 describes full topologies — SPMs shared
// between accelerators, clusters with local crossbars, DMA engines,
// stream links, an LLC — covering every system shape constructed in
// system.go and internal/experiments.
//
// Decoding is strict: unknown fields are errors with full field paths and
// typo hints (see Unmarshal), and Validate range-checks every knob with
// the same path diagnostics. The schema deliberately contains no
// behavior; salam.BuildFromConfig (root package) turns a validated Config
// into a live SoC.
package soccfg

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"gosalam/internal/hw"
	"gosalam/kernels"
)

// DeviceCfg is the per-accelerator device configuration (paper Sec.
// III-B): clock, port counts, queue depths, and FU constraints. Zero
// values mean "engine default".
type DeviceCfg struct {
	ClockMHz       float64        `json:"clock_mhz,omitempty"`
	ReadPorts      int            `json:"read_ports,omitempty"`
	WritePorts     int            `json:"write_ports,omitempty"`
	MaxOutstanding int            `json:"max_outstanding,omitempty"`
	ResQueue       int            `json:"res_queue,omitempty"`
	PipelineLoops  *bool          `json:"pipeline_loops,omitempty"`
	FULimits       map[string]int `json:"fu_limits,omitempty"`
}

// MemoryCfg is the flat-form memory configuration: scratchpad geometry or
// cache shape, selected by Memory.
type MemoryCfg struct {
	Memory     string `json:"memory,omitempty"` // "spm" (default) or "cache"
	SPMLatency int    `json:"spm_latency,omitempty"`
	SPMBanks   int    `json:"spm_banks,omitempty"`
	SPMPorts   int    `json:"spm_ports,omitempty"`
	CacheBytes int    `json:"cache_bytes,omitempty"`
	CacheLine  int    `json:"cache_line,omitempty"`
	CacheAssoc int    `json:"cache_assoc,omitempty"`
	CacheMSHRs int    `json:"cache_mshrs,omitempty"`
}

// KernelRef selects what an accelerator executes: a built-in kernel by
// name (at a preset or explicit size), or external LLVM IR (clang
// `-O1 -S -emit-llvm` output) bound to a built-in workload for input data
// and result checking.
type KernelRef struct {
	Kernel string `json:"kernel,omitempty"`
	Preset string `json:"preset,omitempty"` // small | default | micro | large
	Size   []int  `json:"size,omitempty"`   // explicit constructor arguments

	IRFile   string `json:"ir_file,omitempty"`  // path to a .ll file (relative to the config)
	Entry    string `json:"entry,omitempty"`    // function to simulate (defaults to workload name)
	Workload string `json:"workload,omitempty"` // built-in kernel supplying Setup/Check
}

// Config is the root of a configuration document.
type Config struct {
	Version int `json:"version,omitempty"` // 0 = flat single-accelerator, 1 = soc topology

	// Flat form (version 0).
	KernelRef
	Seed int64 `json:"seed,omitempty"`
	DeviceCfg
	MemoryCfg

	// Topology form (version 1).
	SoC *SoCCfg `json:"soc,omitempty"`

	// Dir is the directory the config was loaded from; relative ir_file
	// paths resolve against it. Not part of the document.
	Dir string `json:"-"`
}

// SoCCfg describes a full system topology.
type SoCCfg struct {
	DRAMMB    int          `json:"dram_mb,omitempty"`    // default 16
	XbarWidth int          `json:"xbar_width,omitempty"` // global crossbar requests/cycle, default 8
	LLC       *LLCCfg      `json:"llc,omitempty"`
	SPMs      []SPMCfg     `json:"spms,omitempty"`
	Clusters  []ClusterCfg `json:"clusters,omitempty"`
	Accels    []AccelCfg   `json:"accelerators"`
	DMAs      []DMACfg     `json:"dmas,omitempty"`
	Streams   []StreamCfg  `json:"streams,omitempty"`
}

// SPMCfg is a named scratchpad, shareable between accelerators.
type SPMCfg struct {
	Name    string `json:"name"`
	Bytes   uint64 `json:"bytes"`
	Latency int    `json:"latency,omitempty"` // default 2
	Banks   int    `json:"banks,omitempty"`   // default 4
	Ports   int    `json:"ports,omitempty"`   // default 4
}

// LLCCfg inserts a shared last-level cache between the global crossbar
// and DRAM.
type LLCCfg struct {
	Bytes int `json:"bytes"`
	Line  int `json:"line,omitempty"`  // default 64
	Assoc int `json:"assoc,omitempty"` // default 4
}

// ClusterCfg is an accelerator cluster: a local crossbar, optionally a
// cluster-shared scratchpad, and a cluster DMA engine.
type ClusterCfg struct {
	Name           string `json:"name"`
	SharedSPMBytes uint64 `json:"shared_spm_bytes,omitempty"`
	SPMLatency     int    `json:"spm_latency,omitempty"` // default 2
	SPMBanks       int    `json:"spm_banks,omitempty"`   // default 4
	SPMPorts       int    `json:"spm_ports,omitempty"`   // default 4
	XbarWidth      int    `json:"xbar_width,omitempty"`  // default 8
}

// AccelCfg is one accelerator: what it runs, its device knobs, and how
// its local memory is wired.
type AccelCfg struct {
	Name string `json:"name"`
	KernelRef
	DeviceCfg

	// Memory wiring — at most one of SPMBytes / SharedSPM; Cluster
	// places the accelerator behind a cluster's local crossbar (and
	// "cluster" as SharedSPM attaches that cluster's scratchpad).
	Cluster    string `json:"cluster,omitempty"`
	SPMBytes   uint64 `json:"spm_bytes,omitempty"`
	SPMLatency int    `json:"spm_latency,omitempty"`
	SPMBanks   int    `json:"spm_banks,omitempty"`
	SPMPorts   int    `json:"spm_ports,omitempty"`
	SharedSPM  string `json:"shared_spm,omitempty"`
	Global     bool   `json:"global,omitempty"` // keep a global-crossbar port despite local SPM
}

// DMACfg is a host-programmed block-copy DMA engine on the global
// crossbar (Fig. 16a wiring).
type DMACfg struct {
	Name string `json:"name"`
	Kind string `json:"kind,omitempty"` // only "block"
}

// StreamCfg wires producer stores to consumer loads through a bounded
// FIFO (Fig. 16c).
type StreamCfg struct {
	Name        string `json:"name"`
	Producer    string `json:"producer"`
	Consumer    string `json:"consumer"`
	BufferBytes int    `json:"buffer_bytes"`
}

// Load reads, strictly decodes, and validates a config file.
func Load(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	c, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	c.Dir = filepath.Dir(path)
	return c, nil
}

// Parse strictly decodes and validates a config document.
func Parse(data []byte) (*Config, error) {
	var c Config
	if err := Unmarshal(data, &c); err != nil {
		return nil, err
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// Emit renders the canonical form of the config: stable field order,
// two-space indentation, defaults left implicit, trailing newline. Emit
// of a parsed document is idempotent — the round-trip contract behind
// `salam-config emit`.
func (c *Config) Emit() ([]byte, error) {
	out, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// presetByName maps the schema spelling to a kernels.Preset.
func presetByName(name string) (kernels.Preset, bool) {
	switch name {
	case "", "default":
		return kernels.Default, true
	case "small":
		return kernels.Small, true
	case "micro":
		return kernels.Micro, true
	case "large":
		return kernels.Large, true
	}
	return 0, false
}

// ResolvePreset resolves the flat-form preset name.
func (c *Config) ResolvePreset() (kernels.Preset, error) {
	p, ok := presetByName(c.KernelRef.Preset)
	if !ok {
		return 0, fmt.Errorf("config: preset: unknown preset %q", c.KernelRef.Preset)
	}
	return p, nil
}

// errPath builds a field-path validation error.
func errPath(path, format string, args ...any) error {
	return fmt.Errorf("config: %s: %s", path, fmt.Sprintf(format, args...))
}

func checkRange(path string, v, lo, hi int) error {
	if v != 0 && (v < lo || v > hi) {
		return errPath(path, "%d out of range [%d, %d]", v, lo, hi)
	}
	return nil
}

func (d *DeviceCfg) validate(path string) error {
	if d.ClockMHz < 0 || d.ClockMHz > 10000 {
		return errPath(path+".clock_mhz", "%g out of range (0, 10000]", d.ClockMHz)
	}
	if err := checkRange(path+".read_ports", d.ReadPorts, 1, 1024); err != nil {
		return err
	}
	if err := checkRange(path+".write_ports", d.WritePorts, 1, 1024); err != nil {
		return err
	}
	if err := checkRange(path+".max_outstanding", d.MaxOutstanding, 1, 1<<16); err != nil {
		return err
	}
	if err := checkRange(path+".res_queue", d.ResQueue, 1, 1<<20); err != nil {
		return err
	}
	names := make([]string, 0, len(d.FULimits))
	for name := range d.FULimits { //salam:vet:ok key collection feeding sort.Strings, order cannot escape
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if hw.FUClassByName(name) == hw.FUNone {
			return errPath(path+".fu_limits."+name, "unknown FU class (see salam-config list-fus)")
		}
		if n := d.FULimits[name]; n < 0 {
			return errPath(path+".fu_limits."+name, "%d is negative", n)
		}
	}
	return nil
}

func (m *MemoryCfg) validate(path string) error {
	switch m.Memory {
	case "", "spm", "cache":
	default:
		return errPath(path+".memory", "unknown mode %q (spm or cache)", m.Memory)
	}
	if err := checkRange(path+".spm_latency", m.SPMLatency, 1, 1024); err != nil {
		return err
	}
	if err := checkRange(path+".spm_banks", m.SPMBanks, 1, 1024); err != nil {
		return err
	}
	if err := checkRange(path+".spm_ports", m.SPMPorts, 1, 1024); err != nil {
		return err
	}
	if err := checkRange(path+".cache_bytes", m.CacheBytes, 64, 1<<30); err != nil {
		return err
	}
	if m.CacheLine != 0 && (m.CacheLine < 8 || m.CacheLine > 4096 || m.CacheLine&(m.CacheLine-1) != 0) {
		return errPath(path+".cache_line", "%d must be a power of two in [8, 4096]", m.CacheLine)
	}
	if err := checkRange(path+".cache_assoc", m.CacheAssoc, 1, 256); err != nil {
		return err
	}
	return checkRange(path+".cache_mshrs", m.CacheMSHRs, 1, 1024)
}

// validate checks a kernel reference. In the flat form an empty reference
// is already rejected by Validate; inside an accelerator a reference is
// mandatory.
func (k *KernelRef) validate(path string) error {
	if _, ok := presetByName(k.Preset); !ok {
		return errPath(path+".preset", "unknown preset %q (small, default, micro, large)", k.Preset)
	}
	switch {
	case k.Kernel != "" && k.IRFile != "":
		return errPath(path, "kernel and ir_file are mutually exclusive")
	case k.Kernel == "" && k.IRFile == "":
		return errPath(path, "needs kernel or ir_file")
	case k.IRFile != "":
		if k.Workload == "" {
			return errPath(path+".workload", "ir_file needs a workload binding for input data and checking")
		}
		if len(k.Size) > 0 {
			return errPath(path+".size", "size applies to built-in kernels, not ir_file")
		}
	case k.Kernel != "":
		if k.Entry != "" {
			return errPath(path+".entry", "entry applies to ir_file configs")
		}
		if k.Workload != "" {
			return errPath(path+".workload", "workload applies to ir_file configs")
		}
		if len(k.Size) > 0 && k.Preset != "" {
			return errPath(path+".size", "size and preset are mutually exclusive")
		}
		for i, v := range k.Size {
			if v <= 0 || v > 1<<20 {
				return errPath(fmt.Sprintf("%s.size[%d]", path, i), "%d out of range [1, 2^20]", v)
			}
		}
	}
	return nil
}

// Validate checks the whole document: version consistency, knob ranges,
// reference integrity (clusters, shared SPMs, stream endpoints), and
// name uniqueness. Every diagnostic carries its field path.
func (c *Config) Validate() error {
	switch c.Version {
	case 0:
		if c.SoC != nil {
			return errPath("soc", "topology form requires \"version\": 1")
		}
		if err := c.KernelRef.validate("(top level)"); err != nil {
			return err
		}
		if err := c.DeviceCfg.validate("(top level)"); err != nil {
			return err
		}
		return c.MemoryCfg.validate("(top level)")
	case 1:
		if c.SoC == nil {
			return errPath("soc", "version 1 requires a soc object")
		}
		if c.Kernel != "" || c.IRFile != "" || c.Memory != "" || c.ClockMHz != 0 {
			return errPath("soc", "version 1 puts kernels and devices inside soc.accelerators, not at top level")
		}
		return c.SoC.validate("soc")
	default:
		return errPath("version", "unsupported version %d (0 or 1)", c.Version)
	}
}

func (s *SoCCfg) validate(path string) error {
	if err := checkRange(path+".dram_mb", s.DRAMMB, 1, 4096); err != nil {
		return err
	}
	if err := checkRange(path+".xbar_width", s.XbarWidth, 1, 256); err != nil {
		return err
	}
	if s.LLC != nil {
		p := path + ".llc"
		if s.LLC.Bytes < 64 || s.LLC.Bytes > 1<<30 {
			return errPath(p+".bytes", "%d out of range [64, 2^30]", s.LLC.Bytes)
		}
		if s.LLC.Line != 0 && (s.LLC.Line < 8 || s.LLC.Line&(s.LLC.Line-1) != 0) {
			return errPath(p+".line", "%d must be a power of two >= 8", s.LLC.Line)
		}
		if err := checkRange(p+".assoc", s.LLC.Assoc, 1, 256); err != nil {
			return err
		}
	}

	spms := map[string]bool{}
	for i, m := range s.SPMs {
		p := fmt.Sprintf("%s.spms[%d]", path, i)
		if m.Name == "" {
			return errPath(p+".name", "missing name")
		}
		if spms[m.Name] {
			return errPath(p+".name", "duplicate SPM %q", m.Name)
		}
		spms[m.Name] = true
		if m.Bytes == 0 || m.Bytes > 8<<20 {
			return errPath(p+".bytes", "%d out of range [1, 8 MiB] (the SPM arena)", m.Bytes)
		}
		if err := checkRange(p+".latency", m.Latency, 1, 1024); err != nil {
			return err
		}
		if err := checkRange(p+".banks", m.Banks, 1, 1024); err != nil {
			return err
		}
		if err := checkRange(p+".ports", m.Ports, 1, 1024); err != nil {
			return err
		}
	}

	clusters := map[string]bool{}
	for i, cl := range s.Clusters {
		p := fmt.Sprintf("%s.clusters[%d]", path, i)
		if cl.Name == "" {
			return errPath(p+".name", "missing name")
		}
		if clusters[cl.Name] || spms[cl.Name] {
			return errPath(p+".name", "duplicate name %q", cl.Name)
		}
		clusters[cl.Name] = true
		if cl.SharedSPMBytes > 8<<20 {
			return errPath(p+".shared_spm_bytes", "%d exceeds the 8 MiB SPM arena", cl.SharedSPMBytes)
		}
		if err := checkRange(p+".spm_latency", cl.SPMLatency, 1, 1024); err != nil {
			return err
		}
		if err := checkRange(p+".spm_banks", cl.SPMBanks, 1, 1024); err != nil {
			return err
		}
		if err := checkRange(p+".spm_ports", cl.SPMPorts, 1, 1024); err != nil {
			return err
		}
		if err := checkRange(p+".xbar_width", cl.XbarWidth, 1, 256); err != nil {
			return err
		}
	}

	if len(s.Accels) == 0 {
		return errPath(path+".accelerators", "at least one accelerator required")
	}
	accels := map[string]bool{}
	for i, a := range s.Accels {
		p := fmt.Sprintf("%s.accelerators[%d]", path, i)
		if a.Name == "" {
			return errPath(p+".name", "missing name")
		}
		if accels[a.Name] {
			return errPath(p+".name", "duplicate accelerator %q", a.Name)
		}
		accels[a.Name] = true
		if err := a.KernelRef.validate(p); err != nil {
			return err
		}
		if err := a.DeviceCfg.validate(p); err != nil {
			return err
		}
		if a.Cluster != "" && !clusters[a.Cluster] {
			return errPath(p+".cluster", "no cluster named %q", a.Cluster)
		}
		if a.SPMBytes > 0 && a.SharedSPM != "" {
			return errPath(p, "spm_bytes and shared_spm are mutually exclusive")
		}
		if a.SPMBytes > 8<<20 {
			return errPath(p+".spm_bytes", "%d exceeds the 8 MiB SPM arena", a.SPMBytes)
		}
		switch {
		case a.SharedSPM == "":
		case a.SharedSPM == "cluster":
			if a.Cluster == "" {
				return errPath(p+".shared_spm", "\"cluster\" requires the cluster field")
			}
		case !spms[a.SharedSPM]:
			return errPath(p+".shared_spm", "no SPM named %q", a.SharedSPM)
		}
		if err := checkRange(p+".spm_latency", a.SPMLatency, 1, 1024); err != nil {
			return err
		}
		if err := checkRange(p+".spm_banks", a.SPMBanks, 1, 1024); err != nil {
			return err
		}
		if err := checkRange(p+".spm_ports", a.SPMPorts, 1, 1024); err != nil {
			return err
		}
	}

	dmas := map[string]bool{}
	for i, d := range s.DMAs {
		p := fmt.Sprintf("%s.dmas[%d]", path, i)
		if d.Name == "" {
			return errPath(p+".name", "missing name")
		}
		if dmas[d.Name] || accels[d.Name] {
			return errPath(p+".name", "duplicate name %q", d.Name)
		}
		dmas[d.Name] = true
		if d.Kind != "" && d.Kind != "block" {
			return errPath(p+".kind", "unknown DMA kind %q (only \"block\")", d.Kind)
		}
	}

	streams := map[string]bool{}
	for i, st := range s.Streams {
		p := fmt.Sprintf("%s.streams[%d]", path, i)
		if st.Name == "" {
			return errPath(p+".name", "missing name")
		}
		if streams[st.Name] {
			return errPath(p+".name", "duplicate stream %q", st.Name)
		}
		streams[st.Name] = true
		if !accels[st.Producer] {
			return errPath(p+".producer", "no accelerator named %q", st.Producer)
		}
		if !accels[st.Consumer] {
			return errPath(p+".consumer", "no accelerator named %q", st.Consumer)
		}
		if st.Producer == st.Consumer {
			return errPath(p, "producer and consumer must differ")
		}
		if st.BufferBytes < 8 || st.BufferBytes > 1<<24 {
			return errPath(p+".buffer_bytes", "%d out of range [8, 2^24]", st.BufferBytes)
		}
	}
	return nil
}

// ResolveIRPath resolves a KernelRef's ir_file against the config's load
// directory.
func (c *Config) ResolveIRPath(ref *KernelRef) string {
	if ref.IRFile == "" || filepath.IsAbs(ref.IRFile) || c.Dir == "" {
		return ref.IRFile
	}
	return filepath.Join(c.Dir, ref.IRFile)
}

// Describe returns a short human summary (salam-config info).
func (c *Config) Describe() string {
	var b strings.Builder
	if c.Version == 0 {
		fmt.Fprintf(&b, "flat single-accelerator config (version 0)\n")
		if c.Kernel != "" {
			fmt.Fprintf(&b, "  kernel: %s", c.Kernel)
			if c.KernelRef.Preset != "" {
				fmt.Fprintf(&b, " (preset %s)", c.KernelRef.Preset)
			}
			if len(c.Size) > 0 {
				fmt.Fprintf(&b, " (size %v)", c.Size)
			}
			b.WriteByte('\n')
		} else {
			fmt.Fprintf(&b, "  ir_file: %s (entry %s, workload %s)\n", c.IRFile, c.Entry, c.Workload)
		}
		mode := c.Memory
		if mode == "" {
			mode = "spm"
		}
		fmt.Fprintf(&b, "  memory: %s\n", mode)
		return b.String()
	}
	s := c.SoC
	fmt.Fprintf(&b, "soc topology config (version 1)\n")
	fmt.Fprintf(&b, "  accelerators: %d, clusters: %d, spms: %d, dmas: %d, streams: %d\n",
		len(s.Accels), len(s.Clusters), len(s.SPMs), len(s.DMAs), len(s.Streams))
	for _, a := range s.Accels {
		what := a.Kernel
		if what == "" {
			what = a.IRFile + ":" + a.Entry
		}
		wiring := "crossbar"
		switch {
		case a.SPMBytes > 0:
			wiring = fmt.Sprintf("private SPM %d B", a.SPMBytes)
		case a.SharedSPM != "":
			wiring = "shared SPM " + a.SharedSPM
		}
		if a.Cluster != "" {
			wiring += ", cluster " + a.Cluster
		}
		fmt.Fprintf(&b, "  %s: %s (%s)\n", a.Name, what, wiring)
	}
	if s.LLC != nil {
		fmt.Fprintf(&b, "  llc: %d B\n", s.LLC.Bytes)
	}
	return b.String()
}
