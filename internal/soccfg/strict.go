package soccfg

import (
	"encoding/json"
	"fmt"
	"reflect"
	"sort"
	"strings"
)

// Unmarshal decodes JSON into v strictly: any key that does not
// correspond to a struct field anywhere in the document is an error
// carrying the full field path (`soc.accelerators[0].spm_bank`) and, when
// a field name is within small edit distance, a "did you mean" hint.
// encoding/json's DisallowUnknownFields reports only the bare key; a
// typo'd knob three levels deep in a topology file needs the path.
func Unmarshal(data []byte, v any) error {
	var generic any
	if err := json.Unmarshal(data, &generic); err != nil {
		return fmt.Errorf("config: %w", err)
	}
	rv := reflect.ValueOf(v)
	if rv.Kind() != reflect.Pointer || rv.IsNil() {
		return fmt.Errorf("config: Unmarshal target must be a non-nil pointer")
	}
	if err := checkUnknown("", generic, rv.Type().Elem()); err != nil {
		return err
	}
	// Structure is clean: let encoding/json do the actual decode (it
	// reports residual type errors with the Go field path).
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("config: %w", err)
	}
	return nil
}

// checkUnknown walks the decoded document in parallel with the target
// type, flagging object keys with no corresponding field.
func checkUnknown(path string, val any, t reflect.Type) error {
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	switch t.Kind() {
	case reflect.Struct:
		obj, ok := val.(map[string]any)
		if !ok {
			return nil // type mismatch: encoding/json reports it with context
		}
		fields := jsonFields(t)
		keys := make([]string, 0, len(obj))
		for k := range obj { //salam:vet:ok key collection feeding sort.Strings, order cannot escape
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			ft, ok := fields[k]
			if !ok {
				return unknownFieldErr(joinPath(path, k), k, fields)
			}
			if err := checkUnknown(joinPath(path, k), obj[k], ft); err != nil {
				return err
			}
		}
	case reflect.Slice, reflect.Array:
		arr, ok := val.([]any)
		if !ok {
			return nil
		}
		for i, e := range arr {
			if err := checkUnknown(fmt.Sprintf("%s[%d]", path, i), e, t.Elem()); err != nil {
				return err
			}
		}
	case reflect.Map:
		obj, ok := val.(map[string]any)
		if !ok {
			return nil
		}
		keys := make([]string, 0, len(obj))
		for k := range obj { //salam:vet:ok key collection feeding sort.Strings, order cannot escape
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if err := checkUnknown(joinPath(path, k), obj[k], t.Elem()); err != nil {
				return err
			}
		}
	}
	return nil
}

func joinPath(path, key string) string {
	if path == "" {
		return key
	}
	return path + "." + key
}

// jsonFields maps JSON keys to field types for t, flattening anonymous
// embedded structs the way encoding/json promotes their fields.
func jsonFields(t reflect.Type) map[string]reflect.Type {
	out := map[string]reflect.Type{}
	collectJSONFields(t, out)
	return out
}

func collectJSONFields(t reflect.Type, out map[string]reflect.Type) {
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			continue
		}
		tag := f.Tag.Get("json")
		name, _, _ := strings.Cut(tag, ",")
		if name == "-" {
			continue
		}
		if f.Anonymous && name == "" {
			ft := f.Type
			for ft.Kind() == reflect.Pointer {
				ft = ft.Elem()
			}
			if ft.Kind() == reflect.Struct {
				collectJSONFields(ft, out)
				continue
			}
		}
		if name == "" {
			name = f.Name
		}
		if _, exists := out[name]; !exists {
			out[name] = f.Type
		}
	}
}

func unknownFieldErr(path, key string, fields map[string]reflect.Type) error {
	if hint := nearestField(key, fields); hint != "" {
		return fmt.Errorf("config: %s: unknown field (did you mean %q?)", path, hint)
	}
	known := make([]string, 0, len(fields))
	for k := range fields { //salam:vet:ok key collection feeding sort.Strings, order cannot escape
		known = append(known, k)
	}
	sort.Strings(known)
	return fmt.Errorf("config: %s: unknown field (known fields: %s)", path, strings.Join(known, ", "))
}

// nearestField suggests a field within edit distance 2 of the typo.
func nearestField(key string, fields map[string]reflect.Type) string {
	best, bestDist := "", 3
	names := make([]string, 0, len(fields))
	for k := range fields { //salam:vet:ok key collection feeding sort.Strings, order cannot escape
		names = append(names, k)
	}
	sort.Strings(names)
	for _, name := range names {
		if d := editDistance(key, name); d < bestDist {
			best, bestDist = name, d
		}
	}
	return best
}

func editDistance(a, b string) int {
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
