package soccfg

import (
	"strings"
	"testing"
)

// The satellite regression: a typo'd knob must be an error naming the
// path and suggesting the real field — before this layer existed,
// "spm_bank" silently simulated the default bank count.
func TestUnknownFieldTypoPaths(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{
			name: "flat spm_bank typo",
			doc:  `{"kernel": "gemm", "spm_bank": 8}`,
			want: `spm_bank: unknown field (did you mean "spm_banks"?)`,
		},
		{
			name: "nested accelerator typo",
			doc: `{"version": 1, "soc": {"accelerators": [
				{"name": "a", "kernel": "gemm", "read_ports": 2},
				{"name": "b", "kernel": "gemm", "raed_ports": 2}
			]}}`,
			want: `soc.accelerators[1].raed_ports: unknown field (did you mean "read_ports"?)`,
		},
		{
			name: "typo inside cluster",
			doc:  `{"version": 1, "soc": {"clusters": [{"name": "c", "shared_spm_byte": 1024}], "accelerators": [{"name": "a", "kernel": "gemm"}]}}`,
			want: `soc.clusters[0].shared_spm_byte: unknown field (did you mean "shared_spm_bytes"?)`,
		},
		{
			name: "unrelated junk lists known fields",
			doc:  `{"kernel": "gemm", "zzzzqqq": 1}`,
			want: `zzzzqqq: unknown field (known fields:`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.doc))
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q\nwant substring %q", err, tc.want)
			}
		})
	}
}

func TestValidateFieldPaths(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"missing kernel", `{}`, "needs kernel or ir_file"},
		{"bad preset", `{"kernel": "gemm", "preset": "tiny"}`, `preset: unknown preset "tiny"`},
		{"bad memory", `{"kernel": "gemm", "memory": "dram"}`, `memory: unknown mode "dram"`},
		{"bad fu class", `{"kernel": "gemm", "fu_limits": {"fp_blender": 1}}`, `fu_limits.fp_blender: unknown FU class`},
		{"cache line not pow2", `{"kernel": "gemm", "memory": "cache", "cache_line": 48}`, "cache_line: 48 must be a power of two"},
		{"kernel and ir_file", `{"kernel": "gemm", "ir_file": "x.ll", "workload": "gemm"}`, "mutually exclusive"},
		{"ir_file without workload", `{"ir_file": "x.ll"}`, "workload: ir_file needs a workload"},
		{"version 2", `{"version": 2, "kernel": "gemm"}`, "unsupported version 2"},
		{"v1 without soc", `{"version": 1}`, "version 1 requires a soc object"},
		{"soc without version", `{"soc": {"accelerators": [{"name": "a", "kernel": "gemm"}]}}`, `topology form requires "version": 1`},
		{"no accelerators", `{"version": 1, "soc": {"accelerators": []}}`, "at least one accelerator required"},
		{
			"dangling shared_spm",
			`{"version": 1, "soc": {"spms": [{"name": "shared", "bytes": 1024}],
				"accelerators": [{"name": "a", "kernel": "gemm", "shared_spm": "sharde"}]}}`,
			`soc.accelerators[0].shared_spm: no SPM named "sharde"`,
		},
		{
			"dangling stream producer",
			`{"version": 1, "soc": {"accelerators": [{"name": "a", "kernel": "gemm"}, {"name": "b", "kernel": "relu", "size": [64]}],
				"streams": [{"name": "s", "producer": "x", "consumer": "b", "buffer_bytes": 256}]}}`,
			`soc.streams[0].producer: no accelerator named "x"`,
		},
		{
			"duplicate accelerator",
			`{"version": 1, "soc": {"accelerators": [{"name": "a", "kernel": "gemm"}, {"name": "a", "kernel": "gemm"}]}}`,
			`soc.accelerators[1].name: duplicate accelerator "a"`,
		},
		{
			"size and preset",
			`{"kernel": "gemm", "preset": "small", "size": [8]}`,
			"size and preset are mutually exclusive",
		},
		{
			"spm and shared_spm",
			`{"version": 1, "soc": {"spms": [{"name": "s", "bytes": 64}],
				"accelerators": [{"name": "a", "kernel": "gemm", "spm_bytes": 64, "shared_spm": "s"}]}}`,
			"spm_bytes and shared_spm are mutually exclusive",
		},
		{
			"out of range ports",
			`{"kernel": "gemm", "read_ports": 100000}`,
			"read_ports: 100000 out of range",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.doc))
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q\nwant substring %q", err, tc.want)
			}
		})
	}
}

func TestParseValidConfigs(t *testing.T) {
	docs := []string{
		`{"kernel": "gemm", "preset": "small", "clock_mhz": 100, "read_ports": 2,
		  "write_ports": 2, "memory": "spm", "spm_latency": 2, "spm_banks": 4, "spm_ports": 2}`,
		`{"kernel": "gemm", "memory": "cache", "cache_bytes": 4096, "cache_line": 64, "cache_assoc": 2, "cache_mshrs": 8}`,
		`{"ir_file": "gemm.ll", "entry": "gemm", "workload": "gemm", "preset": "small"}`,
		`{"version": 1, "soc": {
			"dram_mb": 16,
			"spms": [{"name": "shared", "bytes": 65536, "latency": 2, "banks": 4, "ports": 4}],
			"accelerators": [
				{"name": "conv", "kernel": "conv2d", "size": [12, 12], "shared_spm": "shared"},
				{"name": "relu", "kernel": "relu", "size": [100], "shared_spm": "shared"},
				{"name": "pool", "kernel": "maxpool", "size": [10, 10], "shared_spm": "shared"}
			]}}`,
		`{"version": 1, "soc": {
			"clusters": [{"name": "cnn", "shared_spm_bytes": 65536}],
			"llc": {"bytes": 65536, "line": 64, "assoc": 4},
			"accelerators": [
				{"name": "a", "kernel": "gemm", "size": [8], "cluster": "cnn", "shared_spm": "cluster"},
				{"name": "b", "kernel": "relu", "size": [64], "spm_bytes": 8192, "global": true}
			],
			"dmas": [{"name": "dma0", "kind": "block"}],
			"streams": [{"name": "ab", "producer": "a", "consumer": "b", "buffer_bytes": 1024}]}}`,
	}
	for i, doc := range docs {
		if _, err := Parse([]byte(doc)); err != nil {
			t.Errorf("doc %d: %v", i, err)
		}
	}
}

// Emit must be idempotent: parse -> emit -> parse -> emit is a fixpoint.
func TestEmitRoundTrip(t *testing.T) {
	doc := `{"version":1,"soc":{"spms":[{"name":"shared","bytes":65536}],
		"accelerators":[{"name":"conv","kernel":"conv2d","size":[12,12],"shared_spm":"shared"}]}}`
	c1, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	e1, err := c1.Emit()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Parse(e1)
	if err != nil {
		t.Fatalf("emitted config does not re-parse: %v\n%s", err, e1)
	}
	e2, err := c2.Emit()
	if err != nil {
		t.Fatal(err)
	}
	if string(e1) != string(e2) {
		t.Fatalf("emit not idempotent:\nfirst:\n%s\nsecond:\n%s", e1, e2)
	}
}

// FuzzSoCConfig: arbitrary bytes must yield an error or a valid Config —
// never a panic. The service layer parses untrusted config documents.
func FuzzSoCConfig(f *testing.F) {
	f.Add([]byte(`{"kernel": "gemm"}`))
	f.Add([]byte(`{"version": 1, "soc": {"accelerators": [{"name": "a", "kernel": "gemm"}]}}`))
	f.Add([]byte(`{"kernel": "gemm", "spm_bank": 8}`))
	f.Add([]byte(`{"version": 1, "soc": {"streams": [{"producer": "x"}], "accelerators": []}}`))
	f.Add([]byte(`[1, 2, 3]`))
	f.Add([]byte(`{"fu_limits": {"": -1}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Parse(data)
		if err != nil {
			return
		}
		// A config that parses must validate (Parse validates) and emit.
		if _, err := c.Emit(); err != nil {
			t.Fatalf("valid config failed to emit: %v", err)
		}
	})
}
