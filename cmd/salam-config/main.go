// Command salam-config is the declarative-config companion tool: it
// validates SoC configuration documents, summarizes topologies, lists the
// functional-unit classes the device config can limit (with their hardware
// profile numbers), and re-emits configs in canonical form.
//
// Usage:
//
//	salam-config validate configs/cnn_cluster.json ...
//	salam-config info configs/cnn_stream.json
//	salam-config list-fus
//	salam-config emit configs/gemm_spm.json > canonical.json
//
// validate exits 0 only when every named document decodes strictly (any
// unknown field is an error carrying its full path) and passes semantic
// validation; the first failure is printed with its field path. emit
// writes the canonical, idempotent JSON form to stdout — parse(emit(c))
// == c, byte for byte.
package main

import (
	"fmt"
	"os"

	"gosalam/internal/hw"
	"gosalam/internal/soccfg"
)

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  salam-config validate <config.json>...   strict-decode + semantic validation
  salam-config info <config.json>          summarize the topology
  salam-config list-fus                    FU classes usable in fu_limits, with 40nm profile data
  salam-config emit <config.json>          re-emit in canonical JSON form`)
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "validate":
		if len(os.Args) < 3 {
			usage()
		}
		bad := 0
		for _, path := range os.Args[2:] {
			if _, err := soccfg.Load(path); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
				bad++
				continue
			}
			fmt.Printf("%s: ok\n", path)
		}
		if bad > 0 {
			os.Exit(1)
		}
	case "info":
		if len(os.Args) != 3 {
			usage()
		}
		c, err := soccfg.Load(os.Args[2])
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(c.Describe())
	case "list-fus":
		if len(os.Args) != 2 {
			usage()
		}
		p := hw.Default40nm()
		fmt.Printf("%-16s %8s %10s %12s %12s %10s\n",
			"class", "latency", "pipelined", "area_um2", "leakage_mw", "energy_pj")
		for _, cls := range hw.AllFUClasses() {
			spec := p.Spec(cls)
			fmt.Printf("%-16s %8d %10t %12.1f %12.4f %10.2f\n",
				cls.String(), spec.Latency, spec.Pipelined,
				spec.AreaUM2, spec.LeakageMW, spec.EnergyPJ)
		}
	case "emit":
		if len(os.Args) != 3 {
			usage()
		}
		c, err := soccfg.Load(os.Args[2])
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		out, err := c.Emit()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Stdout.Write(out)
	default:
		usage()
	}
}
