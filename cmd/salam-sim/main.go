// Command salam-sim runs one accelerator simulation from a JSON
// configuration file (see configs/ for examples) and dumps results.
//
// Usage:
//
//	salam-sim -config configs/gemm_spm.json [-stats] [-timeline trace.json] [-timeline-breakdown]
//	salam-sim -config cfg.json -checkpoint img.gsnp -checkpoint-cycle 5000
//	salam-sim -config cfg.json -restore img.gsnp
//	salam-sim -config cfg.json -sample 3/20
package main

import (
	"flag"
	"fmt"
	"os"

	salam "gosalam"
	"gosalam/internal/snapshot"
	"gosalam/internal/soccfg"
	"gosalam/internal/timeline"
	"gosalam/kernels"
)

func main() {
	cfgPath := flag.String("config", "", "JSON run configuration")
	dumpStats := flag.Bool("stats", false, "dump the full statistics tree")
	profile := flag.String("profile", "", "write a per-cycle profile CSV here")
	tracePath := flag.String("timeline", "", "write a Perfetto-loadable trace_event JSON here")
	breakdown := flag.Bool("timeline-breakdown", false, "print the per-lane cycle-class breakdown (Fig. 10 style)")
	ckptPath := flag.String("checkpoint", "", "pause mid-run and write a snapshot image here (requires -checkpoint-cycle)")
	ckptCycle := flag.Uint64("checkpoint-cycle", 0, "accelerator cycle to pause at for -checkpoint")
	restorePath := flag.String("restore", "", "land a snapshot image written by -checkpoint and resume from it")
	samp := flag.String("sample", "", "interval sampling as k/n: simulate k of n committed-op intervals in detail and extrapolate the rest")
	flag.Parse()

	if *cfgPath == "" {
		fmt.Fprintln(os.Stderr, "need -config")
		os.Exit(2)
	}
	if *samp != "" && (*ckptPath != "" || *restorePath != "") {
		fmt.Fprintln(os.Stderr, "-sample cannot be combined with -checkpoint/-restore")
		os.Exit(2)
	}
	if *ckptPath != "" && *restorePath != "" {
		fmt.Fprintln(os.Stderr, "use either -checkpoint or -restore, not both")
		os.Exit(2)
	}
	if (*ckptPath != "") != (*ckptCycle != 0) {
		fmt.Fprintln(os.Stderr, "-checkpoint and -checkpoint-cycle go together")
		os.Exit(2)
	}
	cfg, err := soccfg.Load(*cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if cfg.Version != 0 {
		fmt.Fprintf(os.Stderr, "%s is a topology (version %d) config; salam-sim runs flat single-accelerator configs — inspect topologies with salam-config info\n", *cfgPath, cfg.Version)
		os.Exit(2)
	}
	k, opts, err := salam.KernelFromConfig(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *profile != "" {
		opts.ProfileCycles = 1 << 20
	}
	var traceJSON *timeline.JSON
	var traceBreak *timeline.Breakdown
	{
		var recs []timeline.Recorder
		if *tracePath != "" {
			traceJSON = timeline.NewJSON()
			recs = append(recs, traceJSON)
		}
		if *breakdown {
			traceBreak = timeline.NewBreakdown()
			recs = append(recs, traceBreak)
		}
		switch len(recs) {
		case 0:
		case 1:
			opts.Timeline = recs[0]
		default:
			opts.Timeline = timeline.NewTee(recs...)
		}
	}
	if *samp != "" {
		var kk, nn int
		if _, err := fmt.Sscanf(*samp, "%d/%d", &kk, &nn); err != nil {
			fmt.Fprintf(os.Stderr, "bad -sample %q: want k/n, e.g. 3/20\n", *samp)
			os.Exit(2)
		}
		opts.Sample = salam.SampleSpec{K: kk, N: nn}
	}

	var res *salam.Result
	switch {
	case *restorePath != "":
		res, err = restoreRun(k, opts, *restorePath)
	case *ckptPath != "":
		res, err = checkpointRun(k, opts, *ckptPath, *ckptCycle)
	default:
		res, err = salam.RunKernel(k, opts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("kernel:          %s\n", k.Name)
	if res.Estimated {
		fmt.Printf("cycles:          %d (estimated, ±%.2f%%)\n", res.Cycles, res.SampleError*100)
		fmt.Printf("simulated time:  %.3f µs (estimated)\n", float64(res.Ticks)/1e6)
		fmt.Printf("sampled:         %d detailed intervals, %d/%d ops simulated (%.4f cycles/op steady rate)\n",
			len(res.Sample.Intervals), res.Sample.MeasuredOps,
			res.Sample.MeasuredOps+res.Sample.RemainingOps, res.Sample.CyclesPerOp)
		fmt.Printf("golden check:    skipped (sampled run)\n")
	} else {
		fmt.Printf("cycles:          %d\n", res.Cycles)
		fmt.Printf("simulated time:  %.3f µs\n", float64(res.Ticks)/1e6)
		fmt.Printf("golden check:    ok\n")
	}
	fmt.Printf("power:           %s\n", res.Power)
	fmt.Printf("datapath area:   %.0f µm² (+ %.0f µm² memory)\n",
		res.Power.AreaFU+res.Power.AreaReg, res.Power.AreaSPM)
	if *dumpStats {
		fmt.Println("---- statistics ----")
		res.Stats.Dump(os.Stdout)
	}
	if *profile != "" {
		f, err := os.Create(*profile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := res.Acc.Profile().WriteCSV(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		iss, stall, avg := res.Acc.Profile().Summary()
		fmt.Printf("profile:         %s (%d samples; %d issue cycles, %d stalls, avg queue %.1f)\n",
			*profile, len(res.Acc.Profile().Samples), iss, stall, avg)
	}
	if traceJSON != nil {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		werr := traceJSON.Write(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, werr)
			os.Exit(1)
		}
		fmt.Printf("timeline:        %s (%d events; load in ui.perfetto.dev or chrome://tracing)\n",
			*tracePath, traceJSON.Events())
	}
	if traceBreak != nil {
		fmt.Println("---- cycle breakdown ----")
		traceBreak.WriteTable(os.Stdout)
	}
}

// checkpointRun pauses the run at the given accelerator cycle, writes the
// snapshot image, and resumes to completion so the printed result is the
// full (exact) run.
func checkpointRun(k *kernels.Kernel, opts salam.RunOpts, path string, cycle uint64) (*salam.Result, error) {
	s, err := salam.NewSession(k, opts)
	if err != nil {
		return nil, err
	}
	finished, err := s.RunToCycle(opts, cycle)
	if err != nil {
		return nil, err
	}
	if finished {
		fmt.Fprintf(os.Stderr, "warning: kernel finished before cycle %d; no checkpoint written\n", cycle)
		return s.Resume(opts)
	}
	img, err := s.Checkpoint()
	if err != nil {
		return nil, err
	}
	enc, err := img.Encode()
	if err != nil {
		return nil, err
	}
	if err := os.WriteFile(path, enc, 0o644); err != nil {
		return nil, err
	}
	fmt.Printf("checkpoint:      %s (%d bytes at cycle %d)\n", path, len(enc), cycle)
	return s.Resume(opts)
}

// restoreRun lands a snapshot image in a fresh session and resumes it. The
// config must match the one the image was captured under; Restore refuses
// a mismatched fingerprint.
func restoreRun(k *kernels.Kernel, opts salam.RunOpts, path string) (*salam.Result, error) {
	enc, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	img, err := snapshot.Decode(enc)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	s, err := salam.NewSession(k, opts)
	if err != nil {
		return nil, err
	}
	if err := s.Restore(opts, img); err != nil {
		return nil, err
	}
	fmt.Printf("restored:        %s\n", path)
	return s.Resume(opts)
}
