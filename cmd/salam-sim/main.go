// Command salam-sim runs one accelerator simulation from a JSON
// configuration file (see configs/ for examples) and dumps results.
//
// Usage:
//
//	salam-sim -config configs/gemm_spm.json [-stats] [-timeline trace.json] [-timeline-breakdown]
package main

import (
	"flag"
	"fmt"
	"os"

	salam "gosalam"
	"gosalam/internal/config"
	"gosalam/internal/timeline"
)

func main() {
	cfgPath := flag.String("config", "", "JSON run configuration")
	dumpStats := flag.Bool("stats", false, "dump the full statistics tree")
	profile := flag.String("profile", "", "write a per-cycle profile CSV here")
	tracePath := flag.String("timeline", "", "write a Perfetto-loadable trace_event JSON here")
	breakdown := flag.Bool("timeline-breakdown", false, "print the per-lane cycle-class breakdown (Fig. 10 style)")
	flag.Parse()

	if *cfgPath == "" {
		fmt.Fprintln(os.Stderr, "need -config")
		os.Exit(2)
	}
	cfg, err := config.Load(*cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	k, opts, err := cfg.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *profile != "" {
		opts.ProfileCycles = 1 << 20
	}
	var traceJSON *timeline.JSON
	var traceBreak *timeline.Breakdown
	{
		var recs []timeline.Recorder
		if *tracePath != "" {
			traceJSON = timeline.NewJSON()
			recs = append(recs, traceJSON)
		}
		if *breakdown {
			traceBreak = timeline.NewBreakdown()
			recs = append(recs, traceBreak)
		}
		switch len(recs) {
		case 0:
		case 1:
			opts.Timeline = recs[0]
		default:
			opts.Timeline = timeline.NewTee(recs...)
		}
	}
	res, err := salam.RunKernel(k, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("kernel:          %s\n", k.Name)
	fmt.Printf("cycles:          %d\n", res.Cycles)
	fmt.Printf("simulated time:  %.3f µs\n", float64(res.Ticks)/1e6)
	fmt.Printf("golden check:    ok\n")
	fmt.Printf("power:           %s\n", res.Power)
	fmt.Printf("datapath area:   %.0f µm² (+ %.0f µm² memory)\n",
		res.Power.AreaFU+res.Power.AreaReg, res.Power.AreaSPM)
	if *dumpStats {
		fmt.Println("---- statistics ----")
		res.Stats.Dump(os.Stdout)
	}
	if *profile != "" {
		f, err := os.Create(*profile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := res.Acc.Profile().WriteCSV(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		iss, stall, avg := res.Acc.Profile().Summary()
		fmt.Printf("profile:         %s (%d samples; %d issue cycles, %d stalls, avg queue %.1f)\n",
			*profile, len(res.Acc.Profile().Samples), iss, stall, avg)
	}
	if traceJSON != nil {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		werr := traceJSON.Write(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, werr)
			os.Exit(1)
		}
		fmt.Printf("timeline:        %s (%d events; load in ui.perfetto.dev or chrome://tracing)\n",
			*tracePath, traceJSON.Events())
	}
	if traceBreak != nil {
		fmt.Println("---- cycle breakdown ----")
		traceBreak.WriteTable(os.Stdout)
	}
}
