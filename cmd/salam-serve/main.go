// Command salam-serve is the simulation-campaign daemon: a multi-tenant
// HTTP/JSON service that accepts design-space submissions, runs them
// through the warm-start campaign engine, and streams per-point results as
// NDJSON in deterministic submission order. Several salam-serve processes
// configured as shards of one store split every sweep with zero duplicated
// simulation; -merge reassembles the combined, byte-identical result.
//
// Usage:
//
//	salam-serve -addr :8080 -store results/store
//	salam-serve -addr :8081 -store results/store -shard 0/2
//	salam-serve -addr :8082 -store results/store -shard 1/2
//	salam-serve -merge -store results/store -space space.json > merged.ndjson
//
// API:
//
//	POST /v1/campaigns                 submit a space spec (JSON body)
//	GET  /v1/campaigns                 list campaigns
//	GET  /v1/campaigns/{id}            status
//	GET  /v1/campaigns/{id}/results    NDJSON stream (resume with ?from=idx)
//	GET  /healthz                      liveness (503 while draining)
//	GET  /statsz                       counters + elab-cache hit rate
//
// SIGTERM/SIGINT drains gracefully: in-flight points finish and persist to
// the store, queued work is rejected, then the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"gosalam/internal/campaign"
	"gosalam/internal/serve"
	"gosalam/internal/soccfg"
)

// parseShard parses "k/n" into a Shard.
func parseShard(s string) (campaign.Shard, error) {
	if s == "" {
		return campaign.Shard{}, nil
	}
	idx := strings.IndexByte(s, '/')
	if idx < 0 {
		return campaign.Shard{}, fmt.Errorf("invalid shard %q: want k/n (e.g. 0/2)", s)
	}
	k, err1 := strconv.Atoi(s[:idx])
	n, err2 := strconv.Atoi(s[idx+1:])
	if err1 != nil || err2 != nil {
		return campaign.Shard{}, fmt.Errorf("invalid shard %q: want k/n (e.g. 0/2)", s)
	}
	sh := campaign.Shard{Index: k, Count: n}
	if !sh.Valid() {
		return campaign.Shard{}, fmt.Errorf("invalid shard %d/%d: want 0 <= k < n", k, n)
	}
	return sh, nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for a random port)")
	storeDir := flag.String("store", "", "shared result-store directory (required with -shard and -merge)")
	shardSpec := flag.String("shard", "", "claim only points whose key maps to shard k of n, as k/n (empty = all)")
	workers := flag.Int("workers", 0, "worker pool per campaign (0 = GOMAXPROCS)")
	active := flag.Int("active", 2, "campaigns running concurrently")
	queue := flag.Int("queue", 16, "submission queue depth before load shedding")
	maxPoints := flag.Int("max-points", 4096, "largest accepted design space")
	tenantActive := flag.Int("tenant-active", 4, "per-tenant queued+running campaign quota")
	tenantPoints := flag.Int("tenant-points", 16384, "per-tenant queued+running point quota")
	deadline := flag.Duration("deadline", 10*time.Minute, "per-campaign deadline (0 = none)")
	merge := flag.Bool("merge", false, "merge mode: read -space, emit merged NDJSON rows from -store, exit")
	spacePath := flag.String("space", "", "space spec JSON file for -merge (\"-\" = stdin)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "salam-serve:", err)
		os.Exit(2)
	}

	shard, err := parseShard(*shardSpec)
	if err != nil {
		fail(err)
	}

	if *merge {
		if *storeDir == "" || *spacePath == "" {
			fail(fmt.Errorf("-merge needs -store and -space"))
		}
		var data []byte
		if *spacePath == "-" {
			data, err = io.ReadAll(os.Stdin)
		} else {
			data, err = os.ReadFile(*spacePath)
		}
		if err != nil {
			fail(err)
		}
		var space campaign.Space
		if err := soccfg.Unmarshal(data, &space); err != nil {
			fail(fmt.Errorf("decoding %s: %w", *spacePath, err))
		}
		store, err := campaign.OpenCache(*storeDir)
		if err != nil {
			fail(err)
		}
		missing, err := serve.Merge(space, store, os.Stdout)
		if err != nil {
			fail(err)
		}
		if missing > 0 {
			fmt.Fprintf(os.Stderr, "salam-serve: %d point(s) missing from the store (shards still running, or failed points)\n", missing)
			os.Exit(1)
		}
		return
	}

	cfg := serve.Config{
		Shard:        shard,
		Workers:      *workers,
		MaxActive:    *active,
		QueueDepth:   *queue,
		MaxPoints:    *maxPoints,
		TenantActive: *tenantActive,
		TenantPoints: *tenantPoints,
		Deadline:     *deadline,
	}
	if *storeDir != "" {
		store, err := campaign.OpenCache(*storeDir)
		if err != nil {
			fail(err)
		}
		cfg.Store = store
	}
	srv, err := serve.NewServer(cfg)
	if err != nil {
		fail(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "salam-serve: listening on http://%s", ln.Addr())
	if shard.Count > 1 {
		fmt.Fprintf(os.Stderr, " (shard %d/%d)", shard.Index, shard.Count)
	}
	fmt.Fprintln(os.Stderr)

	httpSrv := &http.Server{Handler: srv}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "salam-serve: %v: draining (in-flight points will finish and persist)\n", sig)
		srv.Drain()
		srv.Wait()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx) //nolint:errcheck // lingering streams are cut at the deadline
		fmt.Fprintln(os.Stderr, "salam-serve: drained")
	case err := <-errCh:
		if err != nil && err != http.ErrServerClosed {
			fail(err)
		}
	}
}
