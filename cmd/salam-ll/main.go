// Command salam-ll is the IR tool: it parses, verifies, optimizes, prints,
// statically elaborates, and functionally executes textual IR or built-in
// kernels.
//
// Usage:
//
//	salam-ll -kernel gemm            # print a MachSuite kernel's IR
//	salam-ll -kernel fft -elaborate  # show the static CDFG report
//	salam-ll -in kernel.ll -verify   # parse + verify a .ll file
//	salam-ll -in kernel.ll -opt      # run constant folding + DCE
package main

import (
	"flag"
	"fmt"
	"os"

	"gosalam/internal/core"
	"gosalam/internal/hw"
	"gosalam/ir"
	"gosalam/kernels"
)

func main() {
	inFile := flag.String("in", "", "textual IR file to load")
	kernel := flag.String("kernel", "", "built-in kernel name (e.g. gemm, fft, spmv)")
	doVerify := flag.Bool("verify", false, "verify only; print nothing on success")
	doOpt := flag.Bool("opt", false, "run constant folding, CSE and DCE before printing")
	doElab := flag.Bool("elaborate", false, "print the static elaboration report")
	doInterp := flag.Bool("interp", false, "functionally execute a built-in kernel and check its golden")
	seed := flag.Int64("seed", 1, "dataset seed for -interp")
	unroll := flag.Int("unroll", 0, "unroll canonical loops by this factor")
	flag.Parse()

	var m *ir.Module
	var builtin *kernels.Kernel
	switch {
	case *kernel != "":
		k := kernels.ByName(kernels.Default, *kernel)
		builtin = k
		if k == nil {
			fmt.Fprintf(os.Stderr, "unknown kernel %q; available:", *kernel)
			for _, kk := range kernels.All(kernels.Default) {
				fmt.Fprintf(os.Stderr, " %s", kk.Name)
			}
			fmt.Fprintln(os.Stderr)
			os.Exit(2)
		}
		m = k.M
	case *inFile != "":
		src, err := os.ReadFile(*inFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		m, err = ir.Parse(*inFile, string(src))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "need -in or -kernel")
		os.Exit(2)
	}

	if err := ir.VerifyModule(m); err != nil {
		fmt.Fprintln(os.Stderr, "verify:", err)
		os.Exit(1)
	}
	for _, f := range m.Funcs {
		if *unroll > 1 {
			for _, l := range ir.FindLoops(f) {
				if err := ir.Unroll(f, l, *unroll); err != nil {
					fmt.Fprintf(os.Stderr, "unroll %s: %v\n", l.Header.Name(), err)
				}
			}
			if err := ir.Verify(f); err != nil {
				fmt.Fprintln(os.Stderr, "verify after unroll:", err)
				os.Exit(1)
			}
		}
		if *doOpt {
			ir.Optimize(f)
		}
	}

	if *doElab {
		for _, f := range m.Funcs {
			g, err := core.Elaborate(f, hw.Default40nm(), nil)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Print(g.Summary())
			fmt.Printf("  datapath area: %.0f µm², leakage: %.3f mW\n",
				g.AreaUM2(), g.StaticFULeakageMW()+g.StaticRegLeakageMW())
		}
		return
	}
	if *doInterp {
		if builtin == nil {
			fmt.Fprintln(os.Stderr, "-interp needs -kernel (goldens come from the workload generator)")
			os.Exit(2)
		}
		mem := ir.NewFlatMem(0, 1<<24)
		inst := builtin.Setup(mem, *seed)
		_, stats, err := ir.Exec(builtin.F, inst.Args, mem, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := inst.Check(mem); err != nil {
			fmt.Fprintln(os.Stderr, "golden mismatch:", err)
			os.Exit(1)
		}
		fmt.Printf("kernel:   %s (seed %d)\n", builtin.Name, *seed)
		fmt.Printf("steps:    %d dynamic instructions\n", stats.Steps)
		fmt.Printf("memory:   %d reads, %d writes\n", stats.MemReads, stats.MemWrites)
		fmt.Printf("golden:   ok\n")
		return
	}
	if *doVerify {
		fmt.Fprintln(os.Stderr, "ok")
		return
	}
	fmt.Print(ir.Print(m))
}
