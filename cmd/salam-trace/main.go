// Command salam-trace drives the Aladdin-style trace-based baseline: it
// instruments a kernel run into a gzip trace file, reverse-engineers the
// datapath under a chosen memory model, and schedules the trace graph —
// the flow gem5-SALAM's Tables I, II and IV compare against.
//
// Usage:
//
//	salam-trace -kernel spmv -out spmv.trace.gz         # generate
//	salam-trace -in spmv.trace.gz -mem spm:2            # simulate
//	salam-trace -kernel gemm -mem cache:4096            # both in one go
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"gosalam/internal/hw"
	"gosalam/internal/trace"
	"gosalam/ir"
	"gosalam/kernels"
)

func memModel(spec string) (trace.MemModel, error) {
	parts := strings.SplitN(spec, ":", 2)
	switch parts[0] {
	case "spm":
		lat := 2
		if len(parts) == 2 {
			v, err := strconv.Atoi(parts[1])
			if err != nil {
				return nil, err
			}
			lat = v
		}
		return trace.FixedLatency{Cycles: lat, Label: "spm"}, nil
	case "cache":
		size := 4096
		if len(parts) == 2 {
			v, err := strconv.Atoi(parts[1])
			if err != nil {
				return nil, err
			}
			size = v
		}
		return trace.NewCacheProbe(size, 64, 2, 2, 20), nil
	}
	return nil, fmt.Errorf("unknown memory model %q (spm:N or cache:BYTES)", spec)
}

func main() {
	kernel := flag.String("kernel", "", "kernel to trace (generation)")
	preset := flag.String("preset", "small", "workload preset")
	seed := flag.Int64("seed", 1, "dataset seed")
	out := flag.String("out", "", "write the gzip trace here")
	in := flag.String("in", "", "simulate an existing trace file")
	memSpec := flag.String("mem", "spm:2", "memory model: spm:LAT or cache:BYTES")
	ports := flag.Int("ports", 2, "read/write ports for trace scheduling")
	flag.Parse()

	mm, err := memModel(*memSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var tr *trace.Trace
	switch {
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		start := time.Now()
		tr, err = trace.Read(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "loaded %d entries in %.2fs\n", len(tr.Entries), time.Since(start).Seconds())
	case *kernel != "":
		p := kernels.Small
		if *preset == "default" {
			p = kernels.Default
		}
		k := kernels.ByName(p, *kernel)
		if k == nil {
			fmt.Fprintf(os.Stderr, "unknown kernel %q\n", *kernel)
			os.Exit(2)
		}
		mem := ir.NewFlatMem(0, 1<<24)
		inst := k.Setup(mem, *seed)
		start := time.Now()
		tr, err = trace.Generate(k.F, inst.Args, mem, hw.Default40nm())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "traced %d entries in %.2fs\n", len(tr.Entries), time.Since(start).Seconds())
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := tr.Write(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			f.Close()
			fi, _ := os.Stat(*out)
			fmt.Fprintf(os.Stderr, "wrote %s (%d bytes gzip)\n", *out, fi.Size())
			return
		}
	default:
		fmt.Fprintln(os.Stderr, "need -kernel (generate) or -in (simulate)")
		os.Exit(2)
	}

	// Datapath reconstruction + trace-graph scheduling.
	start := time.Now()
	dp := trace.BuildDatapath(tr, mm)
	cycles := trace.Simulate(tr, dp, mm, *ports, *ports)
	fmt.Fprintf(os.Stderr, "scheduled in %.2fs\n", time.Since(start).Seconds())

	fmt.Printf("memory model:  %s\n", mm.Name())
	fmt.Printf("trace length:  %d dynamic instructions\n", len(tr.Entries))
	fmt.Printf("cycles:        %d\n", cycles)
	fmt.Printf("datapath (reverse-engineered, max per-cycle parallelism):\n")
	for _, c := range hw.AllFUClasses() {
		if n := dp.FUCount[c]; n > 0 {
			fmt.Printf("  %-16s %d\n", c, n)
		}
	}
	fmt.Printf("implied area:  %.0f µm²\n", dp.AreaUM2(hw.Default40nm()))
}
