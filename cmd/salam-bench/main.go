// salam-bench records the repo's engine-performance trajectory. It runs the
// hot-path benchmarks (single-kernel engine throughput for GEMM and BFS,
// plus the parallel DSE campaign) through testing.Benchmark and appends one
// labeled point to BENCH_engine.json, so before/after numbers for engine
// work live in the repo instead of in commit messages.
//
// Usage:
//
//	go run ./cmd/salam-bench -label pr2-after [-out BENCH_engine.json]
//	go run ./cmd/salam-bench -diff                # compare last two points
//	go run ./cmd/salam-bench -cpuprofile cpu.out  # profile the suite
//
// Re-running with an existing label replaces that point in place. -diff
// compares the last two recorded points and exits non-zero when an Engine*
// benchmark regressed more than 10% in ns/op; other benchmarks are
// reported but advisory.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"testing"
	"time"

	salam "gosalam"
	"gosalam/internal/campaign"
	"gosalam/internal/search"
	"gosalam/kernels"
)

// benchResult is one benchmark's recorded numbers.
type benchResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	SimCycles   uint64  `json:"sim_cycles,omitempty"`
	Iterations  int     `json:"iterations"`
	// SampleError is the measured relative cycle error of a sampled
	// benchmark against its exact sibling (EngineGEMMSampled only).
	SampleError float64 `json:"sample_error,omitempty"`
	// Speedup is the exact-vs-sampled ns/op ratio (EngineGEMMSampled only).
	Speedup float64 `json:"speedup,omitempty"`
}

// point is one labeled run of the whole suite.
type point struct {
	Label      string                 `json:"label"`
	Date       string                 `json:"date"`
	GoVersion  string                 `json:"go_version"`
	MaxProcs   int                    `json:"gomaxprocs"`
	Benchmarks map[string]benchResult `json:"benchmarks"`
}

type benchFile struct {
	Points []point `json:"points"`
}

func record(br testing.BenchmarkResult, simCycles uint64) benchResult {
	return benchResult{
		NsPerOp:     float64(br.T.Nanoseconds()) / float64(br.N),
		AllocsPerOp: br.AllocsPerOp(),
		BytesPerOp:  br.AllocedBytesPerOp(),
		SimCycles:   simCycles,
		Iterations:  br.N,
	}
}

// engineBench runs one kernel repeatedly through RunKernel.
func engineBench(k *kernels.Kernel) (testing.BenchmarkResult, uint64) {
	var cycles uint64
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := salam.RunKernel(k, salam.DefaultRunOpts())
			if err != nil {
				b.Fatal(err)
			}
			cycles = res.Cycles
		}
	})
	return br, cycles
}

// engineSampledBench runs one kernel repeatedly with interval sampling.
func engineSampledBench(k *kernels.Kernel, spec salam.SampleSpec) (testing.BenchmarkResult, uint64, float64) {
	var est uint64
	var bound float64
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			opts := salam.DefaultRunOpts()
			opts.Sample = spec
			res, err := salam.RunKernel(k, opts)
			if err != nil {
				b.Fatal(err)
			}
			if !res.Estimated {
				b.Fatalf("%s finished inside the detailed prefix; enlarge the kernel", k.Name)
			}
			est, bound = res.Cycles, res.SampleError
		}
	})
	return br, est, bound
}

// gemmTreeSweepJobs builds the Fig. 13-style 12-point GEMMTree sweep
// shared by the campaign benchmarks.
func gemmTreeSweepJobs() []campaign.Job {
	k := kernels.GEMMTree(8)
	var jobs []campaign.Job
	for _, fu := range []int{2, 4, 8, 16} {
		for _, port := range []int{2, 4, 8} {
			opts := salam.DefaultRunOpts()
			opts.Accel.ReadPorts, opts.Accel.WritePorts = port, port
			opts.Accel.MaxOutstanding = 2 * port
			opts.SPMPortsPer = port
			opts.Accel.ResQueueSize = 1024
			opts.Accel.FULimits = map[salam.FUClass]int{
				salam.FUFPAdder: fu, salam.FUFPMultiplier: fu,
			}
			jobs = append(jobs, campaign.Job{
				ID:        fmt.Sprintf("fu=%d p=%d", fu, port),
				Kernel:    k,
				KernelKey: "gemm_tree/n=8",
				Opts:      opts,
			})
		}
	}
	return jobs
}

// campaignBench runs the sweep at full parallelism.
func campaignBench() testing.BenchmarkResult {
	jobs := gemmTreeSweepJobs()
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out := campaign.Run(context.Background(), campaign.Config{}, jobs)
			if err := campaign.FirstError(out); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// campaignPrunedBench runs the same sweep with static lower-bound pruning:
// points the analyzer proves worse than the pilot measurement are skipped,
// so the ns/op delta against DSECampaign is the wall-clock pruning saves.
func campaignPrunedBench() testing.BenchmarkResult {
	jobs := gemmTreeSweepJobs()
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out := campaign.Run(context.Background(),
				campaign.Config{Prune: campaign.StaticPrune}, jobs)
			if err := campaign.FirstError(out); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// campaignWarmBench measures steady-state design-point throughput: the
// same sweep as campaignBench, but on a persistent pre-warmed SessionPool
// so every job is an elaboration-cache hit running in a pooled system.
func campaignWarmBench() testing.BenchmarkResult {
	jobs := gemmTreeSweepJobs()
	pool := salam.NewSessionPool()
	cfg := campaign.Config{Sessions: pool}
	// Warm the pool (and the elaboration cache) before timing.
	if err := campaign.FirstError(campaign.Run(context.Background(), cfg, jobs)); err != nil {
		fmt.Fprintf(os.Stderr, "salam-bench: warmup failed: %v\n", err)
		os.Exit(1)
	}
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out := campaign.Run(context.Background(), cfg, jobs)
			if err := campaign.FirstError(out); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// dseSearchBench proves the exact Pareto frontier of a 10⁶-point ranged
// GEMM space by branch-and-bound (internal/search): 1000 FU limits × 100
// port widths × 10 bank counts, of which the search simulates <1%.
func dseSearchBench() testing.BenchmarkResult {
	space := campaign.Space{
		Kernel:    "gemm",
		FURange:   &campaign.Range{Min: 1, Max: 1000},
		PortRange: &campaign.Range{Min: 1, Max: 100},
		BankRange: &campaign.Range{Min: 1, Max: 10},
	}
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := search.Run(context.Background(), search.Config{Space: space})
			if err != nil {
				b.Fatal(err)
			}
			if res.Evaluated*100 >= res.Points || len(res.Frontier) == 0 {
				b.Fatalf("search evaluated %d of %d points, frontier %d",
					res.Evaluated, res.Points, len(res.Frontier))
			}
		}
	})
}

// dseSearchEDPBench minimizes energy-delay product over a 2×10⁵-point
// ranged GEMM space: the single-objective mode where the provable energy
// floor prunes regions outright (PrunedPoints must be nonzero).
func dseSearchEDPBench() testing.BenchmarkResult {
	space := campaign.Space{
		Kernel:    "gemm",
		FURange:   &campaign.Range{Min: 1, Max: 500},
		PortRange: &campaign.Range{Min: 1, Max: 50},
		BankRange: &campaign.Range{Min: 1, Max: 8},
		Objective: "edp",
	}
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := search.Run(context.Background(), search.Config{Space: space})
			if err != nil {
				b.Fatal(err)
			}
			if res.PrunedPoints == 0 || len(res.Frontier) != 1 {
				b.Fatalf("EDP search pruned %d points, result %d", res.PrunedPoints, len(res.Frontier))
			}
		}
	})
}

// diffPoints compares the last two recorded points, printing a per-bench
// delta table. It returns false when an Engine* benchmark regressed more
// than 10% in ns/op.
func diffPoints(f benchFile) bool {
	if len(f.Points) < 2 {
		fmt.Fprintln(os.Stderr, "salam-bench: need at least two recorded points to diff")
		return false
	}
	oldP, newP := f.Points[len(f.Points)-2], f.Points[len(f.Points)-1]
	fmt.Printf("comparing %q -> %q\n", oldP.Label, newP.Label)
	ok := true
	for _, name := range sortedBenchNames(oldP, newP) {
		o, haveOld := oldP.Benchmarks[name]
		n, haveNew := newP.Benchmarks[name]
		if !haveOld || !haveNew {
			fmt.Printf("  %-14s only in %q\n", name, pickLabel(haveNew, newP.Label, oldP.Label))
			continue
		}
		delta := (n.NsPerOp - o.NsPerOp) / o.NsPerOp * 100
		gating := len(name) >= 6 && name[:6] == "Engine"
		status := "ok"
		if delta > 10 {
			if gating {
				status = "FAIL (>10% regression)"
				ok = false
			} else {
				status = "regressed (advisory)"
			}
		}
		fmt.Printf("  %-14s %12.0f -> %12.0f ns/op  %+6.1f%%  allocs %6d -> %6d  %s\n",
			name, o.NsPerOp, n.NsPerOp, delta, o.AllocsPerOp, n.AllocsPerOp, status)
		if o.SimCycles != 0 && n.SimCycles != 0 && o.SimCycles != n.SimCycles {
			fmt.Printf("  %-14s sim-cycles drifted: %d -> %d\n", name, o.SimCycles, n.SimCycles)
			ok = false
		}
	}
	return ok
}

func pickLabel(inNew bool, newLabel, oldLabel string) string {
	if inNew {
		return newLabel
	}
	return oldLabel
}

func sortedBenchNames(a, b point) []string {
	seen := map[string]bool{}
	var names []string
	for _, p := range []point{a, b} {
		for name := range p.Benchmarks {
			if !seen[name] {
				seen[name] = true
				names = append(names, name)
			}
		}
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}

func main() {
	label := flag.String("label", "dev", "name for this measurement point")
	out := flag.String("out", "BENCH_engine.json", "output JSON file (appended/updated in place)")
	diff := flag.Bool("diff", false, "compare the last two recorded points instead of benchmarking")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the benchmark suite to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (after the suite) to this file")
	flag.Parse()

	if *diff {
		var f benchFile
		raw, err := os.ReadFile(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "salam-bench: %v\n", err)
			os.Exit(1)
		}
		if err := json.Unmarshal(raw, &f); err != nil {
			fmt.Fprintf(os.Stderr, "salam-bench: %s: %v\n", *out, err)
			os.Exit(1)
		}
		if !diffPoints(f) {
			os.Exit(1)
		}
		return
	}

	if *cpuProfile != "" {
		pf, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "salam-bench: %v\n", err)
			os.Exit(1)
		}
		defer pf.Close()
		if err := pprof.StartCPUProfile(pf); err != nil {
			fmt.Fprintf(os.Stderr, "salam-bench: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	benches := map[string]benchResult{}

	fmt.Fprintf(os.Stderr, "salam-bench: EngineGEMM...\n")
	br, cycles := engineBench(kernels.GEMM(8, 1))
	benches["EngineGEMM"] = record(br, cycles)
	fmt.Fprintf(os.Stderr, "  %s  sim-cycles=%d\n", br.String(), cycles)

	fmt.Fprintf(os.Stderr, "salam-bench: EngineBFS...\n")
	br, cycles = engineBench(kernels.BFS(64, 4))
	benches["EngineBFS"] = record(br, cycles)
	fmt.Fprintf(os.Stderr, "  %s  sim-cycles=%d\n", br.String(), cycles)

	fmt.Fprintf(os.Stderr, "salam-bench: EngineGEMMLarge...\n")
	largeGEMM := kernels.ByName(kernels.Large, "gemm")
	br, cycles = engineBench(largeGEMM)
	benches["EngineGEMMLarge"] = record(br, cycles)
	exactLarge := cycles
	fmt.Fprintf(os.Stderr, "  %s  sim-cycles=%d\n", br.String(), cycles)

	fmt.Fprintf(os.Stderr, "salam-bench: EngineGEMMSampled...\n")
	br, est, bound := engineSampledBench(largeGEMM, salam.SampleSpec{K: 2, N: 32})
	sampled := record(br, est)
	sampled.SampleError = math.Abs(float64(est)-float64(exactLarge)) / float64(exactLarge)
	sampled.Speedup = benches["EngineGEMMLarge"].NsPerOp / sampled.NsPerOp
	benches["EngineGEMMSampled"] = sampled
	fmt.Fprintf(os.Stderr, "  %s  est-cycles=%d exact=%d err=%.4f bound=%.4f speedup=%.1fx\n",
		br.String(), est, exactLarge, sampled.SampleError, bound, sampled.Speedup)

	fmt.Fprintf(os.Stderr, "salam-bench: DSECampaign...\n")
	br = campaignBench()
	benches["DSECampaign"] = record(br, 0)
	fmt.Fprintf(os.Stderr, "  %s\n", br.String())

	fmt.Fprintf(os.Stderr, "salam-bench: DSECampaignPruned...\n")
	br = campaignPrunedBench()
	benches["DSECampaignPruned"] = record(br, 0)
	fmt.Fprintf(os.Stderr, "  %s\n", br.String())

	fmt.Fprintf(os.Stderr, "salam-bench: CampaignWarm...\n")
	br = campaignWarmBench()
	benches["CampaignWarm"] = record(br, 0)
	fmt.Fprintf(os.Stderr, "  %s\n", br.String())

	fmt.Fprintf(os.Stderr, "salam-bench: DSESearch...\n")
	br = dseSearchBench()
	benches["DSESearch"] = record(br, 0)

	fmt.Fprintf(os.Stderr, "salam-bench: DSESearchEDP...\n")
	br = dseSearchEDPBench()
	benches["DSESearchEDP"] = record(br, 0)
	fmt.Fprintf(os.Stderr, "  %s\n", br.String())

	if *memProfile != "" {
		mf, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "salam-bench: %v\n", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(mf); err != nil {
			fmt.Fprintf(os.Stderr, "salam-bench: %v\n", err)
			os.Exit(1)
		}
		mf.Close()
	}

	var f benchFile
	if raw, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(raw, &f); err != nil {
			fmt.Fprintf(os.Stderr, "salam-bench: %s corrupt, starting fresh: %v\n", *out, err)
			f = benchFile{}
		}
	}
	p := point{
		Label:      *label,
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		MaxProcs:   runtime.GOMAXPROCS(0),
		Benchmarks: benches,
	}
	replaced := false
	for i := range f.Points {
		if f.Points[i].Label == *label {
			f.Points[i] = p
			replaced = true
			break
		}
	}
	if !replaced {
		f.Points = append(f.Points, p)
	}
	enc, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "salam-bench: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "salam-bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("recorded point %q in %s\n", *label, *out)
}
