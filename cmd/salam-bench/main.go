// salam-bench records the repo's engine-performance trajectory. It runs the
// hot-path benchmarks (single-kernel engine throughput for GEMM and BFS,
// plus the parallel DSE campaign) through testing.Benchmark and appends one
// labeled point to BENCH_engine.json, so before/after numbers for engine
// work live in the repo instead of in commit messages.
//
// Usage:
//
//	go run ./cmd/salam-bench -label pr2-after [-out BENCH_engine.json]
//
// Re-running with an existing label replaces that point in place.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	salam "gosalam"
	"gosalam/internal/campaign"
	"gosalam/kernels"
)

// benchResult is one benchmark's recorded numbers.
type benchResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	SimCycles   uint64  `json:"sim_cycles,omitempty"`
	Iterations  int     `json:"iterations"`
}

// point is one labeled run of the whole suite.
type point struct {
	Label      string                 `json:"label"`
	Date       string                 `json:"date"`
	GoVersion  string                 `json:"go_version"`
	MaxProcs   int                    `json:"gomaxprocs"`
	Benchmarks map[string]benchResult `json:"benchmarks"`
}

type benchFile struct {
	Points []point `json:"points"`
}

func record(br testing.BenchmarkResult, simCycles uint64) benchResult {
	return benchResult{
		NsPerOp:     float64(br.T.Nanoseconds()) / float64(br.N),
		AllocsPerOp: br.AllocsPerOp(),
		BytesPerOp:  br.AllocedBytesPerOp(),
		SimCycles:   simCycles,
		Iterations:  br.N,
	}
}

// engineBench runs one kernel repeatedly through RunKernel.
func engineBench(k *kernels.Kernel) (testing.BenchmarkResult, uint64) {
	var cycles uint64
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := salam.RunKernel(k, salam.DefaultRunOpts())
			if err != nil {
				b.Fatal(err)
			}
			cycles = res.Cycles
		}
	})
	return br, cycles
}

// campaignBench runs the Fig. 13-style 12-point sweep at full parallelism.
func campaignBench() testing.BenchmarkResult {
	k := kernels.GEMMTree(8)
	var jobs []campaign.Job
	for _, fu := range []int{2, 4, 8, 16} {
		for _, port := range []int{2, 4, 8} {
			opts := salam.DefaultRunOpts()
			opts.Accel.ReadPorts, opts.Accel.WritePorts = port, port
			opts.Accel.MaxOutstanding = 2 * port
			opts.SPMPortsPer = port
			opts.Accel.ResQueueSize = 1024
			opts.Accel.FULimits = map[salam.FUClass]int{
				salam.FUFPAdder: fu, salam.FUFPMultiplier: fu,
			}
			jobs = append(jobs, campaign.Job{
				ID:        fmt.Sprintf("fu=%d p=%d", fu, port),
				Kernel:    k,
				KernelKey: "gemm_tree/n=8",
				Opts:      opts,
			})
		}
	}
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out := campaign.Run(context.Background(), campaign.Config{}, jobs)
			if err := campaign.FirstError(out); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func main() {
	label := flag.String("label", "dev", "name for this measurement point")
	out := flag.String("out", "BENCH_engine.json", "output JSON file (appended/updated in place)")
	flag.Parse()

	benches := map[string]benchResult{}

	fmt.Fprintf(os.Stderr, "salam-bench: EngineGEMM...\n")
	br, cycles := engineBench(kernels.GEMM(8, 1))
	benches["EngineGEMM"] = record(br, cycles)
	fmt.Fprintf(os.Stderr, "  %s  sim-cycles=%d\n", br.String(), cycles)

	fmt.Fprintf(os.Stderr, "salam-bench: EngineBFS...\n")
	br, cycles = engineBench(kernels.BFS(64, 4))
	benches["EngineBFS"] = record(br, cycles)
	fmt.Fprintf(os.Stderr, "  %s  sim-cycles=%d\n", br.String(), cycles)

	fmt.Fprintf(os.Stderr, "salam-bench: DSECampaign...\n")
	br = campaignBench()
	benches["DSECampaign"] = record(br, 0)
	fmt.Fprintf(os.Stderr, "  %s\n", br.String())

	var f benchFile
	if raw, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(raw, &f); err != nil {
			fmt.Fprintf(os.Stderr, "salam-bench: %s corrupt, starting fresh: %v\n", *out, err)
			f = benchFile{}
		}
	}
	p := point{
		Label:      *label,
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		MaxProcs:   runtime.GOMAXPROCS(0),
		Benchmarks: benches,
	}
	replaced := false
	for i := range f.Points {
		if f.Points[i].Label == *label {
			f.Points[i] = p
			replaced = true
			break
		}
	}
	if !replaced {
		f.Points = append(f.Points, p)
	}
	enc, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "salam-bench: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "salam-bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("recorded point %q in %s\n", *label, *out)
}
