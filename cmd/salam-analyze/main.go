// Command salam-analyze prints the static analysis of a kernel's
// elaborated CDFG without simulating it: the provable cycle-count lower
// bound and the component that binds it, the dynamic-energy and EDP
// floors with their per-FU-class breakdown, ASAP/ALAP block schedules,
// memory-dependence and out-of-bounds findings, dead-op and loop reports,
// and the static power/area envelope. The same analysis drives campaign
// pruning (salam-dse) — this command is the human-readable view.
//
// Usage:
//
//	salam-analyze -kernel gemm
//	salam-analyze -kernel gemm -ports 2 -fu 4 -banks 4 -json
//	salam-analyze -all            # one summary line per kernel
//	salam-analyze -kernel bfs -sched   # include per-op schedules
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	salam "gosalam"
	"gosalam/internal/analysis"
	"gosalam/internal/hw"
	"gosalam/kernels"
)

func buildOpts(port, fu, banks int) salam.RunOpts {
	opts := salam.DefaultRunOpts()
	if port > 0 {
		opts.Accel.ReadPorts = port
		opts.Accel.WritePorts = port
		opts.Accel.MaxOutstanding = 2 * port
		opts.SPMPortsPer = port
	}
	if fu > 0 {
		opts.Accel.FULimits = map[hw.FUClass]int{
			hw.FUFPAdder: fu, hw.FUFPMultiplier: fu,
		}
	}
	if banks > 0 {
		opts.SPMBanks = banks
	}
	return opts
}

func main() {
	kernel := flag.String("kernel", "", "kernel name (see kernels.All/Extras)")
	preset := flag.String("preset", "small", "workload preset: small or default")
	port := flag.Int("ports", 0, "read/write ports (0 = engine default)")
	fu := flag.Int("fu", 0, "FP adder+multiplier limit (0 = dedicated)")
	banks := flag.Int("banks", 0, "scratchpad banks (0 = engine default); shapes the energy bound's SPM access costs")
	asJSON := flag.Bool("json", false, "emit the full report and bound as JSON")
	all := flag.Bool("all", false, "analyze every kernel in the preset, one summary line each")
	withSched := flag.Bool("sched", false, "include per-op ASAP/ALAP schedules in text output")
	flag.Parse()

	p := kernels.Small
	if *preset == "default" {
		p = kernels.Default
	}

	if *all {
		ks := append(kernels.All(p), kernels.Extras(p)...)
		fmt.Println("kernel,static_ops,loops,lb_cycles,binding,hazards,oob,dead_ops,no_hazard_proven")
		for _, k := range ks {
			rep, err := salam.AnalyzeKernel(k, buildOpts(*port, *fu, *banks))
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", k.Name, err)
				os.Exit(1)
			}
			lb := rep.LowerBound(buildOpts(*port, *fu, *banks).Accel)
			if lb.Cycles == 0 {
				fmt.Fprintf(os.Stderr, "%s: zero lower bound — analysis derived nothing\n", k.Name)
				os.Exit(1)
			}
			fmt.Printf("%s,%d,%d,%d,%s,%d,%d,%d,%v\n",
				k.Name, rep.StaticOps, len(rep.Loops), lb.Cycles, lb.Binding,
				len(rep.Mem.Hazards), len(rep.Mem.OOB), len(rep.DeadOps),
				rep.Mem.NoHazardProven)
		}
		return
	}

	if *kernel == "" {
		fmt.Fprintln(os.Stderr, "salam-analyze: -kernel or -all required")
		os.Exit(2)
	}
	k := kernels.ByName(p, *kernel)
	if k == nil {
		fmt.Fprintf(os.Stderr, "unknown kernel %q\n", *kernel)
		os.Exit(2)
	}
	opts := buildOpts(*port, *fu, *banks)
	rep, err := salam.AnalyzeKernel(k, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", k.Name, err)
		os.Exit(1)
	}
	lb := rep.LowerBound(opts.Accel)
	se, err := salam.StaticEnergyLowerBound(k, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", k.Name, err)
		os.Exit(1)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Report *analysis.Report   `json:"report"`
			Bound  analysis.Bound     `json:"bound"`
			Energy salam.StaticEnergy `json:"energy"`
		}{rep, lb, se}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	render(rep, lb, se, *withSched)
}

func render(rep *analysis.Report, lb analysis.Bound, se salam.StaticEnergy, withSched bool) {
	fmt.Printf("kernel %s: %d blocks (%d reachable), %d static ops\n",
		rep.Function, rep.Blocks, rep.Reachable, rep.StaticOps)

	fmt.Printf("\nlower bound: %d cycles, bound by %s (ports r=%d w=%d)\n",
		lb.Cycles, lb.Binding, lb.ReadPorts, lb.WritePorts)
	comps := append([]analysis.Component(nil), lb.Components...)
	sort.Slice(comps, func(i, j int) bool { return comps[i].Cycles > comps[j].Cycles })
	for _, c := range comps {
		fmt.Printf("  %-18s %10d\n", c.Name, c.Cycles)
	}
	if len(lb.Classes) > 0 {
		fmt.Println("\nfu classes:")
		for _, cb := range lb.Classes {
			sound := "heuristic"
			if cb.UtilSound {
				sound = "sound"
			}
			fmt.Printf("  %-16s units=%-3d ops=%-3d demand=%-8d util<=%.2f (%s)\n",
				cb.Class, cb.Units, cb.StaticOps, cb.BusyWeighted, cb.UtilUB, sound)
		}
	}

	if len(rep.Loops) > 0 {
		fmt.Println("\nloops:")
		for _, l := range rep.Loops {
			trip := "unproven"
			if l.Trip >= 0 {
				trip = fmt.Sprintf("%d", l.Trip)
			}
			iv := ""
			if l.IV != "" {
				iv = " iv=" + l.IV
			}
			fmt.Printf("  %-12s depth=%d blocks=%d trip=%s%s\n", l.Header, l.Depth, l.Blocks, trip, iv)
		}
	}

	m := rep.Mem
	fmt.Printf("\nmemory: %d accesses (%d loads, %d stores), %d affine-resolved\n",
		m.Accesses, m.Loads, m.Stores, m.Resolved)
	for _, fp := range m.Footprint {
		res := ""
		if !fp.Resolved {
			res = " (partial)"
		}
		fmt.Printf("  %-12s bytes [%d, %d) of %d%s\n", fp.Base, fp.MinByte, fp.MaxByte, fp.Bytes, res)
	}
	if m.NoHazardProven {
		fmt.Println("  no hazards: every same-buffer pair proven disjoint")
	}
	for _, h := range m.Hazards {
		fmt.Printf("  hazard %s on %s: %s -> %s (may-overlap, not proven)\n", h.Kind, h.Base, h.First, h.Then)
	}
	for _, o := range m.OOB {
		kind := "possible"
		if o.Proven {
			kind = "PROVEN"
		}
		fmt.Printf("  oob %s: %s on %s touches [%d, %d) of %d bytes\n", kind, o.Op, o.Base, o.MinByte, o.MaxByte, o.Size)
	}

	if len(rep.Unreachable) > 0 {
		fmt.Printf("\nunreachable blocks: %v\n", rep.Unreachable)
	}
	if len(rep.DeadOps) > 0 {
		fmt.Printf("dead ops (result never consumed): %v\n", rep.DeadOps)
	}

	e := rep.Envelope
	exact := "floor"
	if e.EnergyExact {
		exact = "exact"
	}
	fmt.Printf("\nenvelope: leakage %.3f mW fu + %.3f mW reg, area %.0f um2, dyn energy >= %.1f pJ (%s)\n",
		e.StaticFUMW, e.StaticRegMW, e.AreaUM2, e.MinDynEnergyPJ, exact)

	kind := "floor"
	if se.Exact {
		kind = "exact counts"
	}
	fmt.Printf("\nenergy bound (%s): total >= %.1f pJ over >= %d cycles @ %.1f ns\n",
		kind, se.TotalPJ, se.CyclesLB, se.PeriodNS)
	fmt.Printf("  %-10s %12.1f pJ\n", "fu", se.FUPJ)
	fmt.Printf("  %-10s %12.1f pJ\n", "registers", se.RegPJ)
	fmt.Printf("  %-10s %12.1f pJ\n", "memory", se.MemPJ)
	fmt.Printf("  %-10s %12.1f pJ  (%.3f mW leakage x cycle bound)\n", "leakage", se.LeakPJ, se.LeakMW)
	fmt.Printf("  edp >= %.1f pJ*ns\n", se.EDP)
	if len(se.Classes) > 0 {
		fmt.Println("  fu classes:")
		for _, ce := range se.Classes {
			mark := "floor"
			if ce.Exact {
				mark = "exact"
			}
			fmt.Printf("    %-16s inits>=%-8d %12.1f pJ (%s)\n", ce.Class, ce.Inits, ce.EnergyPJ, mark)
		}
	}

	if withSched {
		fmt.Println("\nschedules:")
		for _, bs := range rep.Sched {
			fmt.Printf("  %s: crit-path=%d min-exec=%d exact=%v critical=%v\n",
				bs.Block, bs.CritPathCycles, bs.MinExec, bs.Exact, bs.Critical)
			for _, op := range bs.Ops {
				mark := " "
				if op.Critical {
					mark = "*"
				}
				fmt.Printf("   %s %-12s %-10s w=%-2d asap=%-4d alap=%-4d slack=%d\n",
					mark, op.Name, op.Op, op.Weight, op.ASAP, op.ALAP, op.Slack)
			}
		}
	}
}
