package main

// The determinism rules. Each finding cites an engine invariant the
// construct would break:
//
//   - map-range: Go randomizes map iteration order per run. A map range
//     whose body feeds stats, rendered output, or event scheduling makes
//     two identical simulations disagree — the repo's core promise is
//     byte-identical reruns. Order-independent bodies (pure accumulation
//     into another map, clearing) can be annotated //salam:vet:ok.
//   - wall-clock: time.Now/Since/Until inside simulation objects couples
//     model state to host speed. Simulated time comes from sim.Tick only.
//   - math-rand: unseeded (or package-global) randomness breaks replay.
//     Workload generation uses explicitly seeded generators outside the
//     vetted packages.
//   - goroutine: simulation state is single-threaded by design; the only
//     sanctioned concurrency is the campaign worker pool (jobs touch
//     disjoint systems). A stray goroutine inside an engine package is a
//     data race on deterministic state.
//
// The checker is stdlib-only (go/parser + go/types). Imports resolve
// through a fake importer that returns empty packages: local types —
// including every map declared in the checked package — still resolve,
// while cross-package expressions degrade to "type unknown" and are
// never reported (the linter under-approximates rather than false-alarms).

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// ruleSet selects which determinism rules apply to a package.
type ruleSet struct {
	mapRange  bool
	wallClock bool
	mathRand  bool
	goroutine bool
}

// Finding is one rule violation at a position.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Rule, f.Msg)
}

// fakeImporter satisfies go/types without compiled package data: every
// import resolves to an empty package, so the checker never needs export
// data and never fails hard on one.
type fakeImporter struct {
	pkgs map[string]*types.Package
}

func (fi *fakeImporter) Import(path string) (*types.Package, error) {
	if p, ok := fi.pkgs[path]; ok {
		return p, nil
	}
	name := path
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	p := types.NewPackage(path, name)
	p.MarkComplete()
	if fi.pkgs == nil {
		fi.pkgs = map[string]*types.Package{}
	}
	fi.pkgs[path] = p
	return p, nil
}

const suppressMarker = "salam:vet:ok"

// checkDir vets every non-test .go file in dir as one package.
func checkDir(dir string, rules ruleSet) ([]Finding, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", name, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}

	// Type-check best effort: with the fake importer many expressions have
	// unknown types; errors are expected and ignored, the Info map keeps
	// whatever did resolve.
	info := &types.Info{Types: map[ast.Expr]types.TypeAndValue{}}
	conf := types.Config{Importer: &fakeImporter{}, Error: func(error) {}}
	conf.Check(dir, fset, files, info) //nolint:errcheck // best-effort by design

	var out []Finding
	for _, f := range files {
		out = append(out, checkFile(fset, f, info, rules)...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out, nil
}

func checkFile(fset *token.FileSet, f *ast.File, info *types.Info, rules ruleSet) []Finding {
	// suppressed[line] marks lines carrying or directly following a
	// //salam:vet:ok comment — the escape hatch for provably
	// order-independent map ranges.
	suppressed := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, suppressMarker) {
				line := fset.Position(c.Pos()).Line
				suppressed[line] = true
				suppressed[line+1] = true
			}
		}
	}

	// Resolve import aliases so `t "time"` or `mrand "math/rand"` cannot
	// dodge the syntactic rules.
	importAlias := map[string]string{}
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		name := path
		if i := strings.LastIndexByte(name, '/'); i >= 0 {
			name = name[i+1:]
		}
		if imp.Name != nil {
			name = imp.Name.Name
		}
		importAlias[name] = path
	}
	pkgOf := func(e ast.Expr) string {
		id, ok := e.(*ast.Ident)
		if !ok {
			return ""
		}
		return importAlias[id.Name]
	}

	var out []Finding
	report := func(pos token.Pos, rule, msg string) {
		p := fset.Position(pos)
		if suppressed[p.Line] {
			return
		}
		out = append(out, Finding{Pos: p, Rule: rule, Msg: msg})
	}

	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if !rules.mapRange {
				return true
			}
			if tv, ok := info.Types[n.X]; ok && tv.Type != nil {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					report(n.Range, "map-range",
						"map iteration order is randomized; iterate a sorted/stable key list or annotate //salam:vet:ok if order provably cannot escape")
				}
			}
		case *ast.SelectorExpr:
			switch pkgOf(n.X) {
			case "time":
				if rules.wallClock {
					switch n.Sel.Name {
					case "Now", "Since", "Until":
						report(n.Sel.Pos(), "wall-clock",
							"time."+n.Sel.Name+" couples simulation state to host speed; use sim.Tick")
					}
				}
			case "math/rand", "math/rand/v2":
				if rules.mathRand {
					report(n.Sel.Pos(), "math-rand",
						"math/rand in a simulation path breaks replay; use an explicitly seeded generator outside the engine")
				}
			}
		case *ast.GoStmt:
			if rules.goroutine {
				report(n.Go, "goroutine",
					"goroutine spawn inside an engine package races deterministic state; only the campaign worker pool may run concurrently")
			}
		}
		return true
	})
	return out
}
