package main

import (
	"strings"
	"testing"
)

var allRules = ruleSet{mapRange: true, wallClock: true, mathRand: true, goroutine: true}

// countRule tallies findings by rule name.
func countRule(fs []Finding) map[string]int {
	m := map[string]int{}
	for _, f := range fs {
		m[f.Rule]++
	}
	return m
}

// TestFixtureViolationsCaught proves the linter detects each violation
// class on seeded fixture files — a linter that silently goes blind (e.g.
// after a go/types change) must fail here, not pass vacuously on the tree.
func TestFixtureViolationsCaught(t *testing.T) {
	fs, err := checkDir("testdata/fixture", allRules)
	if err != nil {
		t.Fatalf("checkDir: %v", err)
	}
	got := countRule(fs)
	want := map[string]int{"map-range": 1, "wall-clock": 1, "math-rand": 1, "goroutine": 1}
	for rule, n := range want {
		if got[rule] != n {
			t.Errorf("rule %s: %d finding(s), want %d\nall: %v", rule, got[rule], n, fs)
		}
	}
	for _, f := range fs {
		switch f.Rule {
		case "map-range":
			if !strings.HasSuffix(f.Pos.Filename, "stats.go") {
				t.Errorf("map-range reported in %s, want stats.go", f.Pos.Filename)
			}
		case "wall-clock", "math-rand", "goroutine":
			if !strings.HasSuffix(f.Pos.Filename, "simobj.go") {
				t.Errorf("%s reported in %s, want simobj.go", f.Rule, f.Pos.Filename)
			}
		}
	}
}

// TestSuppressionRespected: the annotated order-independent map range in
// Stats.Sum must not be reported (exactly one map-range total, in Emit).
func TestSuppressionRespected(t *testing.T) {
	fs, err := checkDir("testdata/fixture", allRules)
	if err != nil {
		t.Fatalf("checkDir: %v", err)
	}
	for _, f := range fs {
		if f.Rule == "map-range" && f.Pos.Line > 20 {
			t.Errorf("suppressed map range reported: %v", f)
		}
	}
}

// TestRuleSetGates: campaign-style policy (no wall-clock/goroutine rules)
// must not report those classes even when present.
func TestRuleSetGates(t *testing.T) {
	fs, err := checkDir("testdata/fixture", ruleSet{mapRange: true, mathRand: true})
	if err != nil {
		t.Fatalf("checkDir: %v", err)
	}
	got := countRule(fs)
	if got["wall-clock"] != 0 || got["goroutine"] != 0 {
		t.Errorf("gated rules still reported: %v", fs)
	}
	if got["map-range"] != 1 || got["math-rand"] != 1 {
		t.Errorf("enabled rules missing: %v", fs)
	}
}

// TestRepoIsVetClean pins the policied packages clean, so a regression
// that introduces nondeterminism fails in `go test` as well as `make
// vet-sim`.
func TestRepoIsVetClean(t *testing.T) {
	for rel, rules := range map[string]ruleSet{
		"../../internal/sim":      policy["internal/sim"],
		"../../internal/core":     policy["internal/core"],
		"../../internal/mem":      policy["internal/mem"],
		"../../internal/campaign": policy["internal/campaign"],
		"../../internal/serve":    policy["internal/serve"],
	} {
		fs, err := checkDir(rel, rules)
		if err != nil {
			t.Fatalf("%s: %v", rel, err)
		}
		for _, f := range fs {
			t.Errorf("%s: %v", rel, f)
		}
	}
}
