// Command salam-vet is the repo's determinism linter: it statically
// rejects constructs that would break the engine's byte-identical-rerun
// guarantee before they can flake a golden test. It vets the simulation
// packages (internal/sim, internal/core, internal/mem, internal/timeline)
// for map iteration, wall-clock reads, math/rand, and goroutine spawns,
// and the campaign engine for the order/randomness subset (its worker pool
// legitimately uses goroutines and wall-clock timing for job metrics).
//
// Usage:
//
//	salam-vet ./...            # vet every policied package (make vet-sim)
//	salam-vet internal/core    # vet one package directory
//
// Exit status is 1 when findings exist, 2 on usage/IO errors. A provably
// order-independent map range can carry a //salam:vet:ok comment on the
// same or preceding line.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// policy maps module-relative package directories to the rules they must
// satisfy. Directories not listed are not simulation state and are out of
// scope (cmd/ render loops, kernels/ dataset seeding, experiments).
var policy = map[string]ruleSet{
	"internal/sim":      {mapRange: true, wallClock: true, mathRand: true, goroutine: true},
	"internal/core":     {mapRange: true, wallClock: true, mathRand: true, goroutine: true},
	"internal/mem":      {mapRange: true, wallClock: true, mathRand: true, goroutine: true},
	"internal/timeline": {mapRange: true, wallClock: true, mathRand: true, goroutine: true},
	"internal/campaign": {mapRange: true, mathRand: true},
	// The service layer promises the same determinism the campaign engine
	// does (byte-identical streams, no wall-clock in results) and runs
	// goroutines only through its audited runner pool.
	"internal/serve": {mapRange: true, wallClock: true, mathRand: true, goroutine: true},
	// The branch-and-bound search certifies byte-identical frontiers at any
	// worker count: its expansion order, pruning, and attribution must be
	// pure functions of the space and the committed measurements, with all
	// concurrency delegated to the campaign engine.
	"internal/search": {mapRange: true, wallClock: true, mathRand: true, goroutine: true},
	// Snapshot images must be byte-stable (CI enforces Checkpoint ->
	// Restore -> Checkpoint equality) and restore replays must be
	// byte-identical to straight runs, so the serializer gets the full
	// simulation-package rule set.
	"internal/snapshot": {mapRange: true, wallClock: true, mathRand: true, goroutine: true},
	// Sampled estimates feed committed benchmark numbers; the
	// extrapolation arithmetic must be a pure function of the measured
	// intervals.
	"internal/sample": {mapRange: true, wallClock: true, mathRand: true, goroutine: true},
	// Static analysis results feed pruning proofs, search bounds, and
	// committed CSV columns: every float accumulation and report list must
	// be a pure function of the CDFG, never of map iteration order.
	"internal/analysis": {mapRange: true, wallClock: true, mathRand: true, goroutine: true},
	// The hardware profile's CACTI and synthesis-reference arithmetic
	// anchors power/area/energy everywhere (engine, analysis, search), so
	// it gets the full rule set too.
	"internal/hw": {mapRange: true, wallClock: true, mathRand: true, goroutine: true},
	// Config decoding must be deterministic end to end: diagnostics (which
	// unknown key is reported first, which "did you mean" hint wins) and
	// emitted canonical bytes are part of the tool contract, so no map
	// iteration, wall clock, or randomness may leak into them.
	"internal/soccfg": {mapRange: true, wallClock: true, mathRand: true, goroutine: true},
}

// moduleRoot walks upward from dir to the directory holding go.mod, so
// policy paths resolve the same from the repo root and from subdirs.
func moduleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		args = []string{"./..."}
	}
	root, err := moduleRoot(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "salam-vet:", err)
		os.Exit(2)
	}

	// Resolve args to the set of policied package dirs to vet.
	dirs := map[string]bool{}
	for _, a := range args {
		if a == "./..." || a == "..." || a == "all" {
			for rel := range policy {
				dirs[rel] = true
			}
			continue
		}
		rel := filepath.ToSlash(filepath.Clean(strings.TrimPrefix(a, "./")))
		if _, ok := policy[rel]; !ok {
			fmt.Fprintf(os.Stderr, "salam-vet: %s is not a policied package (skipping); policied: internal/{sim,core,mem,timeline,campaign,search,serve,snapshot,sample,analysis,hw,soccfg}\n", rel)
			continue
		}
		dirs[rel] = true
	}

	// Deterministic order for the linter's own output.
	var rels []string
	for rel := range dirs {
		rels = append(rels, rel)
	}
	sort.Strings(rels)

	total := 0
	for _, rel := range rels {
		dir := filepath.Join(root, rel)
		findings, err := checkDir(dir, policy[rel])
		if err != nil {
			fmt.Fprintf(os.Stderr, "salam-vet: %s: %v\n", rel, err)
			os.Exit(2)
		}
		for _, f := range findings {
			// Print module-relative paths so output is stable across
			// checkouts.
			if p, err := filepath.Rel(root, f.Pos.Filename); err == nil {
				f.Pos.Filename = filepath.ToSlash(p)
			}
			fmt.Println(f)
		}
		total += len(findings)
	}
	if total > 0 {
		fmt.Fprintf(os.Stderr, "salam-vet: %d finding(s)\n", total)
		os.Exit(1)
	}
}
