package fixture

import "fmt"

// Stats mimics a stats sink whose rendering iterates a map: the classic
// determinism bug salam-vet exists to catch — output order changes run to
// run.
type Stats struct {
	counters map[string]uint64
}

// Emit leaks map iteration order into rendered output.
func (s *Stats) Emit() {
	for name, v := range s.counters {
		fmt.Println(name, v)
	}
}

// Sum is order-independent and carries the suppression annotation; the
// linter must not report it.
func (s *Stats) Sum() uint64 {
	var total uint64
	for _, v := range s.counters { //salam:vet:ok order-independent accumulation
		total += v
	}
	return total
}
