package fixture

import (
	mrand "math/rand"
	t "time"
)

// Engine mimics a simulation object with every non-map violation class:
// wall-clock reads, unseeded randomness, and a goroutine touching engine
// state. Imports are aliased on purpose — the linter must resolve aliases,
// not match identifier spelling.
type Engine struct {
	now int64
}

func (e *Engine) Step() {
	e.now = t.Now().UnixNano()
	if mrand.Intn(2) == 0 {
		e.now++
	}
	go func() {
		e.now++
	}()
}
