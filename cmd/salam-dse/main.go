// Command salam-dse sweeps accelerator design parameters for a kernel and
// emits CSV — the paper's design-space-exploration workflow (Sec. IV-D),
// where a script sweeps FU allocations and memory bandwidth and the
// results are analyzed as a Pareto set.
//
// Points are independent simulations, so the sweep runs on the campaign
// engine: a worker pool sized by -jobs, per-job fault isolation and
// timeouts, optional content-addressed result caching (-cache), and
// per-job progress on stderr. Output order and bytes are identical to the
// serial sweep regardless of worker count. Workers reuse warm-started
// pooled systems that share one immutable CDFG per configuration (the
// elaboration cache); -cold rebuilds a fresh system per point instead.
//
// Usage:
//
//	salam-dse -kernel gemm -ports 2,4,8 -fu 4,8,16 > sweep.csv
//	salam-dse -kernel gemm -jobs 8 -cache results/cache > sweep.csv
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	salam "gosalam"
	"gosalam/internal/campaign"
	"gosalam/internal/hw"
	"gosalam/internal/sim"
	"gosalam/kernels"
)

// parseInts parses a comma-separated int list, rejecting values < min so
// degenerate configs (0 ports, negative FU pools) fail fast with a clear
// message instead of producing meaningless rows.
func parseInts(s, what string, min int) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("invalid %s %q: %v", what, part, err)
		}
		if v < min {
			return nil, fmt.Errorf("invalid %s %d: must be >= %d", what, v, min)
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	kernel := flag.String("kernel", "gemm", "kernel name")
	preset := flag.String("preset", "small", "workload preset: small or default")
	portsList := flag.String("ports", "2,4,8", "read/write port counts to sweep (each >= 1)")
	fuList := flag.String("fu", "0", "FP adder+multiplier limits to sweep (0 = dedicated)")
	memList := flag.String("mem", "spm", "memory kinds to sweep: spm,cache")
	jobs := flag.Int("jobs", 0, "parallel simulations (0 = GOMAXPROCS)")
	cacheDir := flag.String("cache", "", "result-cache directory (e.g. results/cache); empty disables caching")
	timeout := flag.Duration("timeout", 0, "per-simulation timeout (0 = none)")
	quiet := flag.Bool("quiet", false, "suppress per-job progress lines on stderr")
	dumpStats := flag.Bool("stats", false, "dump campaign counters to stderr at the end")
	cold := flag.Bool("cold", false, "build a fresh system per point instead of reusing warm-started pooled sessions")
	noPrune := flag.Bool("no-prune", false, "simulate every point, even ones the static analyzer proves worse than an already-measured point")
	traceBest := flag.String("trace-best", "", "after the sweep, re-run the best point with timeline tracing and write the Perfetto trace here")
	flag.Parse()

	p := kernels.Small
	if *preset == "default" {
		p = kernels.Default
	}
	k := kernels.ByName(p, *kernel)
	if k == nil {
		fmt.Fprintf(os.Stderr, "unknown kernel %q\n", *kernel)
		os.Exit(2)
	}
	ports, err := parseInts(*portsList, "port count", 1)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fus, err := parseInts(*fuList, "FU limit", 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// Build the job list in output order; config errors (unknown memory
	// kind) are rejected here, before any simulation runs.
	type point struct {
		mem      string
		fu, port int
	}
	var pts []point
	var jobSpecs []campaign.Job
	kkey := fmt.Sprintf("%s/preset=%s", k.Name, *preset)
	for _, memKind := range strings.Split(*memList, ",") {
		memKind = strings.TrimSpace(memKind)
		for _, fu := range fus {
			for _, port := range ports {
				opts := salam.DefaultRunOpts()
				opts.Accel.ReadPorts = port
				opts.Accel.WritePorts = port
				opts.Accel.MaxOutstanding = 2 * port
				opts.SPMPortsPer = port
				if fu > 0 {
					opts.Accel.FULimits = map[hw.FUClass]int{
						hw.FUFPAdder: fu, hw.FUFPMultiplier: fu,
					}
				}
				switch memKind {
				case "spm":
					opts.Mem = salam.MemSPM
				case "cache":
					opts.Mem = salam.MemCache
				default:
					fmt.Fprintf(os.Stderr, "unknown memory %q\n", memKind)
					os.Exit(2)
				}
				pts = append(pts, point{memKind, fu, port})
				jobSpecs = append(jobSpecs, campaign.Job{
					ID:        fmt.Sprintf("%s %s fu=%d ports=%d", k.Name, memKind, fu, port),
					Kernel:    k,
					KernelKey: kkey,
					Opts:      opts,
				})
			}
		}
	}

	cfg := campaign.Config{
		Workers:   *jobs,
		Timeout:   *timeout,
		Stats:     sim.NewGroup("dse"),
		ColdStart: *cold,
		TraceBest: *traceBest,
	}
	if !*noPrune {
		// Static lower-bound pruning: points the analyzer proves worse
		// than the pilot measurement render as "pruned" rows instead of
		// burning a simulation. The best point is provably unaffected;
		// -no-prune simulates everything.
		cfg.Prune = campaign.StaticPrune
	}
	if !*quiet {
		cfg.Progress = campaign.NewWriterReporter(os.Stderr)
	}
	if *cacheDir != "" {
		cache, err := campaign.OpenCache(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cfg.Cache = cache
	}

	outcomes := campaign.Run(context.Background(), cfg, jobSpecs)

	// A failed point becomes an error row and a stderr warning; the sweep
	// still finishes and reports every other point, then exits non-zero.
	fmt.Println("kernel,memory,fu_limit,ports,cycles,static_lb,time_us,power_mw,datapath_mw,area_um2")
	failed := 0
	for i, o := range outcomes {
		pt := pts[i]
		if o.Err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "warning: %s: %v\n", o.Job.ID, o.Err)
			msg := strings.NewReplacer(",", ";", "\n", " ").Replace(o.Err.Error())
			fmt.Printf("%s,%s,%d,%d,error,%s\n", k.Name, pt.mem, pt.fu, pt.port, msg)
			continue
		}
		if o.Pruned {
			fmt.Printf("%s,%s,%d,%d,pruned,%d,,,,\n",
				k.Name, pt.mem, pt.fu, pt.port, o.StaticLB)
			continue
		}
		if o.StaticLB == 0 {
			// The campaign only bounds jobs when pruning is on; fill the
			// column here so -no-prune rows stay comparable. The CDFG and
			// its analysis are already cached from the simulation itself.
			if lb, ok := campaign.StaticPrune(jobSpecs[i]); ok {
				o.StaticLB = lb
			}
		}
		m := o.Metrics
		fmt.Printf("%s,%s,%d,%d,%d,%d,%.3f,%.3f,%.3f,%.0f\n",
			k.Name, pt.mem, pt.fu, pt.port, m.Cycles, o.StaticLB,
			float64(m.Ticks)/1e6, m.Power.TotalMW(),
			m.Power.DatapathMW(), m.Power.TotalAreaUM2())
	}
	if *dumpStats {
		cfg.Stats.Dump(os.Stderr)
		hits, misses := salam.ElabCacheStats()
		fmt.Fprintf(os.Stderr, "elab_cache: %d hits, %d misses\n", hits, misses)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d of %d points failed\n", failed, len(outcomes))
		os.Exit(1)
	}
}
