// Command salam-dse sweeps accelerator design parameters for a kernel and
// emits CSV — the paper's design-space-exploration workflow (Sec. IV-D),
// where a script sweeps FU allocations and memory bandwidth and the
// results are analyzed as a Pareto set.
//
// Points are independent simulations, so the sweep runs on the campaign
// engine: a worker pool sized by -jobs, per-job fault isolation and
// timeouts, optional content-addressed result caching (-cache), and
// per-job progress on stderr. Output order and bytes are identical to the
// serial sweep regardless of worker count. Workers reuse warm-started
// pooled systems that share one immutable CDFG per configuration (the
// elaboration cache); -cold rebuilds a fresh system per point instead.
//
// The flags build a campaign.Space — the same spec a salam-serve
// submission carries — so the CLI and the service enumerate identical job
// lists. -json switches the output to the canonical NDJSON row stream
// (one campaign.Row per line; `-no-prune -json` output diffs clean
// against a salam-serve results stream), and -remote runs the sweep on a
// salam-serve daemon instead of in-process.
//
// Usage:
//
//	salam-dse -kernel gemm -ports 2,4,8 -fu 4,8,16 > sweep.csv
//	salam-dse -kernel gemm -jobs 8 -cache results/cache > sweep.csv
//	salam-dse -kernel gemm -no-prune -json > sweep.ndjson
//	salam-dse -kernel gemm -remote http://127.0.0.1:8080 > sweep.csv
//
// -search switches from sweeping to searching: instead of simulating every
// point, the branch-and-bound engine (internal/search) proves the exact
// Pareto frontier over (cycles, power, area) while simulating only the
// points the bounds cannot exclude. The ranged knob forms (-port-range,
// -fu-range, -bank-range, each "min:max" or "min:max:step") declare
// million-point spaces in a few bytes — the search never enumerates the
// cross product. The frontier CSV lands on stdout; the points-simulated /
// points-pruned accounting lands on stderr. With -remote the search runs
// on a salam-serve daemon (POST /v1/searches) and the CLI polls until the
// certified frontier is ready — the bytes are identical either way.
//
//	salam-dse -search -kernel gemm -fu-range 1:1000 -port-range 1:100 -banks 1,2,4,8 > frontier.csv
//	salam-dse -search -kernel gemm -fu-range 1:1000 -remote http://127.0.0.1:8080 > frontier.csv
//
// -objective switches the search target: "pareto" (default) proves the
// three-axis frontier, "edp" minimizes energy-delay product, and "cycles"
// minimizes cycles — both single-objective modes prune on the provable
// static energy/cycle floors and return the single best point. -max-area
// constrains any objective to configurations within an area budget (µm²).
//
//	salam-dse -search -objective edp -kernel gemm -fu-range 1:1000 -port-range 1:100 > best.csv
//	salam-dse -search -objective cycles -max-area 2e6 -kernel gemm -fu-range 1:1000 > best.csv
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	salam "gosalam"
	"gosalam/internal/campaign"
	"gosalam/internal/search"
	"gosalam/internal/sim"
	"gosalam/internal/soccfg"
)

// parseInts parses a comma-separated int list, rejecting values < min so
// degenerate configs (0 ports, negative FU pools) fail fast with a clear
// message instead of producing meaningless rows.
func parseInts(s, what string, min int) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("invalid %s %q: %v", what, part, err)
		}
		if v < min {
			return nil, fmt.Errorf("invalid %s %d: must be >= %d", what, v, min)
		}
		out = append(out, v)
	}
	return out, nil
}

// parseRange parses the ranged knob form "min:max" or "min:max:step".
func parseRange(s, what string) (*campaign.Range, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 2 && len(parts) != 3 {
		return nil, fmt.Errorf("invalid %s %q: want min:max or min:max:step", what, s)
	}
	vals := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("invalid %s %q: %v", what, s, err)
		}
		vals[i] = v
	}
	r := &campaign.Range{Min: vals[0], Max: vals[1]}
	if len(vals) == 3 {
		r.Step = vals[2]
	}
	return r, nil
}

func main() {
	kernel := flag.String("kernel", "gemm", "kernel name")
	preset := flag.String("preset", "small", "workload preset: small or default")
	cfgPath := flag.String("config", "", "flat run-config JSON; its kernel and preset seed the sweep (overrides -kernel/-preset)")
	portsList := flag.String("ports", "2,4,8", "read/write port counts to sweep (each >= 1)")
	fuList := flag.String("fu", "0", "FP adder+multiplier limits to sweep (0 = dedicated)")
	banksList := flag.String("banks", "", "SPM bank counts to sweep (empty = the paper default, 4)")
	memList := flag.String("mem", "spm", "memory kinds to sweep: spm,cache")
	portRange := flag.String("port-range", "", "ranged port knob, min:max[:step] (replaces -ports)")
	fuRange := flag.String("fu-range", "", "ranged FU-limit knob, min:max[:step] (replaces -fu)")
	bankRange := flag.String("bank-range", "", "ranged bank knob, min:max[:step] (replaces -banks)")
	doSearch := flag.Bool("search", false, "prove the exact Pareto frontier by branch-and-bound instead of sweeping every point")
	objective := flag.String("objective", "pareto", "with -search: pareto (frontier), edp (minimize energy-delay product), or cycles (minimize cycles)")
	maxArea := flag.Float64("max-area", 0, "with -search: only admit configurations whose total area fits this budget in um2 (0 = unconstrained)")
	noProxy := flag.Bool("no-proxy", false, "with -search: disable the reduced-trip proxy rung of successive halving")
	jobs := flag.Int("jobs", 0, "parallel simulations (0 = GOMAXPROCS)")
	cacheDir := flag.String("cache", "", "result-cache directory (e.g. results/cache); empty disables caching")
	timeout := flag.Duration("timeout", 0, "per-simulation timeout (0 = none)")
	quiet := flag.Bool("quiet", false, "suppress per-job progress lines on stderr")
	dumpStats := flag.Bool("stats", false, "dump campaign counters to stderr at the end")
	cold := flag.Bool("cold", false, "build a fresh system per point instead of reusing warm-started pooled sessions")
	noPrune := flag.Bool("no-prune", false, "simulate every point, even ones the static analyzer proves worse than an already-measured point")
	traceBest := flag.String("trace-best", "", "after the sweep, re-run the best point with timeline tracing and write the Perfetto trace here")
	jsonOut := flag.Bool("json", false, "emit the canonical NDJSON row stream instead of CSV")
	remote := flag.String("remote", "", "run the sweep on a salam-serve daemon at this base URL instead of in-process")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var mems []string
	for _, m := range strings.Split(*memList, ",") {
		mems = append(mems, strings.TrimSpace(m))
	}

	// The flags assemble the same declarative space a salam-serve
	// submission posts. Each knob takes the list form or the range form;
	// the range form never enumerates, so -search can explore spaces far
	// too large to sweep.
	space := campaign.Space{
		Kernel:    *kernel,
		Preset:    *preset,
		Mem:       mems,
		TimeoutMS: int(timeout.Milliseconds()),
	}
	if *cfgPath != "" {
		c, err := soccfg.Load(*cfgPath)
		if err != nil {
			fail(err)
		}
		switch {
		case c.Version != 0:
			fail(fmt.Errorf("%s: sweeps take flat (version 0) configs, not topologies", *cfgPath))
		case c.Kernel == "":
			fail(fmt.Errorf("%s: sweeps need a named built-in kernel (ir_file configs are not sweepable)", *cfgPath))
		case len(c.Size) > 0:
			fail(fmt.Errorf("%s: sweeps enumerate presets, not explicit sizes", *cfgPath))
		}
		space.Kernel = c.Kernel
		if c.Preset != "" {
			space.Preset = c.Preset
		}
	}
	knob := func(dst *[]int, rdst **campaign.Range, list, rng, what string, min int) {
		if rng != "" {
			r, err := parseRange(rng, what+" range")
			if err != nil {
				fail(err)
			}
			*rdst = r
			return
		}
		if list == "" {
			return
		}
		vs, err := parseInts(list, what, min)
		if err != nil {
			fail(err)
		}
		*dst = vs
	}
	knob(&space.Ports, &space.PortRange, *portsList, *portRange, "port count", 1)
	knob(&space.FU, &space.FURange, *fuList, *fuRange, "FU limit", 0)
	knob(&space.Banks, &space.BankRange, *banksList, *bankRange, "bank count", 1)

	if (*objective != "pareto" || *maxArea != 0) && !*doSearch {
		fail(fmt.Errorf("-objective and -max-area require -search (a sweep simulates every point regardless)"))
	}
	if *objective != "pareto" {
		// The default spelling stays out of the JSON so pre-objective
		// submissions keep byte-identical bodies.
		space.Objective = *objective
	}
	space.MaxAreaUM2 = *maxArea

	if *doSearch {
		if *remote != "" {
			os.Exit(runRemoteSearch(*remote, space))
		}
		os.Exit(runSearch(space, *jobs, *cacheDir, *cold, *noProxy, *dumpStats))
	}

	// Build enumerates points and jobs in the canonical sweep order and
	// rejects config errors before any simulation runs.
	pts, jobSpecs, err := space.Build()
	if err != nil {
		fail(err)
	}
	kname := jobSpecs[0].Kernel.Name

	if *remote != "" {
		os.Exit(runRemote(*remote, space, *jsonOut, kname, pts, jobSpecs))
	}

	cfg := campaign.Config{
		Workers:   *jobs,
		Timeout:   *timeout,
		Stats:     sim.NewGroup("dse"),
		ColdStart: *cold,
		TraceBest: *traceBest,
	}
	if !*noPrune {
		// Static lower-bound pruning: points the analyzer proves worse
		// than the pilot measurement render as "pruned" rows instead of
		// burning a simulation. The best point is provably unaffected;
		// -no-prune simulates everything.
		cfg.Prune = campaign.StaticPrune
	}
	if !*quiet {
		cfg.Progress = campaign.NewWriterReporter(os.Stderr)
	}
	if *cacheDir != "" {
		cache, err := campaign.OpenCache(*cacheDir)
		if err != nil {
			fail(err)
		}
		cfg.Cache = cache
	}

	outcomes := campaign.Run(context.Background(), cfg, jobSpecs)

	failed := 0
	if *jsonOut {
		// The canonical row stream: no static_lb backfill, no CSV
		// massaging — with -no-prune these bytes diff clean against the
		// same space streamed from a salam-serve daemon.
		if err := campaign.WriteRows(os.Stdout, campaign.Rows(outcomes)); err != nil {
			fail(err)
		}
		for _, o := range outcomes {
			if o.Err != nil {
				failed++
				fmt.Fprintf(os.Stderr, "warning: %s: %v\n", o.Job.ID, o.Err)
			}
		}
	} else {
		// A failed point becomes an error row and a stderr warning; the
		// sweep still finishes and reports every other point, then exits
		// non-zero.
		fmt.Println("kernel,memory,fu_limit,ports,cycles,static_lb,static_energy,time_us,power_mw,datapath_mw,area_um2")
		for i, o := range outcomes {
			pt := pts[i]
			if o.Err != nil {
				failed++
				fmt.Fprintf(os.Stderr, "warning: %s: %v\n", o.Job.ID, o.Err)
				msg := strings.NewReplacer(",", ";", "\n", " ").Replace(o.Err.Error())
				fmt.Printf("%s,%s,%d,%d,error,%s\n", kname, pt.Mem, pt.FU, pt.Ports, msg)
				continue
			}
			energy, _ := campaign.StaticEnergy(jobSpecs[i])
			if o.Pruned {
				fmt.Printf("%s,%s,%d,%d,pruned,%d,%.1f,,,,\n",
					kname, pt.Mem, pt.FU, pt.Ports, o.StaticLB, energy)
				continue
			}
			if o.StaticLB == 0 {
				// The campaign only bounds jobs when pruning is on; fill the
				// column here so -no-prune rows stay comparable. The CDFG and
				// its analysis are already cached from the simulation itself.
				if lb, ok := campaign.StaticPrune(jobSpecs[i]); ok {
					o.StaticLB = lb
				}
			}
			printCSVRow(kname, pt, o.Metrics, o.StaticLB, energy)
		}
	}
	if *dumpStats {
		cfg.Stats.Dump(os.Stderr)
		hits, misses := salam.ElabCacheStats()
		fmt.Fprintf(os.Stderr, "elab_cache: %d hits, %d misses\n", hits, misses)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d of %d points failed\n", failed, len(outcomes))
		os.Exit(1)
	}
}

// printCSVRow renders one measured point in the sweep's CSV schema.
func printCSVRow(kname string, pt campaign.Point, m *campaign.Metrics, staticLB uint64, staticEnergyPJ float64) {
	fmt.Printf("%s,%s,%d,%d,%d,%d,%.1f,%.3f,%.3f,%.3f,%.0f\n",
		kname, pt.Mem, pt.FU, pt.Ports, m.Cycles, staticLB, staticEnergyPJ,
		float64(m.Ticks)/1e6, m.Power.TotalMW(),
		m.Power.DatapathMW(), m.Power.TotalAreaUM2())
}

// runRemote submits the space to a salam-serve daemon and renders its
// results stream — raw NDJSON passthrough with -json, or the same CSV the
// in-process sweep prints. Returns the process exit code.
func runRemote(base string, space campaign.Space, jsonOut bool, kname string, pts []campaign.Point, jobSpecs []campaign.Job) int {
	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "remote:", err)
		return 2
	}
	body, err := json.Marshal(space)
	if err != nil {
		return fail(err)
	}
	base = strings.TrimRight(base, "/")
	resp, err := http.Post(base+"/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		return fail(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fail(fmt.Errorf("%s rejected the space: HTTP %d: %s", base, resp.StatusCode, strings.TrimSpace(string(msg))))
	}
	var accepted struct {
		ID      string `json:"id"`
		Results string `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&accepted); err != nil {
		return fail(err)
	}
	fmt.Fprintf(os.Stderr, "remote: campaign %s accepted (%d points) on %s\n", accepted.ID, len(jobSpecs), base)

	stream, err := http.Get(base + accepted.Results)
	if err != nil {
		return fail(err)
	}
	defer stream.Body.Close()
	if stream.StatusCode != http.StatusOK {
		return fail(fmt.Errorf("results stream: HTTP %d", stream.StatusCode))
	}

	if jsonOut {
		// Byte-for-byte passthrough of the canonical row stream.
		if _, err := io.Copy(os.Stdout, stream.Body); err != nil {
			return fail(err)
		}
		return 0
	}

	fmt.Println("kernel,memory,fu_limit,ports,cycles,static_lb,static_energy,time_us,power_mw,datapath_mw,area_um2")
	failed := 0
	sc := bufio.NewScanner(stream.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var row campaign.Row
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			return fail(fmt.Errorf("decoding results row: %w", err))
		}
		if row.Index < 0 || row.Index >= len(pts) {
			return fail(fmt.Errorf("results row index %d outside the %d-point space", row.Index, len(pts)))
		}
		pt := pts[row.Index]
		switch row.Status {
		case campaign.StatusOK:
			lb := row.StaticLB
			if lb == 0 {
				// The server never prunes; compute the bound locally so
				// remote CSV keeps the same static_lb column.
				if v, ok := campaign.StaticPrune(jobSpecs[row.Index]); ok {
					lb = v
				}
			}
			energy := row.StaticEnergyPJ
			if energy == 0 {
				// Pre-energy servers omit the field; derive it locally.
				energy, _ = campaign.StaticEnergy(jobSpecs[row.Index])
			}
			printCSVRow(kname, pt, row.Metrics, lb, energy)
		case campaign.StatusError:
			failed++
			fmt.Fprintf(os.Stderr, "warning: %s: %s\n", row.ID, row.Error)
			msg := strings.NewReplacer(",", ";", "\n", " ").Replace(row.Error)
			fmt.Printf("%s,%s,%d,%d,error,%s\n", kname, pt.Mem, pt.FU, pt.Ports, msg)
		default:
			// pruned/skipped from a sharded or pruning server: the point
			// has no metrics here.
			fmt.Printf("%s,%s,%d,%d,%s,%d,%.1f,,,,\n", kname, pt.Mem, pt.FU, pt.Ports, row.Status, row.StaticLB, row.StaticEnergyPJ)
		}
	}
	if err := sc.Err(); err != nil {
		return fail(err)
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "%d of %d points failed\n", failed, len(jobSpecs))
		return 1
	}
	return 0
}

// searchStats renders the search's accounting line: how much of the space
// was simulated versus proven away.
func searchStats(res *search.Result) string {
	return fmt.Sprintf(
		"search: points=%d classes=%d evaluated=%d simulated=%d cache_hits=%d points_pruned=%d points_collapsed=%d proxy_runs=%d waves=%d frontier=%d",
		res.Points, res.Classes, res.Evaluated, res.Simulated, res.CacheHits,
		res.PrunedPoints, res.CollapsedPoints, res.ProxyRuns, res.Waves, len(res.Frontier))
}

// runSearch proves the space's Pareto frontier in-process: frontier CSV on
// stdout, accounting on stderr. Returns the process exit code.
func runSearch(space campaign.Space, jobs int, cacheDir string, cold, noProxy, dumpStats bool) int {
	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "search:", err)
		return 2
	}
	if err := space.Validate(); err != nil {
		return fail(err)
	}
	cfg := search.Config{
		Space:     space,
		Workers:   jobs,
		ColdStart: cold,
		NoProxy:   noProxy,
	}
	if cacheDir != "" {
		cache, err := campaign.OpenCache(cacheDir)
		if err != nil {
			return fail(err)
		}
		cfg.Cache = cache
	}
	var stats *sim.Group
	if dumpStats {
		stats = sim.NewGroup("dse")
		cfg.Stats = stats
	}
	res, err := search.Run(context.Background(), cfg)
	if err != nil {
		return fail(err)
	}
	fmt.Print(search.FrontierCSV(space.Kernel, res.Frontier))
	fmt.Fprintln(os.Stderr, searchStats(res))
	if dumpStats {
		stats.Dump(os.Stderr)
		hits, misses := salam.ElabCacheStats()
		fmt.Fprintf(os.Stderr, "elab_cache: %d hits, %d misses\n", hits, misses)
	}
	return 0
}

// runRemoteSearch submits the space to a salam-serve daemon's /v1/searches,
// polls until the search is terminal, and prints the certified frontier —
// byte-identical to what runSearch prints for the same space. Returns the
// process exit code.
func runRemoteSearch(base string, space campaign.Space) int {
	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "remote search:", err)
		return 2
	}
	body, err := json.Marshal(space)
	if err != nil {
		return fail(err)
	}
	base = strings.TrimRight(base, "/")
	resp, err := http.Post(base+"/v1/searches", "application/json", bytes.NewReader(body))
	if err != nil {
		return fail(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fail(fmt.Errorf("%s rejected the space: HTTP %d: %s", base, resp.StatusCode, strings.TrimSpace(string(msg))))
	}
	var accepted struct {
		ID       string `json:"id"`
		Points   int    `json:"points"`
		Classes  int    `json:"classes"`
		Frontier string `json:"frontier"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&accepted); err != nil {
		return fail(err)
	}
	fmt.Fprintf(os.Stderr, "remote: search %s accepted (%d points, %d collapsed classes) on %s\n",
		accepted.ID, accepted.Points, accepted.Classes, base)

	// Poll status until terminal; a search has no row stream to block on.
	var snap struct {
		State           string `json:"state"`
		Reason          string `json:"reason"`
		Points          int    `json:"points"`
		Classes         int    `json:"classes"`
		Evaluated       int    `json:"evaluated"`
		Simulated       int    `json:"simulated"`
		Cached          int    `json:"cached"`
		ProxyRuns       int    `json:"proxy_runs"`
		PrunedPoints    int    `json:"pruned_points"`
		CollapsedPoints int    `json:"collapsed_points"`
		Waves           int    `json:"waves"`
		FrontierSize    int    `json:"frontier_size"`
	}
	for {
		st, err := http.Get(base + "/v1/searches/" + accepted.ID)
		if err != nil {
			return fail(err)
		}
		snap.State, snap.Reason = "", ""
		err = json.NewDecoder(st.Body).Decode(&snap)
		st.Body.Close()
		if err != nil {
			return fail(err)
		}
		if snap.State == "done" || snap.State == "canceled" {
			break
		}
		time.Sleep(200 * time.Millisecond)
	}
	if snap.State == "canceled" {
		return fail(fmt.Errorf("search canceled: %s", snap.Reason))
	}

	fr, err := http.Get(base + accepted.Frontier)
	if err != nil {
		return fail(err)
	}
	defer fr.Body.Close()
	if fr.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(fr.Body, 4096))
		return fail(fmt.Errorf("frontier: HTTP %d: %s", fr.StatusCode, strings.TrimSpace(string(msg))))
	}
	if _, err := io.Copy(os.Stdout, fr.Body); err != nil {
		return fail(err)
	}
	fmt.Fprintf(os.Stderr,
		"search: points=%d classes=%d evaluated=%d simulated=%d cache_hits=%d points_pruned=%d points_collapsed=%d proxy_runs=%d waves=%d frontier=%d\n",
		snap.Points, snap.Classes, snap.Evaluated, snap.Simulated, snap.Cached,
		snap.PrunedPoints, snap.CollapsedPoints, snap.ProxyRuns, snap.Waves, snap.FrontierSize)
	return 0
}
