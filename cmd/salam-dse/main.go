// Command salam-dse sweeps accelerator design parameters for a kernel and
// emits CSV — the paper's design-space-exploration workflow (Sec. IV-D),
// where a script sweeps FU allocations and memory bandwidth and the
// results are analyzed as a Pareto set.
//
// Usage:
//
//	salam-dse -kernel gemm -ports 2,4,8 -fu 4,8,16 > sweep.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	salam "gosalam"
	"gosalam/internal/hw"
	"gosalam/kernels"
)

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	kernel := flag.String("kernel", "gemm", "kernel name")
	preset := flag.String("preset", "small", "workload preset: small or default")
	portsList := flag.String("ports", "2,4,8", "read/write port counts to sweep")
	fuList := flag.String("fu", "0", "FP adder+multiplier limits to sweep (0 = dedicated)")
	memList := flag.String("mem", "spm", "memory kinds to sweep: spm,cache")
	flag.Parse()

	p := kernels.Small
	if *preset == "default" {
		p = kernels.Default
	}
	k := kernels.ByName(p, *kernel)
	if k == nil {
		fmt.Fprintf(os.Stderr, "unknown kernel %q\n", *kernel)
		os.Exit(2)
	}
	ports, err := parseInts(*portsList)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fus, err := parseInts(*fuList)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	fmt.Println("kernel,memory,fu_limit,ports,cycles,time_us,power_mw,datapath_mw,area_um2")
	for _, memKind := range strings.Split(*memList, ",") {
		for _, fu := range fus {
			for _, port := range ports {
				opts := salam.DefaultRunOpts()
				opts.Accel.ReadPorts = port
				opts.Accel.WritePorts = port
				opts.Accel.MaxOutstanding = 2 * port
				opts.SPMPortsPer = port
				if fu > 0 {
					opts.Accel.FULimits = map[hw.FUClass]int{
						hw.FUFPAdder: fu, hw.FUFPMultiplier: fu,
					}
				}
				switch strings.TrimSpace(memKind) {
				case "spm":
					opts.Mem = salam.MemSPM
				case "cache":
					opts.Mem = salam.MemCache
				default:
					fmt.Fprintf(os.Stderr, "unknown memory %q\n", memKind)
					os.Exit(2)
				}
				res, err := salam.RunKernel(k, opts)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				fmt.Printf("%s,%s,%d,%d,%d,%.3f,%.3f,%.3f,%.0f\n",
					k.Name, memKind, fu, port, res.Cycles,
					float64(res.Ticks)/1e6, res.Power.TotalMW(),
					res.Power.DatapathMW(), res.Power.TotalAreaUM2())
			}
		}
	}
}
