// Command salam-experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	salam-experiments [-run id[,id...]] [-scale smoke|full] [-csv dir] [-o file]
//
// With no -run flag every experiment executes in paper order. Markdown
// goes to stdout (or -o); -csv additionally writes one CSV per experiment.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"gosalam/internal/experiments"
)

func main() {
	runIDs := flag.String("run", "", "comma-separated experiment ids (default: all)")
	scale := flag.String("scale", "smoke", "workload scale: smoke or full")
	csvDir := flag.String("csv", "", "directory to write per-experiment CSVs")
	outFile := flag.String("o", "", "write markdown to this file instead of stdout")
	jobs := flag.Int("jobs", 0, "parallel simulations for the DSE sweeps (0 = GOMAXPROCS)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	experiments.SetWorkers(*jobs)

	if *list {
		for _, r := range experiments.AllRunners() {
			fmt.Printf("%-8s %s\n", r.ID, r.Desc)
		}
		return
	}

	var sc experiments.Scale
	switch *scale {
	case "smoke":
		sc = experiments.ScaleSmoke
	case "full":
		sc = experiments.ScaleFull
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}

	var runners []experiments.Runner
	if *runIDs == "" {
		runners = experiments.AllRunners()
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			r, ok := experiments.RunnerByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			runners = append(runners, r)
		}
	}

	out := os.Stdout
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}

	fmt.Fprintf(out, "# gosalam experiment results (scale=%s)\n\n", *scale)
	for _, r := range runners {
		start := time.Now()
		tab, err := r.Run(sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", r.ID, err)
			os.Exit(1)
		}
		fmt.Fprintf(out, "%s\n_Generated in %.1fs._\n\n", tab.Markdown(), time.Since(start).Seconds())
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			path := filepath.Join(*csvDir, r.ID+".csv")
			if err := os.WriteFile(path, []byte(tab.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		fmt.Fprintf(os.Stderr, "done %-8s (%.1fs)\n", r.ID, time.Since(start).Seconds())
	}
}
