package salam_test

// Sampled-simulation gate: an interval-sampled run of a statically exact
// kernel must (a) be marked Estimated end to end, (b) land within its own
// reported error bound of the exact cycle count, (c) fire far fewer events
// than the detailed run, and (d) leave the session broken so pools refuse
// to recycle the mid-flight system.

import (
	"math"
	"strings"
	"testing"

	salam "gosalam"
	"gosalam/kernels"
)

func TestSampledRunEstimatesWithinBound(t *testing.T) {
	k := kernels.GEMM(24, 1)
	exactOpts := salam.DefaultRunOpts()
	exact, err := salam.RunKernel(k, exactOpts)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Estimated {
		t.Fatal("exact run marked estimated")
	}

	opts := exactOpts
	opts.Sample = salam.SampleSpec{K: 3, N: 12}
	res, err := salam.RunKernel(k, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Estimated || res.Sample == nil {
		t.Fatal("sampled run not marked estimated")
	}
	if res.SampleError != res.Sample.ErrorBound {
		t.Fatalf("SampleError %g != Sample.ErrorBound %g", res.SampleError, res.Sample.ErrorBound)
	}
	if len(res.Sample.Intervals) != opts.Sample.K {
		t.Fatalf("%d detailed intervals, want %d", len(res.Sample.Intervals), opts.Sample.K)
	}

	relErr := math.Abs(float64(res.Cycles)-float64(exact.Cycles)) / float64(exact.Cycles)
	t.Logf("exact=%d est=%d relErr=%.4f bound=%.4f events %d -> %d",
		exact.Cycles, res.Cycles, relErr, res.SampleError, exact.EventsFired, res.EventsFired)
	// The estimate must honor its own reported uncertainty (plus a hair of
	// headroom for the integer boundary effects the bound cannot see).
	if relErr > res.SampleError+0.02 {
		t.Fatalf("estimate off by %.4f, beyond reported bound %.4f", relErr, res.SampleError)
	}
	// The detailed prefix is K/N of the run; event count must reflect the
	// skipped work (allow generous slack for warmup and drain).
	if res.EventsFired*2 >= exact.EventsFired {
		t.Fatalf("sampled run fired %d events vs %d exact — nothing was skipped",
			res.EventsFired, exact.EventsFired)
	}
}

func TestSampledRunLeavesSessionBroken(t *testing.T) {
	k := kernels.GEMM(16, 1)
	opts := salam.DefaultRunOpts()
	opts.Sample = salam.SampleSpec{K: 2, N: 8}

	s, err := salam.NewSession(k, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(opts); err != nil {
		t.Fatal(err)
	}
	if !s.IsBroken() {
		t.Fatal("sampled run left the session reusable — skipped intervals mean it is mid-flight")
	}

	pool := salam.NewSessionPool()
	s2, err := pool.AcquireForTest(k, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Run(opts); err != nil {
		t.Fatal(err)
	}
	pool.ReleaseForTest(s2)
	if n := pool.IdleForTest(); n != 0 {
		t.Fatalf("pool recycled a sampled (mid-flight) session (%d idle)", n)
	}
}

func TestSampledRunRejectsInexactKernel(t *testing.T) {
	// BFS trip counts are data-dependent: the analyzer cannot prove the
	// total op count, so sampling must refuse rather than guess.
	k := kernels.BFS(64, 4)
	opts := salam.DefaultRunOpts()
	opts.Sample = salam.SampleSpec{K: 2, N: 8}
	if _, err := salam.RunKernel(k, opts); err == nil {
		t.Fatal("sampling accepted a kernel with data-dependent trip counts")
	} else if !strings.Contains(err.Error(), "not sampleable") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestSampledRunValidatesSpec(t *testing.T) {
	k := kernels.GEMM(8, 1)
	opts := salam.DefaultRunOpts()
	opts.Sample = salam.SampleSpec{K: 1, N: 8}
	if _, err := salam.RunKernel(k, opts); err == nil {
		t.Fatal("K=1 spec accepted")
	}
	opts.Sample = salam.SampleSpec{K: 8, N: 8}
	if _, err := salam.RunKernel(k, opts); err == nil {
		t.Fatal("N=K spec accepted")
	}
}

func TestSampledRunFinishingEarlyIsExact(t *testing.T) {
	// A tiny kernel can complete inside the detailed prefix; the run must
	// then degrade to an exact result, not a fabricated estimate.
	k := kernels.GEMM(4, 1)
	exact, err := salam.RunKernel(k, salam.DefaultRunOpts())
	if err != nil {
		t.Fatal(err)
	}
	opts := salam.DefaultRunOpts()
	// K=2 detailed intervals of N=3 cover 2/3 of the ops; the drain after
	// the last committed op routinely carries the run to completion.
	opts.Sample = salam.SampleSpec{K: 2, N: 3}
	res, err := salam.RunKernel(k, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Estimated {
		if res.Cycles != exact.Cycles {
			t.Fatalf("early-finishing sampled run: %d cycles, exact %d", res.Cycles, exact.Cycles)
		}
	}
}
