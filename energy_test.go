package salam_test

// Soundness tests for the static energy bound: a provable energy floor
// that ever exceeds a run's measured energy is a bug by definition. Each
// component is checked against the counter it floors — FU energy, register
// traffic, private-memory accesses — and the total against the power
// report integrated over the elapsed time, so the bound stays anchored to
// the same joule the engine charges.

import (
	"testing"

	salam "gosalam"
	"gosalam/kernels"
)

// energyConfigs spans the knobs the bound depends on: FU sharing (floors
// vs dedicated), port width (cycle bound), and banking (SPM access
// energy).
func energyConfigs() []struct {
	name      string
	fu, ports int
	banks     int
	cache     bool
} {
	return []struct {
		name      string
		fu, ports int
		banks     int
		cache     bool
	}{
		{"default", 0, 0, 0, false},
		{"shared-narrow", 2, 1, 1, false},
		{"shared-banked", 4, 2, 8, false},
		{"wide", 8, 8, 4, false},
		{"cache", 0, 0, 0, true},
		{"cache-shared", 2, 2, 0, true},
	}
}

func energyOpts(fu, ports, banks int, cache bool) salam.RunOpts {
	opts := salam.DefaultRunOpts()
	if ports > 0 {
		opts.Accel.ReadPorts, opts.Accel.WritePorts = ports, ports
		opts.Accel.MaxOutstanding = 2 * ports
		opts.SPMPortsPer = ports
	}
	if fu > 0 {
		opts.Accel.FULimits = map[salam.FUClass]int{
			salam.FUFPAdder: fu, salam.FUFPMultiplier: fu,
		}
	}
	if banks > 0 {
		opts.SPMBanks = banks
	}
	if cache {
		opts.Mem = salam.MemCache
	}
	return opts
}

// TestStaticEnergyLowerBoundSoundness runs every golden-suite kernel
// across the config matrix and checks the bound floors each measured
// component and the measured total (power report x elapsed time).
func TestStaticEnergyLowerBoundSoundness(t *testing.T) {
	const eps = 1e-6
	suite := append(kernels.All(kernels.Small), kernels.Extras(kernels.Small)...)
	checked := 0
	for _, k := range suite {
		for _, cfg := range energyConfigs() {
			opts := energyOpts(cfg.fu, cfg.ports, cfg.banks, cfg.cache)
			se, err := salam.StaticEnergyLowerBound(k, opts)
			if err != nil {
				t.Fatalf("%s/%s: bound: %v", k.Name, cfg.name, err)
			}
			res, err := salam.RunKernel(k, opts)
			if err != nil {
				t.Fatalf("%s/%s: run: %v", k.Name, cfg.name, err)
			}
			me := salam.MeasuredEnergy(res)

			if se.FUPJ > me.FUPJ+eps {
				t.Errorf("%s/%s: FU floor %.3f pJ exceeds measured %.3f pJ",
					k.Name, cfg.name, se.FUPJ, me.FUPJ)
			}
			if se.RegPJ > me.RegPJ+eps {
				t.Errorf("%s/%s: register floor %.3f pJ exceeds measured %.3f pJ",
					k.Name, cfg.name, se.RegPJ, me.RegPJ)
			}
			if cfg.cache {
				// The accelerator power report does not attribute cache
				// energy, so the bound must not charge any.
				if se.MemPJ != 0 {
					t.Errorf("%s/%s: cache-backed bound charges %.3f pJ of memory energy",
						k.Name, cfg.name, se.MemPJ)
				}
			} else if se.MemPJ > me.MemReadPJ+me.MemWritePJ+eps {
				t.Errorf("%s/%s: memory floor %.3f pJ exceeds measured %.3f pJ",
					k.Name, cfg.name, se.MemPJ, me.MemReadPJ+me.MemWritePJ)
			}
			if uint64(se.CyclesLB) > res.Cycles {
				t.Errorf("%s/%s: cycle bound %d exceeds measured %d",
					k.Name, cfg.name, se.CyclesLB, res.Cycles)
			}

			// The headline claim: TotalPJ floors the run's reported energy,
			// and the EDP floor its energy-delay product.
			measuredPJ := res.Power.TotalMW() * me.ElapsedNS
			if se.TotalPJ > measuredPJ*(1+1e-9)+eps {
				t.Errorf("%s/%s: total floor %.3f pJ exceeds measured %.3f pJ (%.3f mW x %.1f ns)",
					k.Name, cfg.name, se.TotalPJ, measuredPJ, res.Power.TotalMW(), me.ElapsedNS)
			}
			if se.EDP > measuredPJ*me.ElapsedNS*(1+1e-9)+eps {
				t.Errorf("%s/%s: EDP floor %.1f exceeds measured %.1f pJ*ns",
					k.Name, cfg.name, se.EDP, measuredPJ*me.ElapsedNS)
			}
			if se.TotalPJ <= 0 {
				t.Errorf("%s/%s: degenerate bound %+v", k.Name, cfg.name, se)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no configurations checked")
	}
}

// TestStaticEnergyExactOnCountedLoops pins the quality side on GEMM: every
// loop is counted, so the bound's dynamic components must be exact — equal
// to the measured counters, not merely below them.
func TestStaticEnergyExactOnCountedLoops(t *testing.T) {
	k := kernels.GEMM(8, 1)
	opts := salam.DefaultRunOpts()
	se, err := salam.StaticEnergyLowerBound(k, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !se.Exact {
		t.Fatal("GEMM bound not exact despite fully counted loops")
	}
	res, err := salam.RunKernel(k, opts)
	if err != nil {
		t.Fatal(err)
	}
	me := salam.MeasuredEnergy(res)
	close := func(a, b float64) bool {
		d := a - b
		return d < 1e-6 && d > -1e-6
	}
	if !close(se.FUPJ, me.FUPJ) {
		t.Errorf("exact FU bound %.3f != measured %.3f", se.FUPJ, me.FUPJ)
	}
	if !close(se.RegPJ, me.RegPJ) {
		t.Errorf("exact register bound %.3f != measured %.3f", se.RegPJ, me.RegPJ)
	}
	if !close(se.MemPJ, me.MemReadPJ+me.MemWritePJ) {
		t.Errorf("exact memory bound %.3f != measured %.3f", se.MemPJ, me.MemReadPJ+me.MemWritePJ)
	}
}
