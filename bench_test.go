package salam_test

// One testing.B benchmark per table and figure in the paper's evaluation,
// plus ablation benches for the design decisions called out in DESIGN.md.
// Benchmarks run the experiments at smoke scale so `go test -bench=.`
// stays tractable; `cmd/salam-experiments -scale full` regenerates the
// recorded EXPERIMENTS.md numbers.

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	salam "gosalam"
	"gosalam/internal/campaign"
	"gosalam/internal/experiments"
	"gosalam/internal/search"
	"gosalam/kernels"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	r, ok := experiments.RunnerByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab, err := r.Run(experiments.ScaleSmoke)
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// Paper Table I: baseline datapath vs data-dependent execution.
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }

// Paper Table II: baseline datapath vs memory design.
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }

// Paper Fig. 4: power breakdown with private SPM.
func BenchmarkFig4(b *testing.B) { benchExperiment(b, "fig4") }

// Paper Fig. 10: timing validation vs the HLS reference.
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10") }

// Paper Fig. 11: power validation vs the synthesis reference.
func BenchmarkFig11(b *testing.B) { benchExperiment(b, "fig11") }

// Paper Fig. 12: area validation vs the synthesis reference.
func BenchmarkFig12(b *testing.B) { benchExperiment(b, "fig12") }

// Paper Table III: full-system validation vs the FPGA model.
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }

// Paper Table IV: preprocessing/simulation wall-clock vs the baseline.
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4") }

// Paper Fig. 13: GEMM power/performance Pareto sweep.
func BenchmarkFig13(b *testing.B) { benchExperiment(b, "fig13") }

// Paper Fig. 14: GEMM stall breakdown vs read/write ports.
func BenchmarkFig14(b *testing.B) { benchExperiment(b, "fig14") }

// Paper Fig. 15: GEMM memory/compute co-design exploration.
func BenchmarkFig15(b *testing.B) { benchExperiment(b, "fig15") }

// Paper Fig. 16: producer-consumer accelerator scenarios.
func BenchmarkFig16(b *testing.B) { benchExperiment(b, "fig16") }

// Raw engine throughput: how fast the execute-in-execute engine simulates
// one representative kernel (the quantity behind Table IV's SALAM column).
func BenchmarkEngineGEMM(b *testing.B) {
	k := kernels.GEMM(8, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := salam.RunKernel(k, salam.DefaultRunOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineBFS(b *testing.B) {
	k := kernels.BFS(64, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := salam.RunKernel(k, salam.DefaultRunOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation 3 (DESIGN.md): bounded basic-block fetch window — loop
// pipelining on vs off.
func BenchmarkAblationWindow(b *testing.B) {
	k := kernels.GEMM(8, 1)
	for _, pipe := range []bool{true, false} {
		name := "pipelined"
		if !pipe {
			name = "drain"
		}
		b.Run(name, func(b *testing.B) {
			opts := salam.DefaultRunOpts()
			opts.Accel.PipelineLoops = pipe
			b.ReportAllocs()
			var cycles uint64
			for i := 0; i < b.N; i++ {
				res, err := salam.RunKernel(k, opts)
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Cycles
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
		})
	}
}

// Ablation 4: dedicated 1:1 FUs vs constrained pools.
func BenchmarkAblationFUReuse(b *testing.B) {
	k := kernels.GEMMTree(8)
	for _, fu := range []int{0, 2, 8} {
		name := "dedicated"
		if fu > 0 {
			name = "pool-" + string(rune('0'+fu))
		}
		b.Run(name, func(b *testing.B) {
			opts := salam.DefaultRunOpts()
			// Wide memory so the FP pool, not bandwidth, binds.
			opts.Accel.ReadPorts, opts.Accel.WritePorts = 8, 8
			opts.Accel.MaxOutstanding = 32
			opts.SPMPortsPer = 8
			opts.Accel.ResQueueSize = 512
			if fu > 0 {
				opts.Accel.FULimits = map[salam.FUClass]int{
					salam.FUFPAdder: fu, salam.FUFPMultiplier: fu,
				}
			}
			b.ReportAllocs()
			var cycles uint64
			for i := 0; i < b.N; i++ {
				res, err := salam.RunKernel(k, opts)
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Cycles
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
		})
	}
}

// Ablation 5: dynamic memory disambiguation vs strict program order.
func BenchmarkAblationMemOrder(b *testing.B) {
	k := kernels.Stencil2D(12, 12)
	for _, conservative := range []bool{false, true} {
		name := "disambiguate"
		if conservative {
			name = "strict-order"
		}
		b.Run(name, func(b *testing.B) {
			opts := salam.DefaultRunOpts()
			opts.Accel.ConservativeMemOrder = conservative
			b.ReportAllocs()
			var cycles uint64
			for i := 0; i < b.N; i++ {
				res, err := salam.RunKernel(k, opts)
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Cycles
			}
			b.ReportMetric(float64(cycles), "sim-cycles")
		})
	}
}

// buildDSESweep is the Fig. 13-style GEMMTree sweep shared by the
// campaign benchmarks.
func buildDSESweep() []campaign.Job {
	k := kernels.GEMMTree(8)
	var jobs []campaign.Job
	for _, fu := range []int{2, 4, 8, 16} {
		for _, port := range []int{2, 4, 8} {
			opts := salam.DefaultRunOpts()
			opts.Accel.ReadPorts, opts.Accel.WritePorts = port, port
			opts.Accel.MaxOutstanding = 2 * port
			opts.SPMPortsPer = port
			opts.Accel.ResQueueSize = 1024
			opts.Accel.FULimits = map[salam.FUClass]int{
				salam.FUFPAdder: fu, salam.FUFPMultiplier: fu,
			}
			jobs = append(jobs, campaign.Job{
				ID:        fmt.Sprintf("fu=%d p=%d", fu, port),
				Kernel:    k,
				KernelKey: "gemm_tree/n=8",
				Opts:      opts,
			})
		}
	}
	return jobs
}

// BenchmarkDSECampaign: the Fig. 13-style sweep through the campaign
// engine at 1 worker vs all cores — the wall-clock win that motivates the
// subsystem. Output ordering is identical at both settings; only the
// elapsed time differs.
func BenchmarkDSECampaign(b *testing.B) {
	buildJobs := buildDSESweep
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out := campaign.Run(context.Background(), campaign.Config{Workers: workers}, buildJobs())
				if err := campaign.FirstError(out); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// Steady-state variant: a persistent pre-warmed SessionPool shared
	// across campaigns, so every job is an elaboration-cache hit re-running
	// a pooled system — the per-design-point cost of a long DSE sweep.
	b.Run("warm-pool", func(b *testing.B) {
		pool := salam.NewSessionPool()
		cfg := campaign.Config{Workers: 1, Sessions: pool}
		if err := campaign.FirstError(campaign.Run(context.Background(), cfg, buildJobs())); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out := campaign.Run(context.Background(), cfg, buildJobs())
			if err := campaign.FirstError(out); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDSECampaignPruned: the same sweep with static lower-bound
// pruning (campaign.StaticPrune). The delta against
// BenchmarkDSECampaign/workers-1 is the wall-clock the static analyzer
// saves by skipping provably dominated design points; the surviving
// points' metrics and the sweep's best point are identical by construction
// (TestStaticPrunePreservesBestPoint).
func BenchmarkDSECampaignPruned(b *testing.B) {
	b.ReportAllocs()
	pruned := 0
	for i := 0; i < b.N; i++ {
		out := campaign.Run(context.Background(),
			campaign.Config{Workers: 1, Prune: campaign.StaticPrune}, buildDSESweep())
		if err := campaign.FirstError(out); err != nil {
			b.Fatal(err)
		}
		pruned = 0
		for _, o := range out {
			if o.Pruned {
				pruned++
			}
		}
	}
	if pruned == 0 {
		b.Fatal("pruning eliminated nothing; the benchmark measures nothing")
	}
	b.ReportMetric(float64(pruned), "points-pruned")
}

// BenchmarkDSESearch: the tentpole quantity — prove the exact Pareto
// frontier of a million-point ranged GEMM space (1000 FU limits × 100 port
// widths × 10 bank counts) by branch-and-bound instead of sweeping it.
// points-evaluated over points-total is the fraction of the space the
// search had to simulate; the frontier it returns is exactly the one a
// 10⁶-point brute-force sweep would Pareto-filter (TestSearchExactFrontier
// proves equality on enumerable spaces; the bound and collapse arguments
// extend it to this scale).
func BenchmarkDSESearch(b *testing.B) {
	space := campaign.Space{
		Kernel:    "gemm",
		FURange:   &campaign.Range{Min: 1, Max: 1000},
		PortRange: &campaign.Range{Min: 1, Max: 100},
		BankRange: &campaign.Range{Min: 1, Max: 10},
	}
	b.ReportAllocs()
	var res *search.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = search.Run(context.Background(), search.Config{Space: space})
		if err != nil {
			b.Fatal(err)
		}
	}
	if res.Points != 1_000_000 || len(res.Frontier) == 0 {
		b.Fatalf("searched %d points, frontier %d", res.Points, len(res.Frontier))
	}
	if res.Evaluated*100 >= res.Points {
		b.Fatalf("search evaluated %d of %d points; want < 1%%", res.Evaluated, res.Points)
	}
	b.ReportMetric(float64(res.Points), "points-total")
	b.ReportMetric(float64(res.Evaluated), "points-evaluated")
	b.ReportMetric(float64(res.PrunedPoints+res.CollapsedPoints), "points-avoided")
	b.ReportMetric(float64(len(res.Frontier)), "frontier-size")
}

// BenchmarkDSESearchEDP: single-objective search over a 10⁵-point ranged
// GEMM space minimizing energy-delay product. Unlike the Pareto run, a
// single incumbent EDP gives the energy floor something to prune against,
// so points-pruned must be nonzero: regions whose provable energy/EDP
// floor already exceeds the best measured point die without simulation.
func BenchmarkDSESearchEDP(b *testing.B) {
	space := campaign.Space{
		Kernel:    "gemm",
		FURange:   &campaign.Range{Min: 1, Max: 500},
		PortRange: &campaign.Range{Min: 1, Max: 50},
		BankRange: &campaign.Range{Min: 1, Max: 8},
		Objective: "edp",
	}
	b.ReportAllocs()
	var res *search.Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = search.Run(context.Background(), search.Config{Space: space})
		if err != nil {
			b.Fatal(err)
		}
	}
	if res.Points != 200_000 || len(res.Frontier) != 1 {
		b.Fatalf("searched %d points, result %d", res.Points, len(res.Frontier))
	}
	if res.PrunedPoints == 0 {
		b.Fatal("EDP floor never pruned a region")
	}
	if res.Evaluated*100 >= res.Points {
		b.Fatalf("search evaluated %d of %d points; want < 1%%", res.Evaluated, res.Points)
	}
	b.ReportMetric(float64(res.Points), "points-total")
	b.ReportMetric(float64(res.Evaluated), "points-evaluated")
	b.ReportMetric(float64(res.PrunedPoints), "points-pruned")
	b.ReportMetric(res.Frontier[0].Vec.EDP, "best-edp-pjns")
}
