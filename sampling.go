package salam

// Interval-sampled simulation (RunOpts.Sample): large-N kernels in
// near-constant detailed-simulation time. The static analysis proves the
// kernel's total committed-op count exactly (counted-trip loop proofs); the
// run is divided into N equal intervals in committed-op space, the first K
// simulate in detail with a checkpoint taken at each boundary, and the
// remaining N-K intervals are extrapolated from the measured steady-state
// rate with a reported error bound. Sampling is the functional-model dual
// of the snapshot machinery: checkpoints prove the detailed prefix is
// resumable, and the analysis proofs justify skipping the rest.

import (
	"fmt"

	"gosalam/internal/sample"
	"gosalam/internal/sim"
	"gosalam/kernels"
)

// SampleEligible reports whether k under opts qualifies for interval
// sampling: every reachable block's trip count must be statically exact,
// which makes the analyzer's total dynamic-op count the kernel's true
// committed-op count. The returned reason names the first offending block
// when not eligible.
func SampleEligible(k *kernels.Kernel, opts RunOpts) (total uint64, reason string, ok bool) {
	rep, err := AnalyzeKernel(k, opts)
	if err != nil {
		return 0, err.Error(), false
	}
	for _, bs := range rep.Sched {
		if !bs.Exact {
			return 0, fmt.Sprintf("block %s has a data-dependent trip count", bs.Block), false
		}
	}
	if rep.Totals.DynOps == 0 {
		return 0, "kernel commits no dynamic ops", false
	}
	return rep.Totals.DynOps, "", true
}

// runSampled is the sampled counterpart of run. It simulates the detailed
// prefix, checkpointing at each interval boundary, then abandons the run
// mid-flight and extrapolates. The session stays marked broken — pooled
// callers drop it — because the skipped intervals leave it mid-simulation
// by design. A kernel that completes inside the prefix degrades to a
// normal exact run.
func (s *Session) runSampled(opts RunOpts, stop func() bool) (*Result, error) {
	spec := opts.Sample
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("salam: %s: %w", s.k.Name, err)
	}
	totalOps, reason, ok := SampleEligible(s.k, opts)
	if !ok {
		return nil, fmt.Errorf("salam: %s is not sampleable: %s", s.k.Name, reason)
	}

	if err := s.begin(opts); err != nil {
		return nil, err
	}
	s.acc.Start(s.inst.Args)

	committed := func() uint64 { return uint64(s.acc.Committed.V) }
	intervals := make([]sample.Interval, 0, spec.K)
	var lastOps, lastCycles uint64
	finished := false
	for j := 1; j <= spec.K && !finished; j++ {
		target := totalOps * uint64(j) / uint64(spec.N)
		finished = s.runUntil(func() bool {
			return committed() >= target || (stop != nil && stop())
		})
		if !finished && stop != nil && stop() {
			return nil, fmt.Errorf("salam: %s canceled", s.k.Name)
		}
		intervals = append(intervals, sample.Interval{
			Ops:    committed() - lastOps,
			Cycles: s.acc.Cycles - lastCycles,
		})
		lastOps, lastCycles = committed(), s.acc.Cycles
		if !finished {
			// The boundary checkpoint: proof the prefix is resumable, and
			// the natural artifact for callers that later want to extend
			// the detailed region from here instead of re-simulating.
			if _, err := s.Checkpoint(); err != nil {
				return nil, fmt.Errorf("salam: %s: interval %d checkpoint: %w", s.k.Name, j, err)
			}
		}
	}
	if finished {
		// The kernel ended inside the detailed prefix — nothing was
		// skipped, so finish normally and return an exact result.
		return s.finish(opts, stop)
	}

	est, err := sample.Extrapolate(intervals, totalOps-lastOps)
	if err != nil {
		return nil, fmt.Errorf("salam: %s: %w", s.k.Name, err)
	}
	res := &Result{
		Stats: s.stats, Instance: s.inst, Space: s.space,
		Acc: s.acc, SPM: s.spm, Cache: s.cache,
		Cycles:      est.Cycles,
		Ticks:       s.q.Now() + sim.Tick(s.acc.Clk.CyclesToTicks(est.Cycles-s.acc.Cycles)),
		EventsFired: s.q.Fired(),
		Power:       s.acc.Power(s.spm, s.q.Now()),
		Estimated:   true,
		SampleError: est.ErrorBound,
		Sample:      &est,
	}
	return res, nil
}
