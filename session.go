package salam

// Warm-start simulation reuse: a Session is a pooled single-accelerator
// SoC that can run many design points without being reconstructed. The
// static CDFG comes from the shared elaboration cache; everything dynamic
// (event queue, stats, backing store, memory devices, accelerator engine
// state) is rewound through the Reset paths between runs, so a warm run is
// byte-identical to a cold one — the golden determinism suite holds over
// both. Campaign workers keep sessions in a SessionPool and re-run the
// next design point in place instead of reallocating a system per job.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"gosalam/internal/core"
	"gosalam/internal/hw"
	"gosalam/internal/mem"
	"gosalam/internal/sim"
	"gosalam/internal/timeline"
	"gosalam/ir"
	"gosalam/kernels"
)

// sessionKey is the structural configuration of a single-accelerator
// system: everything NewSession bakes into component geometry or clock
// domains. Design points that differ only in tunable knobs — FU limits,
// port counts, queue sizes, SPM latency/ports, cache MSHRs, SkipCheck,
// profiling — share a key and can reuse one Session.
type sessionKey struct {
	k                                 *kernels.Kernel
	profile                           *hw.Profile
	seed                              int64
	mem                               MemKind
	clockMHz                          float64
	spmBanks                          int
	cacheBytes, cacheLine, cacheAssoc int
}

// structuralKey derives the session key for a run request.
func structuralKey(k *kernels.Kernel, opts RunOpts) sessionKey {
	profile := opts.Profile
	if profile == nil {
		profile = defaultProfile
	}
	key := sessionKey{
		k: k, profile: profile, seed: opts.Seed,
		mem: opts.Mem, clockMHz: opts.Accel.ClockMHz,
	}
	switch opts.Mem {
	case MemSPM:
		key.spmBanks = opts.SPMBanks
	case MemCache:
		key.cacheBytes = opts.CacheBytes
		key.cacheLine = opts.CacheLine
		key.cacheAssoc = opts.CacheAssoc
	}
	return key
}

// Session is a reusable single-accelerator system. It is not safe for
// concurrent use; share sessions across goroutines through a SessionPool.
type Session struct {
	key     sessionKey
	k       *kernels.Kernel
	profile *hw.Profile

	q         *sim.EventQueue
	stats     *sim.Group
	space     *ir.FlatMem
	spaceSize int
	memClk    *sim.ClockDomain
	comm      *core.CommInterface
	acc       *core.Accelerator
	spm       *mem.Scratchpad
	cache     *mem.Cache
	dram      *mem.DRAM

	runs   uint64
	broken bool

	// Mid-run state shared by begin/finish so a run can be split around a
	// checkpoint: the live workload instance, the completion latch, and the
	// configuration fingerprint that stamps images taken from this run.
	inst    *kernels.Instance
	runDone bool
	fp      string

	// testHookReconfigure, when set, runs inside begin between the warm
	// rewind and Reconfigure — test-only, for poisoning regression coverage.
	testHookReconfigure func()
}

// NewSession builds the system for k once. The opts fix the session's
// structural configuration (kernel, profile, seed, memory kind and
// geometry, clock); the tunable knobs passed to each Run may differ.
func NewSession(k *kernels.Kernel, opts RunOpts) (*Session, error) {
	profile := opts.Profile
	if profile == nil {
		profile = defaultProfile
	}
	// Validate the static configuration up front (and prime the cache).
	if _, err := core.SharedElab.Elaborate(k.F, profile, opts.Accel.FULimits); err != nil {
		return nil, err
	}

	s := &Session{
		key:     structuralKey(k, opts),
		k:       k,
		profile: profile,
	}
	s.q = sim.NewEventQueue()
	s.stats = sim.NewGroup("system")
	s.spaceSize = spaceSizeFor(k, opts.Seed)
	s.space = ir.NewFlatMem(0, s.spaceSize)
	s.memClk = sim.NewClockDomainMHz("memclk", opts.Accel.ClockMHz)
	s.comm = core.NewCommInterface(k.Name+".comm", s.q, s.memClk, 0xF0000000, len(k.F.Params), s.stats)

	switch opts.Mem {
	case MemSPM:
		s.spm = mem.NewScratchpad(k.Name+".spm", s.q, s.memClk, s.space,
			mem.AddrRange{Base: 0, Size: uint64(s.spaceSize)},
			opts.SPMLatency, opts.SPMBanks, opts.SPMPortsPer, s.stats)
		s.comm.AttachLocal(s.spm)
	case MemCache:
		s.dram = mem.NewDRAM(k.Name+".dram", s.q, s.memClk, s.space,
			mem.AddrRange{Base: 0, Size: uint64(s.spaceSize)}, s.stats)
		s.cache = mem.NewCache(k.Name+".l1", s.q, s.memClk, s.space,
			mem.AddrRange{Base: 0, Size: uint64(s.spaceSize)}, s.dram,
			opts.CacheBytes, opts.CacheLine, opts.CacheAssoc, 2, opts.CacheMSHRs, s.stats)
		s.comm.AttachGlobal(s.cache)
	default:
		return nil, fmt.Errorf("salam: unknown memory kind %d", opts.Mem)
	}

	s.acc = core.NewAccelerator(k.Name, s.q, mustCDFG(k, profile, opts.Accel.FULimits), opts.Accel, s.comm, s.stats)
	return s, nil
}

// mustCDFG re-fetches a configuration already validated by the caller.
func mustCDFG(k *kernels.Kernel, profile *hw.Profile, limits map[FUClass]int) *core.CDFG {
	g, err := core.SharedElab.Elaborate(k.F, profile, limits)
	if err != nil {
		panic(err)
	}
	return g
}

// Reusable reports whether the session can run the given request: the
// structural configuration matches and no earlier run was abandoned
// mid-simulation.
func (s *Session) Reusable(k *kernels.Kernel, opts RunOpts) bool {
	return !s.broken && structuralKey(k, opts) == s.key
}

// Runs returns how many runs the session has completed or attempted.
func (s *Session) Runs() uint64 { return s.runs }

// Run simulates one design point in the pooled system. The first run uses
// the freshly built components; later runs rewind them through the Reset
// paths first, so results are byte-identical to a cold RunKernel with the
// same options.
func (s *Session) Run(opts RunOpts) (*Result, error) {
	return s.run(opts, nil)
}

// RunCtx is Run with the cooperative cancellation of RunKernelCtx.
func (s *Session) RunCtx(ctx context.Context, opts RunOpts) (*Result, error) {
	return runWithCtx(ctx, s.k.Name, func(stop func() bool) (*Result, error) {
		return s.run(opts, stop)
	})
}

func (s *Session) run(opts RunOpts, stop func() bool) (*Result, error) {
	if opts.Sample.Enabled() {
		return s.runSampled(opts, stop)
	}
	if err := s.begin(opts); err != nil {
		return nil, err
	}
	s.acc.Start(s.inst.Args)
	return s.finish(opts, stop)
}

// begin is the warm prologue shared by Run, RunToCycle and Restore: it
// validates the request, rewinds all dynamic state, applies the design
// point, and sets up the workload — everything up to (but not including)
// starting the accelerator.
func (s *Session) begin(opts RunOpts) error {
	if s.broken {
		return fmt.Errorf("salam: session for %s poisoned by an abandoned run", s.k.Name)
	}
	if key := structuralKey(s.k, opts); key != s.key {
		return fmt.Errorf("salam: session for %s cannot run a structurally different configuration", s.k.Name)
	}
	g, err := core.SharedElab.Elaborate(s.k.F, s.profile, opts.Accel.FULimits)
	if err != nil {
		return err
	}

	// From here on the session's dynamic state is being rewritten; any
	// error or panic below — including one raised inside the warm rewind
	// or Reconfigure — leaves it mid-flight. The session stays unusable
	// until the flag is cleared on success; pools drop broken sessions
	// instead of recycling them.
	s.broken = true

	if s.runs > 0 {
		// Warm start: rewind all dynamic state to the cold zero state.
		s.q.Reset()
		s.stats.Reset()
		s.space.Reset()
		s.comm.Reset()
		if s.spm != nil {
			s.spm.Reset()
		}
		if s.cache != nil {
			s.cache.Reset()
		}
		if s.dram != nil {
			s.dram.Reset()
		}
	}
	s.runs++
	if s.testHookReconfigure != nil {
		s.testHookReconfigure()
	}

	// Apply the design point: swap in the (shared) CDFG and retune the
	// plain-knob fields the structural key does not pin.
	s.acc.Reconfigure(g, opts.Accel)
	if s.spm != nil {
		s.spm.LatencyCycles = opts.SPMLatency
		if p := opts.SPMPortsPer; p >= 1 {
			s.spm.PortsPerBank = p
		} else {
			s.spm.PortsPerBank = 1
		}
	}
	if s.cache != nil {
		if m := opts.CacheMSHRs; m >= 1 {
			s.cache.MSHRs = m
		} else {
			s.cache.MSHRs = 1
		}
	}
	if opts.ProfileCycles > 0 {
		s.acc.EnableProfile(opts.ProfileCycles)
	}
	// Attach (or detach, when nil) the timeline recorder per run:
	// Reconfigure rebuilds FU lanes, so attachment must follow it, and a
	// pooled session must not leak one job's recorder into the next.
	s.attachTimeline(opts.Timeline)

	s.inst = s.k.Setup(s.space, opts.Seed)
	s.fp = fingerprintFor(s.k, opts, s.spaceSize)
	s.runDone = false
	s.acc.OnDone = func() { s.runDone = true }
	return nil
}

// finish is the epilogue shared by Run and Resume: it runs the event loop
// to kernel completion, drains trailing events, verifies the output, and
// assembles the Result.
func (s *Session) finish(opts RunOpts, stop func() bool) (*Result, error) {
	res := &Result{Stats: s.stats, Instance: s.inst, Space: s.space, Acc: s.acc, SPM: s.spm, Cache: s.cache}

	s.q.RunWhile(func() bool { return !s.runDone && (stop == nil || !stop()) })
	if !s.runDone {
		if stop != nil && stop() {
			return nil, fmt.Errorf("salam: %s canceled", s.k.Name)
		}
		return nil, fmt.Errorf("salam: %s did not finish (deadlock?)", s.k.Name)
	}
	s.q.Run() // drain trailing events (writebacks etc.)

	if !opts.SkipCheck {
		if err := s.inst.Check(s.space); err != nil {
			return nil, fmt.Errorf("salam: %s output mismatch: %w", s.k.Name, err)
		}
	}
	s.broken = false
	res.Cycles = s.acc.LastKernelCycles()
	res.Ticks = s.q.Now()
	res.EventsFired = s.q.Fired()
	res.Power = s.acc.Power(res.SPM, res.Ticks)
	return res, nil
}

// runUntil advances a begun, started session until pred reports true or
// the kernel completes, stopping at an event boundary. It reports whether
// the kernel completed.
func (s *Session) runUntil(pred func() bool) bool {
	s.q.RunWhile(func() bool { return !s.runDone && !pred() })
	return s.runDone
}

// RunToCycle starts a run like Run but pauses it at the first event
// boundary at or after the given accelerator cycle, leaving the session
// mid-run for Checkpoint. It reports whether the kernel already finished
// before the target cycle. Either way the run is completed (and the
// session healed) by Resume.
func (s *Session) RunToCycle(opts RunOpts, cycle uint64) (finished bool, err error) {
	if err := s.begin(opts); err != nil {
		return false, err
	}
	s.acc.Start(s.inst.Args)
	return s.runUntil(func() bool { return s.acc.Cycles >= cycle }), nil
}

// Resume completes a run left mid-flight by RunToCycle or landed by
// Restore: it runs the kernel to completion and returns the Result, with
// the same output verification as Run. opts must be the options the run
// began with.
func (s *Session) Resume(opts RunOpts) (*Result, error) {
	if s.inst == nil || !s.broken {
		return nil, fmt.Errorf("salam: session for %s has no run in progress to resume", s.k.Name)
	}
	return s.finish(opts, nil)
}

// attachTimeline binds rec to every traced component of the session's
// system. A nil rec detaches all lanes, restoring the untraced (and
// allocation-free) hot paths.
func (s *Session) attachTimeline(rec timeline.Recorder) {
	s.q.AttachTimeline(rec)
	s.acc.AttachTimeline(rec)
	if s.spm != nil {
		s.spm.AttachTimeline(rec)
	}
	if s.cache != nil {
		s.cache.AttachTimeline(rec)
	}
	if s.dram != nil {
		s.dram.AttachTimeline(rec)
	}
}

// SessionPool keeps idle Sessions keyed by structural configuration so
// concurrent sweep workers can reuse pooled systems across design points.
// Acquire removes a session from the pool and release returns it, so a
// worker that panics or errors mid-run simply never returns the session —
// a dirty system can never be handed to another job.
type SessionPool struct {
	mu      sync.Mutex
	idle    map[sessionKey][]*Session
	reused  atomic.Uint64
	created atomic.Uint64
}

// NewSessionPool returns an empty pool.
func NewSessionPool() *SessionPool {
	return &SessionPool{idle: map[sessionKey][]*Session{}}
}

// Stats reports how many runs reused a pooled session and how many had to
// build one.
func (p *SessionPool) Stats() (reused, created uint64) {
	return p.reused.Load(), p.created.Load()
}

func (p *SessionPool) acquire(k *kernels.Kernel, opts RunOpts) (*Session, error) {
	key := structuralKey(k, opts)
	p.mu.Lock()
	if ss := p.idle[key]; len(ss) > 0 {
		s := ss[len(ss)-1]
		p.idle[key] = ss[:len(ss)-1]
		p.mu.Unlock()
		p.reused.Add(1)
		return s, nil
	}
	p.mu.Unlock()
	p.created.Add(1)
	return NewSession(k, opts)
}

func (p *SessionPool) release(s *Session) {
	// Belt and suspenders: callers already skip release on error, but a
	// session that reports itself broken (abandoned run, panic inside the
	// warm rewind or Reconfigure, sampled run left mid-flight) must never
	// rejoin the pool regardless of how it got here.
	if s.broken {
		return
	}
	p.mu.Lock()
	p.idle[s.key] = append(p.idle[s.key], s)
	p.mu.Unlock()
}

// RunCtx runs one design point on a pooled session, building one on first
// use of a structural configuration. The session returns to the pool only
// after a fully successful run; cancellation, simulation errors, and
// panics all drop it, so fault isolation is preserved.
//
// The returned Result aliases the live session (Acc, SPM, Stats, Space
// point into pooled state that the next run on the session will rewind);
// read what you need before triggering another run, or run cold when the
// Result must outlive the sweep.
func (p *SessionPool) RunCtx(ctx context.Context, k *kernels.Kernel, opts RunOpts) (*Result, error) {
	return p.RunCtxWith(ctx, k, opts, nil)
}

// RunCtxWith is RunCtx with a read hook that runs while the session is
// still held: the hook is the only safe place to read Result fields that
// alias pooled state (Stats, Cache counters, SPM contents), because once
// the session is back in the pool a concurrent job may acquire it and
// rewind exactly that state. The session is released after the hook
// returns; a hook panic leaves the session out of the pool, preserving
// fault isolation.
func (p *SessionPool) RunCtxWith(ctx context.Context, k *kernels.Kernel, opts RunOpts, then func(*Result)) (*Result, error) {
	s, err := p.acquire(k, opts)
	if err != nil {
		return nil, err
	}
	res, err := s.RunCtx(ctx, opts)
	if err == nil {
		if then != nil {
			then(res)
		}
		p.release(s)
	}
	return res, err
}
