package salam_test

// Soundness tests for internal/analysis: a static lower bound that ever
// exceeds a measured dynamic cycle count is a bug by definition, no matter
// how the engine or the analyzer evolves. The golden file pins the dynamic
// side; the config matrix stresses the port/FU-dependent components.

import (
	"encoding/json"
	"os"
	"testing"

	salam "gosalam"
	"gosalam/internal/analysis"
	"gosalam/kernels"
)

func analyzeKernel(t *testing.T, k *kernels.Kernel, cfg salam.AccelConfig) *analysis.Report {
	t.Helper()
	g, err := salam.Elaborate(k.F, nil, cfg.FULimits)
	if err != nil {
		t.Fatalf("%s: elaborate: %v", k.Name, err)
	}
	return analysis.For(g)
}

// TestStaticLowerBoundSoundness asserts LB <= golden dynamic cycles for
// every single-kernel entry in testdata/golden_cycles.json at the same
// default configuration the goldens were recorded with.
func TestStaticLowerBoundSoundness(t *testing.T) {
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	var golden map[string]goldenPoint
	if err := json.Unmarshal(raw, &golden); err != nil {
		t.Fatalf("decode golden: %v", err)
	}
	// ll/-prefixed entries are the clang-emitted fixture kernels; the
	// bound must hold for compiler-shaped IR exactly as for Go-built IR.
	llByName := map[string]*kernels.Kernel{}
	for _, k := range llKernels(t) {
		llByName[k.Name] = k
	}
	n := 0
	for name, pt := range golden {
		if name == "cnn-cluster" {
			continue // a 3-accelerator SoC scenario, not a single kernel
		}
		k := kernels.ByName(kernels.Small, name)
		if k == nil {
			k = llByName[name]
		}
		if k == nil {
			t.Fatalf("golden kernel %q not in kernels.Small or testdata/ll", name)
		}
		opts := salam.DefaultRunOpts()
		rep := analyzeKernel(t, k, opts.Accel)
		lb := rep.LowerBound(opts.Accel)
		if lb.Cycles > pt.Cycles {
			t.Errorf("%s: static lower bound %d (binding %s) exceeds golden dynamic cycles %d",
				name, lb.Cycles, lb.Binding, pt.Cycles)
		}
		if lb.Cycles == 0 {
			t.Errorf("%s: lower bound is zero — analysis derived nothing", name)
		}
		n++
	}
	if n == 0 {
		t.Fatal("no kernels checked")
	}
}

// TestStaticLowerBoundConfigMatrix runs real simulations across the
// port/FU design space and checks the bound tracks every point from
// below. This exercises the components the golden test cannot (the bound
// must shrink or hold as resources widen, never cross the dynamic count).
func TestStaticLowerBoundConfigMatrix(t *testing.T) {
	for _, k := range []*kernels.Kernel{
		kernels.GEMM(8, 1), kernels.GEMMTree(8), kernels.Stencil2D(12, 12), kernels.NW(16),
	} {
		for _, fu := range []int{0, 2, 8} {
			for _, port := range []int{1, 2, 8} {
				opts := salam.DefaultRunOpts()
				opts.Accel.ReadPorts, opts.Accel.WritePorts = port, port
				opts.Accel.MaxOutstanding = 2 * port
				opts.Accel.ResQueueSize = 512
				if fu > 0 {
					opts.Accel.FULimits = map[salam.FUClass]int{
						salam.FUFPAdder: fu, salam.FUFPMultiplier: fu,
					}
				}
				res, err := salam.RunKernel(k, opts)
				if err != nil {
					t.Fatalf("%s fu=%d p=%d: %v", k.Name, fu, port, err)
				}
				rep := analyzeKernel(t, k, opts.Accel)
				lb := rep.LowerBound(opts.Accel)
				if lb.Cycles > res.Cycles {
					t.Errorf("%s fu=%d p=%d: lower bound %d (binding %s) exceeds dynamic %d",
						k.Name, fu, port, lb.Cycles, lb.Binding, res.Cycles)
				}
			}
		}
	}
}

// TestAnalysisReportShape sanity-checks the structural outputs on GEMM,
// whose shape is known: a 3-deep counted loop nest, fully resolved affine
// accesses, no dead ops, and exact execution counts.
func TestAnalysisReportShape(t *testing.T) {
	opts := salam.DefaultRunOpts()
	k := kernels.GEMM(8, 1)
	rep := analyzeKernel(t, k, opts.Accel)
	if len(rep.Loops) != 3 {
		t.Fatalf("GEMM loops = %d, want 3", len(rep.Loops))
	}
	for _, l := range rep.Loops {
		if l.Trip != 8 {
			t.Errorf("loop %s trip = %d, want 8", l.Header, l.Trip)
		}
	}
	if len(rep.Unreachable) != 0 || len(rep.DeadOps) != 0 {
		t.Errorf("unexpected unreachable=%v dead=%v", rep.Unreachable, rep.DeadOps)
	}
	if rep.Mem.Resolved != rep.Mem.Accesses || rep.Mem.Accesses == 0 {
		t.Errorf("mem accesses %d resolved %d, want all resolved", rep.Mem.Accesses, rep.Mem.Resolved)
	}
	if !rep.Envelope.EnergyExact {
		t.Error("GEMM energy floor should be exact (all counted loops)")
	}
	if rep.Envelope.MinDynEnergyPJ <= 0 || rep.Envelope.AreaUM2 <= 0 {
		t.Errorf("degenerate envelope: %+v", rep.Envelope)
	}
	// The innermost loop header runs 8^2*(8+1) = 576 times and carries
	// stamped ops (induction phi, compare), so the per-op II bound must
	// reach at least the 512 body executions.
	if rep.Totals.MaxOpExecs != 576 {
		t.Errorf("MaxOpExecs = %d, want 576", rep.Totals.MaxOpExecs)
	}
	// Cache: a second For on the same interned CDFG must hit.
	h0, _ := analysis.CacheStats()
	analyzeKernel(t, k, opts.Accel)
	h1, _ := analysis.CacheStats()
	if h1 <= h0 {
		t.Error("second analysis of the interned CDFG did not hit the report cache")
	}
}
