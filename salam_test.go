package salam

import (
	"strings"
	"testing"

	"gosalam/internal/cpu"
	"gosalam/internal/sim"
	"gosalam/ir"
	"gosalam/kernels"
)

// Every MachSuite kernel must run to completion on the cycle-accurate
// engine and match its golden outputs — the end-to-end execute-in-execute
// guarantee.
func TestAllKernelsOnEngineSPM(t *testing.T) {
	for _, k := range kernels.All(kernels.Small) {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			res, err := RunKernel(k, DefaultRunOpts())
			if err != nil {
				t.Fatal(err)
			}
			if res.Cycles == 0 {
				t.Fatal("no cycles")
			}
			if res.Power.TotalMW() <= 0 {
				t.Fatal("no power")
			}
		})
	}
}

func TestKernelOnEngineCache(t *testing.T) {
	opts := DefaultRunOpts()
	opts.Mem = MemCache
	res, err := RunKernel(kernels.GEMM(8, 1), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cache == nil || res.Cache.Accesses.Value() == 0 {
		t.Fatal("cache unused")
	}
	if res.Cache.Misses.Value() == 0 {
		t.Fatal("no cold misses?")
	}
	// Cache-backed run is slower than SPM-backed.
	spmRes, err := RunKernel(kernels.GEMM(8, 1), DefaultRunOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !(res.Cycles > spmRes.Cycles) {
		t.Fatalf("cache (%d cy) not slower than SPM (%d cy)", res.Cycles, spmRes.Cycles)
	}
}

func TestFULimitsKnob(t *testing.T) {
	opts := DefaultRunOpts()
	base, err := RunKernel(kernels.GEMM(8, 4), opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Accel.FULimits = map[FUClass]int{FUFPMultiplier: 1, FUFPAdder: 1}
	lim, err := RunKernel(kernels.GEMM(8, 4), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !(lim.Power.AreaFU < base.Power.AreaFU) {
		t.Fatal("FU limits did not shrink area")
	}
}

func TestStatsDump(t *testing.T) {
	res, err := RunKernel(kernels.ReLU(64), DefaultRunOpts())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	res.Stats.Dump(&sb)
	out := sb.String()
	for _, want := range []string{"relu.cycles", "relu.spm.reads", "relu.comm.loads"} {
		if !strings.Contains(out, want) {
			t.Fatalf("stats dump missing %q", want)
		}
	}
}

func TestSoCHostDrivenAccelerator(t *testing.T) {
	// Full-system flow (Table III shape): host stages data into the
	// accelerator SPM by DMA, starts it over MMRs, waits for the IRQ, and
	// DMAs results back to DRAM.
	soc := NewSoC(16)
	k := kernels.ReLU(128)

	node, err := soc.AddAccel("relu", k.F, AccelOpts{SPMBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	dma, dmaIRQ := soc.AddBlockDMA("dma")
	_ = dma

	// Build the workload in DRAM first.
	inst := k.Setup(soc.Space, 3)
	dramIn, dramOut := inst.Args[0], inst.Args[1]
	n := uint64(128 * 8)

	// SPM-resident copies.
	spmIn := node.SPM.Range().Base
	spmOut := spmIn + n

	var tXferIn, tCompute, tXferOut sim.Tick
	prog := []cpu.Op{}
	prog = append(prog, cpu.StartDMA(dma.MMR.Range().Base, dramIn, spmIn, n, 64, true)...)
	prog = append(prog, cpu.WaitIRQ{Line: dmaIRQ}, Stamp(soc, &tXferIn))
	prog = append(prog, cpu.StartAccel(node.MMRBase, []uint64{spmIn, spmOut}, true)...)
	prog = append(prog, cpu.WaitIRQ{Line: node.IRQLine}, Stamp(soc, &tCompute))
	prog = append(prog, cpu.StartDMA(dma.MMR.Range().Base, spmOut, dramOut, n, 64, true)...)
	prog = append(prog, cpu.WaitIRQ{Line: dmaIRQ}, Stamp(soc, &tXferOut))

	if _, err := soc.RunHost(prog); err != nil {
		t.Fatal(err)
	}
	soc.Run()
	if err := inst.Check(soc.Space); err != nil {
		t.Fatalf("end-to-end output wrong: %v", err)
	}
	if !(tXferIn < tCompute && tCompute < tXferOut) {
		t.Fatalf("phase timestamps out of order: %d %d %d", tXferIn, tCompute, tXferOut)
	}
	if node.Acc.LastKernelCycles() == 0 {
		t.Fatal("accelerator did not run")
	}
}

func TestSoCStreamPipeline(t *testing.T) {
	// Two accelerators connected by a stream link (Fig. 16c mechanics):
	// the producer writes its output to the stream window; the consumer
	// reads its input from it. Stream ports deliver FIFO order, so both
	// sides must access sequentially — here relu feeding relu.
	soc := NewSoC(16)
	reluK := kernels.ReLU(64)
	relu2K := kernels.ReLU(64)

	prod, err := soc.AddAccel("relu", reluK.F, AccelOpts{SPMBytes: 16 << 10, Global: true})
	if err != nil {
		t.Fatal(err)
	}
	cons, err := soc.AddAccel("relu2", relu2K.F, AccelOpts{SPMBytes: 16 << 10, Global: true})
	if err != nil {
		t.Fatal(err)
	}
	outWin, inWin := soc.StreamLink("link", prod, cons, 256)

	// Input in producer SPM; final output in consumer SPM.
	soc.Space.SetAllocBase(prod.SPM.Range().Base)
	inA := soc.Space.AllocFor(ir.F64, 64)
	vals := make([]float64, 64)
	for i := range vals {
		vals[i] = float64(i%7) - 3
	}
	for i, v := range vals {
		soc.Space.WriteF64(inA+uint64(i*8), v)
	}
	outA := cons.SPM.Range().Base

	doneCount := 0
	prod.Acc.OnDone = func() { doneCount++ }
	cons.Acc.OnDone = func() { doneCount++ }
	// Start both; they self-synchronize through the FIFO handshake with
	// no host involvement.
	prod.Acc.Start([]uint64{inA, outWin})
	cons.Acc.Start([]uint64{inWin, outA})
	soc.Q.RunWhile(func() bool { return doneCount < 2 })
	soc.Run()
	if doneCount != 2 {
		t.Fatal("pipeline did not complete")
	}

	want := kernels.ReLUGolden(kernels.ReLUGolden(vals))
	for i, w := range want {
		if got := soc.Space.ReadF64(outA + uint64(i*8)); got != w {
			t.Fatalf("out[%d] = %g, want %g", i, got, w)
		}
	}
}

func TestSharedSPMBetweenAccelerators(t *testing.T) {
	// Fig. 16(b) mechanics: two accelerators share one scratchpad; the
	// producer's output buffer is the consumer's input buffer, no copies.
	soc := NewSoC(16)
	shared := soc.AddSPM("shared", 64<<10, 2, 4, 4)

	reluK := kernels.ReLU(64)
	poolK := kernels.MaxPool(8, 8)
	prod, err := soc.AddAccel("relu", reluK.F, AccelOpts{SharedSPM: shared})
	if err != nil {
		t.Fatal(err)
	}
	cons, err := soc.AddAccel("pool", poolK.F, AccelOpts{SharedSPM: shared})
	if err != nil {
		t.Fatal(err)
	}

	base := shared.Range().Base
	inA, midA, outA := base, base+512, base+1024
	vals := make([]float64, 64)
	for i := range vals {
		vals[i] = float64(i%5) - 2
		soc.Space.WriteF64(inA+uint64(i*8), vals[i])
	}

	// Host-sequenced: start relu, wait, start pool, wait (the central
	// synchronization Fig. 16b requires).
	prog := []cpu.Op{}
	prog = append(prog, cpu.StartAccel(prod.MMRBase, []uint64{inA, midA}, true)...)
	prog = append(prog, cpu.WaitIRQ{Line: prod.IRQLine})
	prog = append(prog, cpu.StartAccel(cons.MMRBase, []uint64{midA, outA}, true)...)
	prog = append(prog, cpu.WaitIRQ{Line: cons.IRQLine})
	if _, err := soc.RunHost(prog); err != nil {
		t.Fatal(err)
	}
	soc.Run()

	want := kernels.MaxPoolGolden(kernels.ReLUGolden(vals), 8, 8)
	for i, w := range want {
		if got := soc.Space.ReadF64(outA + uint64(i*8)); got != w {
			t.Fatalf("out[%d] = %g, want %g", i, got, w)
		}
	}
}

func TestSoCAddressAllocation(t *testing.T) {
	soc := NewSoC(16)
	r1 := soc.AllocSPMRange(1024)
	r2 := soc.AllocSPMRange(1024)
	if r1.Overlaps(r2) {
		t.Fatal("SPM ranges overlap")
	}
	m1 := soc.allocMMR(8)
	m2 := soc.allocMMR(8)
	if m1 == m2 {
		t.Fatal("MMR bases collide")
	}
	if soc.allocIRQ() == soc.allocIRQ() {
		t.Fatal("IRQ lines collide")
	}
}

// The worklist BFS has a data-dependent while loop and RAW dependences
// through its queue array — the hardest irregular-control case for the
// engine's dynamic disambiguation. It must still match its golden.
func TestBFSQueueOnEngine(t *testing.T) {
	res, err := RunKernel(kernels.BFSQueue(64, 4), DefaultRunOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 {
		t.Fatal("no cycles")
	}
}
