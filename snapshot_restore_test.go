package salam_test

// CI gate for checkpoint/restore: pausing a run mid-flight, capturing it,
// landing the image in a fresh session, and resuming must be byte-identical
// to having run straight through — same kernel cycles, same total ticks,
// same fired-event fingerprint, same statistics dump. This is enforced over
// the full golden kernel suite (like the traced-observer gate), over the
// cache/DRAM hierarchy, and for image byte-stability across a
// Checkpoint -> Restore -> Checkpoint round trip.

import (
	"bytes"
	"strings"
	"testing"

	salam "gosalam"
	"gosalam/internal/snapshot"
	"gosalam/kernels"
)

// statsDump renders the full statistics tree to bytes.
func statsDump(res *salam.Result) []byte {
	var buf bytes.Buffer
	res.Stats.Dump(&buf)
	return buf.Bytes()
}

// splitRun runs k to the given accelerator cycle, checkpoints, encodes and
// decodes the image (exercising the on-disk codec), restores it into a
// brand-new session, and resumes to completion.
func splitRun(t *testing.T, k *kernels.Kernel, opts salam.RunOpts, cycle uint64) (*salam.Result, *snapshot.Image) {
	t.Helper()
	s, err := salam.NewSession(k, opts)
	if err != nil {
		t.Fatalf("%s: %v", k.Name, err)
	}
	if _, err := s.RunToCycle(opts, cycle); err != nil {
		t.Fatalf("%s: run to cycle %d: %v", k.Name, cycle, err)
	}
	img, err := s.Checkpoint()
	if err != nil {
		t.Fatalf("%s: checkpoint at cycle %d: %v", k.Name, cycle, err)
	}
	enc, err := img.Encode()
	if err != nil {
		t.Fatalf("%s: encode: %v", k.Name, err)
	}
	dec, err := snapshot.Decode(enc)
	if err != nil {
		t.Fatalf("%s: decode: %v", k.Name, err)
	}

	fresh, err := salam.NewSession(k, opts)
	if err != nil {
		t.Fatalf("%s: fresh session: %v", k.Name, err)
	}
	if err := fresh.Restore(opts, dec); err != nil {
		t.Fatalf("%s: restore at cycle %d: %v", k.Name, cycle, err)
	}
	res, err := fresh.Resume(opts)
	if err != nil {
		t.Fatalf("%s: resume: %v", k.Name, err)
	}
	return res, dec
}

// TestRestoreThenRunGoldenSuite is the restore-exactness CI gate over the
// full golden kernel set: a checkpoint taken mid-run and restored into a
// fresh session must finish with a byte-identical schedule and statistics
// tree. The resumed run also re-verifies the kernel's output against its
// golden model, so restored functional state is checked end to end.
func TestRestoreThenRunGoldenSuite(t *testing.T) {
	for _, k := range kernels.All(kernels.Small) {
		opts := salam.DefaultRunOpts()
		straight, err := salam.RunKernel(k, opts)
		if err != nil {
			t.Fatalf("%s: straight run: %v", k.Name, err)
		}
		want := pointOf(straight)
		wantStats := statsDump(straight)

		res, _ := splitRun(t, k, opts, straight.Cycles/2)
		if got := pointOf(res); got != want {
			t.Errorf("%s: restored run %+v != straight run %+v", k.Name, got, want)
		}
		if got := statsDump(res); !bytes.Equal(got, wantStats) {
			t.Errorf("%s: restored stats differ from straight run:\n--- restored\n%s\n--- straight\n%s", k.Name, got, wantStats)
		}
	}
}

// TestRestoreCacheHierarchy exercises the cache/DRAM restore path — MSHRs,
// in-flight fills, writebacks, DRAM bank state — at several points of the
// run, where different request populations are in flight.
func TestRestoreCacheHierarchy(t *testing.T) {
	for _, k := range []*kernels.Kernel{kernels.GEMM(8, 1), kernels.Stencil2D(12, 12)} {
		opts := salam.DefaultRunOpts()
		opts.Mem = salam.MemCache
		straight, err := salam.RunKernel(k, opts)
		if err != nil {
			t.Fatalf("%s: straight run: %v", k.Name, err)
		}
		want := pointOf(straight)
		wantStats := statsDump(straight)
		for _, frac := range []uint64{4, 2} {
			cycle := straight.Cycles / frac
			res, _ := splitRun(t, k, opts, cycle)
			if got := pointOf(res); got != want {
				t.Errorf("%s@%d: restored run %+v != straight run %+v", k.Name, cycle, got, want)
			}
			if got := statsDump(res); !bytes.Equal(got, wantStats) {
				t.Errorf("%s@%d: restored stats differ from straight run", k.Name, cycle)
			}
		}
	}
}

// TestCheckpointImageByteStability: re-checkpointing a restored session
// without advancing it must reproduce the image byte for byte, across the
// golden kernel set. This pins the codec and every capture path to
// deterministic output.
func TestCheckpointImageByteStability(t *testing.T) {
	for _, k := range kernels.All(kernels.Small) {
		opts := salam.DefaultRunOpts()
		straight, err := salam.RunKernel(k, opts)
		if err != nil {
			t.Fatalf("%s: straight run: %v", k.Name, err)
		}

		s, err := salam.NewSession(k, opts)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.RunToCycle(opts, straight.Cycles/2); err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		img1, err := s.Checkpoint()
		if err != nil {
			t.Fatalf("%s: first checkpoint: %v", k.Name, err)
		}
		b1, err := img1.Encode()
		if err != nil {
			t.Fatal(err)
		}
		// Checkpoint is read-only: a second capture of the same state must
		// be identical.
		img1b, err := s.Checkpoint()
		if err != nil {
			t.Fatalf("%s: re-checkpoint: %v", k.Name, err)
		}
		b1b, err := img1b.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b1b) {
			t.Errorf("%s: two checkpoints of one paused session differ", k.Name)
		}

		fresh, err := salam.NewSession(k, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.Restore(opts, img1); err != nil {
			t.Fatalf("%s: restore: %v", k.Name, err)
		}
		img2, err := fresh.Checkpoint()
		if err != nil {
			t.Fatalf("%s: checkpoint of restored session: %v", k.Name, err)
		}
		b2, err := img2.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b2) {
			t.Errorf("%s: checkpoint -> restore -> checkpoint image drifted", k.Name)
		}
	}
}

// TestRestoreRejectsMismatch: an image must not land in a session whose
// configuration or kernel differs from the one it was captured under.
func TestRestoreRejectsMismatch(t *testing.T) {
	k := kernels.GEMM(8, 1)
	opts := salam.DefaultRunOpts()
	straight, err := salam.RunKernel(k, opts)
	if err != nil {
		t.Fatal(err)
	}
	_, img := splitRun(t, k, opts, straight.Cycles/2)

	other := opts
	other.Seed = opts.Seed + 1
	s, err := salam.NewSession(k, other)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Restore(other, img); err == nil {
		t.Fatal("restore accepted an image from a different seed")
	} else if !strings.Contains(err.Error(), "different") {
		t.Fatalf("unexpected error: %v", err)
	}

	s2, err := salam.NewSession(kernels.FFT(64), opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Restore(opts, img); err == nil {
		t.Fatal("restore accepted an image from a different kernel")
	}
}

// TestCheckpointRequiresRunInProgress: checkpointing an idle session is a
// clean error, not a garbage image.
func TestCheckpointRequiresRunInProgress(t *testing.T) {
	k := kernels.GEMM(8, 1)
	opts := salam.DefaultRunOpts()
	s, err := salam.NewSession(k, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Checkpoint(); err == nil {
		t.Fatal("checkpoint of an idle session succeeded")
	}
	if _, err := s.Run(opts); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Checkpoint(); err == nil {
		t.Fatal("checkpoint of a completed session succeeded")
	}
}

// TestSoCQuiescentCheckpoint: a quiescent SoC (driver program complete)
// checkpoints, restores into a freshly built identical topology, and
// re-checkpoints byte-identically; a busy SoC is refused.
func TestSoCQuiescentCheckpoint(t *testing.T) {
	build := func() (*salam.SoC, *salam.AccelNode, uint64, uint64) {
		soc := salam.NewSoC(16)
		spm := soc.AddSPM("spm", 32<<10, 2, 4, 4)
		k := kernels.ReLU(64)
		node, err := soc.AddAccel("relu", k.F, salam.AccelOpts{SharedSPM: spm})
		if err != nil {
			t.Fatal(err)
		}
		base := spm.Range().Base
		in, out := base, base+64*8
		for i := 0; i < 64; i++ {
			soc.Space.WriteF64(in+uint64(i*8), float64(i%7)-3)
		}
		return soc, node, in, out
	}

	socA, nodeA, inA, outA := build()
	prog := append(salam.StartAccel(nodeA.MMRBase, []uint64{inA, outA}, true),
		salam.WaitIRQ{Line: nodeA.IRQLine})
	if _, err := socA.RunHost(prog); err != nil {
		t.Fatal(err)
	}
	socA.Run()
	imgA, err := socA.Checkpoint()
	if err != nil {
		t.Fatalf("quiescent checkpoint: %v", err)
	}
	bA, err := imgA.Encode()
	if err != nil {
		t.Fatal(err)
	}

	socB, _, _, _ := build()
	if err := socB.Restore(imgA); err != nil {
		t.Fatalf("restore: %v", err)
	}
	imgB, err := socB.Checkpoint()
	if err != nil {
		t.Fatalf("re-checkpoint: %v", err)
	}
	bB, err := imgB.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bA, bB) {
		t.Fatal("SoC checkpoint -> restore -> checkpoint image drifted")
	}
	// Restored physical memory carries the computed results.
	for i := 0; i < 64; i++ {
		want := socA.Space.ReadF64(outA + uint64(i*8))
		if got := socB.Space.ReadF64(outA + uint64(i*8)); got != want {
			t.Fatalf("restored out[%d] = %g, want %g", i, got, want)
		}
	}
}

// TestSessionPoolDropsPanicPoisonedSession is the satellite regression for
// dirty-session poisoning: a panic raised while begin is rewriting session
// state (between the warm rewind and Reconfigure) must leave the session
// marked broken, and the pool's release path must refuse to recycle it.
func TestSessionPoolDropsPanicPoisonedSession(t *testing.T) {
	k := kernels.GEMMTree(8)
	opts := salam.DefaultRunOpts()
	pool := salam.NewSessionPool()

	s, err := pool.AcquireForTest(k, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(opts); err != nil {
		t.Fatal(err)
	}

	s.SetTestHookReconfigure(func() { panic("injected reconfigure fault") })
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("injected panic did not propagate")
			}
		}()
		_, _ = s.Run(opts)
	}()
	if !s.IsBroken() {
		t.Fatal("session not marked broken after a panic during reconfigure")
	}
	pool.ReleaseForTest(s)
	if n := pool.IdleForTest(); n != 0 {
		t.Fatalf("pool recycled a poisoned session (%d idle)", n)
	}

	// The pool must hand out a fresh, working session afterwards.
	s2, err := pool.AcquireForTest(k, opts)
	if err != nil {
		t.Fatal(err)
	}
	if s2 == s {
		t.Fatal("pool handed the poisoned session back out")
	}
	if _, err := s2.Run(opts); err != nil {
		t.Fatalf("replacement session: %v", err)
	}
}
