package salam_test

// Tests for the timeline tracing subsystem's public surfaces: trace_event
// JSON structure of a real kernel trace, the stall-attribution invariant
// (breakdown classes sum to the kernel's cycle count), and full-SoC
// warm-start reuse through SoC.Reset on a streaming (Fig. 16c-style)
// topology.

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	salam "gosalam"
	"gosalam/internal/sim"
	"gosalam/internal/timeline"
	"gosalam/ir"
	"gosalam/kernels"
)

// traceFile mirrors the Chrome trace_event "JSON Object Format".
type traceFile struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []traceEvent `json:"traceEvents"`
}

type traceEvent struct {
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Name string         `json:"name"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// TestTimelineTrace generates a gemm trace and decodes it back: the bytes
// must be valid trace_event JSON with the expected process/thread
// structure, the breakdown classes must sum exactly to the kernel's cycle
// count, and the traced run must report the same result as an untraced one.
func TestTimelineTrace(t *testing.T) {
	k := kernels.ByName(kernels.Small, "gemm")
	if k == nil {
		t.Fatal("gemm kernel missing")
	}
	plain, err := salam.RunKernel(k, salam.DefaultRunOpts())
	if err != nil {
		t.Fatal(err)
	}

	rec := timeline.NewJSON()
	bd := timeline.NewBreakdown()
	opts := salam.DefaultRunOpts()
	opts.Timeline = timeline.NewTee(rec, bd)
	res, err := salam.RunKernel(k, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != plain.Cycles || res.Ticks != plain.Ticks || res.EventsFired != plain.EventsFired {
		t.Fatalf("traced run diverged: cycles %d/%d ticks %d/%d events %d/%d",
			res.Cycles, plain.Cycles, res.Ticks, plain.Ticks, res.EventsFired, plain.EventsFired)
	}

	// Stall attribution: exactly one cycle class per engine cycle, so the
	// histogram over the engine lane sums to the kernel cycle count.
	counts, ok := bd.Counts(k.Name, "engine")
	if !ok {
		t.Fatalf("breakdown has no %s/engine lane", k.Name)
	}
	var sum uint64
	for _, c := range counts {
		sum += c
	}
	if sum != res.Cycles {
		t.Fatalf("breakdown classes sum to %d, kernel ran %d cycles", sum, res.Cycles)
	}
	if counts[timeline.ClassIssue] == 0 {
		t.Fatal("gemm recorded zero issue cycles")
	}

	var buf bytes.Buffer
	if err := rec.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var tf traceFile
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}

	// Lane structure: process metadata for the accelerator and the sim
	// group, a thread named "engine", and real slices on it.
	procs := map[int]string{}
	threads := map[[2]int]string{}
	slices, instants, counters := 0, 0, 0
	var engineCycles uint64
	for _, ev := range tf.TraceEvents {
		switch ev.Ph {
		case "M":
			switch ev.Name {
			case "process_name":
				procs[ev.Pid], _ = ev.Args["name"].(string)
			case "thread_name":
				threads[[2]int{ev.Pid, ev.Tid}], _ = ev.Args["name"].(string)
			case "process_sort_index", "thread_sort_index":
			default:
				t.Fatalf("unexpected metadata record %q", ev.Name)
			}
		case "X":
			slices++
			if ev.Dur <= 0 {
				t.Fatalf("slice %q has non-positive duration %g", ev.Name, ev.Dur)
			}
			if threads[[2]int{ev.Pid, ev.Tid}] == "engine" && procs[ev.Pid] == k.Name {
				// Engine slices are cycle classes; dur is µs of engine time.
				if _, known := map[string]bool{"issue": true, "stall.mem": true,
					"stall.fu": true, "stall.fetch": true, "stall.operand": true}[ev.Name]; !known {
					t.Fatalf("unknown engine cycle class %q", ev.Name)
				}
				engineCycles += uint64(ev.Dur*1e6 + 0.5) // µs back to ps
			}
		case "i":
			instants++
			if ev.S != "t" {
				t.Fatalf("instant %q missing thread scope", ev.Name)
			}
		case "C":
			counters++
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	groups := map[string]bool{}
	for _, name := range procs {
		groups[name] = true
	}
	if !groups[k.Name] || !groups["sim"] {
		t.Fatalf("missing process groups in %v", procs)
	}
	if slices == 0 || counters == 0 {
		t.Fatalf("trace has %d slices, %d counters; want both nonzero", slices, counters)
	}
	// The merged engine slices must tile the kernel's cycles exactly:
	// total engine-lane duration == cycles * clock period.
	wantPS := res.Cycles * uint64(sim.Tick(10000)) // 100 MHz default accel clock
	if engineCycles != wantPS {
		t.Fatalf("engine lane covers %d ps, want %d (cycles*period)", engineCycles, wantPS)
	}
}

// streamSoC builds the Fig. 16c-style streaming pipeline — conv → relu →
// max-pool connected by stream FIFOs, DMA-staged input, self-synchronizing
// stages — and returns the SoC plus a run function that stages inputs,
// drives the host program, and fingerprints the completed run.
func streamSoC(t *testing.T) (*salam.SoC, func() [3]uint64) {
	t.Helper()
	const h, w = 10, 10
	const ch, cw = h - 2, w - 2
	img := make([]float64, h*w)
	for i := range img {
		img[i] = float64((i*37)%17)/8.0 - 1
	}
	weights := []float64{1, 0, -1, 2, 0, -2, 1, 0, -1}
	want := kernels.MaxPoolGolden(kernels.ReLUGolden(kernels.ConvGolden(img, weights, h, w)), ch, cw)

	soc := salam.NewSoC(16)
	cfg := salam.AccelConfig{ClockMHz: 100, ReadPorts: 8, WritePorts: 4,
		MaxOutstanding: 32, ResQueueSize: 256, PipelineLoops: true}
	aopts := func(spm uint64) salam.AccelOpts {
		return salam.AccelOpts{Cfg: cfg, SPMBytes: spm, SPMPorts: 8, SPMBanks: 8}
	}
	conv, err := soc.AddAccel("conv", kernels.Conv2D(h, w).F, aopts(4096))
	if err != nil {
		t.Fatal(err)
	}
	relu, err := soc.AddAccel("relu", kernels.ReLU(ch*cw).F, aopts(4096))
	if err != nil {
		t.Fatal(err)
	}
	pool, err := soc.AddAccel("pool", kernels.MaxPoolStream(ch, cw).F, aopts(4096))
	if err != nil {
		t.Fatal(err)
	}
	dma, dmaIRQ := soc.AddBlockDMA("dma")
	convOutWin, reluInWin := soc.StreamLink("s1", conv, relu, 512)
	reluOutWin, poolInWin := soc.StreamLink("s2", relu, pool, 512)

	run := func() [3]uint64 {
		imgBytes := uint64(h * w * 8)
		poolBytes := uint64((ch / 2) * (cw / 2) * 8)
		// FlatMem.Reset rewinds the allocation cursor, so warm re-staging
		// lands on the same addresses as the cold run.
		soc.Space.SetAllocBase(1 << 20)
		imgA := soc.Space.AllocFor(ir.F64, h*w)
		wA := soc.Space.AllocFor(ir.F64, 9)
		for i, v := range img {
			soc.Space.WriteF64(imgA+uint64(i*8), v)
		}
		for i, v := range weights {
			soc.Space.WriteF64(wA+uint64(i*8), v)
		}
		cb := conv.SPM.Range().Base
		cImg, cW := cb, cb+imgBytes
		pb := pool.SPM.Range().Base
		pLines, pOut := pb, pb+uint64(2*cw*8)+64
		dramOut := uint64(8 << 20)

		dmaBase := dma.MMR.Range().Base
		var tEnd sim.Tick
		var prog []salam.DriverOp
		prog = append(prog, salam.StartDMA(dmaBase, imgA, cImg, imgBytes, 256, true)...)
		prog = append(prog, salam.WaitIRQ{Line: dmaIRQ})
		prog = append(prog, salam.StartDMA(dmaBase, wA, cW, 72, 256, true)...)
		prog = append(prog, salam.WaitIRQ{Line: dmaIRQ})
		prog = append(prog, salam.StartAccel(pool.MMRBase, []uint64{poolInWin, pLines, pOut}, true)...)
		prog = append(prog, salam.StartAccel(relu.MMRBase, []uint64{reluInWin, reluOutWin}, false)...)
		prog = append(prog, salam.StartAccel(conv.MMRBase, []uint64{cImg, cW, convOutWin}, false)...)
		prog = append(prog, salam.WaitIRQ{Line: pool.IRQLine})
		prog = append(prog, salam.StartDMA(dmaBase, pOut, dramOut, poolBytes, 256, true)...)
		prog = append(prog, salam.WaitIRQ{Line: dmaIRQ})
		prog = append(prog, salam.Stamp(soc, &tEnd))

		if _, err := soc.RunHost(prog); err != nil {
			t.Fatal(err)
		}
		soc.Run()
		for i, wv := range want {
			got := soc.Space.ReadF64(dramOut + uint64(i*8))
			if d := got - wv; d > 1e-9 || d < -1e-9 {
				t.Fatalf("pool[%d] = %g, want %g", i, got, wv)
			}
		}
		return [3]uint64{uint64(tEnd), uint64(soc.Q.Now()), soc.Q.Fired()}
	}
	return soc, run
}

// TestSoCWarmStartStreaming is the satellite-2 regression: a full
// streaming SoC — stream buffers, stream windows, block DMA, crossbar,
// GIC, host — must replay a driver program after SoC.Reset with a
// byte-identical schedule and statistics to a freshly built system. Any
// component whose Reset contract is incomplete (stale FIFO bytes, a
// latched DMA busy bit, queued crossbar requests, pending GIC lines)
// shifts the fingerprint.
func TestSoCWarmStartStreaming(t *testing.T) {
	dump := func(s *salam.SoC) string {
		var sb strings.Builder
		s.Stats.Dump(&sb)
		return sb.String()
	}

	coldSoC, coldRun := streamSoC(t)
	cold := coldRun()
	coldStats := dump(coldSoC)

	warmSoC, warmRun := streamSoC(t)
	first := warmRun()
	if first != cold {
		t.Fatalf("two fresh SoCs diverged: %v vs %v", first, cold)
	}
	for i := 0; i < 2; i++ {
		warmSoC.Reset()
		got := warmRun()
		if got != cold {
			t.Fatalf("warm run %d fingerprint = %v, cold = %v", i+1, got, cold)
		}
		if s := dump(warmSoC); s != coldStats {
			t.Fatalf("warm run %d stats dump diverged from cold run:\nwarm:\n%s\ncold:\n%s", i+1, s, coldStats)
		}
	}
}

// TestSoCWarmStartTraced: SoC.Reset with a timeline attached — the traced
// warm replay must still match the untraced cold fingerprint, and lanes
// registered at construction must survive the reset.
func TestSoCWarmStartTraced(t *testing.T) {
	coldSoC, coldRun := streamSoC(t)
	cold := coldRun()
	_ = coldSoC

	soc, run := streamSoC(t)
	rec := timeline.NewBreakdown()
	soc.SetTimeline(rec)
	if got := run(); got != cold {
		t.Fatalf("traced fresh run fingerprint = %v, cold = %v", got, cold)
	}
	soc.Reset()
	if got := run(); got != cold {
		t.Fatalf("traced warm run fingerprint = %v, cold = %v", got, cold)
	}
	if rec.Total("dma", "transfer") == 0 {
		// The breakdown only counts Cycle() records; DMA lanes carry
		// slices, so check an engine lane instead for liveness.
		if rec.Total("conv", "engine") == 0 {
			t.Fatal("timeline recorded nothing across warm restart")
		}
	}
}
