package salam

import (
	"fmt"

	"gosalam/internal/mem"
	"gosalam/internal/sim"
	"gosalam/ir"
)

// Cluster is the paper's hierarchical accelerator-cluster construct
// (Sec. III-D2, Fig. 6): a pool of accelerators coupled with a shared DMA
// and scratchpad behind a local crossbar, with a global-crossbar path to
// off-cluster resources (DRAM, other clusters). Accelerators inside a
// cluster reach each other's MMRs and the shared scratchpad over the local
// crossbar, which lets them coordinate without host involvement.
type Cluster struct {
	Name string
	soc  *SoC

	// Local is the intra-cluster crossbar; its default route leads to the
	// global crossbar.
	Local *mem.Crossbar
	// SharedSPM is the cluster scratchpad (nil if not requested).
	SharedSPM *mem.Scratchpad
	// DMA is the cluster's shared DMA engine.
	DMA *mem.BlockDMA
	// DMAIRQ is the DMA's interrupt line.
	DMAIRQ int
	// Accels lists the cluster's accelerators in creation order.
	Accels []*AccelNode
}

// ClusterOpts configures NewCluster.
type ClusterOpts struct {
	// SharedSPMBytes allocates a cluster scratchpad (0 = none).
	SharedSPMBytes uint64
	// SPMLatency/Banks/Ports configure it (defaults 2/4/4).
	SPMLatency, SPMBanks, SPMPorts int
	// XbarWidth is the local crossbar's requests-per-cycle (default 8).
	XbarWidth int
}

// NewCluster creates a cluster. Its devices are reachable both locally
// (accelerator-to-accelerator, one hop) and from the host over the global
// crossbar.
func (s *SoC) NewCluster(name string, o ClusterOpts) *Cluster {
	width := o.XbarWidth
	if width <= 0 {
		width = 8
	}
	c := &Cluster{Name: name, soc: s}
	c.Local = mem.NewCrossbar(name+".xbar", s.Q, s.SysClk, 1, width, s.Stats)
	c.Local.SetDefault(s.Xbar)

	if o.SharedSPMBytes > 0 {
		lat, banks, ports := o.SPMLatency, o.SPMBanks, o.SPMPorts
		if lat <= 0 {
			lat = 2
		}
		if banks <= 0 {
			banks = 4
		}
		if ports <= 0 {
			ports = 4
		}
		// The SPM registers with the global crossbar via AddSPM; register
		// it with the local one too so intra-cluster traffic stays local.
		c.SharedSPM = s.AddSPM(name+".spm", o.SharedSPMBytes, lat, banks, ports)
		c.Local.Attach(c.SharedSPM)
	}

	dmaClk := sim.NewClockDomainMHz(name+".dma.clk", 200)
	c.DMA = mem.NewBlockDMA(name+".dma", s.Q, dmaClk, s.allocMMR(mem.DMANumRegs), c.Local, s.Stats)
	c.DMA.BytesPerCycle = 4
	c.Local.Attach(c.DMA.MMR)
	s.Xbar.Attach(c.DMA.MMR)
	c.DMAIRQ = s.allocIRQ()
	c.DMA.IRQ = s.GIC.Line(c.DMAIRQ)
	return c
}

// AddAccel instantiates an accelerator inside the cluster. Its global port
// leads to the local crossbar, so shared-SPM traffic and peer MMR accesses
// stay on-cluster while anything else flows to the global crossbar.
func (c *Cluster) AddAccel(name string, node AccelBuild) (*AccelNode, error) {
	n, err := c.soc.AddAccel(c.Name+"."+name, node.F, node.Opts)
	if err != nil {
		return nil, err
	}
	// Rewire: the accelerator's off-SPM traffic goes through the local
	// crossbar; peers can reach its MMR locally too.
	n.Comm.AttachGlobal(c.Local)
	c.Local.Attach(n.Comm.MMR)
	if n.SPM != nil && n.SPM != c.SharedSPM {
		c.Local.Attach(n.SPM)
	}
	c.Accels = append(c.Accels, n)
	return n, nil
}

// AccelBuild bundles AddAccel arguments for Cluster.AddAccel.
type AccelBuild struct {
	F    *ir.Function
	Opts AccelOpts
}

// EnableLLC inserts a shared last-level cache between the global crossbar
// and DRAM — the paper's coherence point between accelerator clusters and
// other processing elements (Sec. III-D2).
func (s *SoC) EnableLLC(sizeBytes, lineBytes, assoc int) *mem.Cache {
	llc := mem.NewCache("llc", s.Q, s.SysClk, s.Space, s.DRAM.Range(), s.DRAM,
		sizeBytes, lineBytes, assoc, 4, 16, s.Stats)
	s.Xbar.SetDefault(llc)
	return llc
}

func (s *SoC) String() string {
	return fmt.Sprintf("SoC{dram=%s, irqs=%d}", s.DRAM.Range(), s.nextIRQ)
}
