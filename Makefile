# gosalam build/test entry points.
#
# `make check` is the tier-1 gate: full build + tests, vet, the race
# detector over the repo's concurrency layer (the campaign engine and the
# experiment sweeps that ride on it), plus the golden determinism guard
# and a 1-iteration benchmark smoke so perf regressions that break the
# harness are caught before a full `make bench` run.

GO ?= go

.PHONY: all build test race vet vet-sim analyze-smoke fuzz-smoke golden trace-smoke serve-smoke search-smoke snapshot-smoke sample-smoke config-smoke ll-smoke bench-smoke bench-diff check bench bench-all bench-campaign

all: check

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Determinism linter: rejects map iteration, wall-clock reads, math/rand,
# and stray goroutines in the simulation packages (see cmd/salam-vet).
vet-sim:
	$(GO) run ./cmd/salam-vet ./...

# Static analyzer smoke: every kernel must analyze without error and
# produce a nonzero lower bound (the CSV goes to /dev/null; failure exits
# nonzero).
analyze-smoke:
	$(GO) run ./cmd/salam-analyze -all > /dev/null

# Native-fuzz smoke over the untrusted-input surfaces: malformed CDFG
# sources through parse -> elaborate -> analyze -> cycle/energy bounds,
# arbitrary bytes through the .ll parser (parse -> verify -> print), and
# arbitrary bytes through the strict config decoder (parse -> validate ->
# emit). The contract everywhere is "reject or accept, never panic".
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzAnalyzeReport -fuzztime 5s ./internal/analysis
	$(GO) test -run '^$$' -fuzz FuzzParseLL -fuzztime 5s ./ir
	$(GO) test -run '^$$' -fuzz FuzzSoCConfig -fuzztime 5s ./internal/soccfg

# The concurrent subsystems — the campaign engine, the experiments that
# drive real parallel simulations through it, and the salam-serve service
# layer on top — must stay race-clean by construction.
race:
	$(GO) test -race ./internal/campaign/... ./internal/experiments/... ./internal/search/... ./internal/serve/... ./internal/sample/...
	$(GO) test -race -run 'TestSampled|TestRestore|TestCheckpoint|TestSessionPool' -count=1 .

# Golden determinism guard: simulated cycle counts for the committed
# kernel set must stay byte-identical to testdata/golden_cycles.json.
# Perf work on the engine hot paths is only legal when this passes.
golden:
	$(GO) test -run TestGoldenDeterminism -count=1 .

# Timeline smoke: the CLI path writes a gemm Perfetto trace end to end, and
# the decoding test re-validates the trace_event JSON structure plus the
# observer-effect guarantee (traced golden bytes == committed golden bytes).
trace-smoke:
	$(GO) run ./cmd/salam-sim -config configs/gemm_spm.json \
		-timeline /tmp/gosalam-trace-smoke.json -timeline-breakdown > /dev/null
	$(GO) test -run 'TestTimelineTrace|TestGoldenTracedObserverEffect' -count=1 .

# salam-serve smoke: two in-process shards over real HTTP split the
# gemm_dse space against one shared store — zero duplicated simulation
# (checked via /statsz) and a merged result byte-identical to a local
# campaign.Run.
serve-smoke:
	$(GO) test -run TestServeSmoke -count=1 ./internal/serve

# Branch-and-bound search smoke: the searched Pareto frontier of a small
# multi-axis space must equal the brute-force sweep's Pareto filter byte
# for byte — the exactness oracle behind salam-dse -search.
search-smoke:
	$(GO) test -run TestSearchExactFrontier -count=1 ./internal/search

# Snapshot smoke: restore-then-run must be byte-identical to straight-run
# over the full golden kernel set (the restore-exactness CI gate), and
# checkpoint images must survive a Checkpoint -> Restore -> Checkpoint
# round trip byte for byte.
snapshot-smoke:
	$(GO) test -run 'TestRestoreThenRunGoldenSuite|TestCheckpointImageByteStability' -count=1 .

# Sampled-simulation smoke: the interval-sampled estimate must honor its
# own reported error bound against the exact run, and a sampled session
# must never rejoin a pool.
sample-smoke:
	$(GO) test -run 'TestSampled' -count=1 .
	$(GO) test -count=1 ./internal/sample

# Declarative-config smoke: every shipped config validates, summarizes,
# and emits through the salam-config CLI; a known-bad fixture with a
# typo'd knob must be rejected with a "did you mean" diagnostic; and the
# byte-identity suite proves config-built systems match Go-built ones.
config-smoke:
	$(GO) run ./cmd/salam-config validate configs/*.json > /dev/null
	$(GO) run ./cmd/salam-config info configs/cnn_cluster.json > /dev/null
	$(GO) run ./cmd/salam-config list-fus > /dev/null
	$(GO) run ./cmd/salam-config emit configs/gemm_spm.json > /dev/null
	@if $(GO) run ./cmd/salam-config validate testdata/config/bad_spm_bank.json 2>/dev/null; then \
		echo "config-smoke: bad fixture was accepted"; exit 1; fi
	$(GO) test -run 'TestConfig|TestShippedConfigs' -count=1 .

# Clang-ingestion smoke: the compiler-shaped .ll fixtures parse, verify,
# bind to their workloads, and simulate to their golden cycle counts; the
# bring-your-own-kernel config path runs one end to end through salam-sim.
ll-smoke:
	$(GO) run ./cmd/salam-sim -config configs/gemm_ll.json > /dev/null
	$(GO) test -run 'TestLLFixtures' -count=1 .
	$(GO) test -run 'TestParse' -count=1 ./ir

# One engine iteration end to end, so `check` notices a broken benchmark
# harness without paying for a full timed run.
bench-smoke:
	$(GO) test -bench=BenchmarkEngineGEMM -benchtime=1x -run '^$$' .

# Compare the last two recorded points in BENCH_engine.json: fails when an
# Engine* benchmark regressed more than 10% in ns/op (other benchmarks are
# advisory). Record a fresh point first with `make bench LABEL=...`.
bench-diff:
	$(GO) run ./cmd/salam-bench -diff

# bench-diff is advisory in check (leading `-`): the committed points span
# different machines, so a cross-host delta must not fail the tier-1 gate.
check: build vet vet-sim test race golden trace-smoke serve-smoke search-smoke snapshot-smoke sample-smoke config-smoke ll-smoke bench-smoke analyze-smoke fuzz-smoke
	-$(MAKE) bench-diff

# Timed engine benchmarks (EngineGEMM/EngineBFS/DSECampaign/CampaignWarm),
# recorded as a labeled point in BENCH_engine.json so the repo keeps a
# perf trajectory.
# Override the label with `make bench LABEL=my-change`.
LABEL ?= dev
bench:
	$(GO) run ./cmd/salam-bench -label $(LABEL)

# Every benchmark in the suite, one iteration each.
bench-all:
	$(GO) test -bench=. -benchtime=1x .

# 1-worker vs all-cores sweep wall-time (the campaign speedup).
bench-campaign:
	$(GO) test -bench=BenchmarkDSECampaign -benchtime=3x .
