# gosalam build/test entry points.
#
# `make check` is the tier-1 gate: full build + tests, vet, and the race
# detector over the repo's concurrency layer (the campaign engine and the
# experiment sweeps that ride on it).

GO ?= go

.PHONY: all build test race vet check bench bench-campaign

all: check

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The campaign engine is the only concurrent subsystem; its tests (and the
# experiments that drive real parallel simulations through it) must stay
# race-clean by construction.
race:
	$(GO) test -race ./internal/campaign/... ./internal/experiments/...

check: build vet test race

bench:
	$(GO) test -bench=. -benchtime=1x .

# 1-worker vs all-cores sweep wall-time (the campaign speedup).
bench-campaign:
	$(GO) test -bench=BenchmarkDSECampaign -benchtime=3x .
