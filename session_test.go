package salam_test

// Warm-start reuse tests: a Session that re-runs design points in a pooled
// system must produce results byte-identical to cold RunKernel calls, and
// the shared elaboration cache must hand every identical configuration the
// same immutable CDFG.

import (
	"context"
	"testing"

	salam "gosalam"
	"gosalam/kernels"
)

// sessionSweepOpts returns three design points that share one structural
// configuration (same kernel/seed/mem/banks/clock) but differ in every
// tunable knob a sweep would move: FU limits, ports, queue sizes, SPM
// latency/ports.
func sessionSweepOpts() []salam.RunOpts {
	a := salam.DefaultRunOpts()
	a.Accel.FULimits = map[salam.FUClass]int{salam.FUFPAdder: 2, salam.FUFPMultiplier: 2}

	b := salam.DefaultRunOpts()
	b.Accel.ReadPorts, b.Accel.WritePorts = 8, 8
	b.Accel.MaxOutstanding = 32
	b.Accel.ResQueueSize = 512
	b.SPMPortsPer = 8
	b.SPMLatency = 1

	c := salam.DefaultRunOpts()
	c.Accel.FULimits = map[salam.FUClass]int{salam.FUFPAdder: 8, salam.FUFPMultiplier: 8}
	c.Accel.ConservativeMemOrder = true
	return []salam.RunOpts{a, b, c}
}

type runPoint struct {
	cycles uint64
	ticks  uint64
	events uint64
}

func pointOf(res *salam.Result) runPoint {
	return runPoint{cycles: res.Cycles, ticks: uint64(res.Ticks), events: res.EventsFired}
}

// TestSessionWarmMatchesCold runs a sweep through one warm Session and
// checks every point — including re-running the first configuration after
// the system has been reused — against a cold RunKernel of the same
// options. Cycle counts, total ticks, and the event-count fingerprint must
// all be byte-identical, which is the reset contract the golden suite
// enforces for the cold path.
func TestSessionWarmMatchesCold(t *testing.T) {
	k := kernels.GEMMTree(8)
	sweep := sessionSweepOpts()
	sweep = append(sweep, sweep[0]) // revisit the first point warm

	s, err := salam.NewSession(k, sweep[0])
	if err != nil {
		t.Fatal(err)
	}
	for i, opts := range sweep {
		warm, err := s.Run(opts)
		if err != nil {
			t.Fatalf("warm run %d: %v", i, err)
		}
		cold, err := salam.RunKernel(k, opts)
		if err != nil {
			t.Fatalf("cold run %d: %v", i, err)
		}
		if got, want := pointOf(warm), pointOf(cold); got != want {
			t.Fatalf("run %d: warm %+v != cold %+v", i, got, want)
		}
	}
	if s.Runs() != uint64(len(sweep)) {
		t.Fatalf("session ran %d times, want %d", s.Runs(), len(sweep))
	}
}

// TestSessionWarmMatchesColdCache exercises the cache/DRAM reset path: a
// warm re-run must observe the cold-miss behaviour of a fresh cache.
func TestSessionWarmMatchesColdCache(t *testing.T) {
	k := kernels.GEMM(8, 1)
	opts := salam.DefaultRunOpts()
	opts.Mem = salam.MemCache

	s, err := salam.NewSession(k, opts)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := salam.RunKernel(k, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		warm, err := s.Run(opts)
		if err != nil {
			t.Fatalf("warm run %d: %v", i, err)
		}
		if got, want := pointOf(warm), pointOf(cold); got != want {
			t.Fatalf("warm run %d: %+v != cold %+v", i, got, want)
		}
	}
}

// TestSessionRejectsStructuralMismatch: a session must refuse design
// points that change baked-in geometry instead of producing wrong numbers.
func TestSessionRejectsStructuralMismatch(t *testing.T) {
	k := kernels.GEMM(8, 1)
	opts := salam.DefaultRunOpts()
	s, err := salam.NewSession(k, opts)
	if err != nil {
		t.Fatal(err)
	}
	other := opts
	other.SPMBanks = opts.SPMBanks * 2
	if s.Reusable(k, other) {
		t.Fatal("session claims to be reusable across a bank-count change")
	}
	if _, err := s.Run(other); err == nil {
		t.Fatal("session ran a structurally different configuration")
	}
	if !s.Reusable(k, opts) {
		t.Fatal("structural rejection must not poison the session")
	}
	if _, err := s.Run(opts); err != nil {
		t.Fatalf("matching run after rejection: %v", err)
	}
}

// TestSessionPoolReuse: the pool reuses one system for a sequential sweep
// and never hands out a session dropped by a failed run.
func TestSessionPoolReuse(t *testing.T) {
	k := kernels.GEMMTree(8)
	pool := salam.NewSessionPool()
	for _, opts := range sessionSweepOpts() {
		if _, err := pool.RunCtx(context.Background(), k, opts); err != nil {
			t.Fatal(err)
		}
	}
	reused, created := pool.Stats()
	if created != 1 || reused != 2 {
		t.Fatalf("pool stats reused=%d created=%d, want 2/1", reused, created)
	}

	// A canceled run must drop its session rather than recycle it dirty.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := pool.RunCtx(ctx, k, salam.DefaultRunOpts()); err == nil {
		t.Fatal("canceled run succeeded")
	}
	if _, err := pool.RunCtx(context.Background(), k, salam.DefaultRunOpts()); err != nil {
		t.Fatalf("pool run after canceled job: %v", err)
	}
}

// TestElabCacheSharesCDFG: identical configurations must resolve to the
// same immutable CDFG object, and the hit counter must move.
func TestElabCacheSharesCDFG(t *testing.T) {
	k := kernels.FFT(64)
	limits := map[salam.FUClass]int{salam.FUFPAdder: 4}
	g1, err := salam.Elaborate(k.F, nil, limits)
	if err != nil {
		t.Fatal(err)
	}
	h0, _ := salam.ElabCacheStats()
	g2, err := salam.Elaborate(k.F, nil, map[salam.FUClass]int{salam.FUFPAdder: 4})
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Fatal("identical configurations elaborated to distinct CDFGs")
	}
	h1, _ := salam.ElabCacheStats()
	if h1 != h0+1 {
		t.Fatalf("hit counter moved %d -> %d, want +1", h0, h1)
	}
}
