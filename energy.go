package salam

// EnergyBreakdown is the measured energy accounting of one run, derived
// from the engine's counters and the CACTI model at the run's exact
// sizing. It is the single model both the validation experiments and the
// static-bound soundness tests charge against, so the simulator never
// disagrees with itself about what a joule is.
type EnergyBreakdown struct {
	// ElapsedNS is the run's wall time in nanoseconds (ticks are ps).
	ElapsedNS float64
	// FUPJ is dynamic FU energy; RegPJ is register-file read+write energy.
	FUPJ  float64
	RegPJ float64
	// MemReadPJ/MemWritePJ are private-memory access energies (SPM or
	// cache, whichever backs the run); MemLeakMW is its leakage power.
	MemReadPJ  float64
	MemWritePJ float64
	MemLeakMW  float64
}

// MeasuredEnergy extracts the energy breakdown from a finished run.
func MeasuredEnergy(res *Result) EnergyBreakdown {
	e := EnergyBreakdown{ElapsedNS: float64(res.Ticks) / 1000.0}
	if e.ElapsedNS <= 0 {
		e.ElapsedNS = 1
	}
	if res.Acc != nil {
		e.FUPJ = res.Acc.FUEnergyPJ.Value()
		e.RegPJ = res.Acc.RegReadPJ.Value() + res.Acc.RegWritePJ.Value()
	}
	switch {
	case res.SPM != nil:
		c := res.SPM.Cacti()
		e.MemReadPJ = res.SPM.Reads.Value() * c.ReadEnergyPJ()
		e.MemWritePJ = res.SPM.Writes.Value() * c.WriteEnergyPJ()
		e.MemLeakMW = c.LeakageMW()
	case res.Cache != nil:
		c := res.Cache.Cacti()
		e.MemReadPJ = res.Cache.Reads.Value() * c.ReadEnergyPJ()
		e.MemWritePJ = res.Cache.Writes.Value() * c.WriteEnergyPJ()
		e.MemLeakMW = c.LeakageMW()
	}
	return e
}

// DynamicPJ returns total dynamic energy in picojoules.
func (e EnergyBreakdown) DynamicPJ() float64 {
	return e.FUPJ + e.RegPJ + e.MemReadPJ + e.MemWritePJ
}

// MemPowerMW returns the private memory's average power over the run:
// access energy spread over the elapsed time plus leakage. For
// cache-backed runs this is the Fig. 13 "cache power" series.
func (e EnergyBreakdown) MemPowerMW() float64 {
	return (e.MemReadPJ+e.MemWritePJ)/e.ElapsedNS + e.MemLeakMW
}
