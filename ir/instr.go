package ir

import (
	"fmt"
)

// Opcode enumerates the instruction set: the LLVM subset that MachSuite-
// style accelerator kernels compile to.
type Opcode int

// Opcodes.
const (
	OpInvalid Opcode = iota
	// Integer arithmetic.
	OpAdd
	OpSub
	OpMul
	OpSDiv
	OpUDiv
	OpSRem
	OpURem
	// Bitwise / shifts.
	OpAnd
	OpOr
	OpXor
	OpShl
	OpLShr
	OpAShr
	// Comparisons.
	OpICmp
	OpFCmp
	// Floating point arithmetic.
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	// Memory.
	OpLoad
	OpStore
	OpGEP
	// SSA / control.
	OpPhi
	OpSelect
	OpBr
	OpRet
	OpCall
	// Casts.
	OpZExt
	OpSExt
	OpTrunc
	OpFPExt
	OpFPTrunc
	OpFPToSI
	OpSIToFP
	OpBitcast
)

var opNames = map[Opcode]string{
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpSDiv: "sdiv", OpUDiv: "udiv",
	OpSRem: "srem", OpURem: "urem",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpLShr: "lshr", OpAShr: "ashr",
	OpICmp: "icmp", OpFCmp: "fcmp",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv",
	OpLoad: "load", OpStore: "store", OpGEP: "getelementptr",
	OpPhi: "phi", OpSelect: "select", OpBr: "br", OpRet: "ret", OpCall: "call",
	OpZExt: "zext", OpSExt: "sext", OpTrunc: "trunc",
	OpFPExt: "fpext", OpFPTrunc: "fptrunc", OpFPToSI: "fptosi", OpSIToFP: "sitofp",
	OpBitcast: "bitcast",
}

// String returns the LLVM mnemonic.
func (o Opcode) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// OpcodeByName maps a mnemonic back to its opcode (OpInvalid if unknown).
func OpcodeByName(s string) Opcode {
	for op, name := range opNames {
		if name == s {
			return op
		}
	}
	return OpInvalid
}

// IsBinOp reports whether o is a two-operand arithmetic/bitwise op.
func (o Opcode) IsBinOp() bool {
	switch o {
	case OpAdd, OpSub, OpMul, OpSDiv, OpUDiv, OpSRem, OpURem,
		OpAnd, OpOr, OpXor, OpShl, OpLShr, OpAShr,
		OpFAdd, OpFSub, OpFMul, OpFDiv:
		return true
	}
	return false
}

// IsCast reports whether o is a conversion.
func (o Opcode) IsCast() bool {
	switch o {
	case OpZExt, OpSExt, OpTrunc, OpFPExt, OpFPTrunc, OpFPToSI, OpSIToFP, OpBitcast:
		return true
	}
	return false
}

// IsTerminator reports whether o ends a basic block.
func (o Opcode) IsTerminator() bool { return o == OpBr || o == OpRet }

// IsMemAccess reports whether o touches memory.
func (o Opcode) IsMemAccess() bool { return o == OpLoad || o == OpStore }

// Pred is a comparison predicate shared by icmp and fcmp.
type Pred int

// Predicates. Integer predicates apply to icmp; ordered float predicates
// to fcmp.
const (
	PredInvalid Pred = iota
	IEQ
	INE
	ISLT
	ISLE
	ISGT
	ISGE
	IULT
	IULE
	IUGT
	IUGE
	FOEQ
	FONE
	FOLT
	FOLE
	FOGT
	FOGE
)

var predNames = map[Pred]string{
	IEQ: "eq", INE: "ne", ISLT: "slt", ISLE: "sle", ISGT: "sgt", ISGE: "sge",
	IULT: "ult", IULE: "ule", IUGT: "ugt", IUGE: "uge",
	FOEQ: "oeq", FONE: "one", FOLT: "olt", FOLE: "ole", FOGT: "ogt", FOGE: "oge",
}

// String returns the LLVM predicate spelling.
func (p Pred) String() string {
	if s, ok := predNames[p]; ok {
		return s
	}
	return fmt.Sprintf("pred(%d)", int(p))
}

// PredByName maps a predicate spelling back (PredInvalid if unknown).
func PredByName(s string) Pred {
	for p, name := range predNames {
		if name == s {
			return p
		}
	}
	return PredInvalid
}

// Instr is an SSA instruction. Instructions with a non-void type are also
// Values (their result).
type Instr struct {
	Op   Opcode
	T    Type // result type (Void for store/br/ret)
	Name string
	// Args are value operands. Layout by opcode:
	//   binops, cmps:   [a, b]
	//   load:           [ptr]
	//   store:          [val, ptr]
	//   gep:            [ptr, idx...]
	//   phi:            incoming values (parallel to Blocks)
	//   select:         [cond, a, b]
	//   br:             [] or [cond]
	//   ret:            [] or [v]
	//   call:           args
	//   casts:          [v]
	Args []Value
	// Blocks are block operands: br targets ([then] or [then, else]) and
	// phi incoming blocks (parallel to Args).
	Blocks []*Block
	Pred   Pred   // for icmp/fcmp
	Callee string // for call
	blk    *Block
}

func (i *Instr) Type() Type    { return i.T }
func (i *Instr) Ident() string { return "%" + i.Name }

// Block returns the basic block containing the instruction.
func (i *Instr) Block() *Block { return i.blk }

// HasResult reports whether the instruction defines an SSA value.
func (i *Instr) HasResult() bool { return i.T.Kind() != KVoid }

// GEPStrides returns, for a GEP instruction, the byte stride multiplied by
// each index operand: offset = sum(idx[k] * stride[k]).
func (i *Instr) GEPStrides() []int64 {
	if i.Op != OpGEP {
		panic("ir: GEPStrides on non-GEP")
	}
	base := i.Args[0].Type().(PtrType)
	strides := make([]int64, len(i.Args)-1)
	cur := base.Elem
	strides[0] = int64(cur.SizeBytes())
	for k := 1; k < len(strides); k++ {
		at, ok := cur.(ArrayType)
		if !ok {
			panic(fmt.Sprintf("ir: GEP %s indexes through non-array %s", i.Name, cur))
		}
		cur = at.Elem
		strides[k] = int64(cur.SizeBytes())
	}
	return strides
}

// GEPElem returns the pointee type of a GEP's result, or false when an
// index beyond the first tries to step through a non-array type — the
// checked form the parser needs to turn malformed input into an error.
func GEPElem(base PtrType, nIdx int) (Type, bool) {
	cur := base.Elem
	for k := 1; k < nIdx; k++ {
		at, ok := cur.(ArrayType)
		if !ok {
			return nil, false
		}
		cur = at.Elem
	}
	return cur, true
}

// GEPResultElem is the panicking form of GEPElem for programmatic
// construction, where indexing through a non-array is a caller bug.
func GEPResultElem(base PtrType, nIdx int) Type {
	t, ok := GEPElem(base, nIdx)
	if !ok {
		panic("ir: GEP indexes through non-array")
	}
	return t
}

// Block is a basic block: a straight-line instruction list ending in a
// terminator.
type Block struct {
	BName  string
	Instrs []*Instr
	fn     *Function
}

// Name returns the block label.
func (b *Block) Name() string { return b.BName }

// Func returns the containing function.
func (b *Block) Func() *Function { return b.fn }

// Terminator returns the final instruction (nil if the block is empty or
// unterminated).
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	last := b.Instrs[len(b.Instrs)-1]
	if !last.Op.IsTerminator() {
		return nil
	}
	return last
}

// Succs returns the successor blocks.
func (b *Block) Succs() []*Block {
	t := b.Terminator()
	if t == nil || t.Op == OpRet {
		return nil
	}
	return t.Blocks
}

// append adds an instruction and claims ownership.
func (b *Block) append(i *Instr) {
	i.blk = b
	b.Instrs = append(b.Instrs, i)
}

// Function is a single accelerator kernel: parameters and a CFG. Entry is
// Blocks[0].
type Function struct {
	FName  string
	Params []*Param
	Ret    Type
	Blocks []*Block
	mod    *Module
}

// Name returns the function name.
func (f *Function) Name() string { return f.FName }

// Entry returns the entry block.
func (f *Function) Entry() *Block {
	if len(f.Blocks) == 0 {
		return nil
	}
	return f.Blocks[0]
}

// BlockByName finds a block by label.
func (f *Function) BlockByName(name string) *Block {
	for _, b := range f.Blocks {
		if b.BName == name {
			return b
		}
	}
	return nil
}

// NewBlock appends a fresh block with a unique-ified label.
func (f *Function) NewBlock(name string) *Block {
	base := name
	n := 1
	for f.BlockByName(name) != nil {
		name = fmt.Sprintf("%s.%d", base, n)
		n++
	}
	b := &Block{BName: name, fn: f}
	f.Blocks = append(f.Blocks, b)
	return b
}

// Preds computes the predecessor map for all blocks.
func (f *Function) Preds() map[*Block][]*Block {
	preds := make(map[*Block][]*Block, len(f.Blocks))
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			preds[s] = append(preds[s], b)
		}
	}
	return preds
}

// NumInstrs counts instructions across all blocks.
func (f *Function) NumInstrs() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// Module is a set of functions and globals — one "accelerated application".
type Module struct {
	Name    string
	Funcs   []*Function
	Globals []*Global
}

// NewModule creates an empty module.
func NewModule(name string) *Module { return &Module{Name: name} }

// Func finds a function by name.
func (m *Module) Func(name string) *Function {
	for _, f := range m.Funcs {
		if f.FName == name {
			return f
		}
	}
	return nil
}

// GlobalByName finds a global by name.
func (m *Module) GlobalByName(name string) *Global {
	for _, g := range m.Globals {
		if g.GName == name {
			return g
		}
	}
	return nil
}

// AddGlobal registers a global buffer.
func (m *Module) AddGlobal(name string, elem Type) *Global {
	g := &Global{GName: name, Elem: elem}
	m.Globals = append(m.Globals, g)
	return g
}

// NewFunction creates a function and registers it.
func (m *Module) NewFunction(name string, ret Type, params ...*Param) *Function {
	f := &Function{FName: name, Ret: ret, Params: params, mod: m}
	for i, p := range params {
		p.Index = i
	}
	m.Funcs = append(m.Funcs, f)
	return f
}

// P constructs a parameter (index filled in by NewFunction).
func P(name string, t Type) *Param { return &Param{PName: name, T: t} }
