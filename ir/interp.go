package ir

import (
	"encoding/binary"
	"fmt"
	"math"
)

// FlatMem is a flat little-endian byte memory used for functional execution
// (goldens, trace generation, HLS profiling). Addresses are absolute; the
// memory covers [Base, Base+len).
type FlatMem struct {
	Base uint64
	Data []byte
	// next is the allocation cursor for Alloc.
	next uint64
}

// NewFlatMem allocates a memory of the given size starting at base.
func NewFlatMem(base uint64, size int) *FlatMem {
	return &FlatMem{Base: base, Data: make([]byte, size), next: base}
}

// Contains reports whether [addr, addr+size) lies inside the memory.
func (m *FlatMem) Contains(addr uint64, size int) bool {
	return addr >= m.Base && addr+uint64(size) <= m.Base+uint64(len(m.Data))
}

func (m *FlatMem) check(addr uint64, size int) {
	if !m.Contains(addr, size) {
		panic(fmt.Sprintf("ir: access [%#x,+%d) outside memory [%#x,+%d)",
			addr, size, m.Base, len(m.Data)))
	}
}

// SetAllocBase moves the allocation cursor (e.g. to place kernel buffers
// inside a particular device's address range).
func (m *FlatMem) SetAllocBase(addr uint64) {
	m.check(addr, 0)
	m.next = addr
}

// AllocCursor returns the current allocation cursor.
func (m *FlatMem) AllocCursor() uint64 { return m.next }

// Reset zeroes the backing store and rewinds the allocation cursor to the
// base, returning the space to its just-constructed state so a
// warm-started simulation can lay out kernel buffers from scratch.
func (m *FlatMem) Reset() {
	for i := range m.Data {
		m.Data[i] = 0
	}
	m.next = m.Base
}

// Alloc reserves size bytes aligned to align and returns the address.
func (m *FlatMem) Alloc(size int, align int) uint64 {
	if align <= 0 {
		align = 8
	}
	a := (m.next + uint64(align) - 1) &^ (uint64(align) - 1)
	m.check(a, size)
	m.next = a + uint64(size)
	return a
}

// AllocFor reserves room for n values of type t (8-byte aligned).
func (m *FlatMem) AllocFor(t Type, n int) uint64 {
	return m.Alloc(t.SizeBytes()*n, 8)
}

// ReadBits loads a value of type t at addr as runtime bits.
func (m *FlatMem) ReadBits(t Type, addr uint64) uint64 {
	size := t.SizeBytes()
	m.check(addr, size)
	off := addr - m.Base
	switch size {
	case 1:
		return uint64(m.Data[off])
	case 2:
		return uint64(binary.LittleEndian.Uint16(m.Data[off:]))
	case 4:
		return uint64(binary.LittleEndian.Uint32(m.Data[off:]))
	case 8:
		return binary.LittleEndian.Uint64(m.Data[off:])
	}
	panic(fmt.Sprintf("ir: load of %d-byte type", size))
}

// WriteBits stores runtime bits of type t at addr.
func (m *FlatMem) WriteBits(t Type, addr uint64, bits uint64) {
	size := t.SizeBytes()
	m.check(addr, size)
	off := addr - m.Base
	switch size {
	case 1:
		m.Data[off] = byte(bits)
	case 2:
		binary.LittleEndian.PutUint16(m.Data[off:], uint16(bits))
	case 4:
		binary.LittleEndian.PutUint32(m.Data[off:], uint32(bits))
	case 8:
		binary.LittleEndian.PutUint64(m.Data[off:], bits)
	default:
		panic(fmt.Sprintf("ir: store of %d-byte type", size))
	}
}

// ReadRaw copies len(p) bytes starting at addr into p.
func (m *FlatMem) ReadRaw(addr uint64, p []byte) {
	m.check(addr, len(p))
	copy(p, m.Data[addr-m.Base:])
}

// WriteRaw copies p into memory starting at addr.
func (m *FlatMem) WriteRaw(addr uint64, p []byte) {
	m.check(addr, len(p))
	copy(m.Data[addr-m.Base:], p)
}

// Typed helpers for test/workload setup.

func (m *FlatMem) WriteF64(addr uint64, v float64) { m.WriteBits(F64, addr, math.Float64bits(v)) }
func (m *FlatMem) ReadF64(addr uint64) float64     { return math.Float64frombits(m.ReadBits(F64, addr)) }
func (m *FlatMem) WriteF32(addr uint64, v float32) {
	m.WriteBits(F32, addr, uint64(math.Float32bits(v)))
}
func (m *FlatMem) ReadF32(addr uint64) float32 {
	return math.Float32frombits(uint32(m.ReadBits(F32, addr)))
}
func (m *FlatMem) WriteI64(addr uint64, v int64) { m.WriteBits(I64, addr, uint64(v)) }
func (m *FlatMem) ReadI64(addr uint64) int64     { return int64(m.ReadBits(I64, addr)) }
func (m *FlatMem) WriteI32(addr uint64, v int32) { m.WriteBits(I32, addr, uint64(uint32(v))) }
func (m *FlatMem) ReadI32(addr uint64) int32     { return int32(uint32(m.ReadBits(I32, addr))) }

// TraceEvent is one executed dynamic instruction, delivered to trace hooks.
type TraceEvent struct {
	Seq   uint64
	I     *Instr
	Val   uint64 // result bits (if any)
	Addr  uint64 // effective address for load/store
	Bytes int    // access size for load/store
}

// ExecOpts controls interpretation.
type ExecOpts struct {
	// Trace, when non-nil, receives every executed instruction in order.
	Trace func(TraceEvent)
	// MaxSteps bounds execution (0 = default 500M).
	MaxSteps uint64
}

// ExecStats summarizes a functional run.
type ExecStats struct {
	Steps       uint64
	BlockVisits map[*Block]uint64
	MemReads    uint64
	MemWrites   uint64
}

// Exec functionally executes f with the given argument bits against mem.
// It returns the return-value bits (0 for void).
func Exec(f *Function, args []uint64, mem *FlatMem, opts *ExecOpts) (uint64, ExecStats, error) {
	if opts == nil {
		opts = &ExecOpts{}
	}
	maxSteps := opts.MaxSteps
	if maxSteps == 0 {
		maxSteps = 500_000_000
	}
	if len(args) != len(f.Params) {
		return 0, ExecStats{}, fmt.Errorf("ir: %s takes %d args, got %d", f.FName, len(f.Params), len(args))
	}

	env := make(map[Value]uint64, 64)
	for i, p := range f.Params {
		env[p] = args[i]
	}
	stats := ExecStats{BlockVisits: make(map[*Block]uint64)}
	eval := func(v Value) uint64 {
		if bits, ok := ConstBits(v); ok {
			return bits
		}
		if g, ok := v.(*Global); ok {
			return g.Addr
		}
		bits, ok := env[v]
		if !ok {
			panic(fmt.Sprintf("ir: use of undefined value %s", v.Ident()))
		}
		return bits
	}

	cur := f.Entry()
	var prev *Block
	var seq uint64
	for {
		stats.BlockVisits[cur]++
		// Phis evaluate atomically against the incoming edge.
		phiVals := map[*Instr]uint64{}
		for _, in := range cur.Instrs {
			if in.Op != OpPhi {
				break
			}
			found := false
			for k, blk := range in.Blocks {
				if blk == prev {
					phiVals[in] = eval(in.Args[k])
					found = true
					break
				}
			}
			if !found {
				return 0, stats, fmt.Errorf("ir: phi %%%s has no incoming from %s", in.Name, prev.BName)
			}
		}
		for in, v := range phiVals {
			env[in] = v
			seq++
			stats.Steps++
			if opts.Trace != nil {
				opts.Trace(TraceEvent{Seq: seq, I: in, Val: v})
			}
		}

		advanced := false
		for _, in := range cur.Instrs {
			if in.Op == OpPhi {
				continue
			}
			if stats.Steps >= maxSteps {
				return 0, stats, fmt.Errorf("ir: exceeded %d steps in %s", maxSteps, f.FName)
			}
			stats.Steps++
			seq++
			ev := TraceEvent{Seq: seq, I: in}
			switch {
			case in.Op.IsBinOp():
				env[in] = EvalBin(in.Op, in.T, eval(in.Args[0]), eval(in.Args[1]))
				ev.Val = env[in]
			case in.Op == OpICmp:
				env[in] = EvalICmp(in.Pred, in.Args[0].Type(), eval(in.Args[0]), eval(in.Args[1]))
				ev.Val = env[in]
			case in.Op == OpFCmp:
				env[in] = EvalFCmp(in.Pred, in.Args[0].Type(), eval(in.Args[0]), eval(in.Args[1]))
				ev.Val = env[in]
			case in.Op.IsCast():
				env[in] = EvalCast(in.Op, in.Args[0].Type(), in.T, eval(in.Args[0]))
				ev.Val = env[in]
			case in.Op == OpGEP:
				idx := make([]uint64, len(in.Args)-1)
				for k := 1; k < len(in.Args); k++ {
					idx[k-1] = eval(in.Args[k])
				}
				env[in] = EvalGEP(in, eval(in.Args[0]), idx)
				ev.Val = env[in]
			case in.Op == OpLoad:
				addr := eval(in.Args[0])
				env[in] = mem.ReadBits(in.T, addr)
				stats.MemReads++
				ev.Val, ev.Addr, ev.Bytes = env[in], addr, in.T.SizeBytes()
			case in.Op == OpStore:
				addr := eval(in.Args[1])
				val := eval(in.Args[0])
				mem.WriteBits(in.Args[0].Type(), addr, val)
				stats.MemWrites++
				ev.Val, ev.Addr, ev.Bytes = val, addr, in.Args[0].Type().SizeBytes()
			case in.Op == OpSelect:
				if eval(in.Args[0]) != 0 {
					env[in] = eval(in.Args[1])
				} else {
					env[in] = eval(in.Args[2])
				}
				ev.Val = env[in]
			case in.Op == OpCall:
				cargs := make([]uint64, len(in.Args))
				for k, a := range in.Args {
					cargs[k] = eval(a)
				}
				env[in] = EvalCall(in.Callee, in.T, cargs)
				ev.Val = env[in]
			case in.Op == OpBr:
				var next *Block
				if len(in.Args) == 0 {
					next = in.Blocks[0]
				} else if eval(in.Args[0]) != 0 {
					next = in.Blocks[0]
					ev.Val = 1
				} else {
					next = in.Blocks[1]
				}
				if opts.Trace != nil {
					opts.Trace(ev)
				}
				prev, cur = cur, next
				advanced = true
			case in.Op == OpRet:
				var ret uint64
				if len(in.Args) == 1 {
					ret = eval(in.Args[0])
					ev.Val = ret
				}
				if opts.Trace != nil {
					opts.Trace(ev)
				}
				return ret, stats, nil
			default:
				return 0, stats, fmt.Errorf("ir: interp cannot execute %s", in.Op)
			}
			if advanced {
				break
			}
			if opts.Trace != nil {
				opts.Trace(ev)
			}
		}
		if !advanced {
			return 0, stats, fmt.Errorf("ir: block %s fell through without terminator", cur.BName)
		}
	}
}
