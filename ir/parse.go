package ir

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Parse reads the textual IR form produced by Print back into a Module.
// It accepts comments (';' to end of line) and flexible whitespace.
func Parse(name, src string) (*Module, error) {
	p := &parser{toks: lex(src), m: NewModule(name)}
	if err := p.parseModule(); err != nil {
		return nil, err
	}
	return p.m, nil
}

// fwdRef is a placeholder for a value referenced before its definition
// (e.g. a phi naming the loop-latch increment). Resolved after the function
// body is parsed.
type fwdRef struct {
	name string
	t    Type
}

func (f *fwdRef) Type() Type    { return f.t }
func (f *fwdRef) Ident() string { return "%" + f.name }

type token struct {
	text string
	line int
}

func lex(src string) []token {
	var toks []token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == ';':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case strings.ContainsRune("=,()[]{}*:", rune(c)):
			toks = append(toks, token{string(c), line})
			i++
		case c == '%' || c == '@':
			j := i + 1
			for j < len(src) && isIdentChar(src[j]) {
				j++
			}
			toks = append(toks, token{src[i:j], line})
			i = j
		default:
			j := i
			for j < len(src) && isIdentChar(src[j]) {
				j++
			}
			if j == i { // unknown byte; skip defensively
				i++
				continue
			}
			toks = append(toks, token{src[i:j], line})
			i = j
		}
	}
	return toks
}

func isIdentChar(c byte) bool {
	return c == '_' || c == '.' || c == '-' || c == '+' ||
		unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

type parser struct {
	toks []token
	pos  int
	m    *Module

	// per-function state
	f      *Function
	vals   map[string]Value
	blocks map[string]*Block
}

func (p *parser) errf(format string, args ...any) error {
	line := 0
	if p.pos < len(p.toks) {
		line = p.toks[p.pos].line
	} else if len(p.toks) > 0 {
		line = p.toks[len(p.toks)-1].line
	}
	return fmt.Errorf("ir: parse line %d: %s", line, fmt.Sprintf(format, args...))
}

func (p *parser) peek() string {
	if p.pos < len(p.toks) {
		return p.toks[p.pos].text
	}
	return ""
}

func (p *parser) next() string {
	t := p.peek()
	p.pos++
	return t
}

func (p *parser) expect(tok string) error {
	if got := p.next(); got != tok {
		p.pos--
		return p.errf("expected %q, got %q", tok, got)
	}
	return nil
}

func (p *parser) parseModule() error {
	for p.pos < len(p.toks) {
		switch {
		case strings.HasPrefix(p.peek(), "@"):
			if err := p.parseGlobal(); err != nil {
				return err
			}
		case p.peek() == "define":
			if err := p.parseFunc(); err != nil {
				return err
			}
		default:
			return p.errf("unexpected top-level token %q", p.peek())
		}
	}
	return nil
}

func (p *parser) parseGlobal() error {
	name := strings.TrimPrefix(p.next(), "@")
	if err := p.expect("="); err != nil {
		return err
	}
	if err := p.expect("global"); err != nil {
		return err
	}
	t, err := p.parseType()
	if err != nil {
		return err
	}
	p.m.AddGlobal(name, t)
	return nil
}

// parseType consumes a type from the token stream.
func (p *parser) parseType() (Type, error) {
	var base Type
	if p.peek() == "[" {
		p.next()
		n, err := strconv.Atoi(p.next())
		if err != nil {
			return nil, p.errf("bad array length")
		}
		if err := p.expect("x"); err != nil {
			return nil, err
		}
		elem, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if err := p.expect("]"); err != nil {
			return nil, err
		}
		base = Arr(n, elem)
	} else {
		t, err := ParseType(p.next())
		if err != nil {
			p.pos--
			return nil, p.errf("%v", err)
		}
		base = t
	}
	for p.peek() == "*" {
		p.next()
		base = Ptr(base)
	}
	return base, nil
}

func (p *parser) parseFunc() error {
	p.next() // define
	ret, err := p.parseType()
	if err != nil {
		return err
	}
	fname := p.next()
	if !strings.HasPrefix(fname, "@") {
		return p.errf("expected @name, got %q", fname)
	}
	if err := p.expect("("); err != nil {
		return err
	}
	var params []*Param
	for p.peek() != ")" {
		if len(params) > 0 {
			if err := p.expect(","); err != nil {
				return err
			}
		}
		t, err := p.parseType()
		if err != nil {
			return err
		}
		pn := p.next()
		if !strings.HasPrefix(pn, "%") {
			return p.errf("expected %%param, got %q", pn)
		}
		params = append(params, P(strings.TrimPrefix(pn, "%"), t))
	}
	p.next() // )
	if err := p.expect("{"); err != nil {
		return err
	}

	p.f = p.m.NewFunction(strings.TrimPrefix(fname, "@"), ret, params...)
	p.vals = map[string]Value{}
	p.blocks = map[string]*Block{}
	for _, prm := range params {
		p.vals[prm.PName] = prm
	}
	for _, g := range p.m.Globals {
		p.vals["@"+g.GName] = g
	}

	// Pre-scan for block labels so branches and phis can resolve forward.
	depth := 1
	for i := p.pos; i < len(p.toks) && depth > 0; i++ {
		switch p.toks[i].text {
		case "{":
			depth++
		case "}":
			depth--
		case ":":
			if i > p.pos || i > 0 {
				label := p.toks[i-1].text
				if !strings.HasPrefix(label, "%") && !strings.HasPrefix(label, "@") {
					if _, ok := p.blocks[label]; !ok {
						p.blocks[label] = p.f.NewBlock(label)
					}
				}
			}
		}
	}

	var cur *Block
	for p.peek() != "}" {
		if p.pos >= len(p.toks) {
			return p.errf("unexpected EOF in function %s", p.f.FName)
		}
		// Label?
		if p.pos+1 < len(p.toks) && p.toks[p.pos+1].text == ":" {
			cur = p.blocks[p.next()]
			p.next() // :
			continue
		}
		if cur == nil {
			return p.errf("instruction before first label")
		}
		in, err := p.parseInstr()
		if err != nil {
			return err
		}
		cur.append(in)
		if in.HasResult() {
			p.vals[in.Name] = in
		}
	}
	p.next() // }

	// Resolve forward references.
	for _, b := range p.f.Blocks {
		for _, in := range b.Instrs {
			for k, a := range in.Args {
				if fr, ok := a.(*fwdRef); ok {
					v, ok := p.vals[fr.name]
					if !ok {
						return fmt.Errorf("ir: parse: undefined value %%%s in %s", fr.name, p.f.FName)
					}
					if !Equal(v.Type(), fr.t) {
						return fmt.Errorf("ir: parse: %%%s used as %s but defined as %s",
							fr.name, fr.t, v.Type())
					}
					in.Args[k] = v
				}
			}
		}
	}
	return nil
}

// parseOperandIdent converts an operand token of a known type into a Value.
func (p *parser) operand(tok string, t Type) (Value, error) {
	switch {
	case strings.HasPrefix(tok, "%"):
		name := strings.TrimPrefix(tok, "%")
		if v, ok := p.vals[name]; ok {
			return v, nil
		}
		return &fwdRef{name: name, t: t}, nil
	case strings.HasPrefix(tok, "@"):
		g := p.m.GlobalByName(strings.TrimPrefix(tok, "@"))
		if g == nil {
			return nil, p.errf("unknown global %s", tok)
		}
		return g, nil
	case tok == "true":
		return I1c(true), nil
	case tok == "false":
		return I1c(false), nil
	default:
		if IsFloat(t) {
			f, err := strconv.ParseFloat(tok, 64)
			if err != nil {
				return nil, p.errf("bad float literal %q", tok)
			}
			return FC(t, f), nil
		}
		v, err := strconv.ParseInt(tok, 0, 64)
		if err != nil {
			return nil, p.errf("bad int literal %q", tok)
		}
		return IC(t, v), nil
	}
}

// typedOperand parses "<type> <ident>".
func (p *parser) typedOperand() (Value, error) {
	t, err := p.parseType()
	if err != nil {
		return nil, err
	}
	return p.operand(p.next(), t)
}

func (p *parser) parseInstr() (*Instr, error) {
	name := ""
	if strings.HasPrefix(p.peek(), "%") {
		name = strings.TrimPrefix(p.next(), "%")
		if err := p.expect("="); err != nil {
			return nil, err
		}
	}
	mnem := p.next()
	op := OpcodeByName(mnem)
	if op == OpInvalid {
		return nil, p.errf("unknown instruction %q", mnem)
	}
	in := &Instr{Op: op, Name: name, T: Void}

	switch {
	case op.IsBinOp():
		t, err := p.parseType()
		if err != nil {
			return nil, err
		}
		a, err := p.operand(p.next(), t)
		if err != nil {
			return nil, err
		}
		if err := p.expect(","); err != nil {
			return nil, err
		}
		b, err := p.operand(p.next(), t)
		if err != nil {
			return nil, err
		}
		in.T = t
		in.Args = []Value{a, b}

	case op == OpICmp || op == OpFCmp:
		pred := PredByName(p.next())
		if pred == PredInvalid {
			return nil, p.errf("bad predicate")
		}
		t, err := p.parseType()
		if err != nil {
			return nil, err
		}
		a, err := p.operand(p.next(), t)
		if err != nil {
			return nil, err
		}
		if err := p.expect(","); err != nil {
			return nil, err
		}
		b, err := p.operand(p.next(), t)
		if err != nil {
			return nil, err
		}
		in.T = I1
		in.Pred = pred
		in.Args = []Value{a, b}

	case op == OpLoad:
		t, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if err := p.expect(","); err != nil {
			return nil, err
		}
		ptr, err := p.typedOperand()
		if err != nil {
			return nil, err
		}
		in.T = t
		in.Args = []Value{ptr}

	case op == OpStore:
		val, err := p.typedOperand()
		if err != nil {
			return nil, err
		}
		if err := p.expect(","); err != nil {
			return nil, err
		}
		ptr, err := p.typedOperand()
		if err != nil {
			return nil, err
		}
		in.Args = []Value{val, ptr}

	case op == OpGEP:
		if _, err := p.parseType(); err != nil { // pointee type, redundant
			return nil, err
		}
		if err := p.expect(","); err != nil {
			return nil, err
		}
		base, err := p.typedOperand()
		if err != nil {
			return nil, err
		}
		in.Args = []Value{base}
		for p.peek() == "," {
			p.next()
			idx, err := p.typedOperand()
			if err != nil {
				return nil, err
			}
			in.Args = append(in.Args, idx)
		}
		pt, ok := base.Type().(PtrType)
		if !ok {
			return nil, p.errf("gep base is not a pointer")
		}
		in.T = Ptr(GEPResultElem(pt, len(in.Args)-1))

	case op == OpPhi:
		t, err := p.parseType()
		if err != nil {
			return nil, err
		}
		in.T = t
		for {
			if err := p.expect("["); err != nil {
				return nil, err
			}
			v, err := p.operand(p.next(), t)
			if err != nil {
				return nil, err
			}
			if err := p.expect(","); err != nil {
				return nil, err
			}
			blkTok := p.next()
			blk := p.blocks[strings.TrimPrefix(blkTok, "%")]
			if blk == nil {
				return nil, p.errf("phi references unknown block %q", blkTok)
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			in.Args = append(in.Args, v)
			in.Blocks = append(in.Blocks, blk)
			if p.peek() != "," {
				break
			}
			p.next()
		}

	case op == OpSelect:
		for k := 0; k < 3; k++ {
			if k > 0 {
				if err := p.expect(","); err != nil {
					return nil, err
				}
			}
			v, err := p.typedOperand()
			if err != nil {
				return nil, err
			}
			in.Args = append(in.Args, v)
		}
		in.T = in.Args[1].Type()

	case op == OpBr:
		if p.peek() == "label" {
			p.next()
			blk := p.blocks[strings.TrimPrefix(p.next(), "%")]
			if blk == nil {
				return nil, p.errf("br to unknown block")
			}
			in.Blocks = []*Block{blk}
		} else {
			t, err := p.parseType()
			if err != nil {
				return nil, err
			}
			cond, err := p.operand(p.next(), t)
			if err != nil {
				return nil, err
			}
			in.Args = []Value{cond}
			for k := 0; k < 2; k++ {
				if err := p.expect(","); err != nil {
					return nil, err
				}
				if err := p.expect("label"); err != nil {
					return nil, err
				}
				blk := p.blocks[strings.TrimPrefix(p.next(), "%")]
				if blk == nil {
					return nil, p.errf("br to unknown block")
				}
				in.Blocks = append(in.Blocks, blk)
			}
		}

	case op == OpRet:
		if p.peek() == "void" {
			p.next()
		} else {
			v, err := p.typedOperand()
			if err != nil {
				return nil, err
			}
			in.Args = []Value{v}
		}

	case op == OpCall:
		t, err := p.parseType()
		if err != nil {
			return nil, err
		}
		in.T = t
		callee := p.next()
		if !strings.HasPrefix(callee, "@") {
			return nil, p.errf("call target must be @name")
		}
		in.Callee = strings.TrimPrefix(callee, "@")
		if err := p.expect("("); err != nil {
			return nil, err
		}
		for p.peek() != ")" {
			if len(in.Args) > 0 {
				if err := p.expect(","); err != nil {
					return nil, err
				}
			}
			v, err := p.typedOperand()
			if err != nil {
				return nil, err
			}
			in.Args = append(in.Args, v)
		}
		p.next() // )

	case op.IsCast():
		v, err := p.typedOperand()
		if err != nil {
			return nil, err
		}
		if err := p.expect("to"); err != nil {
			return nil, err
		}
		t, err := p.parseType()
		if err != nil {
			return nil, err
		}
		in.T = t
		in.Args = []Value{v}

	default:
		return nil, p.errf("unsupported opcode %s", mnem)
	}

	if in.HasResult() && in.Name == "" {
		return nil, p.errf("%s result must be named", mnem)
	}
	return in, nil
}
